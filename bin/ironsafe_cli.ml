(* ironsafe-cli: run policy-checked SQL against a simulated IronSafe
   deployment from the command line.

     ironsafe-cli query --sql "select ..." [--config scs] [--scale 0.005]
                        [--profile] [--shards N] [--partition-scheme hash]
     ironsafe-cli tpch --id 6 [--config all] [--shards N]
     ironsafe-cli shell            (interactive; \policy and \config)

   With --shards N (N > 1) the tables are partitioned across N storage
   nodes, each attested under its own TrustZone identity, and SELECTs
   scatter-gather across them; results are exactly the single-node
   results. --shards 1 (the default) leaves every code path unchanged.

   The deployment is built fresh per invocation (TPC-H data at the
   requested scale factor), attested, and queries flow through the
   trusted monitor with the given access policy. *)

open Cmdliner
open Ironsafe
module Sql = Ironsafe_sql
module Tpch = Ironsafe_tpch
module Fault = Ironsafe_fault.Fault
module Cluster = Ironsafe_cluster.Cluster
module Monitor = Ironsafe_monitor.Trusted_monitor

let build_deployment ?(faults = Fault.none) ?(pool_frames = 0)
    ?(crypto_mode = Ironsafe_securestore.Secure_store.Cbc) ?(batch_size = 0)
    ?(crypto_lanes = 1) scale =
  let params = { Ironsafe_sim.Params.default with crypto_lanes } in
  let deploy =
    Deployment.create ~seed:"ironsafe-cli" ~params ~faults ~pool_frames
      ~crypto_mode ~batch_size
      ~populate:(fun db -> ignore (Tpch.Dbgen.populate db ~scale))
      ()
  in
  (match Deployment.attest_reliable deploy with
  | Ok () -> ()
  | Error e -> failwith ("attestation failed: " ^ e));
  deploy

let setup_engine deploy policy =
  let engine = Engine.create deploy in
  ignore (Engine.register_client engine ~label:"cli" ~reuse_bit:0 ());
  Engine.set_access_policy engine policy;
  engine

let config_conv =
  let parse s =
    match Config.of_string s with
    | Some c -> Ok c
    | None -> Error (`Msg (Printf.sprintf "unknown config %s (hons/hos/vcs/scs/sos)" s))
  in
  Arg.conv (parse, Config.pp)

let scale_arg =
  Arg.(value & opt float 0.005 & info [ "scale" ] ~docv:"SF" ~doc:"TPC-H scale factor.")

let config_arg =
  Arg.(
    value
    & opt config_conv Config.Scs
    & info [ "config" ] ~docv:"CONF" ~doc:"Execution configuration (Table 2).")

let policy_arg =
  Arg.(
    value
    & opt string "read ::= sessionKeyIs(cli)\nwrite ::= sessionKeyIs(cli)"
    & info [ "policy" ] ~docv:"POLICY" ~doc:"Access policy source.")

let fault_profile_conv =
  let parse s =
    match Fault.profile_of_string s with
    | Some p -> Ok p
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown fault profile %s (none/flaky-net/bit-rot/hostile)" s))
  in
  Arg.conv (parse, fun ppf p -> Fmt.string ppf (Fault.profile_name p))

let fault_profile_arg =
  Arg.(
    value
    & opt fault_profile_conv Fault.Profile_none
    & info [ "fault-profile" ] ~docv:"PROFILE"
        ~doc:"Fault-injection profile: $(b,none), $(b,flaky-net), $(b,bit-rot) or $(b,hostile).")

let fault_seed_arg =
  Arg.(
    value & opt int 42
    & info [ "fault-seed" ] ~docv:"N"
        ~doc:"Seed for the deterministic fault schedule (same seed, same incidents).")

let pool_frames_arg =
  Arg.(
    value & opt int 0
    & info [ "pool-frames" ] ~docv:"N"
        ~doc:
          "Decrypted-page buffer pool size in frames for both media (0 \
           disables the pool entirely; reads then always hit the backend).")

let crypto_mode_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "cbc" -> Ok Ironsafe_securestore.Secure_store.Cbc
    | "ctr" -> Ok Ironsafe_securestore.Secure_store.Ctr
    | _ -> Error (`Msg (Printf.sprintf "unknown crypto mode %s (cbc/ctr)" s))
  in
  let print ppf m =
    Fmt.string ppf
      (match m with
      | Ironsafe_securestore.Secure_store.Cbc -> "cbc"
      | Ironsafe_securestore.Secure_store.Ctr -> "ctr")
  in
  Arg.conv (parse, print)

let crypto_mode_arg =
  Arg.(
    value
    & opt crypto_mode_conv Ironsafe_securestore.Secure_store.Cbc
    & info [ "crypto-mode" ] ~docv:"MODE"
        ~doc:
          "Secure-store page cipher: $(b,cbc) (chained, single lane) or \
           $(b,ctr) (independently decryptable blocks).")

let crypto_lanes_arg =
  Arg.(
    value & opt int 1
    & info [ "crypto-lanes" ] ~docv:"N"
        ~doc:
          "Decrypt lanes per CTR page charged on the virtual clock (CBC \
           always runs single-lane).")

let batch_size_arg =
  Arg.(
    value & opt int 0
    & info [ "batch-size" ] ~docv:"N"
        ~doc:
          "Vectorized executor batch capacity in rows (0 = row-at-a-time \
           execution).")

let shards_conv =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some n -> Error (`Msg (Printf.sprintf "--shards must be >= 1 (got %d)" n))
    | None -> Error (`Msg (Printf.sprintf "invalid shard count %S" s))
  in
  Arg.conv (parse, Fmt.int)

let shards_arg =
  Arg.(
    value & opt shards_conv 1
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Number of storage shards. $(b,1) (the default) runs the \
           single-node deployment unchanged; $(b,N > 1) partitions every \
           table across N storage nodes, each attested under its own \
           TrustZone identity, and scatters SELECTs across them.")

let scheme_conv =
  let parse s =
    match Partitioner.scheme_of_string s with
    | Some sch -> Ok sch
    | None ->
        Error (`Msg (Printf.sprintf "unknown partition scheme %s (hash/range)" s))
  in
  Arg.conv (parse, fun ppf sch -> Fmt.string ppf (Partitioner.scheme_name sch))

let scheme_arg =
  Arg.(
    value
    & opt scheme_conv Partitioner.Hash
    & info [ "partition-scheme" ] ~docv:"SCHEME"
        ~doc:
          "Row-to-shard assignment over the table's first integer column: \
           $(b,hash) or $(b,range).")

let build_cluster ~shards ~scheme deploy =
  let cl = Cluster.create ~shards ~scheme deploy in
  (match Cluster.attest_reliable cl with
  | Ok () -> ()
  | Error e -> failwith ("cluster attestation failed: " ^ e));
  cl

let fault_plan seed profile = Fault.of_profile ~seed profile

let print_faults faults =
  if Fault.enabled faults then begin
    Fmt.pr "-- faults: %a@." Fault.pp_stats (Fault.stats faults);
    List.iter
      (fun inc -> Fmt.pr "--   %a@." Fault.pp_incident inc)
      (Fault.incidents_since faults 0)
  end

let print_metrics (m : Runner.metrics) =
  Fmt.pr "-- %s: %.2f ms simulated, %d bytes shipped, %d pages scanned@."
    (Config.abbrev m.Runner.config)
    (m.Runner.end_to_end_ns /. 1e6)
    m.Runner.bytes_shipped m.Runner.pages_scanned

(* -- flight recorder / SLO flags (shared by query and workload) -------- *)

(* Parse-time validated converters: a bad value fails argument parsing
   (exit 124) instead of surfacing mid-run. *)
let nonneg_float_conv what =
  let parse s =
    match float_of_string_opt s with
    | Some v when v >= 0.0 && Float.is_finite v -> Ok v
    | _ ->
        Error
          (`Msg (Printf.sprintf "%s must be a finite number >= 0, got %S" what s))
  in
  Arg.conv (parse, fun ppf v -> Format.fprintf ppf "%g" v)

let pos_int_conv what =
  let parse s =
    match int_of_string_opt s with
    | Some v when v > 0 -> Ok v
    | _ -> Error (`Msg (Printf.sprintf "%s must be a positive integer, got %S" what s))
  in
  Arg.conv (parse, fun ppf v -> Format.fprintf ppf "%d" v)

let slo_p99_ms_arg =
  Arg.(
    value
    & opt (nonneg_float_conv "--slo-p99-ms") 0.0
    & info [ "slo-p99-ms" ] ~docv:"MS"
        ~doc:
          "Arm the tail-latency SLO: completions slower than $(docv) \
           milliseconds count as breaches, the burn-rate watchdog streams \
           over the run, and breaches trigger flight recorder dumps. 0 \
           (the default) leaves the watchdog off.")

let recorder_frames_arg =
  Arg.(
    value
    & opt (pos_int_conv "--recorder-frames") 256
    & info [ "recorder-frames" ] ~docv:"N"
        ~doc:
          "Flight recorder ring capacity per scope (default 256 frames). \
           Takes effect when the recorder is armed with $(b,--dump-dir).")

let dump_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dump-dir" ] ~docv:"DIR"
        ~doc:
          "Arm the flight recorder: keep per-scope rings of recent events, \
           charges and spans, and dump them (JSONL + Chrome trace) into \
           $(docv) whenever an anomaly fires — fault injection, policy \
           denial, crash/reject/degrade outcomes, WAL crashes, attestation \
           failures, SLO or tail-latency breaches. Created if missing. \
           Defaults to off.")

(* Single-query tail check: a run slower than the armed threshold emits
   a [query.tail_breach] event (a recorder trigger) and a warning. *)
let check_query_slo ~slo_p99_ms latency_ns =
  if slo_p99_ms > 0.0 && latency_ns > slo_p99_ms *. 1e6 then begin
    Ironsafe_obs.Obs.event ~ts_ns:latency_ns ~scope:"core"
      ~kind:"query.tail_breach"
      [
        ("latency_ns", Ironsafe_obs.Event_log.F latency_ns);
        ("threshold_ns", Ironsafe_obs.Event_log.F (slo_p99_ms *. 1e6));
      ];
    Fmt.pr "-- tail SLO breached: %.3f ms > %.3f ms threshold@."
      (latency_ns /. 1e6) slo_p99_ms
  end

let arm_recorder ~frames = function
  | None -> false
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      Ironsafe_obs.Obs.enable ();
      Ironsafe_obs.Flight_recorder.configure ~frames ~dir ();
      Ironsafe_obs.Flight_recorder.enable ();
      true

let report_recorder () =
  if Ironsafe_obs.Flight_recorder.is_enabled () then begin
    let n = Ironsafe_obs.Flight_recorder.dump_count () in
    let dropped = Ironsafe_obs.Flight_recorder.dropped () in
    List.iter
      (fun (d : Ironsafe_obs.Flight_recorder.dump) ->
        match d.Ironsafe_obs.Flight_recorder.d_path with
        | Some p ->
            Fmt.pr "-- flight recorder dump (%s) written to %s@."
              d.Ironsafe_obs.Flight_recorder.d_reason p
        | None -> ())
      (Ironsafe_obs.Flight_recorder.dumps ());
    if n = 0 then Fmt.pr "-- flight recorder: no anomalies, no dumps@."
    else if dropped > 0 then
      Fmt.pr "-- flight recorder: %d dumps (%d past the cap dropped)@." n
        dropped;
    Ironsafe_obs.Flight_recorder.disable ()
  end

let write_artifact ?(validate = false) ~what file contents =
  if validate && not (Ironsafe_obs.Chrome_trace.is_valid_json contents) then begin
    Fmt.epr "internal error: emitted %s is not valid JSON@." what;
    exit 1
  end;
  let oc = open_out file in
  output_string oc contents;
  close_out oc;
  Fmt.pr "-- %s written to %s@." what file

let run_query ?(profile = false) ?trace_out ?jsonl_out ?metrics_out
    ?(sample_every = 1) ?(faults = Fault.none) ?(pool_frames = 0) ?crypto_mode
    ?batch_size ?crypto_lanes ?(recorder_frames = 256) ?dump_dir
    ?(slo_p99_ms = 0.0) scale config policy sql =
  let recorder = arm_recorder ~frames:recorder_frames dump_dir in
  let obs_on =
    profile || trace_out <> None || jsonl_out <> None || metrics_out <> None
    || recorder
  in
  if obs_on then begin
    Ironsafe_obs.Obs.enable ();
    Ironsafe_obs.Obs.set_sample_every sample_every;
    (* stream the event log: events reach the file as they happen, and
       terminal outcomes (crash/reject) force a flush — the log survives
       even if the process dies mid-query *)
    match jsonl_out with
    | Some f -> Ironsafe_obs.Event_log.open_sink f
    | None -> ()
  end;
  let write_exports () =
    (match trace_out with
    | Some f ->
        write_artifact ~validate:true ~what:"trace" f
          (Ironsafe_obs.Obs.to_chrome_json ())
    | None -> ());
    (match jsonl_out with
    | Some f ->
        Ironsafe_obs.Event_log.close_sink ();
        Fmt.pr "-- event log (JSONL) streamed to %s@." f
    | None -> ());
    (match metrics_out with
    | Some f ->
        write_artifact ~what:"metrics (OpenMetrics)" f
          (Ironsafe_obs.Obs.to_openmetrics ())
    | None -> ());
    report_recorder ()
  in
  let deploy =
    build_deployment ~faults ~pool_frames ?crypto_mode ?batch_size
      ?crypto_lanes scale
  in
  let engine = setup_engine deploy policy in
  match Engine.submit engine ~client:"cli" ~config ~sql () with
  | Error e ->
      Fmt.epr "error: %s@." e;
      print_faults faults;
      (* the event log of a denial is forensic evidence: still export *)
      write_exports ();
      1
  | Ok resp ->
      Fmt.pr "%a" Sql.Exec.pp_result resp.Engine.resp_result;
      print_metrics resp.Engine.resp_metrics;
      (match resp.Engine.resp_metrics.Runner.profile with
      | Some p when profile ->
          Fmt.pr "-- profile (virtual time):@.%a@." Ironsafe_obs.Obs.pp_profile p
      | _ -> ());
      print_faults faults;
      Fmt.pr "-- proof of compliance: %s@."
        (if Engine.verify_response engine resp ~sql then "verified" else "INVALID");
      check_query_slo ~slo_p99_ms
        resp.Engine.resp_metrics.Runner.end_to_end_ns;
      write_exports ();
      0

(* Sharded SELECT path: same monitor authorization as Engine.submit,
   then scatter-gather through the cluster runner. The per-shard
   compliance gate runs before execution: one non-compliant or
   unattested shard rejects the whole query. *)
let run_cluster_query ?trace_out ?jsonl_out ?metrics_out ?(sample_every = 1)
    ?(faults = Fault.none) ?(pool_frames = 0) ?crypto_mode ?batch_size
    ?crypto_lanes ?(recorder_frames = 256) ?dump_dir ?(slo_p99_ms = 0.0)
    ~shards ~scheme scale config policy sql =
  let recorder = arm_recorder ~frames:recorder_frames dump_dir in
  let obs_on =
    trace_out <> None || jsonl_out <> None || metrics_out <> None || recorder
  in
  if obs_on then begin
    Ironsafe_obs.Obs.enable ();
    Ironsafe_obs.Obs.set_sample_every sample_every;
    match jsonl_out with
    | Some f -> Ironsafe_obs.Event_log.open_sink f
    | None -> ()
  end;
  let write_exports () =
    (match trace_out with
    | Some f ->
        write_artifact ~validate:true ~what:"trace" f
          (Ironsafe_obs.Obs.to_chrome_json ())
    | None -> ());
    (match jsonl_out with
    | Some f ->
        Ironsafe_obs.Event_log.close_sink ();
        Fmt.pr "-- event log (JSONL) streamed to %s@." f
    | None -> ());
    (match metrics_out with
    | Some f ->
        write_artifact ~what:"metrics (OpenMetrics)" f
          (Ironsafe_obs.Obs.to_openmetrics ())
    | None -> ());
    report_recorder ()
  in
  let deploy =
    build_deployment ~faults ~pool_frames ?crypto_mode ?batch_size ?crypto_lanes
      scale
  in
  let engine = setup_engine deploy policy in
  let cl = build_cluster ~shards ~scheme deploy in
  let monitor = Engine.monitor engine in
  let catalog = Sql.Database.catalog deploy.Deployment.secure_db in
  match
    Monitor.authorize monitor ~catalog ~client_label:"cli" ~database:"ironsafe"
      ~exec_policy:[] ~sql
  with
  | Error e ->
      Fmt.epr "error: %s@." e;
      print_faults faults;
      write_exports ();
      1
  | Ok auth ->
      let finish code =
        Monitor.session_cleanup monitor auth.Monitor.auth_session_key;
        print_faults faults;
        write_exports ();
        code
      in
      if not (Cluster.policy_compliant cl auth) then begin
        Fmt.epr "error: execution policy excludes a shard's storage device@.";
        finish 1
      end
      else begin
        match
          Cluster.run_stmt_outcome cl config auth.Monitor.auth_stmt
        with
        | Runner.Ok m | Runner.Degraded (m, _) ->
            Fmt.pr "%a" Sql.Exec.pp_result m.Runner.result;
            print_metrics m;
            Fmt.pr "-- gather: %s over %d shards (%s partitioning)@."
              (Cluster.gather_operator cl sql)
              shards
              (Partitioner.scheme_name scheme);
            if obs_on then
              Fmt.pr "-- scatter latency (per shard, bucket-merged):@.%s"
                (Cluster.scatter_latency_table cl);
            check_query_slo ~slo_p99_ms m.Runner.end_to_end_ns;
            finish 0
        | Runner.Rejected v | Runner.Crashed v ->
            Fmt.epr "error: %a@." Runner.pp_violation v;
            finish 1
      end

let query_cmd =
  let sql =
    Arg.(required & opt (some string) None & info [ "sql" ] ~docv:"SQL" ~doc:"Statement to run.")
  in
  let explain =
    Arg.(value & flag & info [ "explain" ] ~doc:"Print the host/storage split instead of running.")
  in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:"Print the span tree and metrics of the run (virtual time).")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace of the query (host and storage lanes \
             linked by flow arrows) to $(docv).")
  in
  let jsonl_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "jsonl-out" ] ~docv:"FILE"
          ~doc:
            "Write the structured query-lifecycle event log (plan split, \
             policy decisions, attestations, faults) as JSONL to $(docv).")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"Write the metrics registry in OpenMetrics text format to $(docv).")
  in
  let sample_every =
    Arg.(
      value & opt int 1
      & info [ "sample-every" ] ~docv:"N"
          ~doc:
            "Collect spans for every $(docv)-th query only (metrics and \
             events are always collected while observability is on).")
  in
  let run scale config policy explain profile trace_out jsonl_out metrics_out
      sample_every fault_seed fault_profile pool_frames crypto_mode batch_size
      crypto_lanes shards scheme recorder_frames dump_dir slo_p99_ms sql =
    if explain then begin
      let deploy = build_deployment scale in
      let plan =
        Partitioner.split
          (Sql.Database.catalog deploy.Deployment.plain_db)
          (Sql.Parser.parse sql)
      in
      print_string (Partitioner.describe plan);
      0
    end
    else if shards > 1 then
      run_cluster_query ?trace_out ?jsonl_out ?metrics_out ~sample_every
        ~faults:(fault_plan fault_seed fault_profile)
        ~pool_frames ~crypto_mode ~batch_size ~crypto_lanes ~recorder_frames
        ?dump_dir ~slo_p99_ms ~shards ~scheme scale config policy sql
    else
      run_query ~profile ?trace_out ?jsonl_out ?metrics_out ~sample_every
        ~faults:(fault_plan fault_seed fault_profile)
        ~pool_frames ~crypto_mode ~batch_size ~crypto_lanes ~recorder_frames
        ?dump_dir ~slo_p99_ms scale config policy sql
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Run one policy-checked SQL statement")
    Term.(
      const run $ scale_arg $ config_arg $ policy_arg $ explain $ profile
      $ trace_out $ jsonl_out $ metrics_out $ sample_every $ fault_seed_arg
      $ fault_profile_arg $ pool_frames_arg $ crypto_mode_arg $ batch_size_arg
      $ crypto_lanes_arg $ shards_arg $ scheme_arg $ recorder_frames_arg
      $ dump_dir_arg $ slo_p99_ms_arg $ sql)

let tpch_cmd =
  let id =
    Arg.(required & opt (some int) None & info [ "id" ] ~docv:"N" ~doc:"TPC-H query number.")
  in
  let all =
    Arg.(value & flag & info [ "all-configs" ] ~doc:"Run under all five configurations.")
  in
  let run scale config all fault_seed fault_profile pool_frames crypto_mode
      batch_size crypto_lanes shards scheme id =
    let q = Tpch.Queries.by_id_complete id in
    let faults = fault_plan fault_seed fault_profile in
    let deploy =
      build_deployment ~faults ~pool_frames ~crypto_mode ~batch_size
        ~crypto_lanes scale
    in
    let run_outcome =
      if shards > 1 then begin
        let cl = build_cluster ~shards ~scheme deploy in
        fun cfg -> Cluster.run_query_outcome cl cfg q.Tpch.Queries.sql
      end
      else fun cfg -> Runner.run_query_outcome deploy cfg q.Tpch.Queries.sql
    in
    let configs = if all then Config.all else [ config ] in
    let code = ref 0 in
    List.iter
      (fun cfg ->
        match run_outcome cfg with
        | Runner.Ok m | Runner.Degraded (m, _) ->
            if List.length configs = 1 then
              Fmt.pr "%a" Sql.Exec.pp_result m.Runner.result;
            print_metrics m
        | Runner.Rejected v | Runner.Crashed v ->
            Fmt.pr "-- %s: rejected (%a)@." (Config.abbrev cfg)
              Runner.pp_violation v;
            code := 1)
      configs;
    print_faults faults;
    !code
  in
  Cmd.v
    (Cmd.info "tpch" ~doc:"Run a TPC-H query under one or all configurations")
    Term.(
      const run $ scale_arg $ config_arg $ all $ fault_seed_arg
      $ fault_profile_arg $ pool_frames_arg $ crypto_mode_arg $ batch_size_arg
      $ crypto_lanes_arg $ shards_arg $ scheme_arg $ id)

let workload_cmd =
  let module Sched = Ironsafe_sched.Sched in
  let qps =
    Arg.(
      value
      & opt (some float) None
      & info [ "qps" ] ~docv:"QPS"
          ~doc:"Open-loop mode: Poisson arrivals at this rate.")
  in
  let sessions =
    Arg.(
      value & opt int 4
      & info [ "sessions" ] ~docv:"N"
          ~doc:"Closed-loop mode (default): number of concurrent sessions.")
  in
  let think_ms =
    Arg.(
      value & opt float 2.0
      & info [ "think-ms" ] ~docv:"MS"
          ~doc:"Closed-loop mean think time between a session's queries.")
  in
  let queries =
    Arg.(
      value & opt int 64
      & info [ "queries" ] ~docv:"N" ~doc:"Total queries to submit.")
  in
  let tenants =
    Arg.(
      value & opt int 2
      & info [ "tenants" ] ~docv:"N"
          ~doc:"Number of tenants (each registered with the monitor).")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N"
          ~doc:"Workload seed (same seed, same schedule).")
  in
  let max_inflight =
    Arg.(
      value & opt int 8
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:"Admission bound: queries executing concurrently.")
  in
  let queue_depth =
    Arg.(
      value & opt int 16
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:"Run-queue depth; arrivals beyond it are shed.")
  in
  let sample_sessions =
    Arg.(
      value & opt int (-1)
      & info [ "sample-sessions" ] ~docv:"N"
          ~doc:
            "Bound forensics to about $(docv) session lanes (deterministic \
             selection). Counts, per-tenant stats, utilization and latency \
             percentiles stay exact over every session; only the event log, \
             per-query records and trace segments are limited to the \
             sampled lanes. -1 (the default) keeps everything — required \
             below ~10^5 sessions only if you want the full log.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Write a Chrome trace (one lane per session) to $(docv).")
  in
  let lane_frames =
    Arg.(
      value
      & opt (pos_int_conv "--lane-frames") 32
      & info [ "lane-frames" ] ~docv:"N"
          ~doc:
            "Bounded-forensics mode: per-session ring of recent trace \
             segments held while the lane's verdict is undecided (default \
             32).")
  in
  let run scale config qps sessions think_ms queries tenants seed max_inflight
      queue_depth sample_sessions json trace_out pool_frames shards scheme
      slo_p99_ms recorder_frames dump_dir lane_frames =
    let recorder = arm_recorder ~frames:recorder_frames dump_dir in
    if recorder then Ironsafe_obs.Obs.enable ();
    let deploy = build_deployment ~pool_frames scale in
    let cl =
      if shards > 1 then Some (build_cluster ~shards ~scheme deploy) else None
    in
    let tenant_names =
      List.init (max 1 tenants) (Printf.sprintf "tenant-%d")
    in
    let engine = Engine.create deploy in
    List.iter
      (fun t -> ignore (Engine.register_client engine ~label:t ()))
      tenant_names;
    Engine.set_access_policy engine
      (Printf.sprintf "read ::= %s"
         (String.concat " | "
            (List.map (Printf.sprintf "sessionKeyIs(%s)") tenant_names)));
    let p = deploy.Deployment.params in
    let mix = [ 1; 6; 14 ] in
    let profiles =
      List.map
        (fun id ->
          let q = Tpch.Queries.by_id id in
          let label = Printf.sprintf "q%d" id in
          match cl with
          | None ->
              Sched.profile deploy config ~label ~sql:q.Tpch.Queries.sql
          | Some cl ->
              let stmt = Sql.Parser.parse q.Tpch.Queries.sql in
              Sched.profile_run ~label ~sql:q.Tpch.Queries.sql config
                (fun () -> Cluster.run_stmt cl config stmt))
        mix
    in
    let spec =
      {
        Sched.default_spec with
        Sched.seed;
        arrival =
          (match qps with
          | Some q -> Sched.Open_loop { qps = q }
          | None ->
              Sched.Closed_loop { sessions; think_ns = think_ms *. 1e6 });
        queries;
        tenants = tenant_names;
        max_inflight;
        queue_depth;
        sample_sessions;
        lane_frames;
        tail_slo_ns = slo_p99_ms *. 1e6;
        control_ns =
          p.Ironsafe_sim.Params.monitor_policy_ns
          +. p.Ironsafe_sim.Params.monitor_session_ns;
      }
    in
    let gate = Sched.monitor_gate deploy in
    let storage_nodes =
      Option.bind cl Cluster.sched_storage_nodes
    in
    let report = Sched.run ~gate ?storage_nodes deploy spec profiles in
    if json then print_endline (Sched.json_of_report report)
    else Fmt.pr "%a" Sched.pp_report report;
    (match trace_out with
    | None -> ()
    | Some file ->
        let trace = Sched.trace_json report in
        if not (Ironsafe_obs.Chrome_trace.is_valid_json trace) then begin
          Fmt.epr "internal error: emitted trace is not valid JSON@.";
          exit 1
        end;
        let oc = open_out file in
        output_string oc trace;
        close_out oc;
        Fmt.pr "-- trace written to %s (open in Perfetto)@." file);
    report_recorder ();
    if report.Sched.rep_completed > 0 then 0 else 1
  in
  Cmd.v
    (Cmd.info "workload"
       ~doc:
         "Simulate a multi-tenant concurrent workload (discrete-event) and \
          report throughput and tail latency")
    Term.(
      const run $ scale_arg $ config_arg $ qps $ sessions $ think_ms $ queries
      $ tenants $ seed $ max_inflight $ queue_depth $ sample_sessions $ json
      $ trace_out $ pool_frames_arg $ shards_arg $ scheme_arg $ slo_p99_ms_arg
      $ recorder_frames_arg $ dump_dir_arg $ lane_frames)

let shell_cmd =
  let run scale policy =
    let deploy = build_deployment scale in
    let engine = setup_engine deploy policy in
    let config = ref Config.Scs in
    Fmt.pr "IronSafe shell (scale %g). \\config <c> to switch, \\quit to exit.@." scale;
    let rec loop () =
      Fmt.pr "ironsafe[%s]> %!" (Config.abbrev !config);
      match input_line stdin with
      | exception End_of_file -> 0
      | "\\quit" | "\\q" -> 0
      | "" -> loop ()
      | line when String.length line > 8 && String.sub line 0 8 = "\\config " -> (
          match Config.of_string (String.trim (String.sub line 8 (String.length line - 8))) with
          | Some c ->
              config := c;
              loop ()
          | None ->
              Fmt.pr "unknown config@.";
              loop ())
      | line ->
          (match Engine.submit engine ~client:"cli" ~config:!config ~sql:line () with
          | Ok resp ->
              Fmt.pr "%a" Sql.Exec.pp_result resp.Engine.resp_result;
              print_metrics resp.Engine.resp_metrics
          | Error e -> Fmt.pr "error: %s@." e);
          loop ()
    in
    loop ()
  in
  Cmd.v
    (Cmd.info "shell" ~doc:"Interactive policy-checked SQL shell")
    Term.(const run $ scale_arg $ policy_arg)

let forensics_cmd =
  let dir =
    Arg.(
      required
      & pos 0 (some dir) None
      & info [] ~docv:"DIR"
          ~doc:
            "Flight recorder dump directory (or any directory of JSONL \
             event logs).")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"ID"
          ~doc:"Restrict the timeline to one trace id (hex).")
  in
  let run dir trace =
    print_string (Ironsafe_obs.Forensics.report_dir ?trace dir);
    0
  in
  Cmd.v
    (Cmd.info "forensics"
       ~doc:
         "Reconstruct per-query causal timelines (host/shard hops, WAL \
          records, fault sites, policy decisions, SLO breaches) from flight \
          recorder dumps and event logs")
    Term.(const run $ dir $ trace)

let () =
  let info =
    Cmd.info "ironsafe-cli" ~version:"1.0.0"
      ~doc:"Secure policy-compliant query processing on computational storage"
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ query_cmd; tpch_cmd; workload_cmd; shell_cmd; forensics_cmd ]))
