(** Cost attribution by category, backing the breakdown figures. *)

type t

val create : unit -> t

val charge : t -> string -> float -> unit
(** [charge t category ns] adds [ns] to [category]. *)

val total : t -> float
val get : t -> string -> float
val categories : t -> string list
val breakdown : t -> (string * float) list
val reset : t -> unit
val merge : into:t -> t -> unit
val pp : Format.formatter -> t -> unit
