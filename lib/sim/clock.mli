(** Simulated per-node monotonic clock (virtual nanoseconds). *)

type t

val create : unit -> t
val now : t -> float
val advance : t -> float -> unit
val reset : t -> unit

val sync : t -> t -> float -> unit
(** [sync a b transfer_ns] models a blocking message exchange: both
    clocks move to [max now_a now_b + transfer_ns].
    @raise Invalid_argument on a negative [transfer_ns] (validation
    parity with {!advance}). *)
