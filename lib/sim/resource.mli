(** Memory meter with optional capacity, for constrained-resource
    experiments (Fig. 11). *)

type t

val create : ?limit_bytes:int -> unit -> t

val allocate : t -> int -> [ `Fits | `Spill of int ]
(** Track an allocation; [`Spill n] reports how many of the new bytes
    exceed the configured limit (caller charges spill cost).

    Spill semantics: only the {e overflow} fraction of the new
    allocation spills — [n = min bytes (used - limit)] after the
    allocation is counted. Bytes already over the limit from earlier
    allocations are not re-reported; each byte of overflow is charged
    exactly once, when it first crosses the limit. [spilled_bytes]
    accumulates these overflow bytes until [reset]. Releasing memory
    back below the limit does {e not} un-spill: the thrash already
    happened. *)

val release : t -> int -> unit
(** Return [bytes] to the meter.
    @raise Invalid_argument if [bytes] is negative or exceeds the
    currently allocated amount — a double release is a caller bug and
    must not be silently clamped away. *)

val reset : t -> unit
val used : t -> int
val high_water : t -> int
val spilled_bytes : t -> int
val limit : t -> int option
