(** Memory meter with optional capacity, for constrained-resource
    experiments (Fig. 11). *)

type t

val create : ?limit_bytes:int -> unit -> t

val allocate : t -> int -> [ `Fits | `Spill of int ]
(** Track an allocation; [`Spill n] reports how many of the new bytes
    exceed the configured limit (caller charges spill cost).

    Spill semantics: only the {e overflow} fraction of the new
    allocation spills — [n = min bytes (used - limit)] after the
    allocation is counted. Bytes already over the limit from earlier
    allocations are not re-reported; each byte of overflow is charged
    exactly once, when it first crosses the limit. [spilled_bytes]
    accumulates these overflow bytes until [reset]. Releasing memory
    back below the limit does {e not} un-spill: the thrash already
    happened. *)

val release : t -> int -> [ `Ok | `Over_release of int ]
(** Return [bytes] to the meter. Releasing more than is currently
    allocated (a double release — recovery paths can hit this when a
    crash interrupts an allocate/release pair and cleanup runs twice)
    clamps the meter to zero, counts the incident ({!over_releases})
    and reports the excess as [`Over_release excess] instead of
    raising, so a fault-injection sweep degrades rather than aborts.
    @raise Invalid_argument if [bytes] is negative. *)

val reset : t -> unit
val used : t -> int
val high_water : t -> int
val spilled_bytes : t -> int

val over_releases : t -> int
(** Double releases absorbed since the last {!reset}. *)

val limit : t -> int option
