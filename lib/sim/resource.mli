(** Memory meter with optional capacity, for constrained-resource
    experiments (Fig. 11). *)

type t

val create : ?limit_bytes:int -> unit -> t

val allocate : t -> int -> [ `Fits | `Spill of int ]
(** Track an allocation; [`Spill n] reports how many of the new bytes
    exceed the configured limit (caller charges spill cost). *)

val release : t -> int -> unit
val reset : t -> unit
val used : t -> int
val high_water : t -> int
val spilled_bytes : t -> int
val limit : t -> int option
