(** A simulated machine (CPU, clock, trace, memory) — the unit on which
    query work, crypto and I/O costs are charged. *)

type t

val create :
  ?cores:int ->
  ?mem_limit:int ->
  params:Params.t ->
  name:string ->
  Cpu.kind ->
  t

val name : t -> string
val cpu : t -> Cpu.t
val clock : t -> Clock.t
val trace : t -> Trace.t
val memory : t -> Resource.t
val params : t -> Params.t

val now : t -> float
(** Current virtual time (ns). *)

val charge : t -> category:string -> float -> unit
(** Advance the clock and attribute the time. *)

val with_span :
  ?attrs:(string * string) list -> t -> name:string -> (unit -> 'a) -> 'a
(** Run [f] inside an observability span scoped to this node and
    timestamped with its virtual clock (no-op while tracing is off). *)

val compute : t -> category:string -> row_ops:int -> unit
(** Charge row-operator work, Amdahl-scaled over the node's cores. *)

val fixed : t -> category:string -> float -> unit
(** Charge non-parallelizable fixed-cost work. *)

val allocate : t -> category:string -> int -> unit
(** Track memory; beyond the node's limit, charges spill/thrash time. *)

val release : t -> int -> unit
(** Return bytes to the meter. A double release is absorbed (meter
    clamps at zero) and counted — see {!Resource.release} — never
    raised, so recovery paths that release twice degrade the
    accounting instead of aborting the sweep. *)

val reset : t -> unit

val fixed_parallel : t -> category:string -> float -> unit
(** Fixed-cost work parallelized over the node's cores (Amdahl). *)

val compute_serial : t -> category:string -> row_ops:int -> unit
(** Row work on exactly one core (a single engine instance). *)
