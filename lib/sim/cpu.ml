(* CPU speed model.

   A node's query work is expressed in abstract row-operator steps; a
   host (x86) core retires one step per [host_row_ns]. ARM storage
   cores are [arm_slowdown] slower per core. Multi-core scaling follows
   Amdahl's law with the parallelizable fraction from {!Params}. *)

type kind = Host_x86 | Storage_arm

let pp_kind ppf = function
  | Host_x86 -> Fmt.string ppf "host(x86)"
  | Storage_arm -> Fmt.string ppf "storage(arm)"

type t = { kind : kind; cores : int; params : Params.t }

let create ?(cores = 1) ~params kind =
  if cores < 1 then invalid_arg "Cpu.create: cores must be >= 1";
  { kind; cores; params }

let kind t = t.kind
let cores t = t.cores

let row_ns t =
  match t.kind with
  | Host_x86 -> t.params.Params.host_row_ns
  | Storage_arm -> t.params.Params.host_row_ns *. t.params.Params.arm_slowdown

(* Amdahl: time(n) = t1 * ((1-p) + p/n) *)
let amdahl t single_thread_ns =
  let p = t.params.Params.parallel_fraction in
  single_thread_ns *. (1.0 -. p +. (p /. float_of_int t.cores))

let work_ns t ~row_ops = amdahl t (float_of_int row_ops *. row_ns t)

let scalar_ns t ns =
  (* non-parallelizable fixed work (e.g. crypto on one page) scaled by
     the per-core speed ratio *)
  match t.kind with
  | Host_x86 -> ns
  | Storage_arm -> ns *. 1.0
(* crypto constants in Params are already calibrated per platform where
   they matter (decrypt_page_ns etc. measured on ARM); generic scalar
   work passes through unchanged *)
