(* A simulated machine: CPU + clock + cost trace + memory meter.

   All model charging funnels through [charge] so that every
   nanosecond of virtual time is attributed to a category. *)

type t = {
  name : string;
  cpu : Cpu.t;
  clock : Clock.t;
  trace : Trace.t;
  memory : Resource.t;
  params : Params.t;
}

let create ?(cores = 1) ?mem_limit ~params ~name kind =
  {
    name;
    cpu = Cpu.create ~cores ~params kind;
    clock = Clock.create ();
    trace = Trace.create ();
    memory = Resource.create ?limit_bytes:mem_limit ();
    params;
  }

let name t = t.name
let cpu t = t.cpu
let clock t = t.clock
let trace t = t.trace
let memory t = t.memory
let params t = t.params
let now t = Clock.now t.clock

let charge t ~category ns =
  Clock.advance t.clock ns;
  Trace.charge t.trace category ns;
  Tape.on_charge ~node:t.name ~category ns;
  Ironsafe_obs.Obs.on_charge ~node:t.name ~category ns

(* Observability span scoped to this node, timestamped with its
   virtual clock. *)
let with_span ?attrs t ~name f =
  Ironsafe_obs.Span.with_ ?attrs ~name ~scope:t.name
    ~clock:(fun () -> Clock.now t.clock)
    f

(* Query compute: row-operator steps, Amdahl-scaled over the cores. *)
let compute t ~category ~row_ops =
  charge t ~category (Cpu.work_ns t.cpu ~row_ops)

(* Fixed-cost work (crypto, transitions) that does not parallelize. *)
let fixed t ~category ns = charge t ~category (Cpu.scalar_ns t.cpu ns)

(* Memory accounting: spills charge thrash time proportional to the
   overflow (two extra NVMe round-trips per spilled page). *)
let allocate t ~category bytes =
  match Resource.allocate t.memory bytes with
  | `Fits -> ()
  | `Spill over ->
      let pages = float_of_int over /. float_of_int t.params.Params.page_size in
      charge t ~category (pages *. 2.0 *. t.params.Params.nvme_page_ns)

(* Over-releases (double releases from crash-interrupted cleanup under
   fault injection) are absorbed by the meter and surfaced as a
   counter rather than an exception, so a sweep degrades instead of
   aborting; [Resource.over_releases] keeps the tally. *)
let release t bytes =
  match Resource.release t.memory bytes with
  | `Ok -> ()
  | `Over_release _ -> Ironsafe_obs.Obs.count ~scope:"sim" "over_releases"

let reset t =
  Clock.reset t.clock;
  Trace.reset t.trace;
  Resource.reset t.memory

(* Fixed-cost work spread over a thread pool on this node (Amdahl). *)
let fixed_parallel t ~category ns =
  charge t ~category (Cpu.amdahl t.cpu (Cpu.scalar_ns t.cpu ns))

(* Strictly single-threaded row work (one engine instance). *)
let compute_serial t ~category ~row_ops =
  charge t ~category (float_of_int row_ops *. Cpu.row_ns t.cpu)
