(* Named cost attribution: each advance of a node's clock is also
   charged to a category (ndp compute, freshness, decryption, network,
   other, ...), which is exactly the data Figures 8 and 9c plot. *)

type t = { table : (string, float) Hashtbl.t; mutable events : int }

let create () = { table = Hashtbl.create 16; events = 0 }

let charge t category ns =
  t.events <- t.events + 1;
  let cur = Option.value ~default:0.0 (Hashtbl.find_opt t.table category) in
  Hashtbl.replace t.table category (cur +. ns)

let total t = Hashtbl.fold (fun _ v acc -> acc +. v) t.table 0.0
let get t category = Option.value ~default:0.0 (Hashtbl.find_opt t.table category)

let categories t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.table [] |> List.sort compare

let breakdown t =
  List.map (fun c -> (c, get t c)) (categories t)

let reset t =
  Hashtbl.reset t.table;
  t.events <- 0

let merge ~into src =
  Hashtbl.iter (fun k v -> charge into k v) src.table

let pp ppf t =
  let tot = total t in
  List.iter
    (fun (c, v) ->
      Fmt.pf ppf "%-12s %12.3f ms (%5.1f%%)@." c (v /. 1e6)
        (if tot > 0.0 then 100.0 *. v /. tot else 0.0))
    (breakdown t)
