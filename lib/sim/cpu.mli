(** Per-node CPU speed model (x86 host vs ARM storage cores, Amdahl
    multi-core scaling). *)

type kind = Host_x86 | Storage_arm

val pp_kind : Format.formatter -> kind -> unit

type t

val create : ?cores:int -> params:Params.t -> kind -> t
val kind : t -> kind
val cores : t -> int

val row_ns : t -> float
(** Nanoseconds to retire one row-operator step on one core. *)

val work_ns : t -> row_ops:int -> float
(** Wall time for [row_ops] steps across all cores (Amdahl). *)

val amdahl : t -> float -> float
(** Scale a single-threaded duration across this CPU's cores. *)

val scalar_ns : t -> float -> float
(** Fixed-cost work that does not parallelize. *)
