(** Cost-segment recorder: captures the primitive clock operations of a
    query run (per-node charges, blocking syncs) in program order, for
    replay as interleavable events by the workload scheduler. *)

type event =
  | Charge of { node : string; category : string; ns : float }
      (** one {!Node.charge}: [ns] of virtual time on [node],
          attributed to [category] *)
  | Sync of { transfer_ns : float }
      (** one {!Clock.sync}: a blocking exchange; both clocks move to
          [max + transfer_ns] *)

val capture : (unit -> 'a) -> 'a * event list
(** Run a thunk with recording on; returns its result and the recorded
    events, oldest first. Nested captures record to the innermost
    recorder; the previous one is restored on exit (also on raise). *)

val capturing : unit -> bool

val on_charge : node:string -> category:string -> float -> unit
(** Hook called by {!Node.charge} (no-op unless capturing). *)

val on_sync : transfer_ns:float -> unit
(** Hook called by {!Clock.sync} (no-op unless capturing). *)

val total_ns : event list -> float
(** Sum of all charged and transfer time — an upper bound on the
    single-node serial latency, {e not} the end-to-end latency (which
    takes the max of two clocks at each sync). *)

(** {2 Interned tapes}

    Struct-of-arrays form of a tape for mass replay: per event one
    class int, one node index, one float, and the precomputed
    ["node.category"] label — a replaying session then carries only an
    int cursor into the shared arrays. Interning is structural and
    global: the same event sequence always returns the same physical
    instance, so any number of sessions (and repeated profilings of
    the same query shape) share one copy. *)

type interned

(** Event classes in {!cls}: ordinary charge, IO charge (routes to the
    device server), EPC charge (inflated by concurrent residency), or
    a blocking sync. *)

val cls_charge : int
val cls_io : int
val cls_epc : int
val cls_sync : int

val intern : event list -> interned
(** Canonical shared interned form of [events] (structural memo). *)

val intern_count : unit -> int
(** Number of distinct tapes interned so far (process-wide). *)

val interned_length : interned -> int
val interned_nodes : interned -> string array
(** Distinct node names charged by the tape, first-appearance order. *)

val cls : interned -> int -> int
val node_id : interned -> int -> int
(** Index into {!interned_nodes}; [-1] for syncs. *)

val ns : interned -> int -> float
(** Charge duration, or sync transfer time. *)

val label : interned -> int -> string
(** Precomputed ["node.category"] replay label; [""] for syncs. *)

val interned_events : interned -> event list
(** Reconstruct the event-list form (for diffing and tests). *)

val interned_total_ns : interned -> float
(** = {!total_ns} of {!interned_events}. *)

val pp_event : Format.formatter -> event -> unit
