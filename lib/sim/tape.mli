(** Cost-segment recorder: captures the primitive clock operations of a
    query run (per-node charges, blocking syncs) in program order, for
    replay as interleavable events by the workload scheduler. *)

type event =
  | Charge of { node : string; category : string; ns : float }
      (** one {!Node.charge}: [ns] of virtual time on [node],
          attributed to [category] *)
  | Sync of { transfer_ns : float }
      (** one {!Clock.sync}: a blocking exchange; both clocks move to
          [max + transfer_ns] *)

val capture : (unit -> 'a) -> 'a * event list
(** Run a thunk with recording on; returns its result and the recorded
    events, oldest first. Nested captures record to the innermost
    recorder; the previous one is restored on exit (also on raise). *)

val capturing : unit -> bool

val on_charge : node:string -> category:string -> float -> unit
(** Hook called by {!Node.charge} (no-op unless capturing). *)

val on_sync : transfer_ns:float -> unit
(** Hook called by {!Clock.sync} (no-op unless capturing). *)

val total_ns : event list -> float
(** Sum of all charged and transfer time — an upper bound on the
    single-node serial latency, {e not} the end-to-end latency (which
    takes the max of two clocks at each sync). *)

val pp_event : Format.formatter -> event -> unit
