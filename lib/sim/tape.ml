(* Cost-segment tape: a recording of every primitive virtual-clock
   operation a query run performs, in program order.

   The sequential runner charges a query's costs as one atomic sequence
   of clock advances and blocking syncs. The workload scheduler
   (lib/sched) needs those same costs as *interleavable* events — so it
   captures a run under [capture], then replays the tape through
   contended resource servers. Replaying a tape alone reproduces the
   sequential clocks bit-for-bit: [Charge] advances one node's clock by
   [ns], [Sync] moves both clocks to [max + transfer_ns], exactly the
   arithmetic of {!Node.charge} and {!Clock.sync}.

   The hook is one ref dereference when no capture is active, so the
   normal (unrecorded) paths pay nothing. *)

type event =
  | Charge of { node : string; category : string; ns : float }
  | Sync of { transfer_ns : float }

let recorder : (event -> unit) option ref = ref None

let on_charge ~node ~category ns =
  match !recorder with
  | None -> ()
  | Some f -> f (Charge { node; category; ns })

let on_sync ~transfer_ns =
  match !recorder with None -> () | Some f -> f (Sync { transfer_ns })

let capturing () = !recorder <> None

let capture f =
  let buf = ref [] in
  let prev = !recorder in
  recorder := Some (fun e -> buf := e :: !buf);
  let r = Fun.protect ~finally:(fun () -> recorder := prev) f in
  (r, List.rev !buf)

let total_ns events =
  List.fold_left
    (fun acc -> function
      | Charge { ns; _ } -> acc +. ns
      | Sync { transfer_ns } -> acc +. transfer_ns)
    0.0 events

let pp_event ppf = function
  | Charge { node; category; ns } ->
      Fmt.pf ppf "charge %s/%s %.1fns" node category ns
  | Sync { transfer_ns } -> Fmt.pf ppf "sync %.1fns" transfer_ns
