(* Cost-segment tape: a recording of every primitive virtual-clock
   operation a query run performs, in program order.

   The sequential runner charges a query's costs as one atomic sequence
   of clock advances and blocking syncs. The workload scheduler
   (lib/sched) needs those same costs as *interleavable* events — so it
   captures a run under [capture], then replays the tape through
   contended resource servers. Replaying a tape alone reproduces the
   sequential clocks bit-for-bit: [Charge] advances one node's clock by
   [ns], [Sync] moves both clocks to [max + transfer_ns], exactly the
   arithmetic of {!Node.charge} and {!Clock.sync}.

   The hook is one ref dereference when no capture is active, so the
   normal (unrecorded) paths pay nothing. *)

type event =
  | Charge of { node : string; category : string; ns : float }
  | Sync of { transfer_ns : float }

let recorder : (event -> unit) option ref = ref None

let on_charge ~node ~category ns =
  match !recorder with
  | None -> ()
  | Some f -> f (Charge { node; category; ns })

let on_sync ~transfer_ns =
  match !recorder with None -> () | Some f -> f (Sync { transfer_ns })

let capturing () = !recorder <> None

let capture f =
  let buf = ref [] in
  let prev = !recorder in
  recorder := Some (fun e -> buf := e :: !buf);
  let r = Fun.protect ~finally:(fun () -> recorder := prev) f in
  (r, List.rev !buf)

let total_ns events =
  List.fold_left
    (fun acc -> function
      | Charge { ns; _ } -> acc +. ns
      | Sync { transfer_ns } -> acc +. transfer_ns)
    0.0 events

(* -- interned tapes ---------------------------------------------------- *)

(* A workload replays the same ~16 query shapes across up to 10^6
   sessions; keeping one [event list] per session (or even walking a
   shared list) pays a pointer chase and a variant match per event.
   The interned form is a struct-of-arrays: per event one class int,
   one node index, one float, plus the replay label precomputed once —
   a session then needs only an int cursor. Interning is structural
   and global: capturing the same tape twice (e.g. re-profiling a
   query shape for another sweep point) returns the same shared
   instance, so 10^6 sessions replaying 16 shapes share 16 arrays. *)

(* event classes in [cls] *)
let cls_charge = 0
let cls_io = 1
let cls_epc = 2
let cls_sync = 3

type interned = {
  i_nodes : string array;  (** distinct node names, first-appearance order *)
  i_node : int array;  (** per event: index into [i_nodes]; -1 for syncs *)
  i_cls : int array;  (** per event: [cls_charge|cls_io|cls_epc|cls_sync] *)
  i_ns : float array;  (** charge ns, or sync transfer ns *)
  i_cat : string array;  (** category; "" for syncs *)
  i_label : string array;  (** precomputed ["node.category"]; "" for syncs *)
}

let interned_length it = Array.length it.i_cls
let interned_nodes it = it.i_nodes
let cls it i = it.i_cls.(i)
let node_id it i = it.i_node.(i)
let ns it i = it.i_ns.(i)
let label it i = it.i_label.(i)

let build_interned events =
  let n = List.length events in
  let nodes = ref [] and n_nodes = ref 0 in
  let node_ids : (string, int) Hashtbl.t = Hashtbl.create 4 in
  let node_id name =
    match Hashtbl.find_opt node_ids name with
    | Some i -> i
    | None ->
        let i = !n_nodes in
        Hashtbl.add node_ids name i;
        nodes := name :: !nodes;
        incr n_nodes;
        i
  in
  (* category and label strings are interned too, so every event of a
     shape shares one physical string *)
  let strings : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let share s =
    match Hashtbl.find_opt strings s with
    | Some s -> s
    | None ->
        Hashtbl.add strings s s;
        s
  in
  let i_node = Array.make n (-1) in
  let i_cls = Array.make n cls_sync in
  let i_ns = Array.make n 0.0 in
  let i_cat = Array.make n "" in
  let i_label = Array.make n "" in
  List.iteri
    (fun i -> function
      | Charge { node; category; ns } ->
          i_node.(i) <- node_id node;
          i_cls.(i) <-
            (if category = "io" then cls_io
             else if category = "epc" then cls_epc
             else cls_charge);
          i_ns.(i) <- ns;
          i_cat.(i) <- share category;
          i_label.(i) <- share (node ^ "." ^ category)
      | Sync { transfer_ns } ->
          i_cls.(i) <- cls_sync;
          i_ns.(i) <- transfer_ns)
    events;
  {
    i_nodes = Array.of_list (List.rev !nodes);
    i_node;
    i_cls;
    i_ns;
    i_cat;
    i_label;
  }

let intern_table : (event list, interned) Hashtbl.t = Hashtbl.create 64

let intern events =
  match Hashtbl.find_opt intern_table events with
  | Some it -> it
  | None ->
      let it = build_interned events in
      Hashtbl.add intern_table events it;
      it

let intern_count () = Hashtbl.length intern_table

let interned_events it =
  List.init (interned_length it) (fun i ->
      if it.i_cls.(i) = cls_sync then Sync { transfer_ns = it.i_ns.(i) }
      else
        Charge
          {
            node = it.i_nodes.(it.i_node.(i));
            category = it.i_cat.(i);
            ns = it.i_ns.(i);
          })

let interned_total_ns it = Array.fold_left ( +. ) 0.0 it.i_ns

let pp_event ppf = function
  | Charge { node; category; ns } ->
      Fmt.pf ppf "charge %s/%s %.1fns" node category ns
  | Sync { transfer_ns } -> Fmt.pf ppf "sync %.1fns" transfer_ns
