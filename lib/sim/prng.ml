(* Shared splitmix64 stream.

   One seeded implementation serves every subsystem that needs
   reproducible randomness on the virtual timeline: fault plans
   (lib/fault) and workload arrival processes (lib/sched) draw from
   instances of this generator, so "same seed, same schedule" holds
   across the whole stack instead of per-copy.

   The state advances by the golden gamma; the output is the mixed
   state. Small, fast, and plenty for schedule generation. *)

type t = { mutable state : int64 }

(* The state is the seed itself (not pre-mixed): existing consumers
   (fault plans) rely on this exact stream for their seeded CI
   matrices. *)
let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_u64 t =
  let open Int64 in
  let s = add t.state 0x9E3779B97F4A7C15L in
  t.state <- s;
  let z = mul (logxor s (shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let uniform t =
  (* top 53 bits -> [0,1) *)
  Int64.to_float (Int64.shift_right_logical (next_u64 t) 11) /. 9007199254740992.0

let rand_int t bound =
  if bound <= 0 then 0
  else
    Int64.to_int
      (Int64.rem (Int64.shift_right_logical (next_u64 t) 1) (Int64.of_int bound))

(* Inverse-CDF exponential draw; [uniform] is in [0,1) so the argument
   of [log] is in (0,1] and the result is finite and non-negative.
   [mean = 0] degenerates to a zero delay (still consumes one draw, so
   schedules stay aligned across parameterizations). *)
let exponential t ~mean_ns =
  if mean_ns < 0.0 then invalid_arg "Prng.exponential: negative mean";
  if mean_ns = 0.0 then begin
    ignore (uniform t);
    0.0
  end
  else -.mean_ns *. log (1.0 -. uniform t)

(* An independent child stream: seeded from the parent's next output,
   so forks are reproducible but decorrelated from the parent's
   subsequent draws. *)
let fork t = { state = next_u64 t }

(* The splitmix64 output finalizer on its own: a bijective avalanche
   mix, used to derive decorrelated child states from (state, index)
   pairs without consuming any parent draws. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* [split] derives the [index]-th child stream of the parent's
   *current* state without advancing the parent: the pair
   (state, index) is folded through the finalizer, so adjacent indices
   land on unrelated trajectories. Unlike [fork], splitting is a pure
   read — per-session streams can be derived on demand (session id as
   index) while the parent keeps generating, and the same
   (seed, index) always yields the same stream. *)
let split t ~index =
  if index < 0 then invalid_arg "Prng.split: negative index";
  let open Int64 in
  {
    state =
      mix64
        (add (mix64 t.state)
           (mul 0x9E3779B97F4A7C15L (of_int (index + 1))));
  }

(* O(1) jump: the state advances by the golden gamma once per
   [next_u64], so skipping [n] draws is one multiply-add. *)
let jump t n =
  if n < 0 then invalid_arg "Prng.jump: negative count";
  t.state <- Int64.add t.state (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int n))
