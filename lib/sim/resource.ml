(* Memory meter with an optional capacity limit.

   The storage-side memory sweep (Fig. 11) needs queries to slow down
   when their working set exceeds the configured limit: every byte
   touched beyond capacity pays a spill penalty (modelling hash-join
   partitioning to disk / page-cache thrashing). *)

type t = {
  limit_bytes : int option;
  mutable used : int;
  mutable high_water : int;
  mutable spilled : int;
  mutable over_releases : int;
}

let create ?limit_bytes () =
  (match limit_bytes with
  | Some l when l <= 0 -> invalid_arg "Resource.create: non-positive limit"
  | _ -> ());
  { limit_bytes; used = 0; high_water = 0; spilled = 0; over_releases = 0 }

let allocate t bytes =
  if bytes < 0 then invalid_arg "Resource.allocate: negative size";
  t.used <- t.used + bytes;
  if t.used > t.high_water then t.high_water <- t.used;
  match t.limit_bytes with
  | Some limit when t.used > limit ->
      let over = min bytes (t.used - limit) in
      t.spilled <- t.spilled + over;
      `Spill over
  | _ -> `Fits

(* Releasing more than is currently allocated is a caller bug (a
   double release) — but one that recovery paths can hit when a crash
   interrupts an allocate/release pair and the cleanup runs twice.
   Raising here used to abort a whole fault-injection sweep on the
   first double release; instead the meter clamps to zero, counts the
   incident, and reports it as a typed result the caller can surface
   without unwinding the simulation. Negative sizes remain a plain
   programming error. *)
let release t bytes =
  if bytes < 0 then invalid_arg "Resource.release: negative size";
  if bytes > t.used then begin
    let over = bytes - t.used in
    t.used <- 0;
    t.over_releases <- t.over_releases + 1;
    `Over_release over
  end
  else begin
    t.used <- t.used - bytes;
    `Ok
  end

let reset t =
  t.used <- 0;
  t.high_water <- 0;
  t.spilled <- 0;
  t.over_releases <- 0

let used t = t.used
let high_water t = t.high_water
let spilled_bytes t = t.spilled
let over_releases t = t.over_releases
let limit t = t.limit_bytes
