(* Memory meter with an optional capacity limit.

   The storage-side memory sweep (Fig. 11) needs queries to slow down
   when their working set exceeds the configured limit: every byte
   touched beyond capacity pays a spill penalty (modelling hash-join
   partitioning to disk / page-cache thrashing). *)

type t = {
  limit_bytes : int option;
  mutable used : int;
  mutable high_water : int;
  mutable spilled : int;
}

let create ?limit_bytes () =
  (match limit_bytes with
  | Some l when l <= 0 -> invalid_arg "Resource.create: non-positive limit"
  | _ -> ());
  { limit_bytes; used = 0; high_water = 0; spilled = 0 }

let allocate t bytes =
  if bytes < 0 then invalid_arg "Resource.allocate: negative size";
  t.used <- t.used + bytes;
  if t.used > t.high_water then t.high_water <- t.used;
  match t.limit_bytes with
  | Some limit when t.used > limit ->
      let over = min bytes (t.used - limit) in
      t.spilled <- t.spilled + over;
      `Spill over
  | _ -> `Fits

(* Releasing more than is currently allocated is a caller bug (a
   double release), not a clampable condition: under concurrent
   interleavings a silent clamp-to-zero would mask the second release
   and corrupt every later spill computation. *)
let release t bytes =
  if bytes < 0 then invalid_arg "Resource.release: negative size";
  if bytes > t.used then
    invalid_arg "Resource.release: releasing more than allocated";
  t.used <- t.used - bytes

let reset t =
  t.used <- 0;
  t.high_water <- 0;
  t.spilled <- 0

let used t = t.used
let high_water t = t.high_water
let spilled_bytes t = t.spilled
let limit t = t.limit_bytes
