(* Every cost constant of the performance model in one place.

   Values are calibrated from the hardware of the paper's testbed
   (§6.1): Intel i9-10900K @ 3.7 GHz with SGX (SCONE), Solidrun
   Clearfog CX LX2K (16x Cortex-A72 @ 2.2 GHz), Samsung 970 EVO Plus
   NVMe (3329 MB/s seq. reads), 40 GbE network with 850 MB/s measured
   single-stream bandwidth. Where the paper gives no number we use
   published figures for the parts (SGX transition ~8 us, EPC fault
   ~40 us) — see EXPERIMENTS.md for the calibration discussion. *)

type t = {
  page_size : int;  (** bytes per database page (paper fixes 4 KiB) *)
  (* CPU *)
  host_row_ns : float;  (** host ns per row-operator step *)
  arm_slowdown : float;  (** ARM per-core slowdown vs host core *)
  parallel_fraction : float;  (** Amdahl fraction of query work that scales *)
  (* Storage medium *)
  nvme_page_ns : float;  (** NVMe read, per 4 KiB page *)
  page_cache_ns : float;  (** buffer-cache hit, per page *)
  (* Network *)
  net_bandwidth_bytes_per_ns : float;  (** 850 MB/s single stream *)
  net_latency_ns : float;  (** per message *)
  tls_handshake_ns : float;  (** per session *)
  tls_record_ns_per_byte : float;  (** channel encryption cost *)
  net_batch_bytes : int;  (** request/response message batch size *)
  (* SGX *)
  enclave_transition_ns : float;  (** one ecall or ocall *)
  epc_limit_bytes : int;  (** usable EPC (96 MiB on the testbed) *)
  epc_fault_ns : float;  (** one EPC page eviction+reload *)
  sgx_mee_ns_per_byte : float;  (** memory-encryption-engine tax *)
  (* TrustZone *)
  world_switch_ns : float;  (** SMC normal<->secure world switch *)
  rpmb_access_ns : float;  (** one RPMB read or write frame *)
  (* Secure storage crypto, per 4 KiB page (measured on ARM A72) *)
  decrypt_page_ns : float;
  crypto_lanes : int;
      (** decrypt lanes per page: CTR pages split into [crypto_lanes]
          independent keystream chunks decrypted in parallel (CBC chains
          blocks, so it always runs on one lane regardless) *)
  hmac_page_ns : float;
  merkle_node_ns : float;  (** one internal HMAC (64-byte input) *)
  offload_session_ns : float;
      (** per offloaded sub-query: storage-side CS service instantiation *)
  wal_append_ns : float;
      (** one WAL record: encode + AES-CTR encrypt + chain HMAC *)
  wal_flush_ns : float;
      (** one group-commit flush: log-device write path (the RPMB
          anchor bump is charged separately at [rpmb_access_ns]) *)
  (* Control path (trusted monitor) *)
  monitor_policy_ns : float;  (** policy parse + interpretation per query *)
  monitor_session_ns : float;  (** key issuance, proof signing, cleanup *)
  (* Attestation (Table 4 shape) *)
  ias_roundtrip_ns : float;  (** SCONE CAS / IAS verification round trip *)
  tz_attest_tee_ns : float;  (** secure-world quote generation (OP-TEE) *)
  tz_attest_ree_ns : float;  (** normal-world handling of the request *)
  tz_attest_interconnect_ns : float;  (** protocol rounds host<->storage *)
}

let default =
  {
    page_size = 4096;
    host_row_ns = 95.0;
    arm_slowdown = 3.1;
    parallel_fraction = 0.85;
    nvme_page_ns = 4096.0 /. 3.329; (* 3329 MB/s *)
    page_cache_ns = 120.0;
    net_bandwidth_bytes_per_ns = 0.85; (* 850 MB/s = 0.85 B/ns *)
    net_latency_ns = 50_000.0;
    tls_handshake_ns = 1_200_000.0;
    tls_record_ns_per_byte = 0.45;
    net_batch_bytes = 65536;
    enclave_transition_ns = 8_000.0;
    epc_limit_bytes = 96 * 1024 * 1024;
    epc_fault_ns = 40_000.0;
    sgx_mee_ns_per_byte = 0.30;
    world_switch_ns = 3_500.0;
    rpmb_access_ns = 180_000.0;
    decrypt_page_ns = 9_200.0;
    crypto_lanes = 1;
    hmac_page_ns = 6_100.0;
    merkle_node_ns = 2_000.0;
    offload_session_ns = 600_000.0;
    wal_append_ns = 1_800.0;
    wal_flush_ns = 12_000.0;
    monitor_policy_ns = 2_500_000.0; (* the paper's interpreter is Python *)
    monitor_session_ns = 600_000.0;
    ias_roundtrip_ns = 140_000_000.0; (* paper Table 4: CAS response *)
    tz_attest_tee_ns = 453_000_000.0; (* paper Table 4: TEE quote gen *)
    tz_attest_ree_ns = 54_000_000.0;
    tz_attest_interconnect_ns = 42_000_000.0;
  }

(* The networking layer of §5 "can be configured as: NVMe/PCIe, NVMe
   over fabrics (NVMe-oF), or TCP" (the paper evaluates TLS over
   TCP/IP). Profiles adjust the transport characteristics; channel
   protection (record crypto) is kept in all of them. *)
type interconnect = Tls_tcp | Nvme_of | Pcie

let interconnect_name = function
  | Tls_tcp -> "TLS/TCP"
  | Nvme_of -> "NVMe-oF"
  | Pcie -> "NVMe/PCIe"

let with_interconnect profile t =
  match profile with
  | Tls_tcp -> t
  | Nvme_of ->
      {
        t with
        net_bandwidth_bytes_per_ns = 2.2;
        net_latency_ns = 15_000.0;
        tls_handshake_ns = 400_000.0;
      }
  | Pcie ->
      {
        t with
        net_bandwidth_bytes_per_ns = 7.0;
        net_latency_ns = 2_000.0;
        tls_handshake_ns = 150_000.0;
      }
