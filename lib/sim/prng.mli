(** Shared seeded splitmix64 stream.

    The single deterministic-randomness implementation of the stack:
    fault plans ({!Ironsafe_fault.Fault}) and workload generators
    ({!Ironsafe_sched.Sched}) all draw from instances of this stream,
    so a seed reproduces the exact same schedule everywhere. *)

type t

val create : seed:int -> t
(** The initial state is the seed itself (no pre-mixing) — the stream
    consumed by existing seeded fault plans. *)

val copy : t -> t
(** Snapshot of the current state (advancing the copy does not advance
    the original). *)

val next_u64 : t -> int64

val uniform : t -> float
(** Uniform draw in [\[0, 1)] (top 53 bits of {!next_u64}). *)

val rand_int : t -> int -> int
(** [rand_int t bound] in [\[0, bound)]; [0] when [bound <= 0]. *)

val exponential : t -> mean_ns:float -> float
(** Exponential inter-arrival draw with the given mean (inverse CDF).
    [mean_ns = 0.] returns [0.] but still consumes one draw.
    @raise Invalid_argument on a negative mean. *)

val fork : t -> t
(** An independent child stream seeded from the parent's next output. *)

val split : t -> index:int -> t
(** [split t ~index] derives the [index]-th child stream of [t]'s
    current state {e without} advancing [t]: the (state, index) pair is
    avalanche-mixed, so children of adjacent indices are decorrelated
    from each other and from the parent's own continuation. Use for
    per-session streams (session id as index) and sampled-lane
    selection, where consuming parent draws would perturb the schedule.
    @raise Invalid_argument on a negative index. *)

val jump : t -> int -> unit
(** [jump t n] advances [t] by exactly [n] {!next_u64} draws in O(1)
    (the state moves by the golden gamma per draw).
    @raise Invalid_argument on a negative count. *)
