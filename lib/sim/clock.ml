(* Simulated monotonic clock, in nanoseconds of virtual time.

   Every node of the deployment owns a clock; operations advance it by
   model costs. End-to-end latency of a distributed exchange is taken
   with [sync], which models a blocking round: both clocks jump to the
   max plus the transfer time. *)

type t = { mutable now_ns : float }

let create () = { now_ns = 0.0 }
let now t = t.now_ns

let advance t ns =
  if ns < 0.0 then invalid_arg "Clock.advance: negative duration";
  t.now_ns <- t.now_ns +. ns

let reset t = t.now_ns <- 0.0

let sync a b transfer_ns =
  if transfer_ns < 0.0 then invalid_arg "Clock.sync: negative transfer";
  Tape.on_sync ~transfer_ns;
  let m = Float.max a.now_ns b.now_ns +. transfer_ns in
  a.now_ns <- m;
  b.now_ns <- m
