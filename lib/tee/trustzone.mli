(** ARM TrustZone device model: HUK, ROTPK-rooted secure boot with a
    Lamport-signed certificate chain, normal-world measurement, and the
    attestation TA protocol of Fig. 4b. *)

type device
type booted

type rom_cert = {
  attest_pk : Ironsafe_crypto.Signature.public_key;
  device_id : string;
  rom_signature : string array;
}

type attestation_response = {
  resp_device_id : string;
  resp_challenge : string;
  resp_normal_world_hash : string;
  resp_boot_chain : (string * string) list;
  resp_rom_cert : rom_cert;
  resp_signature : string;
}

val manufacture :
  ?location:string -> device_id:string -> Ironsafe_crypto.Drbg.t -> device
(** Factory step: fuse the HUK, generate the ROTPK, certify the device
    attestation key. *)

val device_id : device -> string

val hardware_key : device -> string
(** The HUK — available only to secure-world code (the secure storage
    TA derives its keys from it). *)

val location : device -> string

val rotpk : device -> Ironsafe_crypto.Lamport.public_key
(** Manufacturer-published root-of-trust verification key. *)

val provision : device -> Image.t list -> unit
(** Vendor signs the expected firmware images. *)

val secure_boot :
  device ->
  secure_stages:Image.t list ->
  normal_world:Image.t ->
  (booted, string) result
(** Verify each secure-world stage against its certificate, then
    measure (but not judge) the normal world. *)

val normal_world_hash : booted -> string
val normal_world_image : booted -> Image.t
val boot_chain : booted -> (string * string) list
val booted_device : booted -> device

val attest :
  ?faults:Ironsafe_fault.Fault.t ->
  booted ->
  challenge:string ->
  attestation_response
(** The attestation TA: signs challenge, normal-world hash and boot
    chain with the ROTPK-certified device key (one world switch).
    Under a fault plan, a fired [Tz_ta_crash] garbles the response
    signature so verification fails and the monitor must retry. *)

val verify_attestation :
  rotpk:Ironsafe_crypto.Lamport.public_key ->
  challenge:string ->
  attestation_response ->
  (unit, string) result

val world_switch : device -> unit
val world_switches : device -> int
val reset_counters : device -> unit
