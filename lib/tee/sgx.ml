(* Intel SGX model (§3.2): user-level enclaves with CPU-computed code
   measurement (MRENCLAVE), a per-platform attestation key certified by
   a simulated Intel root, and quote generation/verification — the
   functional contract remote attestation relies on. Performance
   effects (EPC limit, paging, transition cost) are charged by the
   runner from the transition/working-set counters kept here. *)

module C = Ironsafe_crypto
module Obs = Ironsafe_obs.Obs

type platform = {
  platform_id : string;
  qe_secret : C.Signature.secret_key; (* quoting-enclave attestation key *)
  qe_public : C.Signature.public_key;
  epc_limit : int;
}

(* The "Intel Attestation Service": a registry of genuine platforms.
   Quotes verify only if the platform key was provisioned here —
   modelling Intel's certification of on-chip keys. *)
type ias = { mutable genuine : (string * C.Signature.public_key) list }

let create_ias () = { genuine = [] }

let create_platform ?(epc_limit = 96 * 1024 * 1024) ~ias drbg =
  let qe_secret, qe_public = C.Signature.generate drbg in
  let platform_id = C.Hex.of_string (C.Drbg.generate drbg 8) in
  ias.genuine <- (platform_id, qe_public) :: ias.genuine;
  { platform_id; qe_secret; qe_public; epc_limit }

let platform_id p = p.platform_id
let epc_limit p = p.epc_limit

type enclave = {
  platform : platform;
  image : Image.t;
  mrenclave : string;
  mutable ecalls : int;
  mutable ocalls : int;
  mutable heap_used : int;
  mutable epc_faults : int;
  mutable aborted : bool;
      (* an asynchronous enclave exit (AEX) killed the enclave; all
         entries fail until [restart] rebuilds it *)
  mutable restarts : int;
}

exception Enclave_aborted

let launch platform image =
  {
    platform;
    image;
    mrenclave = Image.measurement image;
    ecalls = 0;
    ocalls = 0;
    heap_used = 0;
    epc_faults = 0;
    aborted = false;
    restarts = 0;
  }

let mrenclave e = e.mrenclave
let image e = e.image

(* Fault model: an injected abort (enclave dies mid-ECALL) makes every
   transition fail until the host restarts the enclave. A restarted
   enclave has the same measurement (same image) but lost all session
   state, so the monitor must re-attest it. *)
let inject_abort e =
  e.aborted <- true;
  Obs.count ~scope:"sgx" "aborts";
  Obs.event ~scope:"sgx" ~kind:"enclave.abort" []

let aborted e = e.aborted

let restart e =
  e.aborted <- false;
  e.restarts <- e.restarts + 1;
  e.heap_used <- 0;
  Obs.count ~scope:"sgx" "restarts";
  Obs.event ~scope:"sgx" ~kind:"enclave.restart"
    [ ("restarts", Ironsafe_obs.Event_log.I e.restarts) ]

let restarts e = e.restarts
let check_alive e = if e.aborted then raise Enclave_aborted

(* Transition accounting: the runner converts these to time. *)
let ecall e =
  check_alive e;
  e.ecalls <- e.ecalls + 1;
  Obs.count ~scope:"sgx" "ecall_count"

let ocall e =
  check_alive e;
  e.ocalls <- e.ocalls + 1;
  Obs.count ~scope:"sgx" "ocall_count"
let transitions e = e.ecalls + e.ocalls

(* Working-set accounting: touching memory beyond the EPC limit incurs
   paging faults, one per 4 KiB page beyond capacity. *)
let touch e bytes =
  e.heap_used <- max e.heap_used bytes;
  if bytes > e.platform.epc_limit then begin
    let over_pages = (bytes - e.platform.epc_limit + 4095) / 4096 in
    e.epc_faults <- e.epc_faults + over_pages;
    Obs.count ~scope:"sgx" ~n:over_pages "epc_faults";
    over_pages
  end
  else 0

let epc_faults e = e.epc_faults
let heap_used e = e.heap_used

let reset_counters e =
  e.ecalls <- 0;
  e.ocalls <- 0;
  e.heap_used <- 0;
  e.epc_faults <- 0

type quote = {
  quoted_mrenclave : string;
  report_data : string;
  quoted_platform : string;
  signature : string;
}

let quote_payload q =
  q.quoted_mrenclave ^ "\x00" ^ q.report_data ^ "\x00" ^ q.quoted_platform

let generate_quote e ~report_data =
  check_alive e;
  let q =
    {
      quoted_mrenclave = e.mrenclave;
      report_data;
      quoted_platform = e.platform.platform_id;
      signature = "";
    }
  in
  { q with signature = C.Signature.sign e.platform.qe_secret (quote_payload q) }

(* IAS-style verification: platform must be genuine and the signature
   must verify under its certified key. *)
let verify_quote ~ias q =
  match List.assoc_opt q.quoted_platform ias.genuine with
  | None -> Error "unknown platform (not certified by IAS)"
  | Some pk ->
      if C.Signature.verify pk (quote_payload q) q.signature then Ok ()
      else Error "quote signature invalid"
