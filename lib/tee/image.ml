(* A software image: named, versioned code blob. Measurements (SHA-256
   of the code) are what both TEE attestation flows report; versions
   feed the fwVersion* policy predicates. *)

type t = { name : string; version : int; code : string }

let create ~name ~version ~code =
  if version < 0 then invalid_arg "Image.create: negative version";
  { name; version; code }

let name t = t.name
let version t = t.version
let code t = t.code
let measurement t = Ironsafe_crypto.Sha256.digest (t.name ^ "\x00" ^ t.code)

(* An attacker-modified build of the same image: same name/version
   claim, different code, hence a different measurement. *)
let backdoored t = { t with code = t.code ^ "\n(* backdoor *)" }

let pp ppf t =
  Fmt.pf ppf "%s v%d (%s)" t.name t.version
    (String.sub (Ironsafe_crypto.Hex.of_string (measurement t)) 0 12)
