(** Named, versioned software images and their measurements. *)

type t

val create : name:string -> version:int -> code:string -> t
val name : t -> string
val version : t -> int
val code : t -> string

val measurement : t -> string
(** SHA-256 over name and code — the value attestation reports. *)

val backdoored : t -> t
(** Same claims, modified code: measurement changes. For attack tests. *)

val pp : Format.formatter -> t -> unit
