(* ARM TrustZone model (§3.2, §4.2):

   - a device is manufactured with a hardware unique key (HUK) and a
     root-of-trust public key (ROTPK) whose private half signs the
     vendor's firmware certificates — ROTPK uses Lamport one-time
     signatures, which are genuinely hash-based asymmetric;
   - secure boot validates each stage image against its certificate
     before handing over, producing a measurement chain; the trusted OS
     then measures the normal-world software (the storage engine) and
     records its hash;
   - the attestation TA answers challenges by signing
     (challenge | normal-world hash | boot chain digest) with a
     device attestation key derived from the HUK, whose public half is
     certified (at the factory) under the ROTPK.

   Boot stages mirror the paper's stack: ATF -> OP-TEE (trusted OS +
   TAs) -> normal world (Linux + storage engine). *)

module C = Ironsafe_crypto
module Fault = Ironsafe_fault.Fault

type cert = {
  cert_image_name : string;
  cert_image_version : int;
  cert_measurement : string;
  cert_signature : string; (* by the device attestation key *)
}

type rom_cert = {
  attest_pk : C.Signature.public_key;
  device_id : string;
  rom_signature : string array; (* Lamport, under the ROTPK *)
}

type device = {
  device_id : string;
  huk : string;
  rotpk_public : C.Lamport.public_key;
  attest_secret : C.Signature.secret_key;
  rom_cert : rom_cert;
  mutable provisioned : cert list;
  mutable world_switches : int;
  location : string;
}

let rom_cert_payload ~device_id ~attest_pk =
  "tz-rom-cert" ^ device_id ^ C.Signature.public_key_bytes attest_pk

(* Factory: fuse HUK, generate ROTPK, derive + certify the attestation
   key. The ROTPK secret is used exactly once (Lamport) and destroyed. *)
let manufacture ?(location = "eu-west") ~device_id drbg =
  let huk = C.Drbg.generate drbg 32 in
  let rotpk_secret, rotpk_public = C.Lamport.generate drbg in
  let attest_secret, attest_pk = C.Signature.generate drbg in
  let rom_signature =
    C.Lamport.sign rotpk_secret (rom_cert_payload ~device_id ~attest_pk)
  in
  {
    device_id;
    huk;
    rotpk_public;
    attest_secret;
    rom_cert = { attest_pk; device_id; rom_signature };
    provisioned = [];
    world_switches = 0;
    location;
  }

let device_id d = d.device_id
let hardware_key d = d.huk
let location d = d.location
let rotpk d = d.rotpk_public

let world_switch d =
  d.world_switches <- d.world_switches + 1;
  Ironsafe_obs.Obs.count ~scope:"trustzone" "world_switches"
let world_switches d = d.world_switches
let reset_counters d = d.world_switches <- 0

(* Vendor provisioning: sign the expected firmware images. *)
let provision d images =
  d.provisioned <-
    List.map
      (fun img ->
        {
          cert_image_name = Image.name img;
          cert_image_version = Image.version img;
          cert_measurement = Image.measurement img;
          cert_signature =
            C.Signature.sign d.attest_secret
              ("tz-fw-cert" ^ Image.name img ^ Image.measurement img);
        })
      images

type booted = {
  booted_device : device;
  boot_chain : (string * string) list; (* stage name, measurement *)
  normal_world : Image.t;
  normal_world_hash : string;
}

(* Trusted boot: every stage image must match a provisioned
   certificate; the last stage is the normal world, whose hash is
   recorded (not enforced at boot — the monitor decides whether the
   measured normal world is acceptable, §4.1). *)
let secure_boot d ~secure_stages ~normal_world =
  let verify img =
    match
      List.find_opt (fun c -> c.cert_image_name = Image.name img) d.provisioned
    with
    | None -> Error (Printf.sprintf "no certificate for stage %s" (Image.name img))
    | Some c ->
        if
          C.Constant_time.equal c.cert_measurement (Image.measurement img)
          && C.Signature.verify d.rom_cert.attest_pk
               ("tz-fw-cert" ^ Image.name img ^ c.cert_measurement)
               c.cert_signature
        then Ok (Image.name img, Image.measurement img)
        else Error (Printf.sprintf "stage %s failed verification" (Image.name img))
  in
  let rec boot acc = function
    | [] -> Ok (List.rev acc)
    | img :: rest -> (
        match verify img with
        | Ok entry -> boot (entry :: acc) rest
        | Error _ as e -> e)
  in
  match boot [] secure_stages with
  | Error e -> Error e
  | Ok chain ->
      Ok
        {
          booted_device = d;
          boot_chain = chain;
          normal_world;
          normal_world_hash = Image.measurement normal_world;
        }

let normal_world_hash b = b.normal_world_hash
let normal_world_image b = b.normal_world
let boot_chain b = b.boot_chain
let booted_device b = b.booted_device

type attestation_response = {
  resp_device_id : string;
  resp_challenge : string;
  resp_normal_world_hash : string;
  resp_boot_chain : (string * string) list;
  resp_rom_cert : rom_cert;
  resp_signature : string;
}

let chain_digest chain =
  C.Sha256.digest (String.concat ";" (List.map (fun (n, m) -> n ^ "=" ^ m) chain))

let response_payload ~challenge ~nw_hash ~chain =
  "tz-attest" ^ challenge ^ nw_hash ^ chain_digest chain

(* The attestation TA (secure world): one world switch per quote.

   Fault injection (plan-driven): a crashed TA emits a garbled
   signature — structurally a response, cryptographically garbage — so
   the verifier rejects it; the monitor's recovery path retries with a
   fresh challenge. *)
let attest ?(faults = Fault.none) b ~challenge =
  world_switch b.booted_device;
  let signature =
    C.Signature.sign b.booted_device.attest_secret
      (response_payload ~challenge ~nw_hash:b.normal_world_hash
         ~chain:b.boot_chain)
  in
  let signature =
    if Fault.enabled faults && Fault.fire faults Fault.Tz_ta_crash then begin
      let b = Bytes.of_string signature in
      let off = Fault.rand_int faults (Bytes.length b) in
      Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x01));
      Bytes.to_string b
    end
    else signature
  in
  {
    resp_device_id = b.booted_device.device_id;
    resp_challenge = challenge;
    resp_normal_world_hash = b.normal_world_hash;
    resp_boot_chain = b.boot_chain;
    resp_rom_cert = b.booted_device.rom_cert;
    resp_signature = signature;
  }

(* Verifier side (the trusted monitor): needs only the manufacturer's
   ROTPK public key for this device id. *)
let verify_attestation ~rotpk ~challenge resp =
  let cert = resp.resp_rom_cert in
  if cert.device_id <> resp.resp_device_id then Error "device id mismatch"
  else if
    not
      (C.Lamport.verify rotpk
         (rom_cert_payload ~device_id:cert.device_id ~attest_pk:cert.attest_pk)
         cert.rom_signature)
  then Error "ROM certificate invalid (not rooted in ROTPK)"
  else if resp.resp_challenge <> challenge then Error "challenge mismatch (replay?)"
  else if
    not
      (C.Signature.verify cert.attest_pk
         (response_payload ~challenge ~nw_hash:resp.resp_normal_world_hash
            ~chain:resp.resp_boot_chain)
         resp.resp_signature)
  then Error "attestation signature invalid"
  else Ok ()
