(** Intel SGX model: enclaves, MRENCLAVE measurement, EPC/transition
    accounting, and IAS-rooted quote verification. *)

type platform
type ias

val create_ias : unit -> ias
(** The simulated Intel Attestation Service (registry of genuine
    platform attestation keys). *)

val create_platform :
  ?epc_limit:int -> ias:ias -> Ironsafe_crypto.Drbg.t -> platform
(** A genuine SGX CPU, provisioned with an IAS-certified quoting key.
    Default EPC limit: 96 MiB (the testbed's usable EPC). *)

val platform_id : platform -> string
val epc_limit : platform -> int

type enclave

val launch : platform -> Image.t -> enclave
(** Load and measure an image; MRENCLAVE is fixed at launch. *)

val mrenclave : enclave -> string
val image : enclave -> Image.t

exception Enclave_aborted
(** Raised by transitions ([ecall]/[ocall]) and quote generation on an
    enclave that died (asynchronous enclave exit) until {!restart}. *)

val inject_abort : enclave -> unit
(** Fault injection: the enclave dies mid-ECALL (EPC eviction storm,
    AEX during a transition, ...). *)

val aborted : enclave -> bool

val restart : enclave -> unit
(** Host-side recovery: rebuild the enclave from its image. The
    measurement is unchanged but all session state is lost, so the
    trusted monitor must re-attest before trusting it again. *)

val restarts : enclave -> int
(** Restarts since launch (recovery telemetry). *)

val ecall : enclave -> unit
val ocall : enclave -> unit
val transitions : enclave -> int

val touch : enclave -> int -> int
(** [touch e bytes] records the enclave working set; returns the number
    of EPC paging faults this touch incurs (0 when within the limit). *)

val epc_faults : enclave -> int
val heap_used : enclave -> int
val reset_counters : enclave -> unit

type quote = {
  quoted_mrenclave : string;
  report_data : string;
  quoted_platform : string;
  signature : string;
}

val generate_quote : enclave -> report_data:string -> quote
val verify_quote : ias:ias -> quote -> (unit, string) result
