(** The trusted monitor (§4.2): the unified abstraction for
    attestation, key management and policy compliance. Clients trust
    only the monitor's public key; the monitor in turn verifies the
    host enclave (via the IAS) and the storage node (via the
    manufacturer ROTPK and the normal-world measurement registry)
    before authorizing any query. *)

type t

type host_info = {
  host_measurement : string;
  host_version : int;
  host_location : string;
  host_certificate : string;
}

type storage_info = {
  storage_device_id : string;
  storage_version : int;
  storage_location : string;
  storage_nw_hash : string;
}

type proof = {
  proof_query_digest : string;
  proof_policy_digest : string;
  proof_host_measurement : string;
  proof_storage_hash : string option;
  proof_date : Ironsafe_sql.Date.t;
  proof_signature : string;
}

type authorization = {
  auth_session_key : string;
  auth_stmt : Ironsafe_sql.Ast.stmt;  (** rewritten to be compliant *)
  auth_offload_allowed : bool;  (** at least one compliant storage node *)
  auth_compliant_storage : string list;
      (** device ids satisfying the execution policy (Fig. 5) *)
  auth_proof : proof;
  auth_obligations : Ironsafe_policy.Policy_eval.obligation list;
}

val create : ias:Ironsafe_tee.Sgx.ias -> seed:string -> t

val public_key : t -> Ironsafe_crypto.Signature.public_key
val audit_log : t -> Audit_log.t
val set_today : t -> Ironsafe_sql.Date.t -> unit
val today : t -> Ironsafe_sql.Date.t

(** {2 Registries} *)

val trust_host_image : t -> Ironsafe_tee.Image.t -> unit
(** Add a known-good host enclave measurement. *)

val trust_storage_device :
  t ->
  device_id:string ->
  rotpk:Ironsafe_crypto.Lamport.public_key ->
  normal_world:Ironsafe_tee.Image.t ->
  version:int ->
  unit

val register_client :
  t ->
  label:string ->
  pk:Ironsafe_crypto.Signature.public_key ->
  reuse_bit:int option ->
  unit

val set_access_policy :
  t -> database:string -> policy:Ironsafe_policy.Policy_ast.t -> unit

(** {2 Attestation (Fig. 4a / 4b)} *)

val attest_host :
  t -> quote:Ironsafe_tee.Sgx.quote -> location:string ->
  (host_info, string) result

val fresh_challenge : t -> string

val attest_storage :
  ?shard:int ->
  t ->
  challenge:string ->
  response:Ironsafe_tee.Trustzone.attestation_response ->
  location:string ->
  (storage_info, string) result
(** [shard] marks a cluster-session attestation: the monitor then
    appends one evidence entry per shard to the audit chain — on
    success {e and} on failure, so a rejected shard leaves its own
    distinct audit-chain entry — and the [attest.storage] forensics
    event carries the shard id. Without [shard] the audit and event
    streams are byte-identical to the single-node monitor. *)

(** {2 Authorization} *)

val authorize :
  t ->
  catalog:Ironsafe_sql.Catalog.t ->
  client_label:string ->
  database:string ->
  exec_policy:Ironsafe_policy.Policy_ast.t ->
  sql:string ->
  (authorization, string) result
(** Check the client against the access policy, the deployment against
    the execution policy, rewrite the query per the row-level residual,
    execute logging obligations, and issue a session key. Denials are
    recorded in the audit log. *)

val verify_proof : monitor_pk:Ironsafe_crypto.Signature.public_key -> proof -> bool

val session_valid : t -> string -> bool
val session_cleanup : t -> string -> unit

val attested_storage_nodes : t -> string list
(** Device ids of all currently attested storage nodes, newest first. *)

val attested_host : t -> host_info option

val verify_host_certificate :
  monitor_pk:Ironsafe_crypto.Signature.public_key ->
  host_pk:Ironsafe_crypto.Signature.public_key ->
  certificate:string ->
  bool
(** Check the monitor-issued certificate over the host engine's session
    public key (Fig. 4a, step 4). *)
