(* The trusted monitor (§4.2): unified abstraction for attestation, key
   management, and policy compliance. Runs inside its own SGX enclave
   in the real system; here it owns a signing keypair whose public half
   clients trust, registries of known-good software measurements, and
   the audit log.

   Protocol surface:
   - [attest_host]       Fig. 4a — verify an SGX quote via the IAS,
                         check the measurement registry, certify the
                         host's session public key;
   - [attest_storage]    Fig. 4b — challenge-response against the
                         attestation TA, verified against the
                         manufacturer ROTPK and the normal-world
                         measurement registry;
   - [authorize]         policy-compliant query admission: access
                         policy, execution policy, query rewriting,
                         session-key issuance, compliance proof;
   - [session_cleanup]   key revocation after the request completes. *)

module C = Ironsafe_crypto
module Tee = Ironsafe_tee
module P = Ironsafe_policy
module Sql = Ironsafe_sql
module Obs = Ironsafe_obs.Obs
module Ev = Ironsafe_obs.Event_log

let obs_scope = "monitor"

type host_info = {
  host_measurement : string;
  host_version : int;
  host_location : string;
  host_certificate : string; (* monitor-signed host public key *)
}

type storage_info = {
  storage_device_id : string;
  storage_version : int;
  storage_location : string;
  storage_nw_hash : string;
}

type client_info = {
  client_label : string;
  client_pk : C.Signature.public_key;
  reuse_bit : int option;
}

type proof = {
  proof_query_digest : string;
  proof_policy_digest : string;
  proof_host_measurement : string;
  proof_storage_hash : string option;
  proof_date : Sql.Date.t;
  proof_signature : string;
}

type session = {
  session_key : string;
  session_client : string;
  mutable revoked : bool;
}

type t = {
  drbg : C.Drbg.t;
  sk : C.Signature.secret_key;
  pk : C.Signature.public_key;
  ias : Tee.Sgx.ias;
  mutable trusted_host_measurements : (string * int) list;
  (* device_id -> (rotpk, expected normal-world measurement, version) *)
  mutable trusted_storage :
    (string * (C.Lamport.public_key * string * int)) list;
  mutable clients : client_info list;
  mutable access_policies : (string * P.Policy_ast.t) list;
  mutable attested_host : host_info option;
  (* all currently attested storage nodes, most recent first; the
     monitor sends the *list* of compliant nodes to the host (Fig. 5) *)
  mutable attested_storage : storage_info list;
  mutable sessions : session list;
  mutable latest_fw_host : int;
  mutable latest_fw_storage : int;
  audit : Audit_log.t;
  mutable today : Sql.Date.t;
}

let create ~ias ~seed =
  let drbg = C.Drbg.create ~seed in
  let sk, pk = C.Signature.generate drbg in
  {
    drbg;
    sk;
    pk;
    ias;
    trusted_host_measurements = [];
    trusted_storage = [];
    clients = [];
    access_policies = [];
    attested_host = None;
    attested_storage = [];
    sessions = [];
    latest_fw_host = 1;
    latest_fw_storage = 1;
    audit = Audit_log.create ~name:"ironsafe-audit" ~key:(C.Drbg.generate drbg 32);
    today = Sql.Date.of_ymd ~y:1998 ~m:12 ~d:1;
  }

let public_key t = t.pk
let audit_log t = t.audit
let set_today t d = t.today <- d
let today t = t.today

(* -- Registries ------------------------------------------------------ *)

let trust_host_image t image =
  t.trusted_host_measurements <-
    (Tee.Image.measurement image, Tee.Image.version image)
    :: t.trusted_host_measurements;
  t.latest_fw_host <-
    List.fold_left max 0 (List.map snd t.trusted_host_measurements)

let trust_storage_device t ~device_id ~rotpk ~normal_world ~version =
  t.trusted_storage <-
    (device_id, (rotpk, Tee.Image.measurement normal_world, version))
    :: t.trusted_storage;
  t.latest_fw_storage <-
    List.fold_left max 0
      (List.map (fun (_, (_, _, v)) -> v) t.trusted_storage)

let register_client t ~label ~pk ~reuse_bit =
  t.clients <- { client_label = label; client_pk = pk; reuse_bit } :: t.clients

let set_access_policy t ~database ~policy =
  t.access_policies <-
    (database, policy) :: List.remove_assoc database t.access_policies

let find_client t label =
  List.find_opt (fun c -> c.client_label = label) t.clients

(* -- Attestation (Fig. 4a / 4b) -------------------------------------- *)

let attest_host t ~quote ~location =
  Obs.count ~scope:obs_scope "attest_host";
  match Tee.Sgx.verify_quote ~ias:t.ias quote with
  | Error e -> Error (Printf.sprintf "host quote rejected: %s" e)
  | Ok () -> (
      match
        List.assoc_opt quote.Tee.Sgx.quoted_mrenclave t.trusted_host_measurements
      with
      | None -> Error "host measurement not in the trusted registry"
      | Some version ->
          (* certify the host's report data (its session public key) *)
          let cert =
            C.Signature.sign t.sk ("host-cert" ^ quote.Tee.Sgx.report_data)
          in
          let info =
            {
              host_measurement = quote.Tee.Sgx.quoted_mrenclave;
              host_version = version;
              host_location = location;
              host_certificate = cert;
            }
          in
          t.attested_host <- Some info;
          Ironsafe_obs.Span.instant ~name:"attest.host.ok" ~scope:obs_scope
            ~attrs:[ ("location", location) ]
            ();
          if Obs.enabled () then
            Obs.event ~scope:obs_scope ~kind:"attest.host"
              [
                ("ok", Ev.B true);
                ("location", Ev.S location);
                ( "measurement",
                  Ev.S (C.Hex.of_string quote.Tee.Sgx.quoted_mrenclave) );
              ];
          Ok info)

let fresh_challenge t = C.Drbg.generate t.drbg 32

let attest_storage ?shard t ~challenge ~response ~location =
  Obs.count ~scope:obs_scope "attest_storage";
  let device_id = response.Tee.Trustzone.resp_device_id in
  let result =
    match List.assoc_opt device_id t.trusted_storage with
    | None -> Error (Printf.sprintf "unknown storage device %s" device_id)
    | Some (rotpk, expected_nw, version) -> (
        match Tee.Trustzone.verify_attestation ~rotpk ~challenge response with
        | Error e -> Error (Printf.sprintf "storage attestation failed: %s" e)
        | Ok () ->
            if
              not
                (C.Constant_time.equal
                   response.Tee.Trustzone.resp_normal_world_hash expected_nw)
            then
              Error
                "storage normal-world measurement does not match the trusted \
                 registry"
            else begin
              let info =
                {
                  storage_device_id = device_id;
                  storage_version = version;
                  storage_location = location;
                  storage_nw_hash =
                    response.Tee.Trustzone.resp_normal_world_hash;
                }
              in
              t.attested_storage <-
                info
                :: List.filter
                     (fun s -> s.storage_device_id <> device_id)
                     t.attested_storage;
              Ok info
            end)
  in
  (* Cluster sessions pass [shard]: the monitor then records one
     evidence entry per shard in the hash-chained audit log — success
     or failure — so a rejected shard is observable as its own
     audit-chain entry. Single-node callers pass nothing and their
     audit/event streams stay byte-identical to the pre-cluster
     monitor. *)
  (match shard with
  | None -> ()
  | Some i ->
      let outcome =
        match result with
        | Ok _ -> "attested"
        | Error e -> "rejected: " ^ e
      in
      ignore
        (Audit_log.append t.audit ~date:t.today ~actor:"monitor"
           ~action:"attest-shard"
           ~detail:(Printf.sprintf "shard %d device %s %s" i device_id outcome)));
  (match result with
  | Ok _ ->
      Ironsafe_obs.Span.instant ~name:"attest.storage.ok" ~scope:obs_scope
        ~attrs:
          (("device", device_id) :: ("location", location)
          ::
          (match shard with
          | Some i -> [ ("shard", string_of_int i) ]
          | None -> []))
        ();
      if Obs.enabled () then
        Obs.event ~scope:obs_scope ~kind:"attest.storage"
          ([
             ("ok", Ev.B true);
             ("device", Ev.S device_id);
             ("location", Ev.S location);
           ]
          @ match shard with Some i -> [ ("shard", Ev.I i) ] | None -> [])
  | Error e -> (
      match shard with
      | None -> ()
      | Some i ->
          if Obs.enabled () then
            Obs.event ~scope:obs_scope ~kind:"attest.storage"
              [
                ("ok", Ev.B false);
                ("device", Ev.S device_id);
                ("location", Ev.S location);
                ("shard", Ev.I i);
                ("error", Ev.S e);
              ]));
  result

(* -- Authorization ---------------------------------------------------- *)

type authorization = {
  auth_session_key : string;
  auth_stmt : Sql.Ast.stmt;  (** rewritten to be policy compliant *)
  auth_offload_allowed : bool;
  auth_compliant_storage : string list;
      (** device ids satisfying the execution policy (Fig. 5) *)
  auth_proof : proof;
  auth_obligations : P.Policy_eval.obligation list;
}

let perm_of_stmt = function
  | Sql.Ast.Select _ -> P.Policy_ast.Read
  | Sql.Ast.Insert _ | Sql.Ast.Update _ | Sql.Ast.Delete _
  | Sql.Ast.Create_table _ | Sql.Ast.Drop_table _ | Sql.Ast.Create_index _
  | Sql.Ast.Drop_index _ ->
      P.Policy_ast.Write

let request_of ?storage_node t ~client =
  let storage =
    match storage_node with
    | Some s -> Some s
    | None -> (
        match t.attested_storage with s :: _ -> Some s | [] -> None)
  in
  {
    P.Policy_eval.client_key = client.client_label;
    access_date = t.today;
    host =
      Option.map
        (fun h ->
          {
            P.Policy_eval.location = h.host_location;
            fw_version = h.host_version;
          })
        t.attested_host;
    storage =
      Option.map
        (fun s ->
          {
            P.Policy_eval.location = s.storage_location;
            fw_version = s.storage_version;
          })
        storage;
    latest_fw_host = t.latest_fw_host;
    latest_fw_storage = t.latest_fw_storage;
    reuse_bit = client.reuse_bit;
  }

let policy_digest policy = C.Sha256.digest (Fmt.str "%a" P.Policy_ast.pp policy)

let make_proof t ~sql ~policy =
  let p =
    {
      proof_query_digest = C.Sha256.digest sql;
      proof_policy_digest = policy_digest policy;
      proof_host_measurement =
        (match t.attested_host with
        | Some h -> h.host_measurement
        | None -> "");
      proof_storage_hash =
        (match t.attested_storage with
        | s :: _ -> Some s.storage_nw_hash
        | [] -> None);
      proof_date = t.today;
      proof_signature = "";
    }
  in
  let payload =
    String.concat "\x00"
      [
        p.proof_query_digest;
        p.proof_policy_digest;
        p.proof_host_measurement;
        Option.value ~default:"" p.proof_storage_hash;
        string_of_int p.proof_date;
      ]
  in
  { p with proof_signature = C.Signature.sign t.sk ("compliance-proof" ^ payload) }

let verify_proof ~monitor_pk p =
  let payload =
    String.concat "\x00"
      [
        p.proof_query_digest;
        p.proof_policy_digest;
        p.proof_host_measurement;
        Option.value ~default:"" p.proof_storage_hash;
        string_of_int p.proof_date;
      ]
  in
  C.Signature.verify monitor_pk ("compliance-proof" ^ payload) p.proof_signature

(* Forensic identity of a policy rule: rules carry no intrinsic ids,
   so decisions are reported under perm name + a truncated digest of
   the selected rule's rendering — stable across runs, and it changes
   exactly when the rule text does. *)
let rule_id ~perm rule =
  let digest = C.Sha256.digest (Fmt.str "%a" P.Policy_ast.pp_rule rule) in
  P.Policy_ast.perm_name perm ^ "-" ^ String.sub (C.Hex.of_string digest) 0 12

let audit_head_hex t = C.Hex.of_string (Audit_log.head t.audit)

(* JSONL record of a policy decision. Emitted *after* the matching
   audit-log append, so the recorded chain head covers the decision —
   the event is checkable against the hash-chained audit log. *)
let note_decision t ~kind ~client ?rule_id:rid fields =
  if Obs.enabled () then
    Obs.event ~scope:obs_scope ~kind
      (("client", Ev.S client)
      :: (match rid with Some id -> [ ("rule_id", Ev.S id) ] | None -> [])
      @ fields
      @ [ ("audit_head", Ev.S (audit_head_hex t)) ])

let log_denied t ~client ~sql ?rule_id reason =
  Obs.count ~scope:obs_scope "queries_denied";
  Ironsafe_obs.Span.instant ~name:"policy.denied" ~scope:obs_scope
    ~attrs:[ ("client", client); ("reason", reason) ]
    ();
  ignore
    (Audit_log.append t.audit ~date:t.today ~actor:client ~action:"denied"
       ~detail:(sql ^ " -- " ^ reason));
  note_decision t ~kind:"policy.deny" ~client ?rule_id
    [ ("reason", Ev.S reason) ]

let authorize t ~catalog ~client_label ~database ~exec_policy ~sql =
  Obs.count ~scope:obs_scope "policy_checks";
  match find_client t client_label with
  | None ->
      log_denied t ~client:client_label ~sql "unknown client";
      Error "client identity not registered with the monitor"
  | Some client -> (
      if t.attested_host = None then Error "host not attested"
      else begin
        let stmt =
          try Ok (Sql.Parser.parse sql) with
          | Sql.Parser.Parse_error e -> Error ("parse error: " ^ e)
          | Sql.Lexer.Lex_error e -> Error ("lex error: " ^ e)
        in
        match stmt with
        | Error e ->
            log_denied t ~client:client_label ~sql e;
            Error e
        | Ok stmt -> (
            let access_policy =
              Option.value ~default:[] (List.assoc_opt database t.access_policies)
            in
            let req = request_of t ~client in
            let perm = perm_of_stmt stmt in
            let decided_rule =
              Option.map (rule_id ~perm)
                (P.Policy_eval.matching_rule access_policy ~perm)
            in
            match P.Policy_eval.evaluate access_policy ~perm req with
            | P.Policy_eval.Denied reason ->
                log_denied t ~client:client_label ~sql ?rule_id:decided_rule
                  reason;
                Error reason
            | P.Policy_eval.Allowed { residual; obligations; _ } ->
                let exec_verdict = P.Policy_eval.evaluate_exec exec_policy req in
                (* which attested storage nodes satisfy the policy? *)
                let compliant_storage =
                  List.filter_map
                    (fun node ->
                      let req = request_of ~storage_node:node t ~client in
                      let v = P.Policy_eval.evaluate_exec exec_policy req in
                      if v.P.Policy_eval.offload_allowed then
                        Some node.storage_device_id
                      else None)
                    t.attested_storage
                in
                ignore exec_verdict.P.Policy_eval.offload_allowed;
                if not exec_verdict.P.Policy_eval.host_ok then begin
                  let reason = "no compliant host for execution policy" in
                  log_denied t ~client:client_label ~sql reason;
                  Error reason
                end
                else begin
                  (* rewrite the query per the row-level residual *)
                  let stmt =
                    match residual with
                    | None -> stmt
                    | Some r -> P.Rewrite.rewrite_stmt catalog r stmt
                  in
                  (* execute obligations: audit logging *)
                  List.iter
                    (fun (o : P.Policy_eval.obligation) ->
                      ignore
                        (Audit_log.append t.audit ~date:t.today
                           ~actor:client_label
                           ~action:(P.Policy_ast.perm_name perm)
                           ~detail:sql);
                      ignore o.P.Policy_eval.log_name)
                    obligations;
                  note_decision t ~kind:"policy.allow" ~client:client_label
                    ?rule_id:decided_rule
                    [
                      ("perm", Ev.S (P.Policy_ast.perm_name perm));
                      ("residual", Ev.B (residual <> None));
                      ("obligations", Ev.I (List.length obligations));
                      ( "compliant_storage",
                        Ev.I (List.length compliant_storage) );
                    ];
                  (* session key issuance *)
                  Obs.count ~scope:obs_scope "sessions_issued";
                  let key = C.Drbg.generate t.drbg 32 in
                  t.sessions <-
                    { session_key = key; session_client = client_label; revoked = false }
                    :: t.sessions;
                  Ok
                    {
                      auth_session_key = key;
                      auth_stmt = stmt;
                      auth_offload_allowed = compliant_storage <> [];
                      auth_compliant_storage = compliant_storage;
                      auth_proof = make_proof t ~sql ~policy:access_policy;
                      auth_obligations = obligations;
                    }
                end)
      end)

let session_valid t key =
  List.exists (fun s -> s.session_key = key && not s.revoked) t.sessions

let session_cleanup t key =
  List.iter (fun s -> if s.session_key = key then s.revoked <- true) t.sessions


let attested_storage_nodes t =
  List.map (fun s -> s.storage_device_id) t.attested_storage

let attested_host t = t.attested_host

(* Verify the monitor-issued certificate binding [host_pk] (Fig. 4a,
   step 4): the client checks this before trusting result signatures. *)
let verify_host_certificate ~monitor_pk ~host_pk ~certificate =
  C.Signature.verify monitor_pk
    ("host-cert" ^ C.Signature.public_key_bytes host_pk)
    certificate
