(* Tamper-evident audit log (§3.3, §4.3): entries form a hash chain
   keyed under the monitor's log key; any modification, deletion or
   reordering breaks verification from that point on. The designated
   regulatory authority (actor D in the paper's workflow) audits by
   fetching the entries and the chain head. *)

module C = Ironsafe_crypto

type entry = {
  seq : int;
  date : Ironsafe_sql.Date.t;
  actor : string;  (** client identity key label *)
  action : string;  (** e.g. "read", "write", "denied" *)
  detail : string;  (** typically the query text *)
  prev : string;
  digest : string;
}

type t = {
  name : string;
  key : string;
  mutable entries : entry list; (* newest first *)
  mutable head : string;
}

let genesis = String.make 32 '\000'

let create ~name ~key = { name; key; entries = []; head = genesis }
let name t = t.name

let entry_digest t ~seq ~date ~actor ~action ~detail ~prev =
  C.Hmac.mac ~key:t.key
    (String.concat "\x00"
       [ string_of_int seq; string_of_int date; actor; action; detail; prev ])

let append t ~date ~actor ~action ~detail =
  let seq = List.length t.entries in
  let digest = entry_digest t ~seq ~date ~actor ~action ~detail ~prev:t.head in
  let e = { seq; date; actor; action; detail; prev = t.head; digest } in
  t.entries <- e :: t.entries;
  t.head <- digest;
  e

let entries t = List.rev t.entries
let length t = List.length t.entries
let head t = t.head

(* Full chain verification; returns the first bad sequence number. *)
let verify t =
  let rec check prev = function
    | [] -> if C.Constant_time.equal prev t.head then Ok () else Error (-1)
    | e :: rest ->
        let expected =
          entry_digest t ~seq:e.seq ~date:e.date ~actor:e.actor ~action:e.action
            ~detail:e.detail ~prev
        in
        if
          (not (C.Constant_time.equal e.prev prev))
          || not (C.Constant_time.equal e.digest expected)
        then Error e.seq
        else check e.digest rest
  in
  check genesis (entries t)

(* Adversarial helper for tests: silently alter a logged detail. *)
let tamper_entry t ~seq ~detail =
  t.entries <-
    List.map (fun e -> if e.seq = seq then { e with detail } else e) t.entries

let filter t ~actor = List.filter (fun e -> e.actor = actor) (entries t)
