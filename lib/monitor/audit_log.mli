(** Tamper-evident audit log: an HMAC hash chain over access records.
    Any modification, deletion or reordering of entries breaks
    verification from that point (§3.3, §4.3 anti-patterns #3/#5). *)

type t

type entry = {
  seq : int;
  date : Ironsafe_sql.Date.t;
  actor : string;
  action : string;
  detail : string;
  prev : string;
  digest : string;
}

val create : name:string -> key:string -> t
val name : t -> string

val append :
  t -> date:Ironsafe_sql.Date.t -> actor:string -> action:string ->
  detail:string -> entry

val entries : t -> entry list
(** Oldest first. *)

val length : t -> int

val head : t -> string
(** Current chain head digest. *)

val verify : t -> (unit, int) result
(** Recompute the whole chain; [Error seq] is the first bad entry. *)

val filter : t -> actor:string -> entry list

val tamper_entry : t -> seq:int -> detail:string -> unit
(** Adversarial in-place edit, for tests and demos. *)
