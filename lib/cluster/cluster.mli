(** Sharded multi-node CSA cluster (scatter–gather execution).

    One host coordinates [N] storage shards holding hash- or
    range-partitions of the deployment's tables, each attested under
    its own TrustZone identity into a single monitor session. Queries
    scatter into per-shard sub-plans and gather through one of three
    merge operators: partial-aggregation recombination, k-way
    merge-sort, or ord-ordered concatenation (the generic path, which
    reconstructs the exact single-node scan order from a hidden
    per-row insertion index and is therefore exact for every SELECT).

    [shards = 1] delegates everything to {!Ironsafe.Runner}: a
    one-shard cluster is byte-identical — results, charges, spans,
    events — to no cluster at all. *)

type t

val create :
  ?storage_cores:int ->
  ?storage_version:int ->
  ?storage_location:string ->
  shards:int ->
  scheme:Ironsafe.Partitioner.scheme ->
  Ironsafe.Deployment.t ->
  t
(** Build [shards] storage nodes over [base]'s loaded tables. Each
    shard gets its own simulated ARM node, TrustZone device (secure
    boot from the same images), block device, RPMB, secure store, and
    plain + secure replicas of its partition. Rows route to shards via
    {!Ironsafe.Partitioner.shard_of_key} over the table's first
    integer column (insertion index otherwise). The deployment's
    fault plan, when enabled, is wired into shard 0's secure medium
    only (the "flaky shard").

    @raise Invalid_argument when [shards < 1]. *)

val nshards : t -> int
val base : t -> Ironsafe.Deployment.t
val scheme : t -> Ironsafe.Partitioner.scheme

val ord_column : t -> string
(** Name of the hidden leading insertion-index column on shard tables. *)

val shard_nodes : t -> Ironsafe_sim.Node.t list
(** Simulated nodes of the shards (empty when [nshards = 1]). *)

val sched_storage_nodes : t -> Ironsafe_sim.Node.t list option
(** The [?storage_nodes] argument for the workload scheduler's
    [Sched.run] when replaying tapes captured through this cluster:
    [None] with a single node (so the replay keeps the legacy server
    names and is byte-identical to a plain deployment), the shard
    nodes otherwise (per-shard contended servers). *)

val shard_device_ids : t -> string list

val reset_counters : t -> unit
(** {!Ironsafe.Deployment.reset_counters} plus every shard's node,
    store, device and TEE counters. *)

(** {2 Attestation and policy} *)

val attest :
  ?host_location:string -> ?storage_location:string -> t ->
  (unit, string) result
(** Attest the base deployment, then every shard under its own
    TrustZone identity. The monitor records one evidence entry per
    shard in the audit chain — on success {e and} on failure — so a
    rejected shard is observable as its own distinct entry. Stops at
    the first failing shard. *)

val attest_reliable :
  ?host_location:string ->
  ?storage_location:string ->
  ?max_attempts:int ->
  t ->
  (unit, string) result
(** {!attest} with bounded exponential-backoff re-attestation (only
    under an enabled fault plan), charging the backoff to the host and
    every shard lane. *)

val policy_compliant : t -> Ironsafe_monitor.Trusted_monitor.authorization -> bool
(** Every shard's device id is in the authorization's compliant set;
    one non-compliant shard fails the whole cluster query. *)

val gather_operator : t -> string -> string
(** Which gather operator the query would use: ["partial-agg"],
    ["merge-sort"], or ["concat"] (["none"] for non-SELECT). *)

(** {2 Execution} *)

val run_stmt :
  ?reset:bool ->
  ?project:bool ->
  t ->
  Ironsafe.Config.t ->
  Ironsafe_sql.Ast.stmt ->
  Ironsafe.Runner.metrics
(** Scatter–gather execution under a Table-2 configuration. Results
    are exactly the single-node {!Ironsafe.Runner.run_stmt} results;
    shard charges land on each shard's own lane (parallel contended
    storage servers) with the same cost categories and constants as
    the single-node arms, plus the host's gather work.

    @raise Invalid_argument for non-SELECT statements when
    [nshards > 1] (shard replicas are read-only). *)

val run_query : t -> Ironsafe.Config.t -> string -> Ironsafe.Runner.metrics

val run_stmt_outcome :
  ?reset:bool ->
  ?project:bool ->
  t ->
  Ironsafe.Config.t ->
  Ironsafe_sql.Ast.stmt ->
  Ironsafe.Runner.outcome
(** Fault-aware execution reusing the single-node outcome type. A
    flaky shard degrades the query (faults recovered mid-query) or
    rejects it (unattested shard, integrity failure surviving the
    re-read budget) — typed outcomes, never silently-wrong rows. *)

val run_query_outcome : t -> Ironsafe.Config.t -> string -> Ironsafe.Runner.outcome

(** {2 Gathered latency} *)

val scatter_latency_view : t -> Ironsafe_obs.Histogram.view
(** Bucket-wise merge ({!Ironsafe_obs.Histogram.merge}) of every
    shard's [scatter_latency_ns] histogram from the live metrics
    registry — identical to one histogram observing all shard streams.
    Empty view when observability is off or nothing ran. *)

val scatter_latency_table : t -> string
(** Per-shard p50/p95/p99 lines plus the merged row. *)
