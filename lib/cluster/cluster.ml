(* Sharded multi-node CSA cluster: one host coordinates N storage
   nodes holding hash- or range-partitions of the same tables. The
   planner splits an offloadable query into per-shard sub-plans; the
   host gathers the partial results through one of three merge
   operators and (when needed) re-runs the host portion over the
   reassembled tables.

   Exactness is the design anchor: every shard table carries a hidden
   leading [shard_ord] column holding the row's single-node insertion
   index. The generic gather path merges shard streams by ascending
   ord, which restores the exact single-node scan order (the engine's
   index-driven scans read pages in sorted page order, so even
   filtered scans return rows in insertion order) — the host engine
   then sees bitwise-identical input and produces bitwise-identical
   results for {e every} statement. The two specialized operators
   (partial-aggregation pushdown and k-way merge-sort) only engage
   when a purely structural eligibility check proves they reproduce
   the single-node answer exactly.

   With [shards = 1] everything — execution, charging, spans, events —
   delegates to the single-node {!Ironsafe.Runner}, so a one-shard
   cluster is byte-identical to no cluster at all. *)

module Sim = Ironsafe_sim
module Storage = Ironsafe_storage
module Sec = Ironsafe_securestore
module Tee = Ironsafe_tee
module Sql = Ironsafe_sql
module Monitor = Ironsafe_monitor
module Fault = Ironsafe_fault.Fault
module Obs = Ironsafe_obs.Obs
module Ev = Ironsafe_obs.Event_log
module Deployment = Ironsafe.Deployment
module Runner = Ironsafe.Runner
module Config = Ironsafe.Config
module Partitioner = Ironsafe.Partitioner
module Host_engine = Ironsafe.Host_engine
module Storage_engine = Ironsafe.Storage_engine

type shard = {
  sh_id : int;
  sh_node : Sim.Node.t;
  sh_tz : Tee.Trustzone.device;
  sh_booted : Tee.Trustzone.booted;
  sh_device : Storage.Block_device.t;
  sh_rpmb : Storage.Rpmb.t;
  sh_store : Sec.Secure_store.t;
  sh_plain_db : Sql.Database.t;
  sh_secure_db : Sql.Database.t;
}

type t = {
  base : Deployment.t;
  scheme : Partitioner.scheme;
  shards : shard array;  (* empty when nshards = 1: pure delegation *)
  nshards : int;
  ord_col : string;  (* hidden leading insertion-index column *)
}

let nshards t = t.nshards
let base t = t.base
let scheme t = t.scheme
let ord_column t = t.ord_col
let shard_nodes t = Array.to_list (Array.map (fun sh -> sh.sh_node) t.shards)

(* The exact value the workload scheduler's [?storage_nodes] expects:
   [None] for a single node (legacy server names, byte-identical
   replay), the shard node list otherwise. One definition so bench
   sweeps and tests cannot disagree on the mapping. *)
let sched_storage_nodes t =
  match shard_nodes t with [] -> None | l -> Some l

let shard_device_ids t =
  Array.to_list (Array.map (fun sh -> Tee.Trustzone.device_id sh.sh_tz) t.shards)

(* A column name free in every table, so the hidden ord column can
   never shadow user data. *)
let fresh_ord_name catalog =
  let tables = Sql.Catalog.table_names catalog in
  let taken name =
    List.exists
      (fun tname ->
        let schema = Sql.Heap_file.schema (Sql.Catalog.find catalog tname) in
        Array.exists
          (fun c -> String.lowercase_ascii c.Sql.Schema.col_name = name)
          (Sql.Schema.columns schema))
      tables
  in
  let rec go name = if taken name then go ("_" ^ name) else name in
  go "shard_ord"

(* -- construction ------------------------------------------------------ *)

(* Deterministic row -> shard assignment for one table: partition key
   is the first integer column (insertion index otherwise), routed
   through {!Partitioner.shard_of_key}. Returns per-shard
   (ord, row) lists in insertion order. *)
let partition_table scheme ~shards hf =
  let schema = Sql.Heap_file.schema hf in
  let key_index = Partitioner.partition_key_index schema in
  let rows = ref [] and next = ref 0 in
  Sql.Heap_file.iter hf ~f:(fun row ->
      rows := (!next, row) :: !rows;
      incr next);
  let rows = List.rev !rows in
  let keys =
    List.map (fun (ord, row) -> Partitioner.row_key ~key_index ~ord row) rows
  in
  let lo, hi =
    match keys with
    | [] -> (0, 0)
    | k :: rest ->
        List.fold_left (fun (lo, hi) k -> (min lo k, max hi k)) (k, k) rest
  in
  let buckets = Array.make shards [] in
  List.iter2
    (fun (ord, row) key ->
      let s = Partitioner.shard_of_key scheme ~shards ~lo ~hi key in
      buckets.(s) <- (ord, row) :: buckets.(s))
    rows keys;
  Array.map List.rev buckets

(* Distinct device ids per cluster instance: two clusters over the same
   base deployment must not satisfy each other's attestation pre-check
   through colliding ids in the monitor's attested set. *)
let instances = ref 0

let create ?(storage_cores = 16) ?(storage_version = 1)
    ?(storage_location = "eu-west") ~shards:n ~scheme (base : Deployment.t) =
  if n < 1 then invalid_arg "Cluster.create: shards must be >= 1";
  let catalog = Sql.Database.catalog base.Deployment.plain_db in
  let ord_col = fresh_ord_name catalog in
  if n = 1 then { base; scheme; shards = [||]; nshards = 1; ord_col }
  else begin
    incr instances;
    let instance = !instances in
    let params = base.Deployment.params in
    let page_mode = Sec.Secure_store.page_mode base.Deployment.secure_store in
    let images = [ Deployment.atf_image; Deployment.optee_image ] in
    (* per-shard TrustZone identity + empty plain replica *)
    let protos =
      Array.init n (fun i ->
          let node =
            Sim.Node.create ~cores:storage_cores ~params
              ~name:(Printf.sprintf "shard%d" i)
              Sim.Cpu.Storage_arm
          in
          let tz =
            Tee.Trustzone.manufacture ~location:storage_location
              ~device_id:
                (Printf.sprintf "clearfog-cx-lx2k-c%d-shard%d" instance i)
              base.Deployment.drbg
          in
          Tee.Trustzone.provision tz images;
          let booted =
            match
              Tee.Trustzone.secure_boot tz ~secure_stages:images
                ~normal_world:base.Deployment.storage_nw_image
            with
            | Ok b -> b
            | Error e ->
                invalid_arg ("Cluster.create: secure boot failed: " ^ e)
          in
          let plain_db = Sql.Database.create ~pager:(Sql.Pager.in_memory ()) in
          (node, tz, booted, plain_db))
    in
    (* scatter every table's rows, tagged with their insertion index *)
    List.iter
      (fun tname ->
        let hf = Sql.Catalog.find catalog tname in
        let schema = Sql.Heap_file.schema hf in
        let buckets = partition_table scheme ~shards:n hf in
        let columns =
          (ord_col, Sql.Value.TInt)
          :: (Array.to_list (Sql.Schema.columns schema)
             |> List.map (fun c -> (c.Sql.Schema.col_name, c.Sql.Schema.col_ty))
             )
        in
        Array.iteri
          (fun i bucket ->
            let _, _, _, db = protos.(i) in
            Sql.Database.create_table db
              (Sql.Schema.create ~name:tname ~columns);
            Sql.Database.insert_rows db tname
              (List.map
                 (fun (ord, row) ->
                   Array.append [| Sql.Value.Int ord |] row)
                 bucket))
          buckets)
      (Sql.Catalog.table_names catalog);
    (* secure replica per shard, keyed to its own TrustZone identity *)
    let shards =
      Array.mapi
        (fun i (node, tz, booted, plain_db) ->
          let plain_pages =
            Sql.Catalog.total_pages (Sql.Database.catalog plain_db)
          in
          let data_pages = plain_pages + (plain_pages / 4) + 64 in
          let device =
            Storage.Block_device.create
              ~pages:(Sec.Secure_store.device_pages_for ~data_pages)
          in
          let rpmb = Storage.Rpmb.create () in
          let store =
            match
              Sec.Secure_store.initialize ~device ~rpmb
                ~hardware_key:(Tee.Trustzone.hardware_key tz) ~page_mode
                ~data_pages ~drbg:base.Deployment.drbg ()
            with
            | Ok s -> s
            | Error e ->
                invalid_arg
                  (Fmt.str "Cluster.create: secure store init failed: %a"
                     Sec.Secure_store.pp_error e)
          in
          let secure_db = Sql.Database.create ~pager:(Sql.Pager.secure store) in
          Deployment.copy_database plain_db secure_db;
          Sec.Secure_store.reset_stats store;
          Storage.Block_device.reset_counters device;
          Monitor.Trusted_monitor.trust_storage_device base.Deployment.monitor
            ~device_id:(Tee.Trustzone.device_id tz)
            ~rotpk:(Tee.Trustzone.rotpk tz)
            ~normal_world:base.Deployment.storage_nw_image
            ~version:storage_version;
          (* the shared fault plan strikes one shard's secure medium
             (the flaky shard); the rest stay pristine so a faulted
             cluster degrades or rejects, never answers wrongly *)
          let faults = base.Deployment.faults in
          if i = 0 && Fault.enabled faults then begin
            Storage.Block_device.set_faults device faults;
            Storage.Rpmb.set_faults rpmb faults;
            Sec.Secure_store.set_faults store faults
          end;
          let mode = Deployment.exec_mode base in
          Sql.Database.set_exec_mode plain_db mode;
          Sql.Database.set_exec_mode secure_db mode;
          {
            sh_id = i;
            sh_node = node;
            sh_tz = tz;
            sh_booted = booted;
            sh_device = device;
            sh_rpmb = rpmb;
            sh_store = store;
            sh_plain_db = plain_db;
            sh_secure_db = secure_db;
          })
        protos
    in
    { base; scheme; shards; nshards = n; ord_col }
  end

let reset_counters t =
  Deployment.reset_counters t.base;
  Array.iter
    (fun sh ->
      Sim.Node.reset sh.sh_node;
      Sec.Secure_store.reset_stats sh.sh_store;
      Storage.Block_device.reset_counters sh.sh_device;
      Tee.Trustzone.reset_counters sh.sh_tz)
    t.shards

(* -- attestation ------------------------------------------------------- *)

(* One evidence entry per shard: each storage node attests under its
   own TrustZone identity into the same monitor session; the monitor
   records per-shard audit entries ({!Trusted_monitor.attest_storage}
   with [?shard]) on success and failure alike. *)
let attest ?host_location ?(storage_location = "eu-west") t =
  match Deployment.attest ?host_location ~storage_location t.base with
  | Error e -> Error e
  | Ok () ->
      let monitor = t.base.Deployment.monitor in
      let faults = t.base.Deployment.faults in
      let rec go i =
        if i >= Array.length t.shards then Ok ()
        else
          let sh = t.shards.(i) in
          let shard_faults = if i = 0 then faults else Fault.none in
          match
            Sim.Node.with_span sh.sh_node ~name:"attest.storage" (fun () ->
                let challenge =
                  Monitor.Trusted_monitor.fresh_challenge monitor
                in
                let response =
                  Tee.Trustzone.attest ~faults:shard_faults sh.sh_booted
                    ~challenge
                in
                Monitor.Trusted_monitor.attest_storage ~shard:i monitor
                  ~challenge ~response ~location:storage_location)
          with
          | Error e -> Error (Printf.sprintf "shard %d: %s" i e)
          | Ok _ -> go (i + 1)
      in
      go 0

let attest_reliable ?host_location ?storage_location ?(max_attempts = 5) t =
  let faults = t.base.Deployment.faults in
  let mark = Fault.incident_count faults in
  let rec attempt n =
    match attest ?host_location ?storage_location t with
    | Ok () ->
        if n > 0 then Fault.note_recovered_since faults mark;
        Ok ()
    | Error e when Fault.enabled faults && n + 1 < max_attempts ->
        ignore e;
        Fault.note_retry faults ~action:"attest";
        Fault.note_reattestation faults;
        let wait =
          Fault.backoff_ns
            ~base_ns:t.base.Deployment.params.Sim.Params.net_latency_ns
            ~attempt:n
        in
        Sim.Node.fixed t.base.Deployment.host ~category:"recovery" wait;
        Sim.Node.fixed t.base.Deployment.storage ~category:"recovery" wait;
        Array.iter
          (fun sh -> Sim.Node.fixed sh.sh_node ~category:"recovery" wait)
          t.shards;
        attempt (n + 1)
    | Error e ->
        Fault.note_rejected faults;
        Error e
  in
  attempt 0

(* Every shard's device must satisfy the execution policy the monitor
   evaluated; one non-compliant shard fails the whole cluster query. *)
let policy_compliant t (auth : Monitor.Trusted_monitor.authorization) =
  Array.for_all
    (fun sh ->
      List.mem
        (Tee.Trustzone.device_id sh.sh_tz)
        auth.Monitor.Trusted_monitor.auth_compliant_storage)
    t.shards

(* -- gather operators -------------------------------------------------- *)

type agg_slot = {
  a_func : Sql.Ast.agg_func;
  a_label : string;
  a_width : int;  (* per-shard partial columns: 2 for AVG, else 1 *)
}

type merge_spec = {
  m_items : int;  (* original item count (prefix kept after merge) *)
  m_keys : (int * [ `Asc | `Desc ]) list;  (* appended key columns *)
  m_ord : int;  (* appended ord column (global tie-break) *)
  m_limit : int option;
  m_stmt : Sql.Ast.stmt;
}

type pagg_spec = { p_slots : agg_slot list; p_stmt : Sql.Ast.stmt }

type gather =
  | Concat  (* generic-exact: merge every shipped table by ord *)
  | Merge_sort of merge_spec
  | Partial_agg of pagg_spec

let single_table (q : Sql.Ast.select) =
  match q.Sql.Ast.from with
  | [ Sql.Ast.Table { table; _ } ] -> Some table
  | _ -> None

let schema_of catalog table =
  match Sql.Catalog.find_opt catalog table with
  | Some hf -> Some (Sql.Heap_file.schema hf)
  | None -> None

let column_ty schema name =
  let name = String.lowercase_ascii name in
  Array.to_list (Sql.Schema.columns schema)
  |> List.find_opt (fun c ->
         String.lowercase_ascii c.Sql.Schema.col_name = name)
  |> Option.map (fun c -> c.Sql.Schema.col_ty)

(* Replicates the executor's output naming so direct gather results
   carry the same column labels as a single-node run. *)
let output_label i (item : Sql.Ast.select_item) =
  match item with
  | Sql.Ast.Item (_, Some alias) -> String.lowercase_ascii alias
  | Sql.Ast.Item (Sql.Ast.Col { name; _ }, None) -> String.lowercase_ascii name
  | Sql.Ast.Item (Sql.Ast.Agg { func; _ }, None) -> (
      match func with
      | Sql.Ast.Sum -> "sum"
      | Sql.Ast.Avg -> "avg"
      | Sql.Ast.Min -> "min"
      | Sql.Ast.Max -> "max"
      | Sql.Ast.Count -> "count")
  | Sql.Ast.Item (_, None) -> Printf.sprintf "col%d" (i + 1)
  | Sql.Ast.Star -> invalid_arg "Cluster.output_label: Star"

let clean_where (q : Sql.Ast.select) =
  match q.Sql.Ast.where with
  | None -> true
  | Some w ->
      (not (Sql.Ast.contains_subquery w)) && not (Sql.Ast.contains_agg w)

(* Partial-aggregation pushdown is exact only on a conservative shape:
   one table, global aggregates only (no GROUP BY / HAVING / ORDER BY /
   LIMIT), no DISTINCT, COUNT over anything, MIN/MAX over any column,
   SUM/AVG only over integer columns (integer partials recombine
   without rounding; AVG ships SUM+COUNT and recombines exactly). *)
let partial_agg_mode catalog (q : Sql.Ast.select) =
  match single_table q with
  | None -> None
  | Some table -> (
      if
        q.Sql.Ast.group_by <> []
        || q.Sql.Ast.having <> None
        || q.Sql.Ast.order_by <> []
        || q.Sql.Ast.limit <> None
        || not (clean_where q)
      then None
      else
        match schema_of catalog table with
        | None -> None
        | Some schema ->
            let slot i item =
              match item with
              | Sql.Ast.Item (Sql.Ast.Agg { func; distinct = false; arg }, _)
                ->
                  let arg_ok =
                    match arg with
                    | None -> func = Sql.Ast.Count
                    | Some (Sql.Ast.Col { name; _ }) -> (
                        match func with
                        | Sql.Ast.Sum | Sql.Ast.Avg ->
                            column_ty schema name = Some Sql.Value.TInt
                        | Sql.Ast.Min | Sql.Ast.Max | Sql.Ast.Count ->
                            column_ty schema name <> None)
                    | Some _ -> false
                  in
                  if not arg_ok then None
                  else
                    Some
                      {
                        a_func = func;
                        a_label = output_label i item;
                        a_width =
                          (match func with Sql.Ast.Avg -> 2 | _ -> 1);
                      }
              | _ -> None
            in
            let slots = List.mapi slot q.Sql.Ast.items in
            if List.exists (( = ) None) slots || slots = [] then None
            else
              let slots = List.filter_map Fun.id slots in
              (* per-shard rewrite: AVG(c) ships SUM(c), COUNT(c) *)
              let sub_items =
                List.concat_map
                  (function
                    | Sql.Ast.Item
                        (Sql.Ast.Agg { func = Sql.Ast.Avg; distinct; arg }, _)
                      ->
                        [
                          Sql.Ast.Item
                            ( Sql.Ast.Agg
                                { func = Sql.Ast.Sum; distinct; arg },
                              None );
                          Sql.Ast.Item
                            ( Sql.Ast.Agg
                                { func = Sql.Ast.Count; distinct; arg },
                              None );
                        ]
                    | Sql.Ast.Item (e, _) -> [ Sql.Ast.Item (e, None) ]
                    | Sql.Ast.Star -> assert false)
                  q.Sql.Ast.items
              in
              Some
                (Partial_agg
                   {
                     p_slots = slots;
                     p_stmt =
                       Sql.Ast.Select { q with Sql.Ast.items = sub_items };
                   }))

(* k-way merge-sort gather: one table, explicit non-aggregate items,
   ORDER BY over plain schema columns that no item alias shadows (so
   the executor's alias substitution is the identity on the keys).
   Each shard sorts its partition (appending the key columns and the
   ord column); the host merges by (keys, ord) — exactly the
   single-node stable sort order, since shard-local row order is
   ord-increasing. *)
let merge_sort_mode catalog (q : Sql.Ast.select) =
  match single_table q with
  | None -> None
  | Some table -> (
      if
        q.Sql.Ast.group_by <> []
        || q.Sql.Ast.having <> None
        || q.Sql.Ast.order_by = []
        || not (clean_where q)
        || List.exists
             (function
               | Sql.Ast.Star -> true
               | Sql.Ast.Item (e, _) ->
                   Sql.Ast.contains_agg e || Sql.Ast.contains_subquery e)
             q.Sql.Ast.items
      then None
      else
        match schema_of catalog table with
        | None -> None
        | Some schema ->
            let aliases =
              List.filter_map
                (function
                  | Sql.Ast.Item (_, Some a) ->
                      Some (String.lowercase_ascii a)
                  | _ -> None)
                q.Sql.Ast.items
            in
            let key_col = function
              | Sql.Ast.Col { qualifier = None; name }, _ ->
                  column_ty schema name <> None
                  && not (List.mem (String.lowercase_ascii name) aliases)
              | _ -> false
            in
            if not (List.for_all key_col q.Sql.Ast.order_by) then None
            else
              let m_items = List.length q.Sql.Ast.items in
              let nkeys = List.length q.Sql.Ast.order_by in
              let m_keys =
                List.mapi
                  (fun j (_, dir) -> (m_items + j, dir))
                  q.Sql.Ast.order_by
              in
              let key_items =
                List.map
                  (fun (e, _) -> Sql.Ast.Item (e, None))
                  q.Sql.Ast.order_by
              in
              Some
                (Merge_sort
                   {
                     m_items;
                     m_keys;
                     m_ord = m_items + nkeys;
                     m_limit = q.Sql.Ast.limit;
                     m_stmt =
                       Sql.Ast.Select
                         {
                           q with
                           Sql.Ast.items =
                             q.Sql.Ast.items @ key_items
                             @ [
                                 Sql.Ast.Item
                                   ( Sql.Ast.Col
                                       { qualifier = None; name = "%ORD%" },
                                     None );
                               ];
                         };
                   }))

(* [merge_sort_mode] marks the ord column with a placeholder so the
   caller (which knows the cluster's fresh ord name) can substitute
   it; keeps the analysis independent of the instance. *)
let patch_ord_col ord = function
  | Merge_sort m ->
      let stmt =
        match m.m_stmt with
        | Sql.Ast.Select q ->
            Sql.Ast.Select
              {
                q with
                Sql.Ast.items =
                  List.map
                    (function
                      | Sql.Ast.Item
                          (Sql.Ast.Col { qualifier = None; name = "%ORD%" }, a)
                        ->
                          Sql.Ast.Item
                            (Sql.Ast.Col { qualifier = None; name = ord }, a)
                      | it -> it)
                    q.Sql.Ast.items;
              }
        | st -> st
      in
      Merge_sort { m with m_stmt = stmt }
  | g -> g

let choose_gather ord catalog (q : Sql.Ast.select) =
  let g =
    match partial_agg_mode catalog q with
    | Some g -> g
    | None -> (
        match merge_sort_mode catalog q with Some g -> g | None -> Concat)
  in
  patch_ord_col ord g

(* Which gather operator a query would use (EXPLAIN-style probe; used
   by the CLI and the tests to assert pushdown engages). *)
let gather_operator t sql =
  match Sql.Parser.parse sql with
  | Sql.Ast.Select q -> (
      let catalog = Sql.Database.catalog t.base.Deployment.plain_db in
      match choose_gather t.ord_col catalog q with
      | Concat -> "concat"
      | Merge_sort _ -> "merge-sort"
      | Partial_agg _ -> "partial-agg")
  | _ -> "none"
  | exception _ -> "none"

(* Per-shard sub-statements. The generic path re-parses the
   partitioner's own offload SQL and prepends the ord column, so the
   shard-side filter semantics are exactly the single-node offload's. *)
let per_shard_stmts ord (plan : Partitioner.plan) = function
  | Concat ->
      List.map
        (fun (_table, sql) ->
          match Sql.Parser.parse sql with
          | Sql.Ast.Select q ->
              Sql.Ast.Select
                {
                  q with
                  Sql.Ast.items =
                    Sql.Ast.Item
                      (Sql.Ast.Col { qualifier = None; name = ord }, None)
                    :: q.Sql.Ast.items;
                }
          | st -> st)
        plan.Partitioner.offload_sql
  | Merge_sort m -> [ m.m_stmt ]
  | Partial_agg p -> [ p.p_stmt ]

(* k-way merge of per-shard sorted row lists. [cmp] is total on rows
   from different shards (it ends on the globally-unique ord), so the
   merge is deterministic; equal prefixes resolve by insertion order,
   matching the single-node stable sort. *)
let kway_merge cmp (lists : Sql.Row.t list array) =
  let heads = Array.copy lists in
  let out = ref [] in
  let rec loop () =
    let best = ref (-1) in
    Array.iteri
      (fun i l ->
        match l with
        | [] -> ()
        | r :: _ -> (
            match !best with
            | -1 -> best := i
            | b -> (
                match heads.(b) with
                | rb :: _ -> if cmp r rb < 0 then best := i
                | [] -> assert false)))
      heads;
    match !best with
    | -1 -> List.rev !out
    | i -> (
        match heads.(i) with
        | r :: rest ->
            heads.(i) <- rest;
            out := r :: !out;
            loop ()
        | [] -> assert false)
  in
  loop ()

let cmp_ord (a : Sql.Row.t) (b : Sql.Row.t) =
  compare (Sql.Value.as_int a.(0)) (Sql.Value.as_int b.(0))

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let sum_counters (cs : Sql.Observer.counters list) =
  let acc =
    {
      Sql.Observer.rows = 0;
      page_reads = 0;
      page_hits = 0;
      page_writes = 0;
      bytes_allocated = 0;
      batches = 0;
    }
  in
  List.iter
    (fun (c : Sql.Observer.counters) ->
      acc.Sql.Observer.rows <- acc.Sql.Observer.rows + c.Sql.Observer.rows;
      acc.Sql.Observer.page_reads <-
        acc.Sql.Observer.page_reads + c.Sql.Observer.page_reads;
      acc.Sql.Observer.page_hits <-
        acc.Sql.Observer.page_hits + c.Sql.Observer.page_hits;
      acc.Sql.Observer.page_writes <-
        acc.Sql.Observer.page_writes + c.Sql.Observer.page_writes;
      acc.Sql.Observer.bytes_allocated <-
        acc.Sql.Observer.bytes_allocated + c.Sql.Observer.bytes_allocated;
      acc.Sql.Observer.batches <-
        acc.Sql.Observer.batches + c.Sql.Observer.batches)
    cs;
  acc

let zero_counters () =
  {
    Sql.Observer.rows = 0;
    page_reads = 0;
    page_hits = 0;
    page_writes = 0;
    bytes_allocated = 0;
    batches = 0;
  }

type shard_run = {
  sr_results : Sql.Exec.result list;
  sr_counters : Sql.Observer.counters;
  sr_crypto : int * int * int * int;  (* decrypts, macs, merkle, rpmb *)
  sr_bytes : int;  (* encoded size of the rows this shard shipped *)
}

(* Reassemble each shipped table in exact single-node row order by
   merging the shard streams on the hidden ord column, then strip it.
   The reconstructed offload phase is bitwise what the single-node
   storage engine would have shipped. *)
let gather_concat (plan : Partitioner.plan) (runs : shard_run array) =
  let results =
    List.mapi
      (fun ti (st : Partitioner.shipped_table) ->
        let lists =
          Array.map
            (fun r -> (List.nth r.sr_results ti).Sql.Exec.rows)
            runs
        in
        let merged = kway_merge cmp_ord lists in
        let rows =
          List.map (fun r -> Array.sub r 1 (Array.length r - 1)) merged
        in
        let bytes =
          List.fold_left (fun a row -> a + Sql.Row.encoded_size row) 0 rows
        in
        {
          Storage_engine.off_table = st.Partitioner.table;
          off_rows = rows;
          off_bytes = bytes;
        })
      plan.Partitioner.shipped
  in
  {
    Storage_engine.results;
    counters =
      sum_counters
        (Array.to_list (Array.map (fun r -> r.sr_counters) runs));
    bytes_shipped =
      List.fold_left (fun a r -> a + r.Storage_engine.off_bytes) 0 results;
  }

let gather_merge_sort m (runs : shard_run array) =
  let lists =
    Array.map (fun r -> (List.hd r.sr_results).Sql.Exec.rows) runs
  in
  let cmp (a : Sql.Row.t) (b : Sql.Row.t) =
    let rec go = function
      | [] ->
          compare
            (Sql.Value.as_int a.(m.m_ord))
            (Sql.Value.as_int b.(m.m_ord))
      | (j, dir) :: rest ->
          let c = Sql.Value.compare_total a.(j) b.(j) in
          let c = match dir with `Asc -> c | `Desc -> -c in
          if c <> 0 then c else go rest
    in
    go m.m_keys
  in
  let merged = kway_merge cmp lists in
  let merged =
    match m.m_limit with Some n -> take n merged | None -> merged
  in
  let columns = take m.m_items (List.hd runs.(0).sr_results).Sql.Exec.columns in
  {
    Sql.Exec.columns;
    rows = List.map (fun r -> Array.sub r 0 m.m_items) merged;
  }

(* NULL-skipping partial recombination, matching the executor's
   accumulator semantics exactly: SUM folds with [Value.arith `Add]
   from the first non-null partial; MIN/MAX replace on strict
   comparison; COUNT is an integer sum; AVG divides the recombined
   integer SUM by the recombined COUNT in one float division (integer
   partials below 2^53 accumulate exactly, so this equals the
   single-node float accumulator). *)
let gather_partial slots (runs : shard_run array) =
  let shard_rows =
    Array.to_list runs
    |> List.concat_map (fun r -> (List.hd r.sr_results).Sql.Exec.rows)
  in
  let add acc v =
    if v = Sql.Value.Null then acc
    else if acc = Sql.Value.Null then v
    else Sql.Value.arith `Add acc v
  in
  let col = ref 0 in
  let values =
    List.map
      (fun s ->
        let base = !col in
        col := !col + s.a_width;
        match s.a_func with
        | Sql.Ast.Count ->
            Sql.Value.Int
              (List.fold_left
                 (fun acc (r : Sql.Row.t) ->
                   acc + Sql.Value.as_int r.(base))
                 0 shard_rows)
        | Sql.Ast.Sum ->
            List.fold_left
              (fun acc (r : Sql.Row.t) -> add acc r.(base))
              Sql.Value.Null shard_rows
        | Sql.Ast.Min ->
            List.fold_left
              (fun acc (r : Sql.Row.t) ->
                let v = r.(base) in
                if v = Sql.Value.Null then acc
                else
                  match Sql.Value.compare_opt v acc with
                  | Some c when c < 0 -> v
                  | Some _ -> acc
                  | None -> v)
              Sql.Value.Null shard_rows
        | Sql.Ast.Max ->
            List.fold_left
              (fun acc (r : Sql.Row.t) ->
                let v = r.(base) in
                if v = Sql.Value.Null then acc
                else
                  match Sql.Value.compare_opt v acc with
                  | Some c when c > 0 -> v
                  | Some _ -> acc
                  | None -> v)
              Sql.Value.Null shard_rows
        | Sql.Ast.Avg ->
            let total =
              List.fold_left
                (fun acc (r : Sql.Row.t) -> add acc r.(base))
                Sql.Value.Null shard_rows
            in
            let n =
              List.fold_left
                (fun acc (r : Sql.Row.t) ->
                  acc + Sql.Value.as_int r.(base + 1))
                0 shard_rows
            in
            if n = 0 then Sql.Value.Null
            else
              Sql.Value.Float
                (Sql.Value.as_float total /. float_of_int n))
      slots
  in
  {
    Sql.Exec.columns = List.map (fun s -> s.a_label) slots;
    rows = [ Array.of_list values ];
  }

(* -- scatter-gather execution ------------------------------------------ *)

let merge_breakdowns bds =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (List.iter (fun (k, v) ->
         match Hashtbl.find_opt tbl k with
         | Some x -> Hashtbl.replace tbl k (x +. v)
         | None ->
             Hashtbl.replace tbl k v;
             order := k :: !order))
    bds;
  List.rev_map (fun k -> (k, Hashtbl.find tbl k)) !order

let shard_db config sh =
  match config with
  | Config.Hons | Config.Vcs -> sh.sh_plain_db
  | Config.Hos | Config.Scs | Config.Sos -> sh.sh_secure_db

let run_scatter ?(reset = true) ?project t config (q : Sql.Ast.select) stmt =
  let d = t.base in
  let params = d.Deployment.params in
  if reset then reset_counters t;
  let host = d.Deployment.host in
  let lanes =
    match Sec.Secure_store.page_mode d.Deployment.secure_store with
    | Sec.Secure_store.Ctr -> params.Sim.Params.crypto_lanes
    | Sec.Secure_store.Cbc -> 1
  in
  let catalog = Sql.Database.catalog d.Deployment.plain_db in
  let plan = Partitioner.split ?project catalog stmt in
  let mode = choose_gather t.ord_col catalog q in
  let sub_stmts = per_shard_stmts t.ord_col plan mode in
  let exec () =
    (* scatter: each shard really executes its sub-plan on its own
       replica (plain or secure per the configuration) *)
    let runs =
      Array.map
        (fun sh ->
          let db = shard_db config sh in
          let results, counters =
            Runner.with_counters db (fun () ->
                List.map
                  (fun st ->
                    match Sql.Database.exec_ast db st with
                    | Sql.Database.Result r -> r
                    | _ -> { Sql.Exec.columns = []; rows = [] })
                  sub_stmts)
          in
          let crypto =
            match config with
            | Config.Hos | Config.Scs | Config.Sos ->
                Runner.snapshot_secure_stats sh.sh_store
            | Config.Hons | Config.Vcs -> (0, 0, 0, 0)
          in
          let bytes =
            List.fold_left
              (fun acc (r : Sql.Exec.result) ->
                List.fold_left
                  (fun a row -> a + Sql.Row.encoded_size row)
                  acc r.Sql.Exec.rows)
              0 results
          in
          { sr_results = results; sr_counters = counters; sr_crypto = crypto;
            sr_bytes = bytes })
        t.shards
    in
    (* forensics fan-out: one plan.split event per shard *)
    if Obs.enabled () then
      Array.iter
        (fun sh ->
          Obs.event ~scope:"cluster" ~kind:"plan.split"
            [
              ("config", Ev.S (Config.abbrev config));
              ("shard", Ev.I sh.sh_id);
              ("offload_stmts", Ev.I (List.length sub_stmts));
              ( "tables",
                Ev.S
                  (String.concat ","
                     (List.map fst plan.Partitioner.offload_sql)) );
            ])
        t.shards;
    let gathered_rows =
      Array.fold_left
        (fun acc r ->
          acc
          + List.fold_left
              (fun a (res : Sql.Exec.result) ->
                a + List.length res.Sql.Exec.rows)
              0 r.sr_results)
        0 runs
    in
    (* gather + host portion *)
    let result, hc =
      match mode with
      | Concat ->
          let offload = gather_concat plan runs in
          let h =
            Host_engine.run_host
              ~exec_mode:(Deployment.exec_mode d)
              ~storage_catalog:catalog plan offload
          in
          (h.Host_engine.result, h.Host_engine.counters)
      | Merge_sort m -> (gather_merge_sort m runs, zero_counters ())
      | Partial_agg p -> (gather_partial p.p_slots runs, zero_counters ())
    in
    (* charging: every shard is a contended storage server on its own
       lane; the same cost categories and constants as the single-node
       arms, scattered per shard, plus the host's gather work *)
    let bytes_shipped = ref 0 in
    Array.iteri
      (fun i sh ->
        let r = runs.(i) in
        let c = r.sr_counters in
        let pages = c.Sql.Observer.page_reads in
        let hits = c.Sql.Observer.page_hits in
        let decrypts, macs, merkle, rpmb = r.sr_crypto in
        let shard_t0 = Sim.Node.now sh.sh_node in
        Runner.with_offload host sh.sh_node (fun () ->
            match config with
            | Config.Hons ->
                let bytes = pages * params.Sim.Params.page_size in
                bytes_shipped := !bytes_shipped + bytes;
                Runner.charge_io sh.sh_node params pages;
                Runner.charge_cache_hits host params hits;
                Runner.charge_transfer params sh.sh_node host ~secure:false
                  ~bytes ~messages:(Runner.message_count params bytes)
            | Config.Hos ->
                let bytes = pages * params.Sim.Params.page_size in
                bytes_shipped := !bytes_shipped + bytes;
                Runner.charge_io sh.sh_node params pages;
                Runner.charge_cache_hits host params hits;
                Runner.charge_transfer params sh.sh_node host ~secure:true
                  ~bytes ~messages:(Runner.message_count params bytes);
                (* crypto happens inside the host enclave *)
                Runner.charge_crypto ~lanes host params ~decrypts ~macs
                  ~merkle ~rpmb
            | Config.Vcs ->
                bytes_shipped := !bytes_shipped + r.sr_bytes;
                Runner.charge_io sh.sh_node params pages;
                Runner.charge_cache_hits sh.sh_node params hits;
                Sim.Node.charge sh.sh_node ~category:"other"
                  (float_of_int (List.length sub_stmts)
                  *. params.Sim.Params.offload_session_ns);
                Runner.charge_compute sh.sh_node ~rows:c.Sql.Observer.rows
                  ~batches:c.Sql.Observer.batches;
                Runner.charge_memory sh.sh_node ~category:"spill"
                  c.Sql.Observer.bytes_allocated;
                Runner.charge_transfer params sh.sh_node host ~secure:false
                  ~bytes:r.sr_bytes
                  ~messages:(Runner.message_count params r.sr_bytes)
            | Config.Scs ->
                bytes_shipped := !bytes_shipped + r.sr_bytes;
                Sim.Node.charge sh.sh_node ~category:"other"
                  (float_of_int (List.length sub_stmts)
                  *. params.Sim.Params.offload_session_ns);
                Runner.charge_io sh.sh_node params pages;
                Runner.charge_cache_hits sh.sh_node params hits;
                Runner.charge_crypto ~lanes sh.sh_node params ~decrypts ~macs
                  ~merkle ~rpmb;
                Runner.charge_compute sh.sh_node ~rows:c.Sql.Observer.rows
                  ~batches:c.Sql.Observer.batches;
                Runner.charge_memory sh.sh_node ~category:"spill"
                  c.Sql.Observer.bytes_allocated;
                Runner.charge_transfer params sh.sh_node host ~secure:true
                  ~bytes:r.sr_bytes
                  ~messages:(Runner.message_count params r.sr_bytes)
            | Config.Sos ->
                bytes_shipped := !bytes_shipped + r.sr_bytes;
                Runner.charge_io sh.sh_node params pages;
                Runner.charge_cache_hits sh.sh_node params hits;
                Runner.charge_crypto ~parallel:false ~lanes sh.sh_node params
                  ~decrypts ~macs ~merkle ~rpmb;
                Sim.Node.compute_serial sh.sh_node ~category:"ndp"
                  ~row_ops:c.Sql.Observer.rows;
                Runner.charge_memory sh.sh_node ~category:"spill"
                  c.Sql.Observer.bytes_allocated;
                Runner.charge_transfer params sh.sh_node host ~secure:true
                  ~bytes:r.sr_bytes ~messages:1);
        (* per-shard scatter latency: virtual time this shard spent on
           its slice, observed under the shard node's own scope so the
           gather side can merge the distributions exactly *)
        if Obs.enabled () then
          Obs.observe
            ~scope:(Sim.Node.name sh.sh_node)
            "scatter_latency_ns"
            (Sim.Node.now sh.sh_node -. shard_t0))
      t.shards;
    let shard_rows =
      Array.fold_left
        (fun a r -> a + r.sr_counters.Sql.Observer.rows)
        0 runs
    in
    let shard_batches =
      Array.fold_left
        (fun a r -> a + r.sr_counters.Sql.Observer.batches)
        0 runs
    in
    let shard_allocs =
      Array.fold_left
        (fun a r -> a + r.sr_counters.Sql.Observer.bytes_allocated)
        0 runs
    in
    let total_pages =
      Array.fold_left
        (fun a r -> a + r.sr_counters.Sql.Observer.page_reads)
        0 runs
    in
    let total_hits =
      Array.fold_left
        (fun a r -> a + r.sr_counters.Sql.Observer.page_hits)
        0 runs
    in
    (* host side: gather/merge work, plus the config's enclave costs *)
    (match config with
    | Config.Hons ->
        (* host-only semantics: all row work is host work *)
        Runner.charge_compute host
          ~rows:(shard_rows + gathered_rows + hc.Sql.Observer.rows)
          ~batches:(shard_batches + hc.Sql.Observer.batches)
    | Config.Hos ->
        Runner.charge_compute host
          ~rows:(shard_rows + gathered_rows + hc.Sql.Observer.rows)
          ~batches:(shard_batches + hc.Sql.Observer.batches);
        Runner.charge_enclave_transitions host params (2 * total_pages);
        let merkle_ws =
          Array.fold_left
            (fun a sh -> a + Runner.merkle_bytes sh.sh_store)
            0 t.shards
        in
        Runner.charge_epc host d.Deployment.host_enclave params
          ~working_set:
            (hc.Sql.Observer.bytes_allocated + shard_allocs + merkle_ws)
          ~accesses:(3 * total_pages)
    | Config.Vcs ->
        Runner.charge_compute host
          ~rows:(hc.Sql.Observer.rows + gathered_rows)
          ~batches:hc.Sql.Observer.batches
    | Config.Scs ->
        Runner.charge_compute host
          ~rows:(hc.Sql.Observer.rows + gathered_rows)
          ~batches:hc.Sql.Observer.batches;
        let msgs =
          Array.fold_left
            (fun a r -> a + Runner.message_count params r.sr_bytes)
            0 runs
        in
        Runner.charge_enclave_transitions host params (2 * msgs);
        Runner.charge_epc host d.Deployment.host_enclave params
          ~working_set:hc.Sql.Observer.bytes_allocated ~accesses:msgs
    | Config.Sos ->
        Runner.charge_compute host
          ~rows:(hc.Sql.Observer.rows + gathered_rows)
          ~batches:hc.Sql.Observer.batches);
    Array.iter
      (fun sh ->
        Sim.Clock.sync (Sim.Node.clock host) (Sim.Node.clock sh.sh_node) 0.0)
      t.shards;
    {
      Runner.config;
      end_to_end_ns = Sim.Node.now host;
      host_breakdown = Sim.Trace.breakdown (Sim.Node.trace host);
      storage_breakdown =
        merge_breakdowns
          (Array.to_list
             (Array.map
                (fun sh -> Sim.Trace.breakdown (Sim.Node.trace sh.sh_node))
                t.shards));
      bytes_shipped = !bytes_shipped;
      pages_scanned = total_pages;
      page_hits = total_hits;
      host_rows = hc.Sql.Observer.rows + gathered_rows;
      storage_rows = shard_rows;
      result;
      profile = None;
    }
  in
  let tok = Obs.begin_query () in
  let m =
    Sim.Node.with_span host ~name:"query"
      ~attrs:
        (("config", Config.abbrev config)
        :: ("shards", string_of_int t.nshards)
        :: Obs.trace_attrs ())
      exec
  in
  if Obs.enabled () then
    Obs.event ~scope:"core" ~kind:"query.done"
      [
        ("config", Ev.S (Config.abbrev config));
        ("end_to_end_ns", Ev.F m.Runner.end_to_end_ns);
        ("bytes_shipped", Ev.I m.Runner.bytes_shipped);
        ("pages", Ev.I m.Runner.pages_scanned);
        ("rows", Ev.I (List.length m.Runner.result.Sql.Exec.rows));
      ];
  match Obs.finish_query tok with
  | Some p -> { m with Runner.profile = Some p }
  | None -> m

let run_stmt ?reset ?project t config stmt =
  if t.nshards = 1 then Runner.run_stmt ?reset ?project t.base config stmt
  else
    match stmt with
    | Sql.Ast.Select q -> run_scatter ?reset ?project t config q stmt
    | _ ->
        invalid_arg
          "Cluster.run_stmt: shard replicas are read-only; only SELECT can \
           run with shards > 1"

let run_query t config sql = run_stmt t config (Sql.Parser.parse sql)

(* Fault-aware wrapper, reusing the single-node outcome type: a flaky
   shard degrades (faults recovered mid-query) or rejects (integrity
   failure survives the re-read budget / a shard is unattested) — it
   never silently returns wrong rows. *)
let run_stmt_outcome ?reset ?project t config stmt =
  if t.nshards = 1 then
    Runner.run_stmt_outcome ?reset ?project t.base config stmt
  else
    let faults = t.base.Deployment.faults in
    let attested =
      Monitor.Trusted_monitor.attested_storage_nodes t.base.Deployment.monitor
    in
    let missing =
      Array.to_list t.shards
      |> List.filter_map (fun sh ->
             let id = Tee.Trustzone.device_id sh.sh_tz in
             if List.mem id attested then None else Some id)
    in
    match missing with
    | id :: _ ->
        Fault.note_rejected faults;
        Obs.count ~scope:"fault" "rejected";
        Runner.Rejected
          {
            Runner.v_site = "cluster.attest";
            v_detail = Printf.sprintf "shard device %s is not attested" id;
          }
    | [] -> (
        let mark = Fault.incident_count faults in
        match run_stmt ?reset ?project t config stmt with
        | m -> (
            match Fault.incidents_since faults mark with
            | [] -> Runner.Ok m
            | incidents ->
                Fault.note_recovered_since faults mark;
                Runner.Degraded (m, incidents))
        | exception Sql.Pager.Integrity_failure detail ->
            Fault.note_rejected faults;
            Obs.count ~scope:"fault" "rejected";
            Runner.Rejected
              (Runner.violation_of_faults faults ~default:"securestore"
                 ~detail)
        | exception Tee.Sgx.Enclave_aborted ->
            Fault.note_rejected faults;
            Obs.count ~scope:"fault" "rejected";
            Runner.Rejected
              (Runner.violation_of_faults faults ~default:"sgx.abort"
                 ~detail:"enclave died mid-query"))

let run_query_outcome t config sql =
  run_stmt_outcome t config (Sql.Parser.parse sql)

(* -- merged scatter-latency distribution ------------------------------- *)

(* Every shard's scatter phase observes its virtual-time slice into a
   per-shard-scope histogram ([<node>/scatter_latency_ns]); the gather
   side folds those views with the exact bucket-wise merge, so the
   combined percentile table equals one histogram that watched every
   shard's stream. *)
let scatter_latency_view t =
  let snap = Ironsafe_obs.Metrics.snapshot Ironsafe_obs.Metrics.default in
  Array.fold_left
    (fun acc sh ->
      match
        Ironsafe_obs.Metrics.value snap
          ~scope:(Sim.Node.name sh.sh_node)
          "scatter_latency_ns"
      with
      | Some (Ironsafe_obs.Metrics.VHist v) ->
          Ironsafe_obs.Histogram.merge acc v
      | _ -> acc)
    Ironsafe_obs.Histogram.empty_view t.shards

let scatter_latency_table t =
  let module H = Ironsafe_obs.Histogram in
  let buf = Buffer.create 256 in
  let line scope (v : H.view) =
    Buffer.add_string buf
      (Printf.sprintf "%-12s n=%-6d p50=%.3fms p95=%.3fms p99=%.3fms\n"
         scope v.H.v_count
         (H.percentile_of_view v 50.0 /. 1e6)
         (H.percentile_of_view v 95.0 /. 1e6)
         (H.percentile_of_view v 99.0 /. 1e6))
  in
  let snap = Ironsafe_obs.Metrics.snapshot Ironsafe_obs.Metrics.default in
  Array.iter
    (fun sh ->
      let scope = Sim.Node.name sh.sh_node in
      match
        Ironsafe_obs.Metrics.value snap ~scope "scatter_latency_ns"
      with
      | Some (Ironsafe_obs.Metrics.VHist v) -> line scope v
      | _ -> ())
    t.shards;
  line "merged" (scatter_latency_view t);
  Buffer.contents buf
