(* Policy evaluation: partial evaluation of a rule's condition against
   a request context. Static predicates collapse to booleans; row-level
   predicates remain as SQL residuals (to be injected into the query by
   the trusted monitor); logUpdate predicates surface as obligations.

   The result of evaluating "read ::= sessionKeyIs(Ka) |
   sessionKeyIs(Kb) & le(T, TIMESTAMP)" for client Kb is
   [Allowed { residual = Some (_expiry >= <today>); ... }]: Kb may
   read, but only records that have not expired — exactly the paper's
   GDPR anti-pattern #1 enforcement. *)

open Policy_ast
module Sql = Ironsafe_sql

(* Reserved column names the monitor's rewrites rely on. *)
let expiry_column = "_expiry"
let reuse_column = "_reuse"

type node_config = { location : string; fw_version : int }

type request = {
  client_key : string;
  access_date : Sql.Date.t;
  host : node_config option;
  storage : node_config option;
  latest_fw_host : int;
  latest_fw_storage : int;
  reuse_bit : int option;  (** client's position in the reuse bitmap *)
}

type obligation = { log_name : string; fields : string list }

type decision =
  | Denied of string
  | Allowed of {
      residual : Sql.Ast.expr option;
      obligations : obligation list;
      storage_required : bool;
          (** true when a storage-side predicate constrained the
              deployment: offloading needs a compliant storage node *)
    }

(* partial value: known boolean or residual SQL predicate *)
type pv = Known of bool | Residual of Sql.Ast.expr

let col name = Sql.Ast.Col { qualifier = None; name }

let operand_expr req = function
  | Access_time -> Sql.Ast.Lit (Sql.Value.Date req.access_date)
  | Expiry_column -> col expiry_column
  | Date_lit d -> Sql.Ast.Lit (Sql.Value.Date d)

let version_ok ~latest ~node = function
  | Latest -> node = latest
  | At_least v -> node >= v

let eval_pred req ~obligations ~storage_touched pred : pv =
  match pred with
  | Session_key_is k -> Known (String.equal k req.client_key)
  | Host_loc_is locs ->
      Known
        (match req.host with
        | None -> false
        | Some h -> List.mem h.location locs)
  | Storage_loc_is locs ->
      storage_touched := true;
      Known
        (match req.storage with
        | None -> false
        | Some s -> List.mem s.location locs)
  | Fw_version_host v ->
      Known
        (match req.host with
        | None -> false
        | Some h -> version_ok ~latest:req.latest_fw_host ~node:h.fw_version v)
  | Fw_version_storage v ->
      storage_touched := true;
      Known
        (match req.storage with
        | None -> false
        | Some s ->
            version_ok ~latest:req.latest_fw_storage ~node:s.fw_version v)
  | Le (a, b) ->
      Residual (Sql.Ast.Binop (Sql.Ast.Le, operand_expr req a, operand_expr req b))
  | Reuse_map -> (
      match req.reuse_bit with
      | None -> Known false (* unknown client: no opt-in recorded *)
      | Some bit ->
          (* the reuse column stores a '0'/'1' bitmap string; bit k is
             tested with LIKE '<k underscores>1%' *)
          let pattern = String.make bit '_' ^ "1%" in
          Residual
            (Sql.Ast.Like { negated = false; subject = col reuse_column; pattern }))
  | Log_update (log_name :: fields) ->
      obligations := { log_name; fields } :: !obligations;
      Known true
  | Log_update [] -> Known true

let pv_and a b =
  match (a, b) with
  | Known false, _ | _, Known false -> Known false
  | Known true, x | x, Known true -> x
  | Residual ra, Residual rb -> Residual (Sql.Ast.Binop (Sql.Ast.And, ra, rb))

let pv_or a b =
  match (a, b) with
  | Known true, _ | _, Known true -> Known true
  | Known false, x | x, Known false -> x
  | Residual ra, Residual rb -> Residual (Sql.Ast.Binop (Sql.Ast.Or, ra, rb))

let rec eval_cond req ~obligations ~storage_touched = function
  | Pred p -> eval_pred req ~obligations ~storage_touched p
  | And (a, b) ->
      pv_and
        (eval_cond req ~obligations ~storage_touched a)
        (eval_cond req ~obligations ~storage_touched b)
  | Or (a, b) ->
      pv_or
        (eval_cond req ~obligations ~storage_touched a)
        (eval_cond req ~obligations ~storage_touched b)

let evaluate_rule req rule =
  let obligations = ref [] in
  let storage_touched = ref false in
  match eval_cond req ~obligations ~storage_touched rule.cond with
  | Known true ->
      Allowed
        {
          residual = None;
          obligations = List.rev !obligations;
          storage_required = !storage_touched;
        }
  | Known false ->
      Denied
        (Fmt.str "policy rule '%a' not satisfied for client %s" pp_rule rule
           req.client_key)
  | Residual e ->
      Allowed
        {
          residual = Some e;
          obligations = List.rev !obligations;
          storage_required = !storage_touched;
        }

(* The rule the policy selects for a permission (first match), exposed
   so callers can report *which* rule decided — rules have no intrinsic
   ids, so forensic ids are derived from the selected rule's rendering. *)
let matching_rule policy ~perm = List.find_opt (fun r -> r.perm = perm) policy

(* Evaluate the policy for a permission; a policy with no rule for the
   permission denies by default. *)
let evaluate policy ~perm req =
  match matching_rule policy ~perm with
  | None ->
      Denied (Fmt.str "no %s rule in policy (default deny)" (perm_name perm))
  | Some rule -> evaluate_rule req rule

(* Execution-policy evaluation (§4.2, policy-compliant query
   partitioning): the monitor decides per node which parts of the
   deployment comply. [offload_allowed] requires the storage node to
   satisfy the storage predicates; [host_ok] evaluates the condition
   with storage predicates vacuously true — if even that fails (host
   location/firmware is non-compliant) the query cannot run at all. A
   policy without an exec rule allows everything. *)

type exec_verdict = { host_ok : bool; offload_allowed : bool }

let rec eval_static ?(assume_storage = false) req = function
  | Pred (Storage_loc_is _ | Fw_version_storage _) when assume_storage -> true
  | Pred p -> (
      let obligations = ref [] and storage_touched = ref false in
      match eval_pred req ~obligations ~storage_touched p with
      | Known b -> b
      | Residual _ -> true (* row-level predicates do not gate placement *))
  | And (a, b) ->
      eval_static ~assume_storage req a && eval_static ~assume_storage req b
  | Or (a, b) ->
      eval_static ~assume_storage req a || eval_static ~assume_storage req b

let evaluate_exec policy req =
  match List.find_opt (fun r -> r.perm = Exec) policy with
  | None -> { host_ok = true; offload_allowed = true }
  | Some rule ->
      {
        host_ok = eval_static ~assume_storage:true req rule.cond;
        offload_allowed = eval_static req rule.cond;
      }
