(* Parser for the policy language. Grammar:

     policy  := rule (newline/; rule)*
     rule    := perm "::=" cond          (":-" also accepted, as in the
                                          paper's examples)
     perm    := "read" | "write" | "exec"
     cond    := term ("|" term)*
     term    := atom ("&" atom)*
     atom    := predicate "(" args ")" | "(" cond ")"

   '&' binds tighter than '|'. Predicate names are case-insensitive. *)

open Policy_ast

exception Policy_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Policy_error s)) fmt

type token = ID of string | LP | RP | COMMA | AMP | BAR | DEFINES | EOF

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  let is_ident c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '-' || c = '#'
  in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = ';' then incr i
    else if c = '(' then (toks := LP :: !toks; incr i)
    else if c = ')' then (toks := RP :: !toks; incr i)
    else if c = ',' then (toks := COMMA :: !toks; incr i)
    else if c = '&' then (toks := AMP :: !toks; incr i)
    else if c = '|' then (toks := BAR :: !toks; incr i)
    else if c = ':' && !i + 2 < n && src.[!i + 1] = ':' && src.[!i + 2] = '=' then begin
      toks := DEFINES :: !toks;
      i := !i + 3
    end
    else if c = ':' && !i + 1 < n && src.[!i + 1] = '-' then begin
      toks := DEFINES :: !toks;
      i := !i + 2
    end
    else if is_ident c then begin
      let start = !i in
      while !i < n && is_ident src.[!i] do
        incr i
      done;
      toks := ID (String.sub src start (!i - start)) :: !toks
    end
    else fail "unexpected character %C in policy" c
  done;
  List.rev (EOF :: !toks)

type st = { mutable toks : token list }

let peek st = match st.toks with [] -> EOF | t :: _ -> t
let advance st = match st.toks with [] -> () | _ :: r -> st.toks <- r

let expect st tok what =
  if peek st = tok then advance st else fail "expected %s in policy" what

let parse_args st =
  expect st LP "'('";
  let rec go acc =
    match peek st with
    | ID s ->
        advance st;
        if peek st = COMMA then begin
          advance st;
          go (s :: acc)
        end
        else List.rev (s :: acc)
    | RP -> List.rev acc
    | _ -> fail "expected argument in policy predicate"
  in
  let args = go [] in
  expect st RP "')'";
  args

let operand_of_string s =
  match String.uppercase_ascii s with
  | "T" -> Access_time
  | "TIMESTAMP" -> Expiry_column
  | _ -> (
      try Date_lit (Ironsafe_sql.Date.of_string s)
      with Invalid_argument _ ->
        fail "le() operand must be T, TIMESTAMP or a date, got %s" s)

let version_of_string s =
  match String.lowercase_ascii s with
  | "latest" -> Latest
  | v -> (
      match int_of_string_opt v with
      | Some n -> At_least n
      | None -> fail "firmware version must be 'latest' or an integer, got %s" s)

let pred_of st name =
  let args = parse_args st in
  let one () =
    match args with
    | [ a ] -> a
    | _ -> fail "%s expects exactly one argument" name
  in
  match String.lowercase_ascii name with
  | "sessionkeyis" -> Session_key_is (one ())
  | "hostlocis" | "hostlocs" ->
      if args = [] then fail "hostLocIs expects locations";
      Host_loc_is args
  | "storagelocis" | "storagelocs" ->
      if args = [] then fail "storageLocIs expects locations";
      Storage_loc_is args
  | "fwversionhost" -> Fw_version_host (version_of_string (one ()))
  | "fwversionstorage" -> Fw_version_storage (version_of_string (one ()))
  | "le" -> (
      match args with
      | [ a; b ] -> Le (operand_of_string a, operand_of_string b)
      | _ -> fail "le expects two arguments")
  | "reusemap" -> Reuse_map
  | "logupdate" ->
      if args = [] then fail "logUpdate expects a log name";
      Log_update args
  | other -> fail "unknown predicate %s" other

let rec parse_cond st = parse_or st

and parse_or st =
  let left = parse_and st in
  if peek st = BAR then begin
    advance st;
    Or (left, parse_or st)
  end
  else left

and parse_and st =
  let left = parse_atom st in
  if peek st = AMP then begin
    advance st;
    And (left, parse_and st)
  end
  else left

and parse_atom st =
  match peek st with
  | LP ->
      advance st;
      let c = parse_cond st in
      expect st RP "')'";
      c
  | ID name ->
      advance st;
      Pred (pred_of st name)
  | _ -> fail "expected predicate or '(' in policy condition"

let parse src =
  let st = { toks = tokenize src } in
  let rec rules acc =
    match peek st with
    | EOF -> List.rev acc
    | ID p ->
        advance st;
        let perm =
          match String.lowercase_ascii p with
          | "read" -> Read
          | "write" -> Write
          | "exec" -> Exec
          | other -> fail "unknown permission %s (read/write/exec)" other
        in
        expect st DEFINES "'::='";
        let cond = parse_cond st in
        rules ({ perm; cond } :: acc)
    | _ -> fail "expected a policy rule"
  in
  rules []
