(* Query rewriting performed by the trusted monitor (§4.3):

   - SELECT: the policy residual is conjoined to the WHERE clause, but
     only against tables that actually carry the governed columns
     (residuals referencing [_expiry] or [_reuse] are attached per
     table; residuals with no column references apply globally);
   - INSERT: the monitor appends the [_expiry] / [_reuse] columns with
     values it controls (anti-patterns #1 and #2: the client cannot
     choose its own retention or reuse scope). *)

module Sql = Ironsafe_sql
open Sql.Ast

let residual_columns residual =
  columns_of_expr [] residual |> List.map snd |> List.sort_uniq compare

(* Does [table]'s schema carry all columns the residual mentions that
   are governed (start with '_')? *)
let table_covers catalog table cols =
  match Sql.Catalog.find_opt catalog table with
  | None -> false
  | Some hf ->
      let schema = Sql.Heap_file.schema hf in
      List.for_all
        (fun c ->
          (not (String.length c > 0 && c.[0] = '_'))
          || Option.is_some (Sql.Schema.column_index schema c))
        cols

let qualify_residual binding residual =
  let rec go = function
    | Col { qualifier = None; name } when String.length name > 0 && name.[0] = '_'
      ->
        Col { qualifier = Some binding; name }
    | Col _ as e -> e
    | Lit _ as e -> e
    | Interval _ as e -> e
    | Unary (op, e) -> Unary (op, go e)
    | Binop (op, a, b) -> Binop (op, go a, go b)
    | Like l -> Like { l with subject = go l.subject }
    | Between b -> Between { b with subject = go b.subject; low = go b.low; high = go b.high }
    | In_list i -> In_list { i with subject = go i.subject; items = List.map go i.items }
    | In_select i -> In_select { i with subject = go i.subject }
    | Exists _ as e -> e
    | Scalar_select _ as e -> e
    | Case { branches; else_ } ->
        Case
          {
            branches = List.map (fun (c, v) -> (go c, go v)) branches;
            else_ = Option.map go else_;
          }
    | Extract e -> Extract { e with arg = go e.arg }
    | Is_null i -> Is_null { i with subject = go i.subject }
    | Substring x ->
        Substring
          {
            subject = go x.subject;
            start = go x.start;
            len = Option.map go x.len;
          }
    | Agg _ as e -> e
  in
  go residual

(* Conjoin [residual] into every (sub)select whose FROM references a
   governed table. *)
(* Base tables bound directly in this FROM clause; tables inside
   derived tables are handled by the recursive rewrite of the derived
   select itself, not by conjuncts at this level (their bindings are
   not in scope here). *)
let rec direct_tables acc = function
  | Table { table; alias } -> (table, Option.value ~default:table alias) :: acc
  | Derived _ -> acc
  | Join { left; right; _ } -> direct_tables (direct_tables acc left) right

let rec rewrite_select catalog residual (q : select) : select =
  let cols = residual_columns residual in
  let governed = List.exists (fun c -> String.length c > 0 && c.[0] = '_') cols in
  let from = List.map (rewrite_from_item catalog residual) q.from in
  let add_for_binding acc (table, binding) =
    if table_covers catalog table cols then
      qualify_residual binding residual :: acc
    else acc
  in
  let extra =
    if governed then
      List.fold_left add_for_binding []
        (List.concat_map (direct_tables []) q.from)
    else [ residual ] (* purely temporal residual: applies once *)
  in
  let where =
    match (q.where, conjoin extra) with
    | w, None -> w
    | None, Some e -> Some e
    | Some w, Some e -> Some (Binop (And, w, e))
  in
  { q with from; where }

and rewrite_from_item catalog residual = function
  | Table _ as t -> t
  | Derived { select; alias } ->
      Derived { select = rewrite_select catalog residual select; alias }
  | Join { kind; left; right; on } ->
      Join
        {
          kind;
          left = rewrite_from_item catalog residual left;
          right = rewrite_from_item catalog residual right;
          on;
        }

let rewrite_stmt catalog residual = function
  | Select q -> Select (rewrite_select catalog residual q)
  | other -> other

(* INSERT rewriting: append governed column values chosen by the
   monitor. [extra] maps column name to the value expression. *)
let extend_insert catalog stmt ~extra =
  match stmt with
  | Insert { table; columns; values } -> (
      match Sql.Catalog.find_opt catalog table with
      | None -> stmt
      | Some hf ->
          let schema = Sql.Heap_file.schema hf in
          let applicable =
            List.filter
              (fun (c, _) -> Option.is_some (Sql.Schema.column_index schema c))
              extra
          in
          if applicable = [] then stmt
          else begin
            let columns =
              match columns with
              | Some cs -> Some (cs @ List.map fst applicable)
              | None ->
                  (* positional insert: the governed columns must be the
                     trailing schema columns *)
                  let names = Sql.Schema.column_names schema in
                  let base =
                    List.filteri
                      (fun i _ ->
                        i
                        < Sql.Schema.arity schema - List.length applicable)
                      names
                  in
                  Some (base @ List.map fst applicable)
            in
            let values =
              List.map (fun vs -> vs @ List.map snd applicable) values
            in
            Insert { table; columns; values }
          end)
  | other -> other
