(* Abstract syntax of IronSafe's declarative policy language (§4.3,
   Table 1).

   A policy is a set of rules "perm ::= condition". Conditions combine
   predicates with '&' (and) and '|' (or); a policy rule authorizes a
   request if its condition evaluates to true. Three predicate classes:

   - static:     decided once per request against the attested node
                 configurations and the client identity
                 (sessionKeyIs, hostLocIs, storageLocIs, fwVersion...);
   - row-level:  compiled into a SQL residual the trusted monitor
                 injects into the query (le(T, TIMESTAMP), reuseMap);
   - obligation: side effects the monitor must perform (logUpdate). *)

type version_req = Latest | At_least of int

type operand =
  | Access_time  (** the variable T: time the query is evaluated *)
  | Expiry_column  (** the variable TIMESTAMP: the record's expiry *)
  | Date_lit of Ironsafe_sql.Date.t

type pred =
  | Session_key_is of string  (** client identity key (label or hex) *)
  | Host_loc_is of string list
  | Storage_loc_is of string list
  | Fw_version_host of version_req
  | Fw_version_storage of version_req
  | Le of operand * operand
  | Reuse_map  (** record's opt-in bitmap must cover the client *)
  | Log_update of string list  (** log name followed by field names *)

type cond = Pred of pred | And of cond * cond | Or of cond * cond

type perm = Read | Write | Exec

type rule = { perm : perm; cond : cond }

type t = rule list

let perm_name = function Read -> "read" | Write -> "write" | Exec -> "exec"

let pp_version ppf = function
  | Latest -> Fmt.string ppf "latest"
  | At_least v -> Fmt.int ppf v

let pp_operand ppf = function
  | Access_time -> Fmt.string ppf "T"
  | Expiry_column -> Fmt.string ppf "TIMESTAMP"
  | Date_lit d -> Fmt.string ppf (Ironsafe_sql.Date.to_string d)

let pp_pred ppf = function
  | Session_key_is k -> Fmt.pf ppf "sessionKeyIs(%s)" k
  | Host_loc_is ls -> Fmt.pf ppf "hostLocIs(%s)" (String.concat ", " ls)
  | Storage_loc_is ls -> Fmt.pf ppf "storageLocIs(%s)" (String.concat ", " ls)
  | Fw_version_host v -> Fmt.pf ppf "fwVersionHost(%a)" pp_version v
  | Fw_version_storage v -> Fmt.pf ppf "fwVersionStorage(%a)" pp_version v
  | Le (a, b) -> Fmt.pf ppf "le(%a, %a)" pp_operand a pp_operand b
  | Reuse_map -> Fmt.string ppf "reuseMap(m)"
  | Log_update fields -> Fmt.pf ppf "logUpdate(%s)" (String.concat ", " fields)

let rec pp_cond ppf = function
  | Pred p -> pp_pred ppf p
  | And (a, b) -> Fmt.pf ppf "%a & %a" pp_cond_atom a pp_cond_atom b
  | Or (a, b) -> Fmt.pf ppf "%a | %a" pp_cond_atom a pp_cond_atom b

and pp_cond_atom ppf = function
  | Pred p -> pp_pred ppf p
  | c -> Fmt.pf ppf "(%a)" pp_cond c

let pp_rule ppf r = Fmt.pf ppf "%s ::= %a" (perm_name r.perm) pp_cond r.cond
let pp ppf t = Fmt.(list ~sep:(any "@.") pp_rule) ppf t
