(* The five GDPR anti-patterns of the paper's Table 3, as policy
   templates plus the schema conventions they rely on.

   #1 Timely deletion      — records carry [_expiry]; reads filter
                             expired rows; a retention sweep deletes.
   #2 Indiscriminate use   — records carry a [_reuse] opt-in bitmap;
                             reads filter rows whose bit for the
                             querying service is unset.
   #3 Transparent sharing  — every consumer read is logged (identity,
                             query) to a tamper-evident audit log.
   #4 Risk-agnostic setup  — execution policies pin firmware versions
                             and locations (attested, not asserted).
   #5 Undetected breaches  — all access attempts, including denied
                             ones, land in the audit log for breach
                             analysis. *)

module Sql = Ironsafe_sql

let expiry_column = Policy_eval.expiry_column
let reuse_column = Policy_eval.reuse_column

(* Schema helper: the governed variant of a table schema. *)
let governed_columns ~expiry ~reuse =
  (if expiry then [ (expiry_column, Sql.Value.TDate) ] else [])
  @ if reuse then [ (reuse_column, Sql.Value.TStr) ] else []

let governed_schema ?(expiry = false) ?(reuse = false) ~name ~columns () =
  Sql.Schema.create ~name ~columns:(columns @ governed_columns ~expiry ~reuse)

(* Policy templates (clients fill in their key labels). *)

let timely_deletion ~owner_key ~consumer_key =
  Printf.sprintf
    "read ::= sessionKeyIs(%s) | sessionKeyIs(%s) & le(T, TIMESTAMP)\n\
     write ::= sessionKeyIs(%s)"
    owner_key consumer_key owner_key

let prevent_indiscriminate_use ~owner_key =
  Printf.sprintf "read ::= reuseMap(m)\nwrite ::= sessionKeyIs(%s)" owner_key

let transparent_sharing ~owner_key ~log_name =
  Printf.sprintf
    "read ::= logUpdate(%s, K, Q)\nwrite ::= sessionKeyIs(%s)" log_name
    owner_key

let risk_aware_execution ~host_version ~storage_version =
  Printf.sprintf "exec ::= fwVersionHost(%s) & fwVersionStorage(%s)"
    host_version storage_version

let breach_detection ~log_name =
  Printf.sprintf "read ::= logUpdate(%s, K, Q, T)\nwrite ::= logUpdate(%s, K, Q, T)"
    log_name log_name

(* A reuse bitmap literal with the given bits set, e.g. [bitmap ~width:8
   [1; 3]] = "01010000". *)
let bitmap ~width bits =
  String.init width (fun i -> if List.mem i bits then '1' else '0')

(* Retention sweep (anti-pattern #1's deletion side): remove expired
   rows from a governed table. Returns rows deleted. *)
let retention_sweep db ~table ~today =
  match
    Sql.Database.exec db
      (Printf.sprintf "delete from %s where %s < date '%s'" table expiry_column
         (Sql.Date.to_string today))
  with
  | Sql.Database.Affected n -> n
  | _ -> 0
