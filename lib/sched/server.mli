(** A contended resource as a FIFO multi-slot server (host cores,
    storage cores, device queue depth, channel streams). Requests are
    granted the earliest-free slot; an uncontended request starts
    immediately and sees exactly its sequential service time. *)

type t

val create : name:string -> slots:int -> t
(** @raise Invalid_argument when [slots < 1]. *)

val name : t -> string
val slots : t -> int

val request : t -> at:float -> duration_ns:float -> float
(** [request t ~at ~duration_ns] reserves the earliest-free slot from
    virtual time [at]; returns the actual start time
    ([>= at]; equal when a slot is free). Deterministic: ties pick the
    lowest slot index.
    @raise Invalid_argument on a negative duration. *)

val busy_ns : t -> float
(** Total service time granted. *)

val wait_ns : t -> float
(** Total queueing delay imposed on requests. *)

val served : t -> int

val utilization : t -> makespan_ns:float -> float
(** [busy / (slots * makespan)], in [\[0, 1\]] for a consistent run. *)
