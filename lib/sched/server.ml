(* A contended resource as a FIFO multi-slot server.

   A server owns [slots] identical service slots (host cores, storage
   ARM cores, NVMe queue-depth entries, channel streams). A request at
   virtual time [at] for [duration_ns] of service picks the
   earliest-free slot (lowest index on ties, so replays are
   deterministic), starts at [max at slot_free], and holds the slot for
   the duration. With fewer concurrent requests than slots this
   degenerates to no waiting at all — a single uncontended query sees
   exactly its sequential service times. *)

type t = {
  name : string;
  free : float array;  (** per-slot next-free virtual time *)
  mutable busy_ns : float;  (** total service time granted *)
  mutable wait_ns : float;  (** total queueing delay imposed *)
  mutable served : int;
}

let create ~name ~slots =
  if slots < 1 then invalid_arg "Server.create: slots must be >= 1";
  { name; free = Array.make slots 0.0; busy_ns = 0.0; wait_ns = 0.0; served = 0 }

let name t = t.name
let slots t = Array.length t.free
let busy_ns t = t.busy_ns
let wait_ns t = t.wait_ns
let served t = t.served

let request t ~at ~duration_ns =
  if duration_ns < 0.0 then invalid_arg "Server.request: negative duration";
  let best = ref 0 in
  for i = 1 to Array.length t.free - 1 do
    if t.free.(i) < t.free.(!best) then best := i
  done;
  let start = Float.max at t.free.(!best) in
  t.free.(!best) <- start +. duration_ns;
  t.busy_ns <- t.busy_ns +. duration_ns;
  t.wait_ns <- t.wait_ns +. (start -. at);
  t.served <- t.served + 1;
  start

let utilization t ~makespan_ns =
  if makespan_ns <= 0.0 then 0.0
  else t.busy_ns /. (float_of_int (Array.length t.free) *. makespan_ns)
