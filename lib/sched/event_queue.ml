(* Intrusive pairing heap specialized to (time : float, seq : int)
   keys — the scheduler's virtual-time event queue.

   The previous queue was a polymorphic [Map] over [(float * int)]
   tuples: every insert boxed a key tuple and rebuilt an O(log n) path
   of 5-word branch nodes, and every pop paid the same again. At 10^5
   to 10^6 pending events that allocation dominates the replay loop.

   Here each pending event is one mutable node holding its key fields
   inline (no tuple) and two intrusive links (leftmost child, next
   sibling) threaded through the nodes themselves. [push] is O(1): one
   comparison-and-link against the root. [pop] removes the root and
   melds its children with the classic two-pass pairing, O(log n)
   amortized. Popped nodes go on a free list and are recycled by later
   pushes, so the steady-state loop allocates nothing.

   Determinism: keys are totally ordered — [seq] is assigned by the
   queue itself, monotonically per push, and breaks every time tie —
   so the pop sequence is a pure function of the push sequence,
   whatever shape the heap takes internally. This is what lets the
   pairing heap replace the ordered map with a provably unchanged
   replay order (asserted byte-for-byte by the golden tests).

   Absent links are represented by a sentinel node (cyclic on itself)
   rather than [option], so linking never allocates a [Some] box. *)

type 'a node = {
  mutable time : float;
  mutable seq : int;
  mutable value : 'a;
  mutable child : 'a node;  (* leftmost child; [nil] when none *)
  mutable sibling : 'a node;  (* next younger sibling; [nil] when none *)
}

type 'a t = {
  nil : 'a node;  (* sentinel: links point to itself, value is [dummy] *)
  mutable root : 'a node;  (* == nil when empty *)
  mutable free : 'a node;  (* recycled nodes, linked via [sibling] *)
  mutable size : int;
  mutable seq : int;  (* next tie-break sequence number *)
}

let create ~dummy =
  let rec nil =
    { time = nan; seq = -1; value = dummy; child = nil; sibling = nil }
  in
  { nil; root = nil; free = nil; size = 0; seq = 0 }

let is_empty t = t.root == t.nil
let size t = t.size

let min_time t =
  if t.root == t.nil then invalid_arg "Event_queue.min_time: empty queue";
  t.root.time

(* strict (time, seq) order; seq is unique so this is total *)
let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

(* meld two heap roots (both with detached siblings): the loser becomes
   the winner's leftmost child *)
let meld a b =
  if less a b then begin
    b.sibling <- a.child;
    a.child <- b;
    a
  end
  else begin
    a.sibling <- b.child;
    b.child <- a;
    b
  end

let push t time value =
  let nil = t.nil in
  let n =
    if t.free != nil then begin
      let n = t.free in
      t.free <- n.sibling;
      n.time <- time;
      n.seq <- t.seq;
      n.value <- value;
      n.child <- nil;
      n.sibling <- nil;
      n
    end
    else { time; seq = t.seq; value; child = nil; sibling = nil }
  in
  t.seq <- t.seq + 1;
  t.root <- (if t.root == nil then n else meld n t.root);
  t.size <- t.size + 1

(* two-pass pairwise combine of a sibling list, iterative so a root
   with 10^5 children cannot overflow the stack: first meld adjacent
   pairs left to right (stacking the melds via their sibling links),
   then meld the stack back right to left *)
let combine t first =
  let nil = t.nil in
  let acc = ref nil in
  let cur = ref first in
  while !cur != nil do
    let a = !cur in
    let b = a.sibling in
    if b == nil then begin
      a.sibling <- !acc;
      acc := a;
      cur := nil
    end
    else begin
      let next = b.sibling in
      a.sibling <- nil;
      b.sibling <- nil;
      let m = meld a b in
      m.sibling <- !acc;
      acc := m;
      cur := next
    end
  done;
  let res = ref nil in
  let cur = ref !acc in
  while !cur != nil do
    let next = (!cur).sibling in
    (!cur).sibling <- nil;
    res := (if !res == nil then !cur else meld !cur !res);
    cur := next
  done;
  !res

let pop t =
  let r = t.root in
  if r == t.nil then invalid_arg "Event_queue.pop: empty queue";
  t.root <- combine t r.child;
  t.size <- t.size - 1;
  (* recycle the node; clear the payload so it does not pin the task *)
  let v = r.value in
  r.value <- t.nil.value;
  r.child <- t.nil;
  r.sibling <- t.free;
  t.free <- r;
  v
