(** Multi-tenant workload scheduler: discrete-event concurrent query
    execution with admission control and tail-latency reporting.

    Queries are profiled once through the sequential {!Ironsafe.Runner}
    (capturing their cost tape), then replayed concurrently against
    contended servers — host cores, storage cores, NVMe queue depth,
    host<->storage channel streams — under a virtual-time event queue,
    with the SGX EPC modeled as shared capacity that inflates paging
    cost with concurrent residency. Runs are deterministic: the same
    seed and spec reproduce a byte-identical event log and percentile
    table. *)

(** {2 Query profiles} *)

type query_profile = {
  qp_label : string;
  qp_sql : string;
  qp_config : Ironsafe.Config.t;
  qp_tape : Ironsafe_sim.Tape.event list;
  qp_itape : Ironsafe_sim.Tape.interned;
      (** shared interned form of [qp_tape] (structural memo): all
          profiles of the same query shape point at one copy, and
          replaying sessions walk it with an int cursor *)
  qp_end_to_end_ns : float;  (** sequential (uncontended) latency *)
  qp_working_set : int;  (** host-enclave residency, bytes *)
}

val profile :
  ?project:bool ->
  Ironsafe.Deployment.t ->
  Ironsafe.Config.t ->
  label:string ->
  sql:string ->
  query_profile
(** Run [sql] once through the sequential runner under tape capture
    and package the result for replay. Resets the deployment first
    (via the runner's own reset). *)

val profile_run :
  ?working_set:(unit -> int) ->
  label:string ->
  sql:string ->
  Ironsafe.Config.t ->
  (unit -> Ironsafe.Runner.metrics) ->
  query_profile
(** Tape-capture an arbitrary runner invocation — e.g. a sharded
    {!Ironsafe_cluster.Cluster.run_stmt}, whose tape charges several
    storage nodes. [working_set] (default 0) is sampled after the run
    to report the enclave residency the query leaves behind. *)

val mean_sequential_ns : query_profile list -> float

(** {2 Workload specification} *)

type arrival =
  | Open_loop of { qps : float }  (** Poisson arrivals at target rate *)
  | Closed_loop of { sessions : int; think_ns : float }
      (** N sessions, each submitting, waiting for completion, thinking
          (exponential, mean [think_ns]), repeating *)

type spec = {
  seed : int;
  arrival : arrival;
  queries : int;  (** total queries submitted across the run *)
  tenants : string list;
  max_inflight : int;  (** admission bound: concurrently executing *)
  queue_depth : int;  (** run-queue bound; beyond it arrivals shed *)
  device_queue_depth : int;  (** NVMe queue-depth slots *)
  channel_streams : int;  (** concurrent host<->storage transfers *)
  control_ns : float;  (** per-query control-path charge on the host *)
  sample_sessions : int;
      (** forensics bound. [-1] (the default) records the event log,
          per-query records and trace segments for every lane — the
          legacy exact mode, byte-identical to pre-interning output.
          [>= 0] switches to {e tail-based} retention: every task
          buffers its log lines plus a bounded ring of recent segments
          undecided, and the verdict at completion keeps anomalous
          lanes (shed, denied, tail-latency breach — all of them) while
          normal lanes pass through a deterministic splitmix64
          K-exemplar reservoir (K = this field; the side stream is
          split off [seed], so the arrival schedule is untouched).
          Counts, per-tenant stats, utilization, makespan and the
          latency distribution remain exact over {e all} sessions
          (percentile mean may differ in the last bits: latencies fold
          into the histogram chronologically instead of newest-first).
          Retained log lines merge back in chronological order — a
          subsequence of the exact log. *)
  lane_frames : int;
      (** bounded mode: per-task ring capacity for undecided trace
          segments ([<= 0] = unlimited); kept lanes carry their most
          recent [lane_frames] segments. Default 32. *)
  tail_slo_ns : float;
      (** [> 0.0] arms tail classification and the SLO burn-rate
          watchdog: completions slower than this are anomalous
          (retained, counted in [rep_tail_breaches], emitted as
          [sched.tail_breach] events) and the p99-latency plus
          error-rate objectives stream over the run, emitting
          [slo.breach]/[slo.recovered] events. [0.0] (default) off. *)
  slo_window_ns : float;
      (** long burn-rate window on the virtual clock (default 100 ms);
          the short window is 1/12 of it. *)
}

val default_spec : spec
(** Open loop at 100 q/s, 32 queries, one tenant, 8-way admission with
    a 16-deep run queue, device QD 8, 2 channel streams, no control
    charge, unbounded forensics ([sample_sessions = -1]), 32-segment
    lane rings, SLO watchdog off. *)

val arrival_name : arrival -> string

(** {2 Outcomes} *)

type shed_reason = Queue_full of { depth : int }

type outcome =
  | Completed of { latency_ns : float }
  | Shed of shed_reason  (** refused at admission — never silent *)
  | Denied of string  (** tenant gate (policy) refusal *)

val outcome_name : outcome -> string

type record = {
  r_qid : int;
  r_label : string;
  r_tenant : string;
  r_lane : int;  (** session lane (trace tid) *)
  r_arrive_ns : float;
  r_start_ns : float;  (** admission time; [= r_arrive_ns] if unqueued *)
  r_done_ns : float;
  r_outcome : outcome;
  r_segments : (string * float * float) list;
      (** (resource.category, begin, end), chronological *)
}

type latency_stats = {
  mean_ns : float;
  p50_ns : float;
  p95_ns : float;
  p99_ns : float;
  max_ns : float;
}

val latency_stats_of : float list -> latency_stats
(** Digest of a latency sample via the shared log-bucketed histogram
    ({!Ironsafe_obs.Histogram}): mean and max exact, percentiles
    bucket-resolution nearest-rank — the same extraction the metrics
    registry applies to its [sched/latency_ns] series, so the two p99s
    agree exactly on the same completions. *)

type tenant_stats = {
  mutable t_submitted : int;
  mutable t_completed : int;
  mutable t_shed : int;
  mutable t_denied : int;
}

type report = {
  rep_config : Ironsafe.Config.t;
  rep_spec : spec;
  rep_submitted : int;
  rep_completed : int;
  rep_shed : int;
  rep_denied : int;
  rep_makespan_ns : float;
  rep_throughput_qps : float;
  rep_latency : latency_stats;  (** over completed queries *)
  rep_per_tenant : (string * tenant_stats) list;
  rep_records : record list;
      (** qid order; with [sample_sessions >= 0], every anomalous lane
          plus the reservoir exemplars *)
  rep_event_log : string list;  (** chronological, deterministic *)
  rep_util : (string * float) list;  (** server -> utilization, [0,1] *)
  rep_events : int;
      (** simulator events processed (event-queue pops) — the
          numerator of the events/sec wall-clock throughput the
          saturation bench gates on *)
  rep_wall_ns : float;  (** wall-clock time spent inside {!run} *)
  rep_peak_words : int;
      (** [Gc.top_heap_words] sampled after the run: process peak live
          heap, the memory-guard datum of the saturation sweep *)
  rep_anomalous : int;
      (** bounded mode: anomalous lanes (shed/denied/tail-breach)
          retained in full — 100% of them, by construction *)
  rep_tail_breaches : int;
      (** completions slower than [tail_slo_ns] (0 when unarmed) *)
  rep_slo : Ironsafe_obs.Slo.summary list;
      (** SLO watchdog summaries (latency-p99, error-rate); [] when
          the watchdog is off *)
}

(** {2 Running} *)

val run :
  ?gate:(tenant:string -> sql:string -> (unit, string) result) ->
  ?storage_nodes:Ironsafe_sim.Node.t list ->
  Ironsafe.Deployment.t ->
  spec ->
  query_profile list ->
  report
(** Simulate [spec]'s arrival process drawing uniformly from the query
    mix [profiles]; [gate] (default: admit all) authorizes each query
    under its tenant before it may execute.

    [storage_nodes] (default: the deployment's single storage node)
    lists the parallel contended storage servers: each node gets its
    own ARM-cores, NVMe-queue-depth and channel-stream servers (named
    [<node>.cores] / [<node>.device] / [<node>.channel]), and tape
    charges route to the server set of the node they were recorded
    against, so a sharded cluster's scatter phases contend per shard
    while sharing the host's gather capacity. With one storage node
    the servers keep the legacy names ([storage.cores],
    [storage.device], [channel]) and the replay is byte-identical to
    before the parameter existed.

    @raise Invalid_argument on an infeasible spec, an empty mix, a
    mix spanning different configurations, duplicate storage node
    names, or the host listed among the storage nodes. *)

val monitor_gate :
  ?database:string ->
  Ironsafe.Deployment.t ->
  tenant:string ->
  sql:string ->
  (unit, string) result
(** Gate backed by the deployment's trusted monitor: authorizes the
    query under the tenant's registered principal against the access
    policy (issuing and immediately releasing a session key), so policy
    denials surface as [Denied]. Tenants must be registered with the
    monitor and the host attested. *)

(** {2 Rendering} *)

val percentile_table : report -> string
(** One-line throughput + p50/p95/p99 summary (deterministic; used by
    the determinism tests). *)

val pp_report : Format.formatter -> report -> unit
val json_of_report : report -> string

val to_spans : ?offset_ns:float -> report -> Ironsafe_obs.Span.t list
(** Chrome-trace lanes: one root span per completed query on lane
    [session-<n>] (queue wait and every resource segment as children),
    instant markers for sheds and denials. *)

val trace_json : report -> string
(** Standalone Chrome trace JSON for the report's lanes. *)

val add_to_collector : report -> unit
(** Splice the lanes into the global {!Ironsafe_obs} collector (after
    an epoch bump, so timelines never overlap); no-op when tracing is
    disabled. *)
