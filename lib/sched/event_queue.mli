(** Intrusive pairing heap on [(time : float, seq : int)] keys — the
    scheduler's virtual-time event queue.

    Replaces the ordered-map queue: O(1) non-allocating push (nodes are
    recycled from a free list), O(log n) amortized pop with an
    iterative two-pass combine (safe at 10^6 pending events).

    [seq] is assigned internally, monotonically per push, and breaks
    every time tie — so the pop order is a pure function of the push
    order and exactly matches the old map's [(time, seq)] iteration
    order. *)

type 'a t

val create : dummy:'a -> 'a t
(** Empty queue. [dummy] is a throwaway value of the element type used
    to fill the sentinel and cleared recycled nodes (so popped payloads
    are not pinned against the GC). *)

val is_empty : 'a t -> bool

val size : 'a t -> int
(** Number of pending events. *)

val push : 'a t -> float -> 'a -> unit
(** [push t time v] schedules [v] at virtual time [time], tie-broken
    after everything already pushed at the same time. *)

val pop : 'a t -> 'a
(** Remove and return the event with the least [(time, seq)] key.
    @raise Invalid_argument when empty. *)

val min_time : 'a t -> float
(** Time key of the next event to pop.
    @raise Invalid_argument when empty. *)
