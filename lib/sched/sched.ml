(* Multi-tenant workload scheduler: discrete-event concurrent query
   execution over one deployment.

   The sequential runner executes one query at a time and charges its
   costs as an atomic sequence of clock operations. This module turns
   those sequences into *interleavable* traffic:

   1. each query of the mix is profiled once through the real runner
      under {!Ironsafe_sim.Tape.capture}, yielding its cost tape (the
      exact per-node charges and blocking syncs the runner performed);
   2. a client generator (open-loop Poisson arrivals at a target QPS,
      or N closed-loop sessions with think time) submits queries drawn
      from the mix, each owned by a tenant whose policy principal is
      checked through the trusted monitor at admission;
   3. admitted queries replay their tapes event by event through a
      central virtual-time event queue; every charge contends for a
      FIFO multi-slot server (host cores, storage ARM cores, NVMe
      queue depth, host<->storage channel streams), and EPC-bound
      charges are inflated by the working sets of concurrently
      resident queries;
   4. arrivals beyond the admission bound wait in a FIFO run queue of
      configured depth; beyond that they are refused with a typed
      [Shed] outcome (never dropped silently) and counted in the
      metrics registry.

   Determinism: all randomness (arrival gaps, think times, mix and
   tenant draws) comes from one {!Ironsafe_sim.Prng} stream seeded
   from the spec, event ties break by submission order, and server
   slots tie-break by index — the same seed and spec reproduce a
   byte-identical event log and percentile table.

   With one closed-loop session the replay degenerates to the
   sequential model: every server has a free slot, the EPC holds one
   working set, and the tape arithmetic is exactly {!Node.charge} /
   {!Clock.sync} — latency reproduces {!Runner.run_stmt} end-to-end
   within float tolerance (bit-exact for the first query). *)

open Ironsafe
module Sim = Ironsafe_sim
module Sql = Ironsafe_sql
module Tee = Ironsafe_tee
module Obs = Ironsafe_obs

(* -- query profiles ---------------------------------------------------- *)

type query_profile = {
  qp_label : string;
  qp_sql : string;
  qp_config : Config.t;
  qp_tape : Sim.Tape.event list;
  qp_itape : Sim.Tape.interned;
  qp_end_to_end_ns : float;
  qp_working_set : int;
}

let profile_run ?(working_set = fun () -> 0) ~label ~sql config run =
  let m, tape = Sim.Tape.capture run in
  {
    qp_label = label;
    qp_sql = sql;
    qp_config = config;
    qp_tape = tape;
    (* structural memo: re-profiling the same query shape (another
       sweep point, another session count) shares one interned copy *)
    qp_itape = Sim.Tape.intern tape;
    qp_end_to_end_ns = m.Runner.end_to_end_ns;
    (* sampled after the run: enclave residency the query leaves behind *)
    qp_working_set = working_set ();
  }

let profile ?project deploy config ~label ~sql =
  let stmt = Sql.Parser.parse sql in
  profile_run
    (* enclave residency of this query (0 when the host enclave is off
       the query path): the EPC is shared under concurrency *)
    ~working_set:(fun () -> Tee.Sgx.heap_used deploy.Deployment.host_enclave)
    ~label ~sql config
    (fun () -> Runner.run_stmt ?project deploy config stmt)

let mean_sequential_ns profiles =
  match profiles with
  | [] -> 0.0
  | l ->
      List.fold_left (fun acc p -> acc +. p.qp_end_to_end_ns) 0.0 l
      /. float_of_int (List.length l)

(* -- workload specification -------------------------------------------- *)

type arrival =
  | Open_loop of { qps : float }
  | Closed_loop of { sessions : int; think_ns : float }

type spec = {
  seed : int;
  arrival : arrival;
  queries : int;  (** total queries submitted across the run *)
  tenants : string list;
  max_inflight : int;  (** admission bound: concurrently executing *)
  queue_depth : int;  (** run-queue bound; beyond it arrivals shed *)
  device_queue_depth : int;  (** NVMe queue-depth slots *)
  channel_streams : int;  (** concurrent host<->storage transfers *)
  control_ns : float;  (** per-query control-path charge (host) *)
  sample_sessions : int;
      (** forensics bound: [-1] records every lane (legacy exact mode);
          [>= 0] switches to *tail-based* retention — every task buffers
          its log lines and a bounded ring of recent trace segments
          undecided, and at its verdict an anomalous task (shed, denied,
          tail-latency breach) is kept in full while normal tasks pass
          through a deterministic splitmix64 reservoir holding this many
          exemplars. A saturation sweep thus retains 100% of anomalous
          lanes plus a bounded normal sample; counters, registry metrics
          and the latency histogram stay exact over all sessions in both
          modes. *)
  lane_frames : int;
      (** bounded mode: per-task ring capacity for undecided trace
          segments ([<= 0] keeps every segment). Kept tasks carry their
          most recent [lane_frames] segments, bounding per-lane memory
          flight-recorder-style. *)
  tail_slo_ns : float;
      (** [> 0.0] arms the tail-latency objective: completions slower
          than this are anomalous (retained, counted, and emitted as
          [sched.tail_breach] events) and feed the p99 burn-rate SLO.
          [0.0] disables tail classification and the SLO watchdog. *)
  slo_window_ns : float;
      (** long burn-rate window (virtual ns) for the SLO watchdog; the
          short window is 1/12 of it (see {!Ironsafe_obs.Slo}). *)
}

let default_spec =
  {
    seed = 42;
    arrival = Open_loop { qps = 100.0 };
    queries = 32;
    tenants = [ "tenant-0" ];
    max_inflight = 8;
    queue_depth = 16;
    device_queue_depth = 8;
    channel_streams = 2;
    control_ns = 0.0;
    sample_sessions = -1;
    lane_frames = 32;
    tail_slo_ns = 0.0;
    slo_window_ns = 1e8;
  }

let arrival_name = function
  | Open_loop { qps } -> Printf.sprintf "open(qps=%.2f)" qps
  | Closed_loop { sessions; think_ns } ->
      Printf.sprintf "closed(sessions=%d,think=%.0fns)" sessions think_ns

(* -- outcomes and records ---------------------------------------------- *)

type shed_reason = Queue_full of { depth : int }

type outcome =
  | Completed of { latency_ns : float }
  | Shed of shed_reason
  | Denied of string

let outcome_name = function
  | Completed _ -> "completed"
  | Shed _ -> "shed"
  | Denied _ -> "denied"

type record = {
  r_qid : int;
  r_label : string;
  r_tenant : string;
  r_lane : int;
  r_arrive_ns : float;
  r_start_ns : float;
  r_done_ns : float;
  r_outcome : outcome;
  r_segments : (string * float * float) list;
}

type latency_stats = {
  mean_ns : float;
  p50_ns : float;
  p95_ns : float;
  p99_ns : float;
  max_ns : float;
}

type tenant_stats = {
  mutable t_submitted : int;
  mutable t_completed : int;
  mutable t_shed : int;
  mutable t_denied : int;
}

type report = {
  rep_config : Config.t;
  rep_spec : spec;
  rep_submitted : int;
  rep_completed : int;
  rep_shed : int;
  rep_denied : int;
  rep_makespan_ns : float;
  rep_throughput_qps : float;
  rep_latency : latency_stats;
  rep_per_tenant : (string * tenant_stats) list;
  rep_records : record list;  (** qid order *)
  rep_event_log : string list;  (** chronological *)
  rep_util : (string * float) list;  (** server -> utilization in [0,1] *)
  rep_events : int;  (** simulator events processed (queue pops) *)
  rep_wall_ns : float;  (** wall-clock time spent inside [run] *)
  rep_peak_words : int;  (** [Gc.stat].top_heap_words after the run *)
  rep_anomalous : int;
      (** bounded mode: anomalous tasks (shed/denied/tail-breach)
          retained in full — every one of them, by construction *)
  rep_tail_breaches : int;  (** completions slower than [tail_slo_ns] *)
  rep_slo : Obs.Slo.summary list;  (** SLO watchdog summaries; [] when off *)
}

(* Latency digest from the fixed log-bucketed histogram
   ({!Obs.Histogram}): mean and max are exact (count/sum/max are
   tracked alongside the buckets), percentiles are bucket-resolution
   nearest-rank — the same extraction the metrics registry uses for
   its sched/latency_ns histogram, so the report's p99 and the
   registry's agree exactly on the same completions. *)
let latency_stats_of latencies =
  match latencies with
  | [] -> { mean_ns = 0.0; p50_ns = 0.0; p95_ns = 0.0; p99_ns = 0.0; max_ns = 0.0 }
  | l ->
      let h = Obs.Histogram.create () in
      List.iter (Obs.Histogram.observe h) l;
      let v = Obs.Histogram.view h in
      {
        mean_ns =
          v.Obs.Histogram.v_sum /. float_of_int v.Obs.Histogram.v_count;
        p50_ns = Obs.Histogram.percentile_of_view v 0.50;
        p95_ns = Obs.Histogram.percentile_of_view v 0.95;
        p99_ns = Obs.Histogram.percentile_of_view v 0.99;
        max_ns = v.Obs.Histogram.v_max;
      }

(* -- the simulation ---------------------------------------------------- *)

(* The event queue is {!Event_queue}: an intrusive pairing heap on
   (time, seq) keys with internal monotone seq assignment — the pop
   order is exactly the old ordered map's (time, seq) iteration order,
   without the per-event key tuple and O(log n) path rebuilding. *)

(* Per-session state is flat: ints (indices into the run's shared
   arrays), one float-only record for the mutable clocks (all-float
   records are unboxed, so clock writes do not allocate — in the old
   mixed record every [task.h <- _] boxed a fresh float), and an int
   cursor into the profile's compiled tape instead of a private
   [event list]. *)

type clocks = {
  mutable c_arrive : float;
  mutable c_h : float;  (** task-local host clock (absolute) *)
  mutable c_start : float;
}

type task = {
  qid : int;
  session : int;  (** closed-loop session id; -1 for open loop *)
  tenant : int;  (** index into the run's tenant array *)
  prof : int;  (** index into the run's profile array *)
  mutable cursor : int;  (** next compiled-tape event; -1 = control charge *)
  mutable lane : int;
  mutable last_s : int;  (** index of the last-charged storage node *)
  mutable sampled : bool;  (** record forensics for this task? *)
  mutable step_act : action;
      (** this task's [Step] action, allocated once: a task has at most
          one pending event, so every step pushes the same box *)
  ck : clocks;
  s : float array;  (** task-local storage clocks, one per storage node *)
  mutable segments_rev : (string * float * float) list;
  (* bounded-mode undecided forensics: log lines tagged with a global
     sequence (so kept lanes merge back into chronological order) and a
     ring of the most recent [lane_frames] segments. The ring is two
     parallel arrays — labels (shared tape strings) and an unboxed
     begin/end float pair per slot — grown geometrically to capacity,
     so 10^5 undecided lanes cost tens of words each, not a boxed
     tuple array apiece *)
  mutable lines_rev : (int * string) list;
  mutable seg_labels : string array;
  mutable seg_times : float array;  (* 2 per slot: begin, end *)
  mutable seg_start : int;
  mutable seg_len : int;
}

and action = Arrive of task | Step of task

(* A profile's tape compiled against the run's server set: per event
   one routing kind, one storage index, the (possibly EPC-inflated)
   duration and the precomputed replay label. Shared by every session
   replaying the profile — a session carries only its cursor. *)

let k_host = 0 (* host-cores charge *)
let k_cores = 1 (* storage ARM-cores charge *)
let k_device = 2 (* NVMe queue-depth charge *)
let k_sync = 3 (* blocking host<->storage sync *)

type ctape = {
  ct_len : int;
  ct_kind : int array;
  ct_idx : int array;  (** storage index for [k_cores]/[k_device] *)
  ct_epc : bool array;  (** duration inflates with EPC residency *)
  ct_ns : float array;
  ct_label : string array;
}

let validate spec profiles =
  if spec.queries < 1 then invalid_arg "Sched.run: queries must be >= 1";
  if spec.tenants = [] then invalid_arg "Sched.run: no tenants";
  if spec.max_inflight < 1 then invalid_arg "Sched.run: max_inflight must be >= 1";
  if spec.queue_depth < 0 then invalid_arg "Sched.run: negative queue_depth";
  if spec.device_queue_depth < 1 then
    invalid_arg "Sched.run: device_queue_depth must be >= 1";
  if spec.channel_streams < 1 then
    invalid_arg "Sched.run: channel_streams must be >= 1";
  if spec.control_ns < 0.0 then invalid_arg "Sched.run: negative control_ns";
  if spec.sample_sessions < -1 then
    invalid_arg "Sched.run: sample_sessions must be >= -1";
  if spec.tail_slo_ns < 0.0 then
    invalid_arg "Sched.run: negative tail_slo_ns";
  if spec.slo_window_ns <= 0.0 then
    invalid_arg "Sched.run: slo_window_ns must be positive";
  (match spec.arrival with
  | Open_loop { qps } ->
      if qps <= 0.0 then invalid_arg "Sched.run: qps must be positive"
  | Closed_loop { sessions; think_ns } ->
      if sessions < 1 then invalid_arg "Sched.run: sessions must be >= 1";
      if think_ns < 0.0 then invalid_arg "Sched.run: negative think time");
  match profiles with
  | [] -> invalid_arg "Sched.run: empty query mix"
  | p :: rest ->
      if List.exists (fun q -> q.qp_config <> p.qp_config) rest then
        invalid_arg "Sched.run: mixed configurations in one workload";
      p.qp_config

let run ?gate ?storage_nodes deploy spec profiles =
  let wall0 = Unix.gettimeofday () in
  let config = validate spec profiles in
  let params = deploy.Deployment.params in
  let host_name = Sim.Node.name deploy.Deployment.host in
  let host_srv =
    Server.create ~name:"host.cores"
      ~slots:(Sim.Cpu.cores (Sim.Node.cpu deploy.Deployment.host))
  in
  (* One (cores, device, channel) server triple per storage node: a
     sharded cluster contends each shard's ARM cores, NVMe queue depth
     and host<->shard channel streams independently, sharing only the
     host. With the default single storage node the servers keep their
     legacy names, so existing runs are byte-identical. *)
  let storage_nodes =
    match storage_nodes with
    | None | Some [] -> [| deploy.Deployment.storage |]
    | Some l -> Array.of_list l
  in
  let n_storage = Array.length storage_nodes in
  let storage_index : (string, int) Hashtbl.t = Hashtbl.create 8 in
  Array.iteri
    (fun i n -> Hashtbl.replace storage_index (Sim.Node.name n) i)
    storage_nodes;
  if Hashtbl.length storage_index <> n_storage then
    invalid_arg "Sched.run: duplicate storage node names";
  if Hashtbl.mem storage_index host_name then
    invalid_arg "Sched.run: host listed among storage nodes";
  let srv_cores =
    Array.map
      (fun node ->
        let prefix = if n_storage = 1 then "storage" else Sim.Node.name node in
        Server.create ~name:(prefix ^ ".cores")
          ~slots:(Sim.Cpu.cores (Sim.Node.cpu node)))
      storage_nodes
  in
  let srv_device =
    Array.map
      (fun node ->
        let prefix = if n_storage = 1 then "storage" else Sim.Node.name node in
        Server.create ~name:(prefix ^ ".device") ~slots:spec.device_queue_depth)
      storage_nodes
  in
  let srv_channel =
    Array.map
      (fun node ->
        Server.create
          ~name:
            (if n_storage = 1 then "channel" else Sim.Node.name node ^ ".channel")
          ~slots:spec.channel_streams)
      storage_nodes
  in
  (* sync segments label after the channel they ride *)
  let sync_label =
    Array.map (fun srv -> Server.name srv ^ ".transfer") srv_channel
  in
  (* tapes recorded against a node outside the set (never the case for
     runner/cluster tapes) fall back to the first storage node, which is
     exactly the legacy routing when there is one *)
  let storage_idx node =
    match Hashtbl.find_opt storage_index node with Some i -> i | None -> 0
  in
  let epc_limit = params.Sim.Params.epc_limit_bytes in
  (* EPC occupancy starts at the decrypted-page pool's footprint when
     the pool lives inside the host enclave (hos); it is pinned cache
     capacity every admitted query contends with. Zero without a pool,
     so pool-less schedules are unchanged. *)
  let epc_resident =
    ref (if config = Config.Hos then Deployment.pool_bytes deploy else 0)
  in
  let prng = Sim.Prng.create ~seed:spec.seed in
  let tenants = Array.of_list spec.tenants in
  let n_tenants = Array.length tenants in
  let profs = Array.of_list profiles in
  let n_profiles = Array.length profs in
  let prof_ws = Array.map (fun p -> p.qp_working_set) profs in
  let prof_label = Array.map (fun p -> p.qp_label) profs in

  (* compile each profile's interned tape against this run's server
     set: resolve node names to routing kinds and storage indices once,
     so the per-event replay is pure array reads *)
  let compile p =
    let it = p.qp_itape in
    let names = Sim.Tape.interned_nodes it in
    let node_to_idx = Array.map storage_idx names in
    let node_is_host = Array.map (fun n -> n = host_name) names in
    let len = Sim.Tape.interned_length it in
    let ct_kind = Array.make len k_sync in
    let ct_idx = Array.make len 0 in
    let ct_epc = Array.make len false in
    let ct_ns = Array.make len 0.0 in
    let ct_label = Array.make len "" in
    for i = 0 to len - 1 do
      let cls = Sim.Tape.cls it i in
      ct_ns.(i) <- Sim.Tape.ns it i;
      if cls <> Sim.Tape.cls_sync then begin
        let nid = Sim.Tape.node_id it i in
        ct_label.(i) <- Sim.Tape.label it i;
        ct_epc.(i) <- cls = Sim.Tape.cls_epc;
        if node_is_host.(nid) then ct_kind.(i) <- k_host
        else begin
          ct_idx.(i) <- node_to_idx.(nid);
          ct_kind.(i) <- (if cls = Sim.Tape.cls_io then k_device else k_cores)
        end
      end
    done;
    { ct_len = len; ct_kind; ct_idx; ct_epc; ct_ns; ct_label }
  in
  let progs = Array.map compile profs in
  let control_label = host_name ^ ".policy" in
  let has_control = spec.control_ns > 0.0 in

  (* tail-based forensics: with [sample_sessions >= 0] every task
     buffers its forensics undecided (log lines + a bounded segment
     ring) and the verdict at completion decides retention — anomalous
     tasks (shed/denied/tail-breach) are always kept, normal tasks pass
     through a K-exemplar reservoir driven by a splitmix64 side stream
     (split off the seed, so the arrival schedule is untouched) *)
  let bounded = spec.sample_sessions >= 0 in
  let seg_cap =
    if not bounded then 0
    else if spec.lane_frames <= 0 then max_int
    else spec.lane_frames
  in
  let k_exemplars = max 0 spec.sample_sessions in
  let reservoir :
      (record * (int * string) list) option array =
    Array.make (max 1 k_exemplars) None
  in
  let reservoir_rng =
    Sim.Prng.split (Sim.Prng.create ~seed:spec.seed) ~index:0
  in
  let n_normal = ref 0 in
  let kept_rev : (record * (int * string) list) list ref = ref [] in
  let anomalous = ref 0 in
  let tail_breaches = ref 0 in
  let log_seq = ref 0 in

  (* event queue *)
  let dummy_clocks = { c_arrive = 0.0; c_h = 0.0; c_start = 0.0 } in
  let rec dummy_task =
    {
      qid = -1;
      session = -1;
      tenant = 0;
      prof = 0;
      cursor = 0;
      lane = -1;
      last_s = 0;
      sampled = false;
      step_act = Arrive dummy_task;
      ck = dummy_clocks;
      s = [||];
      segments_rev = [];
      lines_rev = [];
      seg_labels = [||];
      seg_times = [||];
      seg_start = 0;
      seg_len = 0;
    }
  in
  let queue = Event_queue.create ~dummy:(Arrive dummy_task) in
  let push t action = Event_queue.push queue t action in

  (* bookkeeping *)
  let log_rev = ref [] in
  (* exact mode appends straight to the global log; bounded mode
     buffers (seq, line) on the task so the verdict can keep or drop
     the whole lane, and kept lanes merge back chronologically *)
  let tlogf task fmt =
    Printf.ksprintf
      (fun s ->
        if bounded then begin
          let n = !log_seq in
          incr log_seq;
          task.lines_rev <- (n, s) :: task.lines_rev
        end
        else log_rev := s :: !log_rev)
      fmt
  in
  let submitted = ref 0
  and completed = ref 0
  and shed = ref 0
  and denied = ref 0 in
  (* legacy mode digests latencies at the end (newest-first, exactly
     the old float-summation order); bounded mode folds them into one
     histogram as they complete, O(1) memory at 10^6 sessions *)
  let latencies_rev = ref [] in
  let lat_hist = Obs.Histogram.create () in
  let records_rev = ref [] in
  let makespan = ref 0.0 in
  let n_events = ref 0 in
  let c_submitted = Obs.Obs.counter ~scope:"sched" "submitted" in
  let c_completed = Obs.Obs.counter ~scope:"sched" "completed" in
  let c_shed = Obs.Obs.counter ~scope:"sched" "shed" in
  let c_denied = Obs.Obs.counter ~scope:"sched" "denied" in
  let s_latency = Obs.Obs.series ~scope:"sched" "latency_ns" in
  let tenant_stats : (string, tenant_stats) Hashtbl.t =
    Hashtbl.create (max 4 n_tenants)
  in
  Array.iter
    (fun t ->
      Hashtbl.replace tenant_stats t
        { t_submitted = 0; t_completed = 0; t_shed = 0; t_denied = 0 })
    tenants;
  (* duplicate tenant names share one stats record (replace semantics) *)
  let tstats = Array.map (fun t -> Hashtbl.find tenant_stats t) tenants in
  let tstat task = tstats.(task.tenant) in
  let note_done done_ns = if done_ns > !makespan then makespan := done_ns in
  let ring_segments task =
    let cap = Array.length task.seg_labels in
    List.init task.seg_len (fun i ->
        let j = (task.seg_start + i) mod cap in
        ( task.seg_labels.(j),
          task.seg_times.(2 * j),
          task.seg_times.((2 * j) + 1) ))
  in
  let make_record task outcome ~start_ns ~done_ns =
    task.ck.c_start <- start_ns;
    {
      r_qid = task.qid;
      r_label = prof_label.(task.prof);
      r_tenant = tenants.(task.tenant);
      r_lane = task.lane;
      r_arrive_ns = task.ck.c_arrive;
      r_start_ns = start_ns;
      r_done_ns = done_ns;
      r_outcome = outcome;
      r_segments =
        (if bounded && seg_cap <> max_int then ring_segments task
         else List.rev task.segments_rev);
    }
  in
  let finish_record task outcome ~start_ns ~done_ns =
    records_rev := make_record task outcome ~start_ns ~done_ns :: !records_rev
  in
  (* bounded-mode verdict: anomalous lanes are kept unconditionally;
     normal lanes offer themselves to the K-exemplar reservoir
     (Algorithm R on the dedicated splitmix64 stream — deterministic in
     verdict order) *)
  let settle task outcome ~start_ns ~done_ns ~anom =
    let rc = make_record task outcome ~start_ns ~done_ns in
    let lane = (rc, List.rev task.lines_rev) in
    if anom then begin
      incr anomalous;
      kept_rev := lane :: !kept_rev
    end
    else begin
      let n = !n_normal in
      incr n_normal;
      if n < k_exemplars then reservoir.(n) <- Some lane
      else if k_exemplars > 0 then begin
        let j = Sim.Prng.rand_int reservoir_rng (n + 1) in
        if j < k_exemplars then reservoir.(j) <- Some lane
      end
    end;
    (* the lane's buffers are spent either way *)
    task.lines_rev <- [];
    task.seg_labels <- [||];
    task.seg_times <- [||];
    task.seg_len <- 0;
    task.seg_start <- 0
  in
  (* SLO watchdog: armed by a positive tail threshold. Latency feeds as
     histogram interval diffs against the p99 budget; sheds+denials
     feed the error-rate objective. Samples flush on a virtual-clock
     tick of window/48 (four per short window). *)
  let slo_on = spec.tail_slo_ns > 0.0 in
  let slo_hist = Obs.Histogram.create () in
  let lat_slo =
    Obs.Slo.create
      {
        Obs.Slo.s_name = "latency-p99";
        s_scope = "sched";
        s_budget = 0.01;
        s_windows = Obs.Slo.default_windows ~window_ns:spec.slo_window_ns;
      }
  in
  let err_slo =
    Obs.Slo.create
      {
        Obs.Slo.s_name = "error-rate";
        s_scope = "sched";
        s_budget = 0.05;
        s_windows = Obs.Slo.default_windows ~window_ns:spec.slo_window_ns;
      }
  in
  let slo_tick_ns = spec.slo_window_ns /. 48.0 in
  let slo_last_tick = ref 0.0 in
  let slo_last_view = ref Obs.Histogram.empty_view in
  let slo_last_good = ref 0 in
  let slo_last_bad = ref 0 in
  let slo_flush t =
    let after = Obs.Histogram.view slo_hist in
    Obs.Slo.feed_view lat_slo ~now_ns:t ~threshold_ns:spec.tail_slo_ns
      ~before:!slo_last_view ~after;
    slo_last_view := after;
    let bad = !shed + !denied - !slo_last_bad in
    let good = !completed - !slo_last_good in
    Obs.Slo.feed err_slo ~now_ns:t ~good:(max 0 good) ~bad:(max 0 bad);
    slo_last_good := !completed;
    slo_last_bad := !shed + !denied
  in
  let slo_tick t =
    if slo_on && t -. !slo_last_tick >= slo_tick_ns then begin
      slo_last_tick := t;
      slo_flush t
    end
  in

  (* admission state *)
  let inflight = ref 0 in
  (* run queue: a pre-sized ring buffer of queue_depth slots (freed
     slots are reset to the dummy so waiting tasks are not pinned) *)
  let wq_cap = max 1 spec.queue_depth in
  let wq = Array.make wq_cap dummy_task in
  let wq_head = ref 0 in
  let wq_len = ref 0 in
  let wq_push task =
    wq.((!wq_head + !wq_len) mod wq_cap) <- task;
    incr wq_len
  in
  let wq_pop () =
    let task = wq.(!wq_head) in
    wq.(!wq_head) <- dummy_task;
    wq_head := (!wq_head + 1) mod wq_cap;
    decr wq_len;
    task
  in
  (* free-lane pool for open-loop tasks: a bitset over lane indices
     with a lowest-live-word hint. [take] returns the minimum free lane
     — identical to the old sorted list's head — in O(words scanned);
     [release] is O(1) (the old code re-sorted the whole list with
     polymorphic compare on every release: O(n log n) per event at
     10^5+ lanes). Closed-loop lanes are the session ids. *)
  let lane_words = (spec.max_inflight + 62) / 63 in
  let lane_bits = Array.make lane_words 0 in
  for l = 0 to spec.max_inflight - 1 do
    lane_bits.(l / 63) <- lane_bits.(l / 63) lor (1 lsl (l mod 63))
  done;
  let lane_hint = ref 0 (* no free lanes below this word *) in
  let take_lane task =
    if task.session >= 0 then task.session
    else begin
      let w = ref !lane_hint in
      while !w < lane_words && lane_bits.(!w) = 0 do
        incr w
      done;
      if !w >= lane_words then 0 (* unreachable: guarded by max_inflight *)
      else begin
        let bits = lane_bits.(!w) in
        let b = bits land -bits in
        lane_bits.(!w) <- bits lxor b;
        lane_hint := !w;
        let i = ref 0 in
        let b = ref b in
        while !b land 1 = 0 do
          b := !b lsr 1;
          incr i
        done;
        (!w * 63) + !i
      end
    end
  in
  let release_lane task =
    if task.session < 0 then begin
      let w = task.lane / 63 in
      lane_bits.(w) <- lane_bits.(w) lor (1 lsl (task.lane mod 63));
      if w < !lane_hint then lane_hint := w
    end
  in

  (* closed-loop continuation: sessions resubmit until the global query
     budget is spent *)
  let next_qid = ref 0 in
  let remaining = ref spec.queries in
  let new_task ~session ~tenant ~arrive_ns prof =
    let qid = !next_qid in
    incr next_qid;
    let task =
      {
        qid;
        session;
        tenant;
        prof;
        cursor = 0;
        lane = session;
        last_s = 0;
        (* exact mode records directly ([sampled]); bounded mode buffers
           undecided on the task until its verdict *)
        sampled = not bounded;
        step_act = Arrive dummy_task;
        ck = { c_arrive = arrive_ns; c_h = arrive_ns; c_start = arrive_ns };
        s = Array.make n_storage arrive_ns;
        segments_rev = [];
        lines_rev = [];
        seg_labels = [||];
        seg_times = [||];
        seg_start = 0;
        seg_len = 0;
      }
    in
    task.step_act <- Step task;
    task
  in
  let draw_profile () = Sim.Prng.rand_int prng n_profiles in
  let submit_session_query session t =
    let tenant = session mod n_tenants in
    let prof = draw_profile () in
    push t (Arrive (new_task ~session ~tenant ~arrive_ns:t prof))
  in
  let session_next session t =
    match spec.arrival with
    | Open_loop _ -> ()
    | Closed_loop { think_ns; _ } ->
        if !remaining > 0 then begin
          decr remaining;
          let think = Sim.Prng.exponential prng ~mean_ns:think_ns in
          submit_session_query session (t +. think)
        end
  in

  (* EPC pressure: concurrent residency beyond this query's own working
     set inflates its paging cost (alone, the factor is exactly 1). *)
  let epc_factor task =
    let others = !epc_resident - prof_ws.(task.prof) in
    if others <= 0 || epc_limit <= 0 then 1.0
    else 1.0 +. (float_of_int others /. float_of_int epc_limit)
  in
  let done_time task = Array.fold_left Float.max task.ck.c_h task.s in
  let ready_time task =
    let c = task.cursor in
    if c < 0 then task.ck.c_h (* pending control charge rides the host *)
    else begin
      let p = progs.(task.prof) in
      if c >= p.ct_len then done_time task
      else
        let k = p.ct_kind.(c) in
        if k = k_host then task.ck.c_h
        else if k = k_sync then Float.max task.ck.c_h task.s.(task.last_s)
        else task.s.(p.ct_idx.(c))
    end
  in

  let rec admit task t =
    let verdict =
      match gate with
      | None -> Ok ()
      | Some g -> g ~tenant:tenants.(task.tenant) ~sql:profs.(task.prof).qp_sql
    in
    match verdict with
    | Error e ->
        incr denied;
        (tstat task).t_denied <- (tstat task).t_denied + 1;
        Obs.Obs.count_via c_denied;
        note_done t;
        if Obs.Obs.enabled () then
          Obs.Obs.event ~ts_ns:t ~scope:"sched" ~kind:"sched.denied"
            [
              ("qid", Obs.Event_log.I task.qid);
              ("tenant", Obs.Event_log.S tenants.(task.tenant));
              ("reason", Obs.Event_log.S e);
            ];
        tlogf task "%.0f deny q%d tenant=%s (%s)" t task.qid
          tenants.(task.tenant) e;
        if task.sampled then finish_record task (Denied e) ~start_ns:t ~done_ns:t
        else if bounded then
          settle task (Denied e) ~start_ns:t ~done_ns:t ~anom:true;
        slo_tick t;
        session_next task.session t
    | Ok () ->
        incr inflight;
        task.lane <- take_lane task;
        task.ck.c_h <- t;
        Array.fill task.s 0 (Array.length task.s) t;
        task.cursor <- (if has_control then -1 else 0);
        task.ck.c_start <- t;
        epc_resident := !epc_resident + prof_ws.(task.prof);
        tlogf task "%.0f start q%d lane=%d inflight=%d" t task.qid task.lane
          !inflight;
        push (ready_time task) task.step_act

  and dispatch t =
    if !inflight < spec.max_inflight && !wq_len > 0 then begin
      let task = wq_pop () in
      admit task t;
      dispatch t
    end
  in

  let arrive task t =
    incr submitted;
    (tstat task).t_submitted <- (tstat task).t_submitted + 1;
    Obs.Obs.count_via c_submitted;
    tlogf task "%.0f submit q%d tenant=%s query=%s" t task.qid
      tenants.(task.tenant) prof_label.(task.prof);
    if !inflight < spec.max_inflight then admit task t
    else if !wq_len < spec.queue_depth then begin
      wq_push task;
      tlogf task "%.0f enqueue q%d depth=%d" t task.qid !wq_len
    end
    else begin
      (* backpressure: the run queue is full — refuse, loudly *)
      incr shed;
      (tstat task).t_shed <- (tstat task).t_shed + 1;
      Obs.Obs.count_via c_shed;
      note_done t;
      if Obs.Obs.enabled () then
        Obs.Obs.event ~ts_ns:t ~scope:"sched" ~kind:"sched.shed"
          [
            ("qid", Obs.Event_log.I task.qid);
            ("tenant", Obs.Event_log.S tenants.(task.tenant));
            ("queue_depth", Obs.Event_log.I spec.queue_depth);
          ];
      tlogf task "%.0f shed q%d queue_full depth=%d" t task.qid
        spec.queue_depth;
      if task.sampled then
        finish_record task
          (Shed (Queue_full { depth = spec.queue_depth }))
          ~start_ns:t ~done_ns:t
      else if bounded then
        settle task
          (Shed (Queue_full { depth = spec.queue_depth }))
          ~start_ns:t ~done_ns:t ~anom:true;
      slo_tick t;
      session_next task.session t
    end
  in

  let complete task =
    let done_t = done_time task in
    let latency = done_t -. task.ck.c_arrive in
    incr completed;
    (tstat task).t_completed <- (tstat task).t_completed + 1;
    Obs.Obs.count_via c_completed;
    (* same data, same bucket extraction: the registry's p99 for
       sched/latency_ns matches the report's percentile table *)
    Obs.Obs.observe_via s_latency latency;
    if bounded then Obs.Histogram.observe lat_hist latency
    else latencies_rev := latency :: !latencies_rev;
    if slo_on then Obs.Histogram.observe slo_hist latency;
    note_done done_t;
    let tail_anom = spec.tail_slo_ns > 0.0 && latency > spec.tail_slo_ns in
    if tail_anom then begin
      incr tail_breaches;
      if Obs.Obs.enabled () then
        Obs.Obs.event ~ts_ns:done_t ~scope:"sched" ~kind:"sched.tail_breach"
          [
            ("qid", Obs.Event_log.I task.qid);
            ("latency_ns", Obs.Event_log.F latency);
            ("threshold_ns", Obs.Event_log.F spec.tail_slo_ns);
          ]
    end;
    tlogf task "%.0f done q%d latency=%.0f" done_t task.qid latency;
    if task.sampled then
      finish_record task
        (Completed { latency_ns = latency })
        ~start_ns:task.ck.c_start ~done_ns:done_t
    else if bounded then
      settle task
        (Completed { latency_ns = latency })
        ~start_ns:task.ck.c_start ~done_ns:done_t ~anom:tail_anom;
    slo_tick done_t;
    decr inflight;
    release_lane task;
    epc_resident := !epc_resident - prof_ws.(task.prof);
    dispatch done_t;
    session_next task.session done_t
  in

  (* one compiled-tape charge: route to the server, advance the task's
     clock, record the segment. Exact mode appends to the task's list;
     bounded mode pushes into the per-lane ring (keeping the most
     recent [lane_frames] undecided, flight-recorder-style). Zero-ns
     charges are skipped entirely (as before — no clock movement, no
     segment). *)
  let seg_push task label start fin =
    if task.sampled then
      task.segments_rev <- (label, start, fin) :: task.segments_rev
    else if bounded then begin
      if seg_cap = max_int then
        task.segments_rev <- (label, start, fin) :: task.segments_rev
      else begin
        let cur = Array.length task.seg_labels in
        (* grow geometrically toward [seg_cap]; the ring stays linear
           (start = 0) until it reaches full capacity, so growth is a
           plain blit *)
        if task.seg_len = cur && cur < seg_cap then begin
          let cap' = min seg_cap (max 4 (2 * cur)) in
          let labels' = Array.make cap' "" in
          let times' = Array.make (2 * cap') 0.0 in
          Array.blit task.seg_labels 0 labels' 0 cur;
          Array.blit task.seg_times 0 times' 0 (2 * cur);
          task.seg_labels <- labels';
          task.seg_times <- times'
        end;
        let cap = Array.length task.seg_labels in
        if task.seg_len < cap then begin
          let j = (task.seg_start + task.seg_len) mod cap in
          task.seg_labels.(j) <- label;
          task.seg_times.(2 * j) <- start;
          task.seg_times.((2 * j) + 1) <- fin;
          task.seg_len <- task.seg_len + 1
        end
        else begin
          task.seg_labels.(task.seg_start) <- label;
          task.seg_times.(2 * task.seg_start) <- start;
          task.seg_times.((2 * task.seg_start) + 1) <- fin;
          task.seg_start <- (task.seg_start + 1) mod seg_cap
        end
      end
    end
  in
  let exec_charge task ~kind ~idx ~epc ~ns ~label =
    if ns > 0.0 then begin
      let dur = if epc then ns *. epc_factor task else ns in
      if kind = k_host then begin
        let start = Server.request host_srv ~at:task.ck.c_h ~duration_ns:dur in
        let fin = start +. dur in
        task.ck.c_h <- fin;
        seg_push task label start fin
      end
      else begin
        let srv =
          if kind = k_device then srv_device.(idx) else srv_cores.(idx)
        in
        let start = Server.request srv ~at:task.s.(idx) ~duration_ns:dur in
        let fin = start +. dur in
        task.s.(idx) <- fin;
        task.last_s <- idx;
        seg_push task label start fin
      end
    end
  in
  let step task =
    let c = task.cursor in
    if c < 0 then begin
      (* per-query control-path charge (policy check) on the host *)
      task.cursor <- 0;
      exec_charge task ~kind:k_host ~idx:0 ~epc:false ~ns:spec.control_ns
        ~label:control_label;
      push (ready_time task) task.step_act
    end
    else
      let p = progs.(task.prof) in
      if c >= p.ct_len then complete task
      else begin
        task.cursor <- c + 1;
        let kind = p.ct_kind.(c) in
        if kind = k_sync then begin
          (* the tape's sync carries no node name: a sync always
             follows charges to the node it pairs with, so it rides
             that node's channel *)
          let idx = task.last_s in
          let transfer_ns = p.ct_ns.(c) in
          let at = Float.max task.ck.c_h task.s.(idx) in
          let fin =
            if transfer_ns > 0.0 then begin
              let start =
                Server.request srv_channel.(idx) ~at ~duration_ns:transfer_ns
              in
              seg_push task sync_label.(idx) start (start +. transfer_ns);
              start +. transfer_ns
            end
            else at
          in
          task.ck.c_h <- fin;
          task.s.(idx) <- fin
        end
        else
          exec_charge task ~kind ~idx:p.ct_idx.(c) ~epc:p.ct_epc.(c)
            ~ns:p.ct_ns.(c) ~label:p.ct_label.(c);
        push (ready_time task) task.step_act
      end
  in

  (* seed the arrival process *)
  (match spec.arrival with
  | Open_loop { qps } ->
      let mean_gap = 1e9 /. qps in
      let t = ref 0.0 in
      for _ = 1 to spec.queries do
        t := !t +. Sim.Prng.exponential prng ~mean_ns:mean_gap;
        let tenant = Sim.Prng.rand_int prng n_tenants in
        let prof = draw_profile () in
        push !t (Arrive (new_task ~session:(-1) ~tenant ~arrive_ns:!t prof))
      done;
      remaining := 0
  | Closed_loop { sessions; _ } ->
      for s = 0 to sessions - 1 do
        if !remaining > 0 then begin
          decr remaining;
          submit_session_query s 0.0
        end
      done);

  (* main loop *)
  while not (Event_queue.is_empty queue) do
    let t = Event_queue.min_time queue in
    let action = Event_queue.pop queue in
    incr n_events;
    match action with Arrive task -> arrive task t | Step task -> step task
  done;

  let makespan_ns = !makespan in
  if slo_on then begin
    (* close the last partial tick so the summaries cover the run *)
    slo_flush makespan_ns;
    if Obs.Obs.enabled () then
      Obs.Obs.event ~ts_ns:makespan_ns ~scope:"sched" ~kind:"slo.summary"
        (List.concat_map
           (fun slo ->
             let s = Obs.Slo.summary slo in
             [
               ( s.Obs.Slo.sum_name ^ ".breaches",
                 Obs.Event_log.I s.Obs.Slo.sum_breaches );
               ( s.Obs.Slo.sum_name ^ ".worst_burn",
                 Obs.Event_log.F s.Obs.Slo.sum_worst_burn );
             ])
           [ lat_slo; err_slo ])
  end;
  (* bounded mode: reassemble retained forensics — anomalous lanes plus
     reservoir exemplars, records back in qid order and log lines merged
     by their global sequence (a chronological subsequence of the exact
     log) *)
  let retained =
    if not bounded then []
    else
      List.rev !kept_rev
      @ (Array.to_list reservoir |> List.filter_map Fun.id)
  in
  let rep_records =
    if bounded then
      List.sort
        (fun (a : record) b -> Int.compare a.r_qid b.r_qid)
        (List.map fst retained)
    else List.sort (fun a b -> Int.compare a.r_qid b.r_qid) !records_rev
  in
  let rep_event_log =
    if bounded then
      List.concat_map snd retained
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
      |> List.map snd
    else List.rev !log_rev
  in
  let latency =
    if bounded then
      let v = Obs.Histogram.view lat_hist in
      if v.Obs.Histogram.v_count = 0 then
        { mean_ns = 0.0; p50_ns = 0.0; p95_ns = 0.0; p99_ns = 0.0; max_ns = 0.0 }
      else
        {
          mean_ns =
            v.Obs.Histogram.v_sum /. float_of_int v.Obs.Histogram.v_count;
          p50_ns = Obs.Histogram.percentile_of_view v 0.50;
          p95_ns = Obs.Histogram.percentile_of_view v 0.95;
          p99_ns = Obs.Histogram.percentile_of_view v 0.99;
          max_ns = v.Obs.Histogram.v_max;
        }
    else latency_stats_of !latencies_rev
  in
  {
    rep_config = config;
    rep_spec = spec;
    rep_submitted = !submitted;
    rep_completed = !completed;
    rep_shed = !shed;
    rep_denied = !denied;
    rep_makespan_ns = makespan_ns;
    rep_throughput_qps =
      (if makespan_ns > 0.0 then float_of_int !completed /. (makespan_ns /. 1e9)
       else 0.0);
    rep_latency = latency;
    rep_per_tenant =
      List.map (fun t -> (t, Hashtbl.find tenant_stats t)) spec.tenants;
    rep_records;
    rep_event_log;
    rep_util =
      List.map
        (fun srv -> (Server.name srv, Server.utilization srv ~makespan_ns))
        ((host_srv
         :: List.concat_map
              (fun i -> [ srv_cores.(i); srv_device.(i) ])
              (List.init n_storage Fun.id))
        @ Array.to_list srv_channel);
    rep_events = !n_events;
    rep_wall_ns = (Unix.gettimeofday () -. wall0) *. 1e9;
    rep_peak_words = (Gc.quick_stat ()).Gc.top_heap_words;
    rep_anomalous = !anomalous;
    rep_tail_breaches = !tail_breaches;
    rep_slo =
      (if slo_on then [ Obs.Slo.summary lat_slo; Obs.Slo.summary err_slo ]
       else []);
  }

(* -- tenant gate through the trusted monitor --------------------------- *)

(* Each query is authorized under its tenant's principal: the monitor
   checks the access policy, logs obligations/denials in the audit log
   and issues (then releases) a session key — the control-path work the
   [control_ns] charge accounts for on the virtual clocks. *)
let monitor_gate ?(database = "ironsafe") deploy =
  let monitor = deploy.Deployment.monitor in
  let catalog = Sql.Database.catalog deploy.Deployment.secure_db in
  fun ~tenant ~sql ->
    match
      Ironsafe_monitor.Trusted_monitor.authorize monitor ~catalog
        ~client_label:tenant ~database ~exec_policy:[] ~sql
    with
    | Error e -> Error e
    | Ok auth ->
        Ironsafe_monitor.Trusted_monitor.session_cleanup monitor
          auth.Ironsafe_monitor.Trusted_monitor.auth_session_key;
        Ok ()

(* -- rendering --------------------------------------------------------- *)

let ms ns = ns /. 1e6

let percentile_table r =
  Printf.sprintf
    "%s %s completed=%d shed=%d denied=%d qps=%.3f p50=%.3fms p95=%.3fms p99=%.3fms mean=%.3fms max=%.3fms"
    (Config.abbrev r.rep_config)
    (arrival_name r.rep_spec.arrival)
    r.rep_completed r.rep_shed r.rep_denied r.rep_throughput_qps
    (ms r.rep_latency.p50_ns) (ms r.rep_latency.p95_ns)
    (ms r.rep_latency.p99_ns) (ms r.rep_latency.mean_ns)
    (ms r.rep_latency.max_ns)

let pp_report ppf r =
  Fmt.pf ppf "workload %s under %s:@." (arrival_name r.rep_spec.arrival)
    (Config.abbrev r.rep_config);
  Fmt.pf ppf "  submitted %d, completed %d, shed %d, denied %d@."
    r.rep_submitted r.rep_completed r.rep_shed r.rep_denied;
  Fmt.pf ppf "  makespan %.3f ms, throughput %.2f q/s@." (ms r.rep_makespan_ns)
    r.rep_throughput_qps;
  Fmt.pf ppf "  latency p50 %.3f / p95 %.3f / p99 %.3f / max %.3f ms@."
    (ms r.rep_latency.p50_ns) (ms r.rep_latency.p95_ns)
    (ms r.rep_latency.p99_ns) (ms r.rep_latency.max_ns);
  List.iter
    (fun (tenant, (st : tenant_stats)) ->
      Fmt.pf ppf "  tenant %-12s submitted=%d completed=%d shed=%d denied=%d@."
        tenant st.t_submitted st.t_completed st.t_shed st.t_denied)
    r.rep_per_tenant;
  List.iter
    (fun (name, u) -> Fmt.pf ppf "  util %-16s %5.1f%%@." name (100.0 *. u))
    r.rep_util;
  if r.rep_spec.tail_slo_ns > 0.0 then begin
    Fmt.pf ppf "  tail threshold %.3f ms: %d breaches, %d anomalous retained@."
      (ms r.rep_spec.tail_slo_ns) r.rep_tail_breaches r.rep_anomalous;
    List.iter
      (fun s -> Fmt.pf ppf "  slo %s@." (Obs.Slo.summary_line s))
      r.rep_slo
  end

let json_of_report r =
  let b = Buffer.create 512 in
  let addf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  addf "{\"config\":%S," (Config.abbrev r.rep_config);
  (match r.rep_spec.arrival with
  | Open_loop { qps } -> addf "\"mode\":\"open\",\"qps\":%.3f," qps
  | Closed_loop { sessions; think_ns } ->
      addf "\"mode\":\"closed\",\"sessions\":%d,\"think_ms\":%.3f," sessions
        (ms think_ns));
  addf "\"seed\":%d,\"tenants\":%d," r.rep_spec.seed
    (List.length r.rep_spec.tenants);
  addf "\"submitted\":%d,\"completed\":%d,\"shed\":%d,\"denied\":%d,"
    r.rep_submitted r.rep_completed r.rep_shed r.rep_denied;
  addf "\"makespan_ms\":%.6f,\"throughput_qps\":%.6f," (ms r.rep_makespan_ns)
    r.rep_throughput_qps;
  addf
    "\"latency_ms\":{\"mean\":%.6f,\"p50\":%.6f,\"p95\":%.6f,\"p99\":%.6f,\"max\":%.6f},"
    (ms r.rep_latency.mean_ns) (ms r.rep_latency.p50_ns)
    (ms r.rep_latency.p95_ns) (ms r.rep_latency.p99_ns)
    (ms r.rep_latency.max_ns);
  addf "\"per_tenant\":[";
  List.iteri
    (fun i (tenant, (st : tenant_stats)) ->
      if i > 0 then addf ",";
      addf "{\"tenant\":%S,\"submitted\":%d,\"completed\":%d,\"shed\":%d,\"denied\":%d}"
        tenant st.t_submitted st.t_completed st.t_shed st.t_denied)
    r.rep_per_tenant;
  addf "],\"utilization\":{";
  List.iteri
    (fun i (name, u) ->
      if i > 0 then addf ",";
      addf "%S:%.6f" name u)
    r.rep_util;
  addf "}";
  (* SLO block only when the watchdog was armed, so default runs keep
     byte-identical JSON *)
  if r.rep_spec.tail_slo_ns > 0.0 then begin
    addf ",\"tail_breaches\":%d,\"anomalous\":%d," r.rep_tail_breaches
      r.rep_anomalous;
    addf "\"slo\":[";
    List.iteri
      (fun i s ->
        if i > 0 then addf ",";
        addf "%s" (Obs.Slo.summary_json s))
      r.rep_slo;
    addf "]"
  end;
  addf "}";
  Buffer.contents b

(* -- Chrome trace lanes ------------------------------------------------ *)

(* One lane (pid/tid) per concurrent session: closed-loop sessions map
   to their session id, open-loop queries to the admission lane they
   occupied. Queue wait renders as an explicit child segment. *)
let to_spans ?(offset_ns = 0.0) r =
  let mk ~name ~scope ~kind ~attrs b e =
    let s = Obs.Span.make ~name ~scope ~kind ~attrs (offset_ns +. b) in
    s.Obs.Span.end_ns <- offset_ns +. e;
    s
  in
  List.map
    (fun rc ->
      match rc.r_outcome with
      | Completed { latency_ns } ->
          (* the root span occupies the lane [start, done] — a lane runs
             one query at a time, so roots on a track never overlap;
             queue wait is carried as an attribute (the lane was not
             ours yet). Each resource's segments go on a per-resource
             sub-track of the lane: host and storage clocks advance
             concurrently within one query, and B/E events on a single
             Chrome track must nest. *)
          let scope = Printf.sprintf "session-%d" rc.r_lane in
          let queued_ns = rc.r_start_ns -. rc.r_arrive_ns in
          let root =
            mk
              ~name:(Printf.sprintf "%s#%d" rc.r_label rc.r_qid)
              ~scope ~kind:Obs.Span.Complete
              ~attrs:
                ([
                   ("tenant", rc.r_tenant);
                   ("config", Config.abbrev r.rep_config);
                   ("latency_ms", Printf.sprintf "%.3f" (ms latency_ns));
                 ]
                @
                if queued_ns > 0.0 then
                  [ ("queued_ms", Printf.sprintf "%.3f" (ms queued_ns)) ]
                else [])
              rc.r_start_ns rc.r_done_ns
          in
          let track name =
            let res =
              match String.index_opt name '.' with
              | Some i -> String.sub name 0 i
              | None -> name
            in
            scope ^ "." ^ res
          in
          let children =
            List.map
              (fun (name, b, e) ->
                mk ~name ~scope:(track name) ~kind:Obs.Span.Complete ~attrs:[]
                  b e)
              rc.r_segments
          in
          root.Obs.Span.children_rev <- List.rev children;
          root
      | Shed _ ->
          mk
            ~name:(Printf.sprintf "shed#%d" rc.r_qid)
            ~scope:"sched" ~kind:Obs.Span.Instant
            ~attrs:[ ("tenant", rc.r_tenant); ("reason", "queue_full") ]
            rc.r_arrive_ns rc.r_arrive_ns
      | Denied reason ->
          mk
            ~name:(Printf.sprintf "denied#%d" rc.r_qid)
            ~scope:"sched" ~kind:Obs.Span.Instant
            ~attrs:[ ("tenant", rc.r_tenant); ("reason", reason) ]
            rc.r_arrive_ns rc.r_arrive_ns)
    r.rep_records

let trace_json r = Obs.Chrome_trace.to_json (to_spans r)

(* Splice the lanes into the global observability collector (no-op with
   tracing off), shifted past everything already recorded so the bench
   --trace-out file keeps a monotonic timeline. *)
let add_to_collector r =
  if Obs.Obs.enabled () then begin
    Obs.Obs.new_epoch ();
    let off = Obs.Span.current_epoch () in
    List.iter Obs.Span.add_root (to_spans ~offset_ns:off r)
  end
