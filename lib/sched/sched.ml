(* Multi-tenant workload scheduler: discrete-event concurrent query
   execution over one deployment.

   The sequential runner executes one query at a time and charges its
   costs as an atomic sequence of clock operations. This module turns
   those sequences into *interleavable* traffic:

   1. each query of the mix is profiled once through the real runner
      under {!Ironsafe_sim.Tape.capture}, yielding its cost tape (the
      exact per-node charges and blocking syncs the runner performed);
   2. a client generator (open-loop Poisson arrivals at a target QPS,
      or N closed-loop sessions with think time) submits queries drawn
      from the mix, each owned by a tenant whose policy principal is
      checked through the trusted monitor at admission;
   3. admitted queries replay their tapes event by event through a
      central virtual-time event queue; every charge contends for a
      FIFO multi-slot server (host cores, storage ARM cores, NVMe
      queue depth, host<->storage channel streams), and EPC-bound
      charges are inflated by the working sets of concurrently
      resident queries;
   4. arrivals beyond the admission bound wait in a FIFO run queue of
      configured depth; beyond that they are refused with a typed
      [Shed] outcome (never dropped silently) and counted in the
      metrics registry.

   Determinism: all randomness (arrival gaps, think times, mix and
   tenant draws) comes from one {!Ironsafe_sim.Prng} stream seeded
   from the spec, event ties break by submission order, and server
   slots tie-break by index — the same seed and spec reproduce a
   byte-identical event log and percentile table.

   With one closed-loop session the replay degenerates to the
   sequential model: every server has a free slot, the EPC holds one
   working set, and the tape arithmetic is exactly {!Node.charge} /
   {!Clock.sync} — latency reproduces {!Runner.run_stmt} end-to-end
   within float tolerance (bit-exact for the first query). *)

open Ironsafe
module Sim = Ironsafe_sim
module Sql = Ironsafe_sql
module Tee = Ironsafe_tee
module Obs = Ironsafe_obs

(* -- query profiles ---------------------------------------------------- *)

type query_profile = {
  qp_label : string;
  qp_sql : string;
  qp_config : Config.t;
  qp_tape : Sim.Tape.event list;
  qp_end_to_end_ns : float;
  qp_working_set : int;
}

let profile_run ?(working_set = fun () -> 0) ~label ~sql config run =
  let m, tape = Sim.Tape.capture run in
  {
    qp_label = label;
    qp_sql = sql;
    qp_config = config;
    qp_tape = tape;
    qp_end_to_end_ns = m.Runner.end_to_end_ns;
    (* sampled after the run: enclave residency the query leaves behind *)
    qp_working_set = working_set ();
  }

let profile ?project deploy config ~label ~sql =
  let stmt = Sql.Parser.parse sql in
  profile_run
    (* enclave residency of this query (0 when the host enclave is off
       the query path): the EPC is shared under concurrency *)
    ~working_set:(fun () -> Tee.Sgx.heap_used deploy.Deployment.host_enclave)
    ~label ~sql config
    (fun () -> Runner.run_stmt ?project deploy config stmt)

let mean_sequential_ns profiles =
  match profiles with
  | [] -> 0.0
  | l ->
      List.fold_left (fun acc p -> acc +. p.qp_end_to_end_ns) 0.0 l
      /. float_of_int (List.length l)

(* -- workload specification -------------------------------------------- *)

type arrival =
  | Open_loop of { qps : float }
  | Closed_loop of { sessions : int; think_ns : float }

type spec = {
  seed : int;
  arrival : arrival;
  queries : int;  (** total queries submitted across the run *)
  tenants : string list;
  max_inflight : int;  (** admission bound: concurrently executing *)
  queue_depth : int;  (** run-queue bound; beyond it arrivals shed *)
  device_queue_depth : int;  (** NVMe queue-depth slots *)
  channel_streams : int;  (** concurrent host<->storage transfers *)
  control_ns : float;  (** per-query control-path charge (host) *)
}

let default_spec =
  {
    seed = 42;
    arrival = Open_loop { qps = 100.0 };
    queries = 32;
    tenants = [ "tenant-0" ];
    max_inflight = 8;
    queue_depth = 16;
    device_queue_depth = 8;
    channel_streams = 2;
    control_ns = 0.0;
  }

let arrival_name = function
  | Open_loop { qps } -> Printf.sprintf "open(qps=%.2f)" qps
  | Closed_loop { sessions; think_ns } ->
      Printf.sprintf "closed(sessions=%d,think=%.0fns)" sessions think_ns

(* -- outcomes and records ---------------------------------------------- *)

type shed_reason = Queue_full of { depth : int }

type outcome =
  | Completed of { latency_ns : float }
  | Shed of shed_reason
  | Denied of string

let outcome_name = function
  | Completed _ -> "completed"
  | Shed _ -> "shed"
  | Denied _ -> "denied"

type record = {
  r_qid : int;
  r_label : string;
  r_tenant : string;
  r_lane : int;
  r_arrive_ns : float;
  r_start_ns : float;
  r_done_ns : float;
  r_outcome : outcome;
  r_segments : (string * float * float) list;
}

type latency_stats = {
  mean_ns : float;
  p50_ns : float;
  p95_ns : float;
  p99_ns : float;
  max_ns : float;
}

type tenant_stats = {
  mutable t_submitted : int;
  mutable t_completed : int;
  mutable t_shed : int;
  mutable t_denied : int;
}

type report = {
  rep_config : Config.t;
  rep_spec : spec;
  rep_submitted : int;
  rep_completed : int;
  rep_shed : int;
  rep_denied : int;
  rep_makespan_ns : float;
  rep_throughput_qps : float;
  rep_latency : latency_stats;
  rep_per_tenant : (string * tenant_stats) list;
  rep_records : record list;  (** qid order *)
  rep_event_log : string list;  (** chronological *)
  rep_util : (string * float) list;  (** server -> utilization in [0,1] *)
}

(* Latency digest from the fixed log-bucketed histogram
   ({!Obs.Histogram}): mean and max are exact (count/sum/max are
   tracked alongside the buckets), percentiles are bucket-resolution
   nearest-rank — the same extraction the metrics registry uses for
   its sched/latency_ns histogram, so the report's p99 and the
   registry's agree exactly on the same completions. *)
let latency_stats_of latencies =
  match latencies with
  | [] -> { mean_ns = 0.0; p50_ns = 0.0; p95_ns = 0.0; p99_ns = 0.0; max_ns = 0.0 }
  | l ->
      let h = Obs.Histogram.create () in
      List.iter (Obs.Histogram.observe h) l;
      let v = Obs.Histogram.view h in
      {
        mean_ns =
          v.Obs.Histogram.v_sum /. float_of_int v.Obs.Histogram.v_count;
        p50_ns = Obs.Histogram.percentile_of_view v 0.50;
        p95_ns = Obs.Histogram.percentile_of_view v 0.95;
        p99_ns = Obs.Histogram.percentile_of_view v 0.99;
        max_ns = v.Obs.Histogram.v_max;
      }

(* -- deterministic event queue ----------------------------------------- *)

module Key = struct
  type t = float * int

  let compare (t1, s1) (t2, s2) =
    match Float.compare t1 t2 with 0 -> Int.compare s1 s2 | c -> c
end

module Emap = Map.Make (Key)

(* -- the simulation ---------------------------------------------------- *)

type task = {
  qid : int;
  session : int;  (** closed-loop session id; -1 for open loop *)
  tenant : string;
  tk_profile : query_profile;
  arrive_ns : float;
  mutable events : Sim.Tape.event list;
  mutable h : float;  (** task-local host clock (absolute) *)
  s : float array;  (** task-local storage clocks, one per storage node *)
  mutable last_s : int;  (** index of the last-charged storage node *)
  mutable lane : int;
  mutable start_ns : float;
  mutable segments_rev : (string * float * float) list;
}

type action = Arrive of task | Step of task

let validate spec profiles =
  if spec.queries < 1 then invalid_arg "Sched.run: queries must be >= 1";
  if spec.tenants = [] then invalid_arg "Sched.run: no tenants";
  if spec.max_inflight < 1 then invalid_arg "Sched.run: max_inflight must be >= 1";
  if spec.queue_depth < 0 then invalid_arg "Sched.run: negative queue_depth";
  if spec.device_queue_depth < 1 then
    invalid_arg "Sched.run: device_queue_depth must be >= 1";
  if spec.channel_streams < 1 then
    invalid_arg "Sched.run: channel_streams must be >= 1";
  if spec.control_ns < 0.0 then invalid_arg "Sched.run: negative control_ns";
  (match spec.arrival with
  | Open_loop { qps } ->
      if qps <= 0.0 then invalid_arg "Sched.run: qps must be positive"
  | Closed_loop { sessions; think_ns } ->
      if sessions < 1 then invalid_arg "Sched.run: sessions must be >= 1";
      if think_ns < 0.0 then invalid_arg "Sched.run: negative think time");
  match profiles with
  | [] -> invalid_arg "Sched.run: empty query mix"
  | p :: rest ->
      if List.exists (fun q -> q.qp_config <> p.qp_config) rest then
        invalid_arg "Sched.run: mixed configurations in one workload";
      p.qp_config

let run ?gate ?storage_nodes deploy spec profiles =
  let config = validate spec profiles in
  let params = deploy.Deployment.params in
  let host_name = Sim.Node.name deploy.Deployment.host in
  let host_srv =
    Server.create ~name:"host.cores"
      ~slots:(Sim.Cpu.cores (Sim.Node.cpu deploy.Deployment.host))
  in
  (* One (cores, device, channel) server triple per storage node: a
     sharded cluster contends each shard's ARM cores, NVMe queue depth
     and host<->shard channel streams independently, sharing only the
     host. With the default single storage node the servers keep their
     legacy names, so existing runs are byte-identical. *)
  let storage_nodes =
    match storage_nodes with
    | None | Some [] -> [| deploy.Deployment.storage |]
    | Some l -> Array.of_list l
  in
  let n_storage = Array.length storage_nodes in
  let storage_index : (string, int) Hashtbl.t = Hashtbl.create 8 in
  Array.iteri
    (fun i n -> Hashtbl.replace storage_index (Sim.Node.name n) i)
    storage_nodes;
  if Hashtbl.length storage_index <> n_storage then
    invalid_arg "Sched.run: duplicate storage node names";
  if Hashtbl.mem storage_index host_name then
    invalid_arg "Sched.run: host listed among storage nodes";
  let storage_srvs =
    Array.map
      (fun node ->
        let prefix =
          if n_storage = 1 then "storage" else Sim.Node.name node
        in
        ( Server.create ~name:(prefix ^ ".cores")
            ~slots:(Sim.Cpu.cores (Sim.Node.cpu node)),
          Server.create ~name:(prefix ^ ".device")
            ~slots:spec.device_queue_depth,
          Server.create
            ~name:(if n_storage = 1 then "channel" else prefix ^ ".channel")
            ~slots:spec.channel_streams ))
      storage_nodes
  in
  (* tapes recorded against a node outside the set (never the case for
     runner/cluster tapes) fall back to the first storage node, which is
     exactly the legacy routing when there is one *)
  let storage_idx node =
    match Hashtbl.find_opt storage_index node with Some i -> i | None -> 0
  in
  let epc_limit = params.Sim.Params.epc_limit_bytes in
  (* EPC occupancy starts at the decrypted-page pool's footprint when
     the pool lives inside the host enclave (hos); it is pinned cache
     capacity every admitted query contends with. Zero without a pool,
     so pool-less schedules are unchanged. *)
  let epc_resident =
    ref (if config = Config.Hos then Deployment.pool_bytes deploy else 0)
  in
  let prng = Sim.Prng.create ~seed:spec.seed in
  let n_tenants = List.length spec.tenants in
  let n_profiles = List.length profiles in

  (* event queue *)
  let queue = ref Emap.empty in
  let seq = ref 0 in
  let push t action =
    queue := Emap.add (t, !seq) action !queue;
    incr seq
  in

  (* bookkeeping *)
  let log_rev = ref [] in
  let logf fmt = Printf.ksprintf (fun s -> log_rev := s :: !log_rev) fmt in
  let submitted = ref 0
  and completed = ref 0
  and shed = ref 0
  and denied = ref 0 in
  let latencies_rev = ref [] in
  let records_rev = ref [] in
  let makespan = ref 0.0 in
  let tenant_stats : (string, tenant_stats) Hashtbl.t =
    Hashtbl.create (max 4 n_tenants)
  in
  List.iter
    (fun t ->
      Hashtbl.replace tenant_stats t
        { t_submitted = 0; t_completed = 0; t_shed = 0; t_denied = 0 })
    spec.tenants;
  let tstat tenant = Hashtbl.find tenant_stats tenant in
  let finish_record task outcome ~start_ns ~done_ns =
    task.start_ns <- start_ns;
    if done_ns > !makespan then makespan := done_ns;
    records_rev :=
      {
        r_qid = task.qid;
        r_label = task.tk_profile.qp_label;
        r_tenant = task.tenant;
        r_lane = task.lane;
        r_arrive_ns = task.arrive_ns;
        r_start_ns = start_ns;
        r_done_ns = done_ns;
        r_outcome = outcome;
        r_segments = List.rev task.segments_rev;
      }
      :: !records_rev
  in

  (* admission state *)
  let inflight = ref 0 in
  let waitq : task Queue.t = Queue.create () in
  let free_lanes = ref (List.init spec.max_inflight Fun.id) in
  let take_lane task =
    if task.session >= 0 then task.session
    else
      match !free_lanes with
      | l :: rest ->
          free_lanes := rest;
          l
      | [] -> 0 (* unreachable: guarded by max_inflight *)
  in
  let release_lane task =
    if task.session < 0 then
      free_lanes := List.sort compare (task.lane :: !free_lanes)
  in

  (* closed-loop continuation: sessions resubmit until the global query
     budget is spent *)
  let next_qid = ref 0 in
  let remaining = ref spec.queries in
  let new_task ~session ~tenant ~arrive_ns prof =
    let qid = !next_qid in
    incr next_qid;
    {
      qid;
      session;
      tenant;
      tk_profile = prof;
      arrive_ns;
      events = [];
      h = arrive_ns;
      s = Array.make n_storage arrive_ns;
      last_s = 0;
      lane = session;
      start_ns = arrive_ns;
      segments_rev = [];
    }
  in
  let draw_profile () = List.nth profiles (Sim.Prng.rand_int prng n_profiles) in
  let submit_session_query session t =
    let tenant = List.nth spec.tenants (session mod n_tenants) in
    let prof = draw_profile () in
    push t (Arrive (new_task ~session ~tenant ~arrive_ns:t prof))
  in
  let session_next session t =
    match spec.arrival with
    | Open_loop _ -> ()
    | Closed_loop { think_ns; _ } ->
        if !remaining > 0 then begin
          decr remaining;
          let think = Sim.Prng.exponential prng ~mean_ns:think_ns in
          submit_session_query session (t +. think)
        end
  in

  (* EPC pressure: concurrent residency beyond this query's own working
     set inflates its paging cost (alone, the factor is exactly 1). *)
  let epc_factor task =
    let others = !epc_resident - task.tk_profile.qp_working_set in
    if others <= 0 || epc_limit <= 0 then 1.0
    else 1.0 +. (float_of_int others /. float_of_int epc_limit)
  in
  let done_time task = Array.fold_left Float.max task.h task.s in
  let ready_time task =
    match task.events with
    | [] -> done_time task
    | Sim.Tape.Sync _ :: _ -> Float.max task.h task.s.(task.last_s)
    | Sim.Tape.Charge { node; _ } :: _ ->
        if node = host_name then task.h else task.s.(storage_idx node)
  in

  let rec admit task t =
    let verdict =
      match gate with
      | None -> Ok ()
      | Some g -> g ~tenant:task.tenant ~sql:task.tk_profile.qp_sql
    in
    match verdict with
    | Error e ->
        incr denied;
        (tstat task.tenant).t_denied <- (tstat task.tenant).t_denied + 1;
        Obs.Obs.count ~scope:"sched" "denied";
        if Obs.Obs.enabled () then
          Obs.Obs.event ~ts_ns:t ~scope:"sched" ~kind:"sched.denied"
            [
              ("qid", Obs.Event_log.I task.qid);
              ("tenant", Obs.Event_log.S task.tenant);
              ("reason", Obs.Event_log.S e);
            ];
        logf "%.0f deny q%d tenant=%s (%s)" t task.qid task.tenant e;
        finish_record task (Denied e) ~start_ns:t ~done_ns:t;
        session_next task.session t
    | Ok () ->
        incr inflight;
        task.lane <- take_lane task;
        task.h <- t;
        Array.fill task.s 0 (Array.length task.s) t;
        task.events <-
          (if spec.control_ns > 0.0 then
             Sim.Tape.Charge
               { node = host_name; category = "policy"; ns = spec.control_ns }
             :: task.tk_profile.qp_tape
           else task.tk_profile.qp_tape);
        task.start_ns <- t;
        epc_resident := !epc_resident + task.tk_profile.qp_working_set;
        logf "%.0f start q%d lane=%d inflight=%d" t task.qid task.lane !inflight;
        push (ready_time task) (Step task)

  and dispatch t =
    if !inflight < spec.max_inflight && not (Queue.is_empty waitq) then begin
      let task = Queue.pop waitq in
      admit task t;
      dispatch t
    end
  in

  let arrive task t =
    incr submitted;
    (tstat task.tenant).t_submitted <- (tstat task.tenant).t_submitted + 1;
    Obs.Obs.count ~scope:"sched" "submitted";
    logf "%.0f submit q%d tenant=%s query=%s" t task.qid task.tenant
      task.tk_profile.qp_label;
    if !inflight < spec.max_inflight then admit task t
    else if Queue.length waitq < spec.queue_depth then begin
      Queue.push task waitq;
      logf "%.0f enqueue q%d depth=%d" t task.qid (Queue.length waitq)
    end
    else begin
      (* backpressure: the run queue is full — refuse, loudly *)
      incr shed;
      (tstat task.tenant).t_shed <- (tstat task.tenant).t_shed + 1;
      Obs.Obs.count ~scope:"sched" "shed";
      if Obs.Obs.enabled () then
        Obs.Obs.event ~ts_ns:t ~scope:"sched" ~kind:"sched.shed"
          [
            ("qid", Obs.Event_log.I task.qid);
            ("tenant", Obs.Event_log.S task.tenant);
            ("queue_depth", Obs.Event_log.I spec.queue_depth);
          ];
      logf "%.0f shed q%d queue_full depth=%d" t task.qid spec.queue_depth;
      finish_record task
        (Shed (Queue_full { depth = spec.queue_depth }))
        ~start_ns:t ~done_ns:t;
      session_next task.session t
    end
  in

  let complete task =
    let done_t = done_time task in
    let latency = done_t -. task.arrive_ns in
    incr completed;
    (tstat task.tenant).t_completed <- (tstat task.tenant).t_completed + 1;
    Obs.Obs.count ~scope:"sched" "completed";
    (* same data, same bucket extraction: the registry's p99 for
       sched/latency_ns matches the report's percentile table *)
    Obs.Obs.observe ~scope:"sched" "latency_ns" latency;
    latencies_rev := latency :: !latencies_rev;
    logf "%.0f done q%d latency=%.0f" done_t task.qid latency;
    finish_record task
      (Completed { latency_ns = latency })
      ~start_ns:task.start_ns ~done_ns:done_t;
    decr inflight;
    release_lane task;
    epc_resident := !epc_resident - task.tk_profile.qp_working_set;
    dispatch done_t;
    session_next task.session done_t
  in

  let step task =
    match task.events with
    | [] -> complete task
    | ev :: rest ->
        task.events <- rest;
        (match ev with
        | Sim.Tape.Charge { node; category; ns } ->
            if ns > 0.0 then begin
              let on_host = node = host_name in
              let idx = if on_host then -1 else storage_idx node in
              let server =
                if on_host then host_srv
                else
                  let cores, device, _ = storage_srvs.(idx) in
                  if category = "io" then device else cores
              in
              let dur =
                if category = "epc" then ns *. epc_factor task else ns
              in
              let at = if on_host then task.h else task.s.(idx) in
              let start = Server.request server ~at ~duration_ns:dur in
              let fin = start +. dur in
              if on_host then task.h <- fin
              else begin
                task.s.(idx) <- fin;
                task.last_s <- idx
              end;
              task.segments_rev <-
                (node ^ "." ^ category, start, fin) :: task.segments_rev
            end
        | Sim.Tape.Sync { transfer_ns } ->
            (* the tape's sync carries no node name: a sync always
               follows charges to the node it pairs with, so it rides
               that node's channel *)
            let idx = task.last_s in
            let _, _, channel_srv = storage_srvs.(idx) in
            let at = Float.max task.h task.s.(idx) in
            let fin =
              if transfer_ns > 0.0 then begin
                let start =
                  Server.request channel_srv ~at ~duration_ns:transfer_ns
                in
                task.segments_rev <-
                  (Server.name channel_srv ^ ".transfer", start,
                   start +. transfer_ns)
                  :: task.segments_rev;
                start +. transfer_ns
              end
              else at
            in
            task.h <- fin;
            task.s.(idx) <- fin);
        push (ready_time task) (Step task)
  in

  (* seed the arrival process *)
  (match spec.arrival with
  | Open_loop { qps } ->
      let mean_gap = 1e9 /. qps in
      let t = ref 0.0 in
      for _ = 1 to spec.queries do
        t := !t +. Sim.Prng.exponential prng ~mean_ns:mean_gap;
        let tenant = List.nth spec.tenants (Sim.Prng.rand_int prng n_tenants) in
        let prof = draw_profile () in
        push !t (Arrive (new_task ~session:(-1) ~tenant ~arrive_ns:!t prof))
      done;
      remaining := 0
  | Closed_loop { sessions; _ } ->
      for s = 0 to sessions - 1 do
        if !remaining > 0 then begin
          decr remaining;
          submit_session_query s 0.0
        end
      done);

  (* main loop *)
  let rec drain () =
    match Emap.min_binding_opt !queue with
    | None -> ()
    | Some (((t, _) as key), action) ->
        queue := Emap.remove key !queue;
        (match action with Arrive task -> arrive task t | Step task -> step task);
        drain ()
  in
  drain ();

  let makespan_ns = !makespan in
  {
    rep_config = config;
    rep_spec = spec;
    rep_submitted = !submitted;
    rep_completed = !completed;
    rep_shed = !shed;
    rep_denied = !denied;
    rep_makespan_ns = makespan_ns;
    rep_throughput_qps =
      (if makespan_ns > 0.0 then float_of_int !completed /. (makespan_ns /. 1e9)
       else 0.0);
    rep_latency = latency_stats_of !latencies_rev;
    rep_per_tenant = List.map (fun t -> (t, tstat t)) spec.tenants;
    rep_records =
      List.sort (fun a b -> Int.compare a.r_qid b.r_qid) !records_rev;
    rep_event_log = List.rev !log_rev;
    rep_util =
      List.map
        (fun srv -> (Server.name srv, Server.utilization srv ~makespan_ns))
        (host_srv
         :: (Array.to_list storage_srvs
            |> List.concat_map (fun (cores, device, _) -> [ cores; device ]))
        @ (Array.to_list storage_srvs
          |> List.map (fun (_, _, channel) -> channel)));
  }

(* -- tenant gate through the trusted monitor --------------------------- *)

(* Each query is authorized under its tenant's principal: the monitor
   checks the access policy, logs obligations/denials in the audit log
   and issues (then releases) a session key — the control-path work the
   [control_ns] charge accounts for on the virtual clocks. *)
let monitor_gate ?(database = "ironsafe") deploy =
  let monitor = deploy.Deployment.monitor in
  let catalog = Sql.Database.catalog deploy.Deployment.secure_db in
  fun ~tenant ~sql ->
    match
      Ironsafe_monitor.Trusted_monitor.authorize monitor ~catalog
        ~client_label:tenant ~database ~exec_policy:[] ~sql
    with
    | Error e -> Error e
    | Ok auth ->
        Ironsafe_monitor.Trusted_monitor.session_cleanup monitor
          auth.Ironsafe_monitor.Trusted_monitor.auth_session_key;
        Ok ()

(* -- rendering --------------------------------------------------------- *)

let ms ns = ns /. 1e6

let percentile_table r =
  Printf.sprintf
    "%s %s completed=%d shed=%d denied=%d qps=%.3f p50=%.3fms p95=%.3fms p99=%.3fms mean=%.3fms max=%.3fms"
    (Config.abbrev r.rep_config)
    (arrival_name r.rep_spec.arrival)
    r.rep_completed r.rep_shed r.rep_denied r.rep_throughput_qps
    (ms r.rep_latency.p50_ns) (ms r.rep_latency.p95_ns)
    (ms r.rep_latency.p99_ns) (ms r.rep_latency.mean_ns)
    (ms r.rep_latency.max_ns)

let pp_report ppf r =
  Fmt.pf ppf "workload %s under %s:@." (arrival_name r.rep_spec.arrival)
    (Config.abbrev r.rep_config);
  Fmt.pf ppf "  submitted %d, completed %d, shed %d, denied %d@."
    r.rep_submitted r.rep_completed r.rep_shed r.rep_denied;
  Fmt.pf ppf "  makespan %.3f ms, throughput %.2f q/s@." (ms r.rep_makespan_ns)
    r.rep_throughput_qps;
  Fmt.pf ppf "  latency p50 %.3f / p95 %.3f / p99 %.3f / max %.3f ms@."
    (ms r.rep_latency.p50_ns) (ms r.rep_latency.p95_ns)
    (ms r.rep_latency.p99_ns) (ms r.rep_latency.max_ns);
  List.iter
    (fun (tenant, (st : tenant_stats)) ->
      Fmt.pf ppf "  tenant %-12s submitted=%d completed=%d shed=%d denied=%d@."
        tenant st.t_submitted st.t_completed st.t_shed st.t_denied)
    r.rep_per_tenant;
  List.iter
    (fun (name, u) -> Fmt.pf ppf "  util %-16s %5.1f%%@." name (100.0 *. u))
    r.rep_util

let json_of_report r =
  let b = Buffer.create 512 in
  let addf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  addf "{\"config\":%S," (Config.abbrev r.rep_config);
  (match r.rep_spec.arrival with
  | Open_loop { qps } -> addf "\"mode\":\"open\",\"qps\":%.3f," qps
  | Closed_loop { sessions; think_ns } ->
      addf "\"mode\":\"closed\",\"sessions\":%d,\"think_ms\":%.3f," sessions
        (ms think_ns));
  addf "\"seed\":%d,\"tenants\":%d," r.rep_spec.seed
    (List.length r.rep_spec.tenants);
  addf "\"submitted\":%d,\"completed\":%d,\"shed\":%d,\"denied\":%d,"
    r.rep_submitted r.rep_completed r.rep_shed r.rep_denied;
  addf "\"makespan_ms\":%.6f,\"throughput_qps\":%.6f," (ms r.rep_makespan_ns)
    r.rep_throughput_qps;
  addf
    "\"latency_ms\":{\"mean\":%.6f,\"p50\":%.6f,\"p95\":%.6f,\"p99\":%.6f,\"max\":%.6f},"
    (ms r.rep_latency.mean_ns) (ms r.rep_latency.p50_ns)
    (ms r.rep_latency.p95_ns) (ms r.rep_latency.p99_ns)
    (ms r.rep_latency.max_ns);
  addf "\"per_tenant\":[";
  List.iteri
    (fun i (tenant, (st : tenant_stats)) ->
      if i > 0 then addf ",";
      addf "{\"tenant\":%S,\"submitted\":%d,\"completed\":%d,\"shed\":%d,\"denied\":%d}"
        tenant st.t_submitted st.t_completed st.t_shed st.t_denied)
    r.rep_per_tenant;
  addf "],\"utilization\":{";
  List.iteri
    (fun i (name, u) ->
      if i > 0 then addf ",";
      addf "%S:%.6f" name u)
    r.rep_util;
  addf "}}";
  Buffer.contents b

(* -- Chrome trace lanes ------------------------------------------------ *)

(* One lane (pid/tid) per concurrent session: closed-loop sessions map
   to their session id, open-loop queries to the admission lane they
   occupied. Queue wait renders as an explicit child segment. *)
let to_spans ?(offset_ns = 0.0) r =
  let mk ~name ~scope ~kind ~attrs b e =
    let s = Obs.Span.make ~name ~scope ~kind ~attrs (offset_ns +. b) in
    s.Obs.Span.end_ns <- offset_ns +. e;
    s
  in
  List.map
    (fun rc ->
      match rc.r_outcome with
      | Completed { latency_ns } ->
          (* the root span occupies the lane [start, done] — a lane runs
             one query at a time, so roots on a track never overlap;
             queue wait is carried as an attribute (the lane was not
             ours yet). Each resource's segments go on a per-resource
             sub-track of the lane: host and storage clocks advance
             concurrently within one query, and B/E events on a single
             Chrome track must nest. *)
          let scope = Printf.sprintf "session-%d" rc.r_lane in
          let queued_ns = rc.r_start_ns -. rc.r_arrive_ns in
          let root =
            mk
              ~name:(Printf.sprintf "%s#%d" rc.r_label rc.r_qid)
              ~scope ~kind:Obs.Span.Complete
              ~attrs:
                ([
                   ("tenant", rc.r_tenant);
                   ("config", Config.abbrev r.rep_config);
                   ("latency_ms", Printf.sprintf "%.3f" (ms latency_ns));
                 ]
                @
                if queued_ns > 0.0 then
                  [ ("queued_ms", Printf.sprintf "%.3f" (ms queued_ns)) ]
                else [])
              rc.r_start_ns rc.r_done_ns
          in
          let track name =
            let res =
              match String.index_opt name '.' with
              | Some i -> String.sub name 0 i
              | None -> name
            in
            scope ^ "." ^ res
          in
          let children =
            List.map
              (fun (name, b, e) ->
                mk ~name ~scope:(track name) ~kind:Obs.Span.Complete ~attrs:[]
                  b e)
              rc.r_segments
          in
          root.Obs.Span.children_rev <- List.rev children;
          root
      | Shed _ ->
          mk
            ~name:(Printf.sprintf "shed#%d" rc.r_qid)
            ~scope:"sched" ~kind:Obs.Span.Instant
            ~attrs:[ ("tenant", rc.r_tenant); ("reason", "queue_full") ]
            rc.r_arrive_ns rc.r_arrive_ns
      | Denied reason ->
          mk
            ~name:(Printf.sprintf "denied#%d" rc.r_qid)
            ~scope:"sched" ~kind:Obs.Span.Instant
            ~attrs:[ ("tenant", rc.r_tenant); ("reason", reason) ]
            rc.r_arrive_ns rc.r_arrive_ns)
    r.rep_records

let trace_json r = Obs.Chrome_trace.to_json (to_spans r)

(* Splice the lanes into the global observability collector (no-op with
   tracing off), shifted past everything already recorded so the bench
   --trace-out file keeps a monotonic timeline. *)
let add_to_collector r =
  if Obs.Obs.enabled () then begin
    Obs.Obs.new_epoch ();
    let off = Obs.Span.current_epoch () in
    List.iter Obs.Span.add_root (to_spans ~offset_ns:off r)
  end
