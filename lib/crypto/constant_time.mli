(** Timing-safe operations on secrets. *)

val equal : string -> string -> bool
(** [equal a b] compares without early exit; time depends only on the
    lengths. Returns [false] immediately when lengths differ (lengths
    of MACs and digests are public). *)
