(* Lane fan-out for data-parallel crypto kernels (multi-lane CTR page
   decrypt, batched MAC checks). A "lane" is one strand of a fixed-width
   SPMD step: [run ~lanes f] executes [f 0 .. f (lanes-1)], lane 0 on
   the calling domain and the rest on freshly spawned domains, and
   returns only when every lane has finished.

   Domains cost tens of microseconds to spawn, so callers amortize a
   fan-out over a batch of pages, never a single block. With [lanes <= 1]
   (or on a single-core host, where spawning buys nothing) the caller
   runs everything inline and no domain is created. *)

let available () = Domain.recommended_domain_count ()

let run ~lanes f =
  if lanes <= 1 then f 0
  else begin
    let spawned =
      Array.init (lanes - 1) (fun i -> Domain.spawn (fun () -> f (i + 1)))
    in
    (* run lane 0 here even if it raises, but only re-raise after every
       spawned domain has been joined — leaking domains on failure would
       poison later fan-outs *)
    let lane0 = try Ok (f 0) with e -> Error e in
    let first_err =
      Array.fold_left
        (fun err d ->
          match Domain.join d with
          | () -> err
          | exception e -> if err = None then Some e else err)
        None spawned
    in
    match (lane0, first_err) with
    | Error e, _ -> raise e
    | Ok (), Some e -> raise e
    | Ok (), None -> ()
  end
