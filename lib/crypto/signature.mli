(** Signature scheme with an Ed25519-shaped API (see DESIGN.md §1 for
    the bignum-free substitution). Keys are 32 bytes, signatures 32
    bytes; verification requires only the public key and is
    unforgeable without the secret seed. *)

type secret_key
type public_key

val generate : Drbg.t -> secret_key * public_key

val sign : secret_key -> string -> string
val verify : public_key -> string -> string -> bool

val public_key_bytes : public_key -> string
(** Serialize for embedding in certificates and wire messages. *)

val public_key_of_bytes : string -> public_key

val signature_size : int
val public_key_size : int
