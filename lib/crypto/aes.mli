(** AES block cipher (FIPS 197), 128- and 256-bit keys. See {!Modes}
    for CBC/CTR. *)

val block_size : int
(** 16 bytes. *)

type key
(** Expanded round-key schedule. *)

val expand_key : string -> key
(** Expand a 16-byte (AES-128) or 32-byte (AES-256) key.
    @raise Invalid_argument on any other length. *)

val encrypt_block : key -> string -> string
(** Encrypt one 16-byte block. *)

val decrypt_block : key -> string -> string
(** Decrypt one 16-byte block. *)

(**/**)

val encrypt_block_into : key -> Bytes.t -> int -> Bytes.t -> int -> unit
val decrypt_block_into : key -> Bytes.t -> int -> Bytes.t -> int -> unit
