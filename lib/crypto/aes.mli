(** AES block cipher (FIPS 197), 128- and 256-bit keys. See {!Modes}
    for CBC/CTR. *)

val block_size : int
(** 16 bytes. *)

type key
(** Expanded round-key schedule. *)

val expand_key : string -> key
(** Expand a 16-byte (AES-128) or 32-byte (AES-256) key.
    @raise Invalid_argument on any other length. *)

val encrypt_block : key -> string -> string
(** Encrypt one 16-byte block. *)

val decrypt_block : key -> string -> string
(** Decrypt one 16-byte block. *)

(**/**)

val encrypt_block_into : key -> Bytes.t -> int -> Bytes.t -> int -> unit
val decrypt_block_into : key -> Bytes.t -> int -> Bytes.t -> int -> unit

(* String-source variants: one 16-byte block read straight from an
   immutable message (the block-mode hot paths decrypt ciphertext
   strings without first copying them into a [Bytes.t]). In-place use
   (src and dst aliasing) is safe for the [Bytes.t] variants: the
   state words are loaded before anything is written. *)
val encrypt_str_into : key -> string -> int -> Bytes.t -> int -> unit
val decrypt_str_into : key -> string -> int -> Bytes.t -> int -> unit
