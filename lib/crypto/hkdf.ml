(* HKDF (RFC 5869) over HMAC-SHA256. Used to derive page-encryption,
   Merkle-root, RPMB and session keys from device/hardware secrets. *)

let extract ?(salt = "") ikm =
  let salt = if salt = "" then String.make Hmac.digest_size '\000' else salt in
  Hmac.mac ~key:salt ikm

let expand ~prk ?(info = "") len =
  if len > 255 * Hmac.digest_size then invalid_arg "Hkdf.expand: len too large";
  let buf = Buffer.create len in
  let rec go t i =
    if Buffer.length buf >= len then ()
    else begin
      let t = Hmac.mac ~key:prk (t ^ info ^ String.make 1 (Char.chr i)) in
      Buffer.add_string buf t;
      go t (i + 1)
    end
  in
  go "" 1;
  String.sub (Buffer.contents buf) 0 len

let derive ?salt ~ikm ?info len = expand ~prk:(extract ?salt ikm) ?info len
