(* HMAC-SHA256 (RFC 2104 / FIPS 198-1).

   The secure store evaluates HMACs under a handful of long-lived keys
   (page MAC key, Merkle key, task key) millions of times, so the
   ipad/opad key blocks are absorbed once into a {!prekey} — a pair of
   SHA-256 midstates — and each MAC then costs only the message blocks
   plus one outer finalization, instead of re-hashing both 64-byte key
   pads every call. *)

let block_size = 64
let digest_size = 32

let normalize_key key =
  let key = if String.length key > block_size then Sha256.digest key else key in
  if String.length key = block_size then key
  else key ^ String.make (block_size - String.length key) '\000'

let xor_pad key byte = String.map (fun c -> Char.chr (Char.code c lxor byte)) key

type prekey = { istate : Sha256.ctx; ostate : Sha256.ctx }

let precompute ~key =
  let key = normalize_key key in
  let istate = Sha256.init () in
  Sha256.update istate (xor_pad key 0x36);
  let ostate = Sha256.init () in
  Sha256.update ostate (xor_pad key 0x5c);
  { istate; ostate }

let mac_pre pk msg =
  let ctx = Sha256.copy pk.istate in
  Sha256.update ctx msg;
  let inner = Sha256.finalize ctx in
  let ctx = Sha256.copy pk.ostate in
  Sha256.update ctx inner;
  Sha256.finalize ctx

let mac_pre_list pk parts =
  let ctx = Sha256.copy pk.istate in
  List.iter (Sha256.update ctx) parts;
  let inner = Sha256.finalize ctx in
  let ctx = Sha256.copy pk.ostate in
  Sha256.update ctx inner;
  Sha256.finalize ctx

let mac ~key msg = mac_pre (precompute ~key) msg

let verify_pre pk ~mac:expected msg =
  Constant_time.equal (mac_pre pk msg) expected

let verify ~key ~mac:expected msg =
  Constant_time.equal (mac ~key msg) expected
