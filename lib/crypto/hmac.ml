(* HMAC-SHA256 (RFC 2104 / FIPS 198-1). *)

let block_size = 64
let digest_size = 32

let normalize_key key =
  let key = if String.length key > block_size then Sha256.digest key else key in
  if String.length key = block_size then key
  else key ^ String.make (block_size - String.length key) '\000'

let xor_pad key byte = String.map (fun c -> Char.chr (Char.code c lxor byte)) key

let mac ~key msg =
  let key = normalize_key key in
  let inner = Sha256.digest_list [ xor_pad key 0x36; msg ] in
  Sha256.digest_list [ xor_pad key 0x5c; inner ]

let verify ~key ~mac:expected msg =
  Constant_time.equal (mac ~key msg) expected
