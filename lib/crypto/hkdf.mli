(** HKDF key derivation (RFC 5869) over HMAC-SHA256. *)

val extract : ?salt:string -> string -> string
(** [extract ?salt ikm] is the 32-byte pseudorandom key. An empty or
    missing salt defaults to a zero-filled hash-length salt per the RFC. *)

val expand : prk:string -> ?info:string -> int -> string
(** [expand ~prk ?info len] expands [prk] to [len] bytes of output
    keying material. @raise Invalid_argument if [len > 255 * 32]. *)

val derive : ?salt:string -> ikm:string -> ?info:string -> int -> string
(** Extract-then-expand convenience. *)
