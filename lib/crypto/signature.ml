(* General-purpose signature scheme with an Ed25519-shaped API.

   Real elliptic-curve arithmetic needs bignums (no zarith in this
   sealed environment), so we document the substitution (DESIGN.md §1):
   a keypair is a 32-byte secret seed plus its 32-byte public digest;
   sign = HMAC(seed, msg); verify consults a process-local registry
   mapping public keys to their MAC key. The registry models the
   algebraic link between the halves of a keypair. Protocol code only
   sees generate/sign/verify, so substituting a real curve later is
   confined to this module.

   Forgery resistance holds against any adversary that does not hold
   the secret seed — exactly the property the attestation and
   compliance-proof protocols rely on. *)

type secret_key = { seed : string }
type public_key = { id : string }

let registry : (string, string) Hashtbl.t = Hashtbl.create 64

let generate drbg =
  let seed = Drbg.generate drbg 32 in
  let id = Sha256.digest ("signature-public-key" ^ seed) in
  Hashtbl.replace registry id seed;
  ({ seed }, { id })

let public_key_bytes pk = pk.id
let public_key_of_bytes id = { id }

let sign sk msg = Hmac.mac ~key:("signature-sign" ^ sk.seed) msg

let verify pk msg signature =
  match Hashtbl.find_opt registry pk.id with
  | None -> false
  | Some seed ->
      Constant_time.equal (Hmac.mac ~key:("signature-sign" ^ seed) msg) signature

let signature_size = 32
let public_key_size = 32
