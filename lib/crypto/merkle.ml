(* Keyed Merkle tree over page authentication tags (the paper builds a
   "streamlined Merkle tree" of per-page HMACs; internal nodes are also
   HMACs — §4.1). Implemented as a flat binary heap over a power-of-two
   capacity so leaf updates touch exactly one root path.

   [hash_ops] counts HMAC evaluations since the last [reset_hash_ops];
   the simulator charges freshness-verification time from it. *)

type t = {
  key : string;
  prekey : Hmac.prekey; (* ipad/opad midstates, absorbed once *)
  cap : int; (* power of two >= requested leaf count *)
  leaves : int; (* requested leaf count *)
  nodes : string array; (* 1-indexed heap: nodes.(1) = root *)
  mutable hash_ops : int;
}

let empty_leaf_tag = "\x00merkle-empty-leaf"

let rec next_pow2 n = if n <= 1 then 1 else 2 * next_pow2 ((n + 1) / 2)

let hash_node t payload =
  t.hash_ops <- t.hash_ops + 1;
  Hmac.mac_pre t.prekey payload

(* Internal node: HMAC of the two children, fed as parts so the
   64-byte concatenation is never materialized. *)
let hash_children t left right =
  t.hash_ops <- t.hash_ops + 1;
  Hmac.mac_pre_list t.prekey [ left; right ]

let create ~key ~leaves =
  if leaves <= 0 then invalid_arg "Merkle.create: leaves must be positive";
  let cap = next_pow2 leaves in
  let t =
    {
      key;
      prekey = Hmac.precompute ~key;
      cap;
      leaves;
      nodes = Array.make (2 * cap) "";
      hash_ops = 0;
    }
  in
  let empty = hash_node t empty_leaf_tag in
  for i = cap to (2 * cap) - 1 do
    t.nodes.(i) <- empty
  done;
  for i = cap - 1 downto 1 do
    t.nodes.(i) <- hash_children t t.nodes.(2 * i) t.nodes.((2 * i) + 1)
  done;
  t

let leaf_count t = t.leaves
let root t = t.nodes.(1)
let hash_ops t = t.hash_ops
let reset_hash_ops t = t.hash_ops <- 0

let check_index t i =
  if i < 0 || i >= t.leaves then invalid_arg "Merkle: leaf index out of range"

let leaf_tag_of_data t data = hash_node t data

let set_leaf t i tag =
  check_index t i;
  let pos = ref (t.cap + i) in
  t.nodes.(!pos) <- tag;
  pos := !pos / 2;
  while !pos >= 1 do
    t.nodes.(!pos) <-
      hash_children t t.nodes.(2 * !pos) t.nodes.((2 * !pos) + 1);
    pos := !pos / 2
  done

let update t i data = set_leaf t i (leaf_tag_of_data t data)

let leaf t i =
  check_index t i;
  t.nodes.(t.cap + i)

type proof = { index : int; siblings : string list }

let prove t i =
  check_index t i;
  let rec collect pos acc =
    if pos <= 1 then List.rev acc
    else begin
      let sibling = t.nodes.(pos lxor 1) in
      collect (pos / 2) (sibling :: acc)
    end
  in
  { index = i; siblings = collect (t.cap + i) [] }

(* Verification recomputes the path bottom-up with a *fresh* op counter
   owner: the verifier may be a different party (e.g. the host checking
   a proof shipped by storage), so we take key and root explicitly. *)
let verify ~key ~root:expected_root ~leaf_tag proof =
  (* one key absorption serves the whole path *)
  let pk = Hmac.precompute ~key in
  let counter = ref 0 in
  let h a b =
    incr counter;
    Hmac.mac_pre_list pk [ a; b ]
  in
  let rec climb index node = function
    | [] -> node
    | sibling :: rest ->
        let parent =
          if index land 1 = 0 then h node sibling else h sibling node
        in
        climb (index / 2) parent rest
  in
  let computed = climb proof.index leaf_tag proof.siblings in
  (Constant_time.equal computed expected_root, !counter)

let depth t =
  let rec go cap acc = if cap <= 1 then acc else go (cap / 2) (acc + 1) in
  go t.cap 0

(* -- batched verification ------------------------------------------- *)

(* Verifying n leaves one path at a time costs n * depth HMACs even
   though nearby leaves share almost all of their upper path. The batch
   verifier memoizes, per heap position, the node value that has already
   been chained up to the root within this batch: a later leaf climbing
   into a memoized position only has to match that value, because the
   segment above it was verified when the memo entry was written. For a
   contiguous run of leaves this collapses the per-leaf cost from
   [depth] HMACs to amortized ~2.

   The verifier snapshots the root at creation and reads sibling values
   from the live tree, exactly like [prove]; it must not span leaf
   updates. It carries its own mutable memo and op counter, so create
   one per thread — concurrent verifiers over the same (quiescent) tree
   are safe. *)
type batch_verifier = {
  bv_tree : t;
  bv_pk : Hmac.prekey;
  bv_root : string;
  bv_chained : (int, string) Hashtbl.t;
      (* heap pos -> computed value whose path to the root verified *)
  mutable bv_ops : int;
}

let batch_verifier ~key t =
  {
    bv_tree = t;
    bv_pk = Hmac.precompute ~key;
    bv_root = t.nodes.(1);
    bv_chained = Hashtbl.create 64;
    bv_ops = 0;
  }

let verify_leaf bv i ~leaf_tag =
  let t = bv.bv_tree in
  check_index t i;
  let h a b =
    bv.bv_ops <- bv.bv_ops + 1;
    Hmac.mac_pre_list bv.bv_pk [ a; b ]
  in
  let rec climb pos node =
    if pos = 1 then Constant_time.equal node bv.bv_root
    else
      match Hashtbl.find_opt bv.bv_chained pos with
      | Some chained -> Constant_time.equal node chained
      | None ->
          let sibling = t.nodes.(pos lxor 1) in
          let parent =
            if pos land 1 = 0 then h node sibling else h sibling node
          in
          let ok = climb (pos / 2) parent in
          if ok then Hashtbl.replace bv.bv_chained pos node;
          ok
  in
  climb (t.cap + i) leaf_tag

let batch_hash_ops bv = bv.bv_ops
