(** AES-128 modes of operation. *)

val cbc_encrypt : key:Aes.key -> iv:string -> string -> string
(** CBC encryption with PKCS#7 padding; output length is the input
    rounded up to the next multiple of 16. IV must be 16 bytes. *)

val cbc_decrypt : key:Aes.key -> iv:string -> string -> (string, string) result
(** CBC decryption; fails on non-aligned input or invalid padding. *)

val ctr_transform : key:Aes.key -> nonce:string -> string -> string
(** CTR keystream XOR; encryption and decryption are the same
    operation. Nonce must be 16 bytes and never reused per key. *)

(**/**)

val pkcs7_pad : string -> string
val pkcs7_unpad : string -> (string, string) result
