(** AES-128 modes of operation. *)

val cbc_encrypt : key:Aes.key -> iv:string -> string -> string
(** CBC encryption with PKCS#7 padding; output length is the input
    rounded up to the next multiple of 16. IV must be 16 bytes. *)

val cbc_decrypt : key:Aes.key -> iv:string -> string -> (string, string) result
(** CBC decryption; fails on non-aligned input or invalid padding. *)

val ctr_transform : key:Aes.key -> nonce:string -> string -> string
(** CTR keystream XOR; encryption and decryption are the same
    operation. Nonce must be 16 bytes and never reused per key. *)

val ctr_transform_into :
  key:Aes.key ->
  nonce:string ->
  ?block_offset:int ->
  string ->
  int ->
  Bytes.t ->
  int ->
  int ->
  unit
(** [ctr_transform_into ~key ~nonce ~block_offset src soff dst doff len]
    is the allocation-free form of {!ctr_transform}: it XORs the CTR
    keystream over [src.[soff .. soff+len-1]] into a caller-owned [dst]
    at [doff]. [block_offset] (default 0) starts the counter
    [block_offset] blocks past the nonce, so independent lanes can each
    transform a block-aligned slice of one message and produce exactly
    the bytes the single-lane transform would. Unlike CBC, any 16-byte
    block is decryptable on its own. *)

(**/**)

val pkcs7_pad : string -> string
val pkcs7_unpad : string -> (string, string) result
