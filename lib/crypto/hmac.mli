(** HMAC-SHA256 (RFC 2104). *)

val digest_size : int
(** Output length in bytes (32). *)

val block_size : int
(** Underlying hash block size in bytes (64). *)

val mac : key:string -> string -> string
(** [mac ~key msg] is the 32-byte HMAC-SHA256 tag of [msg] under [key].
    Keys of any length are accepted per the RFC. *)

val verify : key:string -> mac:string -> string -> bool
(** Constant-time tag check. *)
