(** HMAC-SHA256 (RFC 2104). *)

val digest_size : int
(** Output length in bytes (32). *)

val block_size : int
(** Underlying hash block size in bytes (64). *)

val mac : key:string -> string -> string
(** [mac ~key msg] is the 32-byte HMAC-SHA256 tag of [msg] under [key].
    Keys of any length are accepted per the RFC. *)

val verify : key:string -> mac:string -> string -> bool
(** Constant-time tag check. *)

(** {2 Precomputed keys}

    A {!prekey} holds the SHA-256 midstates after absorbing the
    ipad/opad key blocks, so each subsequent MAC under the same key
    skips both 64-byte key pads — roughly 2 of the 5 compressions of a
    short-message HMAC. Tags are bit-identical to {!mac}. *)

type prekey

val precompute : key:string -> prekey
(** Absorb [key]'s ipad/opad blocks once. *)

val mac_pre : prekey -> string -> string
(** [mac_pre pk msg = mac ~key msg] for the prekey's key. *)

val mac_pre_list : prekey -> string list -> string
(** MAC of the concatenation of the parts, without building it. *)

val verify_pre : prekey -> mac:string -> string -> bool
(** Constant-time tag check against a precomputed key. *)
