(* SHA-256 (FIPS 180-4), implemented from scratch on 32-bit words.
   OCaml's native int is 63-bit so we mask to 32 bits after every
   addition; logical ops never overflow the mask.

   Hot-path notes: full 64-byte blocks arriving through [update] are
   compressed straight out of the source string (no staging blit into
   the context buffer), and the message schedule lives in one shared
   scratch array — the inner loop allocates nothing. [copy] clones a
   context mid-stream, which is what lets {!Hmac} precompute the
   ipad/opad midstates once per key. *)

type ctx = {
  mutable h0 : int;
  mutable h1 : int;
  mutable h2 : int;
  mutable h3 : int;
  mutable h4 : int;
  mutable h5 : int;
  mutable h6 : int;
  mutable h7 : int;
  buf : Bytes.t; (* 64-byte block buffer *)
  mutable buf_len : int;
  mutable total : int; (* total message bytes so far *)
}

let k =
  [|
    0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
    0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
    0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
    0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
    0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
    0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
    0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
    0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
    0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
    0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
    0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2;
  |]

let mask = 0xffffffff
let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask

let init () =
  {
    h0 = 0x6a09e667;
    h1 = 0xbb67ae85;
    h2 = 0x3c6ef372;
    h3 = 0xa54ff53a;
    h4 = 0x510e527f;
    h5 = 0x9b05688c;
    h6 = 0x1f83d9ab;
    h7 = 0x5be0cd19;
    buf = Bytes.create 64;
    buf_len = 0;
    total = 0;
  }

let copy ctx = { ctx with buf = Bytes.copy ctx.buf }

let w = Array.make 64 0 (* schedule scratch; module is not thread-safe *)

(* Run the 64 rounds over a schedule already loaded into [w.(0..15)]. *)
let compress_rounds ctx =
  for t = 16 to 63 do
    let wt15 = Array.unsafe_get w (t - 15) in
    let wt2 = Array.unsafe_get w (t - 2) in
    let s0 = rotr wt15 7 lxor rotr wt15 18 lxor (wt15 lsr 3) in
    let s1 = rotr wt2 17 lxor rotr wt2 19 lxor (wt2 lsr 10) in
    Array.unsafe_set w t
      ((Array.unsafe_get w (t - 16) + s0 + Array.unsafe_get w (t - 7) + s1)
      land mask)
  done;
  let a = ref ctx.h0
  and b = ref ctx.h1
  and c = ref ctx.h2
  and d = ref ctx.h3
  and e = ref ctx.h4
  and f = ref ctx.h5
  and g = ref ctx.h6
  and h = ref ctx.h7 in
  for t = 0 to 63 do
    let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
    let ch = !e land !f lxor (lnot !e land !g) in
    let t1 =
      (!h + s1 + ch + Array.unsafe_get k t + Array.unsafe_get w t) land mask
    in
    let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
    let maj = !a land !b lxor (!a land !c) lxor (!b land !c) in
    let t2 = (s0 + maj) land mask in
    h := !g;
    g := !f;
    f := !e;
    e := (!d + t1) land mask;
    d := !c;
    c := !b;
    b := !a;
    a := (t1 + t2) land mask
  done;
  ctx.h0 <- (ctx.h0 + !a) land mask;
  ctx.h1 <- (ctx.h1 + !b) land mask;
  ctx.h2 <- (ctx.h2 + !c) land mask;
  ctx.h3 <- (ctx.h3 + !d) land mask;
  ctx.h4 <- (ctx.h4 + !e) land mask;
  ctx.h5 <- (ctx.h5 + !f) land mask;
  ctx.h6 <- (ctx.h6 + !g) land mask;
  ctx.h7 <- (ctx.h7 + !h) land mask

let compress ctx block off =
  for t = 0 to 15 do
    let i = off + (t * 4) in
    w.(t) <-
      (Char.code (Bytes.unsafe_get block i) lsl 24)
      lor (Char.code (Bytes.unsafe_get block (i + 1)) lsl 16)
      lor (Char.code (Bytes.unsafe_get block (i + 2)) lsl 8)
      lor Char.code (Bytes.unsafe_get block (i + 3))
  done;
  compress_rounds ctx

(* Same, reading the block straight from a string (the [feed] fast
   path: full blocks never touch [ctx.buf]). *)
let compress_str ctx s off =
  for t = 0 to 15 do
    let i = off + (t * 4) in
    w.(t) <-
      (Char.code (String.unsafe_get s i) lsl 24)
      lor (Char.code (String.unsafe_get s (i + 1)) lsl 16)
      lor (Char.code (String.unsafe_get s (i + 2)) lsl 8)
      lor Char.code (String.unsafe_get s (i + 3))
  done;
  compress_rounds ctx

let feed ctx s off len =
  ctx.total <- ctx.total + len;
  let pos = ref off and remaining = ref len in
  (* top up a partially filled block buffer first *)
  if ctx.buf_len > 0 then begin
    let take = min !remaining (64 - ctx.buf_len) in
    Bytes.blit_string s !pos ctx.buf ctx.buf_len take;
    ctx.buf_len <- ctx.buf_len + take;
    pos := !pos + take;
    remaining := !remaining - take;
    if ctx.buf_len = 64 then begin
      compress ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  while !remaining >= 64 do
    compress_str ctx s !pos;
    pos := !pos + 64;
    remaining := !remaining - 64
  done;
  if !remaining > 0 then begin
    Bytes.blit_string s !pos ctx.buf 0 !remaining;
    ctx.buf_len <- !remaining
  end

let update ctx s = feed ctx s 0 (String.length s)

let finalize ctx =
  let bit_len = ctx.total * 8 in
  let pad_len =
    let rem = (ctx.total + 1 + 8) mod 64 in
    if rem = 0 then 1 else 1 + (64 - rem)
  in
  let pad = Bytes.make (pad_len + 8) '\000' in
  Bytes.set pad 0 '\x80';
  for i = 0 to 7 do
    Bytes.set pad
      (pad_len + i)
      (Char.chr ((bit_len lsr (8 * (7 - i))) land 0xff))
  done;
  feed ctx (Bytes.unsafe_to_string pad) 0 (Bytes.length pad);
  assert (ctx.buf_len = 0);
  let out = Bytes.create 32 in
  let put i v =
    Bytes.set out (i * 4) (Char.chr ((v lsr 24) land 0xff));
    Bytes.set out ((i * 4) + 1) (Char.chr ((v lsr 16) land 0xff));
    Bytes.set out ((i * 4) + 2) (Char.chr ((v lsr 8) land 0xff));
    Bytes.set out ((i * 4) + 3) (Char.chr (v land 0xff))
  in
  put 0 ctx.h0;
  put 1 ctx.h1;
  put 2 ctx.h2;
  put 3 ctx.h3;
  put 4 ctx.h4;
  put 5 ctx.h5;
  put 6 ctx.h6;
  put 7 ctx.h7;
  Bytes.unsafe_to_string out

let digest s =
  let ctx = init () in
  update ctx s;
  finalize ctx

let digest_list parts =
  let ctx = init () in
  List.iter (update ctx) parts;
  finalize ctx

let hex s = Hex.of_string (digest s)
