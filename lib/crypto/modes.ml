(* Block cipher modes over AES-128: CBC with PKCS#7 padding (the
   paper's SQLCipher setup uses AES-CBC per database page) and CTR for
   stream-style channel encryption.

   Both CBC directions run in place over a single output buffer: the
   only allocations per call are the output itself (and the unpadded
   copy on decrypt) — no per-block temporaries, no staging copies of
   the message. This is the secure store's per-page hot path. *)

let xor_into dst doff src soff len =
  for i = 0 to len - 1 do
    Bytes.unsafe_set dst (doff + i)
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get dst (doff + i))
         lxor Char.code (Bytes.unsafe_get src (soff + i))))
  done

let xor_str_into dst doff src soff len =
  for i = 0 to len - 1 do
    Bytes.unsafe_set dst (doff + i)
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get dst (doff + i))
         lxor Char.code (String.unsafe_get src (soff + i))))
  done

(* -- CBC ----------------------------------------------------------- *)

let pkcs7_pad s =
  let pad = 16 - (String.length s mod 16) in
  s ^ String.make pad (Char.chr pad)

let pkcs7_unpad s =
  let n = String.length s in
  if n = 0 || n mod 16 <> 0 then Error "cbc: ciphertext not block aligned"
  else begin
    let pad = Char.code s.[n - 1] in
    if pad = 0 || pad > 16 || pad > n then Error "cbc: bad padding"
    else begin
      let ok = ref true in
      for i = n - pad to n - 1 do
        if Char.code s.[i] <> pad then ok := false
      done;
      if !ok then Ok (String.sub s 0 (n - pad)) else Error "cbc: bad padding"
    end
  end

let cbc_encrypt ~key ~iv plain =
  if String.length iv <> 16 then invalid_arg "Modes.cbc_encrypt: iv must be 16 bytes";
  let len = String.length plain in
  let pad = 16 - (len mod 16) in
  let n = len + pad in
  (* pad directly into the output; each block is then xored with the
     previous ciphertext block (already in [out]) and encrypted in
     place — [Aes] loads the whole block before writing *)
  let out = Bytes.create n in
  Bytes.blit_string plain 0 out 0 len;
  Bytes.fill out len pad (Char.chr pad);
  xor_str_into out 0 iv 0 16;
  Aes.encrypt_block_into key out 0 out 0;
  for i = 1 to (n / 16) - 1 do
    xor_into out (i * 16) out ((i - 1) * 16) 16;
    Aes.encrypt_block_into key out (i * 16) out (i * 16)
  done;
  Bytes.unsafe_to_string out

let cbc_decrypt ~key ~iv cipher =
  if String.length iv <> 16 then invalid_arg "Modes.cbc_decrypt: iv must be 16 bytes";
  let n = String.length cipher in
  if n = 0 || n mod 16 <> 0 then Error "cbc: ciphertext not block aligned"
  else begin
    (* the chaining block is just the previous ciphertext block, read
       straight from the input string — no rolling [prev] buffer *)
    let out = Bytes.create n in
    Aes.decrypt_str_into key cipher 0 out 0;
    xor_str_into out 0 iv 0 16;
    for i = 1 to (n / 16) - 1 do
      Aes.decrypt_str_into key cipher (i * 16) out (i * 16);
      xor_str_into out (i * 16) cipher ((i - 1) * 16) 16
    done;
    (* unpad without round-tripping through an intermediate string *)
    let pad = Char.code (Bytes.get out (n - 1)) in
    if pad = 0 || pad > 16 || pad > n then Error "cbc: bad padding"
    else begin
      let ok = ref true in
      for i = n - pad to n - 1 do
        if Char.code (Bytes.get out i) <> pad then ok := false
      done;
      if !ok then Ok (Bytes.sub_string out 0 (n - pad))
      else Error "cbc: bad padding"
    end
  end

(* -- CTR ----------------------------------------------------------- *)

let incr_counter ctr =
  let rec bump i =
    if i < 0 then ()
    else begin
      let v = (Char.code (Bytes.get ctr i) + 1) land 0xff in
      Bytes.set ctr i (Char.chr v);
      if v = 0 then bump (i - 1)
    end
  in
  bump 15

(* Big-endian addition of a small integer into the 16-byte counter,
   wrapping mod 2^128 (the carry off byte 0 is dropped, matching what
   repeated [incr_counter] does). Lets a lane start mid-message. *)
let add_counter ctr k =
  if k < 0 then invalid_arg "Modes: negative counter offset";
  let rec add i k =
    if k = 0 || i < 0 then ()
    else begin
      let v = Char.code (Bytes.get ctr i) + (k land 0xff) in
      Bytes.set ctr i (Char.chr (v land 0xff));
      add (i - 1) ((k lsr 8) + (v lsr 8))
    end
  in
  add 15 k

let ctr_transform_into ~key ~nonce ?(block_offset = 0) src soff dst doff len =
  if String.length nonce <> 16 then
    invalid_arg "Modes.ctr_transform_into: nonce must be 16 bytes";
  if soff < 0 || len < 0 || soff + len > String.length src then
    invalid_arg "Modes.ctr_transform_into: source range out of bounds";
  if doff < 0 || doff + len > Bytes.length dst then
    invalid_arg "Modes.ctr_transform_into: destination range out of bounds";
  let ctr = Bytes.of_string nonce in
  add_counter ctr block_offset;
  let keystream = Bytes.create 16 in
  let off = ref 0 in
  while !off < len do
    Aes.encrypt_block_into key ctr 0 keystream 0;
    let chunk = min 16 (len - !off) in
    for i = 0 to chunk - 1 do
      Bytes.unsafe_set dst
        (doff + !off + i)
        (Char.unsafe_chr
           (Char.code (String.unsafe_get src (soff + !off + i))
           lxor Char.code (Bytes.unsafe_get keystream i)))
    done;
    incr_counter ctr;
    off := !off + 16
  done

let ctr_transform ~key ~nonce data =
  let n = String.length data in
  let out = Bytes.create n in
  ctr_transform_into ~key ~nonce data 0 out 0 n;
  Bytes.unsafe_to_string out
