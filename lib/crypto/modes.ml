(* Block cipher modes over AES-128: CBC with PKCS#7 padding (the
   paper's SQLCipher setup uses AES-CBC per database page) and CTR for
   stream-style channel encryption. *)

let xor_into dst doff src soff len =
  for i = 0 to len - 1 do
    Bytes.set dst (doff + i)
      (Char.chr
         (Char.code (Bytes.get dst (doff + i))
         lxor Char.code (Bytes.get src (soff + i))))
  done

(* -- CBC ----------------------------------------------------------- *)

let pkcs7_pad s =
  let pad = 16 - (String.length s mod 16) in
  s ^ String.make pad (Char.chr pad)

let pkcs7_unpad s =
  let n = String.length s in
  if n = 0 || n mod 16 <> 0 then Error "cbc: ciphertext not block aligned"
  else begin
    let pad = Char.code s.[n - 1] in
    if pad = 0 || pad > 16 || pad > n then Error "cbc: bad padding"
    else begin
      let ok = ref true in
      for i = n - pad to n - 1 do
        if Char.code s.[i] <> pad then ok := false
      done;
      if !ok then Ok (String.sub s 0 (n - pad)) else Error "cbc: bad padding"
    end
  end

let cbc_encrypt ~key ~iv plain =
  if String.length iv <> 16 then invalid_arg "Modes.cbc_encrypt: iv must be 16 bytes";
  let padded = Bytes.of_string (pkcs7_pad plain) in
  let n = Bytes.length padded in
  let out = Bytes.create n in
  let prev = Bytes.of_string iv in
  let block = Bytes.create 16 in
  for i = 0 to (n / 16) - 1 do
    Bytes.blit padded (i * 16) block 0 16;
    xor_into block 0 prev 0 16;
    Aes.encrypt_block_into key block 0 out (i * 16);
    Bytes.blit out (i * 16) prev 0 16
  done;
  Bytes.to_string out

let cbc_decrypt ~key ~iv cipher =
  if String.length iv <> 16 then invalid_arg "Modes.cbc_decrypt: iv must be 16 bytes";
  let n = String.length cipher in
  if n = 0 || n mod 16 <> 0 then Error "cbc: ciphertext not block aligned"
  else begin
    let src = Bytes.of_string cipher in
    let out = Bytes.create n in
    let prev = Bytes.of_string iv in
    for i = 0 to (n / 16) - 1 do
      Aes.decrypt_block_into key src (i * 16) out (i * 16);
      xor_into out (i * 16) prev 0 16;
      Bytes.blit src (i * 16) prev 0 16
    done;
    pkcs7_unpad (Bytes.to_string out)
  end

(* -- CTR ----------------------------------------------------------- *)

let incr_counter ctr =
  let rec bump i =
    if i < 0 then ()
    else begin
      let v = (Char.code (Bytes.get ctr i) + 1) land 0xff in
      Bytes.set ctr i (Char.chr v);
      if v = 0 then bump (i - 1)
    end
  in
  bump 15

let ctr_transform ~key ~nonce data =
  if String.length nonce <> 16 then
    invalid_arg "Modes.ctr_transform: nonce must be 16 bytes";
  let n = String.length data in
  let out = Bytes.of_string data in
  let ctr = Bytes.of_string nonce in
  let keystream = Bytes.create 16 in
  let off = ref 0 in
  while !off < n do
    Aes.encrypt_block_into key ctr 0 keystream 0;
    let len = min 16 (n - !off) in
    xor_into out !off keystream 0 len;
    incr_counter ctr;
    off := !off + 16
  done;
  Bytes.to_string out
