(** SHA-256 (FIPS 180-4), from scratch.

    Digests are raw 32-byte strings; use {!Hex.of_string} to render.
    The streaming interface is not thread-safe (shared schedule
    scratch), which is fine for the single-domain simulator. *)

type ctx
(** Streaming hash context. *)

val init : unit -> ctx
(** Fresh context. *)

val copy : ctx -> ctx
(** Independent clone of a mid-stream context. Feeding the copy does
    not disturb the original — this is what lets HMAC precompute and
    reuse the ipad/opad midstates for a long-lived key. *)

val update : ctx -> string -> unit
(** Absorb more message bytes. *)

val finalize : ctx -> string
(** Pad, finish, and return the 32-byte digest. The context must not be
    reused afterwards. *)

val digest : string -> string
(** One-shot digest of a full message. *)

val digest_list : string list -> string
(** Digest of the concatenation of [parts], without building it. *)

val hex : string -> string
(** [hex s] is [Hex.of_string (digest s)]. *)
