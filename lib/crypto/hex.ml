(* Hexadecimal encoding helpers used throughout the crypto test vectors
   and for printing digests in logs and audit records. *)

let of_string s =
  let b = Buffer.create (String.length s * 2) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Hex.to_string: not a hex digit"

let to_string h =
  let n = String.length h in
  if n mod 2 <> 0 then invalid_arg "Hex.to_string: odd length";
  String.init (n / 2) (fun i ->
      Char.chr ((digit h.[2 * i] lsl 4) lor digit h.[(2 * i) + 1]))
