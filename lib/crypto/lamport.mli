(** Lamport one-time signatures (hash-based, truly asymmetric).

    Used for the secure-boot certificate chain of the storage node:
    each key signs exactly one firmware measurement. Signing the same
    key twice halves its security, so callers must enforce one-time use. *)

type secret_key
type public_key

val generate : Drbg.t -> secret_key * public_key

val sign : secret_key -> string -> string array
(** Signature: 256 revealed 32-byte preimages (8 KiB). *)

val verify : public_key -> string -> string array -> bool

val public_key_fingerprint : public_key -> string
(** 32-byte digest identifying the public key (used in certificates). *)
