(** Keyed (HMAC-SHA256) Merkle tree for page-store integrity and
    freshness, as in IronSafe §4.1: leaves are per-page HMAC tags,
    internal nodes HMAC the concatenation of their children, and only
    the root needs rollback protection (anchored in RPMB). *)

type t

val create : key:string -> leaves:int -> t
(** Tree over [leaves] pages, all initially holding the empty-leaf tag.
    Capacity rounds up to a power of two. *)

val leaf_count : t -> int
val depth : t -> int

val root : t -> string
(** Current 32-byte root tag. *)

val leaf : t -> int -> string
(** Stored tag of leaf [i]. *)

val leaf_tag_of_data : t -> string -> string
(** The tag this tree assigns to raw page bytes. *)

val update : t -> int -> string -> unit
(** [update t i data] re-tags leaf [i] from page bytes and recomputes
    the root path. *)

val set_leaf : t -> int -> string -> unit
(** Like {!update} but with a precomputed tag. *)

type proof = { index : int; siblings : string list }
(** Authentication path from a leaf to the root. *)

val prove : t -> int -> proof

val verify :
  key:string -> root:string -> leaf_tag:string -> proof -> bool * int
(** [verify ~key ~root ~leaf_tag p] recomputes the path; returns whether
    it matches [root] and how many HMAC evaluations were performed (for
    cost accounting). *)

val hash_ops : t -> int
(** HMAC evaluations performed by this tree since last reset. *)

val reset_hash_ops : t -> unit

(** {2 Batched verification}

    Nearby leaves share almost all of their authentication path, so
    verifying a batch one {!prove}/{!verify} pair at a time wastes
    [depth] HMACs per leaf. A {!batch_verifier} memoizes path segments
    already chained to the root within the batch, collapsing the
    amortized cost to ~2 HMACs per contiguous leaf. *)

type batch_verifier

val batch_verifier : key:string -> t -> batch_verifier
(** Fresh verifier over the tree's current root. It reads sibling
    values from the live tree, so it must not span leaf updates. Each
    verifier owns its memo and op counter: create one per thread when
    verifying in parallel over a quiescent tree. *)

val verify_leaf : batch_verifier -> int -> leaf_tag:string -> bool
(** [verify_leaf bv i ~leaf_tag] checks that [leaf_tag] at leaf [i]
    authenticates against the root snapshotted at verifier creation. *)

val batch_hash_ops : batch_verifier -> int
(** HMAC evaluations performed through this verifier (for cost
    accounting). *)
