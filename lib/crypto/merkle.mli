(** Keyed (HMAC-SHA256) Merkle tree for page-store integrity and
    freshness, as in IronSafe §4.1: leaves are per-page HMAC tags,
    internal nodes HMAC the concatenation of their children, and only
    the root needs rollback protection (anchored in RPMB). *)

type t

val create : key:string -> leaves:int -> t
(** Tree over [leaves] pages, all initially holding the empty-leaf tag.
    Capacity rounds up to a power of two. *)

val leaf_count : t -> int
val depth : t -> int

val root : t -> string
(** Current 32-byte root tag. *)

val leaf : t -> int -> string
(** Stored tag of leaf [i]. *)

val leaf_tag_of_data : t -> string -> string
(** The tag this tree assigns to raw page bytes. *)

val update : t -> int -> string -> unit
(** [update t i data] re-tags leaf [i] from page bytes and recomputes
    the root path. *)

val set_leaf : t -> int -> string -> unit
(** Like {!update} but with a precomputed tag. *)

type proof = { index : int; siblings : string list }
(** Authentication path from a leaf to the root. *)

val prove : t -> int -> proof

val verify :
  key:string -> root:string -> leaf_tag:string -> proof -> bool * int
(** [verify ~key ~root ~leaf_tag p] recomputes the path; returns whether
    it matches [root] and how many HMAC evaluations were performed (for
    cost accounting). *)

val hash_ops : t -> int
(** HMAC evaluations performed by this tree since last reset. *)

val reset_hash_ops : t -> unit
