(** Hexadecimal encoding of binary strings. *)

val of_string : string -> string
(** [of_string s] is the lowercase hex rendering of the raw bytes [s]. *)

val to_string : string -> string
(** [to_string h] decodes hex [h] back to raw bytes.
    @raise Invalid_argument on odd length or non-hex characters. *)
