(* AES-128/AES-256 (FIPS 197), from scratch.

   The S-box is computed at module initialization from the GF(2^8)
   multiplicative inverse (via log/antilog tables over generator 0x03)
   followed by the standard affine transform, rather than transcribed
   as a 256-entry literal — less room for typos, and the tests pin the
   FIPS-197 known-answer vectors anyway. *)

let xtime b =
  let b = b lsl 1 in
  if b land 0x100 <> 0 then (b lxor 0x1b) land 0xff else b

(* log/antilog tables for GF(2^8) with generator 3 *)
let alog = Array.make 256 0
let log_ = Array.make 256 0

let () =
  let x = ref 1 in
  for i = 0 to 254 do
    alog.(i) <- !x;
    log_.(!x) <- i;
    (* multiply by generator 3 = x * 2 + x *)
    x := xtime !x lxor !x
  done;
  alog.(255) <- alog.(0)

let gmul a b =
  if a = 0 || b = 0 then 0 else alog.((log_.(a) + log_.(b)) mod 255)

let ginv a = if a = 0 then 0 else alog.(255 - log_.(a))
let rotl8 b n = ((b lsl n) lor (b lsr (8 - n))) land 0xff

let sbox = Array.make 256 0
let inv_sbox = Array.make 256 0

let () =
  for i = 0 to 255 do
    let b = ginv i in
    let s = b lxor rotl8 b 1 lxor rotl8 b 2 lxor rotl8 b 3 lxor rotl8 b 4 in
    sbox.(i) <- s lxor 0x63
  done;
  Array.iteri (fun i s -> inv_sbox.(s) <- i) sbox

let block_size = 16

(* T-tables for the table-driven implementation (one 32-bit word per
   byte value per table). te/td follow the standard formulation:
     te0[x] = (2s, s, s, 3s)        with s = sbox[x]
     td0[x] = (14i, 9i, 13i, 11i)   with i = inv_sbox applied upstream
   Built at init from the computed S-box — again no literal tables. *)

let pack a b c d = (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d
let rot32 x n = ((x lsr n) lor (x lsl (32 - n))) land 0xffffffff

let te0 = Array.make 256 0
let te1 = Array.make 256 0
let te2 = Array.make 256 0
let te3 = Array.make 256 0
let td0 = Array.make 256 0
let td1 = Array.make 256 0
let td2 = Array.make 256 0
let td3 = Array.make 256 0

let () =
  for x = 0 to 255 do
    let s = sbox.(x) in
    let e = pack (gmul s 2) s s (gmul s 3) in
    te0.(x) <- e;
    te1.(x) <- rot32 e 8;
    te2.(x) <- rot32 e 16;
    te3.(x) <- rot32 e 24;
    let i = inv_sbox.(x) in
    let d = pack (gmul i 14) (gmul i 9) (gmul i 13) (gmul i 11) in
    td0.(x) <- d;
    td1.(x) <- rot32 d 8;
    td2.(x) <- rot32 d 16;
    td3.(x) <- rot32 d 24
  done

(* Expanded key: forward schedule for encryption plus the equivalent
   inverse cipher schedule (round keys reversed, InvMixColumns applied
   to the middle rounds) for decryption. 10 rounds for 128-bit keys,
   14 for 256-bit. *)
type key = { enc : int array; dec : int array; rounds : int }

let inv_mix_word w =
  let a = (w lsr 24) land 0xff
  and b = (w lsr 16) land 0xff
  and c = (w lsr 8) land 0xff
  and d = w land 0xff in
  pack
    (gmul a 14 lxor gmul b 11 lxor gmul c 13 lxor gmul d 9)
    (gmul a 9 lxor gmul b 14 lxor gmul c 11 lxor gmul d 13)
    (gmul a 13 lxor gmul b 9 lxor gmul c 14 lxor gmul d 11)
    (gmul a 11 lxor gmul b 13 lxor gmul c 9 lxor gmul d 14)

let sub_word v =
  (sbox.((v lsr 24) land 0xff) lsl 24)
  lor (sbox.((v lsr 16) land 0xff) lsl 16)
  lor (sbox.((v lsr 8) land 0xff) lsl 8)
  lor sbox.(v land 0xff)

let expand_key key_str =
  let nk =
    match String.length key_str with
    | 16 -> 4
    | 32 -> 8
    | _ -> invalid_arg "Aes.expand_key: need 16 or 32 bytes"
  in
  let rounds = nk + 6 in
  let words = 4 * (rounds + 1) in
  let w = Array.make words 0 in
  for i = 0 to nk - 1 do
    w.(i) <-
      (Char.code key_str.[4 * i] lsl 24)
      lor (Char.code key_str.[(4 * i) + 1] lsl 16)
      lor (Char.code key_str.[(4 * i) + 2] lsl 8)
      lor Char.code key_str.[(4 * i) + 3]
  done;
  let rcon = ref 1 in
  for i = nk to words - 1 do
    let temp = w.(i - 1) in
    let temp =
      if i mod nk = 0 then begin
        let rotated = ((temp lsl 8) lor (temp lsr 24)) land 0xffffffff in
        let v = sub_word rotated lxor (!rcon lsl 24) in
        rcon := xtime !rcon;
        v
      end
      else if nk > 6 && i mod nk = 4 then sub_word temp
      else temp
    in
    w.(i) <- w.(i - nk) lxor temp
  done;
  let dec = Array.make words 0 in
  for r = 0 to rounds do
    for c = 0 to 3 do
      let src = w.(((rounds - r) * 4) + c) in
      dec.((r * 4) + c) <-
        (if r = 0 || r = rounds then src else inv_mix_word src)
    done
  done;
  { enc = w; dec; rounds }

(* Word load/store helpers. Offsets come from the block-mode drivers,
   which iterate in exact 16-byte steps over buffers they sized — the
   unchecked accessors keep the per-round cost to the table lookups. *)
let get_word src off =
  (Char.code (Bytes.unsafe_get src off) lsl 24)
  lor (Char.code (Bytes.unsafe_get src (off + 1)) lsl 16)
  lor (Char.code (Bytes.unsafe_get src (off + 2)) lsl 8)
  lor Char.code (Bytes.unsafe_get src (off + 3))

let get_word_str src off =
  (Char.code (String.unsafe_get src off) lsl 24)
  lor (Char.code (String.unsafe_get src (off + 1)) lsl 16)
  lor (Char.code (String.unsafe_get src (off + 2)) lsl 8)
  lor Char.code (String.unsafe_get src (off + 3))

let put_word dst off v =
  Bytes.unsafe_set dst off (Char.unsafe_chr ((v lsr 24) land 0xff));
  Bytes.unsafe_set dst (off + 1) (Char.unsafe_chr ((v lsr 16) land 0xff));
  Bytes.unsafe_set dst (off + 2) (Char.unsafe_chr ((v lsr 8) land 0xff));
  Bytes.unsafe_set dst (off + 3) (Char.unsafe_chr (v land 0xff))

(* Core rounds; [s0..s3] are the state words already whitened with
   round key 0. *)
let encrypt_core key i0 i1 i2 i3 dst doff =
  let w = key.enc in
  let rounds = key.rounds in
  let s0 = ref i0 and s1 = ref i1 and s2 = ref i2 and s3 = ref i3 in
  for r = 1 to rounds - 1 do
    let t0 =
      te0.(!s0 lsr 24)
      lxor te1.((!s1 lsr 16) land 0xff)
      lxor te2.((!s2 lsr 8) land 0xff)
      lxor te3.(!s3 land 0xff)
      lxor w.(4 * r)
    and t1 =
      te0.(!s1 lsr 24)
      lxor te1.((!s2 lsr 16) land 0xff)
      lxor te2.((!s3 lsr 8) land 0xff)
      lxor te3.(!s0 land 0xff)
      lxor w.((4 * r) + 1)
    and t2 =
      te0.(!s2 lsr 24)
      lxor te1.((!s3 lsr 16) land 0xff)
      lxor te2.((!s0 lsr 8) land 0xff)
      lxor te3.(!s1 land 0xff)
      lxor w.((4 * r) + 2)
    and t3 =
      te0.(!s3 lsr 24)
      lxor te1.((!s0 lsr 16) land 0xff)
      lxor te2.((!s1 lsr 8) land 0xff)
      lxor te3.(!s2 land 0xff)
      lxor w.((4 * r) + 3)
    in
    s0 := t0;
    s1 := t1;
    s2 := t2;
    s3 := t3
  done;
  let final a b c d k =
    (sbox.(!a lsr 24) lsl 24)
    lor (sbox.((!b lsr 16) land 0xff) lsl 16)
    lor (sbox.((!c lsr 8) land 0xff) lsl 8)
    lor sbox.(!d land 0xff)
    lxor k
  in
  put_word dst doff (final s0 s1 s2 s3 w.(4 * rounds));
  put_word dst (doff + 4) (final s1 s2 s3 s0 w.((4 * rounds) + 1));
  put_word dst (doff + 8) (final s2 s3 s0 s1 w.((4 * rounds) + 2));
  put_word dst (doff + 12) (final s3 s0 s1 s2 w.((4 * rounds) + 3))

let encrypt_block_into key src soff dst doff =
  let w = key.enc in
  encrypt_core key
    (get_word src soff lxor w.(0))
    (get_word src (soff + 4) lxor w.(1))
    (get_word src (soff + 8) lxor w.(2))
    (get_word src (soff + 12) lxor w.(3))
    dst doff

let encrypt_str_into key src soff dst doff =
  let w = key.enc in
  encrypt_core key
    (get_word_str src soff lxor w.(0))
    (get_word_str src (soff + 4) lxor w.(1))
    (get_word_str src (soff + 8) lxor w.(2))
    (get_word_str src (soff + 12) lxor w.(3))
    dst doff

let decrypt_core key i0 i1 i2 i3 dst doff =
  let w = key.dec in
  let rounds = key.rounds in
  let s0 = ref i0 and s1 = ref i1 and s2 = ref i2 and s3 = ref i3 in
  for r = 1 to rounds - 1 do
    let t0 =
      td0.(!s0 lsr 24)
      lxor td1.((!s3 lsr 16) land 0xff)
      lxor td2.((!s2 lsr 8) land 0xff)
      lxor td3.(!s1 land 0xff)
      lxor w.(4 * r)
    and t1 =
      td0.(!s1 lsr 24)
      lxor td1.((!s0 lsr 16) land 0xff)
      lxor td2.((!s3 lsr 8) land 0xff)
      lxor td3.(!s2 land 0xff)
      lxor w.((4 * r) + 1)
    and t2 =
      td0.(!s2 lsr 24)
      lxor td1.((!s1 lsr 16) land 0xff)
      lxor td2.((!s0 lsr 8) land 0xff)
      lxor td3.(!s3 land 0xff)
      lxor w.((4 * r) + 2)
    and t3 =
      td0.(!s3 lsr 24)
      lxor td1.((!s2 lsr 16) land 0xff)
      lxor td2.((!s1 lsr 8) land 0xff)
      lxor td3.(!s0 land 0xff)
      lxor w.((4 * r) + 3)
    in
    s0 := t0;
    s1 := t1;
    s2 := t2;
    s3 := t3
  done;
  let final a b c d k =
    (inv_sbox.(!a lsr 24) lsl 24)
    lor (inv_sbox.((!b lsr 16) land 0xff) lsl 16)
    lor (inv_sbox.((!c lsr 8) land 0xff) lsl 8)
    lor inv_sbox.(!d land 0xff)
    lxor k
  in
  put_word dst doff (final s0 s3 s2 s1 w.(4 * rounds));
  put_word dst (doff + 4) (final s1 s0 s3 s2 w.((4 * rounds) + 1));
  put_word dst (doff + 8) (final s2 s1 s0 s3 w.((4 * rounds) + 2));
  put_word dst (doff + 12) (final s3 s2 s1 s0 w.((4 * rounds) + 3))

let decrypt_block_into key src soff dst doff =
  let w = key.dec in
  decrypt_core key
    (get_word src soff lxor w.(0))
    (get_word src (soff + 4) lxor w.(1))
    (get_word src (soff + 8) lxor w.(2))
    (get_word src (soff + 12) lxor w.(3))
    dst doff

let decrypt_str_into key src soff dst doff =
  let w = key.dec in
  decrypt_core key
    (get_word_str src soff lxor w.(0))
    (get_word_str src (soff + 4) lxor w.(1))
    (get_word_str src (soff + 8) lxor w.(2))
    (get_word_str src (soff + 12) lxor w.(3))
    dst doff

let encrypt_block key plain =
  if String.length plain <> 16 then invalid_arg "Aes.encrypt_block: need 16 bytes";
  let dst = Bytes.create 16 in
  encrypt_str_into key plain 0 dst 0;
  Bytes.unsafe_to_string dst

let decrypt_block key cipher =
  if String.length cipher <> 16 then invalid_arg "Aes.decrypt_block: need 16 bytes";
  let dst = Bytes.create 16 in
  decrypt_str_into key cipher 0 dst 0;
  Bytes.unsafe_to_string dst
