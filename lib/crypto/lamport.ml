(* Lamport one-time signatures over SHA-256 — genuinely asymmetric and
   implementable without bignum arithmetic, used for the secure-boot
   certificate chain (each boot-stage image is signed once, matching the
   one-time constraint). Keys: 2x256 random 32-byte preimages; public
   key is their hashes; a signature reveals one preimage per digest bit. *)

let preimages = 256 (* one pair per digest bit *)

type secret_key = { sk0 : string array; sk1 : string array }
type public_key = { pk0 : string array; pk1 : string array }

let generate drbg =
  let fresh () = Array.init preimages (fun _ -> Drbg.generate drbg 32) in
  let sk0 = fresh () and sk1 = fresh () in
  let sk = { sk0; sk1 } in
  let pk = { pk0 = Array.map Sha256.digest sk0; pk1 = Array.map Sha256.digest sk1 } in
  (sk, pk)

let bit digest i = (Char.code digest.[i / 8] lsr (7 - (i mod 8))) land 1

let sign sk msg =
  let d = Sha256.digest msg in
  Array.init preimages (fun i -> if bit d i = 0 then sk.sk0.(i) else sk.sk1.(i))

let verify pk msg signature =
  Array.length signature = preimages
  && begin
       let d = Sha256.digest msg in
       let ok = ref true in
       for i = 0 to preimages - 1 do
         let expected = if bit d i = 0 then pk.pk0.(i) else pk.pk1.(i) in
         if not (Constant_time.equal (Sha256.digest signature.(i)) expected) then
           ok := false
       done;
       !ok
     end

let public_key_fingerprint pk =
  Sha256.digest
    (String.concat "" (Array.to_list pk.pk0)
    ^ String.concat "" (Array.to_list pk.pk1))
