(** Lane fan-out for data-parallel crypto kernels. *)

val available : unit -> int
(** Number of hardware lanes worth spawning
    ({!Domain.recommended_domain_count}); 1 on a single-core host. *)

val run : lanes:int -> (int -> unit) -> unit
(** [run ~lanes f] executes [f 0 .. f (lanes - 1)] — lane 0 on the
    calling domain, the others on spawned domains — and returns when all
    lanes complete. Lanes must only touch disjoint or immutable state.
    [lanes <= 1] runs inline without spawning. If any lane raises, the
    first exception is re-raised after all lanes are joined. *)
