(** Deterministic random bit generator (HMAC-DRBG, SP 800-90A).

    Deterministic seeding keeps the whole simulator reproducible: the
    same seed yields the same keys, IVs and workload data. *)

type t

val create : seed:string -> t
(** Instantiate from seed material (any length). *)

val generate : t -> int -> string
(** [generate t n] returns [n] fresh pseudorandom bytes. *)

val reseed : t -> string -> unit
(** Mix additional entropy into the state. *)

val uniform : t -> int -> int
(** [uniform t bound] draws uniformly from [0, bound) without modulo
    bias. @raise Invalid_argument if [bound <= 0] or [bound > 2^30]. *)
