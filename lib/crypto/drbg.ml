(* HMAC-DRBG (NIST SP 800-90A, SHA-256 instantiation), without
   prediction-resistance reseeding. The simulator needs deterministic
   randomness so experiments and attack demos are reproducible: every
   generator is seeded explicitly. *)

type t = { mutable key : string; mutable value : string }

let update t provided =
  t.key <- Hmac.mac ~key:t.key (t.value ^ "\x00" ^ provided);
  t.value <- Hmac.mac ~key:t.key t.value;
  if provided <> "" then begin
    t.key <- Hmac.mac ~key:t.key (t.value ^ "\x01" ^ provided);
    t.value <- Hmac.mac ~key:t.key t.value
  end

let create ~seed =
  let t = { key = String.make 32 '\000'; value = String.make 32 '\001' } in
  update t seed;
  t

let generate t len =
  let buf = Buffer.create len in
  while Buffer.length buf < len do
    t.value <- Hmac.mac ~key:t.key t.value;
    Buffer.add_string buf t.value
  done;
  update t "";
  String.sub (Buffer.contents buf) 0 len

let reseed t seed = update t seed

(* Uniform int in [0, bound) by rejection sampling over 30-bit chunks. *)
let uniform t bound =
  if bound <= 0 then invalid_arg "Drbg.uniform: bound must be positive";
  let limit = 1 lsl 30 in
  if bound > limit then invalid_arg "Drbg.uniform: bound too large";
  let cap = limit - (limit mod bound) in
  let rec draw () =
    let b = generate t 4 in
    let v =
      (Char.code b.[0] lsl 22)
      lor (Char.code b.[1] lsl 14)
      lor (Char.code b.[2] lsl 6)
      lor (Char.code b.[3] lsr 2)
    in
    if v < cap then v mod bound else draw ()
  in
  draw ()
