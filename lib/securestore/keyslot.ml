(* Key hierarchy of the secure storage system (§4.1 / §5):

     hardware unique key (HUK, fused into the SoC)
       |- RPMB authentication key      (programs the RPMB)
       |- TASK: TA storage key         (HMACs the Merkle root in RPMB)
     data encryption key (generated at init, persisted in RPMB slot 0)
       |- page encryption key (AES)
       |- page/Merkle MAC key

   Deriving both page keys from the stored data key keeps RPMB usage to
   one slot while separating encryption from authentication keys. *)

type t = {
  rpmb_auth_key : string;
  task_key : string;
  data_key : string;
  page_enc_key : string;
  page_mac_key : string;
}

let derive_rpmb_auth_key ~hardware_key =
  Ironsafe_crypto.Hkdf.derive ~ikm:hardware_key ~info:"ironsafe-rpmb-auth" 32

let derive_task_key ~hardware_key =
  Ironsafe_crypto.Hkdf.derive ~ikm:hardware_key ~info:"ironsafe-task" 16

let of_data_key ~hardware_key ~data_key =
  {
    rpmb_auth_key = derive_rpmb_auth_key ~hardware_key;
    task_key = derive_task_key ~hardware_key;
    data_key;
    (* 256-bit AES, matching the paper's SQLCipher configuration *)
    page_enc_key = Ironsafe_crypto.Hkdf.derive ~ikm:data_key ~info:"page-enc" 32;
    page_mac_key = Ironsafe_crypto.Hkdf.derive ~ikm:data_key ~info:"page-mac" 32;
  }

let generate ~hardware_key drbg =
  of_data_key ~hardware_key ~data_key:(Ironsafe_crypto.Drbg.generate drbg 32)

let rpmb_auth_key t = t.rpmb_auth_key
let task_key t = t.task_key
let data_key t = t.data_key
let page_enc_key t = t.page_enc_key
let page_mac_key t = t.page_mac_key
