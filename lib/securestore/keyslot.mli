(** Key hierarchy rooted in the device's hardware unique key. *)

type t

val generate : hardware_key:string -> Ironsafe_crypto.Drbg.t -> t
(** Fresh data key (first boot / database initialization). *)

val of_data_key : hardware_key:string -> data_key:string -> t
(** Rebuild the hierarchy from a data key recovered from RPMB. *)

val derive_rpmb_auth_key : hardware_key:string -> string
val derive_task_key : hardware_key:string -> string

val rpmb_auth_key : t -> string
val task_key : t -> string
val data_key : t -> string
val page_enc_key : t -> string
val page_mac_key : t -> string
