(** Encrypted, integrity- and freshness-protected page store over an
    untrusted block device, anchored in RPMB (IronSafe §4.1).

    Every read verifies (1) the per-page HMAC, (2) the Merkle path to
    the root, and (3) the root against the replay-protected RPMB
    anchor; every write re-anchors the new root. Crypto operation
    counts are exposed for the simulator's cost attribution. *)

type t

val capacity : int
(** Plaintext bytes that fit in one protected page (page size minus
    IV, MAC and length header). *)

type stats = {
  mutable page_decrypts : int;
  mutable page_encrypts : int;
  mutable page_mac_checks : int;
  mutable merkle_hashes : int;
  mutable rpmb_accesses : int;
  mutable device_reads : int;
  mutable device_writes : int;
}

type error =
  | Tampered_page of int
  | Stale_root
  | Rpmb_error of Ironsafe_storage.Rpmb.error
  | Corrupt_page of int * string

val pp_error : Format.formatter -> error -> unit

val device_pages_for : data_pages:int -> int
(** Device pages needed for [data_pages] of data plus Merkle metadata. *)

type key_mode =
  | Single_key  (** one AES key for every page (the paper's default) *)
  | Per_page_keys  (** per-page keys derived from the data key (§4.1) *)

type page_mode =
  | Cbc  (** AES-CBC + PKCS#7, serial per block (the paper's default) *)
  | Ctr
      (** AES-CTR: identical page layout and MAC coverage (the nonce
          lives in the IV slot), but every 16-byte block is
          independently decryptable, enabling multi-lane decrypt.
          Nonces are derived from (per-boot salt, page id, write
          epoch), never reused per key. *)

val initialize :
  ?key_mode:key_mode ->
  ?page_mode:page_mode ->
  device:Ironsafe_storage.Block_device.t ->
  rpmb:Ironsafe_storage.Rpmb.t ->
  hardware_key:string ->
  data_pages:int ->
  drbg:Ironsafe_crypto.Drbg.t ->
  unit ->
  (t, error) result
(** First boot: generates and persists the data key, anchors an empty
    tree. *)

val open_existing :
  ?key_mode:key_mode ->
  ?page_mode:page_mode ->
  device:Ironsafe_storage.Block_device.t ->
  rpmb:Ironsafe_storage.Rpmb.t ->
  hardware_key:string ->
  data_pages:int ->
  drbg:Ironsafe_crypto.Drbg.t ->
  unit ->
  (t, error) result
(** Reboot path: recovers keys from RPMB, rebuilds the tree from
    on-device tags, and detects rollback/fork via the anchored root.
    [key_mode] and [page_mode] must match the modes used at
    initialization. *)

val set_faults : t -> Ironsafe_fault.Fault.t -> unit
(** Attach the deployment's fault plan. Under a plan, the recovery
    layer activates: failed page verifications are re-read up to a
    bounded budget before surfacing the typed error, and RPMB counter
    desyncs are re-synced by refetching the device counter. Without a
    plan (the default) every failure surfaces on the first attempt —
    genuine attacks are never retried away. *)

val write_page : t -> int -> string -> (unit, error) result
val read_page : t -> int -> (string, error) result

val read_pages : t -> ?lanes:int -> int list -> (string list, error) result
(** Batched verified read with the same per-page checks as
    {!read_page}, but amortized across the batch: one root-freshness
    check, Merkle paths verified with shared ancestor work, and the
    MAC/decrypt work of the batch fanned out over [lanes] domains
    (default 1 = inline). Results are in request order; a page that
    fails in the batch is retried through {!read_page}'s recovery
    budget before the error is surfaced. *)

val page_mode : t -> page_mode

val data_page_count : t -> int
val stats : t -> stats
val reset_stats : t -> unit
