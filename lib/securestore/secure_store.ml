(* Encrypted, integrity- and freshness-protected page store (§4.1).

   On-device layout:
     pages [0, data_pages)                   data region
     pages [data_pages, data_pages + meta)   Merkle leaf-tag region

   Each data page holds:  IV(16) | MAC(32) | len(2) | ciphertext | fill
   MAC = HMAC(page_mac_key, index | IV | ciphertext): binds the
   ciphertext to its slot. Leaf tags feed a keyed Merkle tree whose
   root, HMACed under TASK (a key derived from the hardware unique
   key), lives in RPMB — so rollback of either data or metadata region
   is caught against the replay-protected counter'd slot.

   [stats] counts every crypto operation so the simulator can charge
   freshness/decryption time exactly as incurred. *)

module C = Ironsafe_crypto
module S = Ironsafe_storage
module Obs = Ironsafe_obs.Obs
module Fault = Ironsafe_fault.Fault

(* metrics scope for the observability registry *)
let obs_scope = "securestore"

let header_len = 16 + 32 + 2

(* Plaintext capacity: page minus header minus up-to-one-block CBC
   padding expansion. *)
let capacity = S.Block_device.page_size - header_len - 16

type stats = {
  mutable page_decrypts : int;
  mutable page_encrypts : int;
  mutable page_mac_checks : int;
  mutable merkle_hashes : int;
  mutable rpmb_accesses : int;
  mutable device_reads : int;
  mutable device_writes : int;
}

let fresh_stats () =
  {
    page_decrypts = 0;
    page_encrypts = 0;
    page_mac_checks = 0;
    merkle_hashes = 0;
    rpmb_accesses = 0;
    device_reads = 0;
    device_writes = 0;
  }

type error =
  | Tampered_page of int
  | Stale_root
  | Rpmb_error of S.Rpmb.error
  | Corrupt_page of int * string

let pp_error ppf = function
  | Tampered_page i -> Fmt.pf ppf "page %d failed integrity/freshness check" i
  | Stale_root -> Fmt.string ppf "Merkle root does not match RPMB anchor (rollback?)"
  | Rpmb_error e -> Fmt.pf ppf "RPMB: %a" S.Rpmb.pp_error e
  | Corrupt_page (i, msg) -> Fmt.pf ppf "page %d corrupt: %s" i msg

(* Key management scheme (§4.1: "IronSafe uses a single secret
   (symmetric) key to encrypt all the data units, but other management
   schemes can be adopted (e.g., one key per unit)"). [Per_page]
   derives each page's AES key from the data key and the page index,
   bounding the blast radius of a single page-key compromise. *)
type key_mode = Single_key | Per_page_keys

(* Page cipher mode. CBC is the paper's SQLCipher-style default; CTR
   keeps the MAC-then-anchor layout bit-for-bit identical (the nonce
   simply lives in the IV slot and is MACed the same way) but makes
   each 16-byte block of a page independently decryptable, which is
   what allows a multi-lane decrypt to split one page — or a batch of
   pages — across cores. *)
type page_mode = Cbc | Ctr

type t = {
  device : S.Block_device.t;
  rpmb : S.Rpmb.t;
  keys : Keyslot.t;
  key_mode : key_mode;
  page_mode : page_mode;
  mutable write_epoch : int;
      (* monotone per-store write counter; CTR nonces derive from it *)
  nonce_salt : string;
      (* 16 DRBG bytes drawn per boot (CTR mode only): nonces stay
         unique across reboots without persisting the epoch counter *)
  enc_key : C.Aes.key; (* Single_key mode *)
  mutable page_keys : C.Aes.key option array; (* Per_page_keys cache *)
  merkle : C.Merkle.t;
  drbg : C.Drbg.t;
  data_pages : int;
  stats : stats;
  mutable anchored_root : string; (* last root HMAC written to RPMB *)
  page_mac_prekey : C.Hmac.prekey; (* page MAC key, ipad/opad absorbed once *)
  task_prekey : C.Hmac.prekey; (* TASK key, for the anchored-root MAC *)
  mutable root_mac_memo : (string * string) option;
      (* (root, HMAC_TASK(root)) of the last root MAC computed: every
         page read must compare the current root's MAC against the
         RPMB anchor, but between writes the root does not move, so
         the HMAC is recomputed only when the root value changes. Keyed
         on the root bytes themselves, the memo can never serve a MAC
         for a root other than the current one — a write or an RPMB
         resync changes the root (or the anchor) and misses the memo. *)
  mutable faults : Fault.t;
      (* fault plan shared with the device/RPMB; gates the recovery
         paths (re-read, counter re-sync) so they stay inert — and
         genuine attacks stay hard failures — without a plan *)
}

let set_faults t plan = t.faults <- plan

(* Bounded retry budgets of the recovery layer (§ robustness): how many
   times a failed page read is re-attempted and a desynced RPMB write
   is re-synced before the error is surfaced as a typed violation. *)
let read_retry_budget = 3
let rpmb_retry_budget = 3

let page_key t index =
  match t.key_mode with
  | Single_key -> t.enc_key
  | Per_page_keys -> (
      match t.page_keys.(index) with
      | Some k -> k
      | None ->
          let k =
            C.Aes.expand_key
              (C.Hkdf.derive
                 ~ikm:(Keyslot.data_key t.keys)
                 ~info:(Printf.sprintf "page-enc-%d" index)
                 32)
          in
          t.page_keys.(index) <- Some k;
          k)

let data_key_slot = 0
let root_slot = 1
let tags_per_page = S.Block_device.page_size / 32

let meta_pages_for data_pages = (data_pages + tags_per_page - 1) / tags_per_page
let device_pages_for ~data_pages = data_pages + meta_pages_for data_pages
let data_page_count t = t.data_pages
let stats t = t.stats

let reset_stats t =
  let s = t.stats in
  s.page_decrypts <- 0;
  s.page_encrypts <- 0;
  s.page_mac_checks <- 0;
  s.merkle_hashes <- 0;
  s.rpmb_accesses <- 0;
  s.device_reads <- 0;
  s.device_writes <- 0

let root_mac keys root = C.Hmac.mac ~key:(Keyslot.task_key keys) root

(* Memoized [root_mac t.keys (Merkle.root t.merkle)]: hit when the
   root is unchanged since the last computation, recomputed (and
   re-memoized) otherwise. *)
let current_root_mac t =
  let root = C.Merkle.root t.merkle in
  match t.root_mac_memo with
  | Some (r, m) when String.equal r root -> m
  | _ ->
      let m = C.Hmac.mac_pre t.task_prekey root in
      t.root_mac_memo <- Some (root, m);
      m

let anchor_root t =
  let mac = current_root_mac t in
  let mark = Fault.incident_count t.faults in
  let rec attempt n =
    let frame =
      S.Rpmb.make_write_frame
        ~key:(Keyslot.rpmb_auth_key t.keys)
        ~slot:root_slot ~payload:mac
        ~write_counter:(S.Rpmb.read_counter t.rpmb)
    in
    t.stats.rpmb_accesses <- t.stats.rpmb_accesses + 1;
    Obs.count ~scope:obs_scope "rpmb_accesses";
    match S.Rpmb.write t.rpmb frame with
    | Ok _ ->
        if n > 0 then Fault.note_recovered_since t.faults mark;
        t.anchored_root <- mac;
        Ok ()
    | Error (S.Rpmb.Counter_mismatch _)
      when Fault.enabled t.faults && n < rpmb_retry_budget ->
        (* counter desync: re-read the device counter and rebuild the
           frame (the frame above always refetches [read_counter]) *)
        Fault.note_retry t.faults ~action:"rpmb.resync";
        attempt (n + 1)
    | Error e -> Error (Rpmb_error e)
  in
  attempt 0

let persist_leaf_tag t index =
  let tag = C.Merkle.leaf t.merkle index in
  let meta_page = t.data_pages + (index / tags_per_page) in
  let page = Bytes.of_string (S.Block_device.read_page t.device meta_page) in
  t.stats.device_reads <- t.stats.device_reads + 1;
  Bytes.blit_string tag 0 page (index mod tags_per_page * 32) 32;
  S.Block_device.write_page t.device meta_page (Bytes.to_string page);
  t.stats.device_writes <- t.stats.device_writes + 1

(* MAC input: index | IV | ciphertext, fed to the prekeyed HMAC as
   parts so the concatenation is never materialized. *)
let mac_payload_parts index iv ciphertext =
  [ Printf.sprintf "%08d" index; iv; ciphertext ]

let page_mac t index iv ciphertext =
  C.Hmac.mac_pre_list t.page_mac_prekey (mac_payload_parts index iv ciphertext)

let page_mode t = t.page_mode

(* CTR nonce for one page write: hash of (boot salt, page id, epoch).
   The epoch bumps on every write and the salt is fresh per boot, so no
   (key, nonce) pair ever recurs — the CTR keystream is never reused
   even when the same page is rewritten, or written again after a
   reboot that restarts the epoch counter. The nonce travels in the
   page's IV slot and is bound by the page MAC exactly like a CBC IV. *)
let ctr_nonce t index =
  t.write_epoch <- t.write_epoch + 1;
  String.sub
    (C.Sha256.digest_list
       [
         "ironsafe-ctr-nonce";
         t.nonce_salt;
         Printf.sprintf "%08d|%016x" index t.write_epoch;
       ])
    0 16

(* Mode-dispatched page cipher. CTR ciphertext is plaintext-length
   (no padding); both fit the shared len field and leave [capacity]
   unchanged, so page packing is identical across modes. *)
let encrypt_payload t index ~iv plain =
  match t.page_mode with
  | Cbc -> C.Modes.cbc_encrypt ~key:(page_key t index) ~iv plain
  | Ctr -> C.Modes.ctr_transform ~key:(page_key t index) ~nonce:iv plain

let decrypt_payload t index ~iv ciphertext =
  match t.page_mode with
  | Cbc -> (
      match C.Modes.cbc_decrypt ~key:(page_key t index) ~iv ciphertext with
      | Ok plain -> Ok plain
      | Error msg -> Error (Corrupt_page (index, msg)))
  | Ctr -> Ok (C.Modes.ctr_transform ~key:(page_key t index) ~nonce:iv ciphertext)

(* Encrypt and store [plain] (<= capacity bytes) at data page [index]. *)
let write_page t index plain =
  if index < 0 || index >= t.data_pages then
    invalid_arg "Secure_store.write_page: index out of range";
  if String.length plain > capacity then
    invalid_arg "Secure_store.write_page: payload exceeds page capacity";
  Obs.count ~scope:obs_scope "pages_written";
  let iv =
    match t.page_mode with
    | Cbc -> C.Drbg.generate t.drbg 16
    | Ctr -> ctr_nonce t index
  in
  let ciphertext = encrypt_payload t index ~iv plain in
  t.stats.page_encrypts <- t.stats.page_encrypts + 1;
  Obs.count ~scope:obs_scope "page_encrypts";
  let mac = page_mac t index iv ciphertext in
  t.stats.page_mac_checks <- t.stats.page_mac_checks + 1;
  Obs.count ~scope:obs_scope "hmac_checks";
  let clen = String.length ciphertext in
  let page = Bytes.make S.Block_device.page_size '\000' in
  Bytes.blit_string iv 0 page 0 16;
  Bytes.blit_string mac 0 page 16 32;
  Bytes.set page 48 (Char.chr (clen lsr 8));
  Bytes.set page 49 (Char.chr (clen land 0xff));
  Bytes.blit_string ciphertext 0 page header_len clen;
  S.Block_device.write_page t.device index (Bytes.to_string page);
  t.stats.device_writes <- t.stats.device_writes + 1;
  C.Merkle.reset_hash_ops t.merkle;
  C.Merkle.set_leaf t.merkle index mac;
  t.stats.merkle_hashes <- t.stats.merkle_hashes + C.Merkle.hash_ops t.merkle;
  persist_leaf_tag t index;
  anchor_root t

(* One read-decrypt-verify attempt on data page [index]. *)
let read_page_once t index =
  Obs.count ~scope:obs_scope "pages_read";
  let raw = S.Block_device.read_page t.device index in
  t.stats.device_reads <- t.stats.device_reads + 1;
  let iv = String.sub raw 0 16 in
  let mac = String.sub raw 16 32 in
  let clen = (Char.code raw.[48] lsl 8) lor Char.code raw.[49] in
  if clen > S.Block_device.page_size - header_len then
    Error (Corrupt_page (index, "ciphertext length field out of range"))
  else begin
    let ciphertext = String.sub raw header_len clen in
    (* 1. page integrity: MAC over index|IV|ciphertext *)
    t.stats.page_mac_checks <- t.stats.page_mac_checks + 1;
    Obs.count ~scope:obs_scope "hmac_checks";
    if not (C.Constant_time.equal (page_mac t index iv ciphertext) mac) then
      Error (Tampered_page index)
    else begin
      (* 2. freshness: Merkle path from this leaf must reach the
         anchored root *)
      let proof = C.Merkle.prove t.merkle index in
      let ok, hashes =
        C.Merkle.verify
          ~key:(Keyslot.page_mac_key t.keys)
          ~root:(C.Merkle.root t.merkle) ~leaf_tag:mac proof
      in
      t.stats.merkle_hashes <- t.stats.merkle_hashes + hashes;
      Obs.count ~scope:obs_scope "merkle_verifies";
      if not ok then Error (Tampered_page index)
      else if not (C.Constant_time.equal (current_root_mac t) t.anchored_root)
      then Error Stale_root
      else begin
        (* 3. decrypt *)
        t.stats.page_decrypts <- t.stats.page_decrypts + 1;
        Obs.count ~scope:obs_scope "page_decrypts";
        decrypt_payload t index ~iv ciphertext
      end
    end
  end

(* Read with recovery: a MAC/Merkle mismatch or corrupt page is
   re-read and re-verified up to [read_retry_budget] times (transient
   media faults heal; genuine tampering and bit rot keep failing and
   surface as the typed error). Only active under a fault plan, so
   attack-path semantics without one are exactly one attempt. *)
let read_page t index =
  if index < 0 || index >= t.data_pages then
    invalid_arg "Secure_store.read_page: index out of range";
  let mark = Fault.incident_count t.faults in
  let rec attempt n =
    match read_page_once t index with
    | Ok plain ->
        if n > 0 then Fault.note_recovered_since t.faults mark;
        Ok plain
    | Error (Tampered_page _ | Corrupt_page _)
      when Fault.enabled t.faults && n < read_retry_budget ->
        Fault.note_retry t.faults ~action:"securestore.reread";
        Obs.count ~scope:obs_scope "page_rereads";
        attempt (n + 1)
    | Error e -> Error e
  in
  attempt 0

(* Batched verified read: the amortized, lane-parallel form of
   [read_page]. Three phases keep every mutable structure out of the
   fan-out:

     1. serial   — raw device reads, one root-vs-anchor freshness check
                   for the whole batch, per-page key prefetch;
     2. parallel — per-page MAC check, Merkle path verification (one
                   batch verifier per lane, sharing ancestor work
                   across the lane's pages) and decrypt, striped
                   round-robin so each result slot has one writer;
     3. serial   — stats/telemetry fold, and any page that failed in
                   the batch is retried through [read_page], which owns
                   the fault-recovery budget.

   Checks per page are exactly the [read_page_once] checks; only the
   Merkle path work is shared, which is sound because every shared
   segment was chained to the (anchor-checked) root when first
   verified. CBC batches parallelize across pages; CTR batches can
   also split inside a page, which is what the bench's multi-lane
   decrypt kernels exercise. *)
let read_pages t ?(lanes = 1) indices =
  let idx = Array.of_list indices in
  let n = Array.length idx in
  Array.iter
    (fun i ->
      if i < 0 || i >= t.data_pages then
        invalid_arg "Secure_store.read_pages: index out of range")
    idx;
  if n = 0 then Ok []
  else begin
    (* phase 1: serial device reads + one freshness check per batch *)
    let raw =
      Array.map
        (fun i ->
          t.stats.device_reads <- t.stats.device_reads + 1;
          S.Block_device.read_page t.device i)
        idx
    in
    Obs.count ~n ~scope:obs_scope "pages_read";
    if not (C.Constant_time.equal (current_root_mac t) t.anchored_root) then
      Error Stale_root
    else begin
      (* per-page keys are a lazily filled cache: prefetch serially so
         the fan-out never mutates it *)
      Array.iter (fun i -> ignore (page_key t i)) idx;
      let lanes = max 1 lanes in
      let out = Array.make n (Error Stale_root) in
      let lane_hashes = Array.make lanes 0 in
      (* phase 2: each lane owns slots lane, lane+lanes, ... *)
      let work lane =
        let bv =
          C.Merkle.batch_verifier ~key:(Keyslot.page_mac_key t.keys) t.merkle
        in
        let p = ref lane in
        while !p < n do
          let slot = !p in
          let index = idx.(slot) and page = raw.(slot) in
          let iv = String.sub page 0 16 in
          let mac = String.sub page 16 32 in
          let clen = (Char.code page.[48] lsl 8) lor Char.code page.[49] in
          out.(slot) <-
            (if clen > S.Block_device.page_size - header_len then
               Error (Corrupt_page (index, "ciphertext length field out of range"))
             else begin
               let ciphertext = String.sub page header_len clen in
               if not (C.Constant_time.equal (page_mac t index iv ciphertext) mac)
               then Error (Tampered_page index)
               else if not (C.Merkle.verify_leaf bv index ~leaf_tag:mac) then
                 Error (Tampered_page index)
               else decrypt_payload t index ~iv ciphertext
             end);
          p := !p + lanes
        done;
        lane_hashes.(lane) <- C.Merkle.batch_hash_ops bv
      in
      C.Lanes.run ~lanes work;
      (* phase 3: serial stats fold + per-page fault recovery *)
      t.stats.page_mac_checks <- t.stats.page_mac_checks + n;
      Obs.count ~n ~scope:obs_scope "hmac_checks";
      Array.iter
        (fun h -> t.stats.merkle_hashes <- t.stats.merkle_hashes + h)
        lane_hashes;
      Obs.count ~n ~scope:obs_scope "merkle_verifies";
      let decrypts =
        Array.fold_left
          (fun acc r -> match r with Ok _ -> acc + 1 | Error _ -> acc)
          0 out
      in
      t.stats.page_decrypts <- t.stats.page_decrypts + decrypts;
      Obs.count ~n:decrypts ~scope:obs_scope "page_decrypts";
      let rec collect k acc =
        if k < 0 then Ok acc
        else
          match out.(k) with
          | Ok plain -> collect (k - 1) (plain :: acc)
          | Error _ -> (
              match read_page t idx.(k) with
              | Ok plain -> collect (k - 1) (plain :: acc)
              | Error e -> Error e)
      in
      collect (n - 1) []
    end
  end

(* First-time initialization: generate data key, persist it to RPMB,
   build an empty Merkle tree over zeroed leaf tags. *)
let initialize ?(key_mode = Single_key) ?(page_mode = Cbc) ~device ~rpmb
    ~hardware_key ~data_pages ~drbg () =
  if device_pages_for ~data_pages > S.Block_device.page_count device then
    invalid_arg "Secure_store.initialize: device too small for data + metadata";
  let keys = Keyslot.generate ~hardware_key drbg in
  (match S.Rpmb.program_key rpmb (Keyslot.rpmb_auth_key keys) with
  | Ok () | Error S.Rpmb.Key_already_programmed -> ()
  | Error e -> invalid_arg (Fmt.str "Secure_store.initialize: %a" S.Rpmb.pp_error e));
  let key_frame =
    S.Rpmb.make_write_frame
      ~key:(Keyslot.rpmb_auth_key keys)
      ~slot:data_key_slot
      ~payload:(Keyslot.data_key keys)
      ~write_counter:(S.Rpmb.read_counter rpmb)
  in
  match S.Rpmb.write rpmb key_frame with
  | Error e -> Error (Rpmb_error e)
  | Ok _ ->
      let merkle =
        C.Merkle.create ~key:(Keyslot.page_mac_key keys) ~leaves:data_pages
      in
      let t =
        {
          device;
          rpmb;
          keys;
          key_mode;
          page_mode;
          write_epoch = 0;
          (* drawn only in CTR mode so the CBC DRBG stream — and with
             it every CBC ciphertext — is unchanged by mode selection *)
          nonce_salt =
            (match page_mode with
            | Cbc -> ""
            | Ctr -> C.Drbg.generate drbg 16);
          enc_key = C.Aes.expand_key (Keyslot.page_enc_key keys);
          page_keys = Array.make data_pages None;
          page_mac_prekey = C.Hmac.precompute ~key:(Keyslot.page_mac_key keys);
          task_prekey = C.Hmac.precompute ~key:(Keyslot.task_key keys);
          root_mac_memo = None;
          merkle;
          drbg;
          data_pages;
          stats = fresh_stats ();
          anchored_root = "";
          faults = Fault.none;
        }
      in
      (* persist initial (empty) leaf tags *)
      for i = 0 to data_pages - 1 do
        persist_leaf_tag t i
      done;
      (match anchor_root t with Ok () -> () | Error _ -> assert false);
      reset_stats t;
      Ok t

(* Re-open after reboot: recover the data key from RPMB, rebuild the
   Merkle tree from the on-device leaf tags, and require the resulting
   root to match the RPMB anchor. A rolled-back or forked medium fails
   here with [Stale_root]. *)
let open_existing ?(key_mode = Single_key) ?(page_mode = Cbc) ~device ~rpmb
    ~hardware_key ~data_pages ~drbg () =
  let rpmb_key = Keyslot.derive_rpmb_auth_key ~hardware_key in
  let nonce = C.Drbg.generate drbg 16 in
  match S.Rpmb.read rpmb ~nonce data_key_slot with
  | Error e -> Error (Rpmb_error e)
  | Ok key_frame ->
      if not (S.Rpmb.verify_read_response ~key:rpmb_key ~nonce key_frame) then
        Error (Rpmb_error S.Rpmb.Bad_mac)
      else begin
        let data_key = String.sub key_frame.S.Rpmb.payload 0 32 in
        let keys = Keyslot.of_data_key ~hardware_key ~data_key in
        let merkle =
          C.Merkle.create ~key:(Keyslot.page_mac_key keys) ~leaves:data_pages
        in
        let t =
          {
            device;
            rpmb;
            keys;
            key_mode;
            page_mode;
            write_epoch = 0;
            nonce_salt =
              (match page_mode with
              | Cbc -> ""
              | Ctr -> C.Drbg.generate drbg 16);
            enc_key = C.Aes.expand_key (Keyslot.page_enc_key keys);
            page_keys = Array.make data_pages None;
            page_mac_prekey = C.Hmac.precompute ~key:(Keyslot.page_mac_key keys);
            task_prekey = C.Hmac.precompute ~key:(Keyslot.task_key keys);
            root_mac_memo = None;
            merkle;
            drbg;
            data_pages;
            stats = fresh_stats ();
            anchored_root = "";
            faults = Fault.none;
          }
        in
        for i = 0 to data_pages - 1 do
          let meta_page = data_pages + (i / tags_per_page) in
          let raw = S.Block_device.read_page device meta_page in
          C.Merkle.set_leaf merkle i (String.sub raw (i mod tags_per_page * 32) 32)
        done;
        let nonce = C.Drbg.generate drbg 16 in
        match S.Rpmb.read rpmb ~nonce root_slot with
        | Error e -> Error (Rpmb_error e)
        | Ok root_frame ->
            if not (S.Rpmb.verify_read_response ~key:rpmb_key ~nonce root_frame)
            then Error (Rpmb_error S.Rpmb.Bad_mac)
            else begin
              let anchored = String.sub root_frame.S.Rpmb.payload 0 32 in
              if
                not
                  (C.Constant_time.equal
                     (root_mac keys (C.Merkle.root merkle))
                     anchored)
              then Error Stale_root
              else begin
                t.anchored_root <- anchored;
                reset_stats t;
                Ok t
              end
            end
      end
