(* The eight TPC-H tables (spec §1.4), in the engine's schema types. *)

open Ironsafe_sql

let region =
  Schema.create ~name:"region"
    ~columns:
      [
        ("r_regionkey", Value.TInt);
        ("r_name", Value.TStr);
        ("r_comment", Value.TStr);
      ]

let nation =
  Schema.create ~name:"nation"
    ~columns:
      [
        ("n_nationkey", Value.TInt);
        ("n_name", Value.TStr);
        ("n_regionkey", Value.TInt);
        ("n_comment", Value.TStr);
      ]

let supplier =
  Schema.create ~name:"supplier"
    ~columns:
      [
        ("s_suppkey", Value.TInt);
        ("s_name", Value.TStr);
        ("s_address", Value.TStr);
        ("s_nationkey", Value.TInt);
        ("s_phone", Value.TStr);
        ("s_acctbal", Value.TFloat);
        ("s_comment", Value.TStr);
      ]

let customer =
  Schema.create ~name:"customer"
    ~columns:
      [
        ("c_custkey", Value.TInt);
        ("c_name", Value.TStr);
        ("c_address", Value.TStr);
        ("c_nationkey", Value.TInt);
        ("c_phone", Value.TStr);
        ("c_acctbal", Value.TFloat);
        ("c_mktsegment", Value.TStr);
        ("c_comment", Value.TStr);
      ]

let part =
  Schema.create ~name:"part"
    ~columns:
      [
        ("p_partkey", Value.TInt);
        ("p_name", Value.TStr);
        ("p_mfgr", Value.TStr);
        ("p_brand", Value.TStr);
        ("p_type", Value.TStr);
        ("p_size", Value.TInt);
        ("p_container", Value.TStr);
        ("p_retailprice", Value.TFloat);
        ("p_comment", Value.TStr);
      ]

let partsupp =
  Schema.create ~name:"partsupp"
    ~columns:
      [
        ("ps_partkey", Value.TInt);
        ("ps_suppkey", Value.TInt);
        ("ps_availqty", Value.TInt);
        ("ps_supplycost", Value.TFloat);
        ("ps_comment", Value.TStr);
      ]

let orders =
  Schema.create ~name:"orders"
    ~columns:
      [
        ("o_orderkey", Value.TInt);
        ("o_custkey", Value.TInt);
        ("o_orderstatus", Value.TStr);
        ("o_totalprice", Value.TFloat);
        ("o_orderdate", Value.TDate);
        ("o_orderpriority", Value.TStr);
        ("o_clerk", Value.TStr);
        ("o_shippriority", Value.TInt);
        ("o_comment", Value.TStr);
      ]

let lineitem =
  Schema.create ~name:"lineitem"
    ~columns:
      [
        ("l_orderkey", Value.TInt);
        ("l_partkey", Value.TInt);
        ("l_suppkey", Value.TInt);
        ("l_linenumber", Value.TInt);
        ("l_quantity", Value.TFloat);
        ("l_extendedprice", Value.TFloat);
        ("l_discount", Value.TFloat);
        ("l_tax", Value.TFloat);
        ("l_returnflag", Value.TStr);
        ("l_linestatus", Value.TStr);
        ("l_shipdate", Value.TDate);
        ("l_commitdate", Value.TDate);
        ("l_receiptdate", Value.TDate);
        ("l_shipinstruct", Value.TStr);
        ("l_shipmode", Value.TStr);
        ("l_comment", Value.TStr);
      ]

let all = [ region; nation; supplier; customer; part; partsupp; orders; lineitem ]
let table_names = List.map Schema.name all
