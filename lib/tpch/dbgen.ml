(* Deterministic TPC-H data generator (dbgen equivalent).

   Row counts, key structure, value domains and date relationships
   follow the TPC-H specification; text columns use {!Text} pools. Two
   deliberate small-scale adjustments, documented in DESIGN.md: the
   "Customer Complaints" (Q16) and "special ... requests" (Q13) comment
   phrases are planted at 1% instead of the spec's rarer rates so the
   anti-join code paths are exercised at the sub-1 scale factors this
   repository benchmarks with. *)

open Ironsafe_sql
module C = Ironsafe_crypto

type counts = {
  suppliers : int;
  customers : int;
  parts : int;
  orders : int;
}

let counts_of_scale sf =
  let scale n = max 1 (int_of_float (float_of_int n *. sf)) in
  {
    suppliers = scale 10_000;
    customers = scale 150_000;
    parts = scale 200_000;
    orders = scale 1_500_000;
  }

type stats = { rows : (string * int) list; lineitems : int }

let start_date = Date.of_ymd ~y:1992 ~m:1 ~d:1
let end_order_date = Date.of_ymd ~y:1998 ~m:8 ~d:2
let current_date = Date.of_ymd ~y:1995 ~m:6 ~d:17

(* splitmix64: fast deterministic PRNG, seeded from the HMAC-DRBG so
   generation stays reproducible from the string seed but doesn't pay
   two SHA-256 compressions per random draw. *)
type gen = { mutable s : int64 }

let next g =
  g.s <- Int64.add g.s 0x9E3779B97F4A7C15L;
  let z = g.s in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let rand_int g bound =
  if bound <= 0 then invalid_arg "Dbgen.rand_int";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next g) 1) (Int64.of_int bound))

let uniform g lo hi = lo + rand_int g (hi - lo + 1)
let choice g arr = arr.(rand_int g (Array.length arr))
let money g lo hi = float_of_int (uniform g (lo * 100) (hi * 100)) /. 100.0
let chance g ~percent = rand_int g 100 < percent

let words g n pool =
  let rec go acc n = if n = 0 then acc else go (choice g pool :: acc) (n - 1) in
  String.concat " " (go [] n)

(* Comment text: adverb adjective nouns verb ... with optional planted
   phrase for the Q13/Q16 predicates. *)
let comment ?(plant = None) g =
  let base =
    String.concat " "
      [
        choice g Text.adverbs;
        choice g Text.adjectives;
        choice g Text.nouns;
        choice g Text.verbs;
        words g (uniform g 1 3) Text.nouns;
      ]
  in
  match plant with
  | Some phrase when chance g ~percent:1 ->
      let mid = choice g Text.adjectives in
      (match phrase with
      | `Complaints -> base ^ " Customer " ^ mid ^ " Complaints"
      | `Special_requests -> base ^ " special " ^ mid ^ " requests")
  | _ -> base

let phone g nationkey =
  Printf.sprintf "%d-%d-%d-%d" (10 + nationkey) (uniform g 100 999)
    (uniform g 100 999) (uniform g 1000 9999)

let retail_price partkey =
  float_of_int (90_000 + (((partkey / 10) mod 20_001) + (100 * (partkey mod 1_000))))
  /. 100.0

let populate ?(seed = "tpch-dbgen") db ~scale =
  let drbg = C.Drbg.create ~seed:(seed ^ Printf.sprintf "|%f" scale) in
  let seed_bytes = C.Drbg.generate drbg 8 in
  let s0 =
    let v = ref 0L in
    String.iter
      (fun c -> v := Int64.add (Int64.mul !v 256L) (Int64.of_int (Char.code c)))
      seed_bytes;
    !v
  in
  let g = { s = s0 } in
  let counts = counts_of_scale scale in
  List.iter (Database.create_table db) Tpch_schema.all;
  (* region *)
  let region_rows =
    List.init (Array.length Text.regions) (fun i ->
        [|
          Value.Int i;
          Value.Str Text.regions.(i);
          Value.Str (comment g);
        |])
  in
  Database.insert_rows db "region" region_rows;
  (* nation *)
  let nation_rows =
    List.init (Array.length Text.nations) (fun i ->
        let name, region = Text.nations.(i) in
        [| Value.Int i; Value.Str name; Value.Int region; Value.Str (comment g) |])
  in
  Database.insert_rows db "nation" nation_rows;
  let nations = Array.length Text.nations in
  (* supplier *)
  let supplier_rows =
    List.init counts.suppliers (fun i ->
        let k = i + 1 in
        let nationkey = rand_int g nations in
        [|
          Value.Int k;
          Value.Str (Printf.sprintf "Supplier#%09d" k);
          Value.Str (words g 3 Text.nouns);
          Value.Int nationkey;
          Value.Str (phone g nationkey);
          Value.Float (money g (-999) 9999);
          Value.Str (comment ~plant:(Some `Complaints) g);
        |])
  in
  Database.insert_rows db "supplier" supplier_rows;
  (* customer *)
  let customer_rows =
    List.init counts.customers (fun i ->
        let k = i + 1 in
        let nationkey = rand_int g nations in
        [|
          Value.Int k;
          Value.Str (Printf.sprintf "Customer#%09d" k);
          Value.Str (words g 3 Text.nouns);
          Value.Int nationkey;
          Value.Str (phone g nationkey);
          Value.Float (money g (-999) 9999);
          Value.Str (choice g Text.segments);
          Value.Str (comment g);
        |])
  in
  Database.insert_rows db "customer" customer_rows;
  (* part *)
  let part_rows =
    List.init counts.parts (fun i ->
        let k = i + 1 in
        let m = uniform g 1 5 in
        [|
          Value.Int k;
          Value.Str (words g 5 Text.colors);
          Value.Str (Printf.sprintf "Manufacturer#%d" m);
          Value.Str (Printf.sprintf "Brand#%d%d" m (uniform g 1 5));
          Value.Str
            (String.concat " "
               [
                 choice g Text.type_syllable_1;
                 choice g Text.type_syllable_2;
                 choice g Text.type_syllable_3;
               ]);
          Value.Int (uniform g 1 50);
          Value.Str
            (choice g Text.container_syllable_1
            ^ " "
            ^ choice g Text.container_syllable_2);
          Value.Float (retail_price k);
          Value.Str (comment g);
        |])
  in
  Database.insert_rows db "part" part_rows;
  (* partsupp: 4 suppliers per part, spec key-spreading formula *)
  let s = counts.suppliers in
  let partsupp_rows =
    List.concat
      (List.init counts.parts (fun i ->
           let partkey = i + 1 in
           List.init 4 (fun j ->
               let suppkey =
                 ((partkey + (j * ((s / 4) + ((partkey - 1) / s)))) mod s) + 1
               in
               [|
                 Value.Int partkey;
                 Value.Int suppkey;
                 Value.Int (uniform g 1 9999);
                 Value.Float (money g 1 1000);
                 Value.Str (comment g);
               |])))
  in
  Database.insert_rows db "partsupp" partsupp_rows;
  (* orders + lineitem *)
  let order_span = end_order_date - start_date in
  let lineitem_count = ref 0 in
  let orders_buf = ref [] in
  let lineitem_buf = ref [] in
  for i = 0 to counts.orders - 1 do
    let orderkey = i + 1 in
    let custkey = uniform g 1 counts.customers in
    let orderdate = Date.add_days start_date (rand_int g (order_span - 151)) in
    let nlines = uniform g 1 7 in
    let total = ref 0.0 in
    let all_fulfilled = ref true in
    for line = 1 to nlines do
      incr lineitem_count;
      let partkey = uniform g 1 counts.parts in
      let supp_offset = uniform g 0 3 in
      let suppkey =
        ((partkey + (supp_offset * ((s / 4) + ((partkey - 1) / s)))) mod s) + 1
      in
      let quantity = float_of_int (uniform g 1 50) in
      let extendedprice = quantity *. retail_price partkey in
      let discount = float_of_int (uniform g 0 10) /. 100.0 in
      let tax = float_of_int (uniform g 0 8) /. 100.0 in
      let shipdate = Date.add_days orderdate (uniform g 1 121) in
      let commitdate = Date.add_days orderdate (uniform g 30 90) in
      let receiptdate = Date.add_days shipdate (uniform g 1 30) in
      let returnflag =
        if receiptdate <= current_date then (if chance g ~percent:50 then "R" else "A")
        else "N"
      in
      let linestatus = if shipdate > current_date then "O" else "F" in
      if linestatus = "O" then all_fulfilled := false;
      total := !total +. (extendedprice *. (1.0 -. discount) *. (1.0 +. tax));
      lineitem_buf :=
        [|
          Value.Int orderkey;
          Value.Int partkey;
          Value.Int suppkey;
          Value.Int line;
          Value.Float quantity;
          Value.Float extendedprice;
          Value.Float discount;
          Value.Float tax;
          Value.Str returnflag;
          Value.Str linestatus;
          Value.Date shipdate;
          Value.Date commitdate;
          Value.Date receiptdate;
          Value.Str (choice g Text.ship_instructs);
          Value.Str (choice g Text.ship_modes);
          Value.Str (comment g);
        |]
        :: !lineitem_buf
    done;
    let status = if !all_fulfilled then "F" else if chance g ~percent:50 then "O" else "P" in
    orders_buf :=
      [|
        Value.Int orderkey;
        Value.Int custkey;
        Value.Str status;
        Value.Float !total;
        Value.Date orderdate;
        Value.Str (choice g Text.priorities);
        Value.Str (Printf.sprintf "Clerk#%09d" (uniform g 1 1000));
        Value.Int 0;
        Value.Str (comment ~plant:(Some `Special_requests) g);
      |]
      :: !orders_buf
  done;
  Database.insert_rows db "orders" (List.rev !orders_buf);
  Database.insert_rows db "lineitem" (List.rev !lineitem_buf);
  {
    rows =
      [
        ("region", Array.length Text.regions);
        ("nation", nations);
        ("supplier", counts.suppliers);
        ("customer", counts.customers);
        ("part", counts.parts);
        ("partsupp", 4 * counts.parts);
        ("orders", counts.orders);
        ("lineitem", !lineitem_count);
      ];
    lineitems = !lineitem_count;
  }
