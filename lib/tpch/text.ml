(* Word pools for dbgen-style text columns (TPC-H spec §4.2.2.10ff).
   Lists match the spec's enumerations where queries depend on them
   (segments, priorities, modes, types, containers, nation/region
   names); comment text is drawn from a small grammar-free lexicon with
   the spec's "special request" / "complaint" phrases planted at the
   documented low frequency so Q13 and Q16 behave as in real dbgen. *)

let regions =
  [| "AFRICA"; "AMERICA"; "ASIA"; "EUROPE"; "MIDDLE EAST" |]

(* nation name, region index — the spec's 25 nations *)
let nations =
  [|
    ("ALGERIA", 0); ("ARGENTINA", 1); ("BRAZIL", 1); ("CANADA", 1);
    ("EGYPT", 4); ("ETHIOPIA", 0); ("FRANCE", 3); ("GERMANY", 3);
    ("INDIA", 2); ("INDONESIA", 2); ("IRAN", 4); ("IRAQ", 4);
    ("JAPAN", 2); ("JORDAN", 4); ("KENYA", 0); ("MOROCCO", 0);
    ("MOZAMBIQUE", 0); ("PERU", 1); ("CHINA", 2); ("ROMANIA", 3);
    ("SAUDI ARABIA", 4); ("VIETNAM", 2); ("RUSSIA", 3);
    ("UNITED KINGDOM", 3); ("UNITED STATES", 1);
  |]

let segments =
  [| "AUTOMOBILE"; "BUILDING"; "FURNITURE"; "MACHINERY"; "HOUSEHOLD" |]

let priorities =
  [| "1-URGENT"; "2-HIGH"; "3-MEDIUM"; "4-NOT SPECIFIED"; "5-LOW" |]

let ship_modes = [| "REG AIR"; "AIR"; "RAIL"; "SHIP"; "TRUCK"; "MAIL"; "FOB" |]

let ship_instructs =
  [| "DELIVER IN PERSON"; "COLLECT COD"; "NONE"; "TAKE BACK RETURN" |]

let type_syllable_1 =
  [| "STANDARD"; "SMALL"; "MEDIUM"; "LARGE"; "ECONOMY"; "PROMO" |]

let type_syllable_2 =
  [| "ANODIZED"; "BURNISHED"; "PLATED"; "POLISHED"; "BRUSHED" |]

let type_syllable_3 = [| "TIN"; "NICKEL"; "BRASS"; "STEEL"; "COPPER" |]

let container_syllable_1 =
  [| "SM"; "LG"; "MED"; "JUMBO"; "WRAP" |]

let container_syllable_2 =
  [| "CASE"; "BOX"; "BAG"; "JAR"; "PKG"; "PACK"; "CAN"; "DRUM" |]

let colors =
  [|
    "almond"; "antique"; "aquamarine"; "azure"; "beige"; "bisque"; "black";
    "blanched"; "blue"; "blush"; "brown"; "burlywood"; "burnished"; "chartreuse";
    "chiffon"; "chocolate"; "coral"; "cornflower"; "cornsilk"; "cream"; "cyan";
    "dark"; "deep"; "dim"; "dodger"; "drab"; "firebrick"; "floral"; "forest";
    "frosted"; "gainsboro"; "ghost"; "goldenrod"; "green"; "grey"; "honeydew";
    "hot"; "indian"; "ivory"; "khaki"; "lace"; "lavender"; "lawn"; "lemon";
    "light"; "lime"; "linen"; "magenta"; "maroon"; "medium"; "metallic";
    "midnight"; "mint"; "misty"; "moccasin"; "navajo"; "navy"; "olive";
    "orange"; "orchid"; "pale"; "papaya"; "peach"; "peru"; "pink"; "plum";
    "powder"; "puff"; "purple"; "red"; "rose"; "rosy"; "royal"; "saddle";
    "salmon"; "sandy"; "seashell"; "sienna"; "sky"; "slate"; "smoke"; "snow";
    "spring"; "steel"; "tan"; "thistle"; "tomato"; "turquoise"; "violet";
    "wheat"; "white"; "yellow";
  |]

let nouns =
  [|
    "packages"; "requests"; "accounts"; "deposits"; "foxes"; "ideas";
    "theodolites"; "pinto beans"; "instructions"; "dependencies"; "excuses";
    "platelets"; "asymptotes"; "courts"; "dolphins"; "multipliers"; "sauternes";
    "warthogs"; "frets"; "dinos"; "attainments"; "somas"; "braids"; "hockey";
    "sheaves"; "decoys"; "realms"; "pains"; "grouches"; "escapades";
  |]

let verbs =
  [|
    "sleep"; "wake"; "are"; "cajole"; "haggle"; "nag"; "use"; "boost";
    "affix"; "detect"; "integrate"; "maintain"; "nod"; "was"; "lose"; "sublate";
    "solve"; "thrash"; "promise"; "engage"; "embark"; "hinder"; "print"; "x-ray";
    "breach"; "eat"; "grow"; "impress"; "mold"; "poach";
  |]

let adjectives =
  [|
    "furious"; "sly"; "careful"; "blithe"; "quick"; "fluffy"; "slow"; "quiet";
    "ruthless"; "thin"; "close"; "dogged"; "daring"; "brave"; "stealthy";
    "permanent"; "enticing"; "idle"; "busy"; "regular"; "final"; "ironic";
    "even"; "bold"; "silent";
  |]

let adverbs =
  [|
    "sometimes"; "always"; "never"; "furiously"; "slyly"; "carefully";
    "blithely"; "quickly"; "fluffily"; "slowly"; "quietly"; "ruthlessly";
    "thinly"; "closely"; "doggedly"; "daringly"; "bravely"; "stealthily";
    "permanently"; "enticingly"; "idly"; "busily"; "regularly"; "finally";
    "ironically"; "evenly"; "boldly"; "silently";
  |]
