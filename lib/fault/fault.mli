(** Deterministic, seeded fault injection scheduled on the virtual
    clock.

    A {!t} (fault plan) maps injection {!site}s to firing rules
    (probability, budget, earliest virtual time). The stack's natural
    failure points consult the plan — [Channel] record handling,
    [Block_device] page I/O, [Rpmb] frame processing, the SGX/TrustZone
    models and the runner — and the recovery layer turns fired faults
    into retries, re-reads, re-attestations or typed rejections.

    Every decision is drawn from a splitmix64 stream derived from the
    plan seed, so a given seed + workload replays the exact same
    incident timeline. The shared {!none} plan has no rules: every hook
    is a cheap [match] returning [false], keeping the fault machinery
    zero-cost when disabled. *)

type site =
  | Channel_corrupt  (** in-flight record bit-flip (detected by MAC) *)
  | Channel_drop  (** record lost in flight *)
  | Channel_handshake  (** TLS session establishment failure *)
  | Device_bit_rot  (** persistent byte flip in a stored page *)
  | Device_torn_write  (** page write persists only its first half *)
  | Device_read_transient  (** one read returns corrupted data *)
  | Rpmb_desync  (** RPMB write counter desynchronizes (replay defence) *)
  | Sgx_abort  (** enclave dies mid-ECALL *)
  | Sgx_quote_reject  (** attestation quote fails verification once *)
  | Sgx_epc_storm  (** burst of EPC paging faults *)
  | Tz_world_switch  (** secure-world switch fails *)
  | Tz_ta_crash  (** trusted application crashes mid-request *)
  | Wal_crash_before_append
      (** crash before a record's bytes reach the log device *)
  | Wal_crash_mid_append
      (** crash with only a prefix of the record frame persisted (torn
          append) *)
  | Wal_crash_after_append
      (** crash right after a record frame is fully persisted *)
  | Wal_crash_mid_flush
      (** crash between the group's device writes and the chain-MAC
          anchor computation (mid-group-commit) *)
  | Wal_crash_before_anchor
      (** crash between the chain-MAC update and the RPMB counter bump *)
  | Wal_torn_checkpoint
      (** checkpoint write-back persists a torn base page, then crashes *)

val site_name : site -> string
(** Stable dotted name, e.g. ["device.bit_rot"] (used in counters,
    incident reports and violations). *)

val all_sites : site list

val wal_sites : site list
(** The WAL crash points in log order; the crash-at-every-point
    recovery property iterates exactly this list. *)

type rule = { prob : float; max_fires : int; after_ns : float }

val rule : ?prob:float -> ?max_fires:int -> ?after_ns:float -> unit -> rule
(** Defaults: [prob = 1.0], [max_fires = max_int], [after_ns = 0.0]. *)

type incident = {
  inc_site : site;
  inc_at_ns : float;  (** virtual time at injection *)
  mutable inc_recovered : bool;
}

type stats = {
  mutable injected : int;
  mutable recovered : int;
  mutable rejected : int;
  mutable retries : int;
  mutable reattestations : int;
}

type t

val none : t
(** The empty plan: nothing ever fires, notes are no-ops. *)

val make : ?clock:(unit -> float) -> seed:int -> (site * rule) list -> t

val enabled : t -> bool
(** [false] exactly for plans with no rules (e.g. {!none}). *)

val seed : t -> int

val set_clock : t -> (unit -> float) -> unit
(** Wire the virtual clock used for [after_ns] scheduling and incident
    timestamps (the deployment points this at its simulated nodes). *)

val fire : t -> site -> bool
(** Roll the site's rule against the deterministic stream; a fired
    fault is recorded as an incident and counted ([fault.injected]). *)

val rand_int : t -> int -> int
(** Deterministic integer in [\[0, bound)] from the plan stream (used
    to pick corruption offsets). *)

val stats : t -> stats
val incident_count : t -> int

val incidents_since : t -> int -> incident list
(** Incidents recorded after a previous {!incident_count} mark,
    chronological. *)

val last_unrecovered : t -> incident option

(* Recovery notes: the recovery layer reports what it did so incident
   timelines, the obs counters under the [recovery] scope and the bench
   faults section agree. All are no-ops on a disabled plan. *)

val note_retry : ?n:int -> t -> action:string -> unit
val note_reattestation : t -> unit

val note_recovered : t -> unit
(** Marks the oldest unrecovered incident as recovered. *)

val note_recovered_since : t -> int -> unit
(** Marks every incident recorded after the given {!incident_count}
    mark as recovered — the precise form for recovery loops that
    overcome several fired faults before finally succeeding. *)

val note_rejected : t -> unit

val backoff_ns : base_ns:float -> attempt:int -> float
(** Bounded exponential backoff: [base * 2^attempt], capped at
    [1000 * base]. Charged to virtual clocks by callers. *)

val pp_incident : Format.formatter -> incident -> unit
val pp_stats : Format.formatter -> stats -> unit

(** Named fault profiles for the CLI / bench / CI. *)
type profile = Profile_none | Flaky_net | Bit_rot | Hostile

val profile_of_string : string -> profile option
val profile_name : profile -> string
val all_profiles : profile list

val of_profile : ?clock:(unit -> float) -> seed:int -> profile -> t
(** [of_profile ~seed Profile_none] is {!none}. *)
