(* Deterministic fault-injection plans (see fault.mli).

   Determinism contract: all randomness comes from one splitmix64
   stream ({!Ironsafe_sim.Prng}, the same implementation workload
   arrivals draw from) seeded from the plan seed, advanced once per
   consulted rule (plus once per [rand_int]). Replaying the same
   workload against the same seed therefore reproduces the exact
   incident timeline — the property the CLI's --fault-seed flag and
   the CI seed matrix rely on. *)

module Obs = Ironsafe_obs.Obs
module Prng = Ironsafe_sim.Prng

type site =
  | Channel_corrupt
  | Channel_drop
  | Channel_handshake
  | Device_bit_rot
  | Device_torn_write
  | Device_read_transient
  | Rpmb_desync
  | Sgx_abort
  | Sgx_quote_reject
  | Sgx_epc_storm
  | Tz_world_switch
  | Tz_ta_crash
  | Wal_crash_before_append
  | Wal_crash_mid_append
  | Wal_crash_after_append
  | Wal_crash_mid_flush
  | Wal_crash_before_anchor
  | Wal_torn_checkpoint

let site_name = function
  | Channel_corrupt -> "channel.corrupt"
  | Channel_drop -> "channel.drop"
  | Channel_handshake -> "channel.handshake"
  | Device_bit_rot -> "device.bit_rot"
  | Device_torn_write -> "device.torn_write"
  | Device_read_transient -> "device.read_transient"
  | Rpmb_desync -> "rpmb.desync"
  | Sgx_abort -> "sgx.abort"
  | Sgx_quote_reject -> "sgx.quote_reject"
  | Sgx_epc_storm -> "sgx.epc_storm"
  | Tz_world_switch -> "trustzone.world_switch"
  | Tz_ta_crash -> "trustzone.ta_crash"
  | Wal_crash_before_append -> "wal.crash_before_append"
  | Wal_crash_mid_append -> "wal.crash_mid_append"
  | Wal_crash_after_append -> "wal.crash_after_append"
  | Wal_crash_mid_flush -> "wal.crash_mid_flush"
  | Wal_crash_before_anchor -> "wal.crash_before_anchor"
  | Wal_torn_checkpoint -> "wal.torn_checkpoint"

let all_sites =
  [
    Channel_corrupt; Channel_drop; Channel_handshake; Device_bit_rot;
    Device_torn_write; Device_read_transient; Rpmb_desync; Sgx_abort;
    Sgx_quote_reject; Sgx_epc_storm; Tz_world_switch; Tz_ta_crash;
    Wal_crash_before_append; Wal_crash_mid_append; Wal_crash_after_append;
    Wal_crash_mid_flush; Wal_crash_before_anchor; Wal_torn_checkpoint;
  ]

(* WAL crash points, in log order: the crash-at-every-point property
   iterates this list and proves recovery for each. *)
let wal_sites =
  [
    Wal_crash_before_append; Wal_crash_mid_append; Wal_crash_after_append;
    Wal_crash_mid_flush; Wal_crash_before_anchor; Wal_torn_checkpoint;
  ]

type rule = { prob : float; max_fires : int; after_ns : float }

let rule ?(prob = 1.0) ?(max_fires = max_int) ?(after_ns = 0.0) () =
  if prob < 0.0 || prob > 1.0 then invalid_arg "Fault.rule: prob not in [0,1]";
  { prob; max_fires; after_ns }

type incident = {
  inc_site : site;
  inc_at_ns : float;
  mutable inc_recovered : bool;
}

type stats = {
  mutable injected : int;
  mutable recovered : int;
  mutable rejected : int;
  mutable retries : int;
  mutable reattestations : int;
}

type t = {
  plan_seed : int;
  rules : (site * rule) list;
  rng : Prng.t;
  fired : (site, int) Hashtbl.t;
  mutable clock : unit -> float;
  mutable incidents : incident list; (* newest first *)
  mutable n_incidents : int;
  st : stats;
}

let fresh_stats () =
  { injected = 0; recovered = 0; rejected = 0; retries = 0; reattestations = 0 }

let make ?(clock = fun () -> 0.0) ~seed rules =
  {
    plan_seed = seed;
    rules;
    rng = Prng.create ~seed;
    fired = Hashtbl.create 8;
    clock;
    incidents = [];
    n_incidents = 0;
    st = fresh_stats ();
  }

let none = make ~seed:0 []

let enabled t = t.rules <> []
let seed t = t.plan_seed
let set_clock t clock = t.clock <- clock
let stats t = t.st
let incident_count t = t.n_incidents

let incidents_since t mark =
  let rec take n acc = function
    | [] -> acc
    | _ when n <= 0 -> acc
    | i :: rest -> take (n - 1) (i :: acc) rest
  in
  take (t.n_incidents - mark) [] t.incidents

let last_unrecovered t = List.find_opt (fun i -> not i.inc_recovered) t.incidents

(* All randomness delegates to the shared splitmix64 stream; the plan
   seed feeds it unmixed, preserving the historical incident
   timelines of the seeded CI matrix. *)
let uniform t = Prng.uniform t.rng
let rand_int t bound = Prng.rand_int t.rng bound

let fire t site =
  match List.assoc_opt site t.rules with
  | None -> false
  | Some r ->
      let now = t.clock () in
      if now < r.after_ns then false
      else begin
        let n = Option.value ~default:0 (Hashtbl.find_opt t.fired site) in
        if n >= r.max_fires then false
        else if uniform t < r.prob then begin
          Hashtbl.replace t.fired site (n + 1);
          t.st.injected <- t.st.injected + 1;
          t.incidents <-
            { inc_site = site; inc_at_ns = now; inc_recovered = false }
            :: t.incidents;
          t.n_incidents <- t.n_incidents + 1;
          Obs.count ~scope:"fault" "injected";
          Obs.count ~scope:"fault" ("injected." ^ site_name site);
          if Obs.enabled () then
            Obs.event ~ts_ns:now ~scope:"fault" ~kind:"fault.injected"
              [
                ("site", Ironsafe_obs.Event_log.S (site_name site));
                ("incident", Ironsafe_obs.Event_log.I t.n_incidents);
              ];
          true
        end
        else false
      end

(* -- recovery notes --------------------------------------------------- *)

let note_retry ?(n = 1) t ~action =
  if enabled t then begin
    t.st.retries <- t.st.retries + n;
    Obs.count ~scope:"recovery" ~n "retries";
    Obs.count ~scope:"recovery" ~n ("retries." ^ action)
  end

let note_reattestation t =
  if enabled t then begin
    t.st.reattestations <- t.st.reattestations + 1;
    Obs.count ~scope:"recovery" "reattestations"
  end

let note_recovered t =
  if enabled t then begin
    t.st.recovered <- t.st.recovered + 1;
    Obs.count ~scope:"recovery" "recovered";
    (* mark the oldest outstanding incident as healed *)
    match
      List.fold_left
        (fun acc i -> if i.inc_recovered then acc else Some i)
        None t.incidents
    with
    | Some i -> i.inc_recovered <- true
    | None -> ()
  end

let note_recovered_since t mark =
  if enabled t then begin
    let healed =
      List.fold_left
        (fun n i ->
          if i.inc_recovered then n
          else begin
            i.inc_recovered <- true;
            n + 1
          end)
        0
        (incidents_since t mark)
    in
    if healed > 0 then begin
      t.st.recovered <- t.st.recovered + healed;
      Obs.count ~scope:"recovery" ~n:healed "recovered"
    end
  end

let note_rejected t =
  if enabled t then begin
    t.st.rejected <- t.st.rejected + 1;
    Obs.count ~scope:"fault" "rejected"
  end

let backoff_ns ~base_ns ~attempt =
  Float.min (base_ns *. (2.0 ** float_of_int attempt)) (1000.0 *. base_ns)

let pp_incident ppf i =
  Fmt.pf ppf "%s at %.0fns (%s)" (site_name i.inc_site) i.inc_at_ns
    (if i.inc_recovered then "recovered" else "unrecovered")

let pp_stats ppf s =
  Fmt.pf ppf
    "injected=%d recovered=%d rejected=%d retries=%d reattestations=%d"
    s.injected s.recovered s.rejected s.retries s.reattestations

(* -- named profiles --------------------------------------------------- *)

type profile = Profile_none | Flaky_net | Bit_rot | Hostile

let profile_name = function
  | Profile_none -> "none"
  | Flaky_net -> "flaky-net"
  | Bit_rot -> "bit-rot"
  | Hostile -> "hostile"

let all_profiles = [ Profile_none; Flaky_net; Bit_rot; Hostile ]

let profile_of_string s =
  List.find_opt (fun p -> profile_name p = s) all_profiles

let flaky_net_rules =
  [
    (Channel_drop, rule ~prob:0.15 ());
    (Channel_corrupt, rule ~prob:0.10 ());
    (Channel_handshake, rule ~prob:0.25 ~max_fires:6 ());
  ]

let bit_rot_rules =
  [
    (Device_read_transient, rule ~prob:0.02 ());
    (Device_bit_rot, rule ~prob:0.002 ~max_fires:2 ());
    (Device_torn_write, rule ~prob:0.01 ~max_fires:2 ());
  ]

let hostile_rules =
  [
    (Channel_drop, rule ~prob:0.10 ());
    (Channel_corrupt, rule ~prob:0.10 ());
    (Channel_handshake, rule ~prob:0.20 ~max_fires:4 ());
    (Device_read_transient, rule ~prob:0.01 ());
    (Device_bit_rot, rule ~prob:0.001 ~max_fires:3 ());
    (Device_torn_write, rule ~prob:0.01 ~max_fires:3 ());
    (Rpmb_desync, rule ~prob:0.3 ~max_fires:4 ());
    (Sgx_abort, rule ~prob:0.05 ~max_fires:3 ());
    (Sgx_quote_reject, rule ~prob:0.3 ~max_fires:3 ());
    (Sgx_epc_storm, rule ~prob:0.05 ~max_fires:3 ());
    (Tz_world_switch, rule ~prob:0.05 ~max_fires:3 ());
    (Tz_ta_crash, rule ~prob:0.3 ~max_fires:3 ());
  ]

let of_profile ?clock ~seed = function
  | Profile_none -> none
  | Flaky_net -> make ?clock ~seed flaky_net_rules
  | Bit_rot -> make ?clock ~seed bit_rot_rules
  | Hostile -> make ?clock ~seed hostile_rules
