(** Fixed-capacity row batches with a selection vector: the unit of
    work of the vectorized executor. Arrays are reused across refills;
    filters narrow the selection instead of materializing filtered
    copies. *)

type t

val create : capacity:int -> t
(** Fresh batch; [capacity] must be at least 1. *)

val capacity : t -> int
val length : t -> int
(** Rows currently filled. *)

val selected : t -> int
(** Rows in the current selection. *)

val is_full : t -> bool
val clear : t -> unit

val push : t -> Row.t -> unit
(** Append a row; the batch must not be full. Pushing does not touch
    the selection — run {!select_where} once the batch is filled. *)

val select_where : t -> (Row.t -> bool) -> unit
(** Reset the selection to the filled rows passing the predicate, in
    slot order. *)

val refine : t -> (Row.t -> bool) -> unit
(** Narrow the current selection in place, preserving order. *)

val iter_selected : t -> (Row.t -> unit) -> unit
