(* Page access abstraction over the storage backends:
   - [in_memory]: host-side temporary tables;
   - [plain]: cleartext pages on a block device (non-secure configs);
   - [secure]: the encrypted/Merkle-verified store of IronSafe.

   Each pager exposes the payload capacity per page and a page
   allocator; the observer hook fires on every physical page access so
   the runner can charge I/O, decryption and freshness costs where the
   page was actually processed. A buffering layer (see {!Bufpool}) can
   interpose via [make]: its [cached] predicate tells the observer
   whether a read is served from memory, and [flush] pushes buffered
   dirty pages down to the backend. *)

type t = {
  capacity : int;
  read : int -> string;
  write : int -> string -> unit;
  allocate : unit -> int;
  page_count : unit -> int;
  cached : int -> bool;
      (* would a read of this page skip the backend? Always false for
         unbuffered pagers. *)
  flush : unit -> unit;
  mutable observer : Observer.t;
}

let read t i =
  t.observer.Observer.on_page_read ~cached:(t.cached i);
  t.read i

let write t i data =
  t.observer.Observer.on_page_write ();
  t.write i data

let make ~capacity ~read ~write ~allocate ~page_count
    ?(cached = fun _ -> false) ?(flush = fun () -> ()) () =
  { capacity; read; write; allocate; page_count; cached; flush;
    observer = Observer.null }

let in_memory () =
  let pages : (int, string) Hashtbl.t = Hashtbl.create 64 in
  let next = ref 0 in
  make ~capacity:4096
    ~read:(fun i ->
      match Hashtbl.find_opt pages i with
      | Some p -> p
      | None -> String.make 4096 '\000')
    ~write:(fun i data -> Hashtbl.replace pages i data)
    ~allocate:(fun () ->
      let i = !next in
      incr next;
      i)
    ~page_count:(fun () -> !next)
    ()

let plain device =
  let next = ref 0 in
  make ~capacity:Ironsafe_storage.Block_device.page_size
    ~read:(fun i -> Ironsafe_storage.Block_device.read_page device i)
    ~write:(fun i data ->
      let ps = Ironsafe_storage.Block_device.page_size in
      let padded =
        if String.length data = ps then data
        else data ^ String.make (ps - String.length data) '\000'
      in
      Ironsafe_storage.Block_device.write_page device i padded)
    ~allocate:(fun () ->
      let i = !next in
      incr next;
      i)
    ~page_count:(fun () -> !next)
    ()

exception Integrity_failure of string

let secure store =
  let next = ref 0 in
  make ~capacity:Ironsafe_securestore.Secure_store.capacity
    ~read:(fun i ->
      match Ironsafe_securestore.Secure_store.read_page store i with
      | Ok data -> data
      | Error e ->
          raise
            (Integrity_failure
               (Fmt.str "%a" Ironsafe_securestore.Secure_store.pp_error e)))
    ~write:(fun i data ->
      match Ironsafe_securestore.Secure_store.write_page store i data with
      | Ok () -> ()
      | Error e ->
          raise
            (Integrity_failure
               (Fmt.str "%a" Ironsafe_securestore.Secure_store.pp_error e)))
    ~allocate:(fun () ->
      let i = !next in
      incr next;
      i)
    ~page_count:(fun () -> !next)
    ()

let set_observer t obs = t.observer <- obs
let capacity t = t.capacity
let allocate t = t.allocate ()
let page_count t = t.page_count ()
let cached t i = t.cached i
let flush t = t.flush ()
