(* Incremental aggregate accumulators. SQL semantics: NULLs are ignored
   by all aggregates except count-star; aggregating an empty set yields
   NULL except count, which yields 0. *)

type acc =
  | Count_acc of { mutable n : int }
  | Sum_acc of { mutable sum : Value.t }
  | Avg_acc of { mutable sum : float; mutable n : int }
  | Min_acc of { mutable v : Value.t }
  | Max_acc of { mutable v : Value.t }

type t = { acc : acc; distinct : (string, unit) Hashtbl.t option }

let create func ~distinct =
  let acc =
    match func with
    | Ast.Count -> Count_acc { n = 0 }
    | Ast.Sum -> Sum_acc { sum = Value.Null }
    | Ast.Avg -> Avg_acc { sum = 0.0; n = 0 }
    | Ast.Min -> Min_acc { v = Value.Null }
    | Ast.Max -> Max_acc { v = Value.Null }
  in
  { acc; distinct = (if distinct then Some (Hashtbl.create 16) else None) }

let seen_before t v =
  match t.distinct with
  | None -> false
  | Some table ->
      let buf = Buffer.create 16 in
      Value.encode buf v;
      let key = Buffer.contents buf in
      if Hashtbl.mem table key then true
      else begin
        Hashtbl.add table key ();
        false
      end

let update t input =
  match (t.acc, input) with
  | Count_acc c, `Star -> c.n <- c.n + 1
  | Count_acc _, `Value Value.Null -> ()
  | Count_acc c, `Value v -> if not (seen_before t v) then c.n <- c.n + 1
  | _, `Value Value.Null -> ()
  | Sum_acc s, `Value v ->
      if not (seen_before t v) then
        s.sum <-
          (match s.sum with
          | Value.Null -> v
          | cur -> Value.arith `Add cur v)
  | Avg_acc a, `Value v ->
      if not (seen_before t v) then begin
        a.sum <- a.sum +. Value.as_float v;
        a.n <- a.n + 1
      end
  | Min_acc m, `Value v ->
      (match Value.compare_opt v m.v with
      | Some c when c < 0 -> m.v <- v
      | Some _ -> ()
      | None -> m.v <- v (* current is Null *))
  | Max_acc m, `Value v ->
      (match Value.compare_opt v m.v with
      | Some c when c > 0 -> m.v <- v
      | Some _ -> ()
      | None -> m.v <- v)
  | (Sum_acc _ | Avg_acc _ | Min_acc _ | Max_acc _), `Star ->
      invalid_arg "Agg_state.update: only count accepts *"

let finish t =
  match t.acc with
  | Count_acc c -> Value.Int c.n
  | Sum_acc s -> s.sum
  | Avg_acc a -> if a.n = 0 then Value.Null else Value.Float (a.sum /. float_of_int a.n)
  | Min_acc m -> m.v
  | Max_acc m -> m.v
