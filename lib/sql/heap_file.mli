(** Heap files: rows packed into pager pages in insertion order. *)

type t

val create : pager:Pager.t -> schema:Schema.t -> t
val schema : t -> Schema.t
val row_count : t -> int
val page_count : t -> int

val append : t -> Row.t -> unit

val append_page : t -> Row.t -> int
(** Append and return the page the row landed on (index maintenance). *)

val append_all : t -> Row.t list -> unit

val flush : t -> unit
(** Persist any buffered rows. *)

val iter : t -> f:(Row.t -> unit) -> unit
(** Full scan in storage order (flushes first). *)

val iter_pages : t -> int list -> f:(page:int -> Row.t -> unit) -> unit
(** Scan only the given pages (index-driven access path). *)

val to_list : t -> Row.t list

val rewrite : t -> f:(Row.t -> [ `Keep | `Replace of Row.t | `Delete ]) -> int
(** In-place rewrite for UPDATE/DELETE; returns affected row count. *)

val stored_pages : t -> int list
(** Page ids backing this file, in scan order. *)

val reload : t -> unit
(** Rebuild the volatile write cursor and row count from the
    on-storage image, discarding buffered rows and any trailing page
    the pager can no longer serve. Used after the backing store has
    been crash-recovered underneath the file: the storage image (only
    durably committed rows) becomes the truth again. Only decode /
    out-of-range failures are treated as the rolled-back tail; a
    {!Pager.Integrity_failure} (tampered page) propagates. *)
