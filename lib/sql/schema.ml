(* Table schemas and execution-context column descriptors. *)

type column = { col_name : string; col_ty : Value.ty }

type t = { table_name : string; columns : column array }

let create ~name ~columns =
  if columns = [] then invalid_arg "Schema.create: empty column list";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (n, _) ->
      let n = String.lowercase_ascii n in
      if Hashtbl.mem seen n then
        invalid_arg (Printf.sprintf "Schema.create: duplicate column %s" n);
      Hashtbl.add seen n ())
    columns;
  {
    table_name = String.lowercase_ascii name;
    columns =
      Array.of_list
        (List.map
           (fun (n, ty) -> { col_name = String.lowercase_ascii n; col_ty = ty })
           columns);
  }

let name t = t.table_name
let columns t = t.columns
let arity t = Array.length t.columns

let column_index t cname =
  let cname = String.lowercase_ascii cname in
  let rec find i =
    if i >= Array.length t.columns then None
    else if t.columns.(i).col_name = cname then Some i
    else find (i + 1)
  in
  find 0

let column_names t = Array.to_list (Array.map (fun c -> c.col_name) t.columns)

let pp ppf t =
  Fmt.pf ppf "%s(%s)" t.table_name
    (String.concat ", "
       (Array.to_list
          (Array.map
             (fun c -> c.col_name ^ " " ^ Value.ty_name c.col_ty)
             t.columns)))
