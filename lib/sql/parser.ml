(* Recursive-descent SQL parser for the dialect in {!Ast}. *)

open Ast

exception Parse_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

type state = { mutable toks : Lexer.token list }

let peek st = match st.toks with [] -> Lexer.EOF | t :: _ -> t

let peek2 st =
  match st.toks with _ :: t :: _ -> t | _ -> Lexer.EOF

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok =
  if peek st = tok then advance st
  else fail "expected %a but found %a" Lexer.pp_token tok Lexer.pp_token (peek st)

(* keyword = a specific identifier spelling *)
let is_kw st kw = match peek st with Lexer.IDENT s -> s = kw | _ -> false

let eat_kw st kw =
  if is_kw st kw then begin
    advance st;
    true
  end
  else false

let expect_kw st kw =
  if not (eat_kw st kw) then
    fail "expected keyword %s but found %a" (String.uppercase_ascii kw)
      Lexer.pp_token (peek st)

let expect_ident st =
  match peek st with
  | Lexer.IDENT s ->
      advance st;
      s
  | t -> fail "expected identifier, found %a" Lexer.pp_token t

let expect_string st =
  match peek st with
  | Lexer.STRING s ->
      advance st;
      s
  | t -> fail "expected string literal, found %a" Lexer.pp_token t

let expect_int st =
  match peek st with
  | Lexer.INT i ->
      advance st;
      i
  | t -> fail "expected integer, found %a" Lexer.pp_token t

let reserved =
  [
    "select"; "from"; "where"; "group"; "order"; "by"; "having"; "limit";
    "and"; "or"; "not"; "in"; "like"; "between"; "exists"; "case"; "when";
    "then"; "else"; "end"; "as"; "join"; "left"; "right"; "outer"; "inner";
    "on"; "asc"; "desc"; "is"; "null"; "union"; "values"; "insert"; "update";
    "delete"; "create"; "drop"; "table"; "into"; "set"; "interval"; "extract";
    "distinct";
  ]

let is_reserved s = List.mem s reserved

let interval_unit_of_string = function
  | "day" | "days" -> Day
  | "month" | "months" -> Month
  | "year" | "years" -> Year
  | s -> fail "unknown interval unit %s" s

let agg_of_string = function
  | "sum" -> Some Sum
  | "avg" -> Some Avg
  | "min" -> Some Min
  | "max" -> Some Max
  | "count" -> Some Count
  | _ -> None

let rec parse_expr st = parse_or st

and parse_or st =
  let left = parse_and st in
  if eat_kw st "or" then Binop (Or, left, parse_or st) else left

and parse_and st =
  let left = parse_not st in
  if eat_kw st "and" then Binop (And, left, parse_and st) else left

and parse_not st =
  if eat_kw st "not" then Unary (`Not, parse_not st) else parse_predicate st

(* comparison / LIKE / IN / BETWEEN / IS NULL level *)
and parse_predicate st =
  let subject = parse_additive st in
  let negated = eat_kw st "not" in
  match peek st with
  | Lexer.EQ ->
      advance st;
      check_not_negated negated "=";
      Binop (Eq, subject, parse_additive st)
  | Lexer.NEQ ->
      advance st;
      check_not_negated negated "<>";
      Binop (Neq, subject, parse_additive st)
  | Lexer.LT ->
      advance st;
      check_not_negated negated "<";
      Binop (Lt, subject, parse_additive st)
  | Lexer.LE ->
      advance st;
      check_not_negated negated "<=";
      Binop (Le, subject, parse_additive st)
  | Lexer.GT ->
      advance st;
      check_not_negated negated ">";
      Binop (Gt, subject, parse_additive st)
  | Lexer.GE ->
      advance st;
      check_not_negated negated ">=";
      Binop (Ge, subject, parse_additive st)
  | Lexer.IDENT "like" ->
      advance st;
      Like { negated; subject; pattern = expect_string st }
  | Lexer.IDENT "between" ->
      advance st;
      let low = parse_additive st in
      expect_kw st "and";
      let high = parse_additive st in
      Between { negated; subject; low; high }
  | Lexer.IDENT "in" ->
      advance st;
      expect st Lexer.LPAREN;
      let result =
        if is_kw st "select" then begin
          let select = parse_select st in
          In_select { negated; subject; select }
        end
        else begin
          let rec items acc =
            let item = parse_expr st in
            if peek st = Lexer.COMMA then begin
              advance st;
              items (item :: acc)
            end
            else List.rev (item :: acc)
          in
          In_list { negated; subject; items = items [] }
        end
      in
      expect st Lexer.RPAREN;
      result
  | Lexer.IDENT "is" ->
      advance st;
      let negated = eat_kw st "not" in
      expect_kw st "null";
      Is_null { negated; subject }
  | _ ->
      if negated then fail "dangling NOT before %a" Lexer.pp_token (peek st)
      else subject

and check_not_negated negated op =
  if negated then fail "NOT cannot precede %s" op

and parse_additive st =
  let rec loop left =
    match peek st with
    | Lexer.PLUS ->
        advance st;
        loop (Binop (Add, left, parse_multiplicative st))
    | Lexer.MINUS ->
        advance st;
        loop (Binop (Sub, left, parse_multiplicative st))
    | _ -> left
  in
  loop (parse_multiplicative st)

and parse_multiplicative st =
  let rec loop left =
    match peek st with
    | Lexer.STAR ->
        advance st;
        loop (Binop (Mul, left, parse_unary st))
    | Lexer.SLASH ->
        advance st;
        loop (Binop (Div, left, parse_unary st))
    | _ -> left
  in
  loop (parse_unary st)

and parse_unary st =
  match peek st with
  | Lexer.MINUS ->
      advance st;
      Unary (`Neg, parse_unary st)
  | Lexer.PLUS ->
      advance st;
      parse_unary st
  | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | Lexer.INT i ->
      advance st;
      Lit (Value.Int i)
  | Lexer.FLOAT f ->
      advance st;
      Lit (Value.Float f)
  | Lexer.STRING s ->
      advance st;
      Lit (Value.Str s)
  | Lexer.LPAREN ->
      advance st;
      let e =
        if is_kw st "select" then Scalar_select (parse_select st)
        else parse_expr st
      in
      expect st Lexer.RPAREN;
      e
  | Lexer.IDENT "date" when (match peek2 st with Lexer.STRING _ -> true | _ -> false) ->
      advance st;
      let s = expect_string st in
      Lit (Value.Date (Date.of_string s))
  | Lexer.IDENT "interval" ->
      advance st;
      let n =
        match peek st with
        | Lexer.STRING s -> (
            advance st;
            match int_of_string_opt (String.trim s) with
            | Some n -> n
            | None -> fail "interval quantity must be an integer, got %S" s)
        | Lexer.INT i ->
            advance st;
            i
        | t -> fail "expected interval quantity, found %a" Lexer.pp_token t
      in
      let unit_ = interval_unit_of_string (expect_ident st) in
      Interval { n; unit_ }
  | Lexer.IDENT "case" ->
      advance st;
      let rec branches acc =
        if eat_kw st "when" then begin
          let cond = parse_expr st in
          expect_kw st "then";
          let v = parse_expr st in
          branches ((cond, v) :: acc)
        end
        else List.rev acc
      in
      let branches = branches [] in
      if branches = [] then fail "CASE requires at least one WHEN";
      let else_ = if eat_kw st "else" then Some (parse_expr st) else None in
      expect_kw st "end";
      Case { branches; else_ }
  | Lexer.IDENT "exists" ->
      advance st;
      expect st Lexer.LPAREN;
      let select = parse_select st in
      expect st Lexer.RPAREN;
      Exists { negated = false; select }
  | Lexer.IDENT "substring" ->
      advance st;
      expect st Lexer.LPAREN;
      let subject = parse_expr st in
      let start, len =
        if eat_kw st "from" then begin
          let start = parse_expr st in
          let len = if eat_kw st "for" then Some (parse_expr st) else None in
          (start, len)
        end
        else begin
          expect st Lexer.COMMA;
          let start = parse_expr st in
          let len =
            if peek st = Lexer.COMMA then begin
              advance st;
              Some (parse_expr st)
            end
            else None
          in
          (start, len)
        end
      in
      expect st Lexer.RPAREN;
      Substring { subject; start; len }
  | Lexer.IDENT "extract" ->
      advance st;
      expect st Lexer.LPAREN;
      let field = interval_unit_of_string (expect_ident st) in
      expect_kw st "from";
      let arg = parse_expr st in
      expect st Lexer.RPAREN;
      Extract { field; arg }
  | Lexer.IDENT "null" ->
      advance st;
      Lit Value.Null
  | Lexer.IDENT "true" ->
      advance st;
      Lit (Value.Bool true)
  | Lexer.IDENT "false" ->
      advance st;
      Lit (Value.Bool false)
  | Lexer.IDENT name when not (is_reserved name) -> (
      advance st;
      match peek st with
      | Lexer.LPAREN -> (
          (* function call: aggregates only in this dialect *)
          match agg_of_string name with
          | Some func ->
              advance st;
              let distinct = eat_kw st "distinct" in
              if peek st = Lexer.STAR then begin
                advance st;
                expect st Lexer.RPAREN;
                if func <> Count then fail "%s(*) is not valid" name;
                Agg { func; distinct; arg = None }
              end
              else begin
                let arg = parse_expr st in
                expect st Lexer.RPAREN;
                Agg { func; distinct; arg = Some arg }
              end
          | None -> fail "unknown function %s" name)
      | Lexer.DOT ->
          advance st;
          let col = expect_ident st in
          Col { qualifier = Some name; name = col }
      | _ -> Col { qualifier = None; name })
  | t -> fail "unexpected %a in expression" Lexer.pp_token t

(* -- SELECT --------------------------------------------------------- *)

and parse_select st =
  expect_kw st "select";
  let _all_dup = eat_kw st "distinct" in
  (* DISTINCT projection is rewritten as GROUP BY over all items below *)
  let distinct = _all_dup in
  let rec items acc =
    let item =
      if peek st = Lexer.STAR then begin
        advance st;
        Star
      end
      else begin
        let e = parse_expr st in
        let alias =
          if eat_kw st "as" then Some (expect_ident st)
          else
            match peek st with
            | Lexer.IDENT a when not (is_reserved a) ->
                advance st;
                Some a
            | _ -> None
        in
        Item (e, alias)
      end
    in
    if peek st = Lexer.COMMA then begin
      advance st;
      items (item :: acc)
    end
    else List.rev (item :: acc)
  in
  let items = items [] in
  expect_kw st "from";
  let rec from_items acc =
    let fi = parse_from_item st in
    if peek st = Lexer.COMMA then begin
      advance st;
      from_items (fi :: acc)
    end
    else List.rev (fi :: acc)
  in
  let from = from_items [] in
  let where = if eat_kw st "where" then Some (parse_expr st) else None in
  let group_by =
    if eat_kw st "group" then begin
      expect_kw st "by";
      let rec exprs acc =
        let e = parse_expr st in
        if peek st = Lexer.COMMA then begin
          advance st;
          exprs (e :: acc)
        end
        else List.rev (e :: acc)
      in
      exprs []
    end
    else []
  in
  let having = if eat_kw st "having" then Some (parse_expr st) else None in
  let order_by =
    if eat_kw st "order" then begin
      expect_kw st "by";
      let rec keys acc =
        let e = parse_expr st in
        let dir =
          if eat_kw st "desc" then `Desc
          else begin
            ignore (eat_kw st "asc");
            `Asc
          end
        in
        if peek st = Lexer.COMMA then begin
          advance st;
          keys ((e, dir) :: acc)
        end
        else List.rev ((e, dir) :: acc)
      in
      keys []
    end
    else []
  in
  let limit = if eat_kw st "limit" then Some (expect_int st) else None in
  let select = { items; from; where; group_by; having; order_by; limit } in
  if distinct && group_by = [] then begin
    (* SELECT DISTINCT e1, ..., en == GROUP BY e1, ..., en *)
    let exprs =
      List.map
        (function
          | Item (e, _) -> e
          | Star -> fail "SELECT DISTINCT * is not supported")
        items
    in
    { select with group_by = exprs }
  end
  else select

and parse_from_item st =
  let base =
    if peek st = Lexer.LPAREN then begin
      advance st;
      let select = parse_select st in
      expect st Lexer.RPAREN;
      ignore (eat_kw st "as");
      let alias = expect_ident st in
      Derived { select; alias }
    end
    else begin
      let table = expect_ident st in
      let alias =
        if eat_kw st "as" then Some (expect_ident st)
        else
          match peek st with
          | Lexer.IDENT a when not (is_reserved a) ->
              advance st;
              Some a
          | _ -> None
      in
      Table { table; alias }
    end
  in
  let rec joins left =
    if is_kw st "join" || is_kw st "left" || is_kw st "inner" then begin
      let kind =
        if eat_kw st "left" then begin
          ignore (eat_kw st "outer");
          `Left
        end
        else begin
          ignore (eat_kw st "inner");
          `Inner
        end
      in
      expect_kw st "join";
      let right =
        let table = expect_ident st in
        let alias =
          if eat_kw st "as" then Some (expect_ident st)
          else
            match peek st with
            | Lexer.IDENT a when not (is_reserved a) ->
                advance st;
                Some a
            | _ -> None
        in
        Table { table; alias }
      in
      expect_kw st "on";
      let on = parse_expr st in
      joins (Join { kind; left; right; on })
    end
    else left
  in
  joins base

(* -- Statements ----------------------------------------------------- *)

let parse_create_table st =
  let name = expect_ident st in
  expect st Lexer.LPAREN;
  let rec cols acc =
    let cname = expect_ident st in
    let tyname = expect_ident st in
    (* swallow optional length like varchar(25) and decimal(15, 2) *)
    if peek st = Lexer.LPAREN then begin
      advance st;
      let _ = expect_int st in
      if peek st = Lexer.COMMA then begin
        advance st;
        let _ = expect_int st in
        ()
      end;
      expect st Lexer.RPAREN
    end;
    let ty =
      match Value.ty_of_string tyname with
      | Some ty -> ty
      | None -> fail "unknown type %s" tyname
    in
    if peek st = Lexer.COMMA then begin
      advance st;
      cols ((cname, ty) :: acc)
    end
    else List.rev ((cname, ty) :: acc)
  in
  let cols = cols [] in
  expect st Lexer.RPAREN;
  Create_table { name; cols }

let parse_insert st =
  expect_kw st "into";
  let table = expect_ident st in
  let columns =
    if peek st = Lexer.LPAREN then begin
      advance st;
      let rec names acc =
        let n = expect_ident st in
        if peek st = Lexer.COMMA then begin
          advance st;
          names (n :: acc)
        end
        else List.rev (n :: acc)
      in
      let names = names [] in
      expect st Lexer.RPAREN;
      Some names
    end
    else None
  in
  expect_kw st "values";
  let rec tuples acc =
    expect st Lexer.LPAREN;
    let rec exprs acc =
      let e = parse_expr st in
      if peek st = Lexer.COMMA then begin
        advance st;
        exprs (e :: acc)
      end
      else List.rev (e :: acc)
    in
    let tuple = exprs [] in
    expect st Lexer.RPAREN;
    if peek st = Lexer.COMMA then begin
      advance st;
      tuples (tuple :: acc)
    end
    else List.rev (tuple :: acc)
  in
  Insert { table; columns; values = tuples [] }

let parse_update st =
  let table = expect_ident st in
  expect_kw st "set";
  let rec sets acc =
    let col = expect_ident st in
    expect st Lexer.EQ;
    let e = parse_expr st in
    if peek st = Lexer.COMMA then begin
      advance st;
      sets ((col, e) :: acc)
    end
    else List.rev ((col, e) :: acc)
  in
  let sets = sets [] in
  let where = if eat_kw st "where" then Some (parse_expr st) else None in
  Update { table; sets; where }

let parse_delete st =
  expect_kw st "from";
  let table = expect_ident st in
  let where = if eat_kw st "where" then Some (parse_expr st) else None in
  Delete { table; where }

let parse_create_index st =
  let index_name = expect_ident st in
  expect_kw st "on";
  let table = expect_ident st in
  expect st Lexer.LPAREN;
  let column = expect_ident st in
  expect st Lexer.RPAREN;
  Create_index { index_name; table; column }

let parse_stmt st =
  let stmt =
    if is_kw st "select" then Select (parse_select st)
    else if eat_kw st "create" then begin
      if eat_kw st "table" then parse_create_table st
      else if eat_kw st "index" then parse_create_index st
      else fail "expected TABLE or INDEX after CREATE"
    end
    else if eat_kw st "insert" then parse_insert st
    else if eat_kw st "update" then parse_update st
    else if eat_kw st "delete" then parse_delete st
    else if eat_kw st "drop" then begin
      if eat_kw st "table" then Drop_table (expect_ident st)
      else if eat_kw st "index" then Drop_index (expect_ident st)
      else fail "expected TABLE or INDEX after DROP"
    end
    else fail "expected a statement, found %a" Lexer.pp_token (peek st)
  in
  ignore (peek st = Lexer.SEMI && (advance st; true));
  if peek st <> Lexer.EOF then
    fail "trailing input after statement: %a" Lexer.pp_token (peek st);
  stmt

let parse sql =
  let st = { toks = Lexer.tokenize sql } in
  parse_stmt st

let parse_expression sql =
  let st = { toks = Lexer.tokenize sql } in
  let e = parse_expr st in
  if peek st <> Lexer.EOF then
    fail "trailing input after expression: %a" Lexer.pp_token (peek st);
  e
