(* Fixed-capacity row batches with a selection vector — the unit of
   work of the vectorized executor. The scan fills [rows] up to
   [capacity]; filters don't materialize surviving rows into a fresh
   list, they narrow [sel], the array of live slot indices; downstream
   operators iterate the selection. Both arrays are allocated once and
   reused across refills, so a scan→filter→project pipeline allocates
   nothing per batch beyond its actual output. *)

type t = {
  capacity : int;
  rows : Row.t array;
  sel : int array; (* first [selected] entries = live slots, ascending *)
  mutable length : int; (* filled prefix of [rows] *)
  mutable selected : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Batch.create: capacity must be >= 1";
  {
    capacity;
    rows = Array.make capacity [||];
    sel = Array.make capacity 0;
    length = 0;
    selected = 0;
  }

let capacity b = b.capacity
let length b = b.length
let selected b = b.selected
let is_full b = b.length >= b.capacity

let clear b =
  b.length <- 0;
  b.selected <- 0

let push b row =
  if is_full b then invalid_arg "Batch.push: batch is full";
  b.rows.(b.length) <- row;
  b.length <- b.length + 1

(* Reset the selection to every filled slot passing [pred], in slot
   order. *)
let select_where b pred =
  let n = ref 0 in
  for i = 0 to b.length - 1 do
    if pred b.rows.(i) then begin
      b.sel.(!n) <- i;
      incr n
    end
  done;
  b.selected <- !n

(* Narrow the current selection in place to entries passing [pred];
   relative order is preserved. *)
let refine b pred =
  let k = ref 0 in
  for j = 0 to b.selected - 1 do
    let i = b.sel.(j) in
    if pred b.rows.(i) then begin
      b.sel.(!k) <- i;
      incr k
    end
  done;
  b.selected <- !k

let iter_selected b f =
  for j = 0 to b.selected - 1 do
    f b.rows.(b.sel.(j))
  done
