(** Decrypted-page buffer pool: a bounded LRU cache of plaintext pages
    between a backend pager and the query engines. A hit on the secure
    backend skips device I/O {e and} the decrypt/Merkle-verify path;
    dirty frames are written back on eviction and on {!flush}. Pinned
    frames are never evicted. With every frame pinned (or zero
    frames), the pool degrades to pass-through.

    Hit/miss/eviction/write-back counters are mirrored into the
    {!Ironsafe_obs} metrics registry under scope ["bufpool"]. *)

type t

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable writebacks : int;
}

val create : frames:int -> Pager.t -> t
(** Pool of at most [frames] pages in front of the given backend
    pager. The backend keeps its own (usually null) observer; only
    physical accesses reach it. *)

val pager : t -> Pager.t
(** The pool viewed as a pager: reads/writes go through the cache,
    [Pager.cached] reports residency, [Pager.flush] writes back dirty
    frames. Set the engine observer on {e this} pager, not the
    backend's, so hits are reported with [~cached:true]. *)

val read : t -> int -> string
val write : t -> int -> string -> unit

val flush : t -> unit
(** Write back every dirty frame (frames stay resident). *)

val clear : t -> unit
(** Write back and drop every unpinned frame. *)

val invalidate : t -> unit
(** Drop {e every} frame, dirty or pinned, with no write-back — the
    power-loss path: after a crash the cached contents never existed,
    so flushing them would leak post-crash state into the recovered
    medium. *)

val pin : t -> int -> unit
(** Fault the page in (if absent) and make it unevictable. Counts as a
    hit/miss like a read.
    @raise Invalid_argument if no frame can be evicted to make room. *)

val unpin : t -> int -> unit
(** @raise Invalid_argument if the page is not pinned. *)

val pinned : t -> int -> bool
val resident : t -> int -> bool
val frame_count : t -> int

val capacity_bytes : t -> int
(** [frames * page capacity] — what the pool occupies if fully
    populated; the deployment charges this against EPC residency for
    host-enclave configurations. *)

val stats : t -> stats
val reset_stats : t -> unit
