(* Civil-calendar dates stored as days since 1970-01-01 (can be
   negative). Conversion uses the standard days-from-civil algorithm
   (Howard Hinnant's formulation), exact over the proleptic Gregorian
   calendar, so TPC-H interval arithmetic ('3' month etc.) is correct
   rather than 30-day approximated. *)

type t = int

let days_from_civil ~y ~m ~d =
  let y = if m <= 2 then y - 1 else y in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - (era * 400) in
  let mp = (m + 9) mod 12 in
  let doy = (((153 * mp) + 2) / 5) + d - 1 in
  let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
  (era * 146097) + doe - 719468

let civil_from_days z =
  let z = z + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - (era * 146097) in
  let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
  let y = yoe + (era * 400) in
  let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
  let mp = ((5 * doy) + 2) / 153 in
  let d = doy - (((153 * mp) + 2) / 5) + 1 in
  let m = if mp < 10 then mp + 3 else mp - 9 in
  ((if m <= 2 then y + 1 else y), m, d)

let is_leap y = (y mod 4 = 0 && y mod 100 <> 0) || y mod 400 = 0

let days_in_month y m =
  match m with
  | 1 | 3 | 5 | 7 | 8 | 10 | 12 -> 31
  | 4 | 6 | 9 | 11 -> 30
  | 2 -> if is_leap y then 29 else 28
  | _ -> invalid_arg "Date.days_in_month"

let of_ymd ~y ~m ~d =
  if m < 1 || m > 12 then invalid_arg "Date.of_ymd: month out of range";
  if d < 1 || d > days_in_month y m then
    invalid_arg "Date.of_ymd: day out of range";
  days_from_civil ~y ~m ~d

let to_ymd t = civil_from_days t

let of_string s =
  match String.split_on_char '-' s with
  | [ ys; ms; ds ] -> (
      match (int_of_string_opt ys, int_of_string_opt ms, int_of_string_opt ds) with
      | Some y, Some m, Some d -> of_ymd ~y ~m ~d
      | _ -> invalid_arg (Printf.sprintf "Date.of_string: %S" s))
  | _ -> invalid_arg (Printf.sprintf "Date.of_string: %S" s)

let to_string t =
  let y, m, d = to_ymd t in
  Printf.sprintf "%04d-%02d-%02d" y m d

let year t =
  let y, _, _ = to_ymd t in
  y

let add_days t n = t + n

let add_months t n =
  let y, m, d = to_ymd t in
  let total = ((y * 12) + (m - 1)) + n in
  let y' = if total >= 0 then total / 12 else (total - 11) / 12 in
  let m' = total - (y' * 12) + 1 in
  let d' = min d (days_in_month y' m') in
  of_ymd ~y:y' ~m:m' ~d:d'

let add_years t n = add_months t (12 * n)
let compare = Int.compare
