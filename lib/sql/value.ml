(* Runtime values of the query engine. SQL three-valued logic is
   represented by [Null] flowing through comparisons and arithmetic;
   boolean contexts treat Null as false (sufficient for the supported
   dialect, which has no IS NULL-sensitive aggregates beyond count). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Date of Date.t

type ty = TBool | TInt | TFloat | TStr | TDate

let ty_name = function
  | TBool -> "boolean"
  | TInt -> "integer"
  | TFloat -> "double"
  | TStr -> "varchar"
  | TDate -> "date"

let ty_of_string s =
  match String.lowercase_ascii s with
  | "boolean" | "bool" -> Some TBool
  | "integer" | "int" | "bigint" -> Some TInt
  | "double" | "float" | "real" | "decimal" | "numeric" -> Some TFloat
  | "varchar" | "char" | "text" | "string" -> Some TStr
  | "date" -> Some TDate
  | _ -> None

let type_of = function
  | Null -> None
  | Bool _ -> Some TBool
  | Int _ -> Some TInt
  | Float _ -> Some TFloat
  | Str _ -> Some TStr
  | Date _ -> Some TDate

exception Type_error of string

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

let to_string = function
  | Null -> "NULL"
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.2f" f
  | Str s -> s
  | Date d -> Date.to_string d

let pp ppf v = Fmt.string ppf (to_string v)

let as_float = function
  | Int i -> float_of_int i
  | Float f -> f
  | v -> type_error "expected numeric, got %s" (to_string v)

let as_int = function
  | Int i -> i
  | Float f -> int_of_float f
  | v -> type_error "expected integer, got %s" (to_string v)

let as_bool = function
  | Bool b -> b
  | Null -> false
  | v -> type_error "expected boolean, got %s" (to_string v)

(* SQL comparison; Null compares as unknown -> None. *)
let compare_opt a b =
  match (a, b) with
  | Null, _ | _, Null -> None
  | Bool x, Bool y -> Some (Bool.compare x y)
  | Int x, Int y -> Some (Int.compare x y)
  | Float x, Float y -> Some (Float.compare x y)
  | Int x, Float y -> Some (Float.compare (float_of_int x) y)
  | Float x, Int y -> Some (Float.compare x (float_of_int y))
  | Str x, Str y -> Some (String.compare x y)
  | Date x, Date y -> Some (Date.compare x y)
  (* dates and their day-number representation interoperate *)
  | Date x, Int y -> Some (Int.compare x y)
  | Int x, Date y -> Some (Int.compare x y)
  | x, y ->
      type_error "cannot compare %s with %s" (to_string x) (to_string y)

(* Total order for sorting and group keys: Null sorts first. *)
let compare_total a b =
  match (a, b) with
  | Null, Null -> 0
  | Null, _ -> -1
  | _, Null -> 1
  | _ -> ( match compare_opt a b with Some c -> c | None -> assert false)

let equal a b = match compare_opt a b with Some 0 -> true | _ -> false

let arith op a b =
  match (a, b) with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> (
      match op with
      | `Add -> Int (x + y)
      | `Sub -> Int (x - y)
      | `Mul -> Int (x * y)
      | `Div -> if y = 0 then Null else Float (float_of_int x /. float_of_int y))
  | (Int _ | Float _), (Int _ | Float _) -> (
      let x = as_float a and y = as_float b in
      match op with
      | `Add -> Float (x +. y)
      | `Sub -> Float (x -. y)
      | `Mul -> Float (x *. y)
      | `Div -> if y = 0.0 then Null else Float (x /. y))
  | Date d, Int n -> (
      match op with
      | `Add -> Date (Date.add_days d n)
      | `Sub -> Date (Date.add_days d (-n))
      | `Mul | `Div -> type_error "invalid date arithmetic")
  | Date x, Date y -> (
      match op with
      | `Sub -> Int (x - y)
      | `Add | `Mul | `Div -> type_error "invalid date arithmetic")
  | x, y ->
      type_error "invalid arithmetic on %s and %s" (to_string x) (to_string y)

(* SQL LIKE with % and _ wildcards. *)
let like ~pattern s =
  let n = String.length s and m = String.length pattern in
  (* dp over pattern positions; classic two-pointer with backtracking *)
  let rec go si pi star_si star_pi =
    if si = n then begin
      (* consume trailing %s *)
      let rec only_pct pi = pi = m || (pattern.[pi] = '%' && only_pct (pi + 1)) in
      if only_pct pi then true
      else if star_pi >= 0 && star_si < n then
        go (star_si + 1) (star_pi + 1) (star_si + 1) star_pi
      else false
    end
    else if pi < m && (pattern.[pi] = '_' || pattern.[pi] = s.[si]) then
      go (si + 1) (pi + 1) star_si star_pi
    else if pi < m && pattern.[pi] = '%' then go si (pi + 1) si pi
    else if star_pi >= 0 then go (star_si + 1) (star_pi + 1) (star_si + 1) star_pi
    else false
  in
  go 0 0 (-1) (-1)

(* -- Serialization (page storage and wire format) ------------------- *)

let encode buf v =
  let add_u16 n =
    Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
    Buffer.add_char buf (Char.chr (n land 0xff))
  in
  let add_i64 n =
    for i = 7 downto 0 do
      Buffer.add_char buf (Char.chr ((n asr (8 * i)) land 0xff))
    done
  in
  match v with
  | Null -> Buffer.add_char buf 'N'
  | Bool b -> Buffer.add_char buf (if b then 'T' else 'F')
  | Int i ->
      Buffer.add_char buf 'I';
      add_i64 i
  | Float f ->
      Buffer.add_char buf 'D';
      let bits = Int64.bits_of_float f in
      for i = 7 downto 0 do
        Buffer.add_char buf
          (Char.chr
             (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xff))
      done
  | Str s ->
      Buffer.add_char buf 'S';
      add_u16 (String.length s);
      Buffer.add_string buf s
  | Date d ->
      Buffer.add_char buf 'A';
      add_i64 d

let decode s off =
  let get_i64 off =
    (* sign-extend from the top byte; values fit OCaml's 63-bit int *)
    let b0 = Char.code s.[off] in
    let v = ref (if b0 >= 128 then b0 - 256 else b0) in
    for i = 1 to 7 do
      v := (!v lsl 8) lor Char.code s.[off + i]
    done;
    (!v, off + 8)
  in
  match s.[off] with
  | 'N' -> (Null, off + 1)
  | 'T' -> (Bool true, off + 1)
  | 'F' -> (Bool false, off + 1)
  | 'I' ->
      let v, off = get_i64 (off + 1) in
      (Int v, off)
  | 'D' ->
      let bits = ref 0L in
      for i = 0 to 7 do
        bits :=
          Int64.logor (Int64.shift_left !bits 8)
            (Int64.of_int (Char.code s.[off + 1 + i]))
      done;
      (Float (Int64.float_of_bits !bits), off + 9)
  | 'S' ->
      let len = (Char.code s.[off + 1] lsl 8) lor Char.code s.[off + 2] in
      (Str (String.sub s (off + 3) len), off + 3 + len)
  | 'A' ->
      let v, off = get_i64 (off + 1) in
      (Date v, off)
  | c -> type_error "corrupt value tag %C" c

(* Approximate in-memory footprint, for the memory meter. *)
let heap_size = function
  | Null | Bool _ -> 8
  | Int _ | Float _ | Date _ -> 16
  | Str s -> 24 + String.length s
