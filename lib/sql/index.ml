(* Secondary indexes: an ordered map from column values to the set of
   heap pages containing rows with that value. Page-granular (the scan
   re-applies its filters to every decoded row), which fits the
   page-oriented secure store: the point of an index here is to avoid
   reading — and decrypting, and freshness-checking — pages that cannot
   contain matching rows. *)

module IntSet = Set.Make (Int)

module ValueMap = Map.Make (struct
  type t = Value.t

  let compare = Value.compare_total
end)

type t = {
  index_name : string;
  table : string;
  column : string;
  col_idx : int;
  mutable entries : IntSet.t ValueMap.t;
}

let create ~index_name ~table ~column ~col_idx =
  {
    index_name = String.lowercase_ascii index_name;
    table = String.lowercase_ascii table;
    column = String.lowercase_ascii column;
    col_idx;
    entries = ValueMap.empty;
  }

let name t = t.index_name
let column t = t.column
let table t = t.table

(* NULLs are not indexed: no supported predicate selects them via the
   index (equality/range with NULL is never true). *)
let add t value ~page =
  match value with
  | Value.Null -> ()
  | v ->
      let cur =
        Option.value ~default:IntSet.empty (ValueMap.find_opt v t.entries)
      in
      t.entries <- ValueMap.add v (IntSet.add page cur) t.entries

let clear t = t.entries <- ValueMap.empty

let pages_equal t v =
  Option.value ~default:IntSet.empty (ValueMap.find_opt v t.entries)

(* Pages whose key lies in [lo, hi] (either bound optional, with an
   inclusive flag). *)
let pages_range t ?lo ?hi () =
  ValueMap.fold
    (fun k pages acc ->
      let above_lo =
        match lo with
        | None -> true
        | Some (v, inclusive) -> (
            match Value.compare_opt k v with
            | Some c -> if inclusive then c >= 0 else c > 0
            | None -> false)
      in
      let below_hi =
        match hi with
        | None -> true
        | Some (v, inclusive) -> (
            match Value.compare_opt k v with
            | Some c -> if inclusive then c <= 0 else c < 0
            | None -> false)
      in
      if above_lo && below_hi then IntSet.union pages acc else acc)
    t.entries IntSet.empty

let entry_count t = ValueMap.cardinal t.entries
