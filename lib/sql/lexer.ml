(* Hand-written SQL lexer. Keywords are not distinguished from
   identifiers here; the parser matches identifier spellings
   case-insensitively, which keeps the token type small. *)

type token =
  | IDENT of string (* lowercased *)
  | INT of int
  | FLOAT of float
  | STRING of string
  | LPAREN
  | RPAREN
  | COMMA
  | SEMI
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | DOT
  | EOF

let pp_token ppf = function
  | IDENT s -> Fmt.pf ppf "identifier %S" s
  | INT i -> Fmt.pf ppf "integer %d" i
  | FLOAT f -> Fmt.pf ppf "number %g" f
  | STRING s -> Fmt.pf ppf "string %S" s
  | LPAREN -> Fmt.string ppf "'('"
  | RPAREN -> Fmt.string ppf "')'"
  | COMMA -> Fmt.string ppf "','"
  | SEMI -> Fmt.string ppf "';'"
  | STAR -> Fmt.string ppf "'*'"
  | PLUS -> Fmt.string ppf "'+'"
  | MINUS -> Fmt.string ppf "'-'"
  | SLASH -> Fmt.string ppf "'/'"
  | EQ -> Fmt.string ppf "'='"
  | NEQ -> Fmt.string ppf "'<>'"
  | LT -> Fmt.string ppf "'<'"
  | LE -> Fmt.string ppf "'<='"
  | GT -> Fmt.string ppf "'>'"
  | GE -> Fmt.string ppf "'>='"
  | DOT -> Fmt.string ppf "'.'"
  | EOF -> Fmt.string ppf "end of input"

exception Lex_error of string

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '-' && !i + 1 < n && src.[!i + 1] = '-' then begin
      (* line comment *)
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      emit (IDENT (String.lowercase_ascii (String.sub src start (!i - start))))
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      if !i < n && src.[!i] = '.' && !i + 1 < n && is_digit src.[!i + 1] then begin
        incr i;
        while !i < n && is_digit src.[!i] do
          incr i
        done;
        emit (FLOAT (float_of_string (String.sub src start (!i - start))))
      end
      else emit (INT (int_of_string (String.sub src start (!i - start))))
    end
    else if c = '\'' then begin
      (* string literal with '' escaping *)
      let buf = Buffer.create 16 in
      incr i;
      let closed = ref false in
      while not !closed do
        if !i >= n then raise (Lex_error "unterminated string literal");
        if src.[!i] = '\'' then
          if !i + 1 < n && src.[!i + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char buf src.[!i];
          incr i
        end
      done;
      emit (STRING (Buffer.contents buf))
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      (match two with
      | "<>" | "!=" ->
          emit NEQ;
          incr i
      | "<=" ->
          emit LE;
          incr i
      | ">=" ->
          emit GE;
          incr i
      | _ -> (
          match c with
          | '(' -> emit LPAREN
          | ')' -> emit RPAREN
          | ',' -> emit COMMA
          | ';' -> emit SEMI
          | '*' -> emit STAR
          | '+' -> emit PLUS
          | '-' -> emit MINUS
          | '/' -> emit SLASH
          | '=' -> emit EQ
          | '<' -> emit LT
          | '>' -> emit GT
          | '.' -> emit DOT
          | _ -> raise (Lex_error (Printf.sprintf "unexpected character %C" c))));
      incr i
    end
  done;
  emit EOF;
  List.rev !tokens
