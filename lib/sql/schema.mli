(** Table schemas. Names are case-insensitive (stored lowercase). *)

type column = { col_name : string; col_ty : Value.ty }
type t

val create : name:string -> columns:(string * Value.ty) list -> t
(** @raise Invalid_argument on duplicate or empty columns. *)

val name : t -> string
val columns : t -> column array
val arity : t -> int
val column_index : t -> string -> int option
val column_names : t -> string list
val pp : Format.formatter -> t -> unit
