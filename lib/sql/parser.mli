(** Recursive-descent parser for the SQL dialect of {!Ast}. *)

exception Parse_error of string

val parse : string -> Ast.stmt
(** Parse one statement (an optional trailing [;] is allowed).
    @raise Parse_error on syntax errors,
    @raise Lexer.Lex_error on lexical errors. *)

val parse_expression : string -> Ast.expr
(** Parse a standalone expression (used by tests and tooling). *)
