(** Civil dates as days since 1970-01-01, with exact Gregorian
    month/year interval arithmetic. *)

type t = int

val of_ymd : y:int -> m:int -> d:int -> t
val to_ymd : t -> int * int * int

val of_string : string -> t
(** Parses ["YYYY-MM-DD"]. @raise Invalid_argument on malformed input. *)

val to_string : t -> string
val year : t -> int
val add_days : t -> int -> t

val add_months : t -> int -> t
(** Clamps the day-of-month (Jan 31 + 1 month = Feb 28/29). *)

val add_years : t -> int -> t
val compare : t -> t -> int
val is_leap : int -> bool
val days_in_month : int -> int -> int
