(** Runtime values with SQL semantics (three-valued comparisons, LIKE,
    date arithmetic) and a compact binary serialization used for both
    page storage and the wire format. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Date of Date.t

type ty = TBool | TInt | TFloat | TStr | TDate

exception Type_error of string

val ty_name : ty -> string
val ty_of_string : string -> ty option
val type_of : t -> ty option

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val as_float : t -> float
val as_int : t -> int
val as_bool : t -> bool

val compare_opt : t -> t -> int option
(** SQL comparison; [None] when either side is NULL. *)

val compare_total : t -> t -> int
(** Total order (NULL first) for sorting and keying. *)

val equal : t -> t -> bool

val arith : [ `Add | `Sub | `Mul | `Div ] -> t -> t -> t
(** Numeric and date arithmetic; NULL-propagating; division by zero
    yields NULL. *)

val like : pattern:string -> string -> bool
(** SQL LIKE with [%] and [_]. *)

val encode : Buffer.t -> t -> unit
val decode : string -> int -> t * int

val heap_size : t -> int
(** Approximate in-memory footprint in bytes (for the memory meter). *)
