(* The database catalog: table name -> heap file (+ its secondary
   indexes), sharing one pager. *)

type t = {
  pager : Pager.t;
  tables : (string, Heap_file.t) Hashtbl.t;
  indexes : (string, Index.t list) Hashtbl.t; (* table -> indexes *)
  index_names : (string, Index.t) Hashtbl.t;
}

exception Unknown_table of string
exception Duplicate_table of string
exception Unknown_index of string
exception Duplicate_index of string

let create ~pager =
  {
    pager;
    tables = Hashtbl.create 16;
    indexes = Hashtbl.create 16;
    index_names = Hashtbl.create 16;
  }

let pager t = t.pager

let create_table t schema =
  let name = Schema.name schema in
  if Hashtbl.mem t.tables name then raise (Duplicate_table name);
  let hf = Heap_file.create ~pager:t.pager ~schema in
  Hashtbl.replace t.tables name hf;
  hf

let find t name =
  let name = String.lowercase_ascii name in
  match Hashtbl.find_opt t.tables name with
  | Some hf -> hf
  | None -> raise (Unknown_table name)

let find_opt t name = Hashtbl.find_opt t.tables (String.lowercase_ascii name)

let drop_table t name =
  let name = String.lowercase_ascii name in
  if not (Hashtbl.mem t.tables name) then raise (Unknown_table name);
  List.iter
    (fun idx -> Hashtbl.remove t.index_names (Index.name idx))
    (Option.value ~default:[] (Hashtbl.find_opt t.indexes name));
  Hashtbl.remove t.indexes name;
  Hashtbl.remove t.tables name

let table_names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.tables [] |> List.sort compare

let total_pages t =
  Hashtbl.fold (fun _ hf acc -> acc + Heap_file.page_count hf) t.tables 0

let total_rows t =
  Hashtbl.fold (fun _ hf acc -> acc + Heap_file.row_count hf) t.tables 0

(* -- Secondary indexes ---------------------------------------------- *)

let indexes_for t table =
  Option.value ~default:[]
    (Hashtbl.find_opt t.indexes (String.lowercase_ascii table))

let index_on t ~table ~column =
  List.find_opt
    (fun idx -> Index.column idx = String.lowercase_ascii column)
    (indexes_for t table)

(* (Re)populate an index from its table's current contents. *)
let rebuild_index t idx =
  Index.clear idx;
  let hf = find t (Index.table idx) in
  let schema = Heap_file.schema hf in
  match Schema.column_index schema (Index.column idx) with
  | None -> ()
  | Some col ->
      Heap_file.iter_pages hf (Heap_file.stored_pages hf)
        ~f:(fun ~page row -> Index.add idx row.(col) ~page)

let rebuild_indexes t table =
  List.iter (rebuild_index t) (indexes_for t table)

(* After the pager's backing store has been crash-recovered: re-anchor
   every heap file on its storage image and repopulate the indexes. *)
let reload_tables t =
  Hashtbl.iter (fun _ hf -> Heap_file.reload hf) t.tables;
  Hashtbl.iter (fun table _ -> rebuild_indexes t table) t.indexes

let create_index t ~index_name ~table ~column =
  let index_name = String.lowercase_ascii index_name in
  if Hashtbl.mem t.index_names index_name then raise (Duplicate_index index_name);
  let table = String.lowercase_ascii table in
  let hf = find t table in
  let schema = Heap_file.schema hf in
  match Schema.column_index schema column with
  | None ->
      raise
        (Unknown_table (Printf.sprintf "%s has no column %s" table column))
  | Some col_idx ->
      let idx = Index.create ~index_name ~table ~column ~col_idx in
      rebuild_index t idx;
      Hashtbl.replace t.indexes table (idx :: indexes_for t table);
      Hashtbl.replace t.index_names index_name idx;
      idx

let drop_index t index_name =
  let index_name = String.lowercase_ascii index_name in
  match Hashtbl.find_opt t.index_names index_name with
  | None -> raise (Unknown_index index_name)
  | Some idx ->
      Hashtbl.remove t.index_names index_name;
      Hashtbl.replace t.indexes (Index.table idx)
        (List.filter
           (fun i -> Index.name i <> index_name)
           (indexes_for t (Index.table idx)))

(* Index maintenance hook for the insert path. *)
let note_insert t ~table ~page row =
  List.iter
    (fun idx ->
      let col =
        match
          Schema.column_index (Heap_file.schema (find t table)) (Index.column idx)
        with
        | Some c -> c
        | None -> -1
      in
      if col >= 0 then Index.add idx row.(col) ~page)
    (indexes_for t table)
