(* Rows: value arrays plus (de)serialization against a page layout.
   Each encoded row is u16 length + concatenated encoded values. *)

type t = Value.t array

let encode row =
  let buf = Buffer.create 64 in
  Array.iter (Value.encode buf) row;
  let body = Buffer.contents buf in
  let n = String.length body in
  if n > 0xffff then invalid_arg "Row.encode: row too large";
  let out = Bytes.create (n + 2) in
  Bytes.set out 0 (Char.chr (n lsr 8));
  Bytes.set out 1 (Char.chr (n land 0xff));
  Bytes.blit_string body 0 out 2 n;
  Bytes.to_string out

let encoded_size row = String.length (encode row)

(* Decode one row of [arity] values at [off]; returns row and next offset. *)
let decode ~arity s off =
  let len = (Char.code s.[off] lsl 8) lor Char.code s.[off + 1] in
  let row = Array.make arity Value.Null in
  let pos = ref (off + 2) in
  for i = 0 to arity - 1 do
    let v, next = Value.decode s !pos in
    row.(i) <- v;
    pos := next
  done;
  if !pos <> off + 2 + len then failwith "Row.decode: length mismatch";
  (row, !pos)

let heap_size row =
  Array.fold_left (fun acc v -> acc + Value.heap_size v) 16 row

let pp ppf row =
  Fmt.pf ppf "(%s)"
    (String.concat ", " (Array.to_list (Array.map Value.to_string row)))
