(* Abstract syntax of the supported SQL dialect — the subset needed to
   express the 17 evaluated TPC-H queries plus the DML used by the
   GDPR policy rewrites (CREATE/INSERT/UPDATE/DELETE). *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type agg_func = Sum | Avg | Min | Max | Count

type interval_unit = Day | Month | Year

type expr =
  | Lit of Value.t
  | Col of { qualifier : string option; name : string }
  | Unary of [ `Not | `Neg ] * expr
  | Binop of binop * expr * expr
  | Like of { negated : bool; subject : expr; pattern : string }
  | Between of { negated : bool; subject : expr; low : expr; high : expr }
  | In_list of { negated : bool; subject : expr; items : expr list }
  | In_select of { negated : bool; subject : expr; select : select }
  | Exists of { negated : bool; select : select }
  | Scalar_select of select
  | Case of { branches : (expr * expr) list; else_ : expr option }
  | Agg of { func : agg_func; distinct : bool; arg : expr option }
      (** [arg = None] means count-star. *)
  | Extract of { field : interval_unit; arg : expr }
  | Interval of { n : int; unit_ : interval_unit }
  | Is_null of { negated : bool; subject : expr }
  | Substring of { subject : expr; start : expr; len : expr option }
      (** SQL SUBSTRING (1-based, clamped) *)

and select_item = Star | Item of expr * string option

and from_item =
  | Table of { table : string; alias : string option }
  | Derived of { select : select; alias : string }
  | Join of {
      kind : [ `Inner | `Left ];
      left : from_item;
      right : from_item;
      on : expr;
    }

and select = {
  items : select_item list;
  from : from_item list;
  where : expr option;
  group_by : expr list;
  having : expr option;
  order_by : (expr * [ `Asc | `Desc ]) list;
  limit : int option;
}

type stmt =
  | Select of select
  | Create_table of { name : string; cols : (string * Value.ty) list }
  | Insert of {
      table : string;
      columns : string list option;
      values : expr list list;
    }
  | Update of { table : string; sets : (string * expr) list; where : expr option }
  | Delete of { table : string; where : expr option }
  | Drop_table of string
  | Create_index of { index_name : string; table : string; column : string }
  | Drop_index of string

(* -- Structural helpers used by the planner and the partitioner ----- *)

(* All conjuncts of an expression (flattening nested ANDs). *)
let rec conjuncts = function
  | Binop (And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let conjoin = function
  | [] -> None
  | e :: rest -> Some (List.fold_left (fun acc x -> Binop (And, acc, x)) e rest)

(* Column references appearing in an expression, excluding those inside
   subqueries (a subquery's own references are not the outer query's;
   correlated references are accounted by the evaluator's scoping). *)
let rec columns_of_expr acc = function
  | Lit _ | Interval _ -> acc
  | Col { qualifier; name } -> (qualifier, name) :: acc
  | Unary (_, e) | Extract { arg = e; _ } | Is_null { subject = e; _ } ->
      columns_of_expr acc e
  | Substring { subject; start; len } ->
      let acc = columns_of_expr (columns_of_expr acc subject) start in
      Option.fold ~none:acc ~some:(columns_of_expr acc) len
  | Binop (_, a, b) -> columns_of_expr (columns_of_expr acc a) b
  | Like { subject; _ } -> columns_of_expr acc subject
  | Between { subject; low; high; _ } ->
      columns_of_expr (columns_of_expr (columns_of_expr acc subject) low) high
  | In_list { subject; items; _ } ->
      List.fold_left columns_of_expr (columns_of_expr acc subject) items
  | In_select { subject; _ } -> columns_of_expr acc subject
  | Exists _ -> acc
  | Scalar_select _ -> acc
  | Case { branches; else_ } ->
      let acc =
        List.fold_left
          (fun acc (c, v) -> columns_of_expr (columns_of_expr acc c) v)
          acc branches
      in
      Option.fold ~none:acc ~some:(columns_of_expr acc) else_
  | Agg { arg; _ } -> Option.fold ~none:acc ~some:(columns_of_expr acc) arg

let rec contains_subquery = function
  | In_select _ | Exists _ | Scalar_select _ -> true
  | Lit _ | Col _ | Interval _ -> false
  | Unary (_, e) | Extract { arg = e; _ } | Is_null { subject = e; _ } ->
      contains_subquery e
  | Substring { subject; start; len } ->
      contains_subquery subject || contains_subquery start
      || Option.fold ~none:false ~some:contains_subquery len
  | Binop (_, a, b) -> contains_subquery a || contains_subquery b
  | Like { subject; _ } -> contains_subquery subject
  | Between { subject; low; high; _ } ->
      contains_subquery subject || contains_subquery low || contains_subquery high
  | In_list { subject; items; _ } ->
      contains_subquery subject || List.exists contains_subquery items
  | Case { branches; else_ } ->
      List.exists (fun (c, v) -> contains_subquery c || contains_subquery v) branches
      || Option.fold ~none:false ~some:contains_subquery else_
  | Agg { arg; _ } -> Option.fold ~none:false ~some:contains_subquery arg

let rec contains_agg = function
  | Agg _ -> true
  | Lit _ | Col _ | Interval _ | Exists _ | In_select _ | Scalar_select _ ->
      false
  | Unary (_, e) | Extract { arg = e; _ } | Is_null { subject = e; _ } ->
      contains_agg e
  | Substring { subject; start; len } ->
      contains_agg subject || contains_agg start
      || Option.fold ~none:false ~some:contains_agg len
  | Binop (_, a, b) -> contains_agg a || contains_agg b
  | Like { subject; _ } -> contains_agg subject
  | Between { subject; low; high; _ } ->
      contains_agg subject || contains_agg low || contains_agg high
  | In_list { subject; items; _ } ->
      contains_agg subject || List.exists contains_agg items
  | Case { branches; else_ } ->
      List.exists (fun (c, v) -> contains_agg c || contains_agg v) branches
      || Option.fold ~none:false ~some:contains_agg else_

(* Base tables of a FROM clause with their effective binding name. *)
let rec tables_of_from_item acc = function
  | Table { table; alias } ->
      (table, Option.value ~default:table alias) :: acc
  | Derived { select; _ } ->
      (* a derived table's base tables are its own FROM's base tables *)
      List.fold_left tables_of_from_item acc select.from
  | Join { left; right; _ } ->
      tables_of_from_item (tables_of_from_item acc left) right

let tables_of_select s = List.fold_left tables_of_from_item [] s.from |> List.rev
