(** Rows and their binary encoding. *)

type t = Value.t array

val encode : t -> string
(** u16 body length + encoded values. *)

val encoded_size : t -> int
val decode : arity:int -> string -> int -> t * int
val heap_size : t -> int
val pp : Format.formatter -> t -> unit
