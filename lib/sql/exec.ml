(* Query planning and execution.

   The executor is materializing (each stage produces row lists),
   which suits analytic scans; plans are compiled closures with all
   column references resolved to array indices up front.

   Two execution modes share this planner and the same compiled
   expressions. [Row_at_a_time] is the original pull-everything path.
   [Batched n] is vectorized: scans produce fixed-capacity row batches
   (see [Batch]) whose filters narrow a selection vector over reused
   arrays instead of materializing filtered copies, and eligible
   single-table pipelines fuse scan → filter → project/aggregate so no
   intermediate row list exists at all. Because both modes evaluate
   the identical compiled closures in the identical row order, they
   must produce byte-identical results — the batch differential suite
   holds them to that.

   Join strategy: left-deep over the FROM list with a greedy reorder —
   at each step prefer a table connected to the accumulated result by
   an equi-predicate (hash join); otherwise fall back to a filtered
   nested loop. Explicit JOIN ... ON (including LEFT OUTER) is planned
   structurally.

   Subqueries (EXISTS / IN / scalar) are planned in two stages:
   stage A — everything independent of the outer row — runs and is
   memoized once; correlated equi-predicates become a hash semi-join
   index over stage-A rows, so correlated evaluation is a bucket probe
   plus residual filters instead of a rescan per outer row. *)

open Ast

exception Sql_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Sql_error s)) fmt

(* How plans drive their scans; batch size is the new cost-segment
   granularity (the observer's [on_batch] fires once per flushed
   batch). *)
type exec_mode = Row_at_a_time | Batched of int

type state = { catalog : Catalog.t; obs : Observer.t; mode : exec_mode }

(* -- Environments --------------------------------------------------- *)

type env = { row : Row.t; aggs : Value.t array; up : env option }

let no_aggs : Value.t array = [||]
let mk_env ?(aggs = no_aggs) ?up row = { row; aggs; up }

let rec climb env depth =
  if depth = 0 then env
  else
    match env.up with
    | Some up -> climb up (depth - 1)
    | None -> fail "internal: missing outer environment"

type comp_ctx = {
  cols : (string option * string) array;
  agg_slots : (Ast.expr * int) list;
  parent : comp_ctx option;
  uses_outer : bool ref;
  state : state;
}

let mk_ctx ?(agg_slots = []) ?parent ~state cols =
  { cols; agg_slots; parent; uses_outer = ref false; state }

let resolve_local cols qualifier name =
  let name = String.lowercase_ascii name in
  let qualifier = Option.map String.lowercase_ascii qualifier in
  let hits = ref [] in
  Array.iteri
    (fun i (q, n) ->
      let qual_ok =
        match qualifier with None -> true | Some want -> q = Some want
      in
      if qual_ok && n = name then hits := i :: !hits)
    cols;
  !hits

let rec resolve ctx qualifier name depth =
  match resolve_local ctx.cols qualifier name with
  | [ i ] -> Some (depth, i)
  | [] -> (
      match ctx.parent with
      | Some p -> resolve p qualifier name (depth + 1)
      | None -> None)
  | _ :: _ :: _ ->
      fail "ambiguous column reference %s%s"
        (match qualifier with Some q -> q ^ "." | None -> "")
        name

(* -- Expression compilation ----------------------------------------- *)

type compiled = env -> Value.t

let bool_binop op =
  match op with
  | Eq -> Some (fun c -> c = 0)
  | Neq -> Some (fun c -> c <> 0)
  | Lt -> Some (fun c -> c < 0)
  | Le -> Some (fun c -> c <= 0)
  | Gt -> Some (fun c -> c > 0)
  | Ge -> Some (fun c -> c >= 0)
  | _ -> None

let arith_binop = function
  | Add -> Some `Add
  | Sub -> Some `Sub
  | Mul -> Some `Mul
  | Div -> Some `Div
  | _ -> None

(* Set of values for IN-subquery probing. *)
type value_set = { mutable has_null : bool; table : (string, unit) Hashtbl.t }

let encode_value v =
  let buf = Buffer.create 16 in
  Value.encode buf v;
  Buffer.contents buf

let encode_values vs =
  let buf = Buffer.create 32 in
  List.iter (Value.encode buf) vs;
  Buffer.contents buf

(* Subquery runtime: a function from the (optional) outer env to the
   result rows of the subquery. *)
type subplan = {
  sub_cols : string list;
  sub_correlated : bool;
  sub_run : env option -> Row.t list;
}

let rec compile ctx expr : compiled =
  match expr with
  | Lit v -> fun _ -> v
  | Col { qualifier; name } -> (
      (* aggregate slot references take priority in post-agg contexts *)
      match resolve ctx qualifier name 0 with
      | Some (0, i) -> fun env -> env.row.(i)
      | Some (depth, i) ->
          ctx.uses_outer := true;
          fun env -> (climb env depth).row.(i)
      | None ->
          fail "unknown column %s%s"
            (match qualifier with Some q -> q ^ "." | None -> "")
            name)
  | Agg _ -> (
      match List.find_opt (fun (e, _) -> e = expr) ctx.agg_slots with
      | Some (_, slot) -> fun env -> env.aggs.(slot)
      | None -> fail "aggregate used outside of an aggregation context")
  | Unary (`Not, e) ->
      let ce = compile ctx e in
      fun env -> Value.Bool (not (Value.as_bool (ce env)))
  | Unary (`Neg, e) -> (
      let ce = compile ctx e in
      fun env ->
        match ce env with
        | Value.Int i -> Value.Int (-i)
        | Value.Float f -> Value.Float (-.f)
        | Value.Null -> Value.Null
        | v -> fail "cannot negate %s" (Value.to_string v))
  | Binop (And, a, b) ->
      let ca = compile ctx a and cb = compile ctx b in
      fun env -> Value.Bool (Value.as_bool (ca env) && Value.as_bool (cb env))
  | Binop (Or, a, b) ->
      let ca = compile ctx a and cb = compile ctx b in
      fun env -> Value.Bool (Value.as_bool (ca env) || Value.as_bool (cb env))
  | Binop (op, a, Interval { n; unit_ }) -> (
      let ca = compile ctx a in
      let shift =
        match op with
        | Add -> n
        | Sub -> -n
        | _ -> fail "intervals only support + and -"
      in
      fun env ->
        match ca env with
        | Value.Date d ->
            Value.Date
              (match unit_ with
              | Day -> Date.add_days d shift
              | Month -> Date.add_months d shift
              | Year -> Date.add_years d shift)
        | Value.Null -> Value.Null
        | v -> fail "interval arithmetic on non-date %s" (Value.to_string v))
  | Binop (op, a, b) -> (
      let ca = compile ctx a and cb = compile ctx b in
      match bool_binop op with
      | Some test -> (
          fun env ->
            match Value.compare_opt (ca env) (cb env) with
            | None -> Value.Null
            | Some c -> Value.Bool (test c))
      | None -> (
          match arith_binop op with
          | Some aop -> fun env -> Value.arith aop (ca env) (cb env)
          | None -> assert false))
  | Like { negated; subject; pattern } -> (
      let cs = compile ctx subject in
      fun env ->
        match cs env with
        | Value.Str s ->
            let m = Value.like ~pattern s in
            Value.Bool (if negated then not m else m)
        | Value.Null -> Value.Null
        | v -> fail "LIKE on non-string %s" (Value.to_string v))
  | Between { negated; subject; low; high } -> (
      let cs = compile ctx subject
      and cl = compile ctx low
      and ch = compile ctx high in
      fun env ->
        let v = cs env in
        match (Value.compare_opt v (cl env), Value.compare_opt v (ch env)) with
        | Some a, Some b ->
            let inside = a >= 0 && b <= 0 in
            Value.Bool (if negated then not inside else inside)
        | _ -> Value.Null)
  | In_list { negated; subject; items } ->
      let cs = compile ctx subject in
      let citems = List.map (compile ctx) items in
      fun env ->
        let v = cs env in
        let mem =
          List.exists (fun ci -> Value.equal v (ci env)) citems
        in
        Value.Bool (if negated then not mem else mem)
  | In_select { negated; subject; select } ->
      let cs = compile ctx subject in
      let sub = plan_select ctx.state ~outer:(Some ctx) select in
      let memo : (string, value_set) Hashtbl.t = Hashtbl.create 4 in
      let correlated = sub.sub_correlated in
      fun env ->
        let key = if correlated then corr_key env else "" in
        let set =
          match Hashtbl.find_opt memo key with
          | Some s -> s
          | None ->
              let rows = sub.sub_run (Some env) in
              let s = { has_null = false; table = Hashtbl.create 64 } in
              List.iter
                (fun (r : Row.t) ->
                  match r.(0) with
                  | Value.Null -> s.has_null <- true
                  | v -> Hashtbl.replace s.table (encode_value v) ())
                rows;
              if not correlated then Hashtbl.reset memo;
              Hashtbl.replace memo key s;
              s
        in
        let v = cs env in
        let mem = v <> Value.Null && Hashtbl.mem set.table (encode_value v) in
        if mem then Value.Bool (not negated)
        else if set.has_null || v = Value.Null then Value.Null
        else Value.Bool negated
  | Exists { negated; select } ->
      let sub = plan_select ctx.state ~outer:(Some ctx) select in
      fun env ->
        let rows = sub.sub_run (Some env) in
        let e = rows <> [] in
        Value.Bool (if negated then not e else e)
  | Scalar_select select -> (
      let sub = plan_select ctx.state ~outer:(Some ctx) select in
      fun env ->
        match sub.sub_run (Some env) with
        | [] -> Value.Null
        | [ r ] -> r.(0)
        | _ :: _ :: _ -> fail "scalar subquery returned more than one row")
  | Case { branches; else_ } ->
      let cbranches =
        List.map (fun (c, v) -> (compile ctx c, compile ctx v)) branches
      in
      let celse = Option.map (compile ctx) else_ in
      fun env ->
        let rec go = function
          | [] -> ( match celse with Some c -> c env | None -> Value.Null)
          | (cc, cv) :: rest -> if Value.as_bool (cc env) then cv env else go rest
        in
        go cbranches
  | Extract { field; arg } -> (
      let ca = compile ctx arg in
      fun env ->
        match ca env with
        | Value.Date d ->
            let y, m, dd = Date.to_ymd d in
            Value.Int (match field with Year -> y | Month -> m | Day -> dd)
        | Value.Null -> Value.Null
        | v -> fail "EXTRACT from non-date %s" (Value.to_string v))
  | Substring { subject; start; len } -> (
      let cs = compile ctx subject in
      let cstart = compile ctx start in
      let clen = Option.map (compile ctx) len in
      fun env ->
        match cs env with
        | Value.Null -> Value.Null
        | Value.Str s ->
            let n = String.length s in
            (* SQL semantics: 1-based start, clamped to the string *)
            let start = Value.as_int (cstart env) in
            let from = max 0 (start - 1) in
            let upto =
              match clen with
              | None -> n
              | Some c -> min n (max 0 (start - 1 + Value.as_int (c env)))
            in
            if from >= upto then Value.Str ""
            else Value.Str (String.sub s from (upto - from))
        | v -> fail "SUBSTRING on non-string %s" (Value.to_string v))
  | Interval _ -> fail "interval literal outside of date arithmetic"
  | Is_null { negated; subject } ->
      let cs = compile ctx subject in
      fun env ->
        let isn = cs env = Value.Null in
        Value.Bool (if negated then not isn else isn)

(* Correlation memo key: the outer row contents along the whole scope
   chain — equal outer rows produce equal subquery inputs. *)
and corr_key env =
  let buf = Buffer.create 32 in
  let rec add env =
    Array.iter (Value.encode buf) env.row;
    match env.up with Some u -> add u | None -> ()
  in
  add env;
  Buffer.contents buf

(* -- FROM planning --------------------------------------------------- *)

and binding_of_from = function
  | Table { table; alias } -> Option.value ~default:table alias
  | Derived { alias; _ } -> alias
  | Join _ -> fail "internal: binding_of_from on join"

(* Bindings referenced by an expression, resolved against [ctx];
   returns [None] if the expression references the outer scope or
   contains a subquery (not safely classifiable). *)
and local_bindings ctx e =
  if contains_subquery e then None
  else begin
    let cols = columns_of_expr [] e in
    let rec collect acc = function
      | [] -> Some acc
      | (q, n) :: rest -> (
          match resolve ctx q n 0 with
          | Some (0, i) -> (
              match fst ctx.cols.(i) with
              | Some b -> collect (if List.mem b acc then acc else b :: acc) rest
              | None -> None)
          | Some (_, _) -> None (* outer reference *)
          | None -> None)
    in
    collect [] cols
  end

(* Can one of the pushdown [filters] be answered from an index on
   [table]? Returns the page set to scan if so. Matching pages are
   still fully re-filtered, so using an index is always sound. *)
and index_access state table filters =
  let index_for name = Catalog.index_on state.catalog ~table ~column:name in
  let probe = function
    | Binop (Eq, Col { name; _ }, Lit v) | Binop (Eq, Lit v, Col { name; _ })
      ->
        Option.map (fun idx -> Index.pages_equal idx v) (index_for name)
    | Binop (Lt, Col { name; _ }, Lit v) | Binop (Gt, Lit v, Col { name; _ })
      ->
        Option.map (fun idx -> Index.pages_range idx ~hi:(v, false) ()) (index_for name)
    | Binop (Le, Col { name; _ }, Lit v) | Binop (Ge, Lit v, Col { name; _ })
      ->
        Option.map (fun idx -> Index.pages_range idx ~hi:(v, true) ()) (index_for name)
    | Binop (Gt, Col { name; _ }, Lit v) | Binop (Lt, Lit v, Col { name; _ })
      ->
        Option.map (fun idx -> Index.pages_range idx ~lo:(v, false) ()) (index_for name)
    | Binop (Ge, Col { name; _ }, Lit v) | Binop (Le, Lit v, Col { name; _ })
      ->
        Option.map (fun idx -> Index.pages_range idx ~lo:(v, true) ()) (index_for name)
    | Between { negated = false; subject = Col { name; _ }; low = Lit lo; high = Lit hi }
      ->
        Option.map
          (fun idx -> Index.pages_range idx ~lo:(lo, true) ~hi:(hi, true) ())
          (index_for name)
    | _ -> None
  in
  (* intersect the page sets of every indexable conjunct *)
  List.fold_left
    (fun acc f ->
      match (acc, probe f) with
      | None, p -> p
      | Some a, Some b -> Some (Index.IntSet.inter a b)
      | Some a, None -> Some a)
    None filters

(* Shared scan front end: resolved output columns, compiled pushdown
   filters, and a row iterator over either the index-selected pages or
   the whole heap file. Both execution modes are built from these. *)
and scan_parts state ~binding table ~filters ~ctx_parent =
  let hf =
    try Catalog.find state.catalog table
    with Catalog.Unknown_table t -> fail "unknown table %s" t
  in
  let schema = Heap_file.schema hf in
  let cols =
    Array.map
      (fun c -> (Some (String.lowercase_ascii binding), c.Schema.col_name))
      (Schema.columns schema)
  in
  let ctx =
    {
      cols;
      agg_slots = [];
      parent = ctx_parent;
      uses_outer = ref false;
      state;
    }
  in
  let cfilters = List.map (compile ctx) filters in
  let index_pages = index_access state table filters in
  let iter_rows f =
    match index_pages with
    | Some pages ->
        Heap_file.iter_pages hf
          (List.sort compare (Index.IntSet.elements pages))
          ~f:(fun ~page:_ row -> f row)
    | None -> Heap_file.iter hf ~f
  in
  (cols, cfilters, iter_rows)

(* Vectorized scan: fill a reused batch from the heap file, apply the
   pushdown filters as a selection vector, and hand each non-empty
   batch to [consume]. Work is charged at batch granularity with the
   same totals as the row path: [on_rows] per fill, [on_alloc] per
   surviving row, plus [on_batch] at each flush (the cost-segment
   boundary). [consume] may narrow the selection further but must not
   retain the batch. *)
and scan_batches state ~cfilters ~iter_rows ~cap consume =
  let b = Batch.create ~capacity:cap in
  let flush () =
    if Batch.length b > 0 then begin
      state.obs.Observer.on_rows (Batch.length b);
      Batch.select_where b (fun row ->
          let env = mk_env row in
          List.for_all (fun f -> Value.as_bool (f env)) cfilters);
      state.obs.Observer.on_batch ~rows:(Batch.selected b);
      Batch.iter_selected b (fun row ->
          state.obs.Observer.on_alloc (Row.heap_size row));
      consume b;
      Batch.clear b
    end
  in
  iter_rows (fun row ->
      Batch.push b row;
      if Batch.is_full b then flush ());
  flush ()

and scan_table state ~binding table ~filters ~ctx_parent =
  let cols, cfilters, iter_rows =
    scan_parts state ~binding table ~filters ~ctx_parent
  in
  let run _outer_env =
    match state.mode with
    | Row_at_a_time ->
        let acc = ref [] in
        iter_rows (fun row ->
            state.obs.Observer.on_rows 1;
            let env = mk_env row in
            if List.for_all (fun f -> Value.as_bool (f env)) cfilters then begin
              state.obs.Observer.on_alloc (Row.heap_size row);
              acc := row :: !acc
            end);
        List.rev !acc
    | Batched cap ->
        (* batched scan+filter feeding the (materializing) join and
           post stages: identical output list, batch-granular charges *)
        let acc = ref [] in
        scan_batches state ~cfilters ~iter_rows ~cap (fun b ->
            Batch.iter_selected b (fun row -> acc := row :: !acc));
        List.rev !acc
  in
  (cols, run)

(* Hash join: build on the right input, probe with the left. *)
and hash_join state ~left_rows ~right_rows ~lkeys ~rkeys ~out_arity:_
    ~residual ~combined_width =
  let index : (string, Row.t list) Hashtbl.t =
    Hashtbl.create (max 16 (List.length right_rows))
  in
  List.iter
    (fun (r : Row.t) ->
      state.obs.Observer.on_rows 1;
      let env = mk_env r in
      let key = encode_values (List.map (fun k -> k env) rkeys) in
      let bucket = Option.value ~default:[] (Hashtbl.find_opt index key) in
      Hashtbl.replace index key (r :: bucket))
    right_rows;
  let out = ref [] in
  List.iter
    (fun (l : Row.t) ->
      state.obs.Observer.on_rows 1;
      let lenv = mk_env l in
      let key = encode_values (List.map (fun k -> k lenv) lkeys) in
      match Hashtbl.find_opt index key with
      | None -> ()
      | Some bucket ->
          List.iter
            (fun (r : Row.t) ->
              state.obs.Observer.on_rows 1;
              let joined = Array.make combined_width Value.Null in
              Array.blit l 0 joined 0 (Array.length l);
              Array.blit r 0 joined (Array.length l) (Array.length r);
              let env = mk_env joined in
              if List.for_all (fun f -> Value.as_bool (f env)) residual then begin
                state.obs.Observer.on_alloc (Row.heap_size joined);
                out := joined :: !out
              end)
            bucket)
    left_rows;
  List.rev !out

and nested_loop_join state ~left_rows ~right_rows ~residual ~combined_width =
  let out = ref [] in
  List.iter
    (fun (l : Row.t) ->
      List.iter
        (fun (r : Row.t) ->
          state.obs.Observer.on_rows 1;
          let joined = Array.make combined_width Value.Null in
          Array.blit l 0 joined 0 (Array.length l);
          Array.blit r 0 joined (Array.length l) (Array.length r);
          let env = mk_env joined in
          if List.for_all (fun f -> Value.as_bool (f env)) residual then begin
            state.obs.Observer.on_alloc (Row.heap_size joined);
            out := joined :: !out
          end)
        right_rows)
    left_rows;
  List.rev !out

and left_outer_join state ~left_rows ~right_rows ~lkeys ~rkeys ~residual
    ~left_width ~right_width =
  let combined_width = left_width + right_width in
  let index : (string, Row.t list) Hashtbl.t =
    Hashtbl.create (max 16 (List.length right_rows))
  in
  List.iter
    (fun (r : Row.t) ->
      state.obs.Observer.on_rows 1;
      let env = mk_env r in
      let key = encode_values (List.map (fun k -> k env) rkeys) in
      let bucket = Option.value ~default:[] (Hashtbl.find_opt index key) in
      Hashtbl.replace index key (r :: bucket))
    right_rows;
  let out = ref [] in
  List.iter
    (fun (l : Row.t) ->
      state.obs.Observer.on_rows 1;
      let lenv = mk_env l in
      let matches = ref false in
      (if lkeys <> [] || Hashtbl.length index > 0 then
         let key = encode_values (List.map (fun k -> k lenv) lkeys) in
         let bucket =
           if lkeys = [] then List.concat_map snd (Hashtbl.fold (fun k v a -> (k, v) :: a) index [])
           else Option.value ~default:[] (Hashtbl.find_opt index key)
         in
         List.iter
           (fun (r : Row.t) ->
             state.obs.Observer.on_rows 1;
             let joined = Array.make combined_width Value.Null in
             Array.blit l 0 joined 0 left_width;
             Array.blit r 0 joined left_width right_width;
             let env = mk_env joined in
             if List.for_all (fun f -> Value.as_bool (f env)) residual then begin
               matches := true;
               state.obs.Observer.on_alloc (Row.heap_size joined);
               out := joined :: !out
             end)
           bucket);
      if not !matches then begin
        let joined = Array.make combined_width Value.Null in
        Array.blit l 0 joined 0 left_width;
        out := joined :: !out
      end)
    left_rows;
  List.rev !out

(* -- SELECT planning -------------------------------------------------- *)

and output_name i = function
  | Item (_, Some alias) -> String.lowercase_ascii alias
  | Item (Col { name; _ }, None) -> String.lowercase_ascii name
  | Item (Agg { func; _ }, None) ->
      (match func with
      | Sum -> "sum"
      | Avg -> "avg"
      | Min -> "min"
      | Max -> "max"
      | Count -> "count")
  | Item (_, None) -> Printf.sprintf "col%d" (i + 1)
  | Star -> fail "internal: Star in output_name"

and substitute_aliases items e =
  (* ORDER BY / HAVING may reference projection aliases *)
  match e with
  | Col { qualifier = None; name } -> (
      let name = String.lowercase_ascii name in
      let found =
        List.find_opt
          (function
            | Item (_, Some a) -> String.lowercase_ascii a = name
            | _ -> false)
          items
      in
      match found with Some (Item (inner, _)) -> inner | _ -> e)
  | e -> e

and collect_aggs acc e =
  match e with
  | Agg _ -> if List.mem e acc then acc else acc @ [ e ]
  | Lit _ | Col _ | Interval _ -> acc
  | Unary (_, x) | Extract { arg = x; _ } | Is_null { subject = x; _ } ->
      collect_aggs acc x
  | Substring { subject; start; len } ->
      let acc = collect_aggs (collect_aggs acc subject) start in
      Option.fold ~none:acc ~some:(collect_aggs acc) len
  | Binop (_, a, b) -> collect_aggs (collect_aggs acc a) b
  | Like { subject; _ } -> collect_aggs acc subject
  | Between { subject; low; high; _ } ->
      collect_aggs (collect_aggs (collect_aggs acc subject) low) high
  | In_list { subject; items; _ } ->
      List.fold_left collect_aggs (collect_aggs acc subject) items
  | In_select { subject; _ } -> collect_aggs acc subject
  | Exists _ | Scalar_select _ -> acc
  | Case { branches; else_ } ->
      let acc =
        List.fold_left
          (fun acc (c, v) -> collect_aggs (collect_aggs acc c) v)
          acc branches
      in
      Option.fold ~none:acc ~some:(collect_aggs acc) else_

and plan_select state ~outer (q : select) : subplan =
  (* 1. classify WHERE conjuncts *)
  let where_conjuncts = Option.fold ~none:[] ~some:conjuncts q.where in
  (* 2. plan the FROM clause, threading a growing context *)
  let parent_ctx = outer in
  (* First build contexts for every base relation to know bindings. *)
  let uses_outer = ref false in
  (* per-binding pushdown filters; assembled below *)
  let plan = plan_from state ~parent_ctx ~uses_outer q where_conjuncts in
  plan

(* The full pipeline: FROM+WHERE -> joined rows -> correlated residuals
   -> grouping -> having -> projection -> sort -> limit. *)
and plan_from state ~parent_ctx ~uses_outer (q : select) where_conjuncts :
    subplan =
  (* -- set up base relations ---------------------------------------- *)
  let rec flatten_from acc = function
    | [] -> List.rev acc
    | fi :: rest -> flatten_from (fi :: acc) rest
  in
  let from_items = flatten_from [] q.from in
  if from_items = [] then fail "FROM clause is required";
  (* Plan each from_item into (cols, runner) where runner is outer-env
     dependent only via correlated pushdowns (which we disallow at scan
     level: correlated preds never push down). *)
  (* Build the combined context first to classify predicates. *)
  let item_cols =
    List.map
      (fun fi ->
        match fi with
        | Table { table; alias } ->
            let binding = Option.value ~default:table alias in
            let hf =
              try Catalog.find state.catalog table
              with Catalog.Unknown_table t -> fail "unknown table %s" t
            in
            `Base
              ( String.lowercase_ascii binding,
                table,
                Array.map
                  (fun c ->
                    ( Some (String.lowercase_ascii binding),
                      c.Schema.col_name ))
                  (Schema.columns (Heap_file.schema hf)) )
        | Derived _ | Join _ -> `Join fi)
      from_items
  in
  (* Expand joins and derived tables: plan them as units with their own
     combined columns. *)
  let units =
    List.map
      (function
        | `Base (binding, table, cols) -> (cols, `Scan (binding, table))
        | `Join fi ->
            let cols, runner = plan_join_tree state ~parent_ctx ~uses_outer fi in
            (cols, `Planned runner))
      item_cols
  in
  let combined_cols = Array.concat (List.map fst units) in
  let full_ctx =
    {
      cols = combined_cols;
      agg_slots = [];
      parent = parent_ctx;
      uses_outer;
      state;
    }
  in
  (* -- classify WHERE conjuncts -------------------------------------- *)
  let single_table = Hashtbl.create 8 in
  (* binding -> expr list *)
  let join_preds = ref [] in
  let post_preds = ref [] in
  let correlated = ref [] in
  List.iter
    (fun conj ->
      match local_bindings full_ctx conj with
      | Some [ b ] ->
          Hashtbl.replace single_table b
            (conj :: Option.value ~default:[] (Hashtbl.find_opt single_table b))
      | Some (_ :: _ :: _) -> join_preds := conj :: !join_preds
      | Some [] -> post_preds := conj :: !post_preds (* constant predicate *)
      | None ->
          if contains_subquery conj then post_preds := conj :: !post_preds
          else correlated := conj :: !correlated)
    where_conjuncts;
  let join_preds = List.rev !join_preds in
  let post_preds = List.rev !post_preds in
  let correlated_preds = List.rev !correlated in
  if correlated_preds <> [] then uses_outer := true;
  (* -- build runners for each unit with pushdown filters -------------- *)
  let bindings_of_cols cols =
    Array.to_list cols |> List.filter_map fst |> List.sort_uniq compare
  in
  let unit_runners =
    List.map
      (fun (cols, kind) ->
        match kind with
        | `Scan (binding, table) ->
            let filters =
              Option.value ~default:[] (Hashtbl.find_opt single_table binding)
            in
            let _, run =
              scan_table state ~binding table ~filters ~ctx_parent:parent_ctx
            in
            (cols, run)
        | `Planned run ->
            (* single-binding WHERE conjuncts on a derived table or a
               JOIN tree apply as a filter over the unit's output *)
            let filters =
              List.concat_map
                (fun b ->
                  Option.value ~default:[]
                    (Hashtbl.find_opt single_table b))
                (bindings_of_cols cols)
            in
            if filters = [] then (cols, run)
            else begin
              let uctx =
                {
                  cols;
                  agg_slots = [];
                  parent = parent_ctx;
                  uses_outer;
                  state;
                }
              in
              let cfilters = List.map (compile uctx) filters in
              let run outer_env =
                List.filter
                  (fun (r : Row.t) ->
                    state.obs.Observer.on_rows 1;
                    let env = mk_env ?up:outer_env r in
                    List.for_all (fun f -> Value.as_bool (f env)) cfilters)
                  (run outer_env)
              in
              (cols, run)
            end)
      units
  in
  (* -- join order: greedy, preferring equi-connected units ------------ *)
  let expr_bindings e =
    match local_bindings full_ctx e with Some bs -> bs | None -> []
  in
  (* Precompile nothing yet; we order units then emit a runner. *)
  let order_units () =
    match unit_runners with
    | [] -> fail "FROM clause is required"
    | first :: rest ->
        let acc_units = ref [ first ] in
        let acc_bindings = ref (bindings_of_cols (fst first)) in
        let remaining = ref rest in
        let connected (cols, _) =
          let bs = bindings_of_cols cols in
          List.exists
            (fun pred ->
              match pred with
              | Binop (Eq, a, b) ->
                  let ba = expr_bindings a and bb = expr_bindings b in
                  (ba <> [] && bb <> [])
                  && ((List.for_all (fun x -> List.mem x !acc_bindings) ba
                       && List.for_all (fun x -> List.mem x bs) bb)
                     || (List.for_all (fun x -> List.mem x bs) ba
                        && List.for_all (fun x -> List.mem x !acc_bindings) bb))
              | _ -> false)
            join_preds
        in
        let ordered = ref [ first ] in
        while !remaining <> [] do
          let next, rest =
            match List.partition connected !remaining with
            | cand :: others, rest -> (cand, others @ rest)
            | [], x :: rest -> (x, rest)
            | [], [] -> assert false
          in
          ordered := next :: !ordered;
          acc_bindings := !acc_bindings @ bindings_of_cols (fst next);
          acc_units := next :: !acc_units;
          remaining := rest
        done;
        List.rev !ordered
  in
  let ordered_units = order_units () in
  (* -- emit the join pipeline ---------------------------------------- *)
  (* We process units left to right, tracking the accumulated column
     array, consuming join predicates as soon as they become fully
     resolvable. *)
  let consumed = Array.make (List.length join_preds) false in
  let join_pred_arr = Array.of_list join_preds in
  let steps = ref [] in
  (* (cols_so_far, step) *)
  let acc_cols = ref [||] in
  List.iteri
    (fun ui (cols, run) ->
      if ui = 0 then begin
        acc_cols := cols;
        steps := `First run :: !steps
      end
      else begin
        let left_cols = !acc_cols in
        let combined = Array.append left_cols cols in
        let left_bindings = bindings_of_cols left_cols in
        let right_bindings = bindings_of_cols cols in
        let usable = ref [] in
        Array.iteri
          (fun pi pred ->
            if not consumed.(pi) then begin
              let bs = expr_bindings pred in
              let all_in =
                bs <> []
                && List.for_all
                     (fun b ->
                       List.mem b left_bindings || List.mem b right_bindings)
                     bs
              in
              if all_in then begin
                consumed.(pi) <- true;
                usable := pred :: !usable
              end
            end)
          join_pred_arr;
        let usable = List.rev !usable in
        (* split into equi keys vs residual *)
        let lkeys = ref [] and rkeys = ref [] and residual = ref [] in
        List.iter
          (fun pred ->
            match pred with
            | Binop (Eq, a, b) -> (
                let ba = expr_bindings a and bb = expr_bindings b in
                let a_left = List.for_all (fun x -> List.mem x left_bindings) ba
                and a_right =
                  List.for_all (fun x -> List.mem x right_bindings) ba
                and b_left = List.for_all (fun x -> List.mem x left_bindings) bb
                and b_right =
                  List.for_all (fun x -> List.mem x right_bindings) bb
                in
                match () with
                | _ when ba <> [] && bb <> [] && a_left && b_right ->
                    lkeys := a :: !lkeys;
                    rkeys := b :: !rkeys
                | _ when ba <> [] && bb <> [] && a_right && b_left ->
                    lkeys := b :: !lkeys;
                    rkeys := a :: !rkeys
                | _ -> residual := pred :: !residual)
            | _ -> residual := pred :: !residual)
          usable;
        let left_ctx_cols = left_cols and right_ctx_cols = cols in
        let lctx =
          {
            cols = left_ctx_cols;
            agg_slots = [];
            parent = parent_ctx;
            uses_outer;
            state;
          }
        and rctx =
          {
            cols = right_ctx_cols;
            agg_slots = [];
            parent = parent_ctx;
            uses_outer;
            state;
          }
        and cctx =
          {
            cols = combined;
            agg_slots = [];
            parent = parent_ctx;
            uses_outer;
            state;
          }
        in
        let clkeys = List.map (compile lctx) (List.rev !lkeys) in
        let crkeys = List.map (compile rctx) (List.rev !rkeys) in
        let cresidual = List.map (compile cctx) (List.rev !residual) in
        let combined_width = Array.length combined in
        let step =
          if clkeys <> [] then
            `Hash (run, clkeys, crkeys, cresidual, combined_width)
          else `Nested (run, cresidual, combined_width)
        in
        steps := step :: !steps;
        acc_cols := combined
      end)
    ordered_units;
  let steps = List.rev !steps in
  let joined_cols = !acc_cols in
  (* join predicates never consumed become post-join filters *)
  let unconsumed = ref [] in
  Array.iteri
    (fun pi c -> if not c then unconsumed := join_pred_arr.(pi) :: !unconsumed)
    consumed;
  let final_post_preds = post_preds @ List.rev !unconsumed in
  (* -- correlated predicate handling: semijoin keys vs residual ------- *)
  let joined_ctx =
    {
      cols = joined_cols;
      agg_slots = [];
      parent = parent_ctx;
      uses_outer;
      state;
    }
  in
  let semi_inner = ref [] and semi_outer = ref [] and corr_residual = ref [] in
  (* an expression is outer-only when every column it mentions resolves
     strictly above this select's scope *)
  let outer_only e =
    let cols = columns_of_expr [] e in
    (not (contains_subquery e))
    && cols <> []
    && List.for_all
         (fun (qual, n) ->
           match resolve joined_ctx qual n 0 with
           | Some (d, _) -> d > 0
           | None -> false)
         cols
  in
  List.iter
    (fun pred ->
      match pred with
      | Binop (Eq, a, b) -> (
          let side e =
            match local_bindings joined_ctx e with
            | Some (_ :: _) -> `Inner
            | Some [] -> `Constant
            | None -> if outer_only e then `Outer else `Mixed
          in
          match (side a, side b) with
          | `Inner, `Outer ->
              semi_inner := a :: !semi_inner;
              semi_outer := b :: !semi_outer
          | `Outer, `Inner ->
              semi_inner := b :: !semi_inner;
              semi_outer := a :: !semi_outer
          | _ -> corr_residual := pred :: !corr_residual)
      | _ -> corr_residual := pred :: !corr_residual)
    correlated_preds;
  let semi_inner = List.rev !semi_inner and semi_outer = List.rev !semi_outer in
  let corr_residual = List.rev !corr_residual in
  (* compile stage-B predicates *)
  let cpost = List.map (compile joined_ctx) final_post_preds in
  let csemi_inner = List.map (compile joined_ctx) semi_inner in
  let csemi_outer =
    (* outer key exprs compiled against a ctx whose local frame is the
       joined ctx but resolution will land in the parent; evaluated
       with env whose row is a dummy and up = outer env *)
    List.map (compile joined_ctx) semi_outer
  in
  let ccorr_residual = List.map (compile joined_ctx) corr_residual in
  (* -- aggregation & projection --------------------------------------- *)
  let items =
    List.concat_map
      (function
        | Star ->
            Array.to_list joined_cols
            |> List.map (fun (q, n) ->
                   Item (Col { qualifier = q; name = n }, Some n))
        | Item _ as it -> [ it ])
      q.items
  in
  let out_cols = List.mapi output_name items in
  let item_exprs =
    List.map (function Item (e, _) -> e | Star -> assert false) items
  in
  let having_expr = Option.map (substitute_aliases items) q.having in
  let order_exprs = List.map (fun (e, d) -> (substitute_aliases items e, d)) q.order_by in
  let is_agg_query =
    q.group_by <> []
    || List.exists contains_agg item_exprs
    || Option.fold ~none:false ~some:contains_agg having_expr
  in
  (* Fused vectorized pipeline: in batch mode, a single base-table scan
     with no join work, no correlated predicates and no outer-scope
     references streams batches straight through
     filter → project/aggregate — the filtered scan is never
     materialized as a row list. Everything else (joins, correlation,
     outer references) falls back to the staged path, whose scans still
     batch internally. Both paths run the same compiled closures in the
     same row order. Checked only after compilation so [uses_outer]
     already reflects every expression of this select. *)
  let fused_scan_target () =
    match (state.mode, units) with
    | Batched cap, [ (_, `Scan (binding, table)) ]
      when correlated_preds = [] && not !uses_outer ->
        Some (cap, binding, table)
    | _ -> None
  in
  let fused_scan_parts (binding, table) =
    let filters =
      Option.value ~default:[] (Hashtbl.find_opt single_table binding)
    in
    let _, cfilters, iter_rows =
      scan_parts state ~binding table ~filters ~ctx_parent:parent_ctx
    in
    (cfilters, iter_rows)
  in
  if not is_agg_query then begin
    (* compile projection/sort directly over joined ctx *)
    let citems = List.map (compile joined_ctx) item_exprs in
    let corder =
      List.map (fun (e, d) -> (compile joined_ctx e, d)) order_exprs
    in
    let cwhere_having =
      match having_expr with
      | None -> []
      | Some h -> [ compile joined_ctx h ]
    in
    let project_row outer_env (r : Row.t) =
      let env = mk_env ?up:outer_env r in
      let keys = List.map (fun (c, d) -> (c env, d)) corder in
      (Array.of_list (List.map (fun c -> c env) citems), keys)
    in
    match fused_scan_target () with
    | Some (cap, binding, table) ->
        let cfilters, iter_rows = fused_scan_parts (binding, table) in
        let memo = ref None in
        {
          sub_cols = out_cols;
          sub_correlated = false;
          sub_run =
            (fun outer_env ->
              match !memo with
              | Some rows -> rows
              | None ->
                  let acc = ref [] in
                  scan_batches state ~cfilters ~iter_rows ~cap (fun b ->
                      if cpost <> [] then begin
                        state.obs.Observer.on_rows (Batch.selected b);
                        Batch.refine b (fun r ->
                            let env = mk_env ?up:outer_env r in
                            List.for_all
                              (fun f -> Value.as_bool (f env))
                              cpost)
                      end;
                      if cwhere_having <> [] then
                        Batch.refine b (fun r ->
                            let env = mk_env ?up:outer_env r in
                            List.for_all
                              (fun f -> Value.as_bool (f env))
                              cwhere_having);
                      state.obs.Observer.on_rows (Batch.selected b);
                      Batch.iter_selected b (fun r ->
                          acc := project_row outer_env r :: !acc));
                  let rows = sort_and_limit state (List.rev !acc) q.limit in
                  (* no outer references (checked above), so the result
                     is the same for every caller: memoize like the
                     staged path memoizes stage A *)
                  memo := Some rows;
                  rows);
        }
    | None ->
        let run_stage_a = make_stage_a state steps in
        let memo = ref None in
        let semijoin = make_semijoin state ~csemi_inner in
        fun_of_stages state ~out_cols ~run_stage_a ~memo ~uses_outer ~cpost
          ~semijoin ~csemi_outer ~ccorr_residual
          ~finish:(fun rows outer_env ->
            let with_env (r : Row.t) = mk_env ?up:outer_env r in
            let rows =
              if cwhere_having = [] then rows
              else
                List.filter
                  (fun r ->
                    List.for_all
                      (fun f -> Value.as_bool (f (with_env r)))
                      cwhere_having)
                  rows
            in
            let projected =
              List.map
                (fun r ->
                  state.obs.Observer.on_rows 1;
                  project_row outer_env r)
                rows
            in
            sort_and_limit state projected q.limit)
  end
  else begin
    (* aggregate pipeline *)
    let agg_nodes =
      let acc = List.fold_left collect_aggs [] item_exprs in
      let acc =
        Option.fold ~none:acc ~some:(collect_aggs acc) having_expr
      in
      List.fold_left (fun acc (e, _) -> collect_aggs acc e) acc order_exprs
    in
    let agg_slots = List.mapi (fun i e -> (e, i)) agg_nodes in
    let agg_ctx = { joined_ctx with agg_slots } in
    let group_exprs = List.map (substitute_aliases items) q.group_by in
    let cgroup = List.map (compile joined_ctx) group_exprs in
    let cagg_args =
      List.map
        (function
          | Agg { arg = Some e; _ } -> Some (compile joined_ctx e)
          | Agg { arg = None; _ } -> None
          | _ -> assert false)
        agg_nodes
    in
    let agg_specs =
      List.map
        (function
          | Agg { func; distinct; _ } -> (func, distinct)
          | _ -> assert false)
        agg_nodes
    in
    let citems = List.map (compile agg_ctx) item_exprs in
    let chaving = Option.map (compile agg_ctx) having_expr in
    let corder = List.map (fun (e, d) -> (compile agg_ctx e, d)) order_exprs in
    let agg_cost = 1 + List.length cagg_args in
    let new_group_states () =
      Array.of_list
        (List.map (fun (f, d) -> Agg_state.create f ~distinct:d) agg_specs)
    in
    (* Group accumulation and finalization, shared verbatim between the
       staged path (fed a materialized row list) and the fused batch
       path (fed one selected row at a time): group discovery order —
       and with it output order — is scan order in both. *)
    let agg_add groups order outer_env (r : Row.t) =
      let env = mk_env ?up:outer_env r in
      let key = encode_values (List.map (fun c -> c env) cgroup) in
      let _, states =
        match Hashtbl.find_opt groups key with
        | Some entry -> entry
        | None ->
            let entry = (r, new_group_states ()) in
            Hashtbl.replace groups key entry;
            order := key :: !order;
            state.obs.Observer.on_alloc 64;
            entry
      in
      List.iteri
        (fun i arg ->
          match arg with
          | None -> Agg_state.update states.(i) `Star
          | Some c -> Agg_state.update states.(i) (`Value (c env)))
        cagg_args
    in
    let agg_finish (groups : (string, Row.t * Agg_state.t array) Hashtbl.t)
        order outer_env =
      let keys_in_order = List.rev !order in
      let group_list =
        if cgroup = [] && keys_in_order = [] then
          (* aggregate over empty input: one group of empties *)
          [ ([||], new_group_states ()) ]
        else List.map (fun k -> Hashtbl.find groups k) keys_in_order
      in
      let finished =
        List.filter_map
          (fun (rep, states) ->
            let aggs = Array.map Agg_state.finish states in
            let env = { row = rep; aggs; up = outer_env } in
            match chaving with
            | Some h when not (Value.as_bool (h env)) -> None
            | _ ->
                state.obs.Observer.on_rows 1;
                let keys = List.map (fun (c, d) -> (c env, d)) corder in
                Some (Array.of_list (List.map (fun c -> c env) citems), keys))
          group_list
      in
      sort_and_limit state finished q.limit
    in
    match fused_scan_target () with
    | Some (cap, binding, table) ->
        let cfilters, iter_rows = fused_scan_parts (binding, table) in
        let memo = ref None in
        {
          sub_cols = out_cols;
          sub_correlated = false;
          sub_run =
            (fun outer_env ->
              match !memo with
              | Some rows -> rows
              | None ->
                  let groups = Hashtbl.create 64 in
                  let order = ref [] in
                  scan_batches state ~cfilters ~iter_rows ~cap (fun b ->
                      if cpost <> [] then begin
                        state.obs.Observer.on_rows (Batch.selected b);
                        Batch.refine b (fun r ->
                            let env = mk_env ?up:outer_env r in
                            List.for_all
                              (fun f -> Value.as_bool (f env))
                              cpost)
                      end;
                      state.obs.Observer.on_rows (Batch.selected b * agg_cost);
                      Batch.iter_selected b (agg_add groups order outer_env));
                  let rows = agg_finish groups order outer_env in
                  memo := Some rows;
                  rows);
        }
    | None ->
        let run_stage_a = make_stage_a state steps in
        let memo = ref None in
        let semijoin = make_semijoin state ~csemi_inner in
        fun_of_stages state ~out_cols ~run_stage_a ~memo ~uses_outer ~cpost
          ~semijoin ~csemi_outer ~ccorr_residual
          ~finish:(fun rows outer_env ->
            let groups = Hashtbl.create 64 in
            let order = ref [] in
            List.iter
              (fun (r : Row.t) ->
                state.obs.Observer.on_rows agg_cost;
                agg_add groups order outer_env r)
              rows;
            agg_finish groups order outer_env)
  end

and make_stage_a state steps =
  fun outer_env ->
  List.fold_left
    (fun acc step ->
      match step with
      | `First run -> run outer_env
      | `Hash (run, lkeys, rkeys, residual, w) ->
          let right = run outer_env in
          hash_join state ~left_rows:acc ~right_rows:right ~lkeys ~rkeys
            ~out_arity:w ~residual ~combined_width:w
      | `Nested (run, residual, w) ->
          let right = run outer_env in
          nested_loop_join state ~left_rows:acc ~right_rows:right ~residual
            ~combined_width:w)
    [] steps

and make_semijoin state ~csemi_inner =
  if csemi_inner = [] then None
  else begin
    let index : (string, Row.t list) Hashtbl.t option ref = ref None in
    Some
      (fun rows ->
        match !index with
        | Some idx -> idx
        | None ->
            let idx = Hashtbl.create (max 16 (List.length rows)) in
            List.iter
              (fun (r : Row.t) ->
                state.obs.Observer.on_rows 1;
                let env = mk_env r in
                let key =
                  encode_values (List.map (fun c -> c env) csemi_inner)
                in
                let b = Option.value ~default:[] (Hashtbl.find_opt idx key) in
                Hashtbl.replace idx key (r :: b))
              rows;
            index := Some idx;
            idx)
  end

and fun_of_stages state ~out_cols ~run_stage_a ~memo ~uses_outer ~cpost
    ~semijoin ~csemi_outer ~ccorr_residual ~finish =
  let stage_a outer_env =
    match !memo with
    | Some rows -> rows
    | None ->
        let rows = run_stage_a outer_env in
        let rows =
          if cpost = [] then rows
          else
            List.filter
              (fun (r : Row.t) ->
                state.obs.Observer.on_rows 1;
                let env = mk_env ?up:outer_env r in
                List.for_all (fun f -> Value.as_bool (f env)) cpost)
              rows
        in
        memo := Some rows;
        rows
  in
  let plan =
    {
      sub_cols = out_cols;
      sub_correlated = !uses_outer;
      sub_run =
        (fun outer_env ->
          let rows = stage_a outer_env in
          (* correlated narrowing *)
          let rows =
            match semijoin with
            | None -> rows
            | Some get_index -> (
                let idx = get_index rows in
                match outer_env with
                | None -> fail "correlated subquery evaluated without outer row"
                | Some oenv ->
                    let probe_env = mk_env ~up:oenv [||] in
                    let key =
                      encode_values
                        (List.map (fun c -> c probe_env) csemi_outer)
                    in
                    state.obs.Observer.on_rows 1;
                    Option.value ~default:[] (Hashtbl.find_opt idx key)
                    |> List.rev)
          in
          let rows =
            if ccorr_residual = [] then rows
            else
              List.filter
                (fun (r : Row.t) ->
                  state.obs.Observer.on_rows 1;
                  let env = mk_env ?up:outer_env r in
                  List.for_all
                    (fun f -> Value.as_bool (f env))
                    ccorr_residual)
                rows
          in
          finish rows outer_env);
    }
  in
  plan

and sort_and_limit state projected limit =
  let sorted =
    match projected with
    | [] -> []
    | (_, []) :: _ -> List.map fst projected
    | _ ->
        state.obs.Observer.on_rows (List.length projected);
        List.stable_sort
          (fun (_, ka) (_, kb) ->
            let rec cmp a b =
              match (a, b) with
              | [], [] -> 0
              | (va, d) :: ra, (vb, _) :: rb ->
                  let c = Value.compare_total va vb in
                  let c = match d with `Asc -> c | `Desc -> -c in
                  if c <> 0 then c else cmp ra rb
              | _ -> 0
            in
            cmp ka kb)
          projected
        |> List.map fst
  in
  match limit with
  | None -> sorted
  | Some n -> List.filteri (fun i _ -> i < n) sorted

(* Explicit JOIN ... ON trees (inner and left outer). *)
and plan_join_tree state ~parent_ctx ~uses_outer fi :
    (string option * string) array * (env option -> Row.t list) =
  match fi with
  | Table { table; alias } ->
      let binding = Option.value ~default:table alias in
      let cols, run =
        scan_table state ~binding table ~filters:[] ~ctx_parent:parent_ctx
      in
      (cols, run)
  | Derived { select; alias } ->
      let sub = plan_select state ~outer:parent_ctx select in
      if sub.sub_correlated then uses_outer := true;
      let alias = String.lowercase_ascii alias in
      let cols =
        Array.of_list (List.map (fun n -> (Some alias, n)) sub.sub_cols)
      in
      (cols, sub.sub_run)
  | Join { kind; left; right; on } ->
      let lcols, lrun = plan_join_tree state ~parent_ctx ~uses_outer left in
      let rcols, rrun = plan_join_tree state ~parent_ctx ~uses_outer right in
      let combined = Array.append lcols rcols in
      let lctx = mk_ctx ~state lcols
      and rctx = mk_ctx ~state rcols
      and cctx = mk_ctx ~state combined in
      let on_conjuncts = conjuncts on in
      let lkeys = ref []
      and rkeys = ref []
      and right_only = ref []
      and residual = ref [] in
      List.iter
        (fun pred ->
          let resolves ctx e =
            match local_bindings ctx e with
            | Some (_ :: _) -> true
            | _ -> false
          in
          match pred with
          | Binop (Eq, a, b) when resolves lctx a && resolves rctx b ->
              lkeys := a :: !lkeys;
              rkeys := b :: !rkeys
          | Binop (Eq, a, b) when resolves rctx a && resolves lctx b ->
              lkeys := b :: !lkeys;
              rkeys := a :: !rkeys
          | pred when resolves rctx pred && not (resolves lctx pred) ->
              right_only := pred :: !right_only
          | pred -> residual := pred :: !residual)
        on_conjuncts;
      let clkeys = List.map (compile lctx) (List.rev !lkeys) in
      let crkeys = List.map (compile rctx) (List.rev !rkeys) in
      let cright_only = List.map (compile rctx) (List.rev !right_only) in
      let cresidual = List.map (compile cctx) (List.rev !residual) in
      let run outer_env =
        let lrows = lrun outer_env in
        let rrows =
          rrun outer_env
          |> List.filter (fun (r : Row.t) ->
                 state.obs.Observer.on_rows 1;
                 let env = mk_env r in
                 List.for_all (fun f -> Value.as_bool (f env)) cright_only)
        in
        match kind with
        | `Inner ->
            if clkeys <> [] then
              hash_join state ~left_rows:lrows ~right_rows:rrows ~lkeys:clkeys
                ~rkeys:crkeys ~out_arity:(Array.length combined)
                ~residual:cresidual ~combined_width:(Array.length combined)
            else
              nested_loop_join state ~left_rows:lrows ~right_rows:rrows
                ~residual:cresidual ~combined_width:(Array.length combined)
        | `Left ->
            left_outer_join state ~left_rows:lrows ~right_rows:rrows
              ~lkeys:clkeys ~rkeys:crkeys ~residual:cresidual
              ~left_width:(Array.length lcols)
              ~right_width:(Array.length rcols)
      in
      (combined, run)

(* -- Public entry points --------------------------------------------- *)

type result = { columns : string list; rows : Row.t list }

let run_select state (q : select) : result =
  let plan = plan_select state ~outer:None q in
  { columns = plan.sub_cols; rows = plan.sub_run None }

let pp_result ppf { columns; rows } =
  Fmt.pf ppf "%s@." (String.concat " | " columns);
  List.iter (fun r -> Fmt.pf ppf "%a@." Row.pp r) rows
