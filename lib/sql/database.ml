(* The engine facade: parse, plan, and execute statements against a
   catalog. This is what both the host engine and the storage engine
   instantiate (over different pagers). *)

type t = {
  catalog : Catalog.t;
  mutable observer : Observer.t;
  mutable exec_mode : Exec.exec_mode;
}

type outcome =
  | Result of Exec.result
  | Affected of int
  | Created of string
  | Dropped of string

let create ~pager =
  {
    catalog = Catalog.create ~pager;
    observer = Observer.null;
    exec_mode = Exec.Row_at_a_time;
  }

let catalog t = t.catalog
let reload_storage t = Catalog.reload_tables t.catalog

let set_observer t obs =
  t.observer <- obs;
  Pager.set_observer (Catalog.pager t.catalog) obs

let set_exec_mode t mode =
  (match mode with
  | Exec.Batched n when n < 1 ->
      invalid_arg "Database.set_exec_mode: batch size must be >= 1"
  | _ -> ());
  t.exec_mode <- mode

let exec_mode t = t.exec_mode

let state t = { Exec.catalog = t.catalog; obs = t.observer; mode = t.exec_mode }

let create_table t schema = ignore (Catalog.create_table t.catalog schema)

let insert_rows t table rows =
  let hf = Catalog.find t.catalog table in
  t.observer.Observer.on_rows (List.length rows);
  List.iter
    (fun r ->
      t.observer.Observer.on_alloc (Row.heap_size r);
      let page = Heap_file.append_page hf r in
      Catalog.note_insert t.catalog ~table ~page r)
    rows;
  Heap_file.flush hf

(* Evaluate a constant expression (INSERT values). *)
let const_value st expr =
  let ctx =
    {
      Exec.cols = [||];
      agg_slots = [];
      parent = None;
      uses_outer = ref false;
      state = st;
    }
  in
  (Exec.compile ctx expr) (Exec.mk_env [||])

let exec_ast t stmt =
  let st = state t in
  match stmt with
  | Ast.Select q -> Result (Exec.run_select st q)
  | Ast.Create_table { name; cols } ->
      let schema = Schema.create ~name ~columns:cols in
      ignore (Catalog.create_table t.catalog schema);
      Created name
  | Ast.Drop_table name ->
      Catalog.drop_table t.catalog name;
      Dropped name
  | Ast.Create_index { index_name; table; column } ->
      ignore (Catalog.create_index t.catalog ~index_name ~table ~column);
      Created index_name
  | Ast.Drop_index name ->
      Catalog.drop_index t.catalog name;
      Dropped name
  | Ast.Insert { table; columns; values } ->
      let hf = Catalog.find t.catalog table in
      let schema = Heap_file.schema hf in
      let arity = Schema.arity schema in
      let positions =
        match columns with
        | None -> Array.init arity Fun.id
        | Some names ->
            Array.of_list
              (List.map
                 (fun n ->
                   match Schema.column_index schema n with
                   | Some i -> i
                   | None ->
                       raise
                         (Exec.Sql_error
                            (Printf.sprintf "unknown column %s in %s" n table)))
                 names)
      in
      let rows =
        List.map
          (fun exprs ->
            if List.length exprs <> Array.length positions then
              raise (Exec.Sql_error "INSERT arity mismatch");
            let row = Array.make arity Value.Null in
            List.iteri
              (fun i e -> row.(positions.(i)) <- const_value st e)
              exprs;
            row)
          values
      in
      List.iter
        (fun r ->
          let page = Heap_file.append_page hf r in
          Catalog.note_insert t.catalog ~table ~page r)
        rows;
      Heap_file.flush hf;
      Affected (List.length rows)
  | Ast.Update { table; sets; where } ->
      let hf = Catalog.find t.catalog table in
      let schema = Heap_file.schema hf in
      let cols =
        Array.map
          (fun c -> (Some (Schema.name schema), c.Schema.col_name))
          (Schema.columns schema)
      in
      let ctx =
        {
          Exec.cols;
          agg_slots = [];
          parent = None;
          uses_outer = ref false;
          state = st;
        }
      in
      let cwhere = Option.map (Exec.compile ctx) where in
      let csets =
        List.map
          (fun (cname, e) ->
            match Schema.column_index schema cname with
            | Some i -> (i, Exec.compile ctx e)
            | None ->
                raise
                  (Exec.Sql_error
                     (Printf.sprintf "unknown column %s in %s" cname table)))
          sets
      in
      let n =
        Heap_file.rewrite hf ~f:(fun row ->
            let env = Exec.mk_env row in
            let matches =
              match cwhere with
              | None -> true
              | Some w -> Value.as_bool (w env)
            in
            if not matches then `Keep
            else begin
              let row' = Array.copy row in
              List.iter (fun (i, c) -> row'.(i) <- c env) csets;
              `Replace row'
            end)
      in
      Catalog.rebuild_indexes t.catalog table;
      Affected n
  | Ast.Delete { table; where } ->
      let hf = Catalog.find t.catalog table in
      let schema = Heap_file.schema hf in
      let cols =
        Array.map
          (fun c -> (Some (Schema.name schema), c.Schema.col_name))
          (Schema.columns schema)
      in
      let ctx =
        {
          Exec.cols;
          agg_slots = [];
          parent = None;
          uses_outer = ref false;
          state = st;
        }
      in
      let cwhere = Option.map (Exec.compile ctx) where in
      let n =
        Heap_file.rewrite hf ~f:(fun row ->
            let matches =
              match cwhere with
              | None -> true
              | Some w -> Value.as_bool (w (Exec.mk_env row))
            in
            if matches then `Delete else `Keep)
      in
      Catalog.rebuild_indexes t.catalog table;
      Affected n

let exec t sql = exec_ast t (Parser.parse sql)

let query t sql =
  match exec t sql with
  | Result r -> r
  | Affected _ | Created _ | Dropped _ ->
      raise (Exec.Sql_error "statement did not produce rows")
