(** Incremental aggregate accumulators with SQL NULL semantics. *)

type t

val create : Ast.agg_func -> distinct:bool -> t
val update : t -> [ `Star | `Value of Value.t ] -> unit
val finish : t -> Value.t
