(** Database catalog: named heap files over a shared pager, plus their
    secondary indexes. *)

type t

exception Unknown_table of string
exception Duplicate_table of string
exception Unknown_index of string
exception Duplicate_index of string

val create : pager:Pager.t -> t
val pager : t -> Pager.t
val create_table : t -> Schema.t -> Heap_file.t
val find : t -> string -> Heap_file.t
val find_opt : t -> string -> Heap_file.t option
val drop_table : t -> string -> unit
val table_names : t -> string list
val total_pages : t -> int
val total_rows : t -> int

(** {2 Secondary indexes} *)

val create_index : t -> index_name:string -> table:string -> column:string -> Index.t
val drop_index : t -> string -> unit
val indexes_for : t -> string -> Index.t list
val index_on : t -> table:string -> column:string -> Index.t option

val rebuild_indexes : t -> string -> unit
(** Repopulate every index of [table] (after UPDATE/DELETE rewrites). *)

val reload_tables : t -> unit
(** Rebuild every heap file's volatile state from the on-storage image
    and repopulate all indexes — the SQL layer's part of crash
    recovery, after the backing store has been recovered underneath
    the shared pager (see {!Heap_file.reload}). *)

val note_insert : t -> table:string -> page:int -> Row.t -> unit
(** Index-maintenance hook for freshly appended rows. *)
