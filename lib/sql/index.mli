(** Page-granular secondary indexes: column value -> set of heap pages.
    Scans use them to skip pages (and, over the secure store, their
    decryption and freshness checks); matching pages are still decoded
    and re-filtered, so indexes are purely an access-path optimization. *)

module IntSet : Set.S with type elt = int

type t

val create : index_name:string -> table:string -> column:string -> col_idx:int -> t
val name : t -> string
val column : t -> string
val table : t -> string

val add : t -> Value.t -> page:int -> unit
(** Record that a row with this column value lives on [page]. NULLs are
    not indexed. *)

val clear : t -> unit
val pages_equal : t -> Value.t -> IntSet.t

val pages_range : t -> ?lo:Value.t * bool -> ?hi:Value.t * bool -> unit -> IntSet.t
(** Pages with keys within the bounds ([bool] = inclusive). *)

val entry_count : t -> int
