(* Heap files: a table's rows packed into pager pages in insertion
   order. Page payload layout: u16 row count, then encoded rows. Rows
   never span pages (every supported row fits one page). *)

type t = {
  pager : Pager.t;
  schema : Schema.t;
  mutable pages : int list; (* in reverse order of allocation *)
  mutable row_count : int;
  (* write cursor over the last page *)
  mutable cur_page : int option;
  mutable cur_buf : Buffer.t;
  mutable cur_rows : int;
  mutable dirty : bool;
}

let create ~pager ~schema =
  {
    pager;
    schema;
    pages = [];
    row_count = 0;
    cur_page = None;
    cur_buf = Buffer.create 512;
    cur_rows = 0;
    dirty = false;
  }

let schema t = t.schema
let row_count t = t.row_count

let page_count t = List.length t.pages

let flush_current t =
  match t.cur_page with
  | None -> ()
  | Some page when t.dirty ->
      let buf = Buffer.create (Buffer.length t.cur_buf + 2) in
      Buffer.add_char buf (Char.chr ((t.cur_rows lsr 8) land 0xff));
      Buffer.add_char buf (Char.chr (t.cur_rows land 0xff));
      Buffer.add_buffer buf t.cur_buf;
      Pager.write t.pager page (Buffer.contents buf);
      t.dirty <- false
  | Some _ -> ()

let append t row =
  if Array.length row <> Schema.arity t.schema then
    invalid_arg "Heap_file.append: row arity mismatch";
  let encoded = Row.encode row in
  if String.length encoded + 2 > Pager.capacity t.pager then
    invalid_arg "Heap_file.append: row exceeds page capacity";
  (match t.cur_page with
  | Some _ when Buffer.length t.cur_buf + String.length encoded + 2
                <= Pager.capacity t.pager ->
      ()
  | Some _ ->
      flush_current t;
      let page = Pager.allocate t.pager in
      t.pages <- page :: t.pages;
      t.cur_page <- Some page;
      Buffer.clear t.cur_buf;
      t.cur_rows <- 0
  | None ->
      let page = Pager.allocate t.pager in
      t.pages <- page :: t.pages;
      t.cur_page <- Some page;
      Buffer.clear t.cur_buf;
      t.cur_rows <- 0);
  Buffer.add_string t.cur_buf encoded;
  t.cur_rows <- t.cur_rows + 1;
  t.row_count <- t.row_count + 1;
  t.dirty <- true

(* Like {!append} but reports the page the row landed on (used for
   index maintenance). *)
let append_page t row =
  append t row;
  match t.cur_page with Some p -> p | None -> assert false

let append_all t rows = List.iter (append t) rows

(* Make pending rows durable. Scans always flush first so they see a
   consistent on-storage image. *)
let flush t = flush_current t

let stored_pages t = List.rev t.pages

(* Rebuild the volatile write cursor and row count from the on-storage
   image. After a crash-and-recover of the backing store, the pages
   hold only durably committed rows while the in-memory cursor may
   still carry rows whose commit was lost — without this, the next
   append would resurrect them. A page the recovered store can no
   longer serve (allocated by a rolled-back transaction, so never
   durably written) is dropped from the file; allocations are monotone,
   so such pages can only form a tail. Only the exceptions that shape
   produces — a read past the recovered store's extent
   ([Invalid_argument]) or a row decode failure on never-written
   content ([Invalid_argument]/[Failure]/[Value.Type_error]) — are
   treated as the tail; an integrity violation
   ({!Pager.Integrity_failure}) is tamper detection and must
   propagate, never masquerade as truncation. *)
let reload t =
  let arity = Schema.arity t.schema in
  let kept = ref [] in
  let count = ref 0 in
  let last = ref None in
  (try
     List.iter
       (fun page ->
         let payload = Pager.read t.pager page in
         let nrows =
           (Char.code payload.[0] lsl 8) lor Char.code payload.[1]
         in
         let off = ref 2 in
         for _ = 1 to nrows do
           let _, next = Row.decode ~arity payload !off in
           off := next
         done;
         kept := page :: !kept;
         count := !count + nrows;
         last := Some (page, nrows, String.sub payload 2 (!off - 2)))
       (stored_pages t)
   with Invalid_argument _ | Failure _ | Value.Type_error _ ->
     () (* unreadable tail: rolled-back allocation *));
  t.pages <- !kept;
  t.row_count <- !count;
  Buffer.clear t.cur_buf;
  (match !last with
  | None ->
      t.cur_page <- None;
      t.cur_rows <- 0
  | Some (page, nrows, rows_bytes) ->
      t.cur_page <- Some page;
      t.cur_rows <- nrows;
      Buffer.add_string t.cur_buf rows_bytes);
  t.dirty <- false

let iter_pages t pages ~f =
  flush t;
  let arity = Schema.arity t.schema in
  List.iter
    (fun page ->
      let payload = Pager.read t.pager page in
      let nrows = (Char.code payload.[0] lsl 8) lor Char.code payload.[1] in
      let off = ref 2 in
      for _ = 1 to nrows do
        let row, next = Row.decode ~arity payload !off in
        f ~page row;
        off := next
      done)
    pages

let iter t ~f = iter_pages t (stored_pages t) ~f:(fun ~page:_ row -> f row)

let to_list t =
  let acc = ref [] in
  iter t ~f:(fun row -> acc := row :: !acc);
  List.rev !acc

(* Rewrite the file with [f] applied to every row ([None] deletes).
   Used by UPDATE/DELETE: pages are rewritten in place, surplus pages
   left allocated but empty. Returns number of affected rows. *)
let rewrite t ~f =
  let rows = to_list t in
  let affected = ref 0 in
  let kept =
    List.filter_map
      (fun row ->
        match f row with
        | `Keep -> Some row
        | `Replace row' ->
            incr affected;
            Some row'
        | `Delete ->
            incr affected;
            None)
      rows
  in
  (* reset and re-append into the existing page list *)
  let old_pages = stored_pages t in
  t.pages <- [];
  t.row_count <- 0;
  t.cur_page <- None;
  Buffer.clear t.cur_buf;
  t.cur_rows <- 0;
  t.dirty <- false;
  let available = ref old_pages in
  let take_page () =
    match !available with
    | p :: rest ->
        available := rest;
        p
    | [] -> Pager.allocate t.pager
  in
  List.iter
    (fun row ->
      let encoded = Row.encode row in
      (match t.cur_page with
      | Some _ when Buffer.length t.cur_buf + String.length encoded + 2
                    <= Pager.capacity t.pager ->
          ()
      | Some _ | None ->
          flush_current t;
          let page = take_page () in
          t.pages <- page :: t.pages;
          t.cur_page <- Some page;
          Buffer.clear t.cur_buf;
          t.cur_rows <- 0);
      Buffer.add_string t.cur_buf encoded;
      t.cur_rows <- t.cur_rows + 1;
      t.row_count <- t.row_count + 1;
      t.dirty <- true)
    kept;
  flush t;
  (* zero out any now-unused pages *)
  List.iter (fun p -> Pager.write t.pager p "\000\000") !available;
  !affected
