(** Execution observer: the engine reports abstract work through these
    hooks; the IronSafe runner maps them onto the cost model. The
    engine itself stays simulator-independent. *)

type t = {
  on_rows : int -> unit;  (** row-operator steps *)
  on_page_read : cached:bool -> unit;
  on_page_write : unit -> unit;
  on_alloc : int -> unit;  (** bytes of intermediate state *)
  on_release : int -> unit;
  on_batch : rows:int -> unit;
      (** a vectorized batch flushed with [rows] selected rows; the
          cost-segment boundary of batch-mode execution *)
}

val null : t

type counters = {
  mutable rows : int;
  mutable page_reads : int;  (** physical (uncached) page reads *)
  mutable page_hits : int;  (** buffer-pool hits (served without I/O) *)
  mutable page_writes : int;
  mutable bytes_allocated : int;
  mutable batches : int;  (** batch flushes (0 in row-at-a-time mode) *)
}

val counting : unit -> t * counters
(** A fresh counting observer and its live counters. *)
