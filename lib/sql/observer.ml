(* Execution observer: the query engine reports abstract work (rows
   processed, pages touched, bytes materialized) through these hooks;
   the IronSafe runner maps them onto the simulated nodes' cost model.
   The engine itself stays independent of the simulator. *)

type t = {
  on_rows : int -> unit;  (** operator steps over n rows *)
  on_page_read : cached:bool -> unit;
  on_page_write : unit -> unit;
  on_alloc : int -> unit;  (** bytes of intermediate state materialized *)
  on_release : int -> unit;
  on_batch : rows:int -> unit;
      (** a vectorized batch flushed with [rows] rows selected — the
          cost-segment boundary of batch-mode execution; never fired by
          the row-at-a-time path *)
}

let null =
  {
    on_rows = ignore;
    on_page_read = (fun ~cached:_ -> ());
    on_page_write = ignore;
    on_alloc = ignore;
    on_release = ignore;
    on_batch = (fun ~rows:_ -> ());
  }

(* A counting observer, handy in tests. [page_reads] counts physical
   (uncached) reads so existing I/O-cost consumers keep their meaning
   when a buffer pool sits in front of the pager; pool hits land in
   [page_hits]. *)
type counters = {
  mutable rows : int;
  mutable page_reads : int;
  mutable page_hits : int;
  mutable page_writes : int;
  mutable bytes_allocated : int;
  mutable batches : int;  (** batch flushes (0 in row-at-a-time mode) *)
}

let counting () =
  let c =
    {
      rows = 0;
      page_reads = 0;
      page_hits = 0;
      page_writes = 0;
      bytes_allocated = 0;
      batches = 0;
    }
  in
  let obs =
    {
      on_rows = (fun n -> c.rows <- c.rows + n);
      on_page_read =
        (fun ~cached ->
          if cached then c.page_hits <- c.page_hits + 1
          else c.page_reads <- c.page_reads + 1);
      on_page_write = (fun () -> c.page_writes <- c.page_writes + 1);
      on_alloc = (fun n -> c.bytes_allocated <- c.bytes_allocated + n);
      on_release = ignore;
      on_batch = (fun ~rows:_ -> c.batches <- c.batches + 1);
    }
  in
  (obs, c)
