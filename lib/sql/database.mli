(** Engine facade: parse, plan and execute SQL statements against a
    catalog over a pluggable pager. *)

type t

type outcome =
  | Result of Exec.result
  | Affected of int
  | Created of string
  | Dropped of string

val create : pager:Pager.t -> t
val catalog : t -> Catalog.t

val reload_storage : t -> unit
(** Re-anchor every table on the pager's current storage image and
    rebuild all indexes ({!Catalog.reload_tables}). Call after the
    backing store has been crash-recovered underneath the pager. *)

val set_observer : t -> Observer.t -> unit
(** Install the execution observer (also wired into the pager). *)

val set_exec_mode : t -> Exec.exec_mode -> unit
(** Select row-at-a-time (the default) or vectorized batch execution
    for subsequent statements. Both modes produce byte-identical
    results; [Batched n] must have [n >= 1]. *)

val exec_mode : t -> Exec.exec_mode

val create_table : t -> Schema.t -> unit

val insert_rows : t -> string -> Row.t list -> unit
(** Bulk load pre-built rows (bypasses the SQL layer). *)

val exec_ast : t -> Ast.stmt -> outcome
val exec : t -> string -> outcome

val query : t -> string -> Exec.result
(** Like {!exec} but expects a row-producing statement.
    @raise Exec.Sql_error otherwise. *)

(**/**)

val state : t -> Exec.state
