(* Decrypted-page buffer pool.

   Sits between a backend pager (plain or secure) and the query
   engines: a bounded set of frames holding plaintext pages, evicted
   in LRU order with write-back of dirty frames. For the secure
   backend this is the enclave-resident cache the paper assumes — a
   hit skips the device read *and* the decrypt/Merkle-verify path
   entirely, because the backend pager is never invoked.

   Frames can be pinned: a pinned frame is never evicted. If every
   frame is pinned and the pool is full, reads fall through to the
   backend without caching (counted as misses) and writes go straight
   through, so the pool degrades to pass-through rather than failing.

   The LRU list is a circular doubly-linked list threaded through a
   sentinel ([lru.next] = most recent, [lru.prev] = least recent), so
   touch/evict are O(1); a hashtable maps page index to frame.

   Counters are mirrored into the {!Ironsafe_obs} metrics registry
   under scope "bufpool" so traces and metric dumps show hit/miss/
   eviction behaviour alongside the simulator's charge accounting. *)

type frame = {
  page : int;
  mutable data : string;
  mutable dirty : bool;
  mutable pins : int;
  mutable prev : frame;
  mutable next : frame;
}

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable writebacks : int;
}

type t = {
  base : Pager.t;
  frames : int;
  tbl : (int, frame) Hashtbl.t;
  lru : frame; (* sentinel *)
  stats : stats;
}

let stats t = t.stats

let reset_stats t =
  t.stats.hits <- 0;
  t.stats.misses <- 0;
  t.stats.evictions <- 0;
  t.stats.writebacks <- 0

let create ~frames base =
  if frames < 0 then invalid_arg "Bufpool.create: frames must be >= 0";
  let rec lru =
    { page = -1; data = ""; dirty = false; pins = 0; prev = lru; next = lru }
  in
  {
    base;
    frames;
    tbl = Hashtbl.create (max 16 frames);
    lru;
    stats = { hits = 0; misses = 0; evictions = 0; writebacks = 0 };
  }

let frame_count t = Hashtbl.length t.tbl
let capacity_bytes t = t.frames * Pager.capacity t.base
let resident t i = Hashtbl.mem t.tbl i

(* -- LRU list ------------------------------------------------------- *)

let unlink f =
  f.prev.next <- f.next;
  f.next.prev <- f.prev

let push_front t f =
  f.next <- t.lru.next;
  f.prev <- t.lru;
  t.lru.next.prev <- f;
  t.lru.next <- f

let touch t f =
  unlink f;
  push_front t f

(* -- eviction ------------------------------------------------------- *)

let write_back t f =
  if f.dirty then begin
    Pager.write t.base f.page f.data;
    f.dirty <- false;
    t.stats.writebacks <- t.stats.writebacks + 1;
    Ironsafe_obs.Obs.count ~scope:"bufpool" "writeback"
  end

(* Evict the least-recently-used unpinned frame. Returns false when
   every frame is pinned (caller falls back to pass-through). *)
let evict_one t =
  let rec scan f =
    if f == t.lru then false
    else if f.pins = 0 then begin
      write_back t f;
      unlink f;
      Hashtbl.remove t.tbl f.page;
      t.stats.evictions <- t.stats.evictions + 1;
      Ironsafe_obs.Obs.count ~scope:"bufpool" "eviction";
      true
    end
    else scan f.prev
  in
  scan t.lru.prev

(* Make room for one more frame; false if the pool is saturated with
   pinned frames (or has zero frames). *)
let ensure_room t =
  if t.frames = 0 then false
  else if Hashtbl.length t.tbl < t.frames then true
  else evict_one t

let install t page data ~dirty =
  let f = { page; data; dirty; pins = 0; prev = t.lru; next = t.lru } in
  Hashtbl.replace t.tbl page f;
  push_front t f;
  f

(* -- page operations ------------------------------------------------ *)

let read t i =
  match Hashtbl.find_opt t.tbl i with
  | Some f ->
      touch t f;
      t.stats.hits <- t.stats.hits + 1;
      Ironsafe_obs.Obs.count ~scope:"bufpool" "hit";
      f.data
  | None ->
      (* backend read; integrity failures propagate to the engine *)
      let data = Pager.read t.base i in
      t.stats.misses <- t.stats.misses + 1;
      Ironsafe_obs.Obs.count ~scope:"bufpool" "miss";
      if ensure_room t then ignore (install t i data ~dirty:false);
      data

let write t i data =
  match Hashtbl.find_opt t.tbl i with
  | Some f ->
      f.data <- data;
      f.dirty <- true;
      touch t f
  | None ->
      if ensure_room t then ignore (install t i data ~dirty:true)
      else Pager.write t.base i data

let flush t =
  (* write back in LRU-to-MRU order: deterministic, and the frames a
     scan touched last land on the device last *)
  let rec go f =
    if f != t.lru then begin
      write_back t f;
      go f.prev
    end
  in
  go t.lru.prev

(* Drop every unpinned frame (after writing it back). Used when the
   backing store is swapped or reset under the pool. *)
let clear t =
  let rec go f =
    if f != t.lru then begin
      let prev = f.prev in
      if f.pins = 0 then begin
        write_back t f;
        unlink f;
        Hashtbl.remove t.tbl f.page
      end;
      go prev
    end
  in
  go t.lru.prev

(* Drop every frame — dirty ones included — without touching the
   backend. This is the power-loss path: after a crash the frames'
   contents never existed, so writing them back would leak post-crash
   state into the recovered medium. Pins are void after a crash. *)
let invalidate t =
  let rec go f =
    if f != t.lru then begin
      let prev = f.prev in
      unlink f;
      Hashtbl.remove t.tbl f.page;
      go prev
    end
  in
  go t.lru.prev

(* -- pinning -------------------------------------------------------- *)

let pin t i =
  match Hashtbl.find_opt t.tbl i with
  | Some f ->
      touch t f;
      t.stats.hits <- t.stats.hits + 1;
      Ironsafe_obs.Obs.count ~scope:"bufpool" "hit";
      f.pins <- f.pins + 1
  | None ->
      let data = Pager.read t.base i in
      t.stats.misses <- t.stats.misses + 1;
      Ironsafe_obs.Obs.count ~scope:"bufpool" "miss";
      if not (ensure_room t) then
        invalid_arg "Bufpool.pin: no evictable frame";
      let f = install t i data ~dirty:false in
      f.pins <- f.pins + 1

let unpin t i =
  match Hashtbl.find_opt t.tbl i with
  | Some f when f.pins > 0 -> f.pins <- f.pins - 1
  | _ -> invalid_arg "Bufpool.unpin: page not pinned"

let pinned t i =
  match Hashtbl.find_opt t.tbl i with Some f -> f.pins > 0 | None -> false

(* -- pager interface ------------------------------------------------ *)

let pager t =
  Pager.make
    ~capacity:(Pager.capacity t.base)
    ~read:(read t) ~write:(write t)
    ~allocate:(fun () -> Pager.allocate t.base)
    ~page_count:(fun () -> Pager.page_count t.base)
    ~cached:(resident t) ~flush:(fun () -> flush t) ()
