(** Page access abstraction over storage backends: in-memory (host
    temporary tables), plain block device (non-secure configurations)
    and the encrypted/Merkle-verified secure store. *)

type t

exception Integrity_failure of string
(** Raised when the secure backend detects tampering or staleness. *)

val in_memory : unit -> t
val plain : Ironsafe_storage.Block_device.t -> t
val secure : Ironsafe_securestore.Secure_store.t -> t

val read : t -> int -> string
(** Fires the observer, then reads (decrypting/verifying if secure). *)

val write : t -> int -> string -> unit

val allocate : t -> int
(** Next free page index. *)

val capacity : t -> int
(** Payload bytes per page for this backend. *)

val set_observer : t -> Observer.t -> unit
