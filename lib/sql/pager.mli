(** Page access abstraction over storage backends: in-memory (host
    temporary tables), plain block device (non-secure configurations)
    and the encrypted/Merkle-verified secure store. *)

type t

exception Integrity_failure of string
(** Raised when the secure backend detects tampering or staleness. *)

val in_memory : unit -> t
val plain : Ironsafe_storage.Block_device.t -> t
val secure : Ironsafe_securestore.Secure_store.t -> t

val make :
  capacity:int ->
  read:(int -> string) ->
  write:(int -> string -> unit) ->
  allocate:(unit -> int) ->
  page_count:(unit -> int) ->
  ?cached:(int -> bool) ->
  ?flush:(unit -> unit) ->
  unit ->
  t
(** Build a pager from explicit operations. [cached i] should report
    whether a read of page [i] would be served without touching the
    backend (defaults to [fun _ -> false]); [flush] pushes any buffered
    dirty pages down (defaults to a no-op). Used by {!Bufpool} to
    interpose a decrypted-page cache. *)

val read : t -> int -> string
(** Fires the observer (with [~cached] reporting whether this read is
    served from a buffer), then reads (decrypting/verifying if
    secure). *)

val write : t -> int -> string -> unit

val allocate : t -> int
(** Next free page index. *)

val page_count : t -> int
(** Pages allocated so far. *)

val capacity : t -> int
(** Payload bytes per page for this backend. *)

val cached : t -> int -> bool
(** Whether a read of this page would be served from a buffer. *)

val flush : t -> unit
(** Push buffered dirty pages to the backend (no-op if unbuffered). *)

val set_observer : t -> Observer.t -> unit
