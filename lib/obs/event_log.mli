(** Structured query-lifecycle event log: plan splits, policy
    decisions (with rule id and audit chain head), attestations, fault
    injections, scheduler outcomes. Buffered process-wide while
    observability is enabled; exported as deterministic JSONL. *)

type field = S of string | I of int | F of float | B of bool

type event = {
  e_ts_ns : float;
  e_scope : string;
  e_kind : string;  (** e.g. "policy.deny", "fault.injected" *)
  e_trace : Trace_context.t option;
  e_fields : (string * field) list;
}

val reset : unit -> unit
val events : unit -> event list
val length : unit -> int

val emit :
  ?ts_ns:float ->
  ?trace:Trace_context.t ->
  scope:string -> kind:string -> (string * field) list -> unit
(** Append one event (no-op while observability is off). [ts_ns]
    defaults to the span timeline's high-water mark. *)

val to_jsonl : unit -> string
(** One JSON object per line, in emission order. *)

val pp_event : Format.formatter -> event -> unit
