(** Structured query-lifecycle event log: plan splits, policy
    decisions (with rule id and audit chain head), attestations, fault
    injections, scheduler outcomes. Buffered process-wide while
    observability is enabled; exported as deterministic JSONL. *)

type field = S of string | I of int | F of float | B of bool

type event = {
  e_ts_ns : float;
  e_scope : string;
  e_kind : string;  (** e.g. "policy.deny", "fault.injected" *)
  e_trace : Trace_context.t option;
  e_fields : (string * field) list;
}

val reset : unit -> unit
val events : unit -> event list
val length : unit -> int

val emit :
  ?ts_ns:float ->
  ?trace:Trace_context.t ->
  scope:string -> kind:string -> (string * field) list -> unit
(** Append one event (no-op while observability is off). [ts_ns]
    defaults to the span timeline's high-water mark. *)

val tap : (event -> unit) ref
(** Called for every event buffered by {!emit} (after buffering, before
    returning). The flight recorder installs itself here; defaults to
    a no-op. *)

val open_sink : string -> unit
(** Open a streaming JSONL sink at [path] (truncating it): every
    subsequent event is written as one line when emitted. Terminal
    kinds ([query.crashed], [query.rejected], [wal.crash],
    [enclave.abort]) force a flush so the events explaining an abnormal
    exit are durable even if the orderly export path is never reached.
    Closes any previously open sink; a sink is also closed at process
    exit. *)

val close_sink : unit -> unit
(** Flush and close the sink, if open. *)

val flush_sink : unit -> unit
(** Flush the sink, if open. *)

val sink_path : unit -> string option
(** Path of the open sink, if any. *)

val terminal_kinds : string list
(** Event kinds that force a sink flush. *)

val to_jsonl : unit -> string
(** One JSON object per line, in emission order. *)

val event_line : event -> string
(** One event rendered as a single JSON object (no newline). *)

val field_json : field -> string
(** JSON rendering of one field value. *)

val escape : string -> string
(** JSON string escaping (no surrounding quotes). *)

val json_float : float -> string
(** Compact JSON number rendering used across exporters. *)

val pp_event : Format.formatter -> event -> unit
