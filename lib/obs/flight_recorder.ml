(* Flight recorder: constant-memory per-scope ring buffers of the most
   recent observability activity (lifecycle events, virtual-time
   charges, finished query spans), dumped on trigger.

   Every frame is stamped with the virtual clock and carries only
   virtual-time data, so dumps are byte-deterministic for a fixed seed
   with zero wall-clock input. Appends stay cheap — one record and a
   ring write — because JSONL rendering is deferred to dump time.
   The recorder rides the {!Event_log.tap}: it sees every emitted event
   while installed, keeps only the last [frames] per scope, and when a
   trigger kind arrives (fault injection, policy denial, an abnormal
   query outcome, WAL crash/recovery, attestation failure, SLO breach,
   tail-latency breach) writes the merged rings as JSONL plus a Chrome
   trace into the dump directory.

   Everything is a no-op while disabled: recorder-off runs stay
   byte-identical to a build without this module. *)

type frame = {
  fr_seq : int;  (* global append order — the merge key across rings *)
  fr_ts_ns : float;
  fr_scope : string;
  fr_kind : string;
  fr_line : string;  (* fully rendered JSONL line *)
}

(* Ring slots hold the raw event (cheap to append); rendering to the
   public [frame] happens at dump time. *)
type slot = { sl_seq : int; sl_event : Event_log.event }

type ring = { mutable buf : slot array; mutable start : int; mutable len : int }

type dump = {
  d_seq : int;
  d_reason : string;
  d_scope : string;
  d_ts_ns : float;
  d_frames : int;
  d_path : string option;  (* JSONL file, when a dump dir is set *)
  d_lines : string list;  (* header line + frame lines, dump order *)
}

let enabled = ref false
let frames_per_scope = ref 256
let dump_dir : string option ref = ref None
let dump_cap = ref 64

let rings : (string, ring) Hashtbl.t = Hashtbl.create 17
let seq = ref 0
let dump_seq = ref 0
let dropped_dumps = ref 0
let dumps_rev : dump list ref = ref []

let no_slot =
  {
    sl_seq = -1;
    sl_event =
      {
        Event_log.e_ts_ns = 0.0;
        e_scope = "";
        e_kind = "";
        e_trace = None;
        e_fields = [];
      };
  }

let reset () =
  Hashtbl.reset rings;
  seq := 0;
  dump_seq := 0;
  dropped_dumps := 0;
  dumps_rev := []

let configure ?frames ?dir ?cap () =
  (match frames with
  | Some n -> frames_per_scope := max 1 n
  | None -> ());
  (match dir with Some d -> dump_dir := Some d | None -> ());
  (match cap with Some n -> dump_cap := max 1 n | None -> ());
  reset ()

let is_enabled () = !enabled
let frame_capacity () = !frames_per_scope
let dump_count () = !dump_seq
let dropped () = !dropped_dumps
let dumps () = List.rev !dumps_rev

(* -- Appending --------------------------------------------------------- *)

let ring_for scope =
  match Hashtbl.find_opt rings scope with
  | Some r -> r
  | None ->
      let r =
        { buf = Array.make !frames_per_scope no_slot; start = 0; len = 0 }
      in
      Hashtbl.add rings scope r;
      r

let push_slot sl =
  let r = ring_for sl.sl_event.Event_log.e_scope in
  let cap = Array.length r.buf in
  if r.len < cap then begin
    r.buf.((r.start + r.len) mod cap) <- sl;
    r.len <- r.len + 1
  end
  else begin
    r.buf.(r.start) <- sl;
    r.start <- (r.start + 1) mod cap
  end

(* Render a frame line: the event-log JSON object with a leading
   ["seq"] field, so dumped frames order totally and the schema stays a
   superset of the event log's. *)
let line_of_event n (e : Event_log.event) =
  let body = Event_log.event_line e in
  Printf.sprintf "{\"seq\":%d,%s" n
    (String.sub body 1 (String.length body - 1))

let note_event (e : Event_log.event) =
  if !enabled then begin
    let n = !seq in
    incr seq;
    push_slot { sl_seq = n; sl_event = e }
  end

let append ~ts_ns ~scope ~kind fields =
  if !enabled then
    note_event
      {
        Event_log.e_ts_ns = ts_ns;
        e_scope = scope;
        e_kind = kind;
        e_trace = None;
        e_fields = fields;
      }

let total_frames () =
  Hashtbl.fold (fun _ r acc -> acc + r.len) rings 0

(* -- Dumping ----------------------------------------------------------- *)

let frames_in_order () =
  let all = ref [] in
  Hashtbl.iter
    (fun _ r ->
      for i = 0 to r.len - 1 do
        all := r.buf.((r.start + i) mod Array.length r.buf) :: !all
      done)
    rings;
  List.sort (fun a b -> compare a.sl_seq b.sl_seq) !all
  |> List.map (fun sl ->
         {
           fr_seq = sl.sl_seq;
           fr_ts_ns = sl.sl_event.Event_log.e_ts_ns;
           fr_scope = sl.sl_event.Event_log.e_scope;
           fr_kind = sl.sl_event.Event_log.e_kind;
           fr_line = line_of_event sl.sl_seq sl.sl_event;
         })

let sanitize s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
      | _ -> '-')
    s

(* Frames as Chrome trace_event instants, one lane per scope, so a dump
   opens directly in a trace viewer next to the full-run trace. *)
let chrome_json frames =
  Chrome_trace.json_of_events
    (List.map
       (fun fr ->
         {
           Chrome_trace.ph = 'i';
           ev_name = fr.fr_kind;
           ts_us = fr.fr_ts_ns /. 1e3;
           pid = fr.fr_scope;
           tid = fr.fr_scope;
           flow = None;
           args = [ ("seq", string_of_int fr.fr_seq) ];
         })
       frames)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let dump ~reason ~scope ~ts_ns () =
  if not !enabled then None
  else if !dump_seq >= !dump_cap then begin
    incr dropped_dumps;
    None
  end
  else begin
    let n = !dump_seq in
    incr dump_seq;
    let frames = frames_in_order () in
    let header =
      Printf.sprintf
        "{\"dump\":%d,\"reason\":\"%s\",\"scope\":\"%s\",\"ts_ns\":%s,\"frames\":%d}"
        n (Event_log.escape reason) (Event_log.escape scope)
        (Event_log.json_float ts_ns) (List.length frames)
    in
    let lines = header :: List.map (fun fr -> fr.fr_line) frames in
    let path =
      match !dump_dir with
      | None -> None
      | Some dir ->
          let base = Printf.sprintf "dump-%04d-%s" n (sanitize reason) in
          let jsonl = Filename.concat dir (base ^ ".jsonl") in
          write_file jsonl (String.concat "\n" lines ^ "\n");
          write_file
            (Filename.concat dir (base ^ ".trace.json"))
            (chrome_json frames);
          Some jsonl
    in
    let d =
      {
        d_seq = n;
        d_reason = reason;
        d_scope = scope;
        d_ts_ns = ts_ns;
        d_frames = List.length frames;
        d_path = path;
        d_lines = lines;
      }
    in
    dumps_rev := d :: !dumps_rev;
    Some d
  end

(* -- Triggers ---------------------------------------------------------- *)

let trigger_kinds =
  [
    "fault.injected";
    "policy.deny";
    "sched.shed";
    "sched.denied";
    "sched.tail_breach";
    "query.tail_breach";
    "wal.recover";
    "wal.crash";
    "slo.breach";
    "query.crashed";
    "query.rejected";
    "query.degraded";
    "enclave.abort";
  ]

let trigger_set =
  let h = Hashtbl.create 17 in
  List.iter (fun k -> Hashtbl.replace h k ()) trigger_kinds;
  h

(* Attestation events carry an [ok] flag rather than a failure kind. *)
let attest_failure (e : Event_log.event) =
  (e.Event_log.e_kind = "attest.storage" || e.Event_log.e_kind = "attest.host")
  && List.exists
       (fun (k, v) -> k = "ok" && v = Event_log.B false)
       e.Event_log.e_fields

let trigger_reason (e : Event_log.event) =
  if Hashtbl.mem trigger_set e.Event_log.e_kind then Some e.Event_log.e_kind
  else if attest_failure e then Some (e.Event_log.e_kind ^ ".fail")
  else None

let on_event (e : Event_log.event) =
  if !enabled then begin
    note_event e;
    match trigger_reason e with
    | None -> ()
    | Some reason ->
        ignore
          (dump ~reason ~scope:e.Event_log.e_scope
             ~ts_ns:e.Event_log.e_ts_ns ())
  end

let enable () =
  enabled := true;
  Event_log.tap := on_event

let disable () =
  enabled := false;
  Event_log.tap := (fun _ -> ())
