(* Metrics registry: counters, gauges and histograms, each scoped to a
   component ("host", "storage", "securestore", "net", ...) so the same
   metric name can be tracked per node.

   A [snapshot] is an immutable, sorted view of the registry; [diff]
   subtracts one snapshot from a later one, which is how callers meter
   a single operation against the process-lifetime registry. *)

type hist = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type cell = Counter of int ref | Gauge of float ref | Hist of hist

type value =
  | VCounter of int
  | VGauge of float
  | VHist of { count : int; sum : float; min_v : float; max_v : float }

type t = { cells : (string * string, cell) Hashtbl.t }

let create () = { cells = Hashtbl.create 64 }

(* The process-wide registry every instrumentation hook reports to. *)
let default = create ()

let reset t = Hashtbl.reset t.cells

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Hist _ -> "histogram"

let cell t ~scope name make expect =
  let key = (scope, name) in
  match Hashtbl.find_opt t.cells key with
  | Some c ->
      if kind_name c <> expect then
        invalid_arg
          (Printf.sprintf "Metrics: %s/%s is a %s, not a %s" scope name
             (kind_name c) expect);
      c
  | None ->
      let c = make () in
      Hashtbl.replace t.cells key c;
      c

let incr ?(by = 1) t ~scope name =
  match cell t ~scope name (fun () -> Counter (ref 0)) "counter" with
  | Counter r -> r := !r + by
  | Gauge _ | Hist _ -> assert false

let set t ~scope name v =
  match cell t ~scope name (fun () -> Gauge (ref 0.0)) "gauge" with
  | Gauge r -> r := v
  | Counter _ | Hist _ -> assert false

let observe t ~scope name v =
  match
    cell t ~scope name
      (fun () ->
        Hist { h_count = 0; h_sum = 0.0; h_min = infinity; h_max = neg_infinity })
      "histogram"
  with
  | Hist h ->
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum +. v;
      if v < h.h_min then h.h_min <- v;
      if v > h.h_max then h.h_max <- v
  | Counter _ | Gauge _ -> assert false

(* -- snapshots -------------------------------------------------------- *)

type snapshot = ((string * string) * value) list

let snapshot t : snapshot =
  Hashtbl.fold
    (fun key c acc ->
      let v =
        match c with
        | Counter r -> VCounter !r
        | Gauge r -> VGauge !r
        | Hist h ->
            VHist
              { count = h.h_count; sum = h.h_sum; min_v = h.h_min; max_v = h.h_max }
      in
      (key, v) :: acc)
    t.cells []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let value (snap : snapshot) ~scope name = List.assoc_opt (scope, name) snap

let counter_value snap ~scope name =
  match value snap ~scope name with Some (VCounter n) -> n | _ -> 0

let hist_count snap ~scope name =
  match value snap ~scope name with Some (VHist h) -> h.count | _ -> 0

let hist_sum snap ~scope name =
  match value snap ~scope name with Some (VHist h) -> h.sum | _ -> 0.0

(* [diff ~before ~after]: the activity between the two snapshots.
   Counters and histograms subtract; gauges keep the later reading.
   Entries absent from [before] are taken as zero. *)
let diff ~(before : snapshot) ~(after : snapshot) : snapshot =
  List.filter_map
    (fun (key, v_after) ->
      match (v_after, List.assoc_opt key before) with
      | VCounter a, Some (VCounter b) ->
          if a = b then None else Some (key, VCounter (a - b))
      | VGauge g, _ -> Some (key, VGauge g)
      | VHist a, Some (VHist b) ->
          if a.count = b.count then None
          else
            Some
              ( key,
                VHist
                  {
                    count = a.count - b.count;
                    sum = a.sum -. b.sum;
                    min_v = a.min_v;
                    max_v = a.max_v;
                  } )
      | v, None -> Some (key, v)
      | VCounter _, Some _ | VHist _, Some _ ->
          (* kind changed between snapshots: report the later value *)
          Some (key, v_after))
    after

let pp_value ppf = function
  | VCounter n -> Fmt.pf ppf "%d" n
  | VGauge g -> Fmt.pf ppf "%g" g
  | VHist h ->
      if h.count = 0 then Fmt.pf ppf "count=0"
      else
        Fmt.pf ppf "count=%d sum=%.3f avg=%.3f min=%.3f max=%.3f" h.count h.sum
          (h.sum /. float_of_int h.count)
          h.min_v h.max_v

let pp ppf (snap : snapshot) =
  List.iter
    (fun ((scope, name), v) ->
      Fmt.pf ppf "%-12s %-28s %a@." scope name pp_value v)
    snap
