(* Metrics registry: counters, gauges and histograms, each scoped to a
   component ("host", "storage", "securestore", "net", ...) so the same
   metric name can be tracked per node.

   Histograms are fixed log-bucketed ({!Histogram}): p50/p90/p99/p999
   extraction to bucket resolution, and sound interval arithmetic —
   [diff] subtracts two snapshots bucket by bucket, so interval min/max
   (and percentiles) describe the interval. The previous min/max-cell
   representation could only ever report the *cumulative* extremes,
   which [diff] silently passed off as interval values.

   A [snapshot] is an immutable view of the registry: a sorted
   association list plus a hash index, so [value]/[diff] are O(1) per
   lookup instead of the O(n) [List.assoc_opt] scan that made diffing
   large registries O(n^2). *)

type cell = Counter of int ref | Gauge of float ref | Hist of Histogram.t

type value =
  | VCounter of int
  | VGauge of float
  | VHist of Histogram.view

type t = { cells : (string * string, cell) Hashtbl.t }

let create () = { cells = Hashtbl.create 64 }

(* The process-wide registry every instrumentation hook reports to. *)
let default = create ()

let reset t = Hashtbl.reset t.cells

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Hist _ -> "histogram"

let cell t ~scope name make expect =
  let key = (scope, name) in
  match Hashtbl.find_opt t.cells key with
  | Some c ->
      if kind_name c <> expect then
        invalid_arg
          (Printf.sprintf "Metrics: %s/%s is a %s, not a %s" scope name
             (kind_name c) expect);
      c
  | None ->
      let c = make () in
      Hashtbl.replace t.cells key c;
      c

let incr ?(by = 1) t ~scope name =
  match cell t ~scope name (fun () -> Counter (ref 0)) "counter" with
  | Counter r -> r := !r + by
  | Gauge _ | Hist _ -> assert false

let set t ~scope name v =
  match cell t ~scope name (fun () -> Gauge (ref 0.0)) "gauge" with
  | Gauge r -> r := v
  | Counter _ | Hist _ -> assert false

let observe t ~scope name v =
  match cell t ~scope name (fun () -> Hist (Histogram.create ())) "histogram" with
  | Hist h -> Histogram.observe h v
  | Counter _ | Gauge _ -> assert false

(* -- pre-resolved handles ---------------------------------------------- *)

(* [incr]/[observe] pay a hashtable probe on a [(scope, name)] key per
   call; hot reporters (the workload scheduler touches its counters
   once per query across 10^5-10^6 queries) pre-resolve a handle
   instead. The cell is looked up lazily on the first hit — a handle
   that is never hit never creates its cell, so the registry contents
   match the direct calls exactly. Handles cache the resolved cell and
   must not be reused across [reset]. *)

type counter = {
  c_reg : t;
  c_scope : string;
  c_name : string;
  mutable c_cell : int ref option;
}

let counter t ~scope name =
  { c_reg = t; c_scope = scope; c_name = name; c_cell = None }

let counter_add c by =
  match c.c_cell with
  | Some r -> r := !r + by
  | None -> (
      match
        cell c.c_reg ~scope:c.c_scope c.c_name
          (fun () -> Counter (ref 0))
          "counter"
      with
      | Counter r ->
          c.c_cell <- Some r;
          r := !r + by
      | Gauge _ | Hist _ -> assert false)

type series = {
  s_reg : t;
  s_scope : string;
  s_name : string;
  mutable s_cell : Histogram.t option;
}

let series t ~scope name =
  { s_reg = t; s_scope = scope; s_name = name; s_cell = None }

let series_observe s v =
  match s.s_cell with
  | Some h -> Histogram.observe h v
  | None -> (
      match
        cell s.s_reg ~scope:s.s_scope s.s_name
          (fun () -> Hist (Histogram.create ()))
          "histogram"
      with
      | Hist h ->
          s.s_cell <- Some h;
          Histogram.observe h v
      | Counter _ | Gauge _ -> assert false)

(* -- snapshots -------------------------------------------------------- *)

type snapshot = {
  items : ((string * string) * value) list;  (** sorted by key *)
  index : (string * string, value) Hashtbl.t;
}

let of_items items =
  let index = Hashtbl.create (max 16 (List.length items)) in
  List.iter (fun (key, v) -> Hashtbl.replace index key v) items;
  { items; index }

let snapshot t : snapshot =
  Hashtbl.fold
    (fun key c acc ->
      let v =
        match c with
        | Counter r -> VCounter !r
        | Gauge r -> VGauge !r
        | Hist h -> VHist (Histogram.view h)
      in
      (key, v) :: acc)
    t.cells []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> of_items

let to_list snap = snap.items
let size snap = List.length snap.items

let value (snap : snapshot) ~scope name =
  Hashtbl.find_opt snap.index (scope, name)

let counter_value snap ~scope name =
  match value snap ~scope name with Some (VCounter n) -> n | _ -> 0

let hist_count snap ~scope name =
  match value snap ~scope name with
  | Some (VHist h) -> h.Histogram.v_count
  | _ -> 0

let hist_sum snap ~scope name =
  match value snap ~scope name with
  | Some (VHist h) -> h.Histogram.v_sum
  | _ -> 0.0

let hist_percentile snap ~scope name q =
  match value snap ~scope name with
  | Some (VHist h) -> Histogram.percentile_of_view h q
  | _ -> 0.0

(* [diff ~before ~after]: the activity between the two snapshots.
   Counters subtract; histograms subtract bucket by bucket (interval
   min/max to bucket resolution); gauges keep the later reading.
   Entries absent from [before] are taken as zero. The [before] side is
   probed through the hash index, one O(1) lookup per entry. *)
let diff ~(before : snapshot) ~(after : snapshot) : snapshot =
  List.filter_map
    (fun (key, v_after) ->
      match (v_after, Hashtbl.find_opt before.index key) with
      | VCounter a, Some (VCounter b) ->
          if a = b then None else Some (key, VCounter (a - b))
      | VGauge g, _ -> Some (key, VGauge g)
      | VHist a, Some (VHist b) ->
          if a.Histogram.v_count = b.Histogram.v_count then None
          else Some (key, VHist (Histogram.sub ~before:b ~after:a))
      | v, None -> Some (key, v)
      | VCounter _, Some _ | VHist _, Some _ ->
          (* kind changed between snapshots: report the later value *)
          Some (key, v_after))
    after.items
  |> of_items

let pp_value ppf = function
  | VCounter n -> Fmt.pf ppf "%d" n
  | VGauge g -> Fmt.pf ppf "%g" g
  | VHist h -> Histogram.pp_view ppf h

let pp ppf (snap : snapshot) =
  List.iter
    (fun ((scope, name), v) ->
      Fmt.pf ppf "%-12s %-28s %a@." scope name pp_value v)
    snap.items
