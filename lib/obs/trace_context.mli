(** Propagated trace context: the [trace_id]/[span_id]/sampling-bit
    triple a query's telemetry travels under. Carried inside
    [lib/net/wire] messages so host- and storage-side spans of one
    split query join into a single causal tree.

    Identifiers are deterministic (a counter mixed through the
    splitmix64 finalizer, rewound by {!reset}) — never wall-clock or
    ambient randomness — so identical runs produce identical traces. *)

type t = { trace_id : int64; span_id : int; sampled : bool }

val reset : unit -> unit
(** Rewind the id counter (called by [Obs.reset]). *)

val fresh : span_id:int -> sampled:bool -> t
(** Next deterministic context. *)

val to_hex : t -> string
(** 16-hex-digit trace id. *)

val span_hex : t -> string
(** 8-hex-digit span id. *)

val encoded_length : int
(** Fixed wire width: 13 bytes. *)

val encode : t -> string

val decode : string -> int -> t option
(** [decode s off] reads a context at [off]; [None] when truncated or
    the flag byte has unknown bits. *)

val pp : Format.formatter -> t -> unit
