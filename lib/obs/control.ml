(* Global observability switch. Collection is off by default so the
   instrumentation hooks sprinkled through the hot layers cost one
   boolean load when tracing is not requested. *)

let enabled = ref false
