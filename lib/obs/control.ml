(* Global observability switches. Collection is off by default so the
   instrumentation hooks sprinkled through the hot layers cost one
   boolean load when tracing is not requested.

   [sample_every] is the per-query span-sampling period: with tracing
   enabled, query N is traced iff N mod sample_every = 0 (1 = trace
   every query, the default). Metrics always accumulate while enabled;
   sampling only gates the span tree and flow events, which are the
   expensive part of the telemetry. [suppress_spans] is the transient
   flag an unsampled query sets for its own duration. *)

let enabled = ref false
let sample_every = ref 1
let suppress_spans = ref false

(* Spans (and flow events) are recorded only when tracing is on and the
   current query was sampled. *)
let spans_on () = !enabled && not !suppress_spans
