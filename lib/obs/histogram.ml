(* Fixed log-bucketed (HDR-style) histogram over non-negative values
   (virtual nanoseconds, byte counts, ...).

   Layout: [n_sub] sub-buckets per power of two, so a recorded value is
   known to within a factor of 2^(1/n_sub) (~9% relative width with
   n_sub = 8). Values below 1.0 land in a dedicated underflow bucket;
   values at or beyond 2^max_octave land in the overflow bucket. The
   bucket layout is fixed at creation time and identical for every
   histogram, which is what makes interval arithmetic sound: the
   difference between two snapshots of one histogram is the per-bucket
   subtraction of their counts — including correct interval min/max (to
   bucket resolution), which a min/max-cell histogram cannot provide.

   Exact count/sum/min/max are kept alongside the buckets: the mean is
   exact, the percentiles are bucket-resolution. *)

let n_sub = 8
let max_octave = 60 (* 2^60 ns ~ 36 years: far past any virtual time *)
let n_buckets = 2 + (max_octave * n_sub) (* underflow + ranged + overflow *)

type t = {
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  buckets : int array;
}

(* An immutable copy of a histogram's state (the [Metrics] snapshot
   payload). Interval views produced by {!sub} have bucket-resolution
   [min_v]/[max_v]. *)
type view = {
  v_count : int;
  v_sum : float;
  v_min : float;
  v_max : float;
  v_buckets : int array;
}

let create () =
  {
    count = 0;
    sum = 0.0;
    min_v = infinity;
    max_v = neg_infinity;
    buckets = Array.make n_buckets 0;
  }

(* Bucket index of [v]: 0 is underflow (v < 1.0), the last index is
   overflow. [frexp] gives the octave and mantissa exactly, with no
   log-rounding edge cases. *)
let bucket_of v =
  if v < 1.0 then 0
  else begin
    let m, e = Float.frexp v in
    (* v = m * 2^e with m in [0.5, 1): octave e-1, mantissa 2m in [1,2) *)
    let octave = e - 1 in
    if octave >= max_octave then n_buckets - 1
    else begin
      let sub = int_of_float ((2.0 *. m -. 1.0) *. float_of_int n_sub) in
      1 + (octave * n_sub) + min (n_sub - 1) sub
    end
  end

(* Upper bound of bucket [i] — the value percentile extraction reports,
   a conservative (at most one-bucket-width high) estimate. *)
let bucket_bound i =
  if i <= 0 then 1.0
  else if i >= n_buckets - 1 then infinity
  else begin
    let r = i - 1 in
    let octave = r / n_sub and sub = r mod n_sub in
    Float.ldexp (1.0 +. (float_of_int (sub + 1) /. float_of_int n_sub)) octave
  end

(* Lower bound of bucket [i] (used for interval minima). *)
let bucket_lower i =
  if i <= 0 then 0.0
  else if i >= n_buckets - 1 then Float.ldexp 1.0 max_octave
  else begin
    let r = i - 1 in
    let octave = r / n_sub and sub = r mod n_sub in
    Float.ldexp (1.0 +. (float_of_int sub /. float_of_int n_sub)) octave
  end

let observe t v =
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v;
  let i = bucket_of v in
  t.buckets.(i) <- t.buckets.(i) + 1

let count t = t.count
let sum t = t.sum

let view t =
  {
    v_count = t.count;
    v_sum = t.sum;
    v_min = t.min_v;
    v_max = t.max_v;
    v_buckets = Array.copy t.buckets;
  }

let empty_view =
  {
    v_count = 0;
    v_sum = 0.0;
    v_min = infinity;
    v_max = neg_infinity;
    v_buckets = Array.make n_buckets 0;
  }

(* Interval arithmetic by per-bucket subtraction: the activity between
   two snapshots of the same histogram. Interval min/max are recovered
   from the lowest/highest non-empty difference bucket — correct to
   bucket resolution, where the old min/max cells could only report the
   cumulative extremes. *)
let sub ~before ~after =
  let buckets =
    Array.init n_buckets (fun i ->
        max 0 (after.v_buckets.(i) - before.v_buckets.(i)))
  in
  let lo = ref (-1) and hi = ref (-1) in
  Array.iteri
    (fun i n ->
      if n > 0 then begin
        if !lo < 0 then lo := i;
        hi := i
      end)
    buckets;
  {
    v_count = after.v_count - before.v_count;
    v_sum = after.v_sum -. before.v_sum;
    v_min = (if !lo < 0 then infinity else bucket_lower !lo);
    v_max = (if !hi < 0 then neg_infinity else bucket_bound !hi);
    v_buckets = buckets;
  }

(* Exact bucket-wise union of two views: counts and sums add, min/max
   combine, and because every histogram shares one bucket layout the
   per-bucket sum is exactly the histogram of the merged stream. This is
   what lets cluster gather fold per-shard latency histograms into one
   percentile table without re-observing any value. *)
let merge a b =
  {
    v_count = a.v_count + b.v_count;
    v_sum = a.v_sum +. b.v_sum;
    v_min = Float.min a.v_min b.v_min;
    v_max = Float.max a.v_max b.v_max;
    v_buckets =
      Array.init n_buckets (fun i -> a.v_buckets.(i) + b.v_buckets.(i));
  }

(* Nearest-rank percentile over the bucket counts: the upper bound of
   the bucket holding the ceil(q * count)-th value. The exact maximum
   caps the answer so p100 (and any percentile landing in the top
   bucket) never exceeds a recorded value. *)
let percentile_of_view v q =
  if v.v_count <= 0 then 0.0
  else begin
    let rank =
      max 1 (int_of_float (ceil (q *. float_of_int v.v_count)))
    in
    let rec scan i seen =
      if i >= n_buckets then v.v_max
      else begin
        let seen = seen + v.v_buckets.(i) in
        if seen >= rank then
          let b = bucket_bound i in
          if Float.is_finite v.v_max && b > v.v_max then v.v_max else b
        else scan (i + 1) seen
      end
    in
    scan 0 0
  end

let percentile t q = percentile_of_view (view t) q

(* Non-empty buckets of a view as (upper_bound, cumulative_count),
   lowest first — the OpenMetrics [le] series. *)
let cumulative_buckets v =
  let acc = ref [] and seen = ref 0 in
  Array.iteri
    (fun i n ->
      if n > 0 then begin
        seen := !seen + n;
        acc := (bucket_bound i, !seen) :: !acc
      end)
    v.v_buckets;
  List.rev !acc

let pp_view ppf v =
  if v.v_count = 0 then Fmt.pf ppf "count=0"
  else
    Fmt.pf ppf
      "count=%d sum=%.3f avg=%.3f min=%.3f max=%.3f p50=%.3f p99=%.3f"
      v.v_count v.v_sum
      (v.v_sum /. float_of_int v.v_count)
      v.v_min v.v_max
      (percentile_of_view v 0.50)
      (percentile_of_view v 0.99)
