(* Facade over the observability substrate: the on/off switch, the
   cheap hooks the instrumented layers call (no-ops while disabled),
   per-query sampling and trace-context management, and profile
   capture for the runner/CLI.

   Usage pattern:

     Obs.enable ();
     ... run queries (spans + metrics + events accumulate) ...
     let json = Obs.to_chrome_json () in
     let jsonl = Obs.to_jsonl () in

   Every instrumentation hook checks one ref before doing work, so the
   hot paths pay nothing when tracing is off. *)

let enable () = Control.enabled := true
let disable () = Control.enabled := false
let enabled () = !Control.enabled

(* -- per-query sampling ------------------------------------------------ *)

(* [set_sample_every n] keeps spans/flows for every n-th query (the
   deterministic query counter decides, so sampling is reproducible).
   Metrics and lifecycle events always accumulate while enabled —
   sampling only sheds the per-span work. *)
let set_sample_every n = Control.sample_every := max 1 n
let sample_every () = !Control.sample_every

let query_seq = ref 0
let current : Trace_context.t option ref = ref None
let last_before : Metrics.snapshot option ref = ref None

let reset () =
  Metrics.reset Metrics.default;
  Span.reset_collector ();
  Event_log.reset ();
  Trace_context.reset ();
  Flight_recorder.reset ();
  query_seq := 0;
  current := None;
  last_before := None;
  Control.suppress_spans := false

(* Called when a deployment resets its virtual clocks: later spans are
   shifted past everything already recorded so the collected timeline
   stays monotonic. *)
let new_epoch () = if !Control.enabled then Span.new_epoch ()

(* -- hooks for instrumented layers ------------------------------------ *)

let count ?(n = 1) ~scope name =
  if !Control.enabled then Metrics.incr ~by:n Metrics.default ~scope name

let gauge ~scope name v =
  if !Control.enabled then Metrics.set Metrics.default ~scope name v

let observe ~scope name v =
  if !Control.enabled then Metrics.observe Metrics.default ~scope name v

(* Handle variants for per-query hot paths: the (scope, name) lookup
   happens once at handle creation (lazily, on first hit), not per
   call. Same enabled gate, same registry contents. *)
let counter ~scope name = Metrics.counter Metrics.default ~scope name

let count_via ?(n = 1) c =
  if !Control.enabled then Metrics.counter_add c n

let series ~scope name = Metrics.series Metrics.default ~scope name
let observe_via s v = if !Control.enabled then Metrics.series_observe s v

(* Every virtual-time charge of a simulated node flows through here:
   recorded as a per-node histogram and attributed to the innermost
   open span. *)
let on_charge ~node ~category ns =
  if !Control.enabled then begin
    Metrics.observe Metrics.default ~scope:node ("charge_ns." ^ category) ns;
    Span.add_charge ~category ns;
    (* Metric deltas are flight recorder frames too: the rings then
       hold the charge activity immediately preceding an anomaly. *)
    if Flight_recorder.is_enabled () then
      Flight_recorder.append ~ts_ns:(Span.timeline_now ()) ~scope:node
        ~kind:"charge"
        [ ("category", Event_log.S category); ("ns", Event_log.F ns) ]
  end

(* Structured lifecycle event, stamped with the active trace context. *)
let event ?ts_ns ~scope ~kind fields =
  if !Control.enabled then
    Event_log.emit ?ts_ns ?trace:!current ~scope ~kind fields

(* -- query lifecycle --------------------------------------------------- *)

let current_trace () = !current

(* Root-span attributes carrying the active trace identity. *)
let trace_attrs () =
  match !current with
  | None -> []
  | Some ctx ->
      [ ("trace_id", Trace_context.to_hex ctx);
        ("span_id", Trace_context.span_hex ctx) ]

type query_token = {
  qt_active : bool;
  qt_prev_suppress : bool;
  qt_before : Metrics.snapshot option;
}

let inactive_token =
  { qt_active = false; qt_prev_suppress = false; qt_before = None }

(* [begin_query ()] opens a query scope: allocates the deterministic
   trace context, decides sampling (suppressing span collection for
   unsampled queries — metrics and events still flow), and snapshots
   the metrics registry so [capture_last]/[finish_query] can report the
   *interval* activity of this query rather than the cumulative
   registry. Pair with [finish_query]. *)
let begin_query () =
  if not !Control.enabled then inactive_token
  else begin
    incr query_seq;
    let sampled = (!query_seq - 1) mod !Control.sample_every = 0 in
    let prev = !Control.suppress_spans in
    if not sampled then Control.suppress_spans := true;
    current := Some (Trace_context.fresh ~span_id:!query_seq ~sampled);
    let before = Metrics.snapshot Metrics.default in
    last_before := Some before;
    { qt_active = true; qt_prev_suppress = prev; qt_before = Some before }
  end

let spans () = Span.roots ()
let metrics () = Metrics.snapshot Metrics.default

type profile = { p_span : Span.t; p_metrics : Metrics.snapshot }

(* Close the query scope; returns the query's profile (root span plus
   interval metrics) when it was sampled, [None] otherwise. *)
let finish_query tok =
  if not tok.qt_active then None
  else begin
    let sampled = not !Control.suppress_spans || tok.qt_prev_suppress in
    Control.suppress_spans := tok.qt_prev_suppress;
    current := None;
    if not sampled then None
    else
      Option.map
        (fun s ->
          let after = metrics () in
          let m =
            match tok.qt_before with
            | Some before -> Metrics.diff ~before ~after
            | None -> after
          in
          if Flight_recorder.is_enabled () then
            Flight_recorder.append ~ts_ns:s.Span.end_ns ~scope:s.Span.scope
              ~kind:"span"
              [
                ("name", Event_log.S s.Span.name);
                ("dur_ns", Event_log.F (Span.duration_ns s));
              ];
          { p_span = s; p_metrics = m })
        (Span.last_root ())
  end

(* The most recently finished root span plus the metrics *interval*
   since the last [begin_query] (falling back to the cumulative
   snapshot when no query scope was ever opened). *)
let capture_last () =
  if not !Control.enabled then None
  else
    Option.map
      (fun s ->
        let after = metrics () in
        let m =
          match !last_before with
          | Some before -> Metrics.diff ~before ~after
          | None -> after
        in
        { p_span = s; p_metrics = m })
      (Span.last_root ())

let pp_profile ppf p =
  Fmt.pf ppf "%a@.metrics:@.%a" Span.pp_tree p.p_span Metrics.pp p.p_metrics

(* -- exporters --------------------------------------------------------- *)

let to_chrome_json () = Chrome_trace.to_json ~metrics:(metrics ()) (spans ())
let to_jsonl () = Event_log.to_jsonl ()
let to_openmetrics () = Openmetrics.render (metrics ())
