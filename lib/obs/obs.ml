(* Facade over the observability substrate: the on/off switch, the
   cheap hooks the instrumented layers call (no-ops while disabled),
   and profile capture for the runner/CLI.

   Usage pattern:

     Obs.enable ();
     ... run queries (spans + metrics accumulate) ...
     let json = Chrome_trace.to_json ~metrics:(Obs.metrics ()) (Obs.spans ()) in

   Every instrumentation hook checks one ref before doing work, so the
   hot paths pay nothing when tracing is off. *)

let enable () = Control.enabled := true
let disable () = Control.enabled := false
let enabled () = !Control.enabled

let reset () =
  Metrics.reset Metrics.default;
  Span.reset_collector ()

(* Called when a deployment resets its virtual clocks: later spans are
   shifted past everything already recorded so the collected timeline
   stays monotonic. *)
let new_epoch () = if !Control.enabled then Span.new_epoch ()

(* -- hooks for instrumented layers ------------------------------------ *)

let count ?(n = 1) ~scope name =
  if !Control.enabled then Metrics.incr ~by:n Metrics.default ~scope name

let gauge ~scope name v =
  if !Control.enabled then Metrics.set Metrics.default ~scope name v

let observe ~scope name v =
  if !Control.enabled then Metrics.observe Metrics.default ~scope name v

(* Every virtual-time charge of a simulated node flows through here:
   recorded as a per-node histogram and attributed to the innermost
   open span. *)
let on_charge ~node ~category ns =
  if !Control.enabled then begin
    Metrics.observe Metrics.default ~scope:node ("charge_ns." ^ category) ns;
    Span.add_charge ~category ns
  end

(* -- capture ---------------------------------------------------------- *)

let spans () = Span.roots ()
let metrics () = Metrics.snapshot Metrics.default

type profile = { p_span : Span.t; p_metrics : Metrics.snapshot }

(* The most recently finished root span plus the current metrics
   snapshot (cumulative since [enable]/[reset]). *)
let capture_last () =
  if not !Control.enabled then None
  else
    Option.map
      (fun s -> { p_span = s; p_metrics = metrics () })
      (Span.last_root ())

let pp_profile ppf p =
  Fmt.pf ppf "%a@.metrics:@.%a" Span.pp_tree p.p_span Metrics.pp p.p_metrics

let to_chrome_json () = Chrome_trace.to_json ~metrics:(metrics ()) (spans ())
