(** Flight recorder: constant-memory per-scope ring buffers of recent
    observability activity (events, virtual-time charges, finished
    query spans), dumped as JSONL + Chrome trace when an anomaly
    triggers — fault injection, policy denial, abnormal query outcome,
    WAL crash/recovery, attestation failure, SLO breach, tail-latency
    breach.

    Frames are virtual-clock-stamped and carry only virtual-time data
    (JSONL rendering is deferred to dump time to keep appends cheap),
    so dumps are byte-deterministic for a fixed seed. While disabled every
    entry point is a no-op (one boolean load), and recorder-off runs
    are byte-identical to pre-recorder builds. *)

type frame = {
  fr_seq : int;  (** global append order — total order across rings *)
  fr_ts_ns : float;
  fr_scope : string;
  fr_kind : string;
  fr_line : string;  (** fully rendered JSONL line *)
}

type dump = {
  d_seq : int;
  d_reason : string;  (** triggering event kind, e.g. ["fault.injected"] *)
  d_scope : string;
  d_ts_ns : float;
  d_frames : int;
  d_path : string option;  (** JSONL file, when a dump dir is set *)
  d_lines : string list;  (** header line + frame lines, dump order *)
}

val configure : ?frames:int -> ?dir:string -> ?cap:int -> unit -> unit
(** Set ring capacity per scope (default 256), dump directory (default
    none: dumps stay in memory only), and max dumps per run (default
    64; later triggers are counted but dropped). Clears all recorder
    state. *)

val enable : unit -> unit
(** Start recording: installs the recorder on {!Event_log.tap}, so
    every emitted event becomes a frame and trigger kinds dump.
    Requires observability ([Obs.enable]) for events to flow. *)

val disable : unit -> unit
val is_enabled : unit -> bool
val reset : unit -> unit
(** Drop rings, dump metadata, and sequence counters (config kept). *)

val append :
  ts_ns:float ->
  scope:string -> kind:string -> (string * Event_log.field) list -> unit
(** Record one frame directly (bypassing the event log) — used for
    metric deltas and span completions, and by the microbench kernel. *)

val note_event : Event_log.event -> unit
(** Record an already-built event as a frame (no trigger check). *)

val dump : reason:string -> scope:string -> ts_ns:float -> unit -> dump option
(** Force a dump of current ring contents. [None] while disabled or
    once the dump cap is reached. *)

val trigger_reason : Event_log.event -> string option
(** The dump reason an event would trigger, if any: its kind for
    trigger kinds, ["<kind>.fail"] for attestation events carrying
    [ok=false]. *)

val trigger_kinds : string list

val frame_capacity : unit -> int
val total_frames : unit -> int
(** Frames currently held across all rings (bounded by
    scopes * capacity). *)

val dump_count : unit -> int
val dropped : unit -> int
(** Triggers suppressed by the dump cap. *)

val dumps : unit -> dump list
(** Metadata (and lines) of every dump this run, oldest first. *)
