(** Hierarchical spans over the virtual clock, plus a process-wide
    collector. Timestamps come from caller-supplied clocks (simulated
    nodes' nanosecond counters), shifted by an epoch offset so the
    collected timeline stays monotonic across queries.

    The record is transparent (and partially mutable): the workload
    scheduler synthesizes span trees directly and installs them with
    {!add_root}. *)

type kind =
  | Complete
  | Instant
  | Flow_out of int  (** start of a cross-node causal arrow (flow id) *)
  | Flow_in of int  (** matching end of the arrow on the other node *)

type t = {
  id : int;
  name : string;
  scope : string;  (** the node/component this span belongs to *)
  kind : kind;
  begin_ns : float;
  mutable end_ns : float;
  mutable attrs : (string * string) list;
  mutable charges : (string * float) list;  (** category -> virtual ns *)
  mutable children_rev : t list;
}

val children : t -> t list
val duration_ns : t -> float

(** {2 Collector} *)

val reset_collector : unit -> unit

val stamp : (unit -> float) -> float
(** Epoch-shifted timestamp from a clock; advances the high-water mark. *)

val new_epoch : unit -> unit
(** Shift later timestamps past everything recorded so far (called when
    a deployment resets its virtual clocks). *)

val roots : unit -> t list
val last_root : unit -> t option
val open_depth : unit -> int
val current_epoch : unit -> float

val timeline_now : unit -> float
(** Highest timestamp recorded so far (default event timestamp). *)

val add_root : t -> unit
(** Install an externally-built span tree as a root of the timeline. *)

val make :
  name:string -> scope:string -> kind:kind -> attrs:(string * string) list ->
  float -> t
(** Bare span at a timestamp, not attached to the collector. *)

val with_ :
  ?attrs:(string * string) list ->
  name:string -> scope:string -> clock:(unit -> float) -> (unit -> 'a) -> 'a
(** Run inside a span; no-op while span collection is off. *)

val instant :
  ?attrs:(string * string) list ->
  ?clock:(unit -> float) -> name:string -> scope:string -> unit -> unit

val flow_out :
  ?attrs:(string * string) list ->
  clock:(unit -> float) -> name:string -> scope:string -> unit -> int
(** Departure mark of a cross-node causal arrow, inside the sender's
    innermost open span; returns the flow id to hand to {!flow_in}
    (0 when spans are off). *)

val flow_in :
  ?attrs:(string * string) list ->
  clock:(unit -> float) -> name:string -> scope:string -> int -> unit
(** Arrival mark of the arrow on the receiver; must share [name] with
    the matching {!flow_out}. Ignores flow id 0. *)

val set_attr : t -> string -> string -> unit

val add_charge : category:string -> float -> unit
(** Attribute charged virtual time to the innermost open span. *)

val total_charged : t -> float

val pp_tree : Format.formatter -> t -> unit
