(* Streaming multi-window SLO burn-rate watchdog on the virtual clock.

   An objective has an error budget (the allowed bad fraction, e.g.
   0.01 for "p99 of latencies under the target") and a set of trailing
   windows, each with a burn-rate threshold. The burn rate of a window
   is (bad/total)/budget — 1.0 means the budget is being consumed
   exactly as fast as it accrues. Following the multi-window pattern
   (a long window for significance, a short window for currency), the
   objective is *breached* only while every window's burn rate is at
   or above its threshold; this rejects both stale old burns (short
   window has recovered) and momentary blips (long window unmoved).

   Samples are (virtual ts, good, bad) aggregates fed by the caller —
   typically one per scheduler tick, derived from Histogram interval
   diffs ({!feed_view}) or counter deltas. Samples older than the
   longest window are folded into run totals, so memory is bounded by
   max_window / tick. Breach/recovery transitions emit deterministic
   [slo.breach] / [slo.recovered] events, which in turn trigger flight
   recorder dumps. *)

type window = { w_ns : float; w_burn : float }

type spec = {
  s_name : string;
  s_scope : string;  (* event scope for breach/recovery events *)
  s_budget : float;  (* allowed bad fraction, in (0, 1] *)
  s_windows : window list;
}

(* The conventional two-window shape: the full window at burn 1.0
   (budget actually being consumed) plus a 12x-shorter window at burn
   6.0 (and still burning hard right now). *)
let default_windows ~window_ns =
  [
    { w_ns = window_ns; w_burn = 1.0 };
    { w_ns = window_ns /. 12.0; w_burn = 6.0 };
  ]

type sample = { ts : float; good : int; bad : int }

type t = {
  spec : spec;
  max_window : float;
  samples : sample Queue.t;
  mutable expired_good : int;  (* aged out of every window *)
  mutable expired_bad : int;
  mutable breached_now : bool;
  mutable breach_start : float;
  mutable breaches : int;
  mutable breached_ns : float;
  mutable worst_burn : float;
  mutable last_now : float;
}

let create spec =
  let max_window =
    List.fold_left (fun acc w -> Float.max acc w.w_ns) 0.0 spec.s_windows
  in
  {
    spec;
    max_window;
    samples = Queue.create ();
    expired_good = 0;
    expired_bad = 0;
    breached_now = false;
    breach_start = 0.0;
    breaches = 0;
    breached_ns = 0.0;
    worst_burn = 0.0;
    last_now = 0.0;
  }

let name t = t.spec.s_name
let breached t = t.breached_now

(* Bad observations in a view, to bucket resolution: every bucket
   strictly above the bucket holding [threshold_ns] counts as bad (a
   value sharing the threshold's bucket is indistinguishable from the
   threshold itself, so it counts as good — a conservative undercount
   of at most one bucket width). *)
let bad_above view ~threshold_ns =
  let ti = Histogram.bucket_of threshold_ns in
  let bad = ref 0 in
  Array.iteri
    (fun i n -> if i > ti then bad := !bad + n)
    view.Histogram.v_buckets;
  !bad

let window_totals t ~now_ns w =
  let lo = now_ns -. w.w_ns in
  let good = ref 0 and bad = ref 0 in
  Queue.iter
    (fun s ->
      if s.ts > lo then begin
        good := !good + s.good;
        bad := !bad + s.bad
      end)
    t.samples;
  (!good, !bad)

let burn_rate t ~good ~bad =
  let total = good + bad in
  if total = 0 then 0.0
  else float_of_int bad /. float_of_int total /. t.spec.s_budget

let evaluate t ~now_ns =
  let burns =
    List.map
      (fun w ->
        let good, bad = window_totals t ~now_ns w in
        let burn = burn_rate t ~good ~bad in
        (w, burn, good + bad, bad))
      t.spec.s_windows
  in
  (* Track the long-window burn as the reported severity. *)
  (match burns with
  | (_, burn, _, _) :: _ ->
      if burn > t.worst_burn then t.worst_burn <- burn
  | [] -> ());
  let breaching =
    burns <> []
    && List.for_all
         (fun (w, burn, total, _) -> total > 0 && burn >= w.w_burn)
         burns
  in
  if breaching && not t.breached_now then begin
    t.breached_now <- true;
    t.breach_start <- now_ns;
    t.breaches <- t.breaches + 1;
    let _, burn, total, bad =
      match burns with b :: _ -> b | [] -> assert false
    in
    Event_log.emit ~ts_ns:now_ns ~scope:t.spec.s_scope ~kind:"slo.breach"
      [
        ("slo", Event_log.S t.spec.s_name);
        ("burn", Event_log.F burn);
        ("bad", Event_log.I bad);
        ("total", Event_log.I total);
        ("budget", Event_log.F t.spec.s_budget);
      ]
  end
  else if (not breaching) && t.breached_now then begin
    t.breached_now <- false;
    t.breached_ns <- t.breached_ns +. (now_ns -. t.breach_start);
    let _, burn, _, _ =
      match burns with b :: _ -> b | [] -> assert false
    in
    Event_log.emit ~ts_ns:now_ns ~scope:t.spec.s_scope ~kind:"slo.recovered"
      [
        ("slo", Event_log.S t.spec.s_name);
        ("burn", Event_log.F burn);
        ("breached_ns", Event_log.F (now_ns -. t.breach_start));
      ]
  end

let feed t ~now_ns ~good ~bad =
  t.last_now <- Float.max t.last_now now_ns;
  if good > 0 || bad > 0 then
    Queue.push { ts = now_ns; good; bad } t.samples;
  (* Age out samples past every window. *)
  let lo = now_ns -. t.max_window in
  let rec evict () =
    match Queue.peek_opt t.samples with
    | Some s when s.ts <= lo ->
        ignore (Queue.pop t.samples);
        t.expired_good <- t.expired_good + s.good;
        t.expired_bad <- t.expired_bad + s.bad;
        evict ()
    | _ -> ()
  in
  evict ();
  evaluate t ~now_ns

let feed_view t ~now_ns ~threshold_ns ~before ~after =
  let diff = Histogram.sub ~before ~after in
  let bad = bad_above diff ~threshold_ns in
  let good = max 0 (diff.Histogram.v_count - bad) in
  feed t ~now_ns ~good ~bad

(* -- Summary ----------------------------------------------------------- *)

type summary = {
  sum_name : string;
  sum_budget : float;
  sum_total : int;
  sum_bad : int;
  sum_breaches : int;
  sum_breached_ns : float;  (* virtual time spent breached *)
  sum_worst_burn : float;  (* peak long-window burn rate *)
  sum_breached_now : bool;
}

let summary t =
  let live_good = ref 0 and live_bad = ref 0 in
  Queue.iter
    (fun s ->
      live_good := !live_good + s.good;
      live_bad := !live_bad + s.bad)
    t.samples;
  let breached_ns =
    t.breached_ns
    +. (if t.breached_now then t.last_now -. t.breach_start else 0.0)
  in
  {
    sum_name = t.spec.s_name;
    sum_budget = t.spec.s_budget;
    sum_total = t.expired_good + t.expired_bad + !live_good + !live_bad;
    sum_bad = t.expired_bad + !live_bad;
    sum_breaches = t.breaches;
    sum_breached_ns = breached_ns;
    sum_worst_burn = t.worst_burn;
    sum_breached_now = t.breached_now;
  }

let summary_line s =
  Printf.sprintf
    "%-12s budget=%.3f bad=%d/%d breaches=%d breached_ms=%.3f worst_burn=%.2f%s"
    s.sum_name s.sum_budget s.sum_bad s.sum_total s.sum_breaches
    (s.sum_breached_ns /. 1e6)
    s.sum_worst_burn
    (if s.sum_breached_now then " [breached]" else "")

let summary_json s =
  Printf.sprintf
    "{\"slo\":\"%s\",\"budget\":%s,\"bad\":%d,\"total\":%d,\"breaches\":%d,\
     \"breached_ns\":%s,\"worst_burn\":%s,\"breached_now\":%b}"
    (Event_log.escape s.sum_name)
    (Event_log.json_float s.sum_budget)
    s.sum_bad s.sum_total s.sum_breaches
    (Event_log.json_float s.sum_breached_ns)
    (Event_log.json_float s.sum_worst_burn)
    s.sum_breached_now
