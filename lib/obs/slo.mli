(** Streaming multi-window SLO burn-rate watchdog on the virtual
    clock. An objective has an error budget (allowed bad fraction) and
    trailing windows, each with a burn-rate threshold; the objective is
    breached only while *every* window's burn rate
    [(bad/total)/budget] is at or above its threshold — the classic
    long-window-for-significance, short-window-for-currency pattern.
    Breach/recovery transitions emit deterministic [slo.breach] /
    [slo.recovered] events (which trigger flight recorder dumps). *)

type window = { w_ns : float; w_burn : float }

type spec = {
  s_name : string;
  s_scope : string;  (** event scope for breach/recovery events *)
  s_budget : float;  (** allowed bad fraction, in (0, 1] *)
  s_windows : window list;
}

val default_windows : window_ns:float -> window list
(** Two-window shape: [window_ns] at burn 1.0 plus [window_ns/12] at
    burn 6.0. *)

type t

val create : spec -> t
val name : t -> string
val breached : t -> bool

val feed : t -> now_ns:float -> good:int -> bad:int -> unit
(** Add one aggregate sample at virtual time [now_ns] and re-evaluate.
    Samples older than the longest window fold into run totals, so
    memory stays bounded by [max_window / feed interval]. *)

val feed_view :
  t ->
  now_ns:float ->
  threshold_ns:float ->
  before:Histogram.view -> after:Histogram.view -> unit
(** Feed a histogram interval diff: observations above [threshold_ns]
    (bucket resolution, see {!bad_above}) are bad, the rest good. *)

val bad_above : Histogram.view -> threshold_ns:float -> int
(** Observations in buckets strictly above the bucket holding
    [threshold_ns] — a conservative (at most one bucket width)
    undercount of values exceeding the threshold. *)

type summary = {
  sum_name : string;
  sum_budget : float;
  sum_total : int;
  sum_bad : int;
  sum_breaches : int;
  sum_breached_ns : float;  (** virtual time spent breached *)
  sum_worst_burn : float;  (** peak long-window burn rate *)
  sum_breached_now : bool;
}

val summary : t -> summary
val summary_line : summary -> string
val summary_json : summary -> string
