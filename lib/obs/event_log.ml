(* Structured query-lifecycle event log, exported as JSONL (one JSON
   object per line). This is the forensic record of *what happened and
   why*: plan splits, policy allow/deny decisions with the matched rule
   id and the audit-log chain head, attestation events, fault
   injections, scheduler shed/deny outcomes.

   Like the span collector, the log is a process-wide buffer gated by
   [Control.enabled] and rewound by [reset]. Timestamps are virtual
   nanoseconds (defaulting to the span timeline's high-water mark), and
   all identifiers are deterministic, so the JSONL of two identical
   runs is byte-identical. *)

type field = S of string | I of int | F of float | B of bool

type event = {
  e_ts_ns : float;
  e_scope : string;
  e_kind : string;  (** e.g. "policy.deny", "fault.injected" *)
  e_trace : Trace_context.t option;
  e_fields : (string * field) list;
}

let buf_rev : event list ref = ref []

(* Emission tap: every buffered event is also offered to [tap]. The
   flight recorder installs itself here (a ref cell rather than a
   direct call, because [Flight_recorder] depends on this module). *)
let tap : (event -> unit) ref = ref (fun _ -> ())

(* Optional streaming sink: when open, every event is rendered and
   written as it is emitted, and *terminal* kinds (a query ending in
   Crashed/Rejected, a WAL crash site firing) force a flush so the
   lines that explain an abnormal exit are on disk even if the process
   never reaches its orderly export path. *)
type sink = { sk_oc : out_channel; sk_path : string; mutable sk_events : int }

let sink : sink option ref = ref None

let terminal_kinds =
  [ "query.crashed"; "query.rejected"; "wal.crash"; "enclave.abort" ]

let reset () = buf_rev := []
let events () = List.rev !buf_rev
let length () = List.length !buf_rev

(* -- JSONL rendering --------------------------------------------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let field_json = function
  | S s -> "\"" ^ escape s ^ "\""
  | I n -> string_of_int n
  | F f -> json_float f
  | B b -> if b then "true" else "false"

let event_json buf e =
  Buffer.add_string buf
    (Printf.sprintf "{\"ts_ns\":%s,\"scope\":\"%s\",\"kind\":\"%s\""
       (json_float e.e_ts_ns) (escape e.e_scope) (escape e.e_kind));
  (match e.e_trace with
  | Some ctx ->
      Buffer.add_string buf
        (Printf.sprintf ",\"trace_id\":\"%s\",\"span_id\":\"%s\""
           (Trace_context.to_hex ctx) (Trace_context.span_hex ctx))
  | None -> ());
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf
        (Printf.sprintf ",\"%s\":%s" (escape k) (field_json v)))
    e.e_fields;
  Buffer.add_char buf '}'

let event_line e =
  let buf = Buffer.create 128 in
  event_json buf e;
  Buffer.contents buf

let flush_sink () =
  match !sink with None -> () | Some s -> flush s.sk_oc

let close_sink () =
  match !sink with
  | None -> ()
  | Some s ->
      sink := None;
      flush s.sk_oc;
      close_out_noerr s.sk_oc

let open_sink path =
  close_sink ();
  let oc = open_out path in
  sink := Some { sk_oc = oc; sk_path = path; sk_events = 0 }

let sink_path () =
  match !sink with None -> None | Some s -> Some s.sk_path

let () = at_exit close_sink

let emit ?ts_ns ?trace ~scope ~kind fields =
  if !Control.enabled then begin
    let e_ts_ns =
      match ts_ns with Some t -> t | None -> Span.timeline_now ()
    in
    let e =
      { e_ts_ns; e_scope = scope; e_kind = kind; e_trace = trace;
        e_fields = fields }
    in
    buf_rev := e :: !buf_rev;
    (match !sink with
    | None -> ()
    | Some s ->
        output_string s.sk_oc (event_line e);
        output_char s.sk_oc '\n';
        s.sk_events <- s.sk_events + 1;
        if List.mem kind terminal_kinds then flush s.sk_oc);
    !tap e
  end

let to_jsonl () =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      event_json buf e;
      Buffer.add_char buf '\n')
    (events ());
  Buffer.contents buf

let pp_event ppf e =
  Fmt.pf ppf "%10.3fms %-10s %-18s%a%s" (e.e_ts_ns /. 1e6) e.e_scope e.e_kind
    (fun ppf -> function
      | Some ctx -> Fmt.pf ppf " %s " (Trace_context.to_hex ctx)
      | None -> Fmt.pf ppf " ")
    e.e_trace
    (String.concat " "
       (List.map (fun (k, v) -> k ^ "=" ^ field_json v) e.e_fields))
