(** Post-hoc forensics over flight recorder dumps and event-log JSONL:
    a dependency-free parser for the flat one-object-per-line schema,
    and per-query causal timeline reconstruction (host <-> shard hops,
    WAL records, fault sites, policy decisions, SLO breaches). *)

type entry = {
  en_ts_ns : float;
  en_scope : string;
  en_kind : string;
  en_trace : string option;
  en_span : string option;
  en_seq : int option;  (** flight recorder frame order *)
  en_fields : (string * Event_log.field) list;  (** everything else *)
}

val parse_fields : string -> (string * Event_log.field) list option
(** Parse one flat JSON object (string/number/boolean values only).
    [None] on malformed input — never raises. *)

val parse_line : string -> entry option
(** Parse one dump/event line into a timeline entry. Lines without a
    [ts_ns] field (and unparseable lines) yield [None]. *)

val load_lines : string list -> entry list * int
(** Entries plus the count of non-empty lines that failed to parse. *)

val load_file : string -> entry list * int

val load_dir : string -> (string * (entry list * int)) list
(** All [*.jsonl] files in a directory, sorted by name. *)

val is_anomaly : entry -> bool
(** Anomalous kinds (faults, denials, sheds, crashes, breaches) or an
    [ok=false] field. *)

val timeline : ?trace:string -> entry list -> string
(** Render entries as causal timelines grouped by trace id (scope-hop
    arrows, anomaly markers), optionally restricted to one trace. *)

val report_dir : ?trace:string -> string -> string
(** Full forensics report over a dump directory: per-file event
    counts, then the merged timeline. *)
