(** Fixed log-bucketed (HDR-style) histogram: [n_sub] sub-buckets per
    power of two over non-negative values, with exact count/sum/min/max
    kept alongside. All histograms share one bucket layout, so interval
    activity between two snapshots is the per-bucket subtraction of
    their counts ({!sub}), and percentiles are extracted from bucket
    counts to within one bucket width (~9% relative). *)

val n_sub : int
(** Sub-buckets per power of two (bucket width ratio [2^(1/n_sub)]). *)

val n_buckets : int
(** Total buckets, including the underflow (< 1.0) and overflow ends. *)

type t
(** Mutable accumulator. *)

type view = {
  v_count : int;
  v_sum : float;
  v_min : float;  (** exact for accumulator views; bucket-resolution
                      (lower bound of the lowest non-empty bucket) for
                      interval views from {!sub} *)
  v_max : float;  (** likewise: exact, or the upper bound of the
                      highest non-empty difference bucket *)
  v_buckets : int array;
}
(** Immutable snapshot of a histogram's state. *)

val create : unit -> t
val observe : t -> float -> unit
val count : t -> int
val sum : t -> float
val view : t -> view
val empty_view : view

val sub : before:view -> after:view -> view
(** Activity between two snapshots of one histogram, by per-bucket
    subtraction. Interval min/max are bucket-resolution. *)

val merge : view -> view -> view
(** Exact bucket-wise union: counts/sums add, min/max combine. Because
    all histograms share one layout, the result equals the view of a
    histogram that observed both input streams. Empty views are the
    identity. *)

val bucket_of : float -> int
(** Bucket index a value lands in (0 = underflow, last = overflow). *)

val bucket_bound : int -> float
(** Upper bound of a bucket ([infinity] for the overflow bucket). *)

val bucket_lower : int -> float
(** Lower bound of a bucket (0.0 for the underflow bucket). *)

val percentile : t -> float -> float

val percentile_of_view : view -> float -> float
(** Nearest-rank percentile from bucket counts: the upper bound of the
    bucket holding the [ceil (q * count)]-th value, capped by the exact
    recorded maximum. 0.0 on an empty view. *)

val cumulative_buckets : view -> (float * int) list
(** Non-empty buckets as [(upper_bound, cumulative_count)], lowest
    first — the OpenMetrics [le] series. *)

val pp_view : Format.formatter -> view -> unit
