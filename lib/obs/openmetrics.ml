(* OpenMetrics text renderer for a [Metrics.snapshot].

   Each distinct metric name becomes one metric family with the node /
   component as a ["scope"] label, so the same metric measured on host
   and storage lands in one family:

     # TYPE ironsafe_charge_ns_io histogram
     ironsafe_charge_ns_io_bucket{scope="storage",le="1.5"} 3
     ...
     ironsafe_charge_ns_io_sum{scope="storage"} 123.0
     ironsafe_charge_ns_io_count{scope="storage"} 7

   Histograms emit their non-empty log buckets as a cumulative [le]
   series plus the mandatory [+Inf] bucket. Output order is
   deterministic: families sorted by name, samples by scope. *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let fmt_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%g" f

let fmt_le bound =
  if Float.is_finite bound then fmt_float bound else "+Inf"

let type_name = function
  | Metrics.VCounter _ -> "counter"
  | Metrics.VGauge _ -> "gauge"
  | Metrics.VHist _ -> "histogram"

let add_sample buf ~family ~suffix ~scope ?le value =
  Buffer.add_string buf family;
  Buffer.add_string buf suffix;
  Buffer.add_string buf "{scope=\"";
  Buffer.add_string buf scope;
  Buffer.add_char buf '"';
  (match le with
  | Some bound ->
      Buffer.add_string buf ",le=\"";
      Buffer.add_string buf (fmt_le bound);
      Buffer.add_char buf '"'
  | None -> ());
  Buffer.add_string buf "} ";
  Buffer.add_string buf value;
  Buffer.add_char buf '\n'

let render ?(prefix = "ironsafe_") (snap : Metrics.snapshot) : string =
  let buf = Buffer.create 4096 in
  (* regroup by metric name (then scope): one family per name+kind *)
  let by_family =
    List.sort
      (fun ((s1, n1), v1) ((s2, n2), v2) ->
        compare (n1, type_name v1, s1) (n2, type_name v2, s2))
      (Metrics.to_list snap)
  in
  let last_family = ref "" in
  List.iter
    (fun ((scope, name), v) ->
      let family = prefix ^ sanitize name in
      let kind = type_name v in
      let header = family ^ "/" ^ kind in
      if header <> !last_family then begin
        last_family := header;
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" family kind)
      end;
      match v with
      | Metrics.VCounter n ->
          add_sample buf ~family ~suffix:"_total" ~scope (string_of_int n)
      | Metrics.VGauge g ->
          add_sample buf ~family ~suffix:"" ~scope (fmt_float g)
      | Metrics.VHist h ->
          let cumulative = Histogram.cumulative_buckets h in
          List.iter
            (fun (bound, seen) ->
              add_sample buf ~family ~suffix:"_bucket" ~scope ~le:bound
                (string_of_int seen))
            cumulative;
          (* the mandatory +Inf bucket, unless overflow already emitted it *)
          (match List.rev cumulative with
          | (bound, _) :: _ when not (Float.is_finite bound) -> ()
          | _ ->
              add_sample buf ~family ~suffix:"_bucket" ~scope ~le:infinity
                (string_of_int h.Histogram.v_count));
          add_sample buf ~family ~suffix:"_sum" ~scope
            (fmt_float h.Histogram.v_sum);
          add_sample buf ~family ~suffix:"_count" ~scope
            (string_of_int h.Histogram.v_count))
    by_family;
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf
