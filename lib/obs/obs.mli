(** Facade over the observability substrate. All hooks are no-ops
    while disabled (one boolean load), so instrumented hot paths pay
    nothing when tracing is off. *)

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

val set_sample_every : int -> unit
(** Keep spans/flows for every n-th query (deterministic counter, so
    sampling is reproducible). Metrics and lifecycle events always
    accumulate while enabled. *)

val sample_every : unit -> int

val reset : unit -> unit
(** Drop all collected metrics, spans, events; rewind trace ids and
    the query counter. *)

val new_epoch : unit -> unit
(** Shift later spans past everything recorded (virtual clocks reset). *)

(** {2 Hooks for instrumented layers} *)

val count : ?n:int -> scope:string -> string -> unit
val gauge : scope:string -> string -> float -> unit
val observe : scope:string -> string -> float -> unit

val counter : scope:string -> string -> Metrics.counter
(** Pre-resolved counter handle into the default registry — for hot
    paths that report per query; see {!Metrics.counter}. *)

val count_via : ?n:int -> Metrics.counter -> unit
(** Like {!count} through a handle (no per-call registry probe). *)

val series : scope:string -> string -> Metrics.series
val observe_via : Metrics.series -> float -> unit
(** Like {!observe} through a handle. *)

val on_charge : node:string -> category:string -> float -> unit
(** Record a virtual-time charge: per-node histogram + innermost span. *)

val event :
  ?ts_ns:float ->
  scope:string -> kind:string -> (string * Event_log.field) list -> unit
(** Structured lifecycle event, stamped with the active trace context. *)

(** {2 Query lifecycle} *)

type query_token

val begin_query : unit -> query_token
(** Open a query scope: allocate the trace context, decide sampling,
    snapshot metrics for interval capture. Pair with {!finish_query}. *)

val current_trace : unit -> Trace_context.t option
(** The context wire messages should propagate, when a query is open. *)

val trace_attrs : unit -> (string * string) list
(** Root-span attributes carrying the active trace identity. *)

(** {2 Capture} *)

val spans : unit -> Span.t list
val metrics : unit -> Metrics.snapshot

type profile = { p_span : Span.t; p_metrics : Metrics.snapshot }

val finish_query : query_token -> profile option
(** Close the query scope; the query's root span plus its interval
    metrics when sampled, [None] otherwise. *)

val capture_last : unit -> profile option
(** Most recently finished root span plus the metrics interval since
    the last {!begin_query} (cumulative when none was opened). *)

val pp_profile : Format.formatter -> profile -> unit

(** {2 Exporters} *)

val to_chrome_json : unit -> string
val to_jsonl : unit -> string
val to_openmetrics : unit -> string
