(* Post-hoc forensics: reconstruct per-query causal timelines from
   flight recorder dumps (or any event-log JSONL export).

   The dump/event schema is deliberately flat — one JSON object per
   line, values limited to strings, numbers, and booleans — so a
   dependency-free parser here can round-trip everything the exporters
   write. Lines that fail to parse are counted, not fatal: a truncated
   final line is exactly the abnormal-exit case forensics runs on. *)

type entry = {
  en_ts_ns : float;
  en_scope : string;
  en_kind : string;
  en_trace : string option;
  en_span : string option;
  en_seq : int option;  (* flight recorder frame order *)
  en_fields : (string * Event_log.field) list;  (* everything else *)
}

(* -- Flat JSON object parser ------------------------------------------- *)

exception Bad of int

let parse_fields line =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos >= n then raise (Bad !pos) else line.[!pos] in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match line.[!pos] with
                       | ' ' | '\t' | '\n' | '\r' -> true
                       | _ -> false) do
      advance ()
    done
  in
  let expect c =
    skip_ws ();
    if peek () <> c then raise (Bad !pos);
    advance ()
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      let c = peek () in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          let e = peek () in
          advance ();
          match e with
          | '"' -> Buffer.add_char buf '"'; go ()
          | '\\' -> Buffer.add_char buf '\\'; go ()
          | '/' -> Buffer.add_char buf '/'; go ()
          | 'n' -> Buffer.add_char buf '\n'; go ()
          | 'r' -> Buffer.add_char buf '\r'; go ()
          | 't' -> Buffer.add_char buf '\t'; go ()
          | 'b' -> Buffer.add_char buf '\b'; go ()
          | 'f' -> Buffer.add_char buf '\012'; go ()
          | 'u' ->
              if !pos + 4 > n then raise (Bad !pos);
              let hex = String.sub line !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex) with _ -> raise (Bad !pos)
              in
              (* The exporters only \u-escape control characters, so a
                 single byte suffices here. *)
              Buffer.add_char buf (Char.chr (code land 0xff));
              go ()
          | _ -> raise (Bad !pos))
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_scalar () =
    skip_ws ();
    match peek () with
    | '"' -> Event_log.S (parse_string ())
    | 't' ->
        if !pos + 4 <= n && String.sub line !pos 4 = "true" then begin
          pos := !pos + 4;
          Event_log.B true
        end
        else raise (Bad !pos)
    | 'f' ->
        if !pos + 5 <= n && String.sub line !pos 5 = "false" then begin
          pos := !pos + 5;
          Event_log.B false
        end
        else raise (Bad !pos)
    | _ ->
        let start = !pos in
        while
          !pos < n
          && (match line.[!pos] with
             | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
             | _ -> false)
        do
          advance ()
        done;
        if !pos = start then raise (Bad !pos);
        let s = String.sub line start (!pos - start) in
        let f = try float_of_string s with _ -> raise (Bad start) in
        if Float.is_integer f && Float.abs f < 1e15
           && not (String.contains s '.')
           && not (String.contains s 'e')
           && not (String.contains s 'E')
        then Event_log.I (int_of_float f)
        else Event_log.F f
  in
  try
    expect '{';
    skip_ws ();
    if peek () = '}' then Some []
    else begin
      let fields = ref [] in
      let rec members () =
        let k = (skip_ws (); parse_string ()) in
        expect ':';
        let v = parse_scalar () in
        fields := (k, v) :: !fields;
        skip_ws ();
        match peek () with
        | ',' -> advance (); members ()
        | '}' -> advance ()
        | _ -> raise (Bad !pos)
      in
      members ();
      Some (List.rev !fields)
    end
  with Bad _ -> None

let parse_line line =
  match parse_fields line with
  | None -> None
  | Some fields ->
      let str k =
        match List.assoc_opt k fields with
        | Some (Event_log.S s) -> Some s
        | _ -> None
      in
      let num k =
        match List.assoc_opt k fields with
        | Some (Event_log.F f) -> Some f
        | Some (Event_log.I i) -> Some (float_of_int i)
        | _ -> None
      in
      let int k =
        match List.assoc_opt k fields with
        | Some (Event_log.I i) -> Some i
        | Some (Event_log.F f) -> Some (int_of_float f)
        | _ -> None
      in
      (* Dump headers ({"dump":..}) and frame/event lines both carry
         ts_ns; anything without one is not a timeline entry. *)
      match num "ts_ns" with
      | None -> None
      | Some ts ->
          let consumed =
            [ "ts_ns"; "scope"; "kind"; "trace_id"; "span_id"; "seq" ]
          in
          Some
            {
              en_ts_ns = ts;
              en_scope = Option.value ~default:"-" (str "scope");
              en_kind = Option.value ~default:"-" (str "kind");
              en_trace = str "trace_id";
              en_span = str "span_id";
              en_seq = int "seq";
              en_fields =
                List.filter (fun (k, _) -> not (List.mem k consumed)) fields;
            }

(* -- Loading ----------------------------------------------------------- *)

let load_lines lines =
  let entries = ref [] and skipped = ref 0 in
  List.iter
    (fun line ->
      if String.trim line <> "" then
        match parse_line line with
        | Some e -> entries := e :: !entries
        | None -> incr skipped)
    lines;
  (List.rev !entries, !skipped)

let load_file path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  load_lines (List.rev !lines)

let load_dir dir =
  let names =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".jsonl")
    |> List.sort compare
  in
  List.map (fun f -> (f, load_file (Filename.concat dir f))) names

(* -- Timeline rendering ------------------------------------------------ *)

let anomaly_kinds =
  [
    "fault.injected"; "policy.deny"; "sched.shed"; "sched.denied";
    "sched.tail_breach"; "query.tail_breach"; "wal.crash"; "wal.recover";
    "slo.breach";
    "query.crashed"; "query.rejected"; "query.degraded"; "enclave.abort";
  ]

let is_anomaly e =
  List.mem e.en_kind anomaly_kinds
  || List.exists
       (fun (k, v) -> k = "ok" && v = Event_log.B false)
       e.en_fields

let entry_order a b =
  match compare a.en_ts_ns b.en_ts_ns with
  | 0 -> compare a.en_seq b.en_seq
  | c -> c

let fields_str e =
  String.concat " "
    (List.map
       (fun (k, v) -> k ^ "=" ^ Event_log.field_json v)
       e.en_fields)

(* One timeline line: virtual timestamp, a hop marker when the scope
   changed since the previous entry (the host <-> shard causal flow),
   an anomaly marker, then kind and fields. *)
let render_entries buf entries =
  let prev_scope = ref "" in
  List.iter
    (fun e ->
      let hop =
        if !prev_scope <> "" && e.en_scope <> !prev_scope then "->" else "  "
      in
      prev_scope := e.en_scope;
      Buffer.add_string buf
        (Printf.sprintf "  %12.3fms %s %-12s %c %-20s %s\n"
           (e.en_ts_ns /. 1e6) hop e.en_scope
           (if is_anomaly e then '!' else ' ')
           e.en_kind (fields_str e)))
    entries

let timeline ?trace entries =
  let entries = List.stable_sort entry_order entries in
  let entries =
    match trace with
    | None -> entries
    | Some t -> List.filter (fun e -> e.en_trace = Some t) entries
  in
  let buf = Buffer.create 1024 in
  (* Group by trace id; untraced entries (scheduler-level, dump
     headers) form a shared "run" group printed first. *)
  let traces =
    List.fold_left
      (fun acc e ->
        match e.en_trace with
        | Some t when not (List.mem t acc) -> acc @ [ t ]
        | _ -> acc)
      [] entries
  in
  let untraced = List.filter (fun e -> e.en_trace = None) entries in
  if untraced <> [] && trace = None then begin
    Buffer.add_string buf
      (Printf.sprintf "run-level events (%d):\n" (List.length untraced));
    render_entries buf untraced
  end;
  List.iter
    (fun t ->
      let es = List.filter (fun e -> e.en_trace = Some t) entries in
      let anomalies = List.length (List.filter is_anomaly es) in
      Buffer.add_string buf
        (Printf.sprintf "query trace=%s events=%d anomalies=%d:\n" t
           (List.length es) anomalies);
      render_entries buf es)
    traces;
  Buffer.contents buf

let report_dir ?trace dir =
  let files = load_dir dir in
  let buf = Buffer.create 4096 in
  let total_entries = ref 0 and total_skipped = ref 0 in
  let all = ref [] in
  List.iter
    (fun (name, (entries, skipped)) ->
      total_entries := !total_entries + List.length entries;
      total_skipped := !total_skipped + skipped;
      all := !all @ entries;
      Buffer.add_string buf
        (Printf.sprintf "%s: %d events%s\n" name (List.length entries)
           (if skipped > 0 then Printf.sprintf " (%d unparseable)" skipped
            else "")))
    files;
  if files = [] then Buffer.add_string buf "no .jsonl dumps found\n"
  else begin
    (* successive dumps overlap (each carries the full ring): frames
       share the recorder's global sequence, so entries with a [seq]
       dedupe exactly across files *)
    let seen = Hashtbl.create 256 in
    let deduped =
      List.filter
        (fun e ->
          match e.en_seq with
          | None -> true
          | Some s ->
              if Hashtbl.mem seen s then false
              else begin
                Hashtbl.add seen s ();
                true
              end)
        !all
    in
    (match List.length !all - List.length deduped with
    | 0 -> ()
    | n ->
        Buffer.add_string buf
          (Printf.sprintf "(%d duplicate frames across overlapping dumps)\n" n));
    Buffer.add_char buf '\n';
    Buffer.add_string buf (timeline ?trace deduped)
  end;
  Buffer.contents buf
