(* Hierarchical spans over the *virtual* clock: each span records
   begin/end timestamps read from a caller-supplied clock (a simulated
   node's nanosecond clock), its parent, free-form attributes, and the
   per-category virtual time charged while it was the innermost open
   span.

   Because every query run resets the simulated clocks to zero, the
   collector maintains an epoch offset: [new_epoch] (called whenever a
   deployment resets its counters) moves the offset to the highest
   timestamp recorded so far, keeping the collected timeline monotonic
   across consecutive queries — exactly what a Chrome trace needs. *)

type kind =
  | Complete
  | Instant
  | Flow_out of int  (** start of a cross-node causal arrow (flow id) *)
  | Flow_in of int  (** matching end of the arrow on the other node *)

type t = {
  id : int;
  name : string;
  scope : string;  (** the node/component this span belongs to *)
  kind : kind;
  begin_ns : float;
  mutable end_ns : float;
  mutable attrs : (string * string) list;
  mutable charges : (string * float) list;  (** category -> virtual ns *)
  mutable children_rev : t list;
}

let children s = List.rev s.children_rev
let duration_ns s = s.end_ns -. s.begin_ns

(* -- collector -------------------------------------------------------- *)

let next_id = ref 0
let next_flow_id = ref 0
let stack : t list ref = ref []
let roots_rev : t list ref = ref []
let epoch = ref 0.0
let high_water = ref 0.0

let reset_collector () =
  next_id := 0;
  next_flow_id := 0;
  stack := [];
  roots_rev := [];
  epoch := 0.0;
  high_water := 0.0

let stamp clock =
  let ts = !epoch +. clock () in
  if ts > !high_water then high_water := ts;
  ts

let new_epoch () = epoch := !high_water

let roots () = List.rev !roots_rev
let last_root () = match !roots_rev with [] -> None | s :: _ -> Some s
let open_depth () = List.length !stack
let current_epoch () = !epoch

(* Install an externally-built span tree as a root of the collected
   timeline (the workload scheduler synthesizes per-session lanes this
   way). The high-water mark advances so a later [new_epoch] clears the
   added spans too. *)
let add_root s =
  if s.end_ns > !high_water then high_water := s.end_ns;
  roots_rev := s :: !roots_rev

let attach s =
  match !stack with
  | parent :: _ -> parent.children_rev <- s :: parent.children_rev
  | [] -> roots_rev := s :: !roots_rev

let make ~name ~scope ~kind ~attrs ts =
  incr next_id;
  {
    id = !next_id;
    name;
    scope;
    kind;
    begin_ns = ts;
    end_ns = ts;
    attrs;
    charges = [];
    children_rev = [];
  }

(* Run [f] inside a span named [name]; begin/end timestamps are read
   from [clock] (virtual nanoseconds). No-op when collection is off. *)
let with_ ?(attrs = []) ~name ~scope ~clock f =
  if not (Control.spans_on ()) then f ()
  else begin
    let s = make ~name ~scope ~kind:Complete ~attrs (stamp clock) in
    stack := s :: !stack;
    Fun.protect
      ~finally:(fun () ->
        s.end_ns <- stamp clock;
        (match !stack with
        | top :: rest when top == s -> stack := rest
        | other ->
            (* unbalanced exit (an exception skipped a child's finally):
               drop everything above this span *)
            let rec drop = function
              | top :: rest when top == s -> rest
              | _ :: rest -> drop rest
              | [] -> []
            in
            stack := drop other);
        attach s)
      f
  end

(* A zero-duration marker at the current point of the timeline (or of
   [clock], when given). *)
let instant ?(attrs = []) ?clock ~name ~scope () =
  if Control.spans_on () then begin
    let ts =
      match clock with Some c -> stamp c | None -> !high_water
    in
    attach (make ~name ~scope ~kind:Instant ~attrs ts)
  end

let timeline_now () = !high_water

(* -- cross-node flows -------------------------------------------------- *)

(* A flow is a causal arrow between two nodes' timelines: [flow_out]
   marks the departure (inside the sender's innermost open span) and
   returns a fresh flow id; [flow_in ... id] marks the arrival on the
   receiver. Chrome trace renders the pair as an arrow between the two
   lanes, which is what links host- and storage-side spans of one split
   query into a single causal tree. The two marks must share [name]
   (trace viewers bind flows by name + id). Returns 0 when spans are
   off; [flow_in] ignores id 0. *)
let flow_out ?(attrs = []) ~clock ~name ~scope () =
  if not (Control.spans_on ()) then 0
  else begin
    incr next_flow_id;
    let fid = !next_flow_id in
    attach (make ~name ~scope ~kind:(Flow_out fid) ~attrs (stamp clock));
    fid
  end

let flow_in ?(attrs = []) ~clock ~name ~scope fid =
  if Control.spans_on () && fid <> 0 then
    attach (make ~name ~scope ~kind:(Flow_in fid) ~attrs (stamp clock))

let set_attr s key v = s.attrs <- (key, v) :: List.remove_assoc key s.attrs

(* Attribute [ns] of charged virtual time to the innermost open span. *)
let add_charge ~category ns =
  match !stack with
  | [] -> ()
  | s :: _ ->
      let cur = Option.value ~default:0.0 (List.assoc_opt category s.charges) in
      s.charges <- (category, cur +. ns) :: List.remove_assoc category s.charges

(* Total charged time in [s] and its subtree. *)
let rec total_charged s =
  List.fold_left (fun acc (_, ns) -> acc +. ns) 0.0 s.charges
  +. List.fold_left (fun acc c -> acc +. total_charged c) 0.0 (children s)

(* -- rendering -------------------------------------------------------- *)

let pp_charges ppf charges =
  match charges with
  | [] -> ()
  | l ->
      Fmt.pf ppf "  {%s}"
        (String.concat ", "
           (List.map
              (fun (c, ns) -> Printf.sprintf "%s %.3fms" c (ns /. 1e6))
              (List.sort compare l)))

let pp_attrs ppf = function
  | [] -> ()
  | attrs ->
      Fmt.pf ppf "  [%s]"
        (String.concat ", "
           (List.map (fun (k, v) -> k ^ "=" ^ v) (List.rev attrs)))

let rec pp_node ppf ~indent s =
  (match s.kind with
  | Complete ->
      Fmt.pf ppf "%s%-24s %-10s %10.3f ms%a%a@." indent s.name
        ("[" ^ s.scope ^ "]")
        (duration_ns s /. 1e6)
        pp_attrs s.attrs pp_charges s.charges
  | Instant ->
      Fmt.pf ppf "%s%-24s %-10s   @ %.3f ms%a@." indent ("*" ^ s.name)
        ("[" ^ s.scope ^ "]")
        (s.begin_ns /. 1e6) pp_attrs s.attrs
  | Flow_out fid ->
      Fmt.pf ppf "%s%-24s %-10s   @ %.3f ms  flow #%d ->%a@." indent
        (">" ^ s.name)
        ("[" ^ s.scope ^ "]")
        (s.begin_ns /. 1e6) fid pp_attrs s.attrs
  | Flow_in fid ->
      Fmt.pf ppf "%s%-24s %-10s   @ %.3f ms  -> flow #%d%a@." indent
        ("<" ^ s.name)
        ("[" ^ s.scope ^ "]")
        (s.begin_ns /. 1e6) fid pp_attrs s.attrs);
  List.iter (pp_node ppf ~indent:(indent ^ "  ")) (children s)

let pp_tree ppf s = pp_node ppf ~indent:"" s
