(** Chrome trace_event exporter: spans become balanced "B"/"E"
    duration events, instants "i" events, cross-node flows "s"/"f"
    arrow pairs (bound by flow id, with ["bp":"e"] so the arrow ends on
    the enclosing slice), and counters one trailing "C" event per
    scope. A span's scope doubles as pid/tid, so host and storage
    render as separate lanes. *)

type event = {
  ph : char;
      (** 'B' begin, 'E' end, 'i' instant, 'C' counter, 's'/'f' flow *)
  ev_name : string;
  ts_us : float;
  pid : string;
  tid : string;
  flow : int option;  (** flow id binding an 's' event to its 'f' *)
  args : (string * string) list;
}

val events_of_spans : Span.t list -> event list
(** All events, stably sorted by timestamp (per-track DFS order kept). *)

val counter_events : ts_us:float -> Metrics.snapshot -> event list

val json_of_events : event list -> string

val to_json : ?metrics:Metrics.snapshot -> Span.t list -> string
(** Spans (plus an optional final counter snapshot) to a JSON string. *)

val is_valid_json : string -> bool
(** Minimal JSON well-formedness check (used by tests and smoke runs). *)
