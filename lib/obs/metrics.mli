(** Metrics registry: counters, gauges and log-bucketed histograms
    ({!Histogram}), each keyed by [(scope, name)].

    Snapshots are immutable and indexed: [value]/[diff] cost O(1) per
    entry. [diff] is sound for histograms — per-bucket subtraction —
    so interval min/max/percentiles describe the interval, not the
    cumulative run. *)

type value =
  | VCounter of int
  | VGauge of float
  | VHist of Histogram.view

type t
(** A registry of live cells. *)

val create : unit -> t

val default : t
(** The process-wide registry every instrumentation hook reports to. *)

val reset : t -> unit

val incr : ?by:int -> t -> scope:string -> string -> unit
val set : t -> scope:string -> string -> float -> unit
val observe : t -> scope:string -> string -> float -> unit

(** {2 Pre-resolved handles}

    [incr]/[observe] probe the registry hashtable on every call; hot
    reporters pre-resolve a handle once and update through it. The
    cell is created lazily on the first hit, so a handle that is never
    hit leaves the registry exactly as the direct calls would. Handles
    cache the resolved cell: do not reuse one across {!reset}. *)

type counter

val counter : t -> scope:string -> string -> counter
val counter_add : counter -> int -> unit

type series

val series : t -> scope:string -> string -> series
val series_observe : series -> float -> unit

type snapshot
(** Immutable view of a registry: sorted items plus a hash index. *)

val snapshot : t -> snapshot

val to_list : snapshot -> ((string * string) * value) list
(** Entries sorted by [(scope, name)]. *)

val size : snapshot -> int
val value : snapshot -> scope:string -> string -> value option
val counter_value : snapshot -> scope:string -> string -> int
val hist_count : snapshot -> scope:string -> string -> int
val hist_sum : snapshot -> scope:string -> string -> float

val hist_percentile : snapshot -> scope:string -> string -> float -> float
(** [hist_percentile s ~scope name q] with [q] in [0,1]; 0.0 when the
    entry is absent or not a histogram. *)

val diff : before:snapshot -> after:snapshot -> snapshot
(** Activity between two snapshots: counters subtract, histograms
    subtract bucket by bucket, gauges keep the later reading.
    Unchanged entries are dropped. *)

val pp_value : Format.formatter -> value -> unit
val pp : Format.formatter -> snapshot -> unit
