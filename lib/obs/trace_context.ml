(* Propagated trace context (Dapper-style): the identity a query's
   telemetry travels under. The host attaches it to every wire message
   it sends while the query runs, so storage-side spans and events can
   be joined to the host-side root into one causal tree.

   Identifiers are deterministic: they come from a process-local
   counter (mixed through the splitmix64 finalizer so ids are spread
   across the 64-bit space, not 1,2,3...) that [reset] rewinds — never
   from wall clocks or ambient randomness. Two runs of the same
   workload after a reset produce byte-identical contexts, which is
   what makes linked traces diffable across runs. *)

type t = { trace_id : int64; span_id : int; sampled : bool }

let next = ref 0L

let reset () = next := 0L

(* splitmix64 finalizer: bijective, so distinct counters give distinct,
   well-spread trace ids. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let fresh ~span_id ~sampled =
  next := Int64.add !next 1L;
  { trace_id = mix !next; span_id; sampled }

let to_hex t = Printf.sprintf "%016Lx" t.trace_id
let span_hex t = Printf.sprintf "%08x" t.span_id

(* -- wire form --------------------------------------------------------- *)

(* Fixed-width binary form: 8-byte trace id, 4-byte span id, 1 flag
   byte (big-endian), 13 bytes total. *)
let encoded_length = 13

let encode t =
  let b = Bytes.create encoded_length in
  Bytes.set_int64_be b 0 t.trace_id;
  Bytes.set_int32_be b 8 (Int32.of_int t.span_id);
  Bytes.set b 12 (if t.sampled then '\x01' else '\x00');
  Bytes.to_string b

let decode s off =
  if off + encoded_length > String.length s then None
  else begin
    let b = Bytes.of_string (String.sub s off encoded_length) in
    let flags = Char.code (Bytes.get b 12) in
    if flags land lnot 1 <> 0 then None
    else
      Some
        {
          trace_id = Bytes.get_int64_be b 0;
          span_id = Int32.to_int (Bytes.get_int32_be b 8) land 0x7fffffff;
          sampled = flags land 1 = 1;
        }
  end

let pp ppf t =
  Fmt.pf ppf "%s/%s%s" (to_hex t) (span_hex t)
    (if t.sampled then "" else " (unsampled)")
