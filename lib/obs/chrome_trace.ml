(* Chrome trace_event exporter: turns collected spans and metrics into
   the JSON Array Format understood by chrome://tracing and Perfetto.

   Spans become balanced "B"/"E" duration events (timestamps are the
   virtual-clock nanoseconds converted to microseconds, the unit the
   format specifies); instants become "i" events; counters become one
   trailing "C" event per scope. The span's scope doubles as the
   pid/tid so host and storage render as separate tracks. *)

type event = {
  ph : char;
      (** 'B' begin, 'E' end, 'i' instant, 'C' counter, 's'/'f' flow *)
  ev_name : string;
  ts_us : float;
  pid : string;
  tid : string;
  flow : int option;  (** flow id binding an 's' event to its 'f' *)
  args : (string * string) list;
}

let us_of_ns ns = ns /. 1e3

(* Depth-first emission: every span contributes B, its children's
   events (already in start order), then E — valid nesting per track
   by construction. *)
let rec events_of_span acc (s : Span.t) =
  match s.Span.kind with
  | Span.Instant ->
      {
        ph = 'i';
        ev_name = s.Span.name;
        ts_us = us_of_ns s.Span.begin_ns;
        pid = s.Span.scope;
        tid = s.Span.scope;
        flow = None;
        args = s.Span.attrs;
      }
      :: acc
  | Span.Flow_out fid ->
      {
        ph = 's';
        ev_name = s.Span.name;
        ts_us = us_of_ns s.Span.begin_ns;
        pid = s.Span.scope;
        tid = s.Span.scope;
        flow = Some fid;
        args = s.Span.attrs;
      }
      :: acc
  | Span.Flow_in fid ->
      {
        ph = 'f';
        ev_name = s.Span.name;
        ts_us = us_of_ns s.Span.begin_ns;
        pid = s.Span.scope;
        tid = s.Span.scope;
        flow = Some fid;
        args = s.Span.attrs;
      }
      :: acc
  | Span.Complete ->
      let b =
        {
          ph = 'B';
          ev_name = s.Span.name;
          ts_us = us_of_ns s.Span.begin_ns;
          pid = s.Span.scope;
          tid = s.Span.scope;
          flow = None;
          args = List.rev s.Span.attrs;
        }
      in
      let acc = List.fold_left events_of_span (b :: acc) (Span.children s) in
      let charges =
        List.map
          (fun (c, ns) -> ("charge_ns." ^ c, Printf.sprintf "%.1f" ns))
          (List.sort compare s.Span.charges)
      in
      {
        ph = 'E';
        ev_name = s.Span.name;
        ts_us = us_of_ns s.Span.end_ns;
        pid = s.Span.scope;
        tid = s.Span.scope;
        flow = None;
        args = charges;
      }
      :: acc

(* All events, stably sorted by timestamp: events of one track keep
   their DFS (correctly nested) order; ties across tracks are free. *)
let events_of_spans (spans : Span.t list) : event list =
  let dfs = List.rev (List.fold_left events_of_span [] spans) in
  List.stable_sort (fun a b -> compare a.ts_us b.ts_us) dfs

let counter_events ~ts_us (snap : Metrics.snapshot) : event list =
  List.filter_map
    (fun ((scope, name), v) ->
      match v with
      | Metrics.VCounter n ->
          Some
            {
              ph = 'C';
              ev_name = name;
              ts_us;
              pid = scope;
              tid = scope;
              flow = None;
              args = [ (name, string_of_int n) ];
            }
      | Metrics.VGauge _ | Metrics.VHist _ -> None)
    (Metrics.to_list snap)

(* -- JSON serialization ----------------------------------------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_of_event buf e =
  Buffer.add_string buf
    (Printf.sprintf
       "{\"name\":\"%s\",\"ph\":\"%c\",\"ts\":%.3f,\"pid\":\"%s\",\"tid\":\"%s\""
       (escape e.ev_name) e.ph e.ts_us (escape e.pid) (escape e.tid));
  (match e.flow with
  | Some fid ->
      (* flow events bind by category + id; "bp":"e" makes the arrow
         end attach to the enclosing slice rather than the next one *)
      Buffer.add_string buf (Printf.sprintf ",\"cat\":\"flow\",\"id\":%d" fid);
      if e.ph = 'f' then Buffer.add_string buf ",\"bp\":\"e\""
  | None -> ());
  (match e.args with
  | [] -> ()
  | args ->
      Buffer.add_string buf ",\"args\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          (* counter events want numeric args so the track plots *)
          match (e.ph, float_of_string_opt v) with
          | 'C', Some _ ->
              Buffer.add_string buf (Printf.sprintf "\"%s\":%s" (escape k) v)
          | _ ->
              Buffer.add_string buf
                (Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v)))
        args;
      Buffer.add_char buf '}');
  Buffer.add_char buf '}'

let json_of_events (events : event list) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '\n';
      json_of_event buf e)
    events;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

(* Spans (plus an optional final counter snapshot) to a JSON string. *)
let to_json ?metrics (spans : Span.t list) : string =
  let events = events_of_spans spans in
  let last_ts =
    List.fold_left (fun acc e -> Float.max acc e.ts_us) 0.0 events
  in
  let counters =
    match metrics with
    | None -> []
    | Some snap -> counter_events ~ts_us:last_ts snap
  in
  json_of_events (events @ counters)

(* -- minimal JSON well-formedness check ------------------------------- *)

(* A tiny recursive-descent validator (values, objects, arrays,
   strings with escapes, numbers, literals). Used by tests and the
   bench smoke run to prove the emitted trace parses. *)
let is_valid_json (s : string) : bool =
  let n = String.length s in
  let pos = ref 0 in
  let exception Bad in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = Some c then advance () else raise Bad
  in
  let literal lit =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then pos := !pos + l
    else raise Bad
  in
  let string_lit () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> raise Bad
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> raise Bad
              done
          | _ -> raise Bad);
          go ()
      | Some c when Char.code c < 0x20 -> raise Bad
      | Some _ ->
          advance ();
          go ()
    in
    go ()
  in
  let number () =
    let digits () =
      let any = ref false in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
            any := true;
            advance ();
            go ()
        | _ -> ()
      in
      go ();
      if not !any then raise Bad
    in
    if peek () = Some '-' then advance ();
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ())
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then advance ()
        else begin
          let rec members () =
            skip_ws ();
            string_lit ();
            skip_ws ();
            expect ':';
            value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> raise Bad
          in
          members ()
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then advance ()
        else begin
          let rec elements () =
            value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> raise Bad
          in
          elements ()
        end
    | Some '"' -> string_lit ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> raise Bad
  in
  match
    value ();
    skip_ws ()
  with
  | () -> !pos = n
  | exception Bad -> false
