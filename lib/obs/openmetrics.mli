(** OpenMetrics text renderer for a metrics snapshot: one family per
    metric name with the node/component as a ["scope"] label; counters
    as [_total], histograms as a cumulative [le] bucket series plus
    [_sum]/[_count]; terminated by [# EOF]. Deterministic order. *)

val sanitize : string -> string
(** Metric-name charset: anything outside [[a-zA-Z0-9_:]] becomes [_]. *)

val render : ?prefix:string -> Metrics.snapshot -> string
(** [prefix] defaults to ["ironsafe_"]. *)
