(** Length-prefixed binary framing. *)

val put_u32 : Buffer.t -> int -> unit
val get_u32 : string -> int -> int * int
val put_string : Buffer.t -> string -> unit
val get_string : string -> int -> string * int

val encode_strings : string list -> string
val decode_strings : string -> string list

(** {2 Trace-context envelope}

    Optional prefix carrying the active {!Ironsafe_obs.Trace_context}
    inside a protocol message, so the receiving node can stamp its
    telemetry with the sender's trace id. *)

val trace_envelope_length : int
(** Wire overhead of a wrapped message, in bytes. *)

val wrap_trace : Ironsafe_obs.Trace_context.t -> string -> string

val unwrap_trace : string -> Ironsafe_obs.Trace_context.t option * string
(** Strip the envelope if present; a message without one (or with an
    undecodable context) passes through untouched. *)
