(** Length-prefixed binary framing. *)

val put_u32 : Buffer.t -> int -> unit
val get_u32 : string -> int -> int * int
val put_string : Buffer.t -> string -> unit
val get_string : string -> int -> string * int

val encode_strings : string list -> string
val decode_strings : string -> string list
