(* Length-prefixed binary framing for records and protocol messages.
   The sender serializes rows, the receiver deserializes them into its
   in-memory table (§5, networking layer). *)

let put_u32 buf v =
  if v < 0 || v > 0xffffffff then invalid_arg "Wire.put_u32: out of range";
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (v land 0xff))

let get_u32 s off =
  if off + 4 > String.length s then failwith "Wire.get_u32: truncated";
  ( (Char.code s.[off] lsl 24)
    lor (Char.code s.[off + 1] lsl 16)
    lor (Char.code s.[off + 2] lsl 8)
    lor Char.code s.[off + 3],
    off + 4 )

let put_string buf s =
  put_u32 buf (String.length s);
  Buffer.add_string buf s

let get_string s off =
  let len, off = get_u32 s off in
  if off + len > String.length s then failwith "Wire.get_string: truncated";
  (String.sub s off len, off + len)

let encode_strings items =
  let buf = Buffer.create 256 in
  put_u32 buf (List.length items);
  List.iter (put_string buf) items;
  Buffer.contents buf

let decode_strings s =
  let count, off = get_u32 s 0 in
  let rec go acc off n =
    if n = 0 then List.rev acc
    else begin
      let item, off = get_string s off in
      go (item :: acc) off (n - 1)
    end
  in
  go [] off count
