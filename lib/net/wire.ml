(* Length-prefixed binary framing for records and protocol messages.
   The sender serializes rows, the receiver deserializes them into its
   in-memory table (§5, networking layer). *)

let put_u32 buf v =
  if v < 0 || v > 0xffffffff then invalid_arg "Wire.put_u32: out of range";
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (v land 0xff))

let get_u32 s off =
  if off + 4 > String.length s then failwith "Wire.get_u32: truncated";
  ( (Char.code s.[off] lsl 24)
    lor (Char.code s.[off + 1] lsl 16)
    lor (Char.code s.[off + 2] lsl 8)
    lor Char.code s.[off + 3],
    off + 4 )

let put_string buf s =
  put_u32 buf (String.length s);
  Buffer.add_string buf s

let get_string s off =
  let len, off = get_u32 s off in
  if off + len > String.length s then failwith "Wire.get_string: truncated";
  (String.sub s off len, off + len)

let encode_strings items =
  let buf = Buffer.create 256 in
  put_u32 buf (List.length items);
  List.iter (put_string buf) items;
  Buffer.contents buf

let decode_strings s =
  let count, off = get_u32 s 0 in
  let rec go acc off n =
    if n = 0 then List.rev acc
    else begin
      let item, off = get_string s off in
      go (item :: acc) off (n - 1)
    end
  in
  go [] off count

(* -- trace-context envelope -------------------------------------------- *)

(* While a traced query is open, the host prefixes every protocol
   message with the active trace context (magic + fixed-width context),
   so the storage side can stamp its own telemetry with the same trace
   id. The envelope rides *inside* the encrypted record body; the
   receiver strips it transparently. A message without the magic (or
   with an undecodable context) passes through untouched, so mixed
   traced/untraced traffic is fine. *)

module Trace_context = Ironsafe_obs.Trace_context

let trace_magic = "\xc5\x1d"

let trace_envelope_length = String.length trace_magic + Trace_context.encoded_length

let wrap_trace ctx payload =
  let buf = Buffer.create (trace_envelope_length + String.length payload) in
  Buffer.add_string buf trace_magic;
  Buffer.add_string buf (Trace_context.encode ctx);
  Buffer.add_string buf payload;
  Buffer.contents buf

let unwrap_trace s =
  let mlen = String.length trace_magic in
  if
    String.length s >= trace_envelope_length
    && String.sub s 0 mlen = trace_magic
  then
    match Trace_context.decode s mlen with
    | Some ctx ->
        ( Some ctx,
          String.sub s trace_envelope_length
            (String.length s - trace_envelope_length) )
    | None -> (None, s)
  else (None, s)
