(** Simulated TLS channel between two nodes: real record crypto for the
    control plane, size-accounted transfers for bulk data, and full
    time-model charging (handshake, per-byte record cost, latency and
    bandwidth with clock synchronization).

    All data-path operations return a {!result}: a closed channel
    yields [Error Closed] rather than an exception, and anti-replay
    distinguishes a genuine replay ([Replayed]) from a record that fell
    behind the sliding window ([Stale]) — legitimate reordering within
    the window is accepted. *)

type t

type stats = {
  mutable messages : int;
  mutable bytes : int;
  mutable handshakes : int;
}

type error =
  | Closed  (** operation on a closed channel *)
  | Auth_failed  (** record MAC verification failed *)
  | Replayed of int  (** sequence number already delivered *)
  | Stale of int  (** sequence number behind the replay window *)
  | Dropped  (** record lost in flight (fault injection) *)
  | Handshake_failed  (** session establishment exhausted its retries *)

val error_message : error -> string
val pp_error : Format.formatter -> error -> unit

val window : int
(** Width of the anti-replay sliding window (accepted-seq history). *)

type record

val record_seq : record -> int

val establish :
  ?faults:Ironsafe_fault.Fault.t ->
  a:Ironsafe_sim.Node.t ->
  b:Ironsafe_sim.Node.t ->
  session_key:string ->
  drbg:Ironsafe_crypto.Drbg.t ->
  unit ->
  t
(** Performs (and charges) the TLS handshake; per-direction keys are
    derived from [session_key] via HKDF. Never fails — use {!connect}
    for fault-aware establishment. *)

val connect :
  ?faults:Ironsafe_fault.Fault.t ->
  ?max_attempts:int ->
  a:Ironsafe_sim.Node.t ->
  b:Ironsafe_sim.Node.t ->
  session_key:string ->
  drbg:Ironsafe_crypto.Drbg.t ->
  unit ->
  (t, error) result
(** Fault-aware establishment: retries a failed handshake up to
    [max_attempts] times (default 5) with exponential backoff charged
    to both nodes' virtual clocks, then gives up with
    [Error Handshake_failed]. *)

val send :
  t -> from:Ironsafe_sim.Node.t -> string -> (record, error) result
(** Encrypt-and-MAC a payload and charge its transfer. Under a fault
    plan the returned record may have been corrupted in flight (the
    receiver detects this as [Auth_failed]). *)

val recv : t -> record -> (string, error) result
(** Verify and decrypt. Fails with [Auth_failed] on any in-flight
    modification, [Replayed] on a re-delivered sequence number, [Stale]
    on one behind the window, and [Dropped] when a fault plan loses the
    record; in-window reordering succeeds. *)

val roundtrip :
  t -> from:Ironsafe_sim.Node.t -> string -> (string, error) result

val roundtrip_reliable :
  ?max_attempts:int ->
  t ->
  from:Ironsafe_sim.Node.t ->
  string ->
  (string, error) result
(** [roundtrip] that resends on [Dropped]/[Auth_failed] with bounded
    exponential backoff (charged to both clocks). Replay and staleness
    are never retried — they indicate an active adversary. *)

val transfer_accounted :
  t -> from:Ironsafe_sim.Node.t -> bytes:int -> (unit, error) result
(** Bulk path: charge crypto + transfer time for [bytes] without
    running byte-level crypto. *)

val stats : t -> stats

val set_faults : t -> Ironsafe_fault.Fault.t -> unit
(** Attach (or detach, with [Fault.none]) a fault plan. *)

val close : t -> unit
(** Idempotent; subsequent operations return [Error Closed]. *)

val is_closed : t -> bool

val tamper_record : record -> record
(** Adversarial in-flight modification (for tests). *)
