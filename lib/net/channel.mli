(** Simulated TLS channel between two nodes: real record crypto for the
    control plane, size-accounted transfers for bulk data, and full
    time-model charging (handshake, per-byte record cost, latency and
    bandwidth with clock synchronization). *)

type t

type stats = {
  mutable messages : int;
  mutable bytes : int;
  mutable handshakes : int;
}

type record

val establish :
  a:Ironsafe_sim.Node.t ->
  b:Ironsafe_sim.Node.t ->
  session_key:string ->
  drbg:Ironsafe_crypto.Drbg.t ->
  t
(** Performs (and charges) the TLS handshake; per-direction keys are
    derived from [session_key] via HKDF. *)

val send : t -> from:Ironsafe_sim.Node.t -> string -> record
(** Encrypt-and-MAC a payload and charge its transfer. *)

val recv : t -> record -> (string, string) result
(** Verify and decrypt; fails on any in-flight modification and on
    replayed or out-of-order records (monotonic sequence check). *)

val roundtrip : t -> from:Ironsafe_sim.Node.t -> string -> (string, string) result

val transfer_accounted : t -> from:Ironsafe_sim.Node.t -> bytes:int -> unit
(** Bulk path: charge crypto + transfer time for [bytes] without
    running byte-level crypto. *)

val stats : t -> stats
val close : t -> unit

val tamper_record : record -> record
(** Adversarial in-flight modification (for tests). *)
