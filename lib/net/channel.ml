(* Secure channel between two simulated nodes: TLS-over-TCP per §5
   (one session per client request, fresh session key each time).

   Two data paths:
   - [send]/[recv]: real AES-CTR + HMAC record protection, used by the
     control plane (queries, policies, attestation messages) and by
     tests that check tampering is detected;
   - [transfer_accounted]: bulk result shipping where only sizes are
     accounted (the time model is identical; re-encrypting megabytes of
     benchmark rows with the pure-OCaml AES would only burn wall-clock
     without changing any measured quantity).

   Both paths charge: record crypto on each end ("network" category),
   serialization latency, and the bandwidth/latency transfer with the
   two clocks synchronized, which models the blocking request/response
   rounds of the host<->storage protocol. *)

module C = Ironsafe_crypto
module Sim = Ironsafe_sim
module Obs = Ironsafe_obs.Obs

type stats = {
  mutable messages : int;
  mutable bytes : int;
  mutable handshakes : int;
}

type t = {
  key_enc : C.Aes.key;
  key_mac : string;
  a : Sim.Node.t;
  b : Sim.Node.t;
  params : Sim.Params.t;
  drbg : C.Drbg.t;
  stats : stats;
  mutable seq : int;
  mutable next_recv : int; (* anti-replay: lowest acceptable sequence *)
  mutable closed : bool;
}

let category = "network"

let establish ~a ~b ~session_key ~drbg =
  let params = Sim.Node.params a in
  Obs.count ~scope:"net" "handshakes";
  (* handshake: one round trip plus asymmetric work on both ends *)
  Sim.Node.with_span a ~name:"net.handshake" (fun () ->
      Sim.Node.fixed a ~category params.Sim.Params.tls_handshake_ns;
      Sim.Node.fixed b ~category params.Sim.Params.tls_handshake_ns;
      Sim.Clock.sync (Sim.Node.clock a) (Sim.Node.clock b)
        (2.0 *. params.Sim.Params.net_latency_ns));
  {
    key_enc =
      C.Aes.expand_key (C.Hkdf.derive ~ikm:session_key ~info:"tls-enc" 16);
    key_mac = C.Hkdf.derive ~ikm:session_key ~info:"tls-mac" 32;
    a;
    b;
    params;
    drbg;
    stats = { messages = 0; bytes = 0; handshakes = 1 };
    seq = 0;
    next_recv = 0;
    closed = false;
  }

let stats t = t.stats

let peer t node =
  if node == t.a then t.b
  else if node == t.b then t.a
  else invalid_arg "Channel: node is not an endpoint"

let check_open t = if t.closed then invalid_arg "Channel: closed"

let charge_transfer t ~src ~bytes =
  let dst = peer t src in
  let p = t.params in
  let crypto_ns = float_of_int bytes *. p.Sim.Params.tls_record_ns_per_byte in
  Sim.Node.fixed src ~category crypto_ns;
  Sim.Node.fixed dst ~category crypto_ns;
  let transfer_ns =
    p.Sim.Params.net_latency_ns
    +. (float_of_int bytes /. p.Sim.Params.net_bandwidth_bytes_per_ns)
  in
  Sim.Clock.sync (Sim.Node.clock src) (Sim.Node.clock dst) transfer_ns;
  t.stats.messages <- t.stats.messages + 1;
  t.stats.bytes <- t.stats.bytes + bytes;
  Obs.count ~scope:"net" "messages";
  Obs.count ~scope:"net" ~n:bytes "bytes_shipped"

type record = { seq : int; nonce : string; body : string; tag : string }

(* Real record protection: AES-CTR + HMAC over seq|nonce|ciphertext. *)
let send t ~from payload =
  check_open t;
  let nonce = C.Drbg.generate t.drbg 16 in
  let body = C.Modes.ctr_transform ~key:t.key_enc ~nonce payload in
  let seq = t.seq in
  t.seq <- t.seq + 1;
  let tag =
    C.Hmac.mac ~key:t.key_mac (string_of_int seq ^ nonce ^ body)
  in
  charge_transfer t ~src:from ~bytes:(String.length body + 16 + 32 + 4);
  { seq; nonce; body; tag }

let recv t record =
  check_open t;
  if
    not
      (C.Hmac.verify ~key:t.key_mac ~mac:record.tag
         (string_of_int record.seq ^ record.nonce ^ record.body))
  then Error "channel: record authentication failed"
  else if record.seq < t.next_recv then
    Error "channel: replayed or reordered record rejected"
  else begin
    t.next_recv <- record.seq + 1;
    Ok (C.Modes.ctr_transform ~key:t.key_enc ~nonce:record.nonce record.body)
  end

let roundtrip t ~from payload =
  let r = send t ~from payload in
  recv t r

(* Bulk path: account sizes and time without byte-level crypto. *)
let transfer_accounted t ~from ~bytes =
  check_open t;
  charge_transfer t ~src:from ~bytes

let close t = t.closed <- true

(* Adversarial helper: flip a byte of a record in flight. *)
let tamper_record record =
  if String.length record.body = 0 then record
  else begin
    let body = Bytes.of_string record.body in
    Bytes.set body 0 (Char.chr (Char.code (Bytes.get body 0) lxor 0x01));
    { record with body = Bytes.to_string body }
  end
