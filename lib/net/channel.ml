(* Secure channel between two simulated nodes: TLS-over-TCP per §5
   (one session per client request, fresh session key each time).

   Two data paths:
   - [send]/[recv]: real AES-CTR + HMAC record protection, used by the
     control plane (queries, policies, attestation messages) and by
     tests that check tampering is detected;
   - [transfer_accounted]: bulk result shipping where only sizes are
     accounted (the time model is identical; re-encrypting megabytes of
     benchmark rows with the pure-OCaml AES would only burn wall-clock
     without changing any measured quantity).

   Both paths charge: record crypto on each end ("network" category),
   serialization latency, and the bandwidth/latency transfer with the
   two clocks synchronized, which models the blocking request/response
   rounds of the host<->storage protocol.

   Anti-replay: a sliding window of the last [window] accepted
   sequence numbers. A record whose sequence was already delivered is a
   replay; one that fell behind the window is stale; anything else —
   including legitimate in-window reordering — is accepted. Replay and
   reorder are distinct conditions and get distinct errors. *)

module C = Ironsafe_crypto
module Sim = Ironsafe_sim
module Obs = Ironsafe_obs.Obs
module Fault = Ironsafe_fault.Fault

type stats = {
  mutable messages : int;
  mutable bytes : int;
  mutable handshakes : int;
}

type error =
  | Closed
  | Auth_failed
  | Replayed of int
  | Stale of int
  | Dropped
  | Handshake_failed

let error_message = function
  | Closed -> "channel: closed"
  | Auth_failed -> "channel: record authentication failed"
  | Replayed seq -> Printf.sprintf "channel: replayed record (seq %d)" seq
  | Stale seq ->
      Printf.sprintf "channel: record fell behind replay window (seq %d)" seq
  | Dropped -> "channel: record lost in flight"
  | Handshake_failed -> "channel: session establishment failed"

let pp_error ppf e = Format.pp_print_string ppf (error_message e)

let window = 64

type t = {
  key_enc : C.Aes.key;
  key_mac : string;
  a : Sim.Node.t;
  b : Sim.Node.t;
  params : Sim.Params.t;
  drbg : C.Drbg.t;
  stats : stats;
  mutable seq : int;
  mutable highest : int; (* highest delivered sequence, -1 before any *)
  seen : (int, unit) Hashtbl.t; (* delivered seqs within the window *)
  mutable faults : Fault.t;
  mutable closed : bool;
}

let category = "network"

let charge_handshake ~a ~b params =
  Obs.count ~scope:"net" "handshakes";
  (* handshake: one round trip plus asymmetric work on both ends *)
  Sim.Node.with_span a ~name:"net.handshake" (fun () ->
      Sim.Node.fixed a ~category params.Sim.Params.tls_handshake_ns;
      Sim.Node.fixed b ~category params.Sim.Params.tls_handshake_ns;
      Sim.Clock.sync (Sim.Node.clock a) (Sim.Node.clock b)
        (2.0 *. params.Sim.Params.net_latency_ns))

let establish ?(faults = Fault.none) ~a ~b ~session_key ~drbg () =
  let params = Sim.Node.params a in
  charge_handshake ~a ~b params;
  {
    key_enc =
      C.Aes.expand_key (C.Hkdf.derive ~ikm:session_key ~info:"tls-enc" 16);
    key_mac = C.Hkdf.derive ~ikm:session_key ~info:"tls-mac" 32;
    a;
    b;
    params;
    drbg;
    stats = { messages = 0; bytes = 0; handshakes = 1 };
    seq = 0;
    highest = -1;
    seen = Hashtbl.create 64;
    faults;
    closed = false;
  }

(* Fault-aware establishment: a fired [Channel_handshake] aborts the
   attempt; re-establishment retries with exponential backoff charged
   to both nodes before giving up. *)
let connect ?(faults = Fault.none) ?(max_attempts = 5) ~a ~b ~session_key ~drbg
    () =
  let params = Sim.Node.params a in
  let mark = Fault.incident_count faults in
  let rec attempt n =
    if Fault.enabled faults && Fault.fire faults Fault.Channel_handshake then begin
      (* the failed handshake still burned a round trip *)
      charge_handshake ~a ~b params;
      if n + 1 >= max_attempts then begin
        Fault.note_rejected faults;
        Error Handshake_failed
      end
      else begin
        Fault.note_retry faults ~action:"channel.handshake";
        let wait =
          Fault.backoff_ns ~base_ns:params.Sim.Params.net_latency_ns
            ~attempt:n
        in
        Sim.Node.fixed a ~category:"recovery" wait;
        Sim.Node.fixed b ~category:"recovery" wait;
        attempt (n + 1)
      end
    end
    else begin
      let ch = establish ~faults ~a ~b ~session_key ~drbg () in
      ch.stats.handshakes <- n + 1;
      if n > 0 then Fault.note_recovered_since faults mark;
      Ok ch
    end
  in
  attempt 0

let stats t = t.stats
let set_faults t faults = t.faults <- faults

let peer t node =
  if node == t.a then t.b
  else if node == t.b then t.a
  else invalid_arg "Channel: node is not an endpoint"

let charge_transfer t ~src ~bytes =
  let dst = peer t src in
  let p = t.params in
  let crypto_ns = float_of_int bytes *. p.Sim.Params.tls_record_ns_per_byte in
  Sim.Node.fixed src ~category crypto_ns;
  Sim.Node.fixed dst ~category crypto_ns;
  let transfer_ns =
    p.Sim.Params.net_latency_ns
    +. (float_of_int bytes /. p.Sim.Params.net_bandwidth_bytes_per_ns)
  in
  Sim.Clock.sync (Sim.Node.clock src) (Sim.Node.clock dst) transfer_ns;
  t.stats.messages <- t.stats.messages + 1;
  t.stats.bytes <- t.stats.bytes + bytes;
  Obs.count ~scope:"net" "messages";
  Obs.count ~scope:"net" ~n:bytes "bytes_shipped"

type record = { seq : int; nonce : string; body : string; tag : string }

let record_seq r = r.seq

(* Adversarial helper: flip a byte of a record in flight. *)
let tamper_record record =
  if String.length record.body = 0 then record
  else begin
    let body = Bytes.of_string record.body in
    Bytes.set body 0 (Char.chr (Char.code (Bytes.get body 0) lxor 0x01));
    { record with body = Bytes.to_string body }
  end

(* Real record protection: AES-CTR + HMAC over seq|nonce|ciphertext.

   While a traced query is open, the payload is wrapped in a
   trace-context envelope *before* encryption, so the receiving node
   can stamp its telemetry with the sender's trace id. The virtual-time
   and byte accounting are computed from the bare payload: turning
   tracing on must never change any measured quantity. The envelope
   overhead is tallied separately as net/trace_ctx_bytes. *)
let send t ~from payload =
  if t.closed then Error Closed
  else begin
    let wire_payload =
      match Obs.current_trace () with
      | Some ctx ->
          Obs.count ~scope:"net" ~n:Wire.trace_envelope_length
            "trace_ctx_bytes";
          Wire.wrap_trace ctx payload
      | None -> payload
    in
    let nonce = C.Drbg.generate t.drbg 16 in
    let body = C.Modes.ctr_transform ~key:t.key_enc ~nonce wire_payload in
    let seq = t.seq in
    t.seq <- t.seq + 1;
    let tag = C.Hmac.mac ~key:t.key_mac (string_of_int seq ^ nonce ^ body) in
    charge_transfer t ~src:from ~bytes:(String.length payload + 16 + 32 + 4);
    let record = { seq; nonce; body; tag } in
    (* in-flight bit-flip: the record arrives but fails authentication *)
    if Fault.enabled t.faults && Fault.fire t.faults Fault.Channel_corrupt
    then Ok (tamper_record record)
    else Ok record
  end

(* Sliding-window anti-replay: [Replayed] for a seq already delivered,
   [Stale] for one behind the window, acceptance (with window update)
   otherwise — so in-window reordering is NOT an error. *)
let check_seq t seq =
  if seq <= t.highest - window then Error (Stale seq)
  else if Hashtbl.mem t.seen seq then Error (Replayed seq)
  else begin
    Hashtbl.replace t.seen seq ();
    if seq > t.highest then begin
      t.highest <- seq;
      (* prune entries that just fell behind the window *)
      Hashtbl.iter
        (fun s () -> if s <= t.highest - window then Hashtbl.remove t.seen s)
        (Hashtbl.copy t.seen)
    end;
    Ok ()
  end

let recv t record =
  if t.closed then Error Closed
  else if Fault.enabled t.faults && Fault.fire t.faults Fault.Channel_drop
  then Error Dropped
  else if
    not
      (C.Hmac.verify ~key:t.key_mac ~mac:record.tag
         (string_of_int record.seq ^ record.nonce ^ record.body))
  then Error Auth_failed
  else
    match check_seq t record.seq with
    | Error _ as e -> e
    | Ok () ->
        let plain =
          C.Modes.ctr_transform ~key:t.key_enc ~nonce:record.nonce record.body
        in
        let ctx, payload = Wire.unwrap_trace plain in
        (match ctx with
        | Some ctx ->
            Obs.count ~scope:"net" "trace_ctx_msgs";
            Ironsafe_obs.Event_log.emit ~trace:ctx ~scope:"net"
              ~kind:"net.recv"
              [ ("seq", I record.seq); ("bytes", I (String.length payload)) ]
        | None -> ());
        Ok payload

let roundtrip t ~from payload =
  match send t ~from payload with
  | Error _ as e -> e
  | Ok r -> recv t r

(* Reliable delivery on a lossy channel: resend on drop or in-flight
   corruption, with exponential backoff charged to both endpoints.
   Replay/stale rejections are NOT retried — resending would only
   reproduce them, and they signal an active adversary, not loss. *)
let roundtrip_reliable ?(max_attempts = 5) t ~from payload =
  let mark = Fault.incident_count t.faults in
  let rec attempt n =
    match roundtrip t ~from payload with
    | Ok plain ->
        if n > 0 then Fault.note_recovered_since t.faults mark;
        Ok plain
    | Error (Dropped | Auth_failed) when n + 1 < max_attempts ->
        Fault.note_retry t.faults ~action:"channel.resend";
        Obs.count ~scope:"net" "resends";
        let wait =
          Fault.backoff_ns ~base_ns:t.params.Sim.Params.net_latency_ns
            ~attempt:n
        in
        Sim.Node.fixed t.a ~category:"recovery" wait;
        Sim.Node.fixed t.b ~category:"recovery" wait;
        attempt (n + 1)
    | Error _ as e ->
        Fault.note_rejected t.faults;
        e
  in
  attempt 0

(* Bulk path: account sizes and time without byte-level crypto. *)
let transfer_accounted t ~from ~bytes =
  if t.closed then Error Closed
  else begin
    charge_transfer t ~src:from ~bytes;
    Ok ()
  end

(* Idempotent: closing a closed channel is a no-op. *)
let close t = t.closed <- true
let is_closed t = t.closed
