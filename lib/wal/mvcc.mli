(** Multi-version overlay for snapshot reads.

    Committed page versions are kept in an in-memory overlay map keyed
    by page, newest first, each stamped with its commit LSN. A snapshot
    pins a commit LSN; a read at LSN [s] resolves to the newest overlay
    version with [lsn <= s], falling back to the base store when the
    base itself is old enough ([base_lsn page <= s]). Checkpoints that
    overwrite base pages first {!preserve_base} the old content for any
    older active snapshot, then advance [base_lsn]. *)

type t

val create : unit -> t

val install : t -> lsn:int -> (int * string) list -> unit
(** Publish the page images of one committed transaction at its commit
    LSN. LSNs must be installed in increasing order. *)

val latest : t -> int
(** Highest installed commit LSN (0 before any commit). *)

val read : t -> at:int -> int -> string option
(** Newest overlay version of the page visible at snapshot [at], or
    [None] when the base store is authoritative. *)

val base_lsn : t -> int -> int
val set_base_lsn : t -> int -> int -> unit

val preserve_base : t -> page:int -> lsn:int -> data:string -> unit
(** Keep the current base content of [page] (stamped with its base
    LSN) in the overlay before a checkpoint overwrites it, so older
    pinned snapshots keep resolving. *)

val snapshot : t -> int
(** Pin the current {!latest} LSN; the returned LSN stays readable
    until {!release}. *)

val release : t -> int -> unit
(** Drop one pin on the snapshot LSN and garbage-collect overlay
    versions no longer visible to any active snapshot. *)

val active_snapshots : t -> int list
(** Distinct pinned LSNs, ascending. *)

val min_active : t -> int option

val newest_versions : t -> (int * (int * string)) list
(** [(page, (lsn, data))] of the newest committed version per page —
    what a checkpoint writes back to base. Ascending page order. *)

val gc : t -> unit
(** Drop overlay versions that no active snapshot (nor latest-read)
    can still observe. *)

val rollback_above : t -> lsn:int -> unit
(** Drop every overlay version newer than [lsn] and clamp {!latest} to
    it — the in-memory equivalent of a crash before the ack, used when
    a WAL flush failure means those commits can never become durable.
    Base stamps and pins are untouched (a pin above [lsn] simply
    resolves to the rolled-back-to state). *)

val version_count : t -> int
val clear : t -> unit
