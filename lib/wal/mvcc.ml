(* Multi-version page overlay (see mvcc.mli).

   Versions per page are kept newest-first; visibility is "newest
   version with lsn <= snapshot". The base store is a version too: its
   per-page stamp lives in [base_lsns] (0 = populated before any
   logged commit) and checkpoints advance it after preserving the old
   content for older pinned snapshots. *)

type t = {
  versions : (int, (int * string) list) Hashtbl.t;  (* page -> newest first *)
  base_lsns : (int, int) Hashtbl.t;  (* page -> lsn stamped on base *)
  pins : (int, int) Hashtbl.t;  (* snapshot lsn -> pin count *)
  mutable latest : int;
}

let create () =
  {
    versions = Hashtbl.create 64;
    base_lsns = Hashtbl.create 64;
    pins = Hashtbl.create 8;
    latest = 0;
  }

let latest t = t.latest

let base_lsn t page = Option.value ~default:0 (Hashtbl.find_opt t.base_lsns page)
let set_base_lsn t page lsn = Hashtbl.replace t.base_lsns page lsn

let push t page (lsn, data) =
  let vs = Option.value ~default:[] (Hashtbl.find_opt t.versions page) in
  (* keep the list strictly newest-first; equal-lsn replaces *)
  let vs = List.filter (fun (l, _) -> l <> lsn) vs in
  let rec insert = function
    | (l, _) :: _ as rest when l < lsn -> (lsn, data) :: rest
    | v :: rest -> v :: insert rest
    | [] -> [ (lsn, data) ]
  in
  Hashtbl.replace t.versions page (insert vs)

let install t ~lsn pages =
  if lsn < t.latest then invalid_arg "Mvcc.install: non-monotonic commit lsn";
  List.iter (fun (page, data) -> push t page (lsn, data)) pages;
  t.latest <- max t.latest lsn

let read t ~at page =
  match Hashtbl.find_opt t.versions page with
  | None -> None
  | Some vs -> (
      match List.find_opt (fun (l, _) -> l <= at) vs with
      | Some (l, data) ->
          (* the base is a version too: a checkpoint may have written
             back (and stamped) a version newer than any overlay copy
             an older pin still keeps alive — then the base wins *)
          let b = base_lsn t page in
          if b > l && b <= at then None else Some data
      | None ->
          (* every overlay version is newer than the snapshot; the base
             must still carry old-enough content (preserve_base keeps
             this invariant across checkpoints) *)
          None)

let preserve_base t ~page ~lsn ~data =
  let vs = Option.value ~default:[] (Hashtbl.find_opt t.versions page) in
  if not (List.exists (fun (l, _) -> l = lsn) vs) then push t page (lsn, data)

let snapshot t =
  let s = t.latest in
  Hashtbl.replace t.pins s
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.pins s));
  s

let active_snapshots t =
  Hashtbl.fold (fun s n acc -> if n > 0 then s :: acc else acc) t.pins []
  |> List.sort compare

let min_active t = match active_snapshots t with [] -> None | s :: _ -> Some s

(* A version (page, lsn) is observable if some viewpoint v (an active
   snapshot or the latest horizon) satisfies: lsn <= v, no newer
   overlay version of the page is in (lsn, v], and the base copy does
   not already serve v at least as freshly (base_lsn in [lsn, v] —
   checkpoints stamp base with the version they wrote back, making the
   overlay copy redundant). Everything else is garbage. *)
let gc t =
  let views = t.latest :: active_snapshots t in
  Hashtbl.iter
    (fun page vs ->
      let b = base_lsn t page in
      let keep =
        List.filter
          (fun (l, _) ->
            List.exists
              (fun v ->
                l <= v
                && (not (List.exists (fun (l', _) -> l' > l && l' <= v) vs))
                && not (b >= l && b <= v))
              views)
          vs
      in
      if keep = [] then Hashtbl.remove t.versions page
      else Hashtbl.replace t.versions page keep)
    (Hashtbl.copy t.versions)

let release t s =
  (match Hashtbl.find_opt t.pins s with
  | Some n when n > 1 -> Hashtbl.replace t.pins s (n - 1)
  | Some _ -> Hashtbl.remove t.pins s
  | None -> invalid_arg "Mvcc.release: snapshot not pinned");
  gc t

let rollback_above t ~lsn =
  Hashtbl.iter
    (fun page vs ->
      let keep = List.filter (fun (l, _) -> l <= lsn) vs in
      if keep = [] then Hashtbl.remove t.versions page
      else Hashtbl.replace t.versions page keep)
    (Hashtbl.copy t.versions);
  if t.latest > lsn then t.latest <- lsn

let newest_versions t =
  Hashtbl.fold
    (fun page vs acc ->
      match vs with (l, d) :: _ -> (page, (l, d)) :: acc | [] -> acc)
    t.versions []
  |> List.sort compare

let version_count t =
  Hashtbl.fold (fun _ vs acc -> acc + List.length vs) t.versions 0

let clear t =
  Hashtbl.reset t.versions;
  Hashtbl.reset t.base_lsns;
  Hashtbl.reset t.pins;
  t.latest <- 0
