(* Encrypted, HMAC-chained write-ahead log (see wal.mli for the frame
   and anchor layout).

   Keys: both WAL keys derive from the hardware unique key via HKDF
   with WAL-specific info strings, so they are stable across reboots
   (recovery needs them with no state but the media) and disjoint from
   every page-store key. Record nonces are
   SHA256("ironsafe-wal-nonce" | boot_salt | epoch | lsn)[0..16) with a
   fresh 16-byte DRBG salt per boot: the (key, nonce) pair can never
   recur, even when a crash makes the same (epoch, lsn) slot be written
   twice across a reboot. The nonce travels in the frame and is bound
   by the chain MAC, so decryption at recovery needs no salt. *)

module C = Ironsafe_crypto
module S = Ironsafe_storage
module Obs = Ironsafe_obs.Obs
module Ev = Ironsafe_obs.Event_log
module Fault = Ironsafe_fault.Fault

let obs_scope = "wal"
let anchor_slot = 2
let frame_header = 4 + 8 + 16 + 32

(* largest well-formed ciphertext: a Page_write of one device page *)
let max_ciphertext = 17 + S.Block_device.page_size + 64

type error =
  | Truncated of { durable_lsn : int; last_valid_lsn : int }
  | Tampered_record of int
  | Anchor_mismatch
  | Anchor_missing
  | Corrupt_record of int * string
  | Log_full
  | Rpmb_error of S.Rpmb.error

let pp_error ppf = function
  | Truncated { durable_lsn; last_valid_lsn } ->
      Fmt.pf ppf
        "log truncated: anchored horizon %d but chain ends at %d (rollback?)"
        durable_lsn last_valid_lsn
  | Tampered_record lsn -> Fmt.pf ppf "record %d failed chain-MAC check" lsn
  | Anchor_mismatch ->
      Fmt.string ppf "chain MAC does not reproduce the RPMB anchor (replay/fork?)"
  | Anchor_missing -> Fmt.string ppf "WAL anchor not initialized"
  | Corrupt_record (lsn, msg) -> Fmt.pf ppf "record %d corrupt: %s" lsn msg
  | Log_full -> Fmt.string ppf "log device full"
  | Rpmb_error e -> Fmt.pf ppf "RPMB: %a" S.Rpmb.pp_error e

exception Crashed of Fault.site

type stats = {
  mutable appends : int;
  mutable flushes : int;
  mutable records_flushed : int;
  mutable anchors : int;
  mutable bytes_logged : int;
  mutable recovered_records : int;
  mutable discarded_records : int;
}

let fresh_stats () =
  {
    appends = 0;
    flushes = 0;
    records_flushed = 0;
    anchors = 0;
    bytes_logged = 0;
    recovered_records = 0;
    discarded_records = 0;
  }

type t = {
  device : S.Block_device.t;
  rpmb : S.Rpmb.t;
  rpmb_key : string;
  enc_key : C.Aes.key;
  mac_prekey : C.Hmac.prekey;
  boot_salt : string;
  mutable epoch : int;
  mutable trunc_lsn : int;  (* horizon of the last truncation *)
  mutable durable_lsn : int;  (* highest anchored lsn *)
  mutable next_lsn : int;
  mutable chain_mac : string;  (* MAC of the last appended record *)
  mutable persisted : int;  (* log bytes on device *)
  mutable persisted_lsn : int;  (* highest lsn whose frame is on device *)
  mutable persisted_chain : string;  (* chain MAC as of [persisted_lsn] *)
  pending : (int * string) Queue.t;  (* (lsn, frame) not yet on device *)
  st : stats;
  mutable faults : Fault.t;
  mutable clock : unit -> float;
}

let durable_lsn t = t.durable_lsn
let persisted_lsn t = t.persisted_lsn
let next_lsn t = t.next_lsn
let epoch t = t.epoch
let pending_records t = Queue.length t.pending
let persisted_bytes t = t.persisted
let stats t = t.st
let set_faults t plan = t.faults <- plan
let set_clock t clock = t.clock <- clock

(* -- integer (de)serialization over the clear frame header ------------ *)

let put_u64 b off v =
  for i = 0 to 7 do
    Bytes.set b (off + i) (Char.chr ((v lsr ((7 - i) * 8)) land 0xff))
  done

let put_u32 b off v =
  for i = 0 to 3 do
    Bytes.set b (off + i) (Char.chr ((v lsr ((3 - i) * 8)) land 0xff))
  done

let get_u64 s off =
  let v = ref 0 in
  for i = 0 to 7 do
    v := (!v lsl 8) lor Char.code s.[off + i]
  done;
  !v

let get_u32 s off =
  let v = ref 0 in
  for i = 0 to 3 do
    v := (!v lsl 8) lor Char.code s.[off + i]
  done;
  !v

(* -- keys, nonces, chain ---------------------------------------------- *)

let derive_keys ~hardware_key =
  let enc =
    C.Aes.expand_key
      (C.Hkdf.derive ~ikm:hardware_key ~info:"ironsafe-wal-enc" 16)
  in
  let mac = C.Hkdf.derive ~ikm:hardware_key ~info:"ironsafe-wal-mac" 32 in
  (enc, C.Hmac.precompute ~key:mac)

let nonce_for t lsn =
  String.sub
    (C.Sha256.digest_list
       [
         "ironsafe-wal-nonce";
         t.boot_salt;
         Printf.sprintf "%016x|%016x" t.epoch lsn;
       ])
    0 16

(* genesis MAC of the chain after a truncation at [trunc_lsn] during
   [epoch]: both are anchored, so recovery reseeds identically *)
let genesis_mac mac_prekey ~trunc_lsn ~epoch =
  C.Hmac.mac_pre_list mac_prekey
    [ "wal-genesis"; Printf.sprintf "%016x|%016x" trunc_lsn epoch ]

let chain_next t ~lsn ~nonce ~ciphertext =
  let lsn8 = Bytes.create 8 in
  put_u64 lsn8 0 lsn;
  C.Hmac.mac_pre_list t.mac_prekey
    [ t.chain_mac; Bytes.to_string lsn8; nonce; ciphertext ]

(* -- anchor (RPMB slot 2) --------------------------------------------- *)

(* payload: epoch(8) | durable_lsn(8) | trunc_lsn(8) | chain_mac(32) *)
let anchor_payload ~epoch ~durable_lsn ~trunc_lsn ~chain_mac =
  let b = Bytes.create 56 in
  put_u64 b 0 epoch;
  put_u64 b 8 durable_lsn;
  put_u64 b 16 trunc_lsn;
  Bytes.blit_string chain_mac 0 b 24 32;
  Bytes.to_string b

let write_anchor t =
  let payload =
    anchor_payload ~epoch:t.epoch ~durable_lsn:t.durable_lsn
      ~trunc_lsn:t.trunc_lsn ~chain_mac:t.chain_mac
  in
  let mark = Fault.incident_count t.faults in
  let rec attempt n =
    let frame =
      S.Rpmb.make_write_frame ~key:t.rpmb_key ~slot:anchor_slot ~payload
        ~write_counter:(S.Rpmb.read_counter t.rpmb)
    in
    t.st.anchors <- t.st.anchors + 1;
    Obs.count ~scope:obs_scope "anchors";
    match S.Rpmb.write t.rpmb frame with
    | Ok _ ->
        if n > 0 then Fault.note_recovered_since t.faults mark;
        Ok ()
    | Error (S.Rpmb.Counter_mismatch _) when Fault.enabled t.faults && n < 3 ->
        Fault.note_retry t.faults ~action:"wal.rpmb.resync";
        attempt (n + 1)
    | Error e -> Error (Rpmb_error e)
  in
  attempt 0

let read_anchor ~rpmb ~rpmb_key ~drbg =
  let nonce = C.Drbg.generate drbg 16 in
  match S.Rpmb.read rpmb ~nonce anchor_slot with
  | Error e -> Error (Rpmb_error e)
  | Ok frame ->
      if not (S.Rpmb.verify_read_response ~key:rpmb_key ~nonce frame) then
        Error (Rpmb_error S.Rpmb.Bad_mac)
      else begin
        let p = frame.S.Rpmb.payload in
        let epoch = get_u64 p 0 in
        if epoch = 0 then Error Anchor_missing
        else
          Ok
            ( epoch,
              get_u64 p 8 (* durable *),
              get_u64 p 16 (* trunc *),
              String.sub p 24 32 (* chain mac *) )
      end

(* -- byte-stream persistence over 4 KiB device pages ------------------ *)

let device_bytes device =
  S.Block_device.page_count device * S.Block_device.page_size

(* Persist s[0, upto) at byte offset [off] of the log device
   (read-modify-write of the boundary pages). [upto < length s] is the
   torn-append crash shape: only a prefix of the frame reaches the
   medium. *)
let persist_bytes device ~off s upto =
  if upto > 0 then begin
    let ps = S.Block_device.page_size in
    let first = off / ps and last = (off + upto - 1) / ps in
    for p = first to last do
      let page = Bytes.of_string (S.Block_device.read_page device p) in
      let pstart = p * ps in
      let s_from = max 0 (pstart - off) in
      let d_from = max 0 (off - pstart) in
      let n = min (upto - s_from) (ps - d_from) in
      Bytes.blit_string s s_from page d_from n;
      S.Block_device.write_page device p (Bytes.to_string page)
    done
  end

(* Read [len] log bytes at [off]; None when the range leaves the
   device. *)
let read_bytes device ~off len =
  if off + len > device_bytes device then None
  else begin
    let ps = S.Block_device.page_size in
    let buf = Buffer.create len in
    let first = off / ps and last = (off + len - 1) / ps in
    for p = first to last do
      let page = S.Block_device.read_page device p in
      let pstart = p * ps in
      let from = max 0 (off - pstart) in
      let n = min (off + len - (pstart + from)) (ps - from) in
      Buffer.add_substring buf page from n
    done;
    Some (Buffer.contents buf)
  end

(* -- frame construction ----------------------------------------------- *)

let make_frame ~lsn ~nonce ~mac ~ciphertext =
  let clen = String.length ciphertext in
  let b = Bytes.create (frame_header + clen) in
  put_u32 b 0 clen;
  put_u64 b 4 lsn;
  Bytes.blit_string nonce 0 b 12 16;
  Bytes.blit_string mac 0 b 28 32;
  Bytes.blit_string ciphertext 0 b frame_header clen;
  Bytes.to_string b

(* -- lifecycle --------------------------------------------------------- *)

let make ~device ~rpmb ~hardware_key ~drbg ~epoch ~trunc_lsn ~durable_lsn
    ~next_lsn ~chain_mac ~persisted =
  let enc_key, mac_prekey = derive_keys ~hardware_key in
  {
    device;
    rpmb;
    rpmb_key = Ironsafe_securestore.Keyslot.derive_rpmb_auth_key ~hardware_key;
    enc_key;
    mac_prekey;
    boot_salt = C.Drbg.generate drbg 16;
    epoch;
    trunc_lsn;
    durable_lsn;
    next_lsn;
    chain_mac;
    persisted;
    persisted_lsn = durable_lsn;
    persisted_chain = chain_mac;
    pending = Queue.create ();
    st = fresh_stats ();
    faults = Fault.none;
    clock = (fun () -> 0.0);
  }

let create ~device ~rpmb ~hardware_key ~drbg () =
  let t =
    make ~device ~rpmb ~hardware_key ~drbg ~epoch:1 ~trunc_lsn:0 ~durable_lsn:0
      ~next_lsn:1 ~chain_mac:"" ~persisted:0
  in
  t.chain_mac <- genesis_mac t.mac_prekey ~trunc_lsn:0 ~epoch:1;
  t.persisted_chain <- t.chain_mac;
  match write_anchor t with Ok () -> Ok t | Error e -> Error e

(* -- append / flush ---------------------------------------------------- *)

let append t payload =
  let lsn = t.next_lsn in
  t.next_lsn <- lsn + 1;
  let nonce = nonce_for t lsn in
  let ciphertext =
    C.Modes.ctr_transform ~key:t.enc_key ~nonce (Record.encode payload)
  in
  let mac = chain_next t ~lsn ~nonce ~ciphertext in
  t.chain_mac <- mac;
  Queue.add (lsn, make_frame ~lsn ~nonce ~mac ~ciphertext) t.pending;
  t.st.appends <- t.st.appends + 1;
  Obs.count ~scope:obs_scope "appends";
  if Obs.enabled () then
    Obs.event ~ts_ns:(t.clock ()) ~scope:obs_scope ~kind:"wal.append"
      [
        ("lsn", Ev.I lsn);
        ("record", Ev.S (Record.kind_name payload));
        ("txn", Ev.I (Record.txn_of payload));
      ];
  lsn

(* The crash site is itself a forensics event ([wal.crash] is a
   terminal kind: the event-log sink flushes on it, and it triggers a
   flight recorder dump) emitted before the exception unwinds. *)
let crash t site =
  if Obs.enabled () then
    Obs.event ~ts_ns:(t.clock ()) ~scope:obs_scope ~kind:"wal.crash"
      [ ("site", Ev.S (Fault.site_name site)) ];
  raise (Crashed site)

let flush t =
  (* [persisted_lsn > durable_lsn] is the retry shape: frames reached
     the device on an earlier flush whose anchor write failed — nothing
     to persist, but the anchor must still advance over them. *)
  if Queue.is_empty t.pending && t.persisted_lsn <= t.durable_lsn then Ok ()
  else begin
    let wanted =
      Queue.fold (fun acc (_, f) -> acc + String.length f) 0 t.pending
    in
    if t.persisted + wanted > device_bytes t.device then Error Log_full
    else begin
      t.st.flushes <- t.st.flushes + 1;
      Obs.count ~scope:obs_scope "flushes";
      let consult = Fault.enabled t.faults in
      (* 1. persist every pending frame, oldest first; the crash sites
         bracket each record's device append *)
      while not (Queue.is_empty t.pending) do
        let lsn, frame = Queue.peek t.pending in
        if consult && Fault.fire t.faults Fault.Wal_crash_before_append then
          crash t Fault.Wal_crash_before_append;
        if consult && Fault.fire t.faults Fault.Wal_crash_mid_append then begin
          (* torn append: only the first half of the frame persists *)
          persist_bytes t.device ~off:t.persisted frame
            (String.length frame / 2);
          crash t Fault.Wal_crash_mid_append
        end;
        persist_bytes t.device ~off:t.persisted frame (String.length frame);
        t.persisted <- t.persisted + String.length frame;
        t.st.records_flushed <- t.st.records_flushed + 1;
        t.st.bytes_logged <- t.st.bytes_logged + String.length frame;
        t.persisted_lsn <- lsn;
        t.persisted_chain <- String.sub frame 28 32;
        ignore (Queue.pop t.pending);
        if consult && Fault.fire t.faults Fault.Wal_crash_after_append then
          crash t Fault.Wal_crash_after_append
      done;
      (* 2. mid-group-commit: all frames down, anchor not yet touched *)
      if consult && Fault.fire t.faults Fault.Wal_crash_mid_flush then
        crash t Fault.Wal_crash_mid_flush;
      (* 3. chain head is updated in memory; the anchored horizon only
         moves when the RPMB frame lands *)
      let prev_durable = t.durable_lsn in
      t.durable_lsn <- t.persisted_lsn;
      if consult && Fault.fire t.faults Fault.Wal_crash_before_anchor then begin
        t.durable_lsn <- prev_durable;
        crash t Fault.Wal_crash_before_anchor
      end;
      match write_anchor t with
      | Ok () -> Ok ()
      | Error e ->
          t.durable_lsn <- prev_durable;
          Error e
    end
  end

(* Drop the buffered frames that a full log device can never absorb,
   rewinding the in-memory chain head to the last frame actually on the
   device so later appends keep chaining over on-device reality. The
   caller owns the matching semantic rollback (the dropped records'
   commits were never acknowledged). *)
let discard_pending t =
  let n = Queue.length t.pending in
  Queue.clear t.pending;
  t.chain_mac <- t.persisted_chain;
  t.next_lsn <- t.persisted_lsn + 1;
  if n > 0 then begin
    t.st.discarded_records <- t.st.discarded_records + n;
    Obs.count ~scope:obs_scope "discarded_pending";
    if Obs.enabled () then
      Obs.event ~ts_ns:(t.clock ()) ~scope:obs_scope ~kind:"wal.discard"
        [ ("records", Ev.I n); ("persisted_lsn", Ev.I t.persisted_lsn) ]
  end;
  n

let truncate t =
  if not (Queue.is_empty t.pending) then
    invalid_arg "Wal.truncate: records still pending";
  let horizon = t.next_lsn - 1 in
  t.epoch <- t.epoch + 1;
  t.trunc_lsn <- horizon;
  t.durable_lsn <- horizon;
  t.chain_mac <- genesis_mac t.mac_prekey ~trunc_lsn:horizon ~epoch:t.epoch;
  t.persisted <- 0;
  t.persisted_lsn <- horizon;
  t.persisted_chain <- t.chain_mac;
  (* erase the first frame header so a later scan of the emptied log
     stops immediately instead of walking stale frames *)
  S.Block_device.write_page t.device 0
    (String.make S.Block_device.page_size '\000');
  write_anchor t

(* -- recovery ----------------------------------------------------------- *)

let recover ~device ~rpmb ~hardware_key ~drbg () =
  let rpmb_key = Ironsafe_securestore.Keyslot.derive_rpmb_auth_key ~hardware_key in
  match read_anchor ~rpmb ~rpmb_key ~drbg with
  | Error e -> Error e
  | Ok (epoch, durable, trunc, anchored_chain) ->
      let enc_key, mac_prekey = derive_keys ~hardware_key in
      let genesis = genesis_mac mac_prekey ~trunc_lsn:trunc ~epoch in
      (* walk the frame stream, verifying the chain as we go *)
      let rec scan off prev last_lsn chain_at_durable acc =
        match read_bytes device ~off 4 with
        | None -> Ok (off, last_lsn, chain_at_durable, acc)
        | Some len4 -> (
            let clen = get_u32 len4 0 in
            if clen = 0 || clen > max_ciphertext then
              Ok (off, last_lsn, chain_at_durable, acc)
            else
              match read_bytes device ~off (frame_header + clen) with
              | None -> Ok (off, last_lsn, chain_at_durable, acc)
              | Some frame ->
                  let lsn = get_u64 frame 4 in
                  let nonce = String.sub frame 12 16 in
                  let mac = String.sub frame 28 32 in
                  let ciphertext = String.sub frame frame_header clen in
                  let lsn8 = Bytes.create 8 in
                  put_u64 lsn8 0 lsn;
                  let expected =
                    C.Hmac.mac_pre_list mac_prekey
                      [ prev; Bytes.to_string lsn8; nonce; ciphertext ]
                  in
                  if
                    (not (C.Constant_time.equal expected mac))
                    || lsn <> last_lsn + 1
                  then
                    (* a broken link beyond the horizon is the torn tail
                       of an unacknowledged flush: clean end of log. At
                       or below the horizon it is tampering. *)
                    if last_lsn >= durable then
                      Ok (off, last_lsn, chain_at_durable, acc)
                    else Error (Tampered_record lsn)
                  else begin
                    let chain_at_durable =
                      if lsn = durable then Some expected else chain_at_durable
                    in
                    match
                      Record.decode
                        (C.Modes.ctr_transform ~key:enc_key ~nonce ciphertext)
                    with
                    | Error msg -> Error (Corrupt_record (lsn, msg))
                    | Ok payload ->
                        scan
                          (off + frame_header + clen)
                          expected lsn chain_at_durable
                          ({ Record.lsn; payload } :: acc)
                  end)
      in
      (match scan 0 genesis trunc None [] with
      | Error e -> Error e
      | Ok (end_off, last_lsn, chain_at_durable, acc_rev) ->
          if last_lsn < durable then
            Error (Truncated { durable_lsn = durable; last_valid_lsn = last_lsn })
          else begin
            (* the chain state at the horizon must reproduce the anchor:
               catches a consistently re-written (forked) log *)
            let at_durable =
              if durable = trunc then genesis
              else match chain_at_durable with Some m -> m | None -> genesis
            in
            if not (C.Constant_time.equal at_durable anchored_chain) then
              Error Anchor_mismatch
            else begin
              let all = List.rev acc_rev in
              let kept, dropped =
                List.partition (fun r -> r.Record.lsn <= durable) all
              in
              let t =
                make ~device ~rpmb ~hardware_key ~drbg ~epoch ~trunc_lsn:trunc
                  ~durable_lsn:durable ~next_lsn:(durable + 1)
                  ~chain_mac:at_durable ~persisted:end_off
              in
              (* the discarded tail still occupies device bytes; the
                 caller's post-redo truncate resets the offset, and
                 until then appends are forbidden anyway *)
              t.st.recovered_records <- List.length kept;
              t.st.discarded_records <- List.length dropped;
              Obs.count ~scope:obs_scope "recoveries";
              if Obs.enabled () then
                Obs.event ~scope:obs_scope ~kind:"wal.recover"
                  [
                    ("epoch", Ev.I epoch);
                    ("durable_lsn", Ev.I durable);
                    ("records", Ev.I (List.length kept));
                    ("discarded", Ev.I (List.length dropped));
                  ];
              Ok (t, kept)
            end
          end)

(* -- raw probes --------------------------------------------------------- *)

let scan_nonces device =
  let rec go off acc =
    match read_bytes device ~off 4 with
    | None -> List.rev acc
    | Some len4 -> (
        let clen = get_u32 len4 0 in
        if clen = 0 || clen > max_ciphertext then List.rev acc
        else
          match read_bytes device ~off (frame_header + clen) with
          | None -> List.rev acc
          | Some frame ->
              let lsn = get_u64 frame 4 in
              let nonce = String.sub frame 12 16 in
              go (off + frame_header + clen) ((lsn, nonce) :: acc))
  in
  go 0 []
