(* Transactional store façade (see txn_store.mli).

   Write path: pager_write logs a Page_write record and buffers the
   image in the open transaction; commit logs the Commit record and
   installs the images in the MVCC overlay at the commit LSN. The base
   store only changes at checkpoints (newest committed version per
   page written back, then the log truncated) and at recovery redo.
   Reads resolve txn buffer -> overlay (at the pinned snapshot or the
   latest commit) -> base. *)

module Sec = Ironsafe_securestore.Secure_store
module Block_device = Ironsafe_storage.Block_device
module Fault = Ironsafe_fault.Fault
module Obs = Ironsafe_obs.Obs
module Ev = Ironsafe_obs.Event_log

exception Base_failure of string

type error = Wal_error of Wal.error | Store_error of string

let pp_error ppf = function
  | Wal_error e -> Format.fprintf ppf "wal: %a" Wal.pp_error e
  | Store_error m -> Format.fprintf ppf "store: %s" m

type stats = {
  mutable commits : int;
  mutable durable_commits : int;
  mutable group_flushes : int;
  mutable max_group : int;
  mutable checkpoints : int;
  mutable snapshot_reads : int;
  mutable redo_pages : int;
}

type base = {
  b_read : int -> string;
  b_write : int -> string -> unit;
  b_flush : unit -> unit;
  b_cached : int -> bool;
}

type txn = {
  txn_id : int;
  mutable writes : (int * string) list;  (* newest first *)
  mutable live : bool;
  mutable logged : bool;
      (* Begin/Page_write records are in the WAL. Cleared when a
         Log_full recovery discards them while the txn is still open;
         commit then re-logs the whole transaction. *)
}

type t = {
  mutable store : Sec.t;
  mutable wal : Wal.t;
  mvcc : Mvcc.t;
  mutable base : base;
  mutable device : Block_device.t;
  mutable logging : bool;
  mutable next_txn : int;
  mutable current : txn option;
  mutable read_pin : int option;
  window_ns : float;
  max_group : int;
  mutable clock : unit -> float;
  mutable faults : Fault.t;
  mutable deadline : float option;
  mutable unacked : (int * int) list;  (* (commit lsn, txn id), oldest first *)
  st : stats;
}

let obs_scope = "wal"

let store_error e = Fmt.str "%a" Sec.pp_error e

let direct_base store_of =
  {
    b_read =
      (fun page ->
        match Sec.read_page (store_of ()) page with
        | Ok data -> data
        | Error e -> raise (Base_failure (store_error e)));
    b_write =
      (fun page data ->
        match Sec.write_page (store_of ()) page data with
        | Ok () -> ()
        | Error e -> raise (Base_failure (store_error e)));
    b_flush = (fun () -> ());
    b_cached = (fun _ -> false);
  }

let attach ~store ~wal ~device ?(window_ns = 0.0) ?(max_group = 64) () =
  let t =
    {
      store;
      wal;
      mvcc = Mvcc.create ();
      base =
        { b_read = (fun _ -> assert false);
          b_write = (fun _ _ -> assert false);
          b_flush = (fun () -> ());
          b_cached = (fun _ -> false);
        };
      device;
      logging = false;
      next_txn = 1;
      current = None;
      read_pin = None;
      window_ns;
      max_group;
      clock = (fun () -> 0.0);
      faults = Fault.none;
      deadline = None;
      unacked = [];
      st =
        {
          commits = 0;
          durable_commits = 0;
          group_flushes = 0;
          max_group = 0;
          checkpoints = 0;
          snapshot_reads = 0;
          redo_pages = 0;
        };
    }
  in
  (* the default base dereferences [t.store] at call time, so [adopt]
     can swap the store under existing closures *)
  t.base <- direct_base (fun () -> t.store);
  t

let engage t = t.logging <- true
let engaged t = t.logging

let set_clock t clock =
  t.clock <- clock;
  Wal.set_clock t.wal clock

let set_faults t plan =
  t.faults <- plan;
  Wal.set_faults t.wal plan

let store t = t.store
let wal t = t.wal
let mvcc_latest t = Mvcc.latest t.mvcc
let stats t = t.st

let route_base t ~read ~write ~flush ~cached =
  t.base <- { b_read = read; b_write = write; b_flush = flush; b_cached = cached }

(* --- transactions --------------------------------------------------- *)

let begin_txn t =
  let txn = { txn_id = t.next_txn; writes = []; live = true; logged = true } in
  t.next_txn <- t.next_txn + 1;
  ignore (Wal.append t.wal (Record.Begin { txn = txn.txn_id }));
  txn

let txn_write t txn ~page data =
  if not txn.live then invalid_arg "Txn_store.txn_write: transaction closed";
  if String.length data > Record.max_data_bytes then
    invalid_arg "Txn_store.txn_write: page image too large";
  if txn.logged then
    ignore (Wal.append t.wal (Record.Page_write { txn = txn.txn_id; page; data }));
  txn.writes <- (page, data) :: List.remove_assoc page txn.writes

let overlay_read t page =
  let at = match t.read_pin with Some s -> s | None -> Mvcc.latest t.mvcc in
  match Mvcc.read t.mvcc ~at page with
  | Some data -> Some data
  | None ->
      (* the base must be old enough for this viewpoint; checkpoints
         preserve_base before overwriting pages older snapshots need *)
      None

let txn_read t txn page =
  match List.assoc_opt page txn.writes with
  | Some data -> data
  | None -> (
      match overlay_read t page with
      | Some data -> data
      | None -> t.base.b_read page)

(* Acknowledge every commit the WAL's durable horizon now covers. *)
let ack_flushed t =
  let durable = Wal.durable_lsn t.wal in
  let acked, still = List.partition (fun (lsn, _) -> lsn <= durable) t.unacked in
  t.unacked <- still;
  (match acked with
  | [] -> ()
  | _ ->
      let n = List.length acked in
      t.st.durable_commits <- t.st.durable_commits + n;
      t.st.group_flushes <- t.st.group_flushes + 1;
      if n > t.st.max_group then t.st.max_group <- n;
      if Obs.enabled () then
        List.iter
          (fun (lsn, txn) ->
            Obs.event ~ts_ns:(t.clock ()) ~scope:obs_scope ~kind:"wal.commit"
              [ ("lsn", Ev.I lsn); ("txn", Ev.I txn); ("group", Ev.I n) ])
          acked);
  if t.unacked = [] then t.deadline <- None

(* Roll every commit above [above] back out of the overlay: the WAL
   cannot make them durable, so readers must stop seeing them — the
   same outcome a crash before the ack would have had. None of them
   was ever acknowledged [`Durable]. *)
let rollback_unacked t ~above =
  let dropped, kept = List.partition (fun (lsn, _) -> lsn > above) t.unacked in
  if dropped <> [] then begin
    Mvcc.rollback_above t.mvcc ~lsn:above;
    t.unacked <- kept;
    if Obs.enabled () then
      List.iter
        (fun (lsn, txn) ->
          Obs.event ~ts_ns:(t.clock ()) ~scope:obs_scope ~kind:"wal.rollback"
            [ ("lsn", Ev.I lsn); ("txn", Ev.I txn) ])
        dropped
  end;
  if t.unacked = [] then t.deadline <- None

let flush t =
  match Wal.flush t.wal with
  | Ok () ->
      ack_flushed t;
      Ok ()
  | Error Wal.Log_full ->
      (* The pending frames can never reach the full device. Drop them
         and roll their commits back (crash-before-ack semantics); an
         open transaction loses its logged records but stays re-loggable
         at commit. A following checkpoint can then truncate the log and
         unwedge the store. *)
      ignore (Wal.discard_pending t.wal);
      (match t.current with
      | Some txn when txn.live -> txn.logged <- false
      | _ -> ());
      rollback_unacked t ~above:(Wal.persisted_lsn t.wal);
      (* frames persisted by an earlier flush may still lack their
         anchor; retry so those commits can be acknowledged *)
      (match Wal.flush t.wal with Ok () -> ack_flushed t | Error _ -> ());
      Error (Wal_error Wal.Log_full)
  | Error e -> Error (Wal_error e)

let tick t =
  match t.deadline with
  | Some d when t.clock () >= d -> flush t
  | _ -> Ok ()

let commit_txn ?(sync = false) t txn =
  if not txn.live then invalid_arg "Txn_store.commit_txn: transaction closed";
  txn.live <- false;
  if not txn.logged then begin
    (* this txn's records were discarded by a Log_full recovery while
       it was open: re-log the whole transaction before its Commit *)
    ignore (Wal.append t.wal (Record.Begin { txn = txn.txn_id }));
    List.iter
      (fun (page, data) ->
        ignore
          (Wal.append t.wal (Record.Page_write { txn = txn.txn_id; page; data })))
      (List.rev txn.writes);
    txn.logged <- true
  end;
  let lsn = Wal.append t.wal (Record.Commit { txn = txn.txn_id }) in
  (* visible to new snapshots immediately; durability is the flush's
     job (a crash before the ack rolls the whole group back) *)
  Mvcc.install t.mvcc ~lsn (List.rev txn.writes);
  t.unacked <- t.unacked @ [ (lsn, txn.txn_id) ];
  t.st.commits <- t.st.commits + 1;
  let force = sync || t.window_ns <= 0.0 || List.length t.unacked >= t.max_group in
  if force then
    match flush t with
    | Ok () -> Ok (`Durable lsn)
    | Error e -> Error e
  else begin
    if t.deadline = None then t.deadline <- Some (t.clock () +. t.window_ns);
    Ok (`Queued lsn)
  end

(* --- pager-shaped access (implicit statement transactions) ---------- *)

let pager_read t page =
  if not t.logging then t.base.b_read page
  else
    match t.current with
    | Some txn when txn.live -> txn_read t txn page
    | _ -> (
        match overlay_read t page with
        | Some data -> data
        | None -> t.base.b_read page)

let pager_write t page data =
  if not t.logging then t.base.b_write page data
  else begin
    let txn =
      match t.current with
      | Some txn when txn.live -> txn
      | _ ->
          let txn = begin_txn t in
          t.current <- Some txn;
          txn
    in
    txn_write t txn ~page data
  end

let pager_cached t page =
  if not t.logging then t.base.b_cached page
  else
    match t.current with
    | Some txn when txn.live && List.mem_assoc page txn.writes -> true
    | _ -> (
        match overlay_read t page with
        | Some _ -> true
        | None -> t.base.b_cached page)

let commit_current ?sync t =
  match t.current with
  | None -> Ok `Empty
  | Some txn ->
      t.current <- None;
      if txn.writes = [] then begin
        (* Begin with no writes: close it with an empty commit so the
           log stays well-formed, but don't force a flush for it. *)
        txn.live <- false;
        ignore (Wal.append t.wal (Record.Commit { txn = txn.txn_id }));
        Ok `Empty
      end
      else (
        match commit_txn ?sync t txn with
        | Ok (`Durable l) -> Ok (`Durable l)
        | Ok (`Queued l) -> Ok (`Queued l)
        | Error e -> Error e)

let abort_current t =
  match t.current with
  | None -> ()
  | Some txn ->
      txn.live <- false;
      t.current <- None

let unacked_commits t = List.length t.unacked

(* --- snapshots ------------------------------------------------------ *)

let snapshot t =
  t.st.snapshot_reads <- t.st.snapshot_reads + 1;
  Mvcc.snapshot t.mvcc

let release_snapshot t s = Mvcc.release t.mvcc s

let with_snapshot t f =
  let s = snapshot t in
  let prev = t.read_pin in
  t.read_pin <- Some s;
  Fun.protect
    ~finally:(fun () ->
      t.read_pin <- prev;
      release_snapshot t s)
    (fun () -> f s)

(* --- checkpoint ----------------------------------------------------- *)

let checkpoint_writeback t =
      t.st.checkpoints <- t.st.checkpoints + 1;
      let newest = Mvcc.newest_versions t.mvcc in
      let oldest_pin = Mvcc.min_active t.mvcc in
      let wrote = ref 0 in
      List.iter
        (fun (page, (lsn, data)) ->
          let b = Mvcc.base_lsn t.mvcc page in
          if lsn > b then begin
            (* an older pinned snapshot may still need the current
               base image once we overwrite it *)
            (match oldest_pin with
            | Some s when s < lsn && b <= s ->
                Mvcc.preserve_base t.mvcc ~page ~lsn:b
                  ~data:(t.base.b_read page)
            | _ -> ());
            t.base.b_write page data;
            incr wrote;
            if Fault.fire t.faults Fault.Wal_torn_checkpoint then begin
              (* power loss mid write-back: the page reached the
                 device but loses a byte — redo must heal it (data
                 page [p] lives at device page [p]) *)
              t.base.b_flush ();
              Block_device.tamper t.device ~page
                ~offset:(Fault.rand_int t.faults Block_device.page_size);
              raise (Wal.Crashed Fault.Wal_torn_checkpoint)
            end;
            Mvcc.set_base_lsn t.mvcc page lsn
          end)
        newest;
      t.base.b_flush ();
      match Wal.truncate t.wal with
      | Error e -> Error (Wal_error e)
      | Ok () ->
          (* truncation anchors the horizon at the head of the log, so
             any persisted-but-unanchored commits are now durable *)
          ack_flushed t;
          Mvcc.gc t.mvcc;
          if Obs.enabled () then
            Obs.event ~ts_ns:(t.clock ()) ~scope:obs_scope ~kind:"wal.checkpoint"
              [
                ("pages", Ev.I !wrote);
                ("epoch", Ev.I (Wal.epoch t.wal));
                ("durable_lsn", Ev.I (Wal.durable_lsn t.wal));
              ];
          Ok ()

let checkpoint t =
  match flush t with
  | Ok () -> checkpoint_writeback t
  | Error (Wal_error Wal.Log_full) ->
      (* [flush] already discarded the never-persisted tail and rolled
         its commits back; the durable prefix can still be checkpointed,
         which truncates the log and unwedges the store *)
      checkpoint_writeback t
  | Error e -> Error e

(* --- recovery ------------------------------------------------------- *)

(* Redo: walk the recovered records in LSN order, buffer page images
   per transaction, and apply each transaction's writes at its Commit
   record — commit order equals LSN order, so later commits win. *)
let redo_records t records =
  let open_txns : (int, (int * string) list ref) Hashtbl.t = Hashtbl.create 8 in
  let applied = ref 0 in
  List.iter
    (fun { Record.payload; _ } ->
      match payload with
      | Record.Begin { txn } -> Hashtbl.replace open_txns txn (ref [])
      | Record.Page_write { txn; page; data } -> (
          match Hashtbl.find_opt open_txns txn with
          | Some ws -> ws := (page, data) :: List.remove_assoc page !ws
          | None -> ())
      | Record.Commit { txn } -> (
          match Hashtbl.find_opt open_txns txn with
          | Some ws ->
              List.iter
                (fun (page, data) ->
                  t.base.b_write page data;
                  incr applied)
                (List.rev !ws);
              Hashtbl.remove open_txns txn
          | None -> ()))
    records;
  !applied

let adopt t ~store ~wal ~records =
  (* volatile state died with the crash *)
  t.store <- store;
  t.wal <- wal;
  t.current <- None;
  t.read_pin <- None;
  t.deadline <- None;
  t.unacked <- [];
  Mvcc.clear t.mvcc;
  Wal.set_clock wal t.clock;
  Wal.set_faults wal t.faults;
  match
    let applied = redo_records t records in
    t.base.b_flush ();
    t.st.redo_pages <- t.st.redo_pages + applied;
    Wal.truncate t.wal
  with
  | Ok () ->
      if Obs.enabled () then
        Obs.event ~ts_ns:(t.clock ()) ~scope:obs_scope ~kind:"wal.redo"
          [
            ("records", Ev.I (List.length records));
            ("pages", Ev.I t.st.redo_pages);
            ("epoch", Ev.I (Wal.epoch t.wal));
          ];
      Ok ()
  | Error e -> Error (Wal_error e)
  | exception Base_failure m -> Error (Store_error m)

let state_hash t ~pages =
  let parts =
    List.concat_map
      (fun page -> [ Printf.sprintf "%08x" page; pager_read t page ])
      (List.sort_uniq compare pages)
  in
  (* the epoch is deliberately excluded: every truncation bumps it, so
     two recoveries of the same durable state legitimately differ in
     epoch while their logical state is identical *)
  let horizon = Printf.sprintf "durable=%d" (Wal.durable_lsn t.wal) in
  Ironsafe_crypto.Sha256.digest_list (parts @ [ horizon ])
