(* WAL record payloads: tag byte, big-endian fixed-width integers,
   length-prefixed page data. The LSN is intentionally not encoded
   here — it travels in the clear frame header so the HMAC chain can
   be verified before decryption (see wal.ml). *)

type payload =
  | Begin of { txn : int }
  | Page_write of { txn : int; page : int; data : string }
  | Commit of { txn : int }

type t = { lsn : int; payload : payload }

let kind_name = function
  | Begin _ -> "begin"
  | Page_write _ -> "page_write"
  | Commit _ -> "commit"

let txn_of = function
  | Begin { txn } | Commit { txn } -> txn
  | Page_write { txn; _ } -> txn

let max_data_bytes = Ironsafe_storage.Block_device.page_size

let put_u64 buf v =
  for i = 7 downto 0 do
    Buffer.add_char buf (Char.chr ((v lsr (i * 8)) land 0xff))
  done

let put_u32 buf v =
  for i = 3 downto 0 do
    Buffer.add_char buf (Char.chr ((v lsr (i * 8)) land 0xff))
  done

let get_u64 s off =
  let v = ref 0 in
  for i = 0 to 7 do
    v := (!v lsl 8) lor Char.code s.[off + i]
  done;
  !v

let get_u32 s off =
  let v = ref 0 in
  for i = 0 to 3 do
    v := (!v lsl 8) lor Char.code s.[off + i]
  done;
  !v

let tag_begin = '\001'
let tag_page_write = '\002'
let tag_commit = '\003'

let encode p =
  let buf = Buffer.create 32 in
  (match p with
  | Begin { txn } ->
      Buffer.add_char buf tag_begin;
      put_u64 buf txn
  | Commit { txn } ->
      Buffer.add_char buf tag_commit;
      put_u64 buf txn
  | Page_write { txn; page; data } ->
      if String.length data > max_data_bytes then
        invalid_arg "Record.encode: page data exceeds one device page";
      Buffer.add_char buf tag_page_write;
      put_u64 buf txn;
      put_u32 buf page;
      put_u32 buf (String.length data);
      Buffer.add_string buf data);
  Buffer.contents buf

let decode s =
  let n = String.length s in
  if n < 9 then Error "record too short"
  else
    match s.[0] with
    | c when c = tag_begin ->
        if n <> 9 then Error "begin: trailing bytes"
        else Ok (Begin { txn = get_u64 s 1 })
    | c when c = tag_commit ->
        if n <> 9 then Error "commit: trailing bytes"
        else Ok (Commit { txn = get_u64 s 1 })
    | c when c = tag_page_write ->
        if n < 17 then Error "page_write: header truncated"
        else begin
          let txn = get_u64 s 1 in
          let page = get_u32 s 9 in
          let len = get_u32 s 13 in
          if n <> 17 + len then Error "page_write: data length mismatch"
          else Ok (Page_write { txn; page; data = String.sub s 17 len })
        end
    | _ -> Error "unknown record tag"
