(** WAL record payloads and their binary encoding.

    A record's log sequence number (LSN) is not part of the payload
    encoding: it lives in the clear frame header (see {!Wal}) where the
    HMAC chain binds it, so recovery can walk the chain before any
    decryption happens. *)

type payload =
  | Begin of { txn : int }  (** transaction start *)
  | Page_write of { txn : int; page : int; data : string }
      (** redo image: the full post-write plaintext of one page *)
  | Commit of { txn : int }  (** transaction commit point *)

type t = { lsn : int; payload : payload }

val kind_name : payload -> string
(** ["begin"], ["page_write"] or ["commit"] (used in JSONL events). *)

val txn_of : payload -> int

val encode : payload -> string
(** Binary encoding (tag byte + big-endian fixed-width fields). *)

val decode : string -> (payload, string) result
(** Inverse of {!encode}; [Error] on truncated or unknown encodings. *)

val max_data_bytes : int
(** Largest page image a [Page_write] may carry (one device page). *)
