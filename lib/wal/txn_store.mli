(** Transactional façade over the secure page store: writes are
    WAL-logged and versioned, commits are group-committed on the
    virtual clock, reads resolve through the MVCC overlay, and the
    whole thing survives a crash at any WAL fault site.

    Layering (top to bottom): MVCC overlay → [base] (optionally a
    {!Ironsafe_sql.Bufpool} the deployment routes through) → secure
    store → block device + RPMB. The WAL lives on its own device.

    Commit protocol: page writes are logged ({!Record.Page_write}) as
    they happen, [commit] logs the {!Record.Commit} and installs the
    transaction's versions in the overlay (visible immediately), but
    the commit is only {e acknowledged} — [`Durable] — once a WAL
    flush covering its LSN completes (records on the log device {e
    and} RPMB anchor advanced). With a group-commit window, commits
    return [`Queued] and a later [flush] / [tick] / window-expiry
    acknowledges the whole batch with a single anchor update. *)

type t

exception Base_failure of string
(** A base-store page operation failed (integrity violation surfaced
    from the secure store during checkpoint write-back or base read). *)

type error = Wal_error of Wal.error | Store_error of string

val pp_error : Format.formatter -> error -> unit

type stats = {
  mutable commits : int;  (** commit records logged *)
  mutable durable_commits : int;  (** commits acknowledged durable *)
  mutable group_flushes : int;  (** flushes covering >= 1 commit *)
  mutable max_group : int;  (** largest commit batch one flush covered *)
  mutable checkpoints : int;
  mutable snapshot_reads : int;
  mutable redo_pages : int;  (** page images re-applied at recovery *)
}

val attach :
  store:Ironsafe_securestore.Secure_store.t ->
  wal:Wal.t ->
  device:Ironsafe_storage.Block_device.t ->
  ?window_ns:float ->
  ?max_group:int ->
  unit ->
  t
(** Wrap [store] (whose pages live on [device] — needed by the
    torn-checkpoint fault site). [window_ns] (default 0 = synchronous
    commit) is the group-commit window on the virtual clock;
    [max_group] (default 64) bounds a batch. The store starts in
    pass-through mode — see {!engage}. *)

val engage : t -> unit
(** Turn logging/versioning on. Until then reads and writes pass
    straight to the base store, so population is byte-identical to a
    WAL-less deployment. *)

val engaged : t -> bool

val set_clock : t -> (unit -> float) -> unit
val set_faults : t -> Ironsafe_fault.Fault.t -> unit

val store : t -> Ironsafe_securestore.Secure_store.t
val wal : t -> Wal.t
val mvcc_latest : t -> int

val route_base :
  t ->
  read:(int -> string) ->
  write:(int -> string -> unit) ->
  flush:(unit -> unit) ->
  cached:(int -> bool) ->
  unit
(** Interpose a caching layer (the deployment's buffer pool) between
    the overlay and the secure store. The default base accesses the
    store directly. *)

(** {2 Pager-shaped access (implicit statement transactions)} *)

val pager_read : t -> int -> string
(** Own uncommitted write, else newest overlay version visible at the
    pinned snapshot (or the latest commit), else the base store. *)

val pager_write : t -> int -> string -> unit
(** Log + buffer the write under the current implicit transaction
    (opened on demand); nothing reaches the base store until a
    checkpoint writes back committed versions. *)

val pager_cached : t -> int -> bool

val commit_current :
  ?sync:bool -> t -> ([ `Durable of int | `Queued of int | `Empty ], error) result
(** Commit the implicit transaction. [sync] (default [false]) forces
    the flush regardless of the group-commit window. [`Empty] when no
    write happened since the last commit. *)

val abort_current : t -> unit

(** {2 Explicit transactions} *)

type txn

val begin_txn : t -> txn
val txn_write : t -> txn -> page:int -> string -> unit
val txn_read : t -> txn -> int -> string

val commit_txn :
  ?sync:bool -> t -> txn -> ([ `Durable of int | `Queued of int ], error) result

(** {2 Group commit} *)

val tick : t -> (unit, error) result
(** Flush if the group-commit window deadline has passed (the flush
    daemon's beat — the runner calls this with the virtual clock). *)

val flush : t -> (unit, error) result
(** Force the pending group durable now. On [Log_full] the queued
    records can never reach the device: they are discarded and their
    commits rolled back out of the overlay (the same outcome a crash
    before the ack would have — none was acknowledged [`Durable]), an
    open transaction is kept re-loggable at commit, and the error is
    returned; a following {!checkpoint} truncates and unwedges the
    log. A failed RPMB anchor write leaves the affected commits
    pending: the frames are on the device and a later flush retries
    the anchor over them. *)

val unacked_commits : t -> int

(** {2 Snapshots} *)

val snapshot : t -> int
val release_snapshot : t -> int -> unit

val with_snapshot : t -> (int -> 'a) -> 'a
(** Pin a snapshot, route {!pager_read}s through it for the duration
    of the callback, release it after. *)

(** {2 Checkpoint and recovery} *)

val checkpoint : t -> (unit, error) result
(** Flush the WAL, write the newest committed versions back to the
    base store (preserving old base images for older pinned
    snapshots), then truncate the log and collect overlay garbage.
    If the flush fails with [Log_full], the never-persisted tail has
    already been rolled back (see {!flush}) and the checkpoint
    proceeds over the durable prefix — truncation then frees the log.
    The [Wal_torn_checkpoint] fault site fires here: it persists a
    torn base page and crashes. *)

val adopt :
  t ->
  store:Ironsafe_securestore.Secure_store.t ->
  wal:Wal.t ->
  records:Record.t list ->
  (unit, error) result
(** In-place recovery: replace the crashed store/WAL with freshly
    reopened ones, redo-apply the committed [records] (in LSN order,
    applied at their commit points), truncate the log and reset the
    overlay. Existing pager closures over this [t] stay valid — this
    is what lets a deployment reboot its secure medium without
    rebuilding the SQL layer. The WAL inherits this store's fault plan
    and clock. *)

val state_hash : t -> pages:int list -> string
(** SHA-256 over the latest committed plaintext of [pages] plus the
    durable LSN — the recovery-idempotence fingerprint. The log epoch
    is excluded: truncation bumps it on every recovery while the
    logical state stays identical. *)

val stats : t -> stats
