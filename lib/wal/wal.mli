(** Encrypted, HMAC-chained write-ahead log over a dedicated block
    device, with its commit horizon anchored in RPMB.

    On-device layout: a byte stream of frames packed into 4 KiB pages,

    {v len(4) | lsn(8) | nonce(16) | mac(32) | ciphertext(len) v}

    where [ciphertext] is the AES-CTR encryption of the record payload
    ({!Record.encode}) under a WAL key derived from the hardware unique
    key, and

    {v mac_i = HMAC(wal_mac_key, mac_(i-1) | lsn_i | nonce_i | ct_i) v}

    chains every record over its predecessor's MAC, starting from a
    genesis MAC bound to the last truncation point. The RPMB anchor
    slot holds [(epoch, durable_lsn, trunc_lsn, chain_mac)] behind the
    replay-protected monotonic counter, so at recovery:

    - a log {e truncated} below the anchored horizon is detected (the
      chain ends before [durable_lsn]);
    - a {e replayed or forked} log is detected (the chain MAC at
      [durable_lsn] does not reproduce the anchored [chain_mac]);
    - a {e torn tail} beyond the horizon (the crash window of an
      unacknowledged group commit) is cleanly discarded.

    [append] only buffers; [flush] persists the pending frames and
    bumps the anchor — a commit may be acknowledged only after the
    [flush] covering it returns. Group commit is the caller's policy
    (see {!Txn_store}); the WAL just makes one flush cover many
    commits with a single RPMB update. *)

type t

type error =
  | Truncated of { durable_lsn : int; last_valid_lsn : int }
      (** log ends before the anchored commit horizon: rollback or
          truncation of acknowledged records *)
  | Tampered_record of int
      (** chain-MAC failure at or below the anchored horizon *)
  | Anchor_mismatch
      (** the chain is internally valid but does not reproduce the
          RPMB-anchored chain MAC (replayed / forked log) *)
  | Anchor_missing  (** recovery on a never-initialized WAL *)
  | Corrupt_record of int * string  (** record decode failure *)
  | Log_full
  | Rpmb_error of Ironsafe_storage.Rpmb.error

val pp_error : Format.formatter -> error -> unit

exception Crashed of Ironsafe_fault.Fault.site
(** Raised by a fired WAL crash fault site {e after} the partial state
    of that crash point has been persisted. The in-memory WAL must be
    discarded; reopen the media with {!recover}. *)

type stats = {
  mutable appends : int;
  mutable flushes : int;
  mutable records_flushed : int;
  mutable anchors : int;  (** RPMB anchor updates *)
  mutable bytes_logged : int;
  mutable recovered_records : int;
  mutable discarded_records : int;
      (** valid-chain records beyond the anchored horizon dropped at
          recovery (never acknowledged) *)
}

val anchor_slot : int
(** RPMB slot holding the WAL anchor (2; the secure store owns 0/1). *)

val create :
  device:Ironsafe_storage.Block_device.t ->
  rpmb:Ironsafe_storage.Rpmb.t ->
  hardware_key:string ->
  drbg:Ironsafe_crypto.Drbg.t ->
  unit ->
  (t, error) result
(** First boot: derives the WAL keys, writes the initial anchor
    (epoch 1, empty log). The RPMB authentication key must already be
    programmed (the secure store does this at initialization). *)

val recover :
  device:Ironsafe_storage.Block_device.t ->
  rpmb:Ironsafe_storage.Rpmb.t ->
  hardware_key:string ->
  drbg:Ironsafe_crypto.Drbg.t ->
  unit ->
  (t * Record.t list, error) result
(** Reboot path: reads the anchor, walks the chained log verifying
    every record MAC, and returns the records at or below the anchored
    [durable_lsn] in LSN order for redo. Valid records beyond the
    horizon (an unacknowledged tail) are discarded and counted; a torn
    trailing frame is treated as end-of-log. The returned WAL draws a
    fresh per-boot nonce salt, so post-recovery appends never reuse a
    pre-crash record nonce even at the same (epoch, LSN). The caller
    must redo the records into the base store and then {!truncate}. *)

val append : t -> Record.payload -> int
(** Assign the next LSN, extend the MAC chain, and buffer the frame.
    Nothing is persisted until {!flush}. *)

val flush : t -> (unit, error) result
(** Persist every pending frame to the log device and advance the RPMB
    anchor to cover them. On [Ok ()] all records appended so far are
    durable. If a previous flush persisted frames but failed at the
    anchor write ([Rpmb_error]), a later flush retries the anchor over
    the already-persisted tail, so such commits stay acknowledgeable.
    WAL crash fault sites fire inside this path (see
    {!Ironsafe_fault.Fault.wal_sites}); {!Crashed} may escape. *)

val discard_pending : t -> int
(** Drop every buffered (never-persisted) frame and rewind the
    in-memory chain head and next LSN to the last frame on the device,
    so later appends chain over on-device reality. Used when the log
    device is full ([Log_full]): the pending tail can never persist.
    The caller must roll back the semantic effects of the dropped
    records (none were ever acknowledged). Returns the count dropped. *)

val truncate : t -> (unit, error) result
(** Checkpoint epilogue: everything durable has been applied to the
    base store, so restart the log — bump the epoch, rebase the chain
    genesis at the current horizon, reset the write offset, re-anchor.
    @raise Invalid_argument if records are still pending. *)

val set_faults : t -> Ironsafe_fault.Fault.t -> unit
val set_clock : t -> (unit -> float) -> unit

val durable_lsn : t -> int

val persisted_lsn : t -> int
(** Highest LSN whose frame is on the log device (>= {!durable_lsn};
    strictly greater exactly when an anchor write failed and is
    awaiting retry). *)

val next_lsn : t -> int
val epoch : t -> int
val pending_records : t -> int
val persisted_bytes : t -> int
val stats : t -> stats

val scan_nonces : Ironsafe_storage.Block_device.t -> (int * string) list
(** Walk the raw frame stream of a log device (no verification) and
    return [(lsn, nonce)] pairs — the black-box probe the nonce-reuse
    regression test uses. *)
