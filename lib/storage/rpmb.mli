(** Replay-Protected Memory Block (eMMC RPMB protocol shape):
    HMAC-authenticated frames, a monotonic write counter, a key
    programmable exactly once. Rollback-protection anchor of §4.1. *)

val slot_size : int

type t

type frame = {
  slot : int;
  payload : string;
  write_counter : int;
  mac : string;
}

type error =
  | Key_not_programmed
  | Key_already_programmed
  | Bad_mac
  | Counter_mismatch of { expected : int; got : int }
  | Bad_slot of int

val pp_error : Format.formatter -> error -> unit

val create : ?slots:int -> unit -> t
val slot_count : t -> int

val set_faults : t -> Ironsafe_fault.Fault.t -> unit
(** Attach a fault plan; a fired [Rpmb_desync] spuriously advances the
    device write counter before processing a write frame, forcing a
    [Counter_mismatch] the caller must re-sync from. *)

val program_key : t -> string -> (unit, error) result
(** One-time key programming (done by the secure-world storage TA). *)

val read_counter : t -> int

val make_write_frame :
  key:string -> slot:int -> payload:string -> write_counter:int -> frame
(** Build an authenticated write frame; payload is zero-padded to the
    slot size. @raise Invalid_argument if the payload is too large. *)

val write : t -> frame -> (int, error) result
(** Returns the new write counter. Rejects bad MACs and stale/replayed
    counters. *)

val read : t -> nonce:string -> int -> (frame, error) result
(** Authenticated read: the response MAC covers the caller's nonce. *)

val verify_read_response : key:string -> nonce:string -> frame -> bool
