(* Untrusted storage medium: a flat array of 4 KiB pages.

   This is the component the adversary of §3.3 fully controls, so the
   API deliberately includes attack entry points (tamper, rollback,
   fork) used by the security tests and the attack-demo example. The
   device also counts reads/writes — those counters are the ground
   truth for the data-movement figures. *)

module Fault = Ironsafe_fault.Fault

let page_size = 4096

type t = {
  pages : Bytes.t array;
  mutable reads : int;
  mutable writes : int;
  mutable snapshots : (string * Bytes.t array) list;
  mutable faults : Fault.t;
}

let create ~pages:n =
  if n <= 0 then invalid_arg "Block_device.create: page count must be positive";
  {
    pages = Array.init n (fun _ -> Bytes.make page_size '\000');
    reads = 0;
    writes = 0;
    snapshots = [];
    faults = Fault.none;
  }

let set_faults t plan = t.faults <- plan

let page_count t = Array.length t.pages

let check t i =
  if i < 0 || i >= Array.length t.pages then
    invalid_arg (Printf.sprintf "Block_device: page %d out of range" i)

(* Injected media faults decay a whole 16-byte ECC block: real devices
   fail at block granularity, and a burst reliably overlaps live bytes
   on a well-filled page (a single-bit model can land in unused
   padding and go unobserved). *)
let ecc_block = 16

let corrupt_block b off =
  let off = min off (page_size - ecc_block) in
  for k = off to off + ecc_block - 1 do
    Bytes.set b k (Char.chr (Char.code (Bytes.get b k) lxor 0x40))
  done

let read_page t i =
  check t i;
  t.reads <- t.reads + 1;
  (* injected media faults (plan-driven, deterministic): bit rot decays
     the stored page; a transient error corrupts only this read *)
  if Fault.enabled t.faults && Fault.fire t.faults Fault.Device_bit_rot then
    corrupt_block t.pages.(i) (Fault.rand_int t.faults page_size);
  if Fault.enabled t.faults && Fault.fire t.faults Fault.Device_read_transient
  then begin
    let copy = Bytes.of_string (Bytes.to_string t.pages.(i)) in
    corrupt_block copy (Fault.rand_int t.faults page_size);
    Bytes.to_string copy
  end
  else Bytes.to_string t.pages.(i)

let write_page t i data =
  check t i;
  if String.length data <> page_size then
    invalid_arg "Block_device.write_page: data must be exactly one page";
  t.writes <- t.writes + 1;
  if Fault.enabled t.faults && Fault.fire t.faults Fault.Device_torn_write
  then begin
    (* torn write: only the first half of the page reaches the medium *)
    Bytes.blit_string data 0 t.pages.(i) 0 (page_size / 2);
    Bytes.fill t.pages.(i) (page_size / 2) (page_size / 2) '\000'
  end
  else Bytes.blit_string data 0 t.pages.(i) 0 page_size

let reads t = t.reads
let writes t = t.writes

let reset_counters t =
  t.reads <- 0;
  t.writes <- 0

(* -- Adversarial interface (threat model §3.3) --------------------- *)

(* Flip one byte of a page without going through the storage engine. *)
let tamper t ~page ~offset =
  check t page;
  if offset < 0 || offset >= page_size then
    invalid_arg "Block_device.tamper: offset out of range";
  let b = Bytes.get t.pages.(page) offset in
  Bytes.set t.pages.(page) offset (Char.chr (Char.code b lxor 0xff))

(* Swap two pages in place (displacement attack). *)
let swap_pages t i j =
  check t i;
  check t j;
  let tmp = t.pages.(i) in
  t.pages.(i) <- Bytes.copy t.pages.(j);
  Bytes.blit tmp 0 t.pages.(j) 0 page_size

let snapshot t ~name =
  t.snapshots <-
    (name, Array.map Bytes.copy t.pages)
    :: List.remove_assoc name t.snapshots

(* Rollback attack: silently revert the medium to an earlier state. *)
let rollback t ~name =
  match List.assoc_opt name t.snapshots with
  | None -> Error (Printf.sprintf "no snapshot %S" name)
  | Some saved ->
      Array.iteri (fun i p -> Bytes.blit p 0 t.pages.(i) 0 page_size) saved;
      Ok ()

(* Forking attack: a full replica of the medium the adversary can run
   a second storage-system instance against. *)
let fork t =
  {
    pages = Array.map Bytes.copy t.pages;
    reads = 0;
    writes = 0;
    snapshots = [];
    faults = Fault.none;
  }
