(* Untrusted storage medium: a flat array of 4 KiB pages.

   This is the component the adversary of §3.3 fully controls, so the
   API deliberately includes attack entry points (tamper, rollback,
   fork) used by the security tests and the attack-demo example. The
   device also counts reads/writes — those counters are the ground
   truth for the data-movement figures. *)

let page_size = 4096

type t = {
  pages : Bytes.t array;
  mutable reads : int;
  mutable writes : int;
  mutable snapshots : (string * Bytes.t array) list;
}

let create ~pages:n =
  if n <= 0 then invalid_arg "Block_device.create: page count must be positive";
  {
    pages = Array.init n (fun _ -> Bytes.make page_size '\000');
    reads = 0;
    writes = 0;
    snapshots = [];
  }

let page_count t = Array.length t.pages

let check t i =
  if i < 0 || i >= Array.length t.pages then
    invalid_arg (Printf.sprintf "Block_device: page %d out of range" i)

let read_page t i =
  check t i;
  t.reads <- t.reads + 1;
  Bytes.to_string t.pages.(i)

let write_page t i data =
  check t i;
  if String.length data <> page_size then
    invalid_arg "Block_device.write_page: data must be exactly one page";
  t.writes <- t.writes + 1;
  Bytes.blit_string data 0 t.pages.(i) 0 page_size

let reads t = t.reads
let writes t = t.writes

let reset_counters t =
  t.reads <- 0;
  t.writes <- 0

(* -- Adversarial interface (threat model §3.3) --------------------- *)

(* Flip one byte of a page without going through the storage engine. *)
let tamper t ~page ~offset =
  check t page;
  if offset < 0 || offset >= page_size then
    invalid_arg "Block_device.tamper: offset out of range";
  let b = Bytes.get t.pages.(page) offset in
  Bytes.set t.pages.(page) offset (Char.chr (Char.code b lxor 0xff))

(* Swap two pages in place (displacement attack). *)
let swap_pages t i j =
  check t i;
  check t j;
  let tmp = t.pages.(i) in
  t.pages.(i) <- Bytes.copy t.pages.(j);
  Bytes.blit tmp 0 t.pages.(j) 0 page_size

let snapshot t ~name =
  t.snapshots <-
    (name, Array.map Bytes.copy t.pages)
    :: List.remove_assoc name t.snapshots

(* Rollback attack: silently revert the medium to an earlier state. *)
let rollback t ~name =
  match List.assoc_opt name t.snapshots with
  | None -> Error (Printf.sprintf "no snapshot %S" name)
  | Some saved ->
      Array.iteri (fun i p -> Bytes.blit p 0 t.pages.(i) 0 page_size) saved;
      Ok ()

(* Forking attack: a full replica of the medium the adversary can run
   a second storage-system instance against. *)
let fork t =
  {
    pages = Array.map Bytes.copy t.pages;
    reads = 0;
    writes = 0;
    snapshots = [];
  }
