(* Replay-Protected Memory Block, following the eMMC RPMB protocol
   shape: a small number of 256-byte slots, an authentication key
   programmed once, a monotonic write counter, and HMAC-authenticated
   request/response frames. Only an agent holding the key (the secure
   world's storage TA) can write; replayed or unauthenticated frames
   are rejected. This is the rollback-protection anchor of §4.1. *)

module Fault = Ironsafe_fault.Fault

let slot_size = 256

type frame = {
  slot : int;
  payload : string;
  write_counter : int;
  mac : string; (* HMAC over slot | payload | counter *)
}

type t = {
  slots : Bytes.t array;
  mutable auth_key : string option; (* programmable exactly once *)
  mutable write_counter : int;
  mutable faults : Fault.t;
}

type error =
  | Key_not_programmed
  | Key_already_programmed
  | Bad_mac
  | Counter_mismatch of { expected : int; got : int }
  | Bad_slot of int

let pp_error ppf = function
  | Key_not_programmed -> Fmt.string ppf "authentication key not programmed"
  | Key_already_programmed -> Fmt.string ppf "authentication key already programmed"
  | Bad_mac -> Fmt.string ppf "frame MAC verification failed"
  | Counter_mismatch { expected; got } ->
      Fmt.pf ppf "write counter mismatch (expected %d, got %d)" expected got
  | Bad_slot i -> Fmt.pf ppf "slot %d out of range" i

let create ?(slots = 16) () =
  if slots <= 0 then invalid_arg "Rpmb.create: slots must be positive";
  {
    slots = Array.init slots (fun _ -> Bytes.make slot_size '\000');
    auth_key = None;
    write_counter = 0;
    faults = Fault.none;
  }

let set_faults t plan = t.faults <- plan

let slot_count t = Array.length t.slots

let program_key t key =
  match t.auth_key with
  | Some _ -> Error Key_already_programmed
  | None ->
      t.auth_key <- Some key;
      Ok ()

let frame_bytes ~slot ~payload ~write_counter =
  Printf.sprintf "%04d|%08d|" slot write_counter ^ payload

let mac_frame ~key ~slot ~payload ~write_counter =
  Ironsafe_crypto.Hmac.mac ~key (frame_bytes ~slot ~payload ~write_counter)

let make_write_frame ~key ~slot ~payload ~write_counter =
  let payload =
    if String.length payload > slot_size then
      invalid_arg "Rpmb: payload exceeds slot size"
    else payload ^ String.make (slot_size - String.length payload) '\000'
  in
  { slot; payload; write_counter; mac = mac_frame ~key ~slot ~payload ~write_counter }

let read_counter t = t.write_counter

let write t frame =
  (* injected counter desync: the device counter advances spuriously
     (e.g. a lost response), so the caller's cached counter goes stale
     and the frame below is rejected with [Counter_mismatch]; recovery
     re-reads the counter and rebuilds the frame (Secure_store). *)
  if Fault.enabled t.faults && Fault.fire t.faults Fault.Rpmb_desync then
    t.write_counter <- t.write_counter + 1;
  match t.auth_key with
  | None -> Error Key_not_programmed
  | Some key ->
      if frame.slot < 0 || frame.slot >= Array.length t.slots then
        Error (Bad_slot frame.slot)
      else if
        not
          (Ironsafe_crypto.Constant_time.equal frame.mac
             (mac_frame ~key ~slot:frame.slot ~payload:frame.payload
                ~write_counter:frame.write_counter))
      then Error Bad_mac
      else if frame.write_counter <> t.write_counter then
        (* replayed (stale counter) or skipped frame *)
        Error (Counter_mismatch { expected = t.write_counter; got = frame.write_counter })
      else begin
        Bytes.blit_string frame.payload 0 t.slots.(frame.slot) 0 slot_size;
        t.write_counter <- t.write_counter + 1;
        Ok t.write_counter
      end

(* Authenticated read: device returns data + counter, MACed with a
   caller-supplied nonce so responses cannot be replayed either. *)
let read t ~nonce slot =
  match t.auth_key with
  | None -> Error Key_not_programmed
  | Some key ->
      if slot < 0 || slot >= Array.length t.slots then Error (Bad_slot slot)
      else begin
        let payload = Bytes.to_string t.slots.(slot) in
        let mac =
          Ironsafe_crypto.Hmac.mac ~key
            (nonce ^ frame_bytes ~slot ~payload ~write_counter:t.write_counter)
        in
        Ok { slot; payload; write_counter = t.write_counter; mac }
      end

let verify_read_response ~key ~nonce frame =
  Ironsafe_crypto.Constant_time.equal frame.mac
    (Ironsafe_crypto.Hmac.mac ~key
       (nonce
       ^ frame_bytes ~slot:frame.slot ~payload:frame.payload
           ~write_counter:frame.write_counter))
