(** Untrusted storage medium (4 KiB pages) with an explicit adversarial
    interface for the attacks of the paper's threat model (§3.3). *)

val page_size : int

type t

val create : pages:int -> t
val page_count : t -> int

val set_faults : t -> Ironsafe_fault.Fault.t -> unit
(** Attach a fault plan: subsequent page I/O may suffer injected bit
    rot, torn writes or transient read errors ({!Ironsafe_fault.Fault}).
    Devices start with the no-op plan. *)

val read_page : t -> int -> string
val write_page : t -> int -> string -> unit

val reads : t -> int
(** Pages read since the last counter reset. *)

val writes : t -> int
val reset_counters : t -> unit

(** {2 Adversarial operations} *)

val tamper : t -> page:int -> offset:int -> unit
(** Flip a byte behind the storage engine's back. *)

val swap_pages : t -> int -> int -> unit
(** Displace pages (must be detected by the Merkle tree). *)

val snapshot : t -> name:string -> unit
val rollback : t -> name:string -> (unit, string) result
(** Revert the medium to a snapshot (rollback attack). *)

val fork : t -> t
(** Clone the medium (forking attack). *)
