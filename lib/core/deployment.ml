(* A full IronSafe deployment: the simulated host (x86 + SGX) and
   storage server (ARM + TrustZone), the storage media (plain and
   secure variants of the same database, so all five Table-2
   configurations run over identical data), the trusted monitor, and
   the attestation wiring.

   The testbed defaults mirror §6.1: 10 host cores, 16 storage cores,
   96 MiB usable EPC. *)

module C = Ironsafe_crypto
module Sim = Ironsafe_sim
module Storage = Ironsafe_storage
module Sec = Ironsafe_securestore
module Tee = Ironsafe_tee
module Sql = Ironsafe_sql
module Monitor = Ironsafe_monitor
module Fault = Ironsafe_fault.Fault
module Wal = Ironsafe_wal

type t = {
  params : Sim.Params.t;
  host : Sim.Node.t;
  storage : Sim.Node.t;
  drbg : C.Drbg.t;
  (* storage media *)
  device_plain : Storage.Block_device.t;
  device_secure : Storage.Block_device.t;
  rpmb : Storage.Rpmb.t;
  mutable secure_store : Sec.Secure_store.t;
      (* mutable: {!reboot_secure} swaps in the freshly reopened store *)
  plain_db : Sql.Database.t;
  secure_db : Sql.Database.t;
  (* decrypted-page buffer pools in front of each medium's pager
     ([None] when [pool_frames] = 0: the pagers are not wrapped at all,
     so pool-less runs are byte-identical to the pre-pool system) *)
  pool_frames : int;
  plain_pool : Sql.Bufpool.t option;
  secure_pool : Sql.Bufpool.t option;
  (* vectorized batch capacity for both engines (0 = row-at-a-time);
     mutable so one loaded deployment can be diffed across modes *)
  mutable batch_size : int;
  (* crash-safe write path ([None] when [wal] is off: the secure pager
     is built exactly as before, so read-only runs stay byte-identical
     to WAL-less builds) *)
  device_wal : Storage.Block_device.t option;
  txn_store : Wal.Txn_store.t option;
  (* TEEs *)
  ias : Tee.Sgx.ias;
  sgx : Tee.Sgx.platform;
  host_enclave : Tee.Sgx.enclave;
  tz_device : Tee.Trustzone.device;
  tz_booted : Tee.Trustzone.booted;
  host_image : Tee.Image.t;
  storage_nw_image : Tee.Image.t;
  (* the host engine's session keypair; the public half is embedded in
     its attestation quote and certified by the monitor (Fig. 4a) *)
  host_sk : C.Signature.secret_key;
  host_pk : C.Signature.public_key;
  (* control plane *)
  monitor : Monitor.Trusted_monitor.t;
  (* fault plan shared by every injection site (Fault.none when off) *)
  faults : Fault.t;
}

let host_engine_image ~version =
  Tee.Image.create ~name:"ironsafe-host-engine" ~version
    ~code:(Printf.sprintf "host-engine-binary-v%d" version)

let storage_engine_image ~version =
  Tee.Image.create ~name:"ironsafe-storage-engine" ~version
    ~code:(Printf.sprintf "storage-engine-binary-v%d" version)

let atf_image = Tee.Image.create ~name:"arm-trusted-firmware" ~version:1 ~code:"atf"

let optee_image =
  Tee.Image.create ~name:"optee-3.4+ironsafe-tas" ~version:1
    ~code:"optee secure world with attestation + secure storage TAs"

let exec_mode_of_batch n =
  if n > 0 then Sql.Exec.Batched n else Sql.Exec.Row_at_a_time

(* Copy every table of [src] into [dst] (identical rows, possibly
   different page packing). *)
let copy_database src dst =
  List.iter
    (fun name ->
      let hf = Sql.Catalog.find (Sql.Database.catalog src) name in
      let schema = Sql.Heap_file.schema hf in
      Sql.Database.create_table dst schema;
      let out = Sql.Catalog.find (Sql.Database.catalog dst) name in
      Sql.Heap_file.iter hf ~f:(fun row -> Sql.Heap_file.append out row);
      Sql.Heap_file.flush out)
    (Sql.Catalog.table_names (Sql.Database.catalog src))

let create ?(params = Sim.Params.default) ?(host_cores = 10)
    ?(storage_cores = 16) ?storage_mem_limit ?(host_version = 1)
    ?(storage_version = 1) ?(storage_location = "eu-west")
    ?(host_location = "eu-west") ?(faults = Fault.none) ?(pool_frames = 0)
    ?(crypto_mode = Sec.Secure_store.Cbc) ?(batch_size = 0) ?(wal = false)
    ?(wal_window_ns = 0.0) ?(wal_log_pages = 512) ~seed ~populate () =
  let drbg = C.Drbg.create ~seed in
  let host =
    Sim.Node.create ~cores:host_cores ~params ~name:"host" Sim.Cpu.Host_x86
  in
  let storage =
    Sim.Node.create ~cores:storage_cores ?mem_limit:storage_mem_limit ~params
      ~name:"storage" Sim.Cpu.Storage_arm
  in
  (* 1. plain database on its own medium *)
  let pool base =
    if pool_frames > 0 then begin
      let p = Sql.Bufpool.create ~frames:pool_frames base in
      (Some p, Sql.Bufpool.pager p)
    end
    else (None, base)
  in
  let plain_pool, plain_pager = pool (Sql.Pager.in_memory ()) in
  let plain_db = Sql.Database.create ~pager:plain_pager in
  populate plain_db;
  let plain_pages = Sql.Catalog.total_pages (Sql.Database.catalog plain_db) in
  (* the plain DB also lives on a raw device for hons (NFS) accounting;
     an in-memory pager suffices since we only count logical pages *)
  let device_plain = Storage.Block_device.create ~pages:(max 8 plain_pages) in
  (* 2. secure database: TrustZone device, RPMB, secure store *)
  let tz_device =
    Tee.Trustzone.manufacture ~location:storage_location
      ~device_id:"clearfog-cx-lx2k-0001" drbg
  in
  let storage_nw_image = storage_engine_image ~version:storage_version in
  Tee.Trustzone.provision tz_device [ atf_image; optee_image ];
  let tz_booted =
    match
      Tee.Trustzone.secure_boot tz_device
        ~secure_stages:[ atf_image; optee_image ]
        ~normal_world:storage_nw_image
    with
    | Ok b -> b
    | Error e -> invalid_arg ("Deployment.create: secure boot failed: " ^ e)
  in
  let data_pages = plain_pages + (plain_pages / 4) + 64 in
  let device_secure =
    Storage.Block_device.create
      ~pages:(Sec.Secure_store.device_pages_for ~data_pages)
  in
  let rpmb = Storage.Rpmb.create () in
  let secure_store =
    match
      Sec.Secure_store.initialize ~device:device_secure ~rpmb
        ~hardware_key:(Tee.Trustzone.hardware_key tz_device)
        ~page_mode:crypto_mode ~data_pages ~drbg ()
    with
    | Ok s -> s
    | Error e ->
        invalid_arg
          (Fmt.str "Deployment.create: secure store init failed: %a"
             Sec.Secure_store.pp_error e)
  in
  (* Crash-safe write path: a WAL on its own device plus the
     transactional overlay; the secure pager then routes through the
     overlay so DML is logged and SELECTs can pin snapshots. Off (the
     default) the pager is built exactly as before, so read-only runs
     stay byte-identical to WAL-less builds. *)
  let device_wal, txn_store, secure_pool, secure_pager =
    if not wal then begin
      let secure_pool, secure_pager = pool (Sql.Pager.secure secure_store) in
      (None, None, secure_pool, secure_pager)
    end
    else begin
      let dw = Storage.Block_device.create ~pages:wal_log_pages in
      let w =
        match
          Wal.Wal.create ~device:dw ~rpmb
            ~hardware_key:(Tee.Trustzone.hardware_key tz_device)
            ~drbg ()
        with
        | Ok w -> w
        | Error e ->
            invalid_arg
              (Fmt.str "Deployment.create: wal init failed: %a" Wal.Wal.pp_error
                 e)
      in
      let ts =
        Wal.Txn_store.attach ~store:secure_store ~wal:w ~device:device_secure
          ~window_ns:wal_window_ns ()
      in
      (* the base pager dereferences the overlay's current store, so a
         post-crash reopen is transparent to the SQL layer above *)
      let next = ref 0 in
      let store_err e =
        raise
          (Sql.Pager.Integrity_failure
             (Fmt.str "%a" Sec.Secure_store.pp_error e))
      in
      let base_pager =
        Sql.Pager.make ~capacity:Sec.Secure_store.capacity
          ~read:(fun i ->
            match Sec.Secure_store.read_page (Wal.Txn_store.store ts) i with
            | Ok d -> d
            | Error e -> store_err e)
          ~write:(fun i data ->
            match Sec.Secure_store.write_page (Wal.Txn_store.store ts) i data
            with
            | Ok () -> ()
            | Error e -> store_err e)
          ~allocate:(fun () ->
            let i = !next in
            incr next;
            i)
          ~page_count:(fun () -> !next)
          ()
      in
      (* pool (when present) caches decrypted base pages below the
         overlay; versioned reads never pollute the cache *)
      let secure_pool, base_access = pool base_pager in
      Wal.Txn_store.route_base ts
        ~read:(Sql.Pager.read base_access)
        ~write:(Sql.Pager.write base_access)
        ~flush:(fun () -> Sql.Pager.flush base_access)
        ~cached:(Sql.Pager.cached base_access);
      let overlay_pager =
        Sql.Pager.make ~capacity:Sec.Secure_store.capacity
          ~read:(Wal.Txn_store.pager_read ts)
          ~write:(Wal.Txn_store.pager_write ts)
          ~allocate:(fun () -> Sql.Pager.allocate base_access)
          ~page_count:(fun () -> Sql.Pager.page_count base_access)
          ~cached:(Wal.Txn_store.pager_cached ts)
          ()
      in
      (Some dw, Some ts, secure_pool, overlay_pager)
    end
  in
  let secure_db = Sql.Database.create ~pager:secure_pager in
  copy_database plain_db secure_db;
  (* drain the pools before fault wiring so every setup write reaches
     the media cleanly, and drop the frames so workloads start cold *)
  Option.iter Sql.Bufpool.clear plain_pool;
  Option.iter Sql.Bufpool.clear secure_pool;
  Option.iter Sql.Bufpool.reset_stats plain_pool;
  Option.iter Sql.Bufpool.reset_stats secure_pool;
  Sec.Secure_store.reset_stats secure_store;
  Storage.Block_device.reset_counters device_secure;
  (* population ran in pass-through mode; from here on, writes to the
     secure medium are logged and versioned *)
  Option.iter
    (fun ts ->
      Wal.Txn_store.set_clock ts (fun () ->
          Float.max (Sim.Node.now host) (Sim.Node.now storage));
      Wal.Txn_store.engage ts)
    txn_store;
  (* 3. SGX host *)
  let ias = Tee.Sgx.create_ias () in
  let sgx =
    Tee.Sgx.create_platform ~epc_limit:params.Sim.Params.epc_limit_bytes ~ias
      drbg
  in
  let host_image = host_engine_image ~version:host_version in
  let host_enclave = Tee.Sgx.launch sgx host_image in
  let host_sk, host_pk = C.Signature.generate drbg in
  (* 4. monitor: trust the deployed software, nothing else *)
  let monitor = Monitor.Trusted_monitor.create ~ias ~seed:(seed ^ "|monitor") in
  Monitor.Trusted_monitor.trust_host_image monitor host_image;
  Monitor.Trusted_monitor.trust_storage_device monitor
    ~device_id:(Tee.Trustzone.device_id tz_device)
    ~rotpk:(Tee.Trustzone.rotpk tz_device)
    ~normal_world:storage_nw_image ~version:storage_version;
  ignore host_location;
  (* Wire the fault plan only after population: setup writes are always
     clean, faults hit the workload. Only the secure medium is faulted;
     the plain replica stays pristine so hons doubles as a fault-free
     oracle for the same deployment. *)
  if Fault.enabled faults then begin
    Fault.set_clock faults (fun () ->
        Float.max (Sim.Node.now host) (Sim.Node.now storage));
    Storage.Block_device.set_faults device_secure faults;
    Storage.Rpmb.set_faults rpmb faults;
    Sec.Secure_store.set_faults secure_store faults;
    Option.iter (fun ts -> Wal.Txn_store.set_faults ts faults) txn_store
  end;
  (* batch mode is applied only after population, so data loading runs
     identically whatever executor the workload will use *)
  Sql.Database.set_exec_mode plain_db (exec_mode_of_batch batch_size);
  Sql.Database.set_exec_mode secure_db (exec_mode_of_batch batch_size);
  {
    params;
    host;
    storage;
    drbg;
    device_plain;
    device_secure;
    rpmb;
    secure_store;
    plain_db;
    secure_db;
    pool_frames;
    plain_pool;
    secure_pool;
    batch_size;
    device_wal;
    txn_store;
    ias;
    sgx;
    host_enclave;
    tz_device;
    tz_booted;
    host_image;
    storage_nw_image;
    host_sk;
    host_pk;
    monitor;
    faults;
  }

let faults t = t.faults
let exec_mode t = exec_mode_of_batch t.batch_size
let wal_enabled t = t.txn_store <> None
let txn_store t = t.txn_store

(* Crash-and-reboot of the secure medium: drop every volatile layer
   (pool frames vanish with power — no write-back), reopen the store
   and the WAL from the persistent media, and redo the committed log
   into the base store.

   The two per-boot freshness secrets are reset together here: the
   reopened secure store draws a fresh CTR nonce salt and the reopened
   WAL draws a fresh boot salt while [Txn_store.adopt] bumps the log
   epoch — so no post-recovery page or record encryption ever reuses a
   pre-crash nonce, even at the same (page, version) or (epoch, LSN)
   coordinates. *)
let reboot_secure t =
  match (t.txn_store, t.device_wal) with
  | Some ts, Some dw -> (
      Option.iter Sql.Bufpool.invalidate t.secure_pool;
      let hardware_key = Tee.Trustzone.hardware_key t.tz_device in
      match
        Sec.Secure_store.open_existing
          ~page_mode:(Sec.Secure_store.page_mode t.secure_store)
          ~device:t.device_secure ~rpmb:t.rpmb ~hardware_key
          ~data_pages:(Sec.Secure_store.data_page_count t.secure_store)
          ~drbg:t.drbg ()
      with
      | Error e ->
          Error (Fmt.str "secure store: %a" Sec.Secure_store.pp_error e)
      | Ok store -> (
          if Fault.enabled t.faults then
            Sec.Secure_store.set_faults store t.faults;
          match
            Wal.Wal.recover ~device:dw ~rpmb:t.rpmb ~hardware_key ~drbg:t.drbg
              ()
          with
          | Error e -> Error (Fmt.str "wal: %a" Wal.Wal.pp_error e)
          | Ok (w, records) -> (
              t.secure_store <- store;
              match Wal.Txn_store.adopt ts ~store ~wal:w ~records with
              | Ok () ->
                  (* the SQL layer survives the swap, but its volatile
                     heap cursors and indexes may still carry rows
                     whose commit was lost — re-anchor on the
                     recovered pages *)
                  Sql.Database.reload_storage t.secure_db;
                  Ok ()
              | Error e -> Error (Fmt.str "%a" Wal.Txn_store.pp_error e))))
  | _ -> Error "Deployment.reboot_secure: deployment has no WAL"

(* Switch both engines between row-at-a-time and batched execution on
   the already-loaded data: the differential harness toggles this on
   one deployment so both modes see byte-identical pages. *)
let set_batch_size t n =
  if n < 0 then invalid_arg "Deployment.set_batch_size: negative batch size";
  t.batch_size <- n;
  Sql.Database.set_exec_mode t.plain_db (exec_mode_of_batch n);
  Sql.Database.set_exec_mode t.secure_db (exec_mode_of_batch n)

(* Fault injection on the host quote: a fired [Sgx_quote_reject] flips
   a bit of the quote signature so IAS verification fails once. *)
let corrupt_quote faults (q : Tee.Sgx.quote) =
  let sg = Bytes.of_string q.Tee.Sgx.signature in
  let off = Fault.rand_int faults (Bytes.length sg) in
  Bytes.set sg off (Char.chr (Char.code (Bytes.get sg off) lxor 0x01));
  { q with Tee.Sgx.signature = Bytes.to_string sg }

(* Run both attestation protocols (Fig. 4a, 4b); returns an error if
   either node fails verification. *)
let attest ?(host_location = "eu-west") ?(storage_location = "eu-west") t =
  (* the quote binds the host engine's session public key (Fig. 4a) *)
  match
    Sim.Node.with_span t.host ~name:"attest.host" (fun () ->
        let report = C.Signature.public_key_bytes t.host_pk in
        let quote = Tee.Sgx.generate_quote t.host_enclave ~report_data:report in
        let quote =
          if
            Fault.enabled t.faults
            && Fault.fire t.faults Fault.Sgx_quote_reject
          then corrupt_quote t.faults quote
          else quote
        in
        Monitor.Trusted_monitor.attest_host t.monitor ~quote
          ~location:host_location)
  with
  | Error e -> Error e
  | Ok _ ->
      if Fault.enabled t.faults && Fault.fire t.faults Fault.Tz_world_switch
      then Error "storage: secure world switch failed"
      else (
        match
          Sim.Node.with_span t.storage ~name:"attest.storage" (fun () ->
              let challenge =
                Monitor.Trusted_monitor.fresh_challenge t.monitor
              in
              let response =
                Tee.Trustzone.attest ~faults:t.faults t.tz_booted ~challenge
              in
              Monitor.Trusted_monitor.attest_storage t.monitor ~challenge
                ~response ~location:storage_location)
        with
        | Error e -> Error e
        | Ok _ -> Ok ())

(* Recovery: re-run the attestation protocols with bounded exponential
   backoff. Each retry is a full re-attestation (fresh challenge, fresh
   quote), so a transiently-faulted TEE re-joins the trusted set; a
   persistently failing one exhausts the budget and stays rejected. *)
let attest_reliable ?host_location ?storage_location ?(max_attempts = 5) t =
  let mark = Fault.incident_count t.faults in
  let rec attempt n =
    match attest ?host_location ?storage_location t with
    | Ok () ->
        if n > 0 then Fault.note_recovered_since t.faults mark;
        Ok ()
    | Error e when Fault.enabled t.faults && n + 1 < max_attempts ->
        ignore e;
        Fault.note_retry t.faults ~action:"attest";
        Fault.note_reattestation t.faults;
        let wait =
          Fault.backoff_ns ~base_ns:t.params.Sim.Params.net_latency_ns
            ~attempt:n
        in
        Sim.Node.fixed t.host ~category:"recovery" wait;
        Sim.Node.fixed t.storage ~category:"recovery" wait;
        attempt (n + 1)
    | Error e ->
        Fault.note_rejected t.faults;
        Error e
  in
  attempt 0

(* Bytes the secure pool occupies when fully populated — charged
   against EPC residency where the decrypted cache lives inside the
   host enclave (hos). Zero without a pool. *)
let pool_bytes t =
  match t.secure_pool with
  | Some p -> Sql.Bufpool.capacity_bytes p
  | None -> 0

let reset_counters t =
  (* write back and drop pool frames first (the write-backs bump media
     counters, which the resets below then zero), so each measured run
     starts from a cold, clean cache *)
  Option.iter Sql.Bufpool.clear t.plain_pool;
  Option.iter Sql.Bufpool.clear t.secure_pool;
  Option.iter Sql.Bufpool.reset_stats t.plain_pool;
  Option.iter Sql.Bufpool.reset_stats t.secure_pool;
  (* keep the observability timeline monotonic across the clock reset *)
  Ironsafe_obs.Obs.new_epoch ();
  Sim.Node.reset t.host;
  Sim.Node.reset t.storage;
  Sec.Secure_store.reset_stats t.secure_store;
  Storage.Block_device.reset_counters t.device_secure;
  Storage.Block_device.reset_counters t.device_plain;
  Tee.Sgx.reset_counters t.host_enclave;
  Tee.Trustzone.reset_counters t.tz_device

(* Functional copy with different node shapes (core-count and
   memory-limit sweeps reuse the loaded databases). *)
let with_nodes ?(host_cores = 10) ?(storage_cores = 16) ?storage_mem_limit t =
  {
    t with
    host =
      Sim.Node.create ~cores:host_cores ~params:t.params ~name:"host"
        Sim.Cpu.Host_x86;
    storage =
      Sim.Node.create ~cores:storage_cores ?mem_limit:storage_mem_limit
        ~params:t.params ~name:"storage" Sim.Cpu.Storage_arm;
  }
