(** A full IronSafe deployment: simulated host (x86 + SGX) and storage
    server (ARM + TrustZone), plain and secure replicas of the same
    database (so the five Table-2 configurations run over identical
    data), the trusted monitor, and the attestation wiring. *)

type t = {
  params : Ironsafe_sim.Params.t;
  host : Ironsafe_sim.Node.t;
  storage : Ironsafe_sim.Node.t;
  drbg : Ironsafe_crypto.Drbg.t;
  device_plain : Ironsafe_storage.Block_device.t;
  device_secure : Ironsafe_storage.Block_device.t;
  rpmb : Ironsafe_storage.Rpmb.t;
  mutable secure_store : Ironsafe_securestore.Secure_store.t;
      (** mutable: {!reboot_secure} swaps in the reopened store *)
  plain_db : Ironsafe_sql.Database.t;
  secure_db : Ironsafe_sql.Database.t;
  pool_frames : int;
      (** frames per decrypted-page buffer pool (0 = the pagers are not
          wrapped at all; runs are byte-identical to a pool-less build) *)
  plain_pool : Ironsafe_sql.Bufpool.t option;
  secure_pool : Ironsafe_sql.Bufpool.t option;
  mutable batch_size : int;
      (** vectorized batch capacity for both engines (0 = row-at-a-time);
          change it through {!set_batch_size} so the engines stay in sync *)
  device_wal : Ironsafe_storage.Block_device.t option;
      (** dedicated log device ([None] when the WAL is off) *)
  txn_store : Ironsafe_wal.Txn_store.t option;
      (** transactional overlay the secure pager routes through when
          the WAL is on; [None] leaves the pager byte-identical to a
          WAL-less build *)
  ias : Ironsafe_tee.Sgx.ias;
  sgx : Ironsafe_tee.Sgx.platform;
  host_enclave : Ironsafe_tee.Sgx.enclave;
  tz_device : Ironsafe_tee.Trustzone.device;
  tz_booted : Ironsafe_tee.Trustzone.booted;
  host_image : Ironsafe_tee.Image.t;
  storage_nw_image : Ironsafe_tee.Image.t;
  host_sk : Ironsafe_crypto.Signature.secret_key;
      (** host engine session key; public half certified at attestation *)
  host_pk : Ironsafe_crypto.Signature.public_key;
  monitor : Ironsafe_monitor.Trusted_monitor.t;
  faults : Ironsafe_fault.Fault.t;
      (** shared fault plan ([Fault.none] when injection is off) *)
}

val create :
  ?params:Ironsafe_sim.Params.t ->
  ?host_cores:int ->
  ?storage_cores:int ->
  ?storage_mem_limit:int ->
  ?host_version:int ->
  ?storage_version:int ->
  ?storage_location:string ->
  ?host_location:string ->
  ?faults:Ironsafe_fault.Fault.t ->
  ?pool_frames:int ->
  ?crypto_mode:Ironsafe_securestore.Secure_store.page_mode ->
  ?batch_size:int ->
  ?wal:bool ->
  ?wal_window_ns:float ->
  ?wal_log_pages:int ->
  seed:string ->
  populate:(Ironsafe_sql.Database.t -> unit) ->
  unit ->
  t
(** Build and load a deployment. [populate] fills the plain database;
    its contents are then copied into the freshly initialized secure
    store. Defaults mirror the paper's testbed (§6.1): 10 host cores,
    16 storage cores, 96 MiB usable EPC.

    [pool_frames] (default 0) interposes a {!Ironsafe_sql.Bufpool}
    decrypted-page cache of that many frames in front of {e both}
    media; population runs through the pools, which are then drained
    and dropped so measured workloads start cold.

    A [faults] plan is wired into the secure medium (block device,
    RPMB, secure store) only {e after} population, so setup writes are
    always clean; the plain replica is never faulted and doubles as a
    fault-free oracle over the same deployment.

    [crypto_mode] (default [Cbc]) selects the secure store's page
    cipher mode; [batch_size] (default 0 = row-at-a-time) the engines'
    vectorized batch capacity. Population always runs row-at-a-time so
    loading is identical whatever mode the workload uses.

    [wal] (default false) enables the crash-safe write path: an
    encrypted HMAC-chained log on its own [wal_log_pages]-page device
    (default 512) with its commit horizon anchored in RPMB, and the
    secure pager routed through a {!Ironsafe_wal.Txn_store} overlay.
    [wal_window_ns] (default 0 = synchronous commit) is the
    group-commit window on the virtual clock. Population runs before
    the overlay engages, so loaded bytes are identical either way. *)

val faults : t -> Ironsafe_fault.Fault.t

val wal_enabled : t -> bool
val txn_store : t -> Ironsafe_wal.Txn_store.t option

val reboot_secure : t -> (unit, string) result
(** Crash-and-reboot of the secure medium: drop every volatile layer
    (pool frames are {e not} written back — with power they never
    existed), reopen the secure store and the WAL from the persistent
    media, verify the chained log against the RPMB anchor, and
    redo-apply the committed records. The reopened store draws a fresh
    CTR nonce salt and the WAL a fresh boot salt + epoch in the same
    step, so post-recovery encryption never reuses a pre-crash nonce.
    Existing pager closures (and therefore the SQL layer) survive the
    swap; the SQL layer's volatile heap cursors and indexes are
    re-anchored on the recovered pages
    ({!Ironsafe_sql.Database.reload_storage}). *)

val exec_mode : t -> Ironsafe_sql.Exec.exec_mode
(** The executor mode implied by the current batch size. *)

val set_batch_size : t -> int -> unit
(** Switch both engines between row-at-a-time (0) and batched
    execution ([n > 0]) over the already-loaded data; the differential
    harness toggles this on one deployment so both modes read
    byte-identical pages. *)

val attest :
  ?host_location:string -> ?storage_location:string -> t -> (unit, string) result
(** Run both attestation protocols (Fig. 4a and 4b) against the
    monitor's registries. Under a fault plan, [Sgx_quote_reject] and
    [Tz_ta_crash] garble the respective evidence and [Tz_world_switch]
    aborts the storage protocol. *)

val attest_reliable :
  ?host_location:string ->
  ?storage_location:string ->
  ?max_attempts:int ->
  t ->
  (unit, string) result
(** {!attest} with bounded re-attestation: up to [max_attempts]
    (default 5) full protocol reruns with exponential backoff charged
    to both nodes. Retries happen only under an enabled fault plan —
    a genuine attestation failure (wrong software) is never retried
    away. *)

val pool_bytes : t -> int
(** Capacity of the secure medium's buffer pool in bytes (0 without a
    pool); charged against EPC residency where the decrypted cache
    lives inside the host enclave. *)

val reset_counters : t -> unit
(** Zero all clocks, traces, crypto statistics and TEE counters; pool
    frames are written back and dropped so runs start cold. *)

val with_nodes :
  ?host_cores:int -> ?storage_cores:int -> ?storage_mem_limit:int -> t -> t
(** Functional copy with different node shapes; the loaded databases
    are shared (used by the core-count and memory sweeps). *)

(** {2 Reference software images} *)

val host_engine_image : version:int -> Ironsafe_tee.Image.t
val storage_engine_image : version:int -> Ironsafe_tee.Image.t
val atf_image : Ironsafe_tee.Image.t
val optee_image : Ironsafe_tee.Image.t

val copy_database : Ironsafe_sql.Database.t -> Ironsafe_sql.Database.t -> unit
