(* The storage engine (Fig. 3, normal world): executes offloaded
   per-table scan+filter+project queries near the data and serializes
   the filtered rows for shipping to the host. *)

module Sql = Ironsafe_sql

type offload_result = {
  off_table : string;
  off_rows : Sql.Row.t list;
  off_bytes : int;  (** serialized size of the shipped rows *)
}

type phase = {
  results : offload_result list;
  counters : Sql.Observer.counters;
  bytes_shipped : int;
}

(* Run every offloaded query of [plan] against [db] (the
   storage-resident database, plain or secure), collecting the engine's
   operation counters for cost charging. *)
let run_offload db (plan : Partitioner.plan) : phase =
  let obs, counters = Sql.Observer.counting () in
  Sql.Database.set_observer db obs;
  Fun.protect
    ~finally:(fun () -> Sql.Database.set_observer db Sql.Observer.null)
    (fun () ->
      let results =
        List.map
          (fun (table, sql) ->
            let r = Sql.Database.query db sql in
            let bytes =
              List.fold_left
                (fun acc row -> acc + Sql.Row.encoded_size row)
                0 r.Sql.Exec.rows
            in
            { off_table = table; off_rows = r.Sql.Exec.rows; off_bytes = bytes })
          plan.Partitioner.offload_sql
      in
      {
        results;
        counters;
        bytes_shipped = List.fold_left (fun a r -> a + r.off_bytes) 0 results;
      })
