(** The host engine (Fig. 3): materializes the shipped rows and runs
    the host portion of the query (joins, aggregation, ordering). *)

type phase = {
  result : Ironsafe_sql.Exec.result;
  counters : Ironsafe_sql.Observer.counters;
}

val run_host :
  ?exec_mode:Ironsafe_sql.Exec.exec_mode ->
  storage_catalog:Ironsafe_sql.Catalog.t ->
  Partitioner.plan ->
  Storage_engine.phase ->
  phase
(** [exec_mode] selects row-at-a-time (the default) or vectorized
    batch execution for the host half of the split query. *)
