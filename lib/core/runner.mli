(** Executes statements under a Table-2 configuration: the query really
    runs on the real engine over the real (plain or secure) backend,
    and the simulated clocks are charged from measured operation counts
    (rows, pages, crypto ops, bytes shipped, enclave transitions, EPC
    pressure, memory spills). *)

type metrics = {
  config : Config.t;
  end_to_end_ns : float;  (** simulated end-to-end latency *)
  host_breakdown : (string * float) list;  (** per-category ns *)
  storage_breakdown : (string * float) list;
  bytes_shipped : int;  (** host<->storage data-path bytes *)
  pages_scanned : int;  (** storage-medium data pages read (pool misses) *)
  page_hits : int;
      (** buffer-pool hits: reads served from the decrypted-page cache,
          skipping device I/O and (on the secure medium) crypto *)
  host_rows : int;  (** row-operator steps on the host *)
  storage_rows : int;
  result : Ironsafe_sql.Exec.result;  (** identical across configs *)
  profile : Ironsafe_obs.Obs.profile option;
      (** span tree + metrics snapshot, when tracing was enabled *)
}

val run_stmt :
  ?reset:bool ->
  ?project:bool ->
  Deployment.t ->
  Config.t ->
  Ironsafe_sql.Ast.stmt ->
  metrics
(** [reset] (default true) zeroes all node clocks/counters first (the
    engine passes [false] after charging control-path costs);
    [project] is forwarded to the partitioner (projection ablation). *)

val run_query : Deployment.t -> Config.t -> string -> metrics

(** {2 Fault-aware execution}

    {!run_stmt_outcome} wraps {!run_stmt} with the recovery layer: TEE
    faults scheduled by the deployment's plan are injected before the
    query (enclave abort → restart + re-attestation; EPC storm and
    world-switch failures → charged degradation), and integrity
    failures that survive the secure store's own re-read budget surface
    as a typed rejection naming the faulted site. With faults disabled
    it is exactly [Ok (run_stmt ...)]. *)

type violation = {
  v_site : string;  (** dotted fault-site name, e.g. ["device.bit_rot"] *)
  v_detail : string;
}

val pp_violation : Format.formatter -> violation -> unit

type outcome =
  | Ok of metrics  (** fault-free execution *)
  | Degraded of metrics * Ironsafe_fault.Fault.incident list
      (** correct result, but faults were injected (and recovered from)
          during this query *)
  | Rejected of violation
      (** the query was refused rather than answered wrongly *)
  | Crashed of violation
      (** a WAL crash fault fired mid-statement (power loss): the
          statement did not complete — not even partially, the log
          protocol guarantees — and the deployment must go through
          {!Deployment.reboot_secure} before serving again *)

val run_stmt_outcome :
  ?reset:bool ->
  ?project:bool ->
  Deployment.t ->
  Config.t ->
  Ironsafe_sql.Ast.stmt ->
  outcome

val run_query_outcome : Deployment.t -> Config.t -> string -> outcome

val total : (string * float) list -> float
(** Sum of a breakdown. *)
