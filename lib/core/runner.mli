(** Executes statements under a Table-2 configuration: the query really
    runs on the real engine over the real (plain or secure) backend,
    and the simulated clocks are charged from measured operation counts
    (rows, pages, crypto ops, bytes shipped, enclave transitions, EPC
    pressure, memory spills). *)

type metrics = {
  config : Config.t;
  end_to_end_ns : float;  (** simulated end-to-end latency *)
  host_breakdown : (string * float) list;  (** per-category ns *)
  storage_breakdown : (string * float) list;
  bytes_shipped : int;  (** host<->storage data-path bytes *)
  pages_scanned : int;  (** storage-medium data pages read (pool misses) *)
  page_hits : int;
      (** buffer-pool hits: reads served from the decrypted-page cache,
          skipping device I/O and (on the secure medium) crypto *)
  host_rows : int;  (** row-operator steps on the host *)
  storage_rows : int;
  result : Ironsafe_sql.Exec.result;  (** identical across configs *)
  profile : Ironsafe_obs.Obs.profile option;
      (** span tree + metrics snapshot, when tracing was enabled *)
}

val run_stmt :
  ?reset:bool ->
  ?project:bool ->
  Deployment.t ->
  Config.t ->
  Ironsafe_sql.Ast.stmt ->
  metrics
(** [reset] (default true) zeroes all node clocks/counters first (the
    engine passes [false] after charging control-path costs);
    [project] is forwarded to the partitioner (projection ablation). *)

val run_query : Deployment.t -> Config.t -> string -> metrics

(** {2 Fault-aware execution}

    {!run_stmt_outcome} wraps {!run_stmt} with the recovery layer: TEE
    faults scheduled by the deployment's plan are injected before the
    query (enclave abort → restart + re-attestation; EPC storm and
    world-switch failures → charged degradation), and integrity
    failures that survive the secure store's own re-read budget surface
    as a typed rejection naming the faulted site. With faults disabled
    it is exactly [Ok (run_stmt ...)]. *)

type violation = {
  v_site : string;  (** dotted fault-site name, e.g. ["device.bit_rot"] *)
  v_detail : string;
}

val pp_violation : Format.formatter -> violation -> unit

type outcome =
  | Ok of metrics  (** fault-free execution *)
  | Degraded of metrics * Ironsafe_fault.Fault.incident list
      (** correct result, but faults were injected (and recovered from)
          during this query *)
  | Rejected of violation
      (** the query was refused rather than answered wrongly *)
  | Crashed of violation
      (** a WAL crash fault fired mid-statement (power loss): the
          statement did not complete — not even partially, the log
          protocol guarantees — and the deployment must go through
          {!Deployment.reboot_secure} before serving again *)

val run_stmt_outcome :
  ?reset:bool ->
  ?project:bool ->
  Deployment.t ->
  Config.t ->
  Ironsafe_sql.Ast.stmt ->
  outcome

val run_query_outcome : Deployment.t -> Config.t -> string -> outcome

val total : (string * float) list -> float
(** Sum of a breakdown. *)

(** {2 Cost-charging primitives}

    The per-configuration charging recipes above are built from these
    helpers; the cluster runner ({!Ironsafe_cluster.Cluster}) reuses
    them so an N-shard execution charges the same cost categories with
    the same constants as the single-node arms. *)

val with_counters :
  Ironsafe_sql.Database.t ->
  (unit -> 'a) ->
  'a * Ironsafe_sql.Observer.counters
(** Run a thunk with a fresh counting observer installed on [db]
    (restored to {!Ironsafe_sql.Observer.null} afterwards). *)

val snapshot_secure_stats :
  Ironsafe_securestore.Secure_store.t -> int * int * int * int
(** (decrypts, MAC checks, Merkle hashes, RPMB accesses) since the last
    reset. *)

val charge_crypto :
  ?parallel:bool ->
  ?lanes:int ->
  Ironsafe_sim.Node.t ->
  Ironsafe_sim.Params.t ->
  decrypts:int ->
  macs:int ->
  merkle:int ->
  rpmb:int ->
  unit

val charge_transfer :
  Ironsafe_sim.Params.t ->
  Ironsafe_sim.Node.t ->
  Ironsafe_sim.Node.t ->
  secure:bool ->
  bytes:int ->
  messages:int ->
  unit
(** Charge a bulk transfer to both ends and synchronize their clocks. *)

val charge_io : Ironsafe_sim.Node.t -> Ironsafe_sim.Params.t -> int -> unit
val charge_cache_hits : Ironsafe_sim.Node.t -> Ironsafe_sim.Params.t -> int -> unit
val charge_compute : ?batches:int -> Ironsafe_sim.Node.t -> rows:int -> unit
val charge_memory : Ironsafe_sim.Node.t -> category:string -> int -> unit

val charge_enclave_transitions :
  Ironsafe_sim.Node.t -> Ironsafe_sim.Params.t -> int -> unit

val charge_epc :
  Ironsafe_sim.Node.t ->
  Ironsafe_tee.Sgx.enclave ->
  Ironsafe_sim.Params.t ->
  working_set:int ->
  accesses:int ->
  unit

val merkle_bytes : Ironsafe_securestore.Secure_store.t -> int
(** Host-resident Merkle footprint when the host verifies freshness. *)

val message_count : Ironsafe_sim.Params.t -> int -> int
(** Number of network messages a byte count batches into. *)

val with_offload :
  Ironsafe_sim.Node.t -> Ironsafe_sim.Node.t -> (unit -> 'a) -> 'a
(** Wrap storage-side work in a [storage.exec] span on the second
    node's lane, flow-linked to the first node's open query span. *)

val violation_of_faults :
  Ironsafe_fault.Fault.t -> default:string -> detail:string -> violation
(** Name the violation after the last unrecovered incident (or
    [default] when the plan recorded none). *)
