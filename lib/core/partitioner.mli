(** Query partitioning for computational storage: per-table
    scan+filter+project queries run near the data; the host re-runs the
    original statement over the shipped projections.

    Tables referenced anywhere in the statement (including subqueries
    and derived tables) ship the union of the columns their occurrences
    reference; a table ships filtered rows only when every occurrence
    carries an offloadable single-table filter (their OR is offloaded). *)

type shipped_table = {
  table : string;
  columns : string list;  (** projected subset, in schema order *)
  predicate : Ironsafe_sql.Ast.expr option;  (** offloaded filter *)
}

type plan = {
  shipped : shipped_table list;
  host_stmt : Ironsafe_sql.Ast.stmt;  (** runs on the host, unchanged *)
  offload_sql : (string * string) list;  (** table, storage-side SQL *)
}

val split :
  ?project:bool -> Ironsafe_sql.Catalog.t -> Ironsafe_sql.Ast.stmt -> plan
(** [project] (default true) ships only referenced columns; [false]
    ships whole rows (the projection-pushdown ablation). *)

val sql_of_expr : Ironsafe_sql.Ast.expr -> string
(** Render an offloadable expression back to SQL.
    @raise Invalid_argument on subqueries/aggregates. *)

val describe : plan -> string
(** Human-readable EXPLAIN rendering of the split. *)
