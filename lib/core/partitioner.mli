(** Query partitioning for computational storage: per-table
    scan+filter+project queries run near the data; the host re-runs the
    original statement over the shipped projections.

    Tables referenced anywhere in the statement (including subqueries
    and derived tables) ship the union of the columns their occurrences
    reference; a table ships filtered rows only when every occurrence
    carries an offloadable single-table filter (their OR is offloaded). *)

type shipped_table = {
  table : string;
  columns : string list;  (** projected subset, in schema order *)
  predicate : Ironsafe_sql.Ast.expr option;  (** offloaded filter *)
}

type plan = {
  shipped : shipped_table list;
  host_stmt : Ironsafe_sql.Ast.stmt;  (** runs on the host, unchanged *)
  offload_sql : (string * string) list;  (** table, storage-side SQL *)
}

val split :
  ?project:bool -> Ironsafe_sql.Catalog.t -> Ironsafe_sql.Ast.stmt -> plan
(** [project] (default true) ships only referenced columns; [false]
    ships whole rows (the projection-pushdown ablation). *)

val sql_of_expr : Ironsafe_sql.Ast.expr -> string
(** Render an offloadable expression back to SQL.
    @raise Invalid_argument on subqueries/aggregates. *)

val describe : plan -> string
(** Human-readable EXPLAIN rendering of the split. *)

(** {2 Partition schemes (cluster sharding)} *)

type scheme = Hash | Range

val scheme_name : scheme -> string
val scheme_of_string : string -> scheme option

val partition_key_index : Ironsafe_sql.Schema.t -> int option
(** Index of the table's partition key: its first integer column, or
    [None] when the schema has no integer column (rows then partition
    by insertion index). *)

val row_key : key_index:int option -> ord:int -> Ironsafe_sql.Row.t -> int
(** The row's partition key value ([ord], its insertion index, when the
    table has no integer key). *)

val shard_of_key : scheme -> shards:int -> lo:int -> hi:int -> int -> int
(** Deterministic key -> shard assignment. [Hash] mixes the key through
    one splitmix64 step; [Range] cuts the [\[lo, hi\]] key span into
    [shards] contiguous buckets (keys outside the span clamp to the
    edge buckets). [shards <= 1] always yields shard 0. *)
