(** The end-to-end IronSafe engine (§3.1 workflow): clients submit SQL
    plus policies; the trusted monitor attests, authorizes, rewrites
    and issues session keys; the runner executes under the chosen
    configuration; results come back with a signed compliance proof. *)

type t

type response = {
  resp_result : Ironsafe_sql.Exec.result;
  resp_proof : Ironsafe_monitor.Trusted_monitor.proof;
  resp_result_signature : string;
      (** host-engine signature over the result, under the session key
          the monitor certified at attestation (Fig. 4a) *)
  resp_metrics : Runner.metrics;
  resp_rewritten_sql : string option;
}

val create : ?database:string -> Deployment.t -> t
val monitor : t -> Ironsafe_monitor.Trusted_monitor.t
val deployment : t -> Deployment.t

val register_client :
  t ->
  label:string ->
  ?reuse_bit:int ->
  unit ->
  Ironsafe_crypto.Signature.secret_key * Ironsafe_crypto.Signature.public_key
(** Register a client identity with the monitor; [reuse_bit] is the
    client's position in the reuseMap bitmap (§4.3 anti-pattern #2). *)

val set_access_policy : t -> string -> unit
(** Parse and install the data producer's access policy.
    @raise Ironsafe_policy.Policy_parser.Policy_error on bad source. *)

val submit :
  ?exec_policy:string ->
  ?config:Config.t ->
  t ->
  client:string ->
  sql:string ->
  unit ->
  (response, string) result
(** Run the full workflow. Attests lazily on first use; downgrades a
    split configuration to host-only when the execution policy rules
    out the storage node. DML statements run on the authoritative
    secure database and are mirrored to the plain replica. *)

val verify_response : t -> response -> sql:string -> bool
(** Client-side verification against the monitor's public key alone:
    the compliance proof, the monitor-issued certificate over the host
    engine's session key, and the host's signature over the result. *)
