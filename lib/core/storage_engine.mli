(** The storage engine (Fig. 3): runs offloaded scan+filter+project
    queries near the data. *)

type offload_result = {
  off_table : string;
  off_rows : Ironsafe_sql.Row.t list;
  off_bytes : int;
}

type phase = {
  results : offload_result list;
  counters : Ironsafe_sql.Observer.counters;
  bytes_shipped : int;
}

val run_offload : Ironsafe_sql.Database.t -> Partitioner.plan -> phase
