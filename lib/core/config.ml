(* The five system configurations of Table 2. *)

type t =
  | Hons  (** host-only, non-secure (NFS to storage server) *)
  | Hos  (** host-only, secure: SGX enclave + secure storage *)
  | Vcs  (** vanilla computational storage: split, non-secure *)
  | Scs  (** IronSafe: split execution, secure (the paper's system) *)
  | Sos  (** storage-only, secure: whole query on the ARM node *)

let all = [ Hons; Hos; Vcs; Scs; Sos ]

let abbrev = function
  | Hons -> "hons"
  | Hos -> "hos"
  | Vcs -> "vcs"
  | Scs -> "scs"
  | Sos -> "sos"

let description = function
  | Hons -> "Host-only non-secure"
  | Hos -> "Host-only secure"
  | Vcs -> "Vanilla-CS (non-secure split)"
  | Scs -> "IronSafe (secure split)"
  | Sos -> "Storage-only secure"

let split_execution = function
  | Vcs | Scs -> true
  | Hons | Hos | Sos -> false

let secure = function Hos | Scs | Sos -> true | Hons | Vcs -> false

let of_string s =
  match String.lowercase_ascii s with
  | "hons" -> Some Hons
  | "hos" -> Some Hos
  | "vcs" -> Some Vcs
  | "scs" -> Some Scs
  | "sos" -> Some Sos
  | _ -> None

let pp ppf c = Fmt.string ppf (abbrev c)
