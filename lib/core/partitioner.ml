(* Query partitioning for computational storage (§5, "CSA database
   engine"): the storage side runs per-table scan+filter+project
   queries near the data; the host side runs the rest of the query
   (joins, group-bys, aggregations) over the shipped, already-filtered
   rows.

   The split is computed from the AST:
   - every base-table occurrence anywhere in the statement (including
     subqueries and derived tables) contributes the columns it
     references to that table's shipped projection;
   - a WHERE conjunct whose columns all belong to one occurrence and
     that contains no subquery is offloadable; a table referenced by
     several occurrences ships rows satisfying the OR of the
     occurrences' filters (or everything, if any occurrence is
     unfiltered) so each occurrence still sees all the rows it needs;
   - the host statement is the original query, re-run over the shipped
     tables (re-evaluating pushed-down filters on the host is sound:
     they are true on every shipped row).

   The paper notes its partitioning is deliberately simple (adapted
   MySQL partitioner with heuristics, §8 Limitations); this module
   mirrors that scope. *)

module Sql = Ironsafe_sql
open Sql.Ast

module StringSet = Set.Make (String)

type shipped_table = {
  table : string;
  columns : string list;  (** subset of the schema, in schema order *)
  predicate : expr option;  (** offloaded filter, if every use has one *)
}

type plan = {
  shipped : shipped_table list;
  host_stmt : stmt;
  offload_sql : (string * string) list;  (** table -> storage-side SQL *)
}

(* scope: bindings visible at one query level *)
type binding = { b_name : string; b_table : string; b_schema : Sql.Schema.t }

type collector = {
  catalog : Sql.Catalog.t;
  needed : (string, StringSet.t ref) Hashtbl.t; (* table -> columns *)
  (* per-table list of per-occurrence filters; None = unfiltered use *)
  filters : (string, expr option list ref) Hashtbl.t;
}

let needed_set c table =
  match Hashtbl.find_opt c.needed table with
  | Some s -> s
  | None ->
      let s = ref StringSet.empty in
      Hashtbl.replace c.needed table s;
      s

let filters_list c table =
  match Hashtbl.find_opt c.filters table with
  | Some l -> l
  | None ->
      let l = ref [] in
      Hashtbl.replace c.filters table l;
      l

let need_column c binding col =
  let s = needed_set c binding.b_table in
  s := StringSet.add col !s

let need_all_columns c binding =
  let s = needed_set c binding.b_table in
  List.iter (fun col -> s := StringSet.add col !s)
    (Sql.Schema.column_names binding.b_schema)

(* resolve a column against a scope stack (innermost first); returns
   the binding it belongs to *)
let resolve_col scopes qualifier name =
  let name = String.lowercase_ascii name in
  let qualifier = Option.map String.lowercase_ascii qualifier in
  let in_scope bindings =
    List.find_opt
      (fun b ->
        (match qualifier with None -> true | Some q -> q = b.b_name)
        && Option.is_some (Sql.Schema.column_index b.b_schema name))
      bindings
  in
  let rec go = function
    | [] -> None
    | scope :: rest -> ( match in_scope scope with Some b -> Some b | None -> go rest)
  in
  go scopes

(* bindings of the base tables in one FROM clause (derived tables are
   walked separately and contribute no binding here — their output
   columns are not base-table columns) *)
let rec bindings_of_from_item c acc = function
  | Table { table; alias } -> (
      match Sql.Catalog.find_opt c.catalog table with
      | None -> acc (* unknown table: host-side temp, nothing to ship *)
      | Some hf ->
          {
            b_name = String.lowercase_ascii (Option.value ~default:table alias);
            b_table = String.lowercase_ascii table;
            b_schema = Sql.Heap_file.schema hf;
          }
          :: acc)
  | Derived _ -> acc
  | Join { left; right; _ } ->
      bindings_of_from_item c (bindings_of_from_item c acc left) right

(* Record column usage of an expression; [exists_context] relaxes Star. *)
let rec walk_expr c scopes e =
  match e with
  | Lit _ | Interval _ -> ()
  | Col { qualifier; name } -> (
      match resolve_col scopes qualifier name with
      | Some b -> need_column c b (String.lowercase_ascii name)
      | None -> ())
  | Unary (_, x) | Extract { arg = x; _ } | Is_null { subject = x; _ } ->
      walk_expr c scopes x
  | Binop (_, a, b) ->
      walk_expr c scopes a;
      walk_expr c scopes b
  | Like { subject; _ } -> walk_expr c scopes subject
  | Between { subject; low; high; _ } ->
      walk_expr c scopes subject;
      walk_expr c scopes low;
      walk_expr c scopes high
  | In_list { subject; items; _ } ->
      walk_expr c scopes subject;
      List.iter (walk_expr c scopes) items
  | In_select { subject; select; _ } ->
      walk_expr c scopes subject;
      walk_select c scopes ~exists_context:false select
  | Exists { select; _ } -> walk_select c scopes ~exists_context:true select
  | Scalar_select select -> walk_select c scopes ~exists_context:false select
  | Case { branches; else_ } ->
      List.iter
        (fun (cond, v) ->
          walk_expr c scopes cond;
          walk_expr c scopes v)
        branches;
      Option.iter (walk_expr c scopes) else_
  | Substring { subject; start; len } ->
      walk_expr c scopes subject;
      walk_expr c scopes start;
      Option.iter (walk_expr c scopes) len
  | Agg { arg; _ } -> Option.iter (walk_expr c scopes) arg

and walk_select c outer_scopes ~exists_context (q : select) =
  let local = List.fold_left (bindings_of_from_item c) [] q.from in
  (* every referenced table must ship, even when no column of it is
     projected (count-star-only queries) *)
  List.iter (fun b -> ignore (needed_set c b.b_table)) local;
  let scopes = local :: outer_scopes in
  (* derived tables and JOIN trees recurse *)
  let rec walk_from = function
    | Table _ -> ()
    | Derived { select; _ } ->
        walk_select c outer_scopes ~exists_context:false select
    | Join { left; right; on; _ } ->
        walk_from left;
        walk_from right;
        walk_expr c scopes on
  in
  List.iter walk_from q.from;
  (* projection: Star under EXISTS needs no columns *)
  List.iter
    (function
      | Star -> if not exists_context then List.iter (need_all_columns c) local
      | Item (e, _) -> walk_expr c scopes e)
    q.items;
  Option.iter (walk_expr c scopes) q.where;
  List.iter (walk_expr c scopes) q.group_by;
  Option.iter (walk_expr c scopes) q.having;
  List.iter (fun (e, _) -> walk_expr c scopes e) q.order_by;
  (* classify WHERE conjuncts per binding *)
  let conjs = Option.fold ~none:[] ~some:conjuncts q.where in
  let single_of conj =
    if contains_subquery conj then None
    else begin
      let cols = columns_of_expr [] conj in
      if cols = [] then None
      else begin
        let owners =
          List.map (fun (q, n) -> resolve_col scopes q n) cols
        in
        if List.exists Option.is_none owners then None
        else begin
          match List.sort_uniq compare (List.filter_map Fun.id owners) with
          | [ b ]
            when List.exists
                   (fun x -> x.b_name = b.b_name && x.b_table = b.b_table)
                   local ->
              Some b
          | _ -> None
        end
      end
    end
  in
  (* group per local binding *)
  let per_binding = Hashtbl.create 8 in
  List.iter
    (fun conj ->
      match single_of conj with
      | Some b ->
          let l =
            Option.value ~default:[] (Hashtbl.find_opt per_binding b.b_name)
          in
          Hashtbl.replace per_binding b.b_name (conj :: l)
      | None -> ())
    conjs;
  (* every local base-table binding registers a filter entry (None when
     it has no offloadable conjunct) *)
  List.iter
    (fun b ->
      let fl = filters_list c b.b_table in
      match Hashtbl.find_opt per_binding b.b_name with
      | Some (_ :: _ as cs) -> fl := conjoin cs :: !fl
      | Some [] | None -> fl := None :: !fl)
    local

(* strip alias qualifiers: the offloaded per-table query scans a single
   table, where qualified references (l1.l_quantity) are meaningless *)
let rec strip_qualifiers e =
  match e with
  | Col { name; _ } -> Col { qualifier = None; name }
  | Lit _ | Interval _ -> e
  | Unary (op, x) -> Unary (op, strip_qualifiers x)
  | Binop (op, a, b) -> Binop (op, strip_qualifiers a, strip_qualifiers b)
  | Like l -> Like { l with subject = strip_qualifiers l.subject }
  | Between b ->
      Between
        {
          b with
          subject = strip_qualifiers b.subject;
          low = strip_qualifiers b.low;
          high = strip_qualifiers b.high;
        }
  | In_list i ->
      In_list
        {
          i with
          subject = strip_qualifiers i.subject;
          items = List.map strip_qualifiers i.items;
        }
  | Case { branches; else_ } ->
      Case
        {
          branches =
            List.map (fun (c, v) -> (strip_qualifiers c, strip_qualifiers v)) branches;
          else_ = Option.map strip_qualifiers else_;
        }
  | Extract x -> Extract { x with arg = strip_qualifiers x.arg }
  | Is_null i -> Is_null { i with subject = strip_qualifiers i.subject }
  | Substring x ->
      Substring
        {
          subject = strip_qualifiers x.subject;
          start = strip_qualifiers x.start;
          len = Option.map strip_qualifiers x.len;
        }
  | In_select _ | Exists _ | Scalar_select _ | Agg _ -> e

(* render an expression back to storage-side SQL *)
let rec sql_of_expr e =
  let bin op a b = Printf.sprintf "(%s %s %s)" (sql_of_expr a) op (sql_of_expr b) in
  match e with
  | Lit (Sql.Value.Str s) ->
      "'" ^ String.concat "''" (String.split_on_char '\'' s) ^ "'"
  | Lit (Sql.Value.Date d) -> Printf.sprintf "date '%s'" (Sql.Date.to_string d)
  | Lit (Sql.Value.Int i) -> string_of_int i
  | Lit (Sql.Value.Float f) -> Printf.sprintf "%.17g" f
  | Lit (Sql.Value.Bool b) -> string_of_bool b
  | Lit Sql.Value.Null -> "null"
  | Col { qualifier; name } ->
      (match qualifier with Some q -> q ^ "." | None -> "") ^ name
  | Unary (`Not, x) -> Printf.sprintf "(not %s)" (sql_of_expr x)
  | Unary (`Neg, x) -> Printf.sprintf "(- %s)" (sql_of_expr x)
  | Binop (Add, a, b) -> bin "+" a b
  | Binop (Sub, a, b) -> bin "-" a b
  | Binop (Mul, a, b) -> bin "*" a b
  | Binop (Div, a, b) -> bin "/" a b
  | Binop (Eq, a, b) -> bin "=" a b
  | Binop (Neq, a, b) -> bin "<>" a b
  | Binop (Lt, a, b) -> bin "<" a b
  | Binop (Le, a, b) -> bin "<=" a b
  | Binop (Gt, a, b) -> bin ">" a b
  | Binop (Ge, a, b) -> bin ">=" a b
  | Binop (And, a, b) -> bin "and" a b
  | Binop (Or, a, b) -> bin "or" a b
  | Like { negated; subject; pattern } ->
      Printf.sprintf "(%s %slike '%s')" (sql_of_expr subject)
        (if negated then "not " else "")
        pattern
  | Between { negated; subject; low; high } ->
      Printf.sprintf "(%s %sbetween %s and %s)" (sql_of_expr subject)
        (if negated then "not " else "")
        (sql_of_expr low) (sql_of_expr high)
  | In_list { negated; subject; items } ->
      Printf.sprintf "(%s %sin (%s))" (sql_of_expr subject)
        (if negated then "not " else "")
        (String.concat ", " (List.map sql_of_expr items))
  | Case { branches; else_ } ->
      Printf.sprintf "case %s%s end"
        (String.concat " "
           (List.map
              (fun (c, v) ->
                Printf.sprintf "when %s then %s" (sql_of_expr c) (sql_of_expr v))
              branches))
        (match else_ with
        | Some e -> " else " ^ sql_of_expr e
        | None -> "")
  | Extract { field; arg } ->
      Printf.sprintf "extract(%s from %s)"
        (match field with Year -> "year" | Month -> "month" | Day -> "day")
        (sql_of_expr arg)
  | Interval { n; unit_ } ->
      Printf.sprintf "interval '%d' %s" n
        (match unit_ with Day -> "day" | Month -> "month" | Year -> "year")
  | Is_null { negated; subject } ->
      Printf.sprintf "(%s is %snull)" (sql_of_expr subject)
        (if negated then "not " else "")
  | Substring { subject; start; len } ->
      Printf.sprintf "substring(%s from %s%s)" (sql_of_expr subject)
        (sql_of_expr start)
        (match len with
        | Some l -> " for " ^ sql_of_expr l
        | None -> "")
  | In_select _ | Exists _ | Scalar_select _ | Agg _ ->
      invalid_arg "Partitioner.sql_of_expr: not offloadable"

let split ?(project = true) catalog stmt : plan =
  let c = { catalog; needed = Hashtbl.create 8; filters = Hashtbl.create 8 } in
  (match stmt with
  | Select q -> walk_select c [] ~exists_context:false q
  | Insert _ | Update _ | Delete _ | Create_table _ | Drop_table _
  | Create_index _ | Drop_index _ ->
      ());
  let shipped =
    Hashtbl.fold
      (fun table cols acc ->
        match Sql.Catalog.find_opt catalog table with
        | None -> acc
        | Some hf ->
            let schema = Sql.Heap_file.schema hf in
            let columns =
              if project then
                List.filter
                  (fun n -> StringSet.mem n !cols)
                  (Sql.Schema.column_names schema)
              else Sql.Schema.column_names schema
            in
            let occurrence_filters =
              Option.fold ~none:[] ~some:( ! ) (Hashtbl.find_opt c.filters table)
            in
            let predicate =
              (* OR of the per-occurrence filters; any unfiltered
                 occurrence means the whole table must ship *)
              if
                occurrence_filters = []
                || List.exists Option.is_none occurrence_filters
              then None
              else begin
                match
                  List.map strip_qualifiers
                    (List.filter_map Fun.id occurrence_filters)
                with
                | [] -> None
                | f :: rest ->
                    Some (List.fold_left (fun acc x -> Binop (Or, acc, x)) f rest)
              end
            in
            { table; columns; predicate } :: acc)
      c.needed []
    |> List.sort (fun a b -> compare a.table b.table)
  in
  let offload_sql =
    List.map
      (fun st ->
        let proj =
          match st.columns with [] -> "1" | cols -> String.concat ", " cols
        in
        let where =
          match st.predicate with
          | None -> ""
          | Some p -> " where " ^ sql_of_expr p
        in
        (st.table, Printf.sprintf "select %s from %s%s" proj st.table where))
      shipped
  in
  Ironsafe_obs.Obs.count ~scope:"partitioner" "plans";
  Ironsafe_obs.Obs.count ~scope:"partitioner"
    ~n:(List.length offload_sql)
    "offloaded_subqueries";
  Ironsafe_obs.Obs.count ~scope:"partitioner"
    ~n:(List.length (List.filter (fun s -> s.predicate <> None) shipped))
    "pushed_down_filters";
  { shipped; host_stmt = stmt; offload_sql }

(* -- Partition schemes (cluster sharding) ---------------------------- *)

(* Deterministic row -> shard assignment for the multi-node cluster
   (lib/cluster). A table's partition key is its first integer column
   (TPC-H tables all lead with an integer primary key); tables without
   one fall back to the row's insertion index, which is equally
   deterministic. [Hash] spreads keys with the shared splitmix64 mixer
   (same function family as the seeded fault/workload streams), so
   co-keyed rows land together while consecutive keys spread. [Range]
   cuts the observed key span into [shards] contiguous buckets. *)

type scheme = Hash | Range

let scheme_name = function Hash -> "hash" | Range -> "range"

let scheme_of_string s =
  match String.lowercase_ascii s with
  | "hash" -> Some Hash
  | "range" -> Some Range
  | _ -> None

let partition_key_index schema =
  let cols = Sql.Schema.columns schema in
  let rec go i =
    if i >= Array.length cols then None
    else if cols.(i).Sql.Schema.col_ty = Sql.Value.TInt then Some i
    else go (i + 1)
  in
  go 0

let row_key ~key_index ~ord (row : Sql.Row.t) =
  match key_index with
  | Some i when i < Array.length row -> (
      match row.(i) with Sql.Value.Int k -> k | _ -> ord)
  | _ -> ord

let shard_of_key scheme ~shards ~lo ~hi key =
  if shards <= 1 then 0
  else
    match scheme with
    | Hash ->
        (* one splitmix64 step seeded by the key: a pure, stateless
           finalizer — the same key always lands on the same shard *)
        (* drop the top two bits so the value fits OCaml's 63-bit
           native int and the bucket index is always non-negative *)
        let h =
          Int64.to_int
            (Int64.shift_right_logical
               (Ironsafe_sim.Prng.next_u64
                  (Ironsafe_sim.Prng.create ~seed:key))
               2)
        in
        h mod shards
    | Range ->
        if hi <= lo then 0
        else begin
          let span = hi - lo + 1 in
          let k = max lo (min hi key) in
          min (shards - 1) ((k - lo) * shards / span)
        end

(* Human-readable description of a split plan (EXPLAIN). *)
let describe plan =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "split plan:\n";
  List.iter
    (fun st ->
      Buffer.add_string buf
        (Printf.sprintf "  storage: %s  [%d column%s%s]\n"
           (List.assoc st.table plan.offload_sql)
           (List.length st.columns)
           (if List.length st.columns = 1 then "" else "s")
           (match st.predicate with
           | Some _ -> ", filtered near data"
           | None -> ", full table ships")))
    plan.shipped;
  Buffer.add_string buf "  host: original statement over the shipped tables\n";
  Buffer.contents buf
