(* End-to-end IronSafe engine: the §3.1 workflow.

   1. the client submits a query plus execution policy over TLS;
   2. the host consults the trusted monitor, which checks the client's
      permissions against the data producer's access policy, checks the
      execution policy against the attested nodes, rewrites the query
      to be policy compliant, and issues a session key;
   3. the query is partitioned and executed (split across host and
      storage when offloading is allowed and compliant, host-only
      otherwise);
   4. the client receives the results and a signed proof of
      compliance; the monitor then runs session cleanup. *)

module C = Ironsafe_crypto
module Monitor = Ironsafe_monitor
module Sql = Ironsafe_sql
module Net = Ironsafe_net
module Fault = Ironsafe_fault.Fault

type t = {
  deploy : Deployment.t;
  database : string;
  mutable attested : bool;
}

type response = {
  resp_result : Sql.Exec.result;
  resp_proof : Monitor.Trusted_monitor.proof;
  resp_result_signature : string;
      (** host-engine signature over the result (data-path integrity);
          the host's public key is certified by the monitor (Fig. 4a) *)
  resp_metrics : Runner.metrics;
  resp_rewritten_sql : string option;
      (** set when the monitor changed the query *)
}

let create ?(database = "ironsafe") deploy = { deploy; database; attested = false }

let monitor t = t.deploy.Deployment.monitor
let deployment t = t.deploy

let ensure_attested t =
  if t.attested then Ok ()
  else begin
    (* [attest_reliable] retries only under an enabled fault plan, so
       this is exactly [Deployment.attest] when faults are off *)
    match Deployment.attest_reliable t.deploy with
    | Ok () ->
        t.attested <- true;
        Ok ()
    | Error _ as e -> e
  end

(* Register a client identity with the monitor; returns its keypair
   (the secret stays with the caller, modelling the client's TLS
   client-certificate key). *)
let register_client t ~label ?reuse_bit () =
  let sk, pk = C.Signature.generate t.deploy.Deployment.drbg in
  Monitor.Trusted_monitor.register_client (monitor t) ~label ~pk ~reuse_bit;
  (sk, pk)

let set_access_policy t policy_src =
  let policy = Ironsafe_policy.Policy_parser.parse policy_src in
  Monitor.Trusted_monitor.set_access_policy (monitor t) ~database:t.database
    ~policy

let result_digest (r : Sql.Exec.result) =
  C.Sha256.digest
    (String.concat "|" r.Sql.Exec.columns
    ^ "\x00"
    ^ String.concat "\x00" (List.map Sql.Row.encode r.Sql.Exec.rows))

let sign_result t proof result =
  C.Signature.sign t.deploy.Deployment.host_sk
    ("host-result" ^ result_digest result
    ^ proof.Monitor.Trusted_monitor.proof_query_digest)

let render_stmt stmt =
  (* only SELECTs are rewritten by the monitor; rendering is for
     user-facing display of what actually ran *)
  match stmt with
  | Sql.Ast.Select _ -> None
  | _ -> None

let submit ?(exec_policy = "") ?(config = Config.Scs) t ~client ~sql () =
  match ensure_attested t with
  | Error e -> Error ("attestation failed: " ^ e)
  | Ok () -> (
      let exec_policy_rules =
        if String.trim exec_policy = "" then []
        else Ironsafe_policy.Policy_parser.parse exec_policy
      in
      let catalog =
        Sql.Database.catalog t.deploy.Deployment.secure_db
      in
      match
        Monitor.Trusted_monitor.authorize (monitor t) ~catalog
          ~client_label:client ~database:t.database
          ~exec_policy:exec_policy_rules ~sql
      with
      | Error e -> Error e
      | Ok auth -> (
          (* charge the control path: client TLS session to the host,
             host <-> monitor round, policy interpretation, session-key
             issuance and proof signing (§4.2 / Table 3) *)
          let params = t.deploy.Deployment.params in
          Deployment.reset_counters t.deploy;
          let host_node = t.deploy.Deployment.host in
          Ironsafe_sim.Node.charge host_node ~category:"policy"
            (params.Ironsafe_sim.Params.tls_handshake_ns
            +. (6.0 *. params.Ironsafe_sim.Params.net_latency_ns)
            +. params.Ironsafe_sim.Params.monitor_policy_ns
            +. params.Ironsafe_sim.Params.monitor_session_ns);
          (* the monitor may have downgraded offloading *)
          let config =
            if
              Config.split_execution config
              && not auth.Monitor.Trusted_monitor.auth_offload_allowed
            then if Config.secure config then Config.Hos else Config.Hons
            else config
          in
          let stmt = auth.Monitor.Trusted_monitor.auth_stmt in
          (* under a fault plan the session-key delivery to the storage
             node runs over a real (lossy) channel with reliable
             delivery; with faults off it stays a charged abstraction,
             preserving the exact fault-free timing *)
          let faults = Deployment.faults t.deploy in
          let control_plane_ok =
            if not (Fault.enabled faults) then Ok ()
            else begin
              match
                Net.Channel.connect ~faults ~a:host_node
                  ~b:t.deploy.Deployment.storage
                  ~session_key:auth.Monitor.Trusted_monitor.auth_session_key
                  ~drbg:t.deploy.Deployment.drbg ()
              with
              | Error e ->
                  Error ("control channel: " ^ Net.Channel.error_message e)
              | Ok ch ->
                  let r =
                    match
                      Net.Channel.roundtrip_reliable ch ~from:host_node sql
                    with
                    | Ok _ -> Ok ()
                    | Error e ->
                        Error
                          ("control channel: " ^ Net.Channel.error_message e)
                  in
                  Net.Channel.close ch;
                  r
            end
          in
          match (control_plane_ok, stmt) with
          | Error e, _ ->
              Monitor.Trusted_monitor.session_cleanup (monitor t)
                auth.Monitor.Trusted_monitor.auth_session_key;
              Error e
          | Ok (), Sql.Ast.Select _ -> (
              match Runner.run_stmt_outcome ~reset:false t.deploy config stmt with
              | Runner.Rejected v | Runner.Crashed v ->
                  Monitor.Trusted_monitor.session_cleanup (monitor t)
                    auth.Monitor.Trusted_monitor.auth_session_key;
                  Error (Fmt.str "query rejected: %a" Runner.pp_violation v)
              | Runner.Ok metrics | Runner.Degraded (metrics, _) ->
                  Monitor.Trusted_monitor.session_cleanup (monitor t)
                    auth.Monitor.Trusted_monitor.auth_session_key;
                  Ok
                    {
                      resp_result = metrics.Runner.result;
                      resp_proof = auth.Monitor.Trusted_monitor.auth_proof;
                      resp_result_signature =
                        sign_result t auth.Monitor.Trusted_monitor.auth_proof
                          metrics.Runner.result;
                      resp_metrics = metrics;
                      resp_rewritten_sql = render_stmt stmt;
                    })
          | Ok (), other ->
              (* DML runs on the secure (authoritative) database *)
              let outcome =
                Sql.Database.exec_ast t.deploy.Deployment.secure_db other
              in
              (* mirror writes to the plain replica so all Table-2
                 configurations keep seeing identical data *)
              ignore (Sql.Database.exec_ast t.deploy.Deployment.plain_db other);
              let rows =
                match outcome with
                | Sql.Database.Affected n -> n
                | _ -> 0
              in
              Monitor.Trusted_monitor.session_cleanup (monitor t)
                auth.Monitor.Trusted_monitor.auth_session_key;
              let resp_result =
                {
                  Sql.Exec.columns = [ "affected" ];
                  rows = [ [| Sql.Value.Int rows |] ];
                }
              in
              Ok
                {
                  resp_result;
                  resp_proof = auth.Monitor.Trusted_monitor.auth_proof;
                  resp_result_signature =
                    sign_result t auth.Monitor.Trusted_monitor.auth_proof
                      resp_result;
                  resp_metrics =
                    {
                      Runner.config;
                      end_to_end_ns = 0.0;
                      host_breakdown = [];
                      storage_breakdown = [];
                      bytes_shipped = 0;
                      pages_scanned = 0;
                      page_hits = 0;
                      host_rows = rows;
                      storage_rows = 0;
                      result = { Sql.Exec.columns = []; rows = [] };
                      profile = None;
                    };
                  resp_rewritten_sql = None;
                }))

(* Client-side verification (the client trusts only the monitor's
   public key): 1. the compliance proof is monitor-signed; 2. the host
   engine's session key is monitor-certified (attestation, Fig. 4a);
   3. the result is signed under that certified key. *)
let verify_response t resp ~sql:_ =
  let monitor_pk = Monitor.Trusted_monitor.public_key (monitor t) in
  Monitor.Trusted_monitor.verify_proof ~monitor_pk resp.resp_proof
  && (match Monitor.Trusted_monitor.attested_host (monitor t) with
     | None -> false
     | Some h ->
         Monitor.Trusted_monitor.verify_host_certificate ~monitor_pk
           ~host_pk:t.deploy.Deployment.host_pk
           ~certificate:h.Monitor.Trusted_monitor.host_certificate)
  && C.Signature.verify t.deploy.Deployment.host_pk
       ("host-result" ^ result_digest resp.resp_result
       ^ resp.resp_proof.Monitor.Trusted_monitor.proof_query_digest)
       resp.resp_result_signature
