(** The five system configurations of the paper's Table 2. *)

type t =
  | Hons  (** host-only, non-secure (NFS to the storage server) *)
  | Hos  (** host-only, secure: SGX enclave + secure storage *)
  | Vcs  (** vanilla computational storage: split, non-secure *)
  | Scs  (** IronSafe: split execution, secure *)
  | Sos  (** storage-only, secure: whole query on the ARM node *)

val all : t list
val abbrev : t -> string
val description : t -> string
val split_execution : t -> bool
val secure : t -> bool
val of_string : string -> t option
val pp : Format.formatter -> t -> unit
