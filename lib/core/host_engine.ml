(* The host engine (Fig. 3, SGX enclave): receives the filtered,
   projected rows from the storage engine, materializes them as
   in-memory tables, and runs the host portion of the query (joins,
   group-bys, aggregations, ordering). *)

module Sql = Ironsafe_sql

type phase = {
  result : Sql.Exec.result;
  counters : Sql.Observer.counters;
}

(* Rebuild the shipped tables in a fresh in-memory database (schemas
   are the projected subsets of the storage schemas) and execute the
   host statement over them. *)
let run_host ?exec_mode ~storage_catalog (plan : Partitioner.plan)
    (offload : Storage_engine.phase) : phase =
  let host_db = Sql.Database.create ~pager:(Sql.Pager.in_memory ()) in
  Option.iter (Sql.Database.set_exec_mode host_db) exec_mode;
  let obs, counters = Sql.Observer.counting () in
  Sql.Database.set_observer host_db obs;
  Fun.protect
    ~finally:(fun () -> Sql.Database.set_observer host_db Sql.Observer.null)
    (fun () ->
      List.iter
        (fun (st : Partitioner.shipped_table) ->
          let src_schema =
            Sql.Heap_file.schema (Sql.Catalog.find storage_catalog st.table)
          in
          let column ty_of cname =
            match
              Array.to_list (Sql.Schema.columns src_schema)
              |> List.find_opt (fun c -> c.Sql.Schema.col_name = cname)
            with
            | Some c -> (c.Sql.Schema.col_name, c.Sql.Schema.col_ty)
            | None -> (cname, ty_of)
          in
          let columns =
            match st.columns with
            | [] ->
                (* no referenced columns (count-star only): keep one so
                   the table still has a schema and its row count *)
                [
                  (let c = (Sql.Schema.columns src_schema).(0) in
                   (c.Sql.Schema.col_name, c.Sql.Schema.col_ty));
                ]
            | cols -> List.map (column Sql.Value.TStr) cols
          in
          Sql.Database.create_table host_db
            (Sql.Schema.create ~name:st.table ~columns);
          let rows =
            match
              List.find_opt
                (fun r -> r.Storage_engine.off_table = st.table)
                offload.Storage_engine.results
            with
            | Some r -> r.Storage_engine.off_rows
            | None -> []
          in
          Sql.Database.insert_rows host_db st.table rows)
        plan.Partitioner.shipped;
      let result =
        match Sql.Database.exec_ast host_db plan.Partitioner.host_stmt with
        | Sql.Database.Result r -> r
        | _ -> { Sql.Exec.columns = []; rows = [] }
      in
      { result; counters })
