(* Executes a query under one of the five Table-2 configurations,
   really running it on the real engine over the real (plain or
   secure) storage backend, and charging the simulated clocks from the
   measured operation counts: rows processed, pages touched, crypto
   operations, bytes shipped, enclave transitions, EPC pressure.

   Cost categories (these are the Fig. 8 / Fig. 9c series):
     ndp         query compute (row-operator work)
     io          storage-medium page reads
     network     serialization + transfer (+ TLS record crypto)
     decryption  per-page AES
     freshness   per-page HMAC + Merkle path + RPMB anchoring
     enclave     SGX transition costs
     epc         SGX EPC paging
     spill       memory-limit thrashing on the storage node *)

module C = Ironsafe_crypto
module Sim = Ironsafe_sim
module Sec = Ironsafe_securestore
module Tee = Ironsafe_tee
module Sql = Ironsafe_sql
module Obs = Ironsafe_obs.Obs
module OSpan = Ironsafe_obs.Span
module Ev = Ironsafe_obs.Event_log
module Fault = Ironsafe_fault.Fault

type metrics = {
  config : Config.t;
  end_to_end_ns : float;
  host_breakdown : (string * float) list;
  storage_breakdown : (string * float) list;
  bytes_shipped : int;
  pages_scanned : int;
  page_hits : int;
      (** buffer-pool hits: page reads served from the decrypted-page
          cache, skipping I/O and (on the secure medium) crypto *)
  host_rows : int;
  storage_rows : int;
  result : Sql.Exec.result;
  profile : Obs.profile option;
      (** span tree + metrics snapshot, when tracing was enabled *)
}

let total breakdown = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 breakdown

(* -- helpers ---------------------------------------------------------- *)

let with_counters db f =
  let obs, c = Sql.Observer.counting () in
  Sql.Database.set_observer db obs;
  Fun.protect
    ~finally:(fun () -> Sql.Database.set_observer db Sql.Observer.null)
    (fun () ->
      let r = f () in
      (r, c))

let snapshot_secure_stats store =
  let s = Sec.Secure_store.stats store in
  ( s.Sec.Secure_store.page_decrypts,
    s.Sec.Secure_store.page_mac_checks,
    s.Sec.Secure_store.merkle_hashes,
    s.Sec.Secure_store.rpmb_accesses )

(* Charge decryption/freshness for secure-store operations to [node].
   [parallel] models the secure-storage layer verifying pages on a
   thread pool (split configs); a single engine instance (sos) does
   its page crypto inline on one core. [lanes] divides the AES cost:
   a CTR page is a set of independent keystream chunks decrypted on
   [lanes] cores, while MAC/Merkle/RPMB freshness work stays serial
   per page (the MAC covers the whole ciphertext). CBC callers pass 1
   (block chaining admits no intra-page parallelism), which keeps the
   span attributes and charges bit-identical to the pre-lane model. *)
let charge_crypto ?(parallel = true) ?(lanes = 1) node (params : Sim.Params.t)
    ~decrypts ~macs ~merkle ~rpmb =
  let lanes = max 1 lanes in
  Sim.Node.with_span node ~name:"crypto"
    ~attrs:
      (("decrypts", string_of_int decrypts)
      :: (if lanes > 1 then [ ("lanes", string_of_int lanes) ] else []))
    (fun () ->
      let dec =
        float_of_int decrypts *. params.decrypt_page_ns /. float_of_int lanes
      in
      let fresh =
        (float_of_int macs *. params.hmac_page_ns)
        +. (float_of_int merkle *. params.merkle_node_ns)
        +. (float_of_int rpmb *. params.rpmb_access_ns)
      in
      if parallel then begin
        Sim.Node.fixed_parallel node ~category:"decryption" dec;
        Sim.Node.fixed_parallel node ~category:"freshness" fresh
      end
      else begin
        Sim.Node.fixed node ~category:"decryption" dec;
        Sim.Node.fixed node ~category:"freshness" fresh
      end)

(* Charge a bulk transfer between the two nodes and synchronize their
   clocks (blocking request/response round). *)
let charge_transfer (params : Sim.Params.t) a b ~secure ~bytes ~messages =
  Obs.count ~scope:"net" ~n:messages "messages";
  Obs.count ~scope:"net" ~n:bytes "bytes_shipped";
  Sim.Node.with_span a ~name:"net.transfer"
    ~attrs:[ ("bytes", string_of_int bytes) ]
    (fun () ->
      let fbytes = float_of_int bytes in
      let per_end =
        if secure then fbytes *. params.tls_record_ns_per_byte
        else fbytes *. 0.05 (* plain serialization cost *)
      in
      Sim.Node.charge a ~category:"network" per_end;
      Sim.Node.charge b ~category:"network" per_end;
      Sim.Clock.sync (Sim.Node.clock a) (Sim.Node.clock b)
        ((float_of_int messages *. params.net_latency_ns)
        +. (fbytes /. params.net_bandwidth_bytes_per_ns)))

let charge_io node (params : Sim.Params.t) pages =
  Sim.Node.with_span node ~name:"storage.io"
    ~attrs:[ ("pages", string_of_int pages) ]
    (fun () ->
      Sim.Node.charge node ~category:"io"
        (float_of_int pages *. params.nvme_page_ns))

(* Buffer-pool hits: the page is already decrypted and resident, so
   instead of device + crypto cost the engine pays one in-memory cache
   probe per access. Guarded so a pool-less run (hits = 0) emits no
   extra span and its event stream stays byte-identical. *)
let charge_cache_hits node (params : Sim.Params.t) hits =
  if hits > 0 then
    Sim.Node.with_span node ~name:"bufpool.hits"
      ~attrs:[ ("hits", string_of_int hits) ]
      (fun () ->
        Sim.Node.charge node ~category:"io"
          (float_of_int hits *. params.page_cache_ns))

(* [batches] is the number of vectorized batch flushes behind [rows];
   batch boundaries are the cost-segment granularity of batch-mode
   execution, so the span records them. Row-at-a-time runs report 0
   and the attribute is omitted entirely, keeping their span streams
   byte-identical to pre-batch builds. *)
let charge_compute ?(batches = 0) node ~rows =
  Sim.Node.with_span node ~name:"compute"
    ~attrs:
      (("rows", string_of_int rows)
      :: (if batches > 0 then [ ("batches", string_of_int batches) ] else []))
    (fun () -> Sim.Node.compute node ~category:"ndp" ~row_ops:rows)

let charge_memory node ~category bytes =
  Sim.Node.allocate node ~category bytes;
  Sim.Node.release node bytes

let charge_enclave_transitions node (params : Sim.Params.t) n =
  Obs.count ~scope:"sgx" ~n "transitions";
  Sim.Node.with_span node ~name:"enclave.transitions"
    ~attrs:[ ("count", string_of_int n) ]
    (fun () ->
      Sim.Node.charge node ~category:"enclave"
        (float_of_int n *. params.enclave_transition_ns))

(* EPC pressure: once the enclave working set exceeds the usable EPC,
   a fraction of every further page access refaults (the resident set
   is capped, so accesses to the overflow fraction page in and out).
   [accesses] is the number of enclave page touches the workload makes
   (page fetches plus Merkle-tree node visits). *)
let charge_epc node enclave (params : Sim.Params.t) ~working_set ~accesses =
  ignore (Tee.Sgx.touch enclave working_set);
  let limit = float_of_int params.epc_limit_bytes in
  let ws = float_of_int working_set in
  if ws > limit then begin
    let fault_rate = (ws -. limit) /. ws in
    Sim.Node.with_span node ~name:"epc.paging"
      ~attrs:[ ("working_set", string_of_int working_set) ]
      (fun () ->
        Sim.Node.charge node ~category:"epc"
          (fault_rate *. float_of_int accesses *. params.epc_fault_ns))
  end

(* Merkle tree footprint the host must keep in enclave memory when it
   verifies freshness itself (hos): two 32-byte tags per leaf. *)
let merkle_bytes store = 64 * Sec.Secure_store.data_page_count store

(* Crash-safe write path glue for the secure configurations: tick the
   group-commit daemon on the virtual clock, pin a snapshot around
   SELECTs (readers see a consistent commit LSN while writers proceed),
   commit the implicit transaction after DML, and charge the WAL work
   this statement accrued to the storage node (the log device and RPMB
   live there). *)
let exec_wal d ts ~stmt f =
  let module W = Ironsafe_wal in
  let params = d.Deployment.params in
  let storage = d.Deployment.storage in
  let wal_err e =
    raise (Sql.Pager.Integrity_failure (Fmt.str "%a" W.Txn_store.pp_error e))
  in
  let wal_counts () =
    let s = W.Wal.stats (W.Txn_store.wal ts) in
    (s.W.Wal.appends, s.W.Wal.flushes, s.W.Wal.anchors)
  in
  let a0, f0, n0 = wal_counts () in
  (match W.Txn_store.tick ts with Ok () -> () | Error e -> wal_err e);
  let result =
    match stmt with
    | Sql.Ast.Select _ -> W.Txn_store.with_snapshot ts (fun _ -> f ())
    | _ ->
        let r = f () in
        (match W.Txn_store.commit_current ts with
        | Ok _ -> ()
        | Error e -> wal_err e);
        r
  in
  let a1, f1, n1 = wal_counts () in
  let appends = a1 - a0 and flushes = f1 - f0 and anchors = n1 - n0 in
  if appends + flushes + anchors > 0 then
    Sim.Node.with_span storage ~name:"wal"
      ~attrs:
        [
          ("appends", string_of_int appends);
          ("flushes", string_of_int flushes);
        ]
      (fun () ->
        Sim.Node.charge storage ~category:"wal"
          ((float_of_int appends *. params.Sim.Params.wal_append_ns)
          +. (float_of_int flushes *. params.Sim.Params.wal_flush_ns)
          +. (float_of_int anchors *. params.Sim.Params.rpmb_access_ns)));
  result

let message_count (params : Sim.Params.t) bytes =
  max 1 ((bytes + params.net_batch_bytes - 1) / params.net_batch_bytes)

(* Storage-side work of a query, wrapped in a [storage.exec] span on
   the storage lane and linked to the host's open query span by a flow
   arrow in each direction (request out, reply back), so the exported
   Chrome trace shows the host and SCS halves of one split query joined
   into a single causal tree. Spans and flows never gate or reorder the
   charges themselves: with tracing off every helper below reduces to
   [f ()] and cost accounting is bit-identical. *)
let with_offload host storage f =
  let hclk () = Sim.Node.now host in
  let sclk () = Sim.Node.now storage in
  let hscope = Sim.Node.name host and sscope = Sim.Node.name storage in
  let req = OSpan.flow_out ~clock:hclk ~name:"offload" ~scope:hscope () in
  let reply = ref 0 in
  let result =
    OSpan.with_ ~name:"storage.exec" ~scope:sscope ~clock:sclk
      ~attrs:(Obs.trace_attrs ())
      (fun () ->
        OSpan.flow_in ~clock:sclk ~name:"offload" ~scope:sscope req;
        let r = f () in
        reply := OSpan.flow_out ~clock:sclk ~name:"reply" ~scope:sscope ();
        r)
  in
  OSpan.flow_in ~clock:hclk ~name:"reply" ~scope:hscope !reply;
  result

(* -- split execution -------------------------------------------------- *)

(* Partition the statement, run the offloaded portion on the storage
   engine over [src_db], ship the results, and run the host portion.
   Returns everything needed for charging. *)
let run_split ?project deploy ~src_db ~stmt =
  let catalog = Sql.Database.catalog src_db in
  let plan = Partitioner.split ?project catalog stmt in
  let offload = Storage_engine.run_offload src_db plan in
  (* the host half of a split query runs in the same executor mode as
     the storage-resident databases (row-at-a-time or batched) *)
  let host =
    Host_engine.run_host
      ~exec_mode:(Deployment.exec_mode deploy)
      ~storage_catalog:catalog plan offload
  in
  ( plan,
    offload.Storage_engine.counters,
    host.Host_engine.counters,
    host.Host_engine.result,
    offload.Storage_engine.bytes_shipped )

(* JSONL record of a split decision: which config, how many subqueries
   went near the data, which tables shipped. *)
let note_split config (plan : Partitioner.plan) =
  if Obs.enabled () then
    Obs.event ~scope:"core" ~kind:"plan.split"
      [
        ("config", Ev.S (Config.abbrev config));
        ("offload_stmts", Ev.I (List.length plan.Partitioner.offload_sql));
        ( "tables",
          Ev.S
            (String.concat ","
               (List.map fst plan.Partitioner.offload_sql)) );
      ]

(* -- per-configuration runners ---------------------------------------- *)

let run_stmt ?(reset = true) ?project deploy config stmt =
  let d = deploy in
  let params = d.Deployment.params in
  if reset then Deployment.reset_counters d;
  let host = d.Deployment.host and storage = d.Deployment.storage in
  (* CTR pages decrypt on [crypto_lanes] cores; CBC chains blocks and
     stays single-lane, so its charges are untouched by the knob *)
  let lanes =
    match Sec.Secure_store.page_mode d.Deployment.secure_store with
    | Sec.Secure_store.Ctr -> params.Sim.Params.crypto_lanes
    | Sec.Secure_store.Cbc -> 1
  in
  let finish ?(hits = 0) ~result ~bytes_shipped ~pages ~host_rows ~storage_rows
      () =
    (* result shipping back to the client is charged to the host side *)
    Sim.Clock.sync (Sim.Node.clock host) (Sim.Node.clock storage) 0.0;
    {
      config;
      end_to_end_ns = Sim.Node.now host;
      host_breakdown = Sim.Trace.breakdown (Sim.Node.trace host);
      storage_breakdown = Sim.Trace.breakdown (Sim.Node.trace storage);
      bytes_shipped;
      pages_scanned = pages;
      page_hits = hits;
      host_rows;
      storage_rows;
      result;
      profile = None;
    }
  in
  let exec () =
    match config with
  | Config.Hons ->
      (* everything on the host over NFS: all pages cross the network *)
      let result, c =
        with_counters d.Deployment.plain_db (fun () ->
            match Sql.Database.exec_ast d.Deployment.plain_db stmt with
            | Sql.Database.Result r -> r
            | _ -> { Sql.Exec.columns = []; rows = [] })
      in
      let pages = c.Sql.Observer.page_reads in
      let hits = c.Sql.Observer.page_hits in
      let bytes = pages * params.Sim.Params.page_size in
      with_offload host storage (fun () ->
          charge_io storage params pages;
          (* hits are served from the host-side page cache: no device
             read, no transfer *)
          charge_cache_hits host params hits;
          charge_transfer params storage host ~secure:false ~bytes
            ~messages:(message_count params bytes));
      charge_compute host ~rows:c.Sql.Observer.rows
        ~batches:c.Sql.Observer.batches;
      finish ~result ~bytes_shipped:bytes ~pages ~hits
        ~host_rows:c.Sql.Observer.rows ~storage_rows:0 ()
  | Config.Hos ->
      (* host-only secure: encrypted pages cross the network; the host
         enclave decrypts and verifies freshness, keeping the Merkle
         tree in EPC *)
      let result, c =
        with_counters d.Deployment.secure_db (fun () ->
            match Sql.Database.exec_ast d.Deployment.secure_db stmt with
            | Sql.Database.Result r -> r
            | _ -> { Sql.Exec.columns = []; rows = [] })
      in
      let decrypts, macs, merkle, rpmb =
        snapshot_secure_stats d.Deployment.secure_store
      in
      let pages = c.Sql.Observer.page_reads in
      let hits = c.Sql.Observer.page_hits in
      let bytes = pages * params.Sim.Params.page_size in
      with_offload host storage (fun () ->
          charge_io storage params pages;
          (* a hit is a decrypted page already resident in the enclave:
             no device read, no transfer, no decrypt/verify *)
          charge_cache_hits host params hits;
          charge_transfer params storage host ~secure:true ~bytes
            ~messages:(message_count params bytes));
      (* crypto happens inside the host enclave *)
      charge_crypto ~lanes host params ~decrypts ~macs ~merkle ~rpmb;
      charge_compute host ~rows:c.Sql.Observer.rows
        ~batches:c.Sql.Observer.batches;
      (* one ocall/ecall pair per page fetch *)
      charge_enclave_transitions host params (2 * pages);
      charge_epc host d.Deployment.host_enclave params
        ~working_set:
          (c.Sql.Observer.bytes_allocated
          + merkle_bytes d.Deployment.secure_store
          + Deployment.pool_bytes d)
        ~accesses:(3 * pages);
      finish ~result ~bytes_shipped:bytes ~pages ~hits
        ~host_rows:c.Sql.Observer.rows ~storage_rows:0 ()
  | Config.Vcs ->
      let plan, sc, hc, result, bytes =
        run_split ?project d ~src_db:d.Deployment.plain_db ~stmt
      in
      note_split config plan;
      let pages = sc.Sql.Observer.page_reads in
      let hits = sc.Sql.Observer.page_hits in
      with_offload host storage (fun () ->
          charge_io storage params pages;
          charge_cache_hits storage params hits;
          Sim.Node.charge storage ~category:"other"
            (float_of_int (List.length plan.Partitioner.offload_sql)
            *. params.Sim.Params.offload_session_ns);
          charge_compute storage ~rows:sc.Sql.Observer.rows
            ~batches:sc.Sql.Observer.batches;
          charge_memory storage ~category:"spill"
            sc.Sql.Observer.bytes_allocated;
          charge_transfer params storage host ~secure:false ~bytes
            ~messages:(message_count params bytes));
      charge_compute host ~rows:hc.Sql.Observer.rows
        ~batches:hc.Sql.Observer.batches;
      finish ~result ~bytes_shipped:bytes ~pages ~hits
        ~host_rows:hc.Sql.Observer.rows ~storage_rows:sc.Sql.Observer.rows ()
  | Config.Scs ->
      let plan, sc, hc, result, bytes =
        run_split ?project d ~src_db:d.Deployment.secure_db ~stmt
      in
      note_split config plan;
      let pages = sc.Sql.Observer.page_reads in
      let hits = sc.Sql.Observer.page_hits in
      with_offload host storage (fun () ->
          Sim.Node.charge storage ~category:"other"
            (float_of_int (List.length plan.Partitioner.offload_sql)
            *. params.Sim.Params.offload_session_ns);
          let decrypts, macs, merkle, rpmb =
            snapshot_secure_stats d.Deployment.secure_store
          in
          charge_io storage params pages;
          charge_cache_hits storage params hits;
          (* storage-side decryption + freshness (near the data) *)
          charge_crypto ~lanes storage params ~decrypts ~macs ~merkle ~rpmb;
          charge_compute storage ~rows:sc.Sql.Observer.rows
            ~batches:sc.Sql.Observer.batches;
          charge_memory storage ~category:"spill"
            sc.Sql.Observer.bytes_allocated;
          charge_transfer params storage host ~secure:true ~bytes
            ~messages:(message_count params bytes));
      charge_compute host ~rows:hc.Sql.Observer.rows
        ~batches:hc.Sql.Observer.batches;
      (* enclave entered once per arriving message batch *)
      charge_enclave_transitions host params (2 * message_count params bytes);
      charge_epc host d.Deployment.host_enclave params
        ~working_set:hc.Sql.Observer.bytes_allocated
        ~accesses:(message_count params bytes);
      finish ~result ~bytes_shipped:bytes ~pages ~hits
        ~host_rows:hc.Sql.Observer.rows ~storage_rows:sc.Sql.Observer.rows ()
  | Config.Sos ->
      (* whole query on the storage node *)
      let result, c =
        with_counters d.Deployment.secure_db (fun () ->
            match Sql.Database.exec_ast d.Deployment.secure_db stmt with
            | Sql.Database.Result r -> r
            | _ -> { Sql.Exec.columns = []; rows = [] })
      in
      let decrypts, macs, merkle, rpmb =
        snapshot_secure_stats d.Deployment.secure_store
      in
      let pages = c.Sql.Observer.page_reads in
      let hits = c.Sql.Observer.page_hits in
      let bytes =
        with_offload host storage (fun () ->
            charge_io storage params pages;
            charge_cache_hits storage params hits;
            (* one engine instance: inline crypto and compute on one
               core (CTR lane fan-out still applies inside the decrypt
               kernel itself) *)
            charge_crypto ~parallel:false ~lanes storage params ~decrypts ~macs
              ~merkle ~rpmb;
            Sim.Node.compute_serial storage ~category:"ndp"
              ~row_ops:c.Sql.Observer.rows;
            charge_memory storage ~category:"spill"
              c.Sql.Observer.bytes_allocated;
            (* only the final result crosses the network *)
            let bytes =
              List.fold_left
                (fun acc row -> acc + Sql.Row.encoded_size row)
                0 result.Sql.Exec.rows
            in
            charge_transfer params storage host ~secure:true ~bytes
              ~messages:1;
            bytes)
      in
      finish ~result ~bytes_shipped:bytes ~pages ~hits ~host_rows:0
        ~storage_rows:c.Sql.Observer.rows ()
  in
  (* route secure-config statements through the transactional overlay
     when the deployment carries a WAL (no-op wrapper otherwise) *)
  let exec =
    match d.Deployment.txn_store with
    | Some ts
      when match config with
           | Config.Hos | Config.Scs | Config.Sos -> true
           | Config.Hons | Config.Vcs -> false ->
        fun () -> exec_wal d ts ~stmt exec
    | _ -> exec
  in
  (* the root span's virtual duration is exactly [end_to_end_ns]: it
     opens at (reset) time zero on the host clock and closes after the
     final clock sync in [finish]. [begin_query] runs first: it
     allocates the trace context the root span (and every wire message
     sent meanwhile) carries, decides sampling, and snapshots the
     metrics registry so the captured profile reports this query's
     interval rather than the cumulative registry. *)
  let tok = Obs.begin_query () in
  let m =
    Sim.Node.with_span host ~name:"query"
      ~attrs:(("config", Config.abbrev config) :: Obs.trace_attrs ())
      exec
  in
  if Obs.enabled () then
    Obs.event ~scope:"core" ~kind:"query.done"
      [
        ("config", Ev.S (Config.abbrev config));
        ("end_to_end_ns", Ev.F m.end_to_end_ns);
        ("bytes_shipped", Ev.I m.bytes_shipped);
        ("pages", Ev.I m.pages_scanned);
        ("rows", Ev.I (List.length m.result.Sql.Exec.rows));
      ];
  match Obs.finish_query tok with
  | Some p -> { m with profile = Some p }
  | None -> m

let run_query deploy config sql = run_stmt deploy config (Sql.Parser.parse sql)

(* -- fault-aware execution -------------------------------------------- *)

type violation = { v_site : string; v_detail : string }

let pp_violation ppf v =
  Format.fprintf ppf "%s: %s" v.v_site v.v_detail

type outcome =
  | Ok of metrics
  | Degraded of metrics * Fault.incident list
  | Rejected of violation
  | Crashed of violation
      (* a WAL crash fault fired mid-statement: the statement did not
         complete and the deployment needs [Deployment.reboot_secure] *)

(* Which configs involve which TEEs: SGX faults only matter where the
   host enclave is on the query path, TrustZone ones where the secure
   world (secure store TA) is. *)
let uses_host_enclave = function
  | Config.Hos | Config.Scs -> true
  | Config.Hons | Config.Vcs | Config.Sos -> false

let uses_secure_world = function
  | Config.Hos | Config.Scs | Config.Sos -> true
  | Config.Hons | Config.Vcs -> false

let violation_of_faults faults ~default ~detail =
  let v_site =
    match Fault.last_unrecovered faults with
    | Some inc -> Fault.site_name inc.Fault.inc_site
    | None -> default
  in
  { v_site; v_detail = detail }

(* Pre-flight TEE fault injection + recovery. The enclave/secure-world
   failures the plan schedules strike between queries (an AEX, a failed
   world switch); the recovery layer restarts, re-attests and charges
   the recovery time before the query proper runs. Returns a rejection
   when re-attestation cannot restore trust. *)
let preflight d config =
  let faults = Deployment.faults d in
  let mark = Fault.incident_count faults in
  let params = d.Deployment.params in
  let reject site detail =
    Fault.note_rejected faults;
    Some { v_site = site; v_detail = detail }
  in
  let aborted_enclave () =
    Tee.Sgx.inject_abort d.Deployment.host_enclave;
    Tee.Sgx.restart d.Deployment.host_enclave;
    (* restart loses all session state: the monitor must re-attest *)
    Sim.Node.fixed d.Deployment.host ~category:"recovery"
      (100.0 *. params.Sim.Params.enclave_transition_ns);
    Fault.note_retry faults ~action:"enclave.restart";
    Fault.note_reattestation faults;
    match Deployment.attest_reliable d with
    | Stdlib.Ok () ->
        Fault.note_recovered_since faults mark;
        None
    | Stdlib.Error e -> reject "sgx.abort" ("re-attestation failed: " ^ e)
  in
  if not (Fault.enabled faults) then None
  else begin
    let rejection =
      if uses_host_enclave config && Fault.fire faults Fault.Sgx_abort then
        aborted_enclave ()
      else None
    in
    match rejection with
    | Some _ -> rejection
    | None ->
        if uses_host_enclave config && Fault.fire faults Fault.Sgx_epc_storm
        then begin
          (* paging storm: a burst of refaults slows the query but needs
             no retry — absorbed as degradation *)
          Sim.Node.fixed d.Deployment.host ~category:"epc"
            (4096.0 *. params.Sim.Params.epc_fault_ns);
          Fault.note_recovered_since faults mark
        end;
        if uses_secure_world config && Fault.fire faults Fault.Tz_world_switch
        then begin
          (* the failed switch is retried by the normal world driver *)
          Sim.Node.fixed d.Deployment.storage ~category:"recovery"
            (2.0 *. params.Sim.Params.rpmb_access_ns);
          Fault.note_retry faults ~action:"world_switch";
          Fault.note_recovered_since faults mark
        end;
        None
  end

(* Abnormal outcomes are first-class events: [query.crashed] /
   [query.rejected] are terminal kinds (the event-log sink flushes on
   them, so the lines explaining the failure are durable even if the
   process dies before its orderly export) and every abnormal kind
   triggers a flight recorder dump. *)
let outcome_event ~kind v =
  if Obs.enabled () then
    Obs.event ~scope:"core" ~kind
      [ ("site", Ev.S v.v_site); ("detail", Ev.S v.v_detail) ]

let run_stmt_outcome ?reset ?project deploy config stmt =
  let faults = Deployment.faults deploy in
  let mark = Fault.incident_count faults in
  match preflight deploy config with
  | Some v ->
      outcome_event ~kind:"query.rejected" v;
      Rejected v
  | None -> (
      match run_stmt ?reset ?project deploy config stmt with
      | m -> (
          match Fault.incidents_since faults mark with
          | [] -> Ok m
          | incidents ->
              (* the query completed and verified despite these faults:
                 whatever fired was survived, including faults absorbed
                 with no repair work (e.g. rot in an unused region) *)
              Fault.note_recovered_since faults mark;
              if Obs.enabled () then
                Obs.event ~scope:"core" ~kind:"query.degraded"
                  [ ("incidents", Ev.I (List.length incidents)) ];
              Degraded (m, incidents))
      | exception Ironsafe_wal.Wal.Crashed site ->
          Obs.count ~scope:"fault" "crashes";
          let v =
            {
              v_site = Fault.site_name site;
              v_detail = "power loss injected; reboot required";
            }
          in
          outcome_event ~kind:"query.crashed" v;
          Crashed v
      | exception Sql.Pager.Integrity_failure detail ->
          Fault.note_rejected faults;
          Obs.count ~scope:"fault" "rejected";
          let v = violation_of_faults faults ~default:"securestore" ~detail in
          outcome_event ~kind:"query.rejected" v;
          Rejected v
      | exception Tee.Sgx.Enclave_aborted ->
          Fault.note_rejected faults;
          Obs.count ~scope:"fault" "rejected";
          let v =
            violation_of_faults faults ~default:"sgx.abort"
              ~detail:"enclave died mid-query"
          in
          outcome_event ~kind:"query.rejected" v;
          Rejected v)

let run_query_outcome deploy config sql =
  run_stmt_outcome deploy config (Sql.Parser.parse sql)
