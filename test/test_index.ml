(* Secondary-index tests: correctness (identical results with and
   without the index), access-path savings (fewer pages read, fewer
   secure-store decryptions), and maintenance across DML. *)

open Ironsafe_sql

(* many pages: wide rows so ~8 rows fit per page *)
let filler = String.make 400 'f'

let build db n =
  ignore (Database.exec db "create table events (id int, day date, kind varchar, pad varchar)");
  Database.insert_rows db "events"
    (List.init n (fun i ->
         [|
           Value.Int i;
           Value.Date (Date.of_ymd ~y:1995 ~m:1 ~d:1 + (i mod 300));
           Value.Str (if i mod 3 = 0 then "alpha" else "beta");
           Value.Str filler;
         |]))

let fresh ?(n = 400) () =
  let db = Database.create ~pager:(Pager.in_memory ()) in
  build db n;
  db

let rows db sql =
  (Database.query db sql).Exec.rows
  |> List.map (fun r -> Array.to_list r |> List.map Value.to_string)

let measured db sql =
  let obs, c = Observer.counting () in
  Database.set_observer db obs;
  let r = rows db sql in
  Database.set_observer db Observer.null;
  (r, c.Observer.page_reads)

let test_point_query_uses_index () =
  let db = fresh () in
  let sql = "select id from events where id = 123" in
  let before, full_pages = measured db sql in
  ignore (Database.exec db "create index ev_id on events (id)");
  let after, idx_pages = measured db sql in
  Alcotest.(check (list (list string))) "same result" before after;
  Alcotest.(check bool)
    (Printf.sprintf "fewer pages (%d < %d)" idx_pages full_pages)
    true
    (idx_pages < full_pages / 10);
  Alcotest.(check (list (list string))) "exact row" [ [ "123" ] ] after

let test_range_query_uses_index () =
  let db = fresh () in
  ignore (Database.exec db "create index ev_id on events (id)");
  let sql = "select count(*) from events where id < 40" in
  let result, pages = measured db sql in
  Alcotest.(check (list (list string))) "range count" [ [ "40" ] ] result;
  let _, full_pages = measured db "select count(*) from events where id + 0 < 40" in
  Alcotest.(check bool) "range scanned fewer pages" true (pages < full_pages)

let test_between_and_date_index () =
  let db = fresh () in
  ignore (Database.exec db "create index ev_day on events (day)");
  let sql =
    "select count(*) from events where day between date '1995-01-01' and date '1995-01-10'"
  in
  let result, pages = measured db sql in
  (* ids with (i mod 300) in [0,9]: 400 rows cover 0..299, 100..399 -> 10 + 4... *)
  (match result with
  | [ [ n ] ] -> Alcotest.(check bool) "nonzero matches" true (int_of_string n > 0)
  | _ -> Alcotest.fail "count shape");
  let _, full_pages = measured db "select count(*) from events where kind like '%alpha%'" in
  Alcotest.(check bool) "between via index cheaper than full scan" true (pages < full_pages)

let test_index_result_equivalence () =
  let with_idx = fresh () in
  let without = fresh () in
  ignore (Database.exec with_idx "create index ev_id on events (id)");
  ignore (Database.exec with_idx "create index ev_day on events (day)");
  List.iter
    (fun sql ->
      Alcotest.(check (list (list string))) sql (rows without sql) (rows with_idx sql))
    [
      "select id from events where id = 17";
      "select id from events where id = -5";
      "select count(*) from events where id >= 390";
      "select count(*) from events where id > 390 and id <= 395";
      "select count(*) from events where day = date '1995-01-05' and kind = 'alpha'";
      "select kind, count(*) from events where id < 30 group by kind order by kind";
    ]

let test_index_maintained_on_insert () =
  let db = fresh ~n:50 () in
  ignore (Database.exec db "create index ev_id on events (id)");
  ignore
    (Database.exec db
       "insert into events values (9999, date '1999-01-01', 'gamma', 'x')");
  Alcotest.(check (list (list string))) "new row findable via index"
    [ [ "gamma" ] ]
    (rows db "select kind from events where id = 9999")

let test_index_rebuilt_on_update_delete () =
  let db = fresh ~n:50 () in
  ignore (Database.exec db "create index ev_id on events (id)");
  ignore (Database.exec db "update events set id = id + 1000 where id < 10");
  Alcotest.(check (list (list string))) "old key gone" []
    (rows db "select id from events where id = 5");
  Alcotest.(check (list (list string))) "new key present" [ [ "1005" ] ]
    (rows db "select id from events where id = 1005");
  ignore (Database.exec db "delete from events where id = 1005");
  Alcotest.(check (list (list string))) "deleted key gone" []
    (rows db "select id from events where id = 1005")

let test_drop_index () =
  let db = fresh ~n:50 () in
  ignore (Database.exec db "create index ev_id on events (id)");
  ignore (Database.exec db "drop index ev_id");
  (* still correct, back to full scans *)
  Alcotest.(check (list (list string))) "post-drop correctness" [ [ "17" ] ]
    (rows db "select id from events where id = 17");
  match Database.exec db "drop index ev_id" with
  | exception Catalog.Unknown_index _ -> ()
  | _ -> Alcotest.fail "double drop accepted"

let test_index_errors () =
  let db = fresh ~n:10 () in
  ignore (Database.exec db "create index ev_id on events (id)");
  (match Database.exec db "create index ev_id on events (day)" with
  | exception Catalog.Duplicate_index _ -> ()
  | _ -> Alcotest.fail "duplicate index name accepted");
  match Database.exec db "create index ev_bad on events (nope)" with
  | exception Catalog.Unknown_table _ -> ()
  | _ -> Alcotest.fail "index on unknown column accepted"

let test_conjunct_intersection () =
  let db = fresh () in
  ignore (Database.exec db "create index ev_id on events (id)");
  ignore (Database.exec db "create index ev_day on events (day)");
  (* both conjuncts indexable: the scanned pages are the intersection *)
  let result, pages = measured db
    "select id from events where id = 42 and day = date '1995-02-12'"
  in
  Alcotest.(check (list (list string))) "intersected result" [ [ "42" ] ] result;
  Alcotest.(check bool) "tiny page set" true (pages <= 2)

let test_index_over_secure_store () =
  (* over the secure store, skipped pages are skipped decryptions *)
  let module S = Ironsafe_storage in
  let module Sec = Ironsafe_securestore in
  let module C = Ironsafe_crypto in
  let data_pages = 128 in
  let device =
    S.Block_device.create ~pages:(Sec.Secure_store.device_pages_for ~data_pages)
  in
  let rpmb = S.Rpmb.create () in
  let drbg = C.Drbg.create ~seed:"index-secure" in
  let store =
    match
      Sec.Secure_store.initialize ~device ~rpmb
        ~hardware_key:(String.make 32 'h') ~data_pages ~drbg ()
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "init: %a" Sec.Secure_store.pp_error e
  in
  let db = Database.create ~pager:(Pager.secure store) in
  build db 400;
  ignore (Database.exec db "create index ev_id on events (id)");
  Sec.Secure_store.reset_stats store;
  Alcotest.(check (list (list string))) "secure point lookup" [ [ "77" ] ]
    (rows db "select id from events where id = 77");
  let stats = Sec.Secure_store.stats store in
  Alcotest.(check bool)
    (Printf.sprintf "few decrypts (%d)" stats.Sec.Secure_store.page_decrypts)
    true
    (stats.Sec.Secure_store.page_decrypts <= 2)

let suite =
  [
    ("point query uses index", `Quick, test_point_query_uses_index);
    ("range query uses index", `Quick, test_range_query_uses_index);
    ("between/date index", `Quick, test_between_and_date_index);
    ("result equivalence", `Quick, test_index_result_equivalence);
    ("maintained on insert", `Quick, test_index_maintained_on_insert);
    ("rebuilt on update/delete", `Quick, test_index_rebuilt_on_update_delete);
    ("drop index", `Quick, test_drop_index);
    ("index errors", `Quick, test_index_errors);
    ("conjunct intersection", `Quick, test_conjunct_intersection);
    ("index over secure store", `Quick, test_index_over_secure_store);
  ]
