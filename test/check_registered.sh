#!/usr/bin/env bash
# Fail the build if a test_*.ml suite exists but is not registered in
# test_main.ml's Alcotest.run list. Keeps "I wrote tests" honest: a
# forgotten registration line is a build error, not silently-skipped
# coverage.
set -eu

main=test_main.ml
status=0
for f in test_*.ml; do
  [ "$f" = "$main" ] && continue
  base=${f%.ml}
  first=$(printf '%s' "${base:0:1}" | tr '[:lower:]' '[:upper:]')
  module="${first}${base:1}"
  if ! grep -q "${module}\.suite" "$main"; then
    echo "error: $f defines a suite but ${module}.suite is not registered in $main" >&2
    status=1
  fi
done
exit $status
