(* Network substrate tests: wire framing and the secure channel. *)

module Net = Ironsafe_net
module Sim = Ironsafe_sim
module C = Ironsafe_crypto

let test_wire_u32 () =
  let buf = Buffer.create 8 in
  Net.Wire.put_u32 buf 0;
  Net.Wire.put_u32 buf 0xdeadbeef;
  let s = Buffer.contents buf in
  let v0, off = Net.Wire.get_u32 s 0 in
  let v1, _ = Net.Wire.get_u32 s off in
  Alcotest.(check int) "zero" 0 v0;
  Alcotest.(check int) "value" 0xdeadbeef v1;
  Alcotest.check_raises "negative" (Invalid_argument "Wire.put_u32: out of range")
    (fun () -> Net.Wire.put_u32 buf (-1));
  match Net.Wire.get_u32 "ab" 0 with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "truncated read accepted"

let test_wire_strings () =
  let items = [ ""; "a"; String.make 1000 'x'; "unicode \xc3\xa9" ] in
  Alcotest.(check (list string)) "roundtrip" items
    (Net.Wire.decode_strings (Net.Wire.encode_strings items))

let nodes () =
  let params = Sim.Params.default in
  ( Sim.Node.create ~params ~name:"a" Sim.Cpu.Host_x86,
    Sim.Node.create ~params ~name:"b" Sim.Cpu.Storage_arm )

let channel () =
  let a, b = nodes () in
  let drbg = C.Drbg.create ~seed:"chan" in
  let ch =
    Net.Channel.establish ~a ~b ~session_key:(C.Drbg.generate drbg 32) ~drbg ()
  in
  (a, b, ch)

let send_exn ch ~from payload =
  match Net.Channel.send ch ~from payload with
  | Ok r -> r
  | Error e -> Alcotest.fail (Net.Channel.error_message e)

let recv_exn ch record =
  match Net.Channel.recv ch record with
  | Ok msg -> msg
  | Error e -> Alcotest.fail (Net.Channel.error_message e)

let test_channel_roundtrip () =
  let a, _, ch = channel () in
  (match Net.Channel.roundtrip ch ~from:a "hello over TLS" with
  | Ok msg -> Alcotest.(check string) "payload preserved" "hello over TLS" msg
  | Error e -> Alcotest.fail (Net.Channel.error_message e));
  let stats = Net.Channel.stats ch in
  Alcotest.(check int) "one handshake" 1 stats.Net.Channel.handshakes;
  Alcotest.(check bool) "bytes accounted" true (stats.Net.Channel.bytes > 0)

let test_channel_tamper_detected () =
  let a, _, ch = channel () in
  let record = send_exn ch ~from:a "sensitive" in
  let tampered = Net.Channel.tamper_record record in
  match Net.Channel.recv ch tampered with
  | Error Net.Channel.Auth_failed -> ()
  | Error e ->
      Alcotest.fail ("wrong error: " ^ Net.Channel.error_message e)
  | Ok _ -> Alcotest.fail "tampered record accepted"

let test_channel_charges_time () =
  let a, b, ch = channel () in
  let t0 = Sim.Node.now a in
  Alcotest.(check bool) "handshake charged" true (t0 > 0.0);
  (match Net.Channel.transfer_accounted ch ~from:a ~bytes:1_000_000 with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Net.Channel.error_message e));
  Alcotest.(check bool) "transfer advances time" true (Sim.Node.now a > t0);
  Alcotest.(check bool) "clocks synchronized" true
    (Float.abs (Sim.Node.now a -. Sim.Node.now b) < 1e-6)

(* Closed channels answer with [Error Closed] on every path, and close
   itself is idempotent — no exceptions anywhere. *)
let test_channel_close () =
  let a, _, ch = channel () in
  Net.Channel.close ch;
  Net.Channel.close ch;
  Alcotest.(check bool) "is_closed" true (Net.Channel.is_closed ch);
  (match Net.Channel.send ch ~from:a "x" with
  | Error Net.Channel.Closed -> ()
  | Ok _ | Error _ -> Alcotest.fail "send on closed channel not Closed");
  (match Net.Channel.transfer_accounted ch ~from:a ~bytes:10 with
  | Error Net.Channel.Closed -> ()
  | Ok _ | Error _ -> Alcotest.fail "transfer on closed channel not Closed");
  match Net.Channel.roundtrip ch ~from:a "y" with
  | Error Net.Channel.Closed -> ()
  | Ok _ | Error _ -> Alcotest.fail "roundtrip on closed channel not Closed"

(* Replay vs reorder: a re-delivered record is rejected as [Replayed],
   but a record arriving after a later one — in-window reordering — is
   delivered. *)
let test_channel_replay_rejected () =
  let a, _, ch = channel () in
  let r1 = send_exn ch ~from:a "first" in
  let r2 = send_exn ch ~from:a "second" in
  Alcotest.(check string) "first delivers" "first" (recv_exn ch r1);
  (match Net.Channel.recv ch r1 with
  | Error (Net.Channel.Replayed 0) -> ()
  | Error e -> Alcotest.fail ("wrong error: " ^ Net.Channel.error_message e)
  | Ok _ -> Alcotest.fail "replayed record accepted");
  Alcotest.(check string) "in-order delivery" "second" (recv_exn ch r2)

let test_channel_reorder_accepted () =
  let a, _, ch = channel () in
  let r1 = send_exn ch ~from:a "one" in
  let r2 = send_exn ch ~from:a "two" in
  let r3 = send_exn ch ~from:a "three" in
  (* deliver out of order: 3, 1, 2 — all within the window *)
  Alcotest.(check string) "newest first" "three" (recv_exn ch r3);
  Alcotest.(check string) "reordered old record accepted" "one"
    (recv_exn ch r1);
  Alcotest.(check string) "middle record accepted" "two" (recv_exn ch r2);
  (* ...but a second delivery of any of them is still a replay *)
  match Net.Channel.recv ch r2 with
  | Error (Net.Channel.Replayed 1) -> ()
  | Error e -> Alcotest.fail ("wrong error: " ^ Net.Channel.error_message e)
  | Ok _ -> Alcotest.fail "replay after reorder accepted"

let test_channel_stale_rejected () =
  let a, _, ch = channel () in
  let r0 = send_exn ch ~from:a "ancient" in
  (* push the window far past seq 0 *)
  for _ = 1 to Net.Channel.window + 5 do
    let r = send_exn ch ~from:a "filler" in
    ignore (recv_exn ch r)
  done;
  match Net.Channel.recv ch r0 with
  | Error (Net.Channel.Stale 0) -> ()
  | Error e -> Alcotest.fail ("wrong error: " ^ Net.Channel.error_message e)
  | Ok _ -> Alcotest.fail "stale record accepted"

let test_channel_ciphertext_differs () =
  let a, _, ch = channel () in
  let r1 = send_exn ch ~from:a "same payload" in
  let r2 = send_exn ch ~from:a "same payload" in
  (* fresh nonce per record: identical plaintexts encrypt differently *)
  match (Net.Channel.recv ch r1, Net.Channel.recv ch r2) with
  | Ok a', Ok b' ->
      Alcotest.(check string) "both decrypt" a' b';
      Alcotest.(check string) "to the payload" "same payload" a'
  | _ -> Alcotest.fail "decryption failed"

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"wire strings roundtrip" ~count:100
      (list_of_size Gen.(0 -- 10) (string_of_size Gen.(0 -- 50)))
      (fun items -> Net.Wire.decode_strings (Net.Wire.encode_strings items) = items);
    Test.make ~name:"channel roundtrips arbitrary payloads" ~count:50
      (string_of_size Gen.(0 -- 500)) (fun payload ->
        let a, _, ch = channel () in
        Net.Channel.roundtrip ch ~from:a payload = Ok payload);
  ]

let suite =
  [
    ("wire u32", `Quick, test_wire_u32);
    ("wire strings", `Quick, test_wire_strings);
    ("channel roundtrip", `Quick, test_channel_roundtrip);
    ("channel tamper detected", `Quick, test_channel_tamper_detected);
    ("channel charges time", `Quick, test_channel_charges_time);
    ("channel close idempotent", `Quick, test_channel_close);
    ("channel fresh nonces", `Quick, test_channel_ciphertext_differs);
    ("channel replay rejected", `Quick, test_channel_replay_rejected);
    ("channel reorder accepted", `Quick, test_channel_reorder_accepted);
    ("channel stale rejected", `Quick, test_channel_stale_rejected);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests
