(* Network substrate tests: wire framing and the secure channel. *)

module Net = Ironsafe_net
module Sim = Ironsafe_sim
module C = Ironsafe_crypto

let test_wire_u32 () =
  let buf = Buffer.create 8 in
  Net.Wire.put_u32 buf 0;
  Net.Wire.put_u32 buf 0xdeadbeef;
  let s = Buffer.contents buf in
  let v0, off = Net.Wire.get_u32 s 0 in
  let v1, _ = Net.Wire.get_u32 s off in
  Alcotest.(check int) "zero" 0 v0;
  Alcotest.(check int) "value" 0xdeadbeef v1;
  Alcotest.check_raises "negative" (Invalid_argument "Wire.put_u32: out of range")
    (fun () -> Net.Wire.put_u32 buf (-1));
  match Net.Wire.get_u32 "ab" 0 with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "truncated read accepted"

let test_wire_strings () =
  let items = [ ""; "a"; String.make 1000 'x'; "unicode \xc3\xa9" ] in
  Alcotest.(check (list string)) "roundtrip" items
    (Net.Wire.decode_strings (Net.Wire.encode_strings items))

let nodes () =
  let params = Sim.Params.default in
  ( Sim.Node.create ~params ~name:"a" Sim.Cpu.Host_x86,
    Sim.Node.create ~params ~name:"b" Sim.Cpu.Storage_arm )

let channel () =
  let a, b = nodes () in
  let drbg = C.Drbg.create ~seed:"chan" in
  let ch = Net.Channel.establish ~a ~b ~session_key:(C.Drbg.generate drbg 32) ~drbg in
  (a, b, ch)

let test_channel_roundtrip () =
  let a, _, ch = channel () in
  (match Net.Channel.roundtrip ch ~from:a "hello over TLS" with
  | Ok msg -> Alcotest.(check string) "payload preserved" "hello over TLS" msg
  | Error e -> Alcotest.fail e);
  let stats = Net.Channel.stats ch in
  Alcotest.(check int) "one handshake" 1 stats.Net.Channel.handshakes;
  Alcotest.(check bool) "bytes accounted" true (stats.Net.Channel.bytes > 0)

let test_channel_tamper_detected () =
  let a, _, ch = channel () in
  let record = Net.Channel.send ch ~from:a "sensitive" in
  let tampered = Net.Channel.tamper_record record in
  match Net.Channel.recv ch tampered with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tampered record accepted"

let test_channel_charges_time () =
  let a, b, ch = channel () in
  let t0 = Sim.Node.now a in
  Alcotest.(check bool) "handshake charged" true (t0 > 0.0);
  Net.Channel.transfer_accounted ch ~from:a ~bytes:1_000_000;
  Alcotest.(check bool) "transfer advances time" true (Sim.Node.now a > t0);
  Alcotest.(check bool) "clocks synchronized" true
    (Float.abs (Sim.Node.now a -. Sim.Node.now b) < 1e-6)

let test_channel_close () =
  let a, _, ch = channel () in
  Net.Channel.close ch;
  Alcotest.check_raises "send after close" (Invalid_argument "Channel: closed")
    (fun () -> ignore (Net.Channel.send ch ~from:a "x"))

let test_channel_replay_rejected () =
  let a, _, ch = channel () in
  let r1 = Net.Channel.send ch ~from:a "first" in
  let r2 = Net.Channel.send ch ~from:a "second" in
  (match Net.Channel.recv ch r1 with Ok _ -> () | Error e -> Alcotest.fail e);
  (* replaying an already-delivered record must fail *)
  (match Net.Channel.recv ch r1 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "replayed record accepted");
  (* fresh later record still delivers *)
  match Net.Channel.recv ch r2 with
  | Ok msg -> Alcotest.(check string) "in-order delivery" "second" msg
  | Error e -> Alcotest.fail e

let test_channel_ciphertext_differs () =
  let a, _, ch = channel () in
  let r1 = Net.Channel.send ch ~from:a "same payload" in
  let r2 = Net.Channel.send ch ~from:a "same payload" in
  (* fresh nonce per record: identical plaintexts encrypt differently *)
  match (Net.Channel.recv ch r1, Net.Channel.recv ch r2) with
  | Ok a', Ok b' ->
      Alcotest.(check string) "both decrypt" a' b';
      Alcotest.(check string) "to the payload" "same payload" a'
  | _ -> Alcotest.fail "decryption failed"

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"wire strings roundtrip" ~count:100
      (list_of_size Gen.(0 -- 10) (string_of_size Gen.(0 -- 50)))
      (fun items -> Net.Wire.decode_strings (Net.Wire.encode_strings items) = items);
    Test.make ~name:"channel roundtrips arbitrary payloads" ~count:50
      (string_of_size Gen.(0 -- 500)) (fun payload ->
        let a, _, ch = channel () in
        Net.Channel.roundtrip ch ~from:a payload = Ok payload);
  ]

let suite =
  [
    ("wire u32", `Quick, test_wire_u32);
    ("wire strings", `Quick, test_wire_strings);
    ("channel roundtrip", `Quick, test_channel_roundtrip);
    ("channel tamper detected", `Quick, test_channel_tamper_detected);
    ("channel charges time", `Quick, test_channel_charges_time);
    ("channel close", `Quick, test_channel_close);
    ("channel fresh nonces", `Quick, test_channel_ciphertext_differs);
    ("channel replay rejected", `Quick, test_channel_replay_rejected);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests
