(* TEE substrate tests: SGX enclave measurement/quotes/EPC accounting
   and TrustZone secure boot + attestation. *)

module Tee = Ironsafe_tee
module C = Ironsafe_crypto

let drbg ?(seed = "tee-test") () = C.Drbg.create ~seed

(* -- Images -------------------------------------------------------------- *)

let test_image_measurement () =
  let a = Tee.Image.create ~name:"engine" ~version:1 ~code:"code-v1" in
  let a' = Tee.Image.create ~name:"engine" ~version:1 ~code:"code-v1" in
  Alcotest.(check string) "deterministic" (Tee.Image.measurement a)
    (Tee.Image.measurement a');
  let b = Tee.Image.backdoored a in
  Alcotest.(check bool) "backdoor changes measurement" true
    (Tee.Image.measurement a <> Tee.Image.measurement b);
  Alcotest.(check string) "backdoor keeps name" (Tee.Image.name a) (Tee.Image.name b);
  Alcotest.check_raises "negative version"
    (Invalid_argument "Image.create: negative version") (fun () ->
      ignore (Tee.Image.create ~name:"x" ~version:(-1) ~code:""))

(* -- SGX ------------------------------------------------------------------ *)

let sgx_setup () =
  let d = drbg () in
  let ias = Tee.Sgx.create_ias () in
  let platform = Tee.Sgx.create_platform ~ias d in
  let image = Tee.Image.create ~name:"host-engine" ~version:1 ~code:"binary" in
  (d, ias, platform, image)

let test_sgx_quote_verifies () =
  let _, ias, platform, image = sgx_setup () in
  let enclave = Tee.Sgx.launch platform image in
  Alcotest.(check string) "mrenclave is measurement" (Tee.Image.measurement image)
    (Tee.Sgx.mrenclave enclave);
  let quote = Tee.Sgx.generate_quote enclave ~report_data:"report" in
  (match Tee.Sgx.verify_quote ~ias quote with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* a quote over different report data has a different signature *)
  let quote2 = Tee.Sgx.generate_quote enclave ~report_data:"other" in
  Alcotest.(check bool) "signatures differ" true
    (quote.Tee.Sgx.signature <> quote2.Tee.Sgx.signature)

let test_sgx_forged_quote_rejected () =
  let _, ias, platform, image = sgx_setup () in
  let enclave = Tee.Sgx.launch platform image in
  let quote = Tee.Sgx.generate_quote enclave ~report_data:"r" in
  (* tampering with the claimed measurement breaks the signature *)
  let forged = { quote with Tee.Sgx.quoted_mrenclave = String.make 32 'f' } in
  (match Tee.Sgx.verify_quote ~ias forged with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "forged measurement accepted");
  (* a platform never provisioned with the IAS is rejected *)
  let rogue_ias = Tee.Sgx.create_ias () in
  let rogue = Tee.Sgx.create_platform ~ias:rogue_ias (drbg ~seed:"rogue" ()) in
  let rogue_quote = Tee.Sgx.generate_quote (Tee.Sgx.launch rogue image) ~report_data:"r" in
  match Tee.Sgx.verify_quote ~ias rogue_quote with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unprovisioned platform accepted"

let test_sgx_counters () =
  let _, _, platform, image = sgx_setup () in
  let e = Tee.Sgx.launch platform image in
  Tee.Sgx.ecall e;
  Tee.Sgx.ocall e;
  Tee.Sgx.ocall e;
  Alcotest.(check int) "transitions" 3 (Tee.Sgx.transitions e);
  Tee.Sgx.reset_counters e;
  Alcotest.(check int) "reset" 0 (Tee.Sgx.transitions e)

let test_sgx_epc () =
  let d = drbg () in
  let ias = Tee.Sgx.create_ias () in
  let platform = Tee.Sgx.create_platform ~epc_limit:(1 lsl 20) ~ias d in
  let e = Tee.Sgx.launch platform (Tee.Image.create ~name:"x" ~version:1 ~code:"c") in
  Alcotest.(check int) "within epc no faults" 0 (Tee.Sgx.touch e (1 lsl 19));
  Alcotest.(check bool) "beyond epc faults" true (Tee.Sgx.touch e (1 lsl 21) > 0);
  Alcotest.(check int) "working set tracked" (1 lsl 21) (Tee.Sgx.heap_used e)

(* -- TrustZone -------------------------------------------------------------- *)

let tz_setup () =
  let d = drbg () in
  let device = Tee.Trustzone.manufacture ~device_id:"dev-1" d in
  let atf = Tee.Image.create ~name:"atf" ~version:1 ~code:"atf-code" in
  let optee = Tee.Image.create ~name:"optee" ~version:1 ~code:"optee-code" in
  let nw = Tee.Image.create ~name:"storage-engine" ~version:2 ~code:"engine" in
  Tee.Trustzone.provision device [ atf; optee ];
  (d, device, atf, optee, nw)

let test_tz_secure_boot () =
  let _, device, atf, optee, nw = tz_setup () in
  match Tee.Trustzone.secure_boot device ~secure_stages:[ atf; optee ] ~normal_world:nw with
  | Error e -> Alcotest.fail e
  | Ok booted ->
      Alcotest.(check int) "boot chain length" 2
        (List.length (Tee.Trustzone.boot_chain booted));
      Alcotest.(check string) "normal world measured" (Tee.Image.measurement nw)
        (Tee.Trustzone.normal_world_hash booted)

let test_tz_boot_rejects_tampered_stage () =
  let _, device, atf, optee, nw = tz_setup () in
  let evil_optee = Tee.Image.backdoored optee in
  (match
     Tee.Trustzone.secure_boot device ~secure_stages:[ atf; evil_optee ]
       ~normal_world:nw
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tampered secure-world stage booted");
  (* unprovisioned stage also fails *)
  let unknown = Tee.Image.create ~name:"rootkit" ~version:9 ~code:"evil" in
  match
    Tee.Trustzone.secure_boot device ~secure_stages:[ atf; unknown ] ~normal_world:nw
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unprovisioned stage booted"

let test_tz_attestation () =
  let _, device, atf, optee, nw = tz_setup () in
  let booted =
    match Tee.Trustzone.secure_boot device ~secure_stages:[ atf; optee ] ~normal_world:nw with
    | Ok b -> b
    | Error e -> Alcotest.fail e
  in
  let challenge = "fresh-challenge-123" in
  let resp = Tee.Trustzone.attest booted ~challenge in
  (match Tee.Trustzone.verify_attestation ~rotpk:(Tee.Trustzone.rotpk device) ~challenge resp with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "attestation used one world switch" 1
    (Tee.Trustzone.world_switches device);
  (* replayed response (old challenge) rejected *)
  (match
     Tee.Trustzone.verify_attestation ~rotpk:(Tee.Trustzone.rotpk device)
       ~challenge:"another-challenge" resp
   with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "replayed attestation accepted");
  (* verification against another device's ROTPK fails *)
  let other = Tee.Trustzone.manufacture ~device_id:"dev-2" (drbg ~seed:"other-device" ()) in
  match
    Tee.Trustzone.verify_attestation ~rotpk:(Tee.Trustzone.rotpk other) ~challenge resp
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "attestation verified under wrong ROTPK"

let test_tz_attestation_reports_modified_normal_world () =
  let _, device, atf, optee, nw = tz_setup () in
  let evil_nw = Tee.Image.backdoored nw in
  (* trusted boot does not halt on normal-world changes (the monitor
     decides) but the attested hash must reflect the change *)
  let booted =
    match
      Tee.Trustzone.secure_boot device ~secure_stages:[ atf; optee ]
        ~normal_world:evil_nw
    with
    | Ok b -> b
    | Error e -> Alcotest.fail e
  in
  let resp = Tee.Trustzone.attest booted ~challenge:"c" in
  Alcotest.(check bool) "modified normal world visible in quote" true
    (resp.Tee.Trustzone.resp_normal_world_hash <> Tee.Image.measurement nw)

let suite =
  [
    ("image measurement", `Quick, test_image_measurement);
    ("sgx quote verifies", `Quick, test_sgx_quote_verifies);
    ("sgx forged quote rejected", `Quick, test_sgx_forged_quote_rejected);
    ("sgx counters", `Quick, test_sgx_counters);
    ("sgx epc", `Quick, test_sgx_epc);
    ("tz secure boot", `Quick, test_tz_secure_boot);
    ("tz rejects tampered stage", `Quick, test_tz_boot_rejects_tampered_stage);
    ("tz attestation", `Quick, test_tz_attestation);
    ("tz reports modified normal world", `Quick, test_tz_attestation_reports_modified_normal_world);
  ]
