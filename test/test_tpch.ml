(* TPC-H workload tests: generator invariants and end-to-end execution
   of all 17 evaluated queries at a tiny scale factor. *)

open Ironsafe_sql
module Tpch = Ironsafe_tpch

let db_and_stats =
  lazy
    (let db = Database.create ~pager:(Pager.in_memory ()) in
     let stats = Tpch.Dbgen.populate db ~scale:0.005 in
     (db, stats))

let db () = fst (Lazy.force db_and_stats)
let stats () = snd (Lazy.force db_and_stats)

let count db table =
  match (Database.query db (Printf.sprintf "select count(*) as c from %s" table)).Exec.rows with
  | [ [| Value.Int n |] ] -> n
  | _ -> Alcotest.fail "count query failed"

let test_row_counts () =
  let db = db () in
  Alcotest.(check int) "regions" 5 (count db "region");
  Alcotest.(check int) "nations" 25 (count db "nation");
  Alcotest.(check int) "suppliers" 50 (count db "supplier");
  Alcotest.(check int) "customers" 750 (count db "customer");
  Alcotest.(check int) "parts" 1000 (count db "part");
  Alcotest.(check int) "partsupp = 4x parts" 4000 (count db "partsupp");
  Alcotest.(check int) "orders" 7500 (count db "orders");
  let li = count db "lineitem" in
  Alcotest.(check bool) "lineitems 1-7 per order" true (li >= 7500 && li <= 7 * 7500);
  Alcotest.(check int) "stats match" li (stats ()).Tpch.Dbgen.lineitems

let test_key_integrity () =
  let db = db () in
  (* every lineitem references an existing order and part *)
  let orphans sql =
    match (Database.query db sql).Exec.rows with
    | [ [| Value.Int n |] ] -> n
    | _ -> Alcotest.fail "orphan query failed"
  in
  Alcotest.(check int) "no orphan orderkeys" 0
    (orphans
       "select count(*) as c from lineitem where l_orderkey not in (select o_orderkey from orders)");
  Alcotest.(check int) "no orphan partkeys" 0
    (orphans
       "select count(*) as c from lineitem where l_partkey not in (select p_partkey from part)");
  Alcotest.(check int) "no orphan suppkeys" 0
    (orphans
       "select count(*) as c from lineitem where l_suppkey not in (select s_suppkey from supplier)");
  Alcotest.(check int) "customers reference nations" 0
    (orphans
       "select count(*) as c from customer where c_nationkey not in (select n_nationkey from nation)")

let test_date_invariants () =
  let db = db () in
  let bad sql =
    match (Database.query db sql).Exec.rows with
    | [ [| Value.Int n |] ] -> n
    | _ -> Alcotest.fail "invariant query failed"
  in
  Alcotest.(check int) "shipdate after orderdate" 0
    (bad
       "select count(*) as c from lineitem, orders where l_orderkey = o_orderkey and l_shipdate <= o_orderdate");
  Alcotest.(check int) "receipt after ship" 0
    (bad "select count(*) as c from lineitem where l_receiptdate <= l_shipdate");
  Alcotest.(check int) "discounts in range" 0
    (bad "select count(*) as c from lineitem where l_discount < 0.0 or l_discount > 0.1")

let test_determinism () =
  let db1 = Database.create ~pager:(Pager.in_memory ()) in
  let db2 = Database.create ~pager:(Pager.in_memory ()) in
  ignore (Tpch.Dbgen.populate db1 ~scale:0.002 ~seed:"same");
  ignore (Tpch.Dbgen.populate db2 ~scale:0.002 ~seed:"same");
  let dump db =
    (Database.query db "select o_orderkey, o_custkey, o_totalprice from orders order by o_orderkey limit 50").Exec.rows
  in
  Alcotest.(check bool) "same seed, same data" true (dump db1 = dump db2);
  let db3 = Database.create ~pager:(Pager.in_memory ()) in
  ignore (Tpch.Dbgen.populate db3 ~scale:0.002 ~seed:"different");
  Alcotest.(check bool) "different seed, different data" true (dump db1 <> dump db3)

let test_all_queries_run () =
  let db = db () in
  List.iter
    (fun (q : Tpch.Queries.t) ->
      match Database.query db q.Tpch.Queries.sql with
      | r ->
          Alcotest.(check bool)
            (Printf.sprintf "Q%d has columns" q.Tpch.Queries.id)
            true
            (r.Exec.columns <> [])
      | exception e ->
          Alcotest.failf "Q%d failed: %s" q.Tpch.Queries.id (Printexc.to_string e))
    Tpch.Queries.complete

let test_q1_consistency () =
  let db = db () in
  (* Q1's aggregates satisfy algebraic relations *)
  List.iter
    (fun row ->
      match row with
      | [| _; _; _; Value.Float base; Value.Float disc; Value.Float charge; _; _; _; Value.Int n |] ->
          Alcotest.(check bool) "discounted <= base" true (disc <= base);
          Alcotest.(check bool) "charge >= discounted" true (charge >= disc);
          Alcotest.(check bool) "groups non-empty" true (n > 0)
      | _ -> Alcotest.fail "unexpected Q1 row shape")
    (Database.query db Tpch.Queries.q1.Tpch.Queries.sql).Exec.rows

let test_q6_equals_manual () =
  let db = db () in
  (* Q6 cross-checked against a manual computation over a full scan *)
  let expected = ref 0.0 in
  let lo = Date.of_ymd ~y:1994 ~m:1 ~d:1 in
  let hi = Date.add_years lo 1 in
  let hf = Catalog.find (Database.catalog db) "lineitem" in
  Heap_file.iter hf ~f:(fun r ->
      match (r.(4), r.(5), r.(6), r.(10)) with
      | Value.Float qty, Value.Float price, Value.Float disc, Value.Date ship ->
          if ship >= lo && ship < hi && disc >= 0.05 && disc <= 0.07 && qty < 24.0
          then expected := !expected +. (price *. disc)
      | _ -> Alcotest.fail "row shape");
  match (Database.query db Tpch.Queries.q6.Tpch.Queries.sql).Exec.rows with
  | [ [| Value.Float got |] ] ->
      Alcotest.(check (float 0.01)) "Q6 revenue" !expected got
  | [ [| Value.Null |] ] -> Alcotest.(check (float 0.01)) "Q6 empty" !expected 0.0
  | _ -> Alcotest.fail "Q6 shape"

let test_q13_includes_customers_without_orders () =
  let db = db () in
  let rows = (Database.query db Tpch.Queries.q13.Tpch.Queries.sql).Exec.rows in
  let total =
    List.fold_left
      (fun acc r -> match r with [| _; Value.Int c |] -> acc + c | _ -> acc)
      0 rows
  in
  Alcotest.(check int) "every customer counted once" 750 total

let test_selectivity_variant () =
  let db = db () in
  let rows_at sel =
    match (Database.query db (Tpch.Queries.q1_with_selectivity sel)).Exec.rows with
    | rows ->
        List.fold_left
          (fun acc r ->
            match r.(Array.length r - 1) with Value.Int n -> acc + n | _ -> acc)
          0 rows
  in
  let r10 = rows_at 0.10 and r20 = rows_at 0.20 and r100 = rows_at 1.0 in
  Alcotest.(check bool) "monotone in selectivity" true (r10 < r20 && r20 < r100);
  let total = count db "lineitem" in
  Alcotest.(check bool) "sel=1 covers all rows" true (r100 >= total * 95 / 100);
  (* roughly proportional: 20% cutoff selects about twice the 10% one *)
  let ratio = float_of_int r20 /. float_of_int (max 1 r10) in
  Alcotest.(check bool) "roughly doubles" true (ratio > 1.5 && ratio < 2.6)

let test_by_id () =
  Alcotest.(check int) "q9 id" 9 (Tpch.Queries.by_id 9).Tpch.Queries.id;
  Alcotest.(check int) "17 evaluated+q1" 17 (List.length Tpch.Queries.all);
  Alcotest.(check int) "16 evaluated" 16 (List.length Tpch.Queries.evaluated);
  Alcotest.(check int) "22 complete" 22 (List.length Tpch.Queries.complete);
  Alcotest.(check int) "q22 reachable" 22
    (Tpch.Queries.by_id_complete 22).Tpch.Queries.id;
  Alcotest.check_raises "q22 not in the paper's set"
    (Invalid_argument "Queries.by_id: no query 22") (fun () ->
      ignore (Tpch.Queries.by_id 22))

let test_q22_substring_semantics () =
  let db = db () in
  (* country codes are the first two phone digits = 10 + nationkey *)
  match
    (Database.query db
       "select count(*) as c from customer where substring(c_phone from 1 for 2) = '10'").Exec.rows
  with
  | [ [| Value.Int n |] ] ->
      (* nationkey 0 (ALGERIA) customers *)
      let expected =
        match
          (Database.query db
             "select count(*) as c from customer where c_nationkey = 0").Exec.rows
        with
        | [ [| Value.Int m |] ] -> m
        | _ -> -1
      in
      Alcotest.(check int) "substring matches nationkey" expected n
  | _ -> Alcotest.fail "count shape"

let test_counts_of_scale () =
  let c = Tpch.Dbgen.counts_of_scale 1.0 in
  Alcotest.(check int) "sf1 suppliers" 10_000 c.Tpch.Dbgen.suppliers;
  Alcotest.(check int) "sf1 orders" 1_500_000 c.Tpch.Dbgen.orders;
  let tiny = Tpch.Dbgen.counts_of_scale 0.000001 in
  Alcotest.(check int) "floor of one" 1 tiny.Tpch.Dbgen.suppliers

let suite =
  [
    ("row counts", `Quick, test_row_counts);
    ("key integrity", `Quick, test_key_integrity);
    ("date invariants", `Quick, test_date_invariants);
    ("determinism", `Quick, test_determinism);
    ("all 17 queries run", `Slow, test_all_queries_run);
    ("q1 consistency", `Quick, test_q1_consistency);
    ("q6 equals manual scan", `Quick, test_q6_equals_manual);
    ("q13 covers all customers", `Quick, test_q13_includes_customers_without_orders);
    ("selectivity variant", `Quick, test_selectivity_variant);
    ("query lookup", `Quick, test_by_id);
    ("q22 substring semantics", `Quick, test_q22_substring_semantics);
    ("counts of scale", `Quick, test_counts_of_scale);
  ]
