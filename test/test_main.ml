let () =
  (* CI's differential job reruns the whole suite with telemetry
     collection enabled; every assertion must hold identically
     (observability is contractually zero-perturbation). *)
  if Sys.getenv_opt "IRONSAFE_OBS" = Some "1" then Ironsafe_obs.Obs.enable ();
  Alcotest.run "ironsafe"
    [
      ("crypto", Test_crypto.suite);
      ("sim", Test_sim.suite);
      ("storage", Test_storage.suite);
      ("securestore", Test_securestore.suite);
      ("tee", Test_tee.suite);
      ("net", Test_net.suite);
      ("sql", Test_sql.suite);
      ("sql-advanced", Test_sql_advanced.suite);
      ("bufpool", Test_bufpool.suite);
      ("index", Test_index.suite);
      ("tpch", Test_tpch.suite);
      ("policy", Test_policy.suite);
      ("monitor", Test_monitor.suite);
      ("core", Test_core.suite);
      ("obs", Test_obs.suite);
      ("forensics", Test_forensics.suite);
      ("flight", Test_flight.suite);
      ("differential", Test_differential.suite);
      ("batch-differential", Test_batch_differential.suite);
      ("faults", Test_fault.suite);
      ("wal", Test_wal.suite);
      ("sched", Test_sched.suite);
      ("cluster", Test_cluster.suite);
    ]
