let () =
  Alcotest.run "ironsafe"
    [
      ("crypto", Test_crypto.suite);
      ("sim", Test_sim.suite);
      ("storage", Test_storage.suite);
      ("securestore", Test_securestore.suite);
      ("tee", Test_tee.suite);
      ("net", Test_net.suite);
      ("sql", Test_sql.suite);
      ("sql-advanced", Test_sql_advanced.suite);
      ("bufpool", Test_bufpool.suite);
      ("index", Test_index.suite);
      ("tpch", Test_tpch.suite);
      ("policy", Test_policy.suite);
      ("monitor", Test_monitor.suite);
      ("core", Test_core.suite);
      ("obs", Test_obs.suite);
      ("differential", Test_differential.suite);
      ("faults", Test_fault.suite);
      ("sched", Test_sched.suite);
    ]
