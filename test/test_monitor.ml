(* Trusted monitor tests: audit log tamper evidence, both attestation
   protocols against adversarial variations, and the authorization
   pipeline (access policy, execution policy, rewriting, sessions,
   compliance proofs). *)

module M = Ironsafe_monitor
module Tee = Ironsafe_tee
module P = Ironsafe_policy
module Sql = Ironsafe_sql
module C = Ironsafe_crypto

(* -- Audit log --------------------------------------------------------- *)

let log () = M.Audit_log.create ~name:"test-log" ~key:"log-key"

let test_audit_append_verify () =
  let l = log () in
  for i = 0 to 9 do
    ignore
      (M.Audit_log.append l ~date:10_000 ~actor:"Ka" ~action:"read"
         ~detail:(Printf.sprintf "query %d" i))
  done;
  Alcotest.(check int) "length" 10 (M.Audit_log.length l);
  (match M.Audit_log.verify l with
  | Ok () -> ()
  | Error i -> Alcotest.failf "chain broken at %d" i);
  Alcotest.(check int) "actor filter" 10 (List.length (M.Audit_log.filter l ~actor:"Ka"));
  Alcotest.(check int) "other actor" 0 (List.length (M.Audit_log.filter l ~actor:"Kb"))

let test_audit_tamper_detected () =
  let l = log () in
  for i = 0 to 4 do
    ignore (M.Audit_log.append l ~date:10_000 ~actor:"Ka" ~action:"read"
              ~detail:(Printf.sprintf "q%d" i))
  done;
  M.Audit_log.tamper_entry l ~seq:2 ~detail:"covered up";
  match M.Audit_log.verify l with
  | Error 2 -> ()
  | Error i -> Alcotest.failf "wrong break point %d" i
  | Ok () -> Alcotest.fail "tampered log verified"

let test_audit_empty_verifies () =
  match M.Audit_log.verify (log ()) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "empty log must verify"

(* -- Monitor fixture ----------------------------------------------------- *)

type fixture = {
  monitor : M.Trusted_monitor.t;
  ias : Tee.Sgx.ias;
  platform : Tee.Sgx.platform;
  enclave : Tee.Sgx.enclave;
  host_image : Tee.Image.t;
  device : Tee.Trustzone.device;
  booted : Tee.Trustzone.booted;
  nw_image : Tee.Image.t;
  catalog : Sql.Catalog.t;
  db : Sql.Database.t;
}

let fixture ?(seed = "monitor-test") () =
  let drbg = C.Drbg.create ~seed in
  let ias = Tee.Sgx.create_ias () in
  let platform = Tee.Sgx.create_platform ~ias drbg in
  let host_image = Tee.Image.create ~name:"host-engine" ~version:2 ~code:"host-v2" in
  let enclave = Tee.Sgx.launch platform host_image in
  let device = Tee.Trustzone.manufacture ~device_id:"tz-1" drbg in
  let atf = Tee.Image.create ~name:"atf" ~version:1 ~code:"atf" in
  let optee = Tee.Image.create ~name:"optee" ~version:1 ~code:"optee" in
  let nw_image = Tee.Image.create ~name:"storage-engine" ~version:3 ~code:"nw-v3" in
  Tee.Trustzone.provision device [ atf; optee ];
  let booted =
    match Tee.Trustzone.secure_boot device ~secure_stages:[ atf; optee ] ~normal_world:nw_image with
    | Ok b -> b
    | Error e -> Alcotest.fail e
  in
  let monitor = M.Trusted_monitor.create ~ias ~seed:(seed ^ "-mon") in
  M.Trusted_monitor.trust_host_image monitor host_image;
  M.Trusted_monitor.trust_storage_device monitor ~device_id:"tz-1"
    ~rotpk:(Tee.Trustzone.rotpk device) ~normal_world:nw_image ~version:3;
  let db = Sql.Database.create ~pager:(Sql.Pager.in_memory ()) in
  Sql.Database.create_table db
    (P.Gdpr.governed_schema ~expiry:true ~name:"records"
       ~columns:[ ("id", Sql.Value.TInt); ("v", Sql.Value.TStr) ]
       ());
  Sql.Database.insert_rows db "records"
    [
      [| Sql.Value.Int 1; Sql.Value.Str "live"; Sql.Value.Date 20_000 |];
      [| Sql.Value.Int 2; Sql.Value.Str "expired"; Sql.Value.Date 1 |];
    ];
  let _, pk_a = C.Signature.generate drbg in
  let _, pk_b = C.Signature.generate drbg in
  M.Trusted_monitor.register_client monitor ~label:"Ka" ~pk:pk_a ~reuse_bit:None;
  M.Trusted_monitor.register_client monitor ~label:"Kb" ~pk:pk_b ~reuse_bit:(Some 0);
  M.Trusted_monitor.set_today monitor 15_000;
  {
    monitor;
    ias;
    platform;
    enclave;
    host_image;
    device;
    booted;
    nw_image;
    catalog = Sql.Database.catalog db;
    db;
  }

let attest_both f =
  let quote = Tee.Sgx.generate_quote f.enclave ~report_data:"host-pk" in
  (match M.Trusted_monitor.attest_host f.monitor ~quote ~location:"eu-west" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let challenge = M.Trusted_monitor.fresh_challenge f.monitor in
  let resp = Tee.Trustzone.attest f.booted ~challenge in
  match M.Trusted_monitor.attest_storage f.monitor ~challenge ~response:resp ~location:"eu-west" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

(* -- Attestation -------------------------------------------------------- *)

let test_attest_host_ok () =
  let f = fixture () in
  let quote = Tee.Sgx.generate_quote f.enclave ~report_data:"pk" in
  match M.Trusted_monitor.attest_host f.monitor ~quote ~location:"eu-west" with
  | Ok info ->
      Alcotest.(check int) "version resolved" 2 info.M.Trusted_monitor.host_version
  | Error e -> Alcotest.fail e

let test_attest_host_unknown_measurement () =
  let f = fixture () in
  let evil = Tee.Sgx.launch f.platform (Tee.Image.backdoored f.host_image) in
  let quote = Tee.Sgx.generate_quote evil ~report_data:"pk" in
  match M.Trusted_monitor.attest_host f.monitor ~quote ~location:"eu-west" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "backdoored host attested"

let test_attest_storage_ok () =
  let f = fixture () in
  let challenge = M.Trusted_monitor.fresh_challenge f.monitor in
  let resp = Tee.Trustzone.attest f.booted ~challenge in
  match M.Trusted_monitor.attest_storage f.monitor ~challenge ~response:resp ~location:"eu-west" with
  | Ok info ->
      Alcotest.(check int) "version from registry" 3 info.M.Trusted_monitor.storage_version
  | Error e -> Alcotest.fail e

let test_attest_storage_modified_normal_world () =
  let f = fixture () in
  (* reboot the device with a modified storage engine *)
  let atf = Tee.Image.create ~name:"atf" ~version:1 ~code:"atf" in
  let optee = Tee.Image.create ~name:"optee" ~version:1 ~code:"optee" in
  let booted_evil =
    match
      Tee.Trustzone.secure_boot f.device ~secure_stages:[ atf; optee ]
        ~normal_world:(Tee.Image.backdoored f.nw_image)
    with
    | Ok b -> b
    | Error e -> Alcotest.fail e
  in
  let challenge = M.Trusted_monitor.fresh_challenge f.monitor in
  let resp = Tee.Trustzone.attest booted_evil ~challenge in
  match M.Trusted_monitor.attest_storage f.monitor ~challenge ~response:resp ~location:"eu-west" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "modified normal world attested"

let test_attest_storage_unknown_device () =
  let f = fixture () in
  let rogue_drbg = C.Drbg.create ~seed:"rogue-dev" in
  let rogue = Tee.Trustzone.manufacture ~device_id:"rogue" rogue_drbg in
  let atf = Tee.Image.create ~name:"atf" ~version:1 ~code:"atf" in
  Tee.Trustzone.provision rogue [ atf ];
  let booted =
    match Tee.Trustzone.secure_boot rogue ~secure_stages:[ atf ] ~normal_world:f.nw_image with
    | Ok b -> b
    | Error e -> Alcotest.fail e
  in
  let challenge = M.Trusted_monitor.fresh_challenge f.monitor in
  let resp = Tee.Trustzone.attest booted ~challenge in
  match M.Trusted_monitor.attest_storage f.monitor ~challenge ~response:resp ~location:"x" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "impersonating device attested"

(* -- Authorization -------------------------------------------------------- *)

let authorize ?(client = "Ka") ?(exec_policy = []) f sql =
  M.Trusted_monitor.authorize f.monitor ~catalog:f.catalog ~client_label:client
    ~database:"db" ~exec_policy ~sql

let test_authorize_requires_attestation () =
  let f = fixture () in
  M.Trusted_monitor.set_access_policy f.monitor ~database:"db"
    ~policy:(P.Policy_parser.parse "read ::= sessionKeyIs(Ka)");
  match authorize f "select v from records" with
  | Error "host not attested" -> ()
  | _ -> Alcotest.fail "authorized without attestation"

let test_authorize_unknown_client () =
  let f = fixture () in
  attest_both f;
  match authorize ~client:"Mallory" f "select v from records" with
  | Error _ ->
      (* denied access must land in the audit log *)
      let entries = M.Audit_log.entries (M.Trusted_monitor.audit_log f.monitor) in
      Alcotest.(check bool) "denial logged" true
        (List.exists (fun e -> e.M.Audit_log.action = "denied") entries)
  | Ok _ -> Alcotest.fail "unknown client authorized"

let test_authorize_policy_denies_write () =
  let f = fixture () in
  attest_both f;
  M.Trusted_monitor.set_access_policy f.monitor ~database:"db"
    ~policy:(P.Policy_parser.parse "read ::= sessionKeyIs(Kb)\nwrite ::= sessionKeyIs(Ka)");
  (match authorize ~client:"Kb" f "delete from records where id = 1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "consumer write authorized");
  match authorize ~client:"Ka" f "delete from records where id = 99" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "owner write denied: %s" e

let test_authorize_rewrites_query () =
  let f = fixture () in
  attest_both f;
  M.Trusted_monitor.set_access_policy f.monitor ~database:"db"
    ~policy:
      (P.Policy_parser.parse
         "read ::= sessionKeyIs(Ka) | sessionKeyIs(Kb) & le(T, TIMESTAMP)");
  match authorize ~client:"Kb" f "select v from records order by id" with
  | Error e -> Alcotest.fail e
  | Ok auth -> (
      match Sql.Database.exec_ast f.db auth.M.Trusted_monitor.auth_stmt with
      | Sql.Database.Result r ->
          (* record 2 expired at date 1 < today 15000: filtered out *)
          Alcotest.(check int) "expired row hidden" 1 (List.length r.Sql.Exec.rows)
      | _ -> Alcotest.fail "rewritten query failed")

let test_authorize_owner_sees_everything () =
  let f = fixture () in
  attest_both f;
  M.Trusted_monitor.set_access_policy f.monitor ~database:"db"
    ~policy:
      (P.Policy_parser.parse
         "read ::= sessionKeyIs(Ka) | sessionKeyIs(Kb) & le(T, TIMESTAMP)");
  match authorize ~client:"Ka" f "select v from records" with
  | Error e -> Alcotest.fail e
  | Ok auth -> (
      match Sql.Database.exec_ast f.db auth.M.Trusted_monitor.auth_stmt with
      | Sql.Database.Result r ->
          Alcotest.(check int) "owner unfiltered" 2 (List.length r.Sql.Exec.rows)
      | _ -> Alcotest.fail "query failed")

let test_authorize_exec_policy_downgrade () =
  let f = fixture () in
  attest_both f;
  M.Trusted_monitor.set_access_policy f.monitor ~database:"db"
    ~policy:(P.Policy_parser.parse "read ::= sessionKeyIs(Ka)");
  (* policy requires newer storage firmware than attested (v3) *)
  let exec_policy = P.Policy_parser.parse "exec ::= fwVersionStorage(4)" in
  match authorize ~exec_policy f "select v from records" with
  | Error e -> Alcotest.fail e
  | Ok auth ->
      Alcotest.(check bool) "offload blocked" false
        auth.M.Trusted_monitor.auth_offload_allowed

let test_authorize_exec_policy_denies_host () =
  let f = fixture () in
  attest_both f;
  M.Trusted_monitor.set_access_policy f.monitor ~database:"db"
    ~policy:(P.Policy_parser.parse "read ::= sessionKeyIs(Ka)");
  let exec_policy = P.Policy_parser.parse "exec ::= hostLocIs(us-east)" in
  match authorize ~exec_policy f "select v from records" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-compliant host accepted"

let test_sessions () =
  let f = fixture () in
  attest_both f;
  M.Trusted_monitor.set_access_policy f.monitor ~database:"db"
    ~policy:(P.Policy_parser.parse "read ::= sessionKeyIs(Ka)");
  match authorize f "select v from records" with
  | Error e -> Alcotest.fail e
  | Ok auth ->
      let key = auth.M.Trusted_monitor.auth_session_key in
      Alcotest.(check bool) "session valid" true (M.Trusted_monitor.session_valid f.monitor key);
      M.Trusted_monitor.session_cleanup f.monitor key;
      Alcotest.(check bool) "session revoked" false (M.Trusted_monitor.session_valid f.monitor key)

let test_compliance_proof () =
  let f = fixture () in
  attest_both f;
  M.Trusted_monitor.set_access_policy f.monitor ~database:"db"
    ~policy:(P.Policy_parser.parse "read ::= sessionKeyIs(Ka)");
  match authorize f "select v from records" with
  | Error e -> Alcotest.fail e
  | Ok auth ->
      let pk = M.Trusted_monitor.public_key f.monitor in
      Alcotest.(check bool) "proof verifies" true
        (M.Trusted_monitor.verify_proof ~monitor_pk:pk auth.M.Trusted_monitor.auth_proof);
      let forged =
        { auth.M.Trusted_monitor.auth_proof with
          M.Trusted_monitor.proof_query_digest = C.Sha256.digest "another query" }
      in
      Alcotest.(check bool) "forged proof rejected" false
        (M.Trusted_monitor.verify_proof ~monitor_pk:pk forged)

let test_obligations_logged () =
  let f = fixture () in
  attest_both f;
  M.Trusted_monitor.set_access_policy f.monitor ~database:"db"
    ~policy:(P.Policy_parser.parse "read ::= logUpdate(share-log, K, Q)");
  let before = M.Audit_log.length (M.Trusted_monitor.audit_log f.monitor) in
  (match authorize f "select v from records" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "read logged" (before + 1)
    (M.Audit_log.length (M.Trusted_monitor.audit_log f.monitor));
  match M.Audit_log.verify (M.Trusted_monitor.audit_log f.monitor) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "audit chain broken"

let test_parse_error_logged_and_denied () =
  let f = fixture () in
  attest_both f;
  M.Trusted_monitor.set_access_policy f.monitor ~database:"db"
    ~policy:(P.Policy_parser.parse "read ::= sessionKeyIs(Ka)");
  match authorize f "selec nonsense from" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed SQL authorized"


let test_multi_storage_nodes () =
  let f = fixture ~seed:"multi-node" () in
  attest_both f;
  (* a second, older device (v1 firmware) joins the deployment *)
  let drbg2 = C.Drbg.create ~seed:"second-device" in
  let dev2 = Tee.Trustzone.manufacture ~device_id:"tz-2" drbg2 in
  let atf = Tee.Image.create ~name:"atf" ~version:1 ~code:"atf" in
  let nw_old = Tee.Image.create ~name:"storage-engine" ~version:1 ~code:"nw-v1" in
  Tee.Trustzone.provision dev2 [ atf ];
  M.Trusted_monitor.trust_storage_device f.monitor ~device_id:"tz-2"
    ~rotpk:(Tee.Trustzone.rotpk dev2) ~normal_world:nw_old ~version:1;
  let booted2 =
    match Tee.Trustzone.secure_boot dev2 ~secure_stages:[ atf ] ~normal_world:nw_old with
    | Ok b -> b
    | Error e -> Alcotest.fail e
  in
  let challenge = M.Trusted_monitor.fresh_challenge f.monitor in
  let resp = Tee.Trustzone.attest booted2 ~challenge in
  (match
     M.Trusted_monitor.attest_storage f.monitor ~challenge ~response:resp
       ~location:"us-east"
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check (list string)) "both nodes attested" [ "tz-2"; "tz-1" ]
    (M.Trusted_monitor.attested_storage_nodes f.monitor);
  M.Trusted_monitor.set_access_policy f.monitor ~database:"db"
    ~policy:(P.Policy_parser.parse "read ::= sessionKeyIs(Ka)");
  (* only the up-to-date node satisfies the execution policy *)
  let exec_policy = P.Policy_parser.parse "exec ::= fwVersionStorage(latest)" in
  (match authorize ~exec_policy f "select v from records" with
  | Error e -> Alcotest.fail e
  | Ok auth ->
      Alcotest.(check (list string)) "one compliant node" [ "tz-1" ]
        auth.M.Trusted_monitor.auth_compliant_storage;
      Alcotest.(check bool) "offload allowed" true
        auth.M.Trusted_monitor.auth_offload_allowed);
  (* a location policy can select the other node *)
  let exec_policy = P.Policy_parser.parse "exec ::= storageLocIs(us-east)" in
  match authorize ~exec_policy f "select v from records" with
  | Error e -> Alcotest.fail e
  | Ok auth ->
      Alcotest.(check (list string)) "us-east node selected" [ "tz-2" ]
        auth.M.Trusted_monitor.auth_compliant_storage

let suite =
  [
    ("audit append/verify", `Quick, test_audit_append_verify);
    ("audit tamper detected", `Quick, test_audit_tamper_detected);
    ("audit empty verifies", `Quick, test_audit_empty_verifies);
    ("attest host ok", `Quick, test_attest_host_ok);
    ("attest host unknown measurement", `Quick, test_attest_host_unknown_measurement);
    ("attest storage ok", `Quick, test_attest_storage_ok);
    ("attest storage modified nw", `Quick, test_attest_storage_modified_normal_world);
    ("attest storage unknown device", `Quick, test_attest_storage_unknown_device);
    ("authorize requires attestation", `Quick, test_authorize_requires_attestation);
    ("authorize unknown client", `Quick, test_authorize_unknown_client);
    ("authorize policy denies write", `Quick, test_authorize_policy_denies_write);
    ("authorize rewrites query", `Quick, test_authorize_rewrites_query);
    ("authorize owner unfiltered", `Quick, test_authorize_owner_sees_everything);
    ("authorize exec downgrade", `Quick, test_authorize_exec_policy_downgrade);
    ("authorize exec denies host", `Quick, test_authorize_exec_policy_denies_host);
    ("sessions", `Quick, test_sessions);
    ("compliance proof", `Quick, test_compliance_proof);
    ("obligations logged", `Quick, test_obligations_logged);
    ("parse error denied", `Quick, test_parse_error_logged_and_denied);
    ("multi storage nodes", `Quick, test_multi_storage_nodes);
  ]
