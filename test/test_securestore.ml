(* Secure page store tests: confidentiality, integrity, freshness,
   reboot recovery, and detection of every attack in the threat model
   (§3.3): tampering, displacement, rollback, forking. *)

module S = Ironsafe_storage
module Sec = Ironsafe_securestore
module C = Ironsafe_crypto
module Obs = Ironsafe_obs.Obs
module Metrics = Ironsafe_obs.Metrics

let hardware_key = String.make 32 'H'

let setup ?(data_pages = 8) ?(page_mode = Sec.Secure_store.Cbc) () =
  let device =
    S.Block_device.create ~pages:(Sec.Secure_store.device_pages_for ~data_pages)
  in
  let rpmb = S.Rpmb.create () in
  let drbg = C.Drbg.create ~seed:"securestore-test" in
  match
    Sec.Secure_store.initialize ~device ~rpmb ~hardware_key ~page_mode
      ~data_pages ~drbg ()
  with
  | Ok store -> (device, rpmb, store, drbg)
  | Error e -> Alcotest.failf "init failed: %a" Sec.Secure_store.pp_error e

let write_ok store i data =
  match Sec.Secure_store.write_page store i data with
  | Ok () -> ()
  | Error e -> Alcotest.failf "write %d failed: %a" i Sec.Secure_store.pp_error e

let read_ok store i =
  match Sec.Secure_store.read_page store i with
  | Ok data -> data
  | Error e -> Alcotest.failf "read %d failed: %a" i Sec.Secure_store.pp_error e

let test_roundtrip () =
  let _, _, store, _ = setup () in
  write_ok store 0 "hello secure world";
  write_ok store 7 (String.make Sec.Secure_store.capacity 'z');
  Alcotest.(check string) "page 0" "hello secure world" (read_ok store 0);
  Alcotest.(check string) "page 7 full" (String.make Sec.Secure_store.capacity 'z')
    (read_ok store 7);
  write_ok store 0 "overwritten";
  Alcotest.(check string) "overwrite" "overwritten" (read_ok store 0)

let test_bounds_and_capacity () =
  let _, _, store, _ = setup () in
  Alcotest.check_raises "index oob"
    (Invalid_argument "Secure_store.read_page: index out of range") (fun () ->
      ignore (Sec.Secure_store.read_page store 8));
  Alcotest.check_raises "payload too large"
    (Invalid_argument "Secure_store.write_page: payload exceeds page capacity")
    (fun () ->
      ignore
        (Sec.Secure_store.write_page store 0
           (String.make (Sec.Secure_store.capacity + 1) 'x')))

let test_confidentiality () =
  let device, _, store, _ = setup () in
  let secret = "very-secret-customer-record" in
  write_ok store 3 secret;
  (* the raw medium must not contain the plaintext *)
  let raw = S.Block_device.read_page device 3 in
  let contains hay needle =
    let n = String.length needle in
    let rec go i =
      i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "plaintext not on medium" false (contains raw secret)

let test_tamper_detected () =
  let device, _, store, _ = setup () in
  write_ok store 2 "integrity protected";
  (* flip a ciphertext byte (the page layout is IV | MAC | len | ct) *)
  S.Block_device.tamper device ~page:2 ~offset:55;
  match Sec.Secure_store.read_page store 2 with
  | Error (Sec.Secure_store.Tampered_page 2) -> ()
  | Ok _ -> Alcotest.fail "tampered page read back successfully"
  | Error e -> Alcotest.failf "unexpected error: %a" Sec.Secure_store.pp_error e

let test_displacement_detected () =
  let device, _, store, _ = setup () in
  write_ok store 0 "page zero";
  write_ok store 1 "page one";
  S.Block_device.swap_pages device 0 1;
  (match Sec.Secure_store.read_page store 0 with
  | Error (Sec.Secure_store.Tampered_page 0) -> ()
  | Ok _ -> Alcotest.fail "displaced page accepted"
  | Error e -> Alcotest.failf "unexpected error: %a" Sec.Secure_store.pp_error e);
  match Sec.Secure_store.read_page store 1 with
  | Error (Sec.Secure_store.Tampered_page 1) -> ()
  | Ok _ -> Alcotest.fail "displaced page accepted"
  | Error e -> Alcotest.failf "unexpected error: %a" Sec.Secure_store.pp_error e

let test_reopen () =
  let device, rpmb, store, _ = setup () in
  write_ok store 4 "survives reboot";
  let drbg2 = C.Drbg.create ~seed:"reboot" in
  match
    Sec.Secure_store.open_existing ~device ~rpmb ~hardware_key ~data_pages:8
      ~drbg:drbg2 ()
  with
  | Error e -> Alcotest.failf "reopen failed: %a" Sec.Secure_store.pp_error e
  | Ok store2 ->
      Alcotest.(check string) "data recovered" "survives reboot" (read_ok store2 4)

let test_rollback_detected () =
  let device, rpmb, store, _ = setup () in
  write_ok store 0 "version 1";
  S.Block_device.snapshot device ~name:"old";
  write_ok store 0 "version 2";
  (* adversary reverts the whole medium (data + Merkle metadata) *)
  (match S.Block_device.rollback device ~name:"old" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let drbg2 = C.Drbg.create ~seed:"after-rollback" in
  match
    Sec.Secure_store.open_existing ~device ~rpmb ~hardware_key ~data_pages:8
      ~drbg:drbg2 ()
  with
  | Error Sec.Secure_store.Stale_root -> ()
  | Ok _ -> Alcotest.fail "rollback went undetected"
  | Error e -> Alcotest.failf "unexpected error: %a" Sec.Secure_store.pp_error e

let test_fork_detected () =
  let device, rpmb, store, _ = setup () in
  write_ok store 0 "pre-fork";
  let replica = S.Block_device.fork device in
  (* the real store moves on; the RPMB (inside the SoC) moves with it *)
  write_ok store 0 "post-fork";
  let drbg2 = C.Drbg.create ~seed:"fork" in
  match
    Sec.Secure_store.open_existing ~device:replica ~rpmb ~hardware_key
      ~data_pages:8 ~drbg:drbg2 ()
  with
  | Error Sec.Secure_store.Stale_root -> ()
  | Ok _ -> Alcotest.fail "forked replica accepted"
  | Error e -> Alcotest.failf "unexpected error: %a" Sec.Secure_store.pp_error e

let test_wrong_hardware_key () =
  let device, rpmb, store, _ = setup () in
  write_ok store 0 "locked to SoC";
  let drbg2 = C.Drbg.create ~seed:"wrong-huk" in
  match
    Sec.Secure_store.open_existing ~device ~rpmb
      ~hardware_key:(String.make 32 'X') ~data_pages:8 ~drbg:drbg2 ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "opened with wrong hardware key"

let test_stats_counting () =
  let _, _, store, _ = setup () in
  Sec.Secure_store.reset_stats store;
  write_ok store 0 "counted";
  let s = Sec.Secure_store.stats store in
  Alcotest.(check int) "one encrypt" 1 s.Sec.Secure_store.page_encrypts;
  Alcotest.(check bool) "merkle work done" true (s.Sec.Secure_store.merkle_hashes > 0);
  Alcotest.(check bool) "rpmb anchored" true (s.Sec.Secure_store.rpmb_accesses > 0);
  Sec.Secure_store.reset_stats store;
  ignore (read_ok store 0);
  let s = Sec.Secure_store.stats store in
  Alcotest.(check int) "one decrypt" 1 s.Sec.Secure_store.page_decrypts;
  Alcotest.(check int) "no encrypts on read" 0 s.Sec.Secure_store.page_encrypts;
  Alcotest.(check bool) "freshness verified" true (s.Sec.Secure_store.merkle_hashes > 0)

let test_iv_uniqueness () =
  let device, _, store, _ = setup () in
  write_ok store 0 "same plaintext";
  let raw1 = S.Block_device.read_page device 0 in
  write_ok store 0 "same plaintext";
  let raw2 = S.Block_device.read_page device 0 in
  Alcotest.(check bool) "fresh IV per write" true (raw1 <> raw2)

let test_per_page_keys () =
  let data_pages = 8 in
  let device =
    S.Block_device.create ~pages:(Sec.Secure_store.device_pages_for ~data_pages)
  in
  let rpmb = S.Rpmb.create () in
  let drbg = C.Drbg.create ~seed:"per-page" in
  let store =
    match
      Sec.Secure_store.initialize ~key_mode:Sec.Secure_store.Per_page_keys
        ~device ~rpmb ~hardware_key ~data_pages ~drbg ()
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "init: %a" Sec.Secure_store.pp_error e
  in
  write_ok store 0 "page zero secret";
  write_ok store 5 "page five secret";
  Alcotest.(check string) "roundtrip p0" "page zero secret" (read_ok store 0);
  Alcotest.(check string) "roundtrip p5" "page five secret" (read_ok store 5);
  (* reopening in the same mode recovers the data *)
  (match
     Sec.Secure_store.open_existing ~key_mode:Sec.Secure_store.Per_page_keys
       ~device ~rpmb ~hardware_key ~data_pages
       ~drbg:(C.Drbg.create ~seed:"pp-reopen") ()
   with
  | Ok store2 ->
      Alcotest.(check string) "recovered" "page zero secret" (read_ok store2 0)
  | Error e -> Alcotest.failf "reopen: %a" Sec.Secure_store.pp_error e);
  (* opening in single-key mode cannot decrypt the pages *)
  match
    Sec.Secure_store.open_existing ~device ~rpmb ~hardware_key ~data_pages
      ~drbg:(C.Drbg.create ~seed:"pp-wrong") ()
  with
  | Error _ -> ()
  | Ok store3 -> (
      match Sec.Secure_store.read_page store3 0 with
      | Ok plain ->
          Alcotest.(check bool) "wrong mode decrypts garbage" true
            (plain <> "page zero secret")
      | Error _ -> ())

(* The root-MAC memo (read_page avoids recomputing HMAC(task_key, root)
   when the root is unchanged) must never serve a stale value. Interleave
   writes — each moves the Merkle root — with freshness-checked reads,
   force RPMB counter resyncs mid-stream, reboot, and finally roll the
   medium back: every legitimate read must verify, and the rollback must
   still be rejected with [Stale_root]. *)
let test_root_mac_memo_freshness () =
  let device, rpmb, store, _ = setup () in
  (* write -> read -> write -> read: a memo keyed on anything stale
     would make the post-write freshness check compare against the
     previous root's MAC and fail (or, worse, accept a wrong root) *)
  for i = 0 to 7 do
    write_ok store i (Printf.sprintf "v1 page %d" i);
    Alcotest.(check string) "read after write"
      (Printf.sprintf "v1 page %d" i)
      (read_ok store i)
  done;
  (* repeated reads of an unchanged root hit the memo and still verify *)
  for _ = 1 to 3 do
    ignore (read_ok store 0)
  done;
  (* an injected RPMB counter desync forces a resync + re-anchor during
     the next writes; reads after the resync must see the new anchor,
     not a memoized MAC of the pre-resync root *)
  let faults =
    Ironsafe_fault.Fault.(
      make ~seed:11 [ (Rpmb_desync, rule ~prob:1.0 ~max_fires:2 ()) ])
  in
  Ironsafe_fault.Fault.set_clock faults (fun () -> 0.0);
  S.Rpmb.set_faults rpmb faults;
  Sec.Secure_store.set_faults store faults;
  write_ok store 2 "v2 after desync";
  Alcotest.(check string) "read across resync" "v2 after desync"
    (read_ok store 2);
  write_ok store 3 "v2 again";
  Alcotest.(check string) "read across second resync" "v2 again"
    (read_ok store 3);
  Alcotest.(check int) "desyncs were injected" 2
    (Ironsafe_fault.Fault.stats faults).Ironsafe_fault.Fault.injected;
  (* reboot: a fresh store starts with a cold memo and must recover *)
  (match
     Sec.Secure_store.open_existing ~device ~rpmb ~hardware_key ~data_pages:8
       ~drbg:(C.Drbg.create ~seed:"memo-reboot") ()
   with
  | Ok store2 ->
      Alcotest.(check string) "recovered after reboot" "v2 after desync"
        (read_ok store2 2)
  | Error e -> Alcotest.failf "reopen: %a" Sec.Secure_store.pp_error e);
  (* and the memo must not have weakened rollback detection *)
  S.Block_device.snapshot device ~name:"pre";
  write_ok store 4 "v3";
  (match S.Block_device.rollback device ~name:"pre" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match
    Sec.Secure_store.open_existing ~device ~rpmb ~hardware_key ~data_pages:8
      ~drbg:(C.Drbg.create ~seed:"memo-rollback") ()
  with
  | Error Sec.Secure_store.Stale_root -> ()
  | Ok _ -> Alcotest.fail "rollback accepted with memoized root MAC"
  | Error e -> Alcotest.failf "unexpected error: %a" Sec.Secure_store.pp_error e

(* -- CTR page mode ------------------------------------------------------ *)

let test_ctr_roundtrip () =
  let device, _, store, _ = setup ~page_mode:Sec.Secure_store.Ctr () in
  Alcotest.(check bool) "mode reported" true
    (Sec.Secure_store.page_mode store = Sec.Secure_store.Ctr);
  write_ok store 0 "ctr secret payload";
  write_ok store 7 (String.make Sec.Secure_store.capacity 'z');
  Alcotest.(check string) "page 0" "ctr secret payload" (read_ok store 0);
  Alcotest.(check string) "page 7 full"
    (String.make Sec.Secure_store.capacity 'z')
    (read_ok store 7);
  (* rewriting the same plaintext must produce a different ciphertext:
     the nonce is derived from a fresh write epoch each time *)
  let raw1 = S.Block_device.read_page device 0 in
  write_ok store 0 "ctr secret payload";
  let raw2 = S.Block_device.read_page device 0 in
  Alcotest.(check bool) "fresh nonce per write" true (raw1 <> raw2);
  Alcotest.(check string) "overwrite reads back" "ctr secret payload"
    (read_ok store 0)

let test_ctr_tamper_detected () =
  let device, _, store, _ = setup ~page_mode:Sec.Secure_store.Ctr () in
  write_ok store 2 "ctr integrity protected";
  (* CTR decryption itself can never fail (it is a keystream XOR), so
     detection rests entirely on the page MAC *)
  S.Block_device.tamper device ~page:2 ~offset:55;
  match Sec.Secure_store.read_page store 2 with
  | Error (Sec.Secure_store.Tampered_page 2) -> ()
  | Ok _ -> Alcotest.fail "tampered CTR page read back successfully"
  | Error e -> Alcotest.failf "unexpected error: %a" Sec.Secure_store.pp_error e

let test_ctr_reopen () =
  let device, rpmb, store, _ = setup ~page_mode:Sec.Secure_store.Ctr () in
  write_ok store 4 "ctr survives reboot";
  (* a reboot draws a fresh boot salt from a different DRBG; old pages
     decrypt with their stored nonces, new writes stay unique *)
  match
    Sec.Secure_store.open_existing ~device ~rpmb ~hardware_key
      ~page_mode:Sec.Secure_store.Ctr ~data_pages:8
      ~drbg:(C.Drbg.create ~seed:"ctr-reboot") ()
  with
  | Error e -> Alcotest.failf "reopen failed: %a" Sec.Secure_store.pp_error e
  | Ok store2 ->
      Alcotest.(check string) "data recovered" "ctr survives reboot"
        (read_ok store2 4);
      write_ok store2 4 "ctr post-reboot write";
      Alcotest.(check string) "post-reboot write" "ctr post-reboot write"
        (read_ok store2 4)

(* The batched read path must return exactly what page-at-a-time reads
   return, in request order, whatever the lane count, in both cipher
   modes — and surface the same integrity verdicts. *)
let test_read_pages_matches_read_page () =
  List.iter
    (fun page_mode ->
      let device, _, store, _ = setup ~data_pages:16 ~page_mode () in
      for i = 0 to 15 do
        write_ok store i (Printf.sprintf "bulk page %d" i)
      done;
      let idx = [ 3; 0; 15; 7; 3 ] in
      let expect = List.map (fun i -> read_ok store i) idx in
      List.iter
        (fun lanes ->
          match Sec.Secure_store.read_pages store ~lanes idx with
          | Ok got ->
              Alcotest.(check (list string)) "batch = singles" expect got
          | Error e ->
              Alcotest.failf "read_pages: %a" Sec.Secure_store.pp_error e)
        [ 1; 4 ];
      (* a tampered member poisons the batch with the same verdict the
         single-page path gives *)
      S.Block_device.tamper device ~page:7 ~offset:60;
      match Sec.Secure_store.read_pages store ~lanes:4 idx with
      | Error (Sec.Secure_store.Tampered_page 7) -> ()
      | Ok _ -> Alcotest.fail "batch accepted a tampered page"
      | Error e ->
          Alcotest.failf "unexpected error: %a" Sec.Secure_store.pp_error e)
    [ Sec.Secure_store.Cbc; Sec.Secure_store.Ctr ]

(* -- observability instrumentation ------------------------------------- *)

let with_obs f =
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    f

(* The securestore-scope metrics must match the analytically known
   counts: reading back an N-page store is exactly N page reads, N MAC
   checks, N Merkle path verifications and N decryptions. *)
let test_obs_counters_match_analytic () =
  with_obs (fun () ->
      let n = 16 in
      let _, _, store, _ = setup ~data_pages:n () in
      for i = 0 to n - 1 do
        write_ok store i (Printf.sprintf "page %d" i)
      done;
      let before = Obs.metrics () in
      Alcotest.(check int) "writes counted" n
        (Metrics.counter_value before ~scope:"securestore" "pages_written");
      Sec.Secure_store.reset_stats store;
      for i = 0 to n - 1 do
        ignore (read_ok store i)
      done;
      let d = Metrics.diff ~before ~after:(Obs.metrics ()) in
      let count name = Metrics.counter_value d ~scope:"securestore" name in
      Alcotest.(check int) "pages_read = N" n (count "pages_read");
      Alcotest.(check int) "merkle_verifies = N" n (count "merkle_verifies");
      Alcotest.(check int) "page_decrypts = N" n (count "page_decrypts");
      Alcotest.(check int) "hmac_checks = N" n (count "hmac_checks");
      Alcotest.(check int) "no writes during scan" 0 (count "pages_written");
      (* and the registry agrees with the store's own stats *)
      let s = Sec.Secure_store.stats store in
      Alcotest.(check int) "metrics agree with stats"
        s.Sec.Secure_store.page_decrypts (count "page_decrypts"))

(* A secondary index over the encrypted store must cut the number of
   page decryptions a point query pays, not just the page reads. *)
let test_index_reduces_decrypts () =
  with_obs (fun () ->
      let data_pages = 128 in
      let _, _, store, _ = setup ~data_pages () in
      let db =
        Ironsafe_sql.Database.create ~pager:(Ironsafe_sql.Pager.secure store)
      in
      ignore
        (Ironsafe_sql.Database.exec db "create table t (k int, pad varchar)");
      (* wide rows so the table spans many encrypted pages *)
      let pad = String.make 400 'p' in
      Ironsafe_sql.Database.insert_rows db "t"
        (List.init 400 (fun i ->
             [| Ironsafe_sql.Value.Int i; Ironsafe_sql.Value.Str pad |]));
      let decrypts_of_query () =
        let before = Obs.metrics () in
        (match Ironsafe_sql.Database.exec db "select k from t where k = 123" with
        | Ironsafe_sql.Database.Result r ->
            Alcotest.(check int) "one matching row" 1
              (List.length r.Ironsafe_sql.Exec.rows)
        | _ -> Alcotest.fail "query failed");
        Metrics.counter_value
          (Metrics.diff ~before ~after:(Obs.metrics ()))
          ~scope:"securestore" "page_decrypts"
      in
      let full_scan = decrypts_of_query () in
      ignore (Ironsafe_sql.Database.exec db "create index t_k on t (k)");
      let indexed = decrypts_of_query () in
      Alcotest.(check bool)
        (Printf.sprintf "indexed (%d) < full scan (%d)" indexed full_scan)
        true
        (indexed < full_scan && full_scan > 1 && indexed >= 1))

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"secure store roundtrips arbitrary payloads" ~count:40
      (pair (int_bound 7) (string_of_size Gen.(0 -- Sec.Secure_store.capacity)))
      (fun (i, data) ->
        let _, _, store, _ = setup () in
        match Sec.Secure_store.write_page store i data with
        | Error _ -> false
        | Ok () -> Sec.Secure_store.read_page store i = Ok data);
    (* CTR pages round-trip, and a single flipped bit anywhere in the
       MAC-covered region (IV | MAC | len | ciphertext) must be caught
       by the page MAC — the keystream XOR itself detects nothing. *)
    Test.make ~name:"ctr page roundtrip + single-bit tamper detected"
      ~count:30
      (quad (int_bound 7)
         (string_of_size Gen.(1 -- Sec.Secure_store.capacity))
         small_nat (int_bound 7))
      (fun (i, data, byte_seed, bit) ->
        let device, _, store, _ = setup ~page_mode:Sec.Secure_store.Ctr () in
        match Sec.Secure_store.write_page store i data with
        | Error _ -> false
        | Ok () ->
            Sec.Secure_store.read_page store i = Ok data
            && begin
                 (* header_len (50) + ciphertext length = MAC coverage *)
                 let covered = 50 + String.length data in
                 let off = byte_seed mod covered in
                 let raw = Bytes.of_string (S.Block_device.read_page device i) in
                 Bytes.set raw off
                   (Char.chr (Char.code (Bytes.get raw off) lxor (1 lsl bit)));
                 S.Block_device.write_page device i (Bytes.to_string raw);
                 match Sec.Secure_store.read_page store i with
                 | Error _ -> true
                 | Ok _ -> false
               end);
  ]

let suite =
  [
    ("roundtrip", `Quick, test_roundtrip);
    ("bounds and capacity", `Quick, test_bounds_and_capacity);
    ("confidentiality", `Quick, test_confidentiality);
    ("tamper detected", `Quick, test_tamper_detected);
    ("displacement detected", `Quick, test_displacement_detected);
    ("reopen after reboot", `Quick, test_reopen);
    ("rollback detected", `Quick, test_rollback_detected);
    ("fork detected", `Quick, test_fork_detected);
    ("wrong hardware key", `Quick, test_wrong_hardware_key);
    ("stats counting", `Quick, test_stats_counting);
    ("iv uniqueness", `Quick, test_iv_uniqueness);
    ("per-page key mode", `Quick, test_per_page_keys);
    ("root mac memo never stale", `Quick, test_root_mac_memo_freshness);
    ("ctr roundtrip", `Quick, test_ctr_roundtrip);
    ("ctr tamper detected", `Quick, test_ctr_tamper_detected);
    ("ctr reopen after reboot", `Quick, test_ctr_reopen);
    ("read_pages matches read_page", `Quick, test_read_pages_matches_read_page);
    ("obs counters match analytic counts", `Quick, test_obs_counters_match_analytic);
    ("index reduces decrypts", `Quick, test_index_reduces_decrypts);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests
