(* Core integration tests: the partitioner, the five-configuration
   runner (result equivalence + metric sanity), and the end-to-end
   engine workflow with GDPR policies and attacks. *)

open Ironsafe
module Sql = Ironsafe_sql
module Tpch = Ironsafe_tpch
module P = Ironsafe_policy
module M = Ironsafe_monitor

(* a tiny shared TPC-H deployment, built once *)
let deploy =
  lazy
    (Deployment.create ~seed:"core-test"
       ~populate:(fun db -> ignore (Tpch.Dbgen.populate db ~scale:0.002))
       ())

(* -- Partitioner --------------------------------------------------------- *)

let catalog () = Sql.Database.catalog (Lazy.force deploy).Deployment.plain_db

let split sql = Partitioner.split (catalog ()) (Sql.Parser.parse sql)

let shipped_for plan table =
  List.find (fun (s : Partitioner.shipped_table) -> s.table = table)
    plan.Partitioner.shipped

let test_partitioner_pushes_filters () =
  let plan =
    split "select l_orderkey from lineitem where l_shipdate < date '1995-01-01' and l_quantity < 10"
  in
  let li = shipped_for plan "lineitem" in
  Alcotest.(check bool) "filter offloaded" true (Option.is_some li.Partitioner.predicate);
  Alcotest.(check (list string)) "projection minimal"
    [ "l_orderkey"; "l_quantity"; "l_shipdate" ]
    (List.sort compare li.Partitioner.columns)

let test_partitioner_join_preds_stay () =
  let plan =
    split
      "select o_orderdate from orders, lineitem where o_orderkey = l_orderkey and o_totalprice > 100"
  in
  let orders = shipped_for plan "orders" in
  let li = shipped_for plan "lineitem" in
  (* the single-table filter offloads; the join predicate must not *)
  Alcotest.(check bool) "orders filtered" true (Option.is_some orders.Partitioner.predicate);
  Alcotest.(check bool) "lineitem unfiltered" true (li.Partitioner.predicate = None)

let test_partitioner_multiple_occurrences_or () =
  (* Q21-style: lineitem appears as l1 (filtered) and l2 (unfiltered):
     the shipped table must be unfiltered *)
  let plan =
    split
      "select l1.l_orderkey from lineitem l1 where l1.l_quantity > 45 and exists \
       (select * from lineitem l2 where l2.l_orderkey = l1.l_orderkey)"
  in
  let li = shipped_for plan "lineitem" in
  Alcotest.(check bool) "unfiltered occurrence wins" true (li.Partitioner.predicate = None)

let test_partitioner_or_of_filters () =
  let plan =
    split
      "select l1.l_quantity from lineitem l1, lineitem l2 where l1.l_orderkey = l2.l_orderkey \
       and l1.l_quantity > 45 and l2.l_quantity < 5"
  in
  let li = shipped_for plan "lineitem" in
  (* both occurrences filtered: shipped predicate is their OR *)
  match li.Partitioner.predicate with
  | Some (Sql.Ast.Binop (Sql.Ast.Or, _, _)) -> ()
  | _ -> Alcotest.fail "expected OR of per-occurrence filters"

let test_partitioner_subquery_tables_included () =
  let plan =
    split
      "select o_orderpriority from orders where exists (select * from lineitem where \
       l_orderkey = o_orderkey and l_commitdate < l_receiptdate)"
  in
  Alcotest.(check bool) "lineitem shipped for subquery" true
    (List.exists (fun (s : Partitioner.shipped_table) -> s.table = "lineitem")
       plan.Partitioner.shipped);
  (* exists(select * ...) must not force shipping every lineitem column *)
  let li = shipped_for plan "lineitem" in
  Alcotest.(check bool) "star under exists is narrow" true
    (List.length li.Partitioner.columns < 16)

let test_partitioner_offload_sql_parses () =
  (* every offloaded sub-query of every TPC-H query must re-parse *)
  List.iter
    (fun (q : Tpch.Queries.t) ->
      let plan = split q.Tpch.Queries.sql in
      List.iter
        (fun (_, sql) ->
          match Sql.Parser.parse sql with
          | _ -> ()
          | exception e ->
              Alcotest.failf "Q%d offload %s: %s" q.Tpch.Queries.id sql
                (Printexc.to_string e))
        plan.Partitioner.offload_sql)
    Tpch.Queries.complete

let test_partitioner_describe () =
  let plan = split "select l_orderkey from lineitem where l_quantity < 5" in
  let text = Partitioner.describe plan in
  Alcotest.(check bool) "mentions the offload sql" true
    (String.length text > 0
    && (let contains hay needle =
          let n = String.length needle in
          let rec go i =
            i + n <= String.length hay
            && (String.sub hay i n = needle || go (i + 1))
          in
          go 0
        in
        contains text "filtered near data" && contains text "lineitem"))

let test_interconnect_profiles_ordering () =
  let open Ironsafe_sim in
  let bw p = (Params.with_interconnect p Params.default).Params.net_bandwidth_bytes_per_ns in
  let lat p = (Params.with_interconnect p Params.default).Params.net_latency_ns in
  Alcotest.(check bool) "pcie fastest bandwidth" true
    (bw Params.Pcie > bw Params.Nvme_of && bw Params.Nvme_of > bw Params.Tls_tcp);
  Alcotest.(check bool) "pcie lowest latency" true
    (lat Params.Pcie < lat Params.Nvme_of && lat Params.Nvme_of < lat Params.Tls_tcp);
  Alcotest.(check string) "names" "NVMe-oF" (Params.interconnect_name Params.Nvme_of)

(* -- Runner: result equivalence across configurations --------------------- *)

let render (r : Sql.Exec.result) =
  Fmt.str "%a" Sql.Exec.pp_result r

let test_configs_agree () =
  let d = Lazy.force deploy in
  List.iter
    (fun qid ->
      let sql = (Tpch.Queries.by_id_complete qid).Tpch.Queries.sql in
      let reference = render (Runner.run_query d Config.Hons sql).Runner.result in
      List.iter
        (fun cfg ->
          let m = Runner.run_query d cfg sql in
          Alcotest.(check string)
            (Printf.sprintf "Q%d %s = hons" qid (Config.abbrev cfg))
            reference (render m.Runner.result))
        [ Config.Hos; Config.Vcs; Config.Scs; Config.Sos ])
    (List.map (fun (q : Tpch.Queries.t) -> q.Tpch.Queries.id) Tpch.Queries.complete)

let test_metrics_sanity () =
  let d = Lazy.force deploy in
  let sql = (Tpch.Queries.by_id 6).Tpch.Queries.sql in
  let hons = Runner.run_query d Config.Hons sql in
  let vcs = Runner.run_query d Config.Vcs sql in
  let hos = Runner.run_query d Config.Hos sql in
  let scs = Runner.run_query d Config.Scs sql in
  Alcotest.(check bool) "split ships less than host-only" true
    (vcs.Runner.bytes_shipped < hons.Runner.bytes_shipped);
  Alcotest.(check bool) "secure slower than non-secure (host-only)" true
    (hos.Runner.end_to_end_ns > hons.Runner.end_to_end_ns);
  Alcotest.(check bool) "secure slower than non-secure (split)" true
    (scs.Runner.end_to_end_ns > vcs.Runner.end_to_end_ns);
  Alcotest.(check bool) "ironsafe beats host-only-secure on Q6" true
    (scs.Runner.end_to_end_ns < hos.Runner.end_to_end_ns);
  Alcotest.(check int) "scs and vcs ship the same bytes" vcs.Runner.bytes_shipped
    scs.Runner.bytes_shipped;
  Alcotest.(check bool) "secure configs touch crypto" true
    (List.mem_assoc "freshness" scs.Runner.storage_breakdown);
  Alcotest.(check bool) "non-secure configs do not" false
    (List.mem_assoc "freshness" vcs.Runner.storage_breakdown)

let test_deterministic_metrics () =
  let d = Lazy.force deploy in
  let sql = (Tpch.Queries.by_id 3).Tpch.Queries.sql in
  let a = Runner.run_query d Config.Scs sql in
  let b = Runner.run_query d Config.Scs sql in
  Alcotest.(check (float 1e-9)) "simulated time reproducible"
    a.Runner.end_to_end_ns b.Runner.end_to_end_ns

(* -- Engine end-to-end ------------------------------------------------------ *)

let governed_engine () =
  let populate db =
    Sql.Database.create_table db
      (P.Gdpr.governed_schema ~expiry:true ~reuse:true ~name:"trips"
         ~columns:[ ("id", Sql.Value.TInt); ("who", Sql.Value.TStr) ]
         ());
    let today = Sql.Date.of_ymd ~y:1998 ~m:12 ~d:1 in
    Sql.Database.insert_rows db "trips"
      [
        [| Sql.Value.Int 1; Sql.Value.Str "alice"; Sql.Value.Date (today + 30); Sql.Value.Str "11" |];
        [| Sql.Value.Int 2; Sql.Value.Str "bo"; Sql.Value.Date (today - 30); Sql.Value.Str "11" |];
        [| Sql.Value.Int 3; Sql.Value.Str "cleo"; Sql.Value.Date (today + 30); Sql.Value.Str "10" |];
      ]
  in
  let d = Deployment.create ~seed:"engine-test" ~populate () in
  let e = Engine.create d in
  ignore (Engine.register_client e ~label:"Ka" ());
  ignore (Engine.register_client e ~label:"Kb" ~reuse_bit:1 ());
  e

let test_engine_expiry_policy () =
  let e = governed_engine () in
  Engine.set_access_policy e (P.Gdpr.timely_deletion ~owner_key:"Ka" ~consumer_key:"Kb");
  (* owner sees all three rows *)
  (match Engine.submit e ~client:"Ka" ~sql:"select who from trips order by id" () with
  | Ok r -> Alcotest.(check int) "owner sees all" 3 (List.length r.Engine.resp_result.Sql.Exec.rows)
  | Error err -> Alcotest.fail err);
  (* consumer sees only unexpired rows *)
  match Engine.submit e ~client:"Kb" ~sql:"select who from trips order by id" () with
  | Ok r ->
      Alcotest.(check int) "consumer filtered" 2 (List.length r.Engine.resp_result.Sql.Exec.rows)
  | Error err -> Alcotest.fail err

let test_engine_reuse_policy () =
  let e = governed_engine () in
  Engine.set_access_policy e (P.Gdpr.prevent_indiscriminate_use ~owner_key:"Ka");
  (* Kb sits at bit 1: only rows whose bitmap has bit 1 set ("11") *)
  match Engine.submit e ~client:"Kb" ~sql:"select who from trips order by id" () with
  | Ok r ->
      Alcotest.(check int) "opt-outs excluded" 2 (List.length r.Engine.resp_result.Sql.Exec.rows)
  | Error err -> Alcotest.fail err

let test_engine_denies_writes () =
  let e = governed_engine () in
  Engine.set_access_policy e (P.Gdpr.timely_deletion ~owner_key:"Ka" ~consumer_key:"Kb");
  (match Engine.submit e ~client:"Kb" ~sql:"delete from trips" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "consumer delete authorized");
  match Engine.submit e ~client:"Ka" ~sql:"delete from trips where id = 99" () with
  | Ok _ -> ()
  | Error err -> Alcotest.failf "owner delete denied: %s" err

let test_engine_proof_and_audit () =
  let e = governed_engine () in
  Engine.set_access_policy e (P.Gdpr.transparent_sharing ~owner_key:"Ka" ~log_name:"share");
  match Engine.submit e ~client:"Kb" ~sql:"select who from trips" () with
  | Error err -> Alcotest.fail err
  | Ok r ->
      Alcotest.(check bool) "proof verifies" true
        (Engine.verify_response e r ~sql:"select who from trips");
      let log = M.Trusted_monitor.audit_log (Engine.monitor e) in
      Alcotest.(check bool) "read logged" true (M.Audit_log.length log > 0);
      (match M.Audit_log.verify log with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "audit chain broken")

let test_engine_exec_policy_downgrades_config () =
  let e = governed_engine () in
  Engine.set_access_policy e "read ::= sessionKeyIs(Ka)\nwrite ::= sessionKeyIs(Ka)";
  (* demands a storage firmware version the testbed doesn't have *)
  match
    Engine.submit e ~client:"Ka" ~exec_policy:"exec ::= fwVersionStorage(99)"
      ~sql:"select who from trips" ~config:Config.Scs ()
  with
  | Error err -> Alcotest.fail err
  | Ok r ->
      Alcotest.(check string) "downgraded to host-only secure" "hos"
        (Config.abbrev r.Engine.resp_metrics.Runner.config)

let test_engine_dml_mirrors_replicas () =
  let e = governed_engine () in
  Engine.set_access_policy e "read ::= sessionKeyIs(Ka)\nwrite ::= sessionKeyIs(Ka)";
  (match Engine.submit e ~client:"Ka" ~sql:"delete from trips where id = 1" () with
  | Ok _ -> ()
  | Error err -> Alcotest.fail err);
  match Engine.submit e ~client:"Ka" ~sql:"select count(*) as c from trips" () with
  | Ok r -> (
      match r.Engine.resp_result.Sql.Exec.rows with
      | [ [| Sql.Value.Int 2 |] ] -> ()
      | _ -> Alcotest.fail "delete not visible")
  | Error err -> Alcotest.fail err


let test_engine_result_signature () =
  let e = governed_engine () in
  Engine.set_access_policy e "read ::= sessionKeyIs(Ka)\nwrite ::= sessionKeyIs(Ka)";
  match Engine.submit e ~client:"Ka" ~sql:"select who from trips order by id" () with
  | Error err -> Alcotest.fail err
  | Ok r ->
      Alcotest.(check bool) "genuine response verifies" true
        (Engine.verify_response e r ~sql:"");
      (* tamper with the returned rows: verification must fail *)
      let forged_result =
        {
          r.Engine.resp_result with
          Sql.Exec.rows =
            [ [| Sql.Value.Str "mallory-was-here" |] ];
        }
      in
      let forged = { r with Engine.resp_result = forged_result } in
      Alcotest.(check bool) "tampered result rejected" false
        (Engine.verify_response e forged ~sql:"");
      (* swapping in another proof's signature also fails *)
      let forged2 = { r with Engine.resp_result_signature = String.make 32 'x' } in
      Alcotest.(check bool) "forged signature rejected" false
        (Engine.verify_response e forged2 ~sql:"")

(* -- Attacks against a live deployment --------------------------------------- *)

let test_attack_page_tamper_aborts_query () =
  let populate db =
    ignore (Sql.Database.exec db "create table t (a int)");
    Sql.Database.insert_rows db "t" (List.init 200 (fun i -> [| Sql.Value.Int i |]))
  in
  let d = Deployment.create ~seed:"attack-test" ~populate () in
  (* adversary flips ciphertext bytes on the medium *)
  Ironsafe_storage.Block_device.tamper d.Deployment.device_secure ~page:0 ~offset:60;
  match Runner.run_query d Config.Scs "select count(*) as c from t" with
  | exception Sql.Pager.Integrity_failure _ -> ()
  | _ -> Alcotest.fail "query ran over tampered storage"

let test_attack_plain_config_silently_corrupted () =
  (* the same attack against the non-secure config is NOT detected —
     this is the paper's motivation for the secure storage layer *)
  let populate db =
    ignore (Sql.Database.exec db "create table t (a int)");
    Sql.Database.insert_rows db "t" (List.init 10 (fun i -> [| Sql.Value.Int i |]))
  in
  let d = Deployment.create ~seed:"attack-test-2" ~populate () in
  match Runner.run_query d Config.Hons "select count(*) as c from t" with
  | m -> Alcotest.(check int) "plain config runs" 1 (List.length m.Runner.result.Sql.Exec.rows)

(* Randomized partitioner soundness: for arbitrary generated filter
   shapes, the split execution (vcs) returns exactly what the
   unpartitioned host-only run (hons) returns. *)
let qcheck_partitioner_equivalence =
  let open QCheck in
  let pred_gen =
    Gen.oneof
      [
        Gen.map (fun q -> Printf.sprintf "l_quantity < %d" q) Gen.(5 -- 50);
        Gen.map (fun d -> Printf.sprintf "l_discount >= 0.0%d" d) Gen.(0 -- 9);
        Gen.map
          (fun y -> Printf.sprintf "l_shipdate < date '%04d-06-01'" (1993 + y))
          Gen.(0 -- 5);
        Gen.return "l_returnflag = 'R'";
        Gen.return "l_shipmode in ('MAIL', 'AIR')";
        Gen.return "o_orderpriority like '1%'";
        Gen.map
          (fun t -> Printf.sprintf "o_totalprice > %d" (t * 10_000))
          Gen.(1 -- 30);
      ]
  in
  let query_gen =
    Gen.map2
      (fun preds agg ->
        let where = String.concat " and " ("o_orderkey = l_orderkey" :: preds) in
        if agg then
          Printf.sprintf
            "select o_orderpriority, count(*) as n, sum(l_quantity) as q from \
             orders, lineitem where %s group by o_orderpriority order by \
             o_orderpriority"
            where
        else
          Printf.sprintf
            "select l_orderkey, l_linenumber from orders, lineitem where %s \
             order by l_orderkey, l_linenumber limit 50"
            where)
      (Gen.list_size (Gen.int_range 1 3) pred_gen)
      Gen.bool
  in
  Test.make ~name:"split execution equals host-only execution" ~count:25
    (make query_gen) (fun sql ->
      let d = Lazy.force deploy in
      let hons = Runner.run_query d Config.Hons sql in
      let vcs = Runner.run_query d Config.Vcs sql in
      render hons.Runner.result = render vcs.Runner.result)

let suite =
  [
    ("partitioner pushes filters", `Quick, test_partitioner_pushes_filters);
    ("partitioner keeps join preds", `Quick, test_partitioner_join_preds_stay);
    ("partitioner multi-occurrence", `Quick, test_partitioner_multiple_occurrences_or);
    ("partitioner or of filters", `Quick, test_partitioner_or_of_filters);
    ("partitioner subquery tables", `Quick, test_partitioner_subquery_tables_included);
    ("partitioner offload sql parses", `Quick, test_partitioner_offload_sql_parses);
    ("partitioner describe", `Quick, test_partitioner_describe);
    ("interconnect profiles", `Quick, test_interconnect_profiles_ordering);
    ("configs agree on results", `Slow, test_configs_agree);
    ("metrics sanity", `Quick, test_metrics_sanity);
    ("deterministic metrics", `Quick, test_deterministic_metrics);
    ("engine expiry policy", `Quick, test_engine_expiry_policy);
    ("engine reuse policy", `Quick, test_engine_reuse_policy);
    ("engine denies writes", `Quick, test_engine_denies_writes);
    ("engine proof and audit", `Quick, test_engine_proof_and_audit);
    ("engine exec downgrade", `Quick, test_engine_exec_policy_downgrades_config);
    ("engine dml mirrors replicas", `Quick, test_engine_dml_mirrors_replicas);
    ("engine result signature", `Quick, test_engine_result_signature);
    ("attack: tamper aborts query", `Quick, test_attack_page_tamper_aborts_query);
    ("attack: plain config undetected", `Quick, test_attack_plain_config_silently_corrupted);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false)
      [ qcheck_partitioner_equivalence ]
