(* Crypto substrate tests: published known-answer vectors for every
   primitive plus property-based roundtrips. *)

open Ironsafe_crypto

let check_hex msg expected actual = Alcotest.(check string) msg expected (Hex.of_string actual)

(* -- SHA-256 (FIPS 180-4 / NIST examples) --------------------------- *)

let test_sha256_vectors () =
  check_hex "empty" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.digest "");
  check_hex "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.digest "abc");
  check_hex "two-block"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.digest "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  check_hex "million-a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.digest (String.make 1_000_000 'a'))

let test_sha256_streaming () =
  (* absorbing in odd-sized chunks must match one-shot *)
  let msg = String.init 1000 (fun i -> Char.chr (i mod 251)) in
  let ctx = Sha256.init () in
  let rec feed off =
    if off < String.length msg then begin
      let len = min 37 (String.length msg - off) in
      Sha256.update ctx (String.sub msg off len);
      feed (off + len)
    end
  in
  feed 0;
  Alcotest.(check string) "chunked = one-shot" (Sha256.digest msg) (Sha256.finalize ctx)

let test_sha256_digest_list () =
  Alcotest.(check string)
    "digest_list concatenates"
    (Sha256.digest "hello world")
    (Sha256.digest_list [ "hel"; "lo "; "world" ])

(* -- HMAC-SHA256 (RFC 4231) ----------------------------------------- *)

let test_hmac_vectors () =
  check_hex "rfc4231 case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Hmac.mac ~key:(String.make 20 '\x0b') "Hi There");
  check_hex "rfc4231 case 2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Hmac.mac ~key:"Jefe" "what do ya want for nothing?");
  check_hex "rfc4231 case 3"
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (Hmac.mac ~key:(String.make 20 '\xaa') (String.make 50 '\xdd'));
  (* case 6: key longer than one block gets hashed first *)
  check_hex "rfc4231 case 6"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Hmac.mac ~key:(String.make 131 '\xaa')
       "Test Using Larger Than Block-Size Key - Hash Key First")

let test_hmac_verify () =
  let key = "secret" and msg = "message" in
  let tag = Hmac.mac ~key msg in
  Alcotest.(check bool) "valid tag" true (Hmac.verify ~key ~mac:tag msg);
  Alcotest.(check bool) "wrong msg" false (Hmac.verify ~key ~mac:tag "other");
  let bad = String.mapi (fun i c -> if i = 0 then Char.chr (Char.code c lxor 1) else c) tag in
  Alcotest.(check bool) "flipped tag" false (Hmac.verify ~key ~mac:bad msg)

(* The precomputed-midstate fast path must be indistinguishable from
   the one-shot HMAC on the same RFC 4231 vectors, reusable across
   messages, and [mac_pre_list] must behave as concatenation. *)
let test_hmac_prekey () =
  let cases =
    [
      (String.make 20 '\x0b', "Hi There");
      ("Jefe", "what do ya want for nothing?");
      (String.make 20 '\xaa', String.make 50 '\xdd');
      ( String.make 131 '\xaa',
        "Test Using Larger Than Block-Size Key - Hash Key First" );
    ]
  in
  List.iter
    (fun (key, msg) ->
      let pk = Hmac.precompute ~key in
      let expected = Hmac.mac ~key msg in
      Alcotest.(check string) "mac_pre = mac" (Hex.of_string expected)
        (Hex.of_string (Hmac.mac_pre pk msg));
      Alcotest.(check bool) "verify_pre accepts" true
        (Hmac.verify_pre pk ~mac:expected msg);
      let bad =
        String.mapi
          (fun i c -> if i = 0 then Char.chr (Char.code c lxor 1) else c)
          expected
      in
      Alcotest.(check bool) "verify_pre rejects" false
        (Hmac.verify_pre pk ~mac:bad msg))
    cases;
  (* one key schedule, many messages *)
  let pk = Hmac.precompute ~key:"reused-schedule" in
  for i = 0 to 9 do
    let msg = Printf.sprintf "message %d" i in
    Alcotest.(check string) "prekey reusable"
      (Hmac.mac ~key:"reused-schedule" msg)
      (Hmac.mac_pre pk msg)
  done;
  Alcotest.(check string) "mac_pre_list concatenates"
    (Hmac.mac ~key:"k" "abcdef")
    (Hmac.mac_pre_list (Hmac.precompute ~key:"k") [ "ab"; ""; "cd"; "ef" ])

(* [Sha256.copy] underpins the HMAC prekey: feeding the clone must not
   disturb the original mid-stream context, even across block
   boundaries. *)
let test_sha256_copy_independent () =
  let prefix = String.make 100 'p' in
  let ctx = Sha256.init () in
  Sha256.update ctx prefix;
  let snap = Sha256.copy ctx in
  Sha256.update ctx "left fork";
  Sha256.update snap "right fork";
  Alcotest.(check string) "original unaffected"
    (Sha256.digest (prefix ^ "left fork"))
    (Sha256.finalize ctx);
  Alcotest.(check string) "copy diverges independently"
    (Sha256.digest (prefix ^ "right fork"))
    (Sha256.finalize snap)

(* -- HKDF (RFC 5869) ------------------------------------------------- *)

let test_hkdf_vectors () =
  let ikm = Hex.to_string "0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b" in
  let salt = Hex.to_string "000102030405060708090a0b0c" in
  let info = Hex.to_string "f0f1f2f3f4f5f6f7f8f9" in
  let prk = Hkdf.extract ~salt ikm in
  check_hex "rfc5869 prk"
    "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5" prk;
  check_hex "rfc5869 okm"
    "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
    (Hkdf.expand ~prk ~info 42);
  (* case 3: empty salt and info *)
  let prk3 = Hkdf.extract (Hex.to_string "0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b") in
  check_hex "rfc5869 case3 okm"
    "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
    (Hkdf.expand ~prk:prk3 42)

let test_hkdf_errors () =
  Alcotest.check_raises "oversized expand"
    (Invalid_argument "Hkdf.expand: len too large") (fun () ->
      ignore (Hkdf.expand ~prk:(String.make 32 'k') (256 * 32)))

(* -- AES-128 (FIPS 197) ---------------------------------------------- *)

let test_aes_fips () =
  let key = Aes.expand_key (Hex.to_string "000102030405060708090a0b0c0d0e0f") in
  let plain = Hex.to_string "00112233445566778899aabbccddeeff" in
  let cipher = Aes.encrypt_block key plain in
  check_hex "fips-197 C.1 encrypt" "69c4e0d86a7b0430d8cdb78070b4c55a" cipher;
  Alcotest.(check string) "decrypt inverts" plain (Aes.decrypt_block key cipher)

let test_aes_sp800_38a () =
  (* SP 800-38A F.1.1 ECB-AES128 block 1 *)
  let key = Aes.expand_key (Hex.to_string "2b7e151628aed2a6abf7158809cf4f3c") in
  check_hex "sp800-38a ecb block1" "3ad77bb40d7a3660a89ecaf32466ef97"
    (Aes.encrypt_block key (Hex.to_string "6bc1bee22e409f96e93d7e117393172a"))

let test_aes256_fips () =
  (* FIPS-197 C.3 *)
  let key =
    Aes.expand_key
      (Hex.to_string
         "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
  in
  let plain = Hex.to_string "00112233445566778899aabbccddeeff" in
  let cipher = Aes.encrypt_block key plain in
  check_hex "fips-197 C.3 encrypt" "8ea2b7ca516745bfeafc49904b496089" cipher;
  Alcotest.(check string) "decrypt inverts" plain (Aes.decrypt_block key cipher);
  (* SP 800-38A F.1.5 ECB-AES256 block 1 *)
  let key2 =
    Aes.expand_key
      (Hex.to_string
         "603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4")
  in
  check_hex "sp800-38a ecb256 block1" "f3eed1bdb5d2a03c064b5a7e3db181f8"
    (Aes.encrypt_block key2 (Hex.to_string "6bc1bee22e409f96e93d7e117393172a"))

let test_aes_errors () =
  Alcotest.check_raises "short key"
    (Invalid_argument "Aes.expand_key: need 16 or 32 bytes") (fun () ->
      ignore (Aes.expand_key "short"));
  let key = Aes.expand_key (String.make 16 'k') in
  Alcotest.check_raises "short block"
    (Invalid_argument "Aes.encrypt_block: need 16 bytes") (fun () ->
      ignore (Aes.encrypt_block key "short"))

(* -- Modes ------------------------------------------------------------ *)

let test_cbc_sp800_38a () =
  (* SP 800-38A F.2.1 CBC-AES128, first block (our CBC adds PKCS#7, so
     compare the first 16 bytes of a 16-byte message's ciphertext) *)
  let key = Aes.expand_key (Hex.to_string "2b7e151628aed2a6abf7158809cf4f3c") in
  let iv = Hex.to_string "000102030405060708090a0b0c0d0e0f" in
  let ct = Modes.cbc_encrypt ~key ~iv (Hex.to_string "6bc1bee22e409f96e93d7e117393172a") in
  Alcotest.(check string) "first block" "7649abac8119b246cee98e9b12e9197d"
    (Hex.of_string (String.sub ct 0 16))

let test_cbc_roundtrip_lengths () =
  let key = Aes.expand_key (String.make 16 'k') in
  let iv = String.make 16 'i' in
  List.iter
    (fun len ->
      let msg = String.init len (fun i -> Char.chr (i mod 256)) in
      let ct = Modes.cbc_encrypt ~key ~iv msg in
      Alcotest.(check int) "padded length" ((len / 16 * 16) + 16) (String.length ct);
      match Modes.cbc_decrypt ~key ~iv ct with
      | Ok pt -> Alcotest.(check string) (Printf.sprintf "len %d" len) msg pt
      | Error e -> Alcotest.failf "decrypt failed: %s" e)
    [ 0; 1; 15; 16; 17; 31; 32; 100; 4000 ]

let test_cbc_rejects_garbage () =
  let key = Aes.expand_key (String.make 16 'k') in
  let iv = String.make 16 'i' in
  (match Modes.cbc_decrypt ~key ~iv "not-a-multiple-of-16" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted unaligned ciphertext");
  (* random block: padding check should almost surely fail, and if it
     "succeeds" the plaintext differs — either way no silent pass *)
  let ct = Modes.cbc_encrypt ~key ~iv "hello" in
  let tampered =
    String.mapi (fun i c -> if i = 2 then Char.chr (Char.code c lxor 0xff) else c) ct
  in
  match Modes.cbc_decrypt ~key ~iv tampered with
  | Ok pt -> Alcotest.(check bool) "tamper changes plaintext" true (pt <> "hello")
  | Error _ -> ()

let test_pkcs7 () =
  Alcotest.(check int) "pad to 16" 16 (String.length (Modes.pkcs7_pad ""));
  Alcotest.(check int) "pad 16 adds block" 32
    (String.length (Modes.pkcs7_pad (String.make 16 'x')));
  (match Modes.pkcs7_unpad (Modes.pkcs7_pad "abc") with
  | Ok s -> Alcotest.(check string) "unpad inverts" "abc" s
  | Error e -> Alcotest.fail e);
  match Modes.pkcs7_unpad (String.make 16 '\x00') with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted zero padding"

let test_ctr () =
  let key = Aes.expand_key (String.make 16 'k') in
  let nonce = String.make 16 'n' in
  let msg = "counter mode is an involution over any length!" in
  let ct = Modes.ctr_transform ~key ~nonce msg in
  Alcotest.(check int) "length preserved" (String.length msg) (String.length ct);
  Alcotest.(check bool) "ciphertext differs" true (ct <> msg);
  Alcotest.(check string) "involution" msg (Modes.ctr_transform ~key ~nonce ct);
  (* SP 800-38A F.5.1 CTR-AES128 block 1 *)
  let key = Aes.expand_key (Hex.to_string "2b7e151628aed2a6abf7158809cf4f3c") in
  let nonce = Hex.to_string "f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff" in
  Alcotest.(check string) "sp800-38a ctr block1"
    "874d6191b620e3261bef6864990db6ce"
    (Hex.of_string
       (Modes.ctr_transform ~key ~nonce (Hex.to_string "6bc1bee22e409f96e93d7e117393172a")))

(* SP 800-38A F.5.1 CTR-AES128.Encrypt: the complete four-block known
   answer, one shot and then block by block through [block_offset] (the
   lane-chunk entry point must land every block on the same counter the
   one-shot walk reaches). *)
let test_ctr_sp800_38a_full () =
  let key = Aes.expand_key (Hex.to_string "2b7e151628aed2a6abf7158809cf4f3c") in
  let nonce = Hex.to_string "f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff" in
  let plain_blocks =
    [
      "6bc1bee22e409f96e93d7e117393172a";
      "ae2d8a571e03ac9c9eb76fac45af8e51";
      "30c81c46a35ce411e5fbc1191a0a52ef";
      "f69f2445df4f9b17ad2b417be66c3710";
    ]
  in
  let cipher_blocks =
    [
      "874d6191b620e3261bef6864990db6ce";
      "9806f66b7970fdff8617187bb9fffdff";
      "5ae4df3edbd5d35e5b4f09020db03eab";
      "1e031dda2fbe03d1792170a0f3009cee";
    ]
  in
  let plain = String.concat "" (List.map Hex.to_string plain_blocks) in
  check_hex "four blocks one shot"
    (String.concat "" cipher_blocks)
    (Modes.ctr_transform ~key ~nonce plain);
  List.iteri
    (fun i (p, c) ->
      let dst = Bytes.create 16 in
      Modes.ctr_transform_into ~key ~nonce ~block_offset:i (Hex.to_string p) 0
        dst 0 16;
      check_hex (Printf.sprintf "block %d via offset" i) c (Bytes.to_string dst))
    (List.combine plain_blocks cipher_blocks)

let test_ctr_counter_overflow () =
  (* an all-FF counter must wrap to all-00 on the next block; feeding a
     zero plaintext exposes the raw keystream for comparison *)
  let key = Aes.expand_key (String.make 16 'k') in
  let nonce = String.make 16 '\xff' in
  let ks = Modes.ctr_transform ~key ~nonce (String.make 32 '\x00') in
  Alcotest.(check string) "block 1 = E(FF..FF)"
    (Hex.of_string (Aes.encrypt_block key nonce))
    (Hex.of_string (String.sub ks 0 16));
  Alcotest.(check string) "block 2 wraps to E(00..00)"
    (Hex.of_string (Aes.encrypt_block key (String.make 16 '\x00')))
    (Hex.of_string (String.sub ks 16 16));
  (* [block_offset] over the wrap lands on the same counters *)
  let dst = Bytes.create 16 in
  Modes.ctr_transform_into ~key ~nonce ~block_offset:1 (String.make 16 '\x00')
    0 dst 0 16;
  Alcotest.(check string) "offset crosses the wrap"
    (Hex.of_string (String.sub ks 16 16))
    (Hex.of_string (Bytes.to_string dst))

let test_ctr_into_validates () =
  let key = Aes.expand_key (String.make 16 'k') in
  let nonce = String.make 16 'n' in
  Alcotest.check_raises "short nonce"
    (Invalid_argument "Modes.ctr_transform_into: nonce must be 16 bytes")
    (fun () ->
      ignore (Modes.ctr_transform_into ~key ~nonce:"short" "x" 0 (Bytes.create 1) 0 1));
  Alcotest.check_raises "source range"
    (Invalid_argument "Modes.ctr_transform_into: source range out of bounds")
    (fun () ->
      ignore (Modes.ctr_transform_into ~key ~nonce "x" 0 (Bytes.create 4) 0 2));
  Alcotest.check_raises "destination range"
    (Invalid_argument "Modes.ctr_transform_into: destination range out of bounds")
    (fun () ->
      ignore (Modes.ctr_transform_into ~key ~nonce "xy" 0 (Bytes.create 1) 0 2))

(* -- Lanes -------------------------------------------------------------- *)

let test_lanes () =
  Alcotest.(check bool) "at least one lane" true (Lanes.available () >= 1);
  let hits = Array.make 4 0 in
  Lanes.run ~lanes:4 (fun i -> hits.(i) <- hits.(i) + 1);
  Alcotest.(check (array int)) "each lane ran once" [| 1; 1; 1; 1 |] hits;
  Lanes.run ~lanes:1 (fun i -> Alcotest.(check int) "inline lane id" 0 i);
  Alcotest.check_raises "worker exception propagates" Exit (fun () ->
      Lanes.run ~lanes:3 (fun i -> if i = 2 then raise Exit))

(* -- DRBG ------------------------------------------------------------- *)

let test_drbg_deterministic () =
  let a = Drbg.create ~seed:"seed" and b = Drbg.create ~seed:"seed" in
  Alcotest.(check string) "same seed same stream" (Drbg.generate a 64) (Drbg.generate b 64);
  let c = Drbg.create ~seed:"other" in
  Alcotest.(check bool) "different seed differs" true
    (Drbg.generate (Drbg.create ~seed:"seed") 64 <> Drbg.generate c 64)

let test_drbg_reseed () =
  let a = Drbg.create ~seed:"s" and b = Drbg.create ~seed:"s" in
  ignore (Drbg.generate a 16);
  ignore (Drbg.generate b 16);
  Drbg.reseed a "extra";
  Alcotest.(check bool) "reseed diverges" true (Drbg.generate a 16 <> Drbg.generate b 16)

let test_drbg_uniform () =
  let d = Drbg.create ~seed:"uniform" in
  for _ = 1 to 1000 do
    let v = Drbg.uniform d 7 in
    if v < 0 || v >= 7 then Alcotest.failf "uniform out of range: %d" v
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Drbg.uniform: bound must be positive")
    (fun () -> ignore (Drbg.uniform d 0))

(* -- Constant time ----------------------------------------------------- *)

let test_constant_time () =
  Alcotest.(check bool) "equal" true (Constant_time.equal "abc" "abc");
  Alcotest.(check bool) "not equal" false (Constant_time.equal "abc" "abd");
  Alcotest.(check bool) "length mismatch" false (Constant_time.equal "ab" "abc");
  Alcotest.(check bool) "empty" true (Constant_time.equal "" "")

(* -- Hex --------------------------------------------------------------- *)

let test_hex () =
  Alcotest.(check string) "encode" "00ff10" (Hex.of_string "\x00\xff\x10");
  Alcotest.(check string) "decode" "\x00\xff\x10" (Hex.to_string "00ff10");
  Alcotest.(check string) "uppercase ok" "\xab" (Hex.to_string "AB");
  Alcotest.check_raises "odd length" (Invalid_argument "Hex.to_string: odd length")
    (fun () -> ignore (Hex.to_string "abc"));
  Alcotest.check_raises "bad digit" (Invalid_argument "Hex.to_string: not a hex digit")
    (fun () -> ignore (Hex.to_string "zz"))

(* -- Merkle tree -------------------------------------------------------- *)

let mk_tree ?(leaves = 8) () = Merkle.create ~key:"merkle-key" ~leaves

let test_merkle_basics () =
  let t = mk_tree () in
  Alcotest.(check int) "leaf count" 8 (Merkle.leaf_count t);
  Alcotest.(check int) "depth" 3 (Merkle.depth t);
  let r0 = Merkle.root t in
  Merkle.update t 3 "page data";
  Alcotest.(check bool) "root changed" true (Merkle.root t <> r0);
  let r1 = Merkle.root t in
  Merkle.update t 3 "page data";
  Alcotest.(check string) "idempotent update" r1 (Merkle.root t)

let test_merkle_non_pow2 () =
  let t = Merkle.create ~key:"k" ~leaves:5 in
  Alcotest.(check int) "leaves" 5 (Merkle.leaf_count t);
  Merkle.update t 4 "x";
  Alcotest.check_raises "out of range" (Invalid_argument "Merkle: leaf index out of range")
    (fun () -> Merkle.update t 5 "y")

let test_merkle_proofs () =
  let t = mk_tree () in
  for i = 0 to 7 do
    Merkle.update t i (Printf.sprintf "page-%d" i)
  done;
  let root = Merkle.root t in
  for i = 0 to 7 do
    let proof = Merkle.prove t i in
    let tag = Merkle.leaf_tag_of_data t (Printf.sprintf "page-%d" i) in
    let ok, hashes = Merkle.verify ~key:"merkle-key" ~root ~leaf_tag:tag proof in
    Alcotest.(check bool) (Printf.sprintf "proof %d verifies" i) true ok;
    Alcotest.(check int) "path length = depth" 3 hashes
  done;
  (* wrong data fails *)
  let proof = Merkle.prove t 2 in
  let bad_tag = Merkle.leaf_tag_of_data t "tampered" in
  let ok, _ = Merkle.verify ~key:"merkle-key" ~root ~leaf_tag:bad_tag proof in
  Alcotest.(check bool) "tampered leaf rejected" false ok;
  (* proof for one index does not verify another *)
  let tag3 = Merkle.leaf_tag_of_data t "page-3" in
  let ok, _ = Merkle.verify ~key:"merkle-key" ~root ~leaf_tag:tag3 proof in
  Alcotest.(check bool) "displaced leaf rejected" false ok

let test_merkle_wrong_key () =
  let t = mk_tree () in
  Merkle.update t 0 "data";
  let proof = Merkle.prove t 0 in
  let tag = Merkle.leaf_tag_of_data t "data" in
  let ok, _ = Merkle.verify ~key:"other-key" ~root:(Merkle.root t) ~leaf_tag:tag proof in
  Alcotest.(check bool) "wrong key rejected" false ok

let test_merkle_hash_ops () =
  let t = mk_tree () in
  Merkle.reset_hash_ops t;
  Merkle.update t 0 "x";
  (* leaf tag + 3 internal + root-path... update recomputes depth+1 nodes *)
  Alcotest.(check bool) "ops counted" true (Merkle.hash_ops t > 0)

(* Batched verification: every leaf must verify against the snapshot
   root, later leaves must stop at memoized ancestors (amortizing the
   per-leaf path cost), and tampering must still be rejected. *)
let test_merkle_batch_verifier () =
  let t = Merkle.create ~key:"merkle-key" ~leaves:16 in
  for i = 0 to 15 do
    Merkle.update t i (Printf.sprintf "page-%d" i)
  done;
  let bv = Merkle.batch_verifier ~key:"merkle-key" t in
  for i = 0 to 15 do
    Alcotest.(check bool)
      (Printf.sprintf "leaf %d verifies" i)
      true
      (Merkle.verify_leaf bv i ~leaf_tag:(Merkle.leaf t i))
  done;
  (* a cold path costs [depth] hashes per leaf; memoization must beat
     that over the full batch *)
  Alcotest.(check bool) "amortized below depth per leaf" true
    (Merkle.batch_hash_ops bv < 16 * Merkle.depth t);
  Alcotest.(check bool) "tampered tag rejected" false
    (Merkle.verify_leaf bv 3 ~leaf_tag:(Merkle.leaf_tag_of_data t "tampered"));
  Alcotest.(check bool) "displaced leaf rejected" false
    (Merkle.verify_leaf bv 3 ~leaf_tag:(Merkle.leaf t 4));
  let bad = Merkle.batch_verifier ~key:"other-key" t in
  Alcotest.(check bool) "wrong key rejected" false
    (Merkle.verify_leaf bad 0 ~leaf_tag:(Merkle.leaf t 0))

(* -- Lamport ------------------------------------------------------------ *)

let test_lamport () =
  let d = Drbg.create ~seed:"lamport" in
  let sk, pk = Lamport.generate d in
  let msg = "boot stage measurement" in
  let signature = Lamport.sign sk msg in
  Alcotest.(check bool) "verifies" true (Lamport.verify pk msg signature);
  Alcotest.(check bool) "wrong message" false (Lamport.verify pk "other" signature);
  let forged = Array.copy signature in
  forged.(10) <- String.make 32 '\x00';
  Alcotest.(check bool) "forged preimage" false (Lamport.verify pk msg forged);
  let _, pk2 = Lamport.generate d in
  Alcotest.(check bool) "wrong key" false (Lamport.verify pk2 msg signature);
  Alcotest.(check bool) "fingerprints differ" true
    (Lamport.public_key_fingerprint pk <> Lamport.public_key_fingerprint pk2)

(* -- Signature ----------------------------------------------------------- *)

let test_signature () =
  let d = Drbg.create ~seed:"sig" in
  let sk, pk = Signature.generate d in
  let s = Signature.sign sk "hello" in
  Alcotest.(check int) "signature size" Signature.signature_size (String.length s);
  Alcotest.(check bool) "verifies" true (Signature.verify pk "hello" s);
  Alcotest.(check bool) "wrong msg" false (Signature.verify pk "bye" s);
  let sk2, pk2 = Signature.generate d in
  Alcotest.(check bool) "cross-key fails" false (Signature.verify pk2 "hello" s);
  Alcotest.(check bool) "other key signs" true
    (Signature.verify pk2 "x" (Signature.sign sk2 "x"));
  (* serialization roundtrip *)
  let pk' = Signature.public_key_of_bytes (Signature.public_key_bytes pk) in
  Alcotest.(check bool) "roundtripped key verifies" true (Signature.verify pk' "hello" s)

(* -- Property-based -------------------------------------------------------- *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"hex roundtrip" ~count:200 (string_of_size Gen.(0 -- 64))
      (fun s -> Hex.to_string (Hex.of_string s) = s);
    Test.make ~name:"cbc roundtrip" ~count:100 (string_of_size Gen.(0 -- 200))
      (fun s ->
        let key = Aes.expand_key (String.make 16 'k') in
        let iv = String.make 16 'v' in
        Modes.cbc_decrypt ~key ~iv (Modes.cbc_encrypt ~key ~iv s) = Ok s);
    Test.make ~name:"ctr involution" ~count:100 (string_of_size Gen.(0 -- 200))
      (fun s ->
        let key = Aes.expand_key (String.make 16 'q') in
        let nonce = String.make 16 'n' in
        Modes.ctr_transform ~key ~nonce (Modes.ctr_transform ~key ~nonce s) = s);
    Test.make ~name:"ctr_transform_into split at any block = one-shot"
      ~count:100
      (pair (string_of_size Gen.(0 -- 300)) small_nat)
      (fun (s, cut_blocks) ->
        let key = Aes.expand_key (String.make 16 'q') in
        let nonce = String.make 16 'n' in
        let n = String.length s in
        let cut = min n (cut_blocks * 16) in
        let dst = Bytes.create n in
        Modes.ctr_transform_into ~key ~nonce s 0 dst 0 cut;
        Modes.ctr_transform_into ~key ~nonce ~block_offset:(cut / 16) s cut dst
          cut (n - cut);
        Bytes.to_string dst = Modes.ctr_transform ~key ~nonce s);
    Test.make ~name:"aes block roundtrip" ~count:100
      (string_of_size (Gen.return 16)) (fun s ->
        let key = Aes.expand_key (String.make 16 'z') in
        Aes.decrypt_block key (Aes.encrypt_block key s) = s);
    Test.make ~name:"hmac verify accepts own macs" ~count:100
      (pair small_string small_string) (fun (key, msg) ->
        Hmac.verify ~key ~mac:(Hmac.mac ~key msg) msg);
    Test.make ~name:"merkle proof verifies after arbitrary updates" ~count:50
      (list_of_size Gen.(1 -- 20) (pair (int_bound 15) small_string))
      (fun updates ->
        let t = Merkle.create ~key:"prop" ~leaves:16 in
        List.iter (fun (i, data) -> Merkle.update t i data) updates;
        let root = Merkle.root t in
        List.for_all
          (fun (i, _) ->
            let proof = Merkle.prove t i in
            fst (Merkle.verify ~key:"prop" ~root ~leaf_tag:(Merkle.leaf t i) proof))
          updates);
    Test.make ~name:"constant_time.equal = String.equal" ~count:200
      (pair small_string small_string) (fun (a, b) ->
        Constant_time.equal a b = String.equal a b);
  ]

let suite =
  [
    ("sha256 vectors", `Quick, test_sha256_vectors);
    ("sha256 streaming", `Quick, test_sha256_streaming);
    ("sha256 digest_list", `Quick, test_sha256_digest_list);
    ("hmac vectors", `Quick, test_hmac_vectors);
    ("hmac verify", `Quick, test_hmac_verify);
    ("hmac prekey fast path", `Quick, test_hmac_prekey);
    ("sha256 copy independence", `Quick, test_sha256_copy_independent);
    ("hkdf vectors", `Quick, test_hkdf_vectors);
    ("hkdf errors", `Quick, test_hkdf_errors);
    ("aes fips-197", `Quick, test_aes_fips);
    ("aes sp800-38a", `Quick, test_aes_sp800_38a);
    ("aes-256 fips/sp800-38a", `Quick, test_aes256_fips);
    ("aes errors", `Quick, test_aes_errors);
    ("cbc sp800-38a", `Quick, test_cbc_sp800_38a);
    ("cbc roundtrip lengths", `Quick, test_cbc_roundtrip_lengths);
    ("cbc rejects garbage", `Quick, test_cbc_rejects_garbage);
    ("pkcs7", `Quick, test_pkcs7);
    ("ctr", `Quick, test_ctr);
    ("ctr sp800-38a full", `Quick, test_ctr_sp800_38a_full);
    ("ctr counter overflow", `Quick, test_ctr_counter_overflow);
    ("ctr_transform_into validation", `Quick, test_ctr_into_validates);
    ("lanes", `Quick, test_lanes);
    ("drbg deterministic", `Quick, test_drbg_deterministic);
    ("drbg reseed", `Quick, test_drbg_reseed);
    ("drbg uniform", `Quick, test_drbg_uniform);
    ("constant time", `Quick, test_constant_time);
    ("hex", `Quick, test_hex);
    ("merkle basics", `Quick, test_merkle_basics);
    ("merkle non-pow2", `Quick, test_merkle_non_pow2);
    ("merkle proofs", `Quick, test_merkle_proofs);
    ("merkle wrong key", `Quick, test_merkle_wrong_key);
    ("merkle hash ops", `Quick, test_merkle_hash_ops);
    ("merkle batch verifier", `Quick, test_merkle_batch_verifier);
    ("lamport", `Quick, test_lamport);
    ("signature", `Quick, test_signature);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests
